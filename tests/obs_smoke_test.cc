// End-to-end observability smoke test: runs a tiny traced experiment and
// checks that the exported Chrome trace contains spans from every
// instrumented layer (autograd backward, model forward, evaluator) and that
// the training loop fed the metrics registry. This is the ctest equivalent
// of `EMBSR_TRACE=trace.json ./bench_table3_overall`.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "datagen/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/experiment.h"
#include "util/check.h"

namespace embsr {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ObsSmokeTest, TracedExperimentExportsSpansFromAllLayers) {
  const std::string trace_path =
      testing::TempDir() + "/embsr_smoke_trace.json";
  std::remove(trace_path.c_str());

  auto data_or = MakeDataset(JdAppliancesConfig(0.02));
  ASSERT_TRUE(data_or.ok());
  const ProcessedDataset data = std::move(data_or).value();

  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.embedding_dim = 8;
  cfg.max_train_examples = 20;
  cfg.validate_every = 0;

  obs::TraceSession& session = obs::TraceSession::Global();
  session.Start(trace_path);
  const ExperimentResult res = RunExperiment("EMBSR", data, cfg, {5, 20}, 10);
  ASSERT_TRUE(session.Stop().ok());
  EXPECT_EQ(res.eval.ranks.size(), 10u);

  const std::string json = ReadFile(trace_path);
  ASSERT_FALSE(json.empty()) << "trace file missing: " << trace_path;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  // One span name per instrumented layer.
  EXPECT_NE(json.find("\"experiment/fit\""), std::string::npos);
  EXPECT_NE(json.find("\"train/epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"embsr/logits\""), std::string::npos);
  EXPECT_NE(json.find("\"embsr/micro_gru\""), std::string::npos);
  EXPECT_NE(json.find("\"autograd/backward\""), std::string::npos);
  EXPECT_NE(json.find("\"eval/evaluate\""), std::string::npos);
  EXPECT_NE(json.find("\"model/score_all\""), std::string::npos);
  std::remove(trace_path.c_str());

  // The same run fed the metrics registry: backward was counted, the
  // evaluator reported examples, and the timed spans (active while tracing)
  // filled their latency histograms.
  obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
  auto counter_value = [&snap](const std::string& name) -> int64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    return -1;
  };
  EXPECT_GT(counter_value("autograd/backward_calls"), 0);
  EXPECT_GE(counter_value("eval/examples"), 10);
  bool saw_backward_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "autograd/backward_ms") {
      saw_backward_hist = h.count > 0;
    }
  }
  EXPECT_TRUE(saw_backward_hist);
}

}  // namespace
}  // namespace embsr
