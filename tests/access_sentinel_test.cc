// Kernel access-contract sentinel (src/par/access_check.h) under a
// contracts build. This TU compiles with EMBSR_CHECK_CONTRACTS=1 (set in
// tests/CMakeLists.txt), so ForChecked really enumerates and verifies the
// declared per-chunk access sets — including the seeded-mutant death tests
// that prove the sentinel actually fires on a DESIGN.md §11 violation.
//
// The checker runs on *declared* index sets before any chunk is dispatched,
// so every test here is deterministic at every EMBSR_THREADS value —
// including 1, where TSan by construction can't see the race.

#include <cstdint>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "par/access_check.h"
#include "par/thread_pool.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace embsr {
namespace par {
namespace {

TEST(AccessSentinel, ContractsAreEnabledInThisTu) {
  // Guards the build plumbing: if the per-TU define is dropped, every death
  // test below would silently pass by never running the checker.
  EXPECT_EQ(EMBSR_CONTRACTS_ENABLED, 1);
}

TEST(AccessSentinel, CleanPartitionRunsAndComputes) {
  const int64_t n = 103, g = 8;
  std::vector<float> out(n, 0.0f);
  ForChecked(
      "test/fill", 0, n, g,
      [&](int64_t lo, int64_t hi, AccessSet* set) {
        set->Write(out.data(), lo, hi);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) out[static_cast<size_t>(i)] = 2.0f;
      });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0.0f), 2.0f * n);
}

TEST(AccessSentinel, SharedReadOnlyInputIsFine) {
  // Every chunk reading the whole of a second buffer (the MatMul / row
  // broadcast pattern) is not a violation: reads may overlap reads.
  const int64_t n = 64;
  std::vector<float> in(16, 1.0f), out(n, 0.0f);
  ForChecked(
      "test/broadcast", 0, n, 4,
      [&](int64_t lo, int64_t hi, AccessSet* set) {
        set->Write(out.data(), lo, hi);
        set->Read(in.data(), 0, static_cast<int64_t>(in.size()));
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) out[static_cast<size_t>(i)] = in[0];
      });
  EXPECT_EQ(out[0], 1.0f);
}

TEST(AccessSentinel, ChunkMayReadItsOwnWrites) {
  // In-place kernels (AddRowBroadcast's `out[i] += row[j]`) declare a read
  // and a write of the same range; same-chunk overlap is legal.
  const int64_t n = 32;
  std::vector<float> out(n, 1.0f);
  ForChecked(
      "test/in_place", 0, n, 8,
      [&](int64_t lo, int64_t hi, AccessSet* set) {
        set->Write(out.data(), lo, hi);
        set->Read(out.data(), lo, hi);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) out[static_cast<size_t>(i)] += 1.0f;
      });
  EXPECT_EQ(out[0], 2.0f);
}

using AccessSentinelDeathTest = ::testing::Test;

TEST(AccessSentinelDeathTest, OverlappingWritesAbort) {
  // Seeded mutant: a kernel that partitions its output off-by-one, so
  // adjacent chunks both claim the boundary element. The classic §11 bug.
  std::vector<float> out(64, 0.0f);
  EXPECT_DEATH(
      ForChecked(
          "test/overlapping_writes", 0, 64, 8,
          [&](int64_t lo, int64_t hi, AccessSet* set) {
            set->Write(out.data(), lo, hi + 1);  // one element too far
          },
          [&](int64_t, int64_t) {}),
      "access contract violated");
}

TEST(AccessSentinelDeathTest, ForeignReadAborts) {
  // Seeded mutant: a "parallel prefix" kernel where chunk i reads the
  // element chunk i-1 writes — racy under any real schedule.
  std::vector<float> out(64, 0.0f);
  EXPECT_DEATH(
      ForChecked(
          "test/foreign_read", 0, 64, 8,
          [&](int64_t lo, int64_t hi, AccessSet* set) {
            set->Write(out.data(), lo, hi);
            if (lo > 0) set->Read(out.data(), lo - 1, lo);
          },
          [&](int64_t, int64_t) {}),
      "access contract violated");
}

TEST(AccessSentinelDeathTest, SplitReductionAborts) {
  // Seeded mutant: dispatching par::For inside a serial-by-contract
  // reduction (what a naive parallelization of SumAll would do).
  EXPECT_DEATH(
      {
        SerialReductionScope scope("test/sum_all");
        For(0, 64, 8, [](int64_t, int64_t) {});
      },
      "access contract violated");
}

TEST(AccessSentinel, SerialReductionScopeRestoresOnExit) {
  {
    SerialReductionScope scope("test/scoped");
  }
  // Outside the scope, dispatch is legal again.
  std::vector<float> out(16, 0.0f);
  For(0, 16, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[static_cast<size_t>(i)] = 1.0f;
  });
  EXPECT_EQ(out[15], 1.0f);
}

TEST(AccessSentinel, RealKernelsRunCleanUnderTheChecker) {
  // Exercises the production declarations in tensor.cc on awkward shapes
  // (sizes that don't divide the grain). tensor.cc's own ForChecked gating
  // is per-TU, so the declarations are actually verified in the
  // -DEMBSR_CHECK_CONTRACTS=ON builds run by scripts/run_sanitized_tests.sh;
  // elsewhere this is a plain smoke test of the same call paths.
  Rng rng(123);
  const Tensor a = Tensor::Randn({13, 7}, 1.0f, &rng);
  const Tensor b = Tensor::Randn({13, 7}, 1.0f, &rng);
  const Tensor w = Tensor::Randn({7, 5}, 1.0f, &rng);
  const Tensor row = Tensor::Randn({1, 7}, 1.0f, &rng);

  (void)Add(a, b);
  (void)Mul(a, b);
  (void)MatMul(a, w);
  (void)AddRowBroadcast(a, row);
  (void)MulRowBroadcast(a, row);
  (void)RowSoftmax(a);
  (void)RowLogSumExp(a);
  (void)SumColsToNx1(a);
  (void)ConcatCols(a, b);
  (void)ConcatRows(a, b);
  (void)L2NormalizeRows(a);
  (void)GatherRows(a, {0, 5, 12, 5});
  // Serial-by-contract reductions under their sentinel scopes.
  (void)SumAll(a);
  (void)MeanAll(a);
  (void)SumRowsTo1xD(a);
  Tensor acc = Tensor::Zeros({13, 7});
  ScatterAddRows(Tensor::Randn({3, 7}, 1.0f, &rng), {1, 1, 4}, &acc);
  SUCCEED();
}

}  // namespace
}  // namespace par
}  // namespace embsr
