// Concurrency hammer for the observability hot paths, written to run under
// TSan (scripts/run_sanitized_tests.sh thread). Many threads concurrently
// record spans, bump counters/histograms, and read snapshots while the main
// thread cycles Start/Stop — every interleaving here must be data-race-free.
// The test also asserts basic conservation (no recorded event is lost) so it
// is meaningful in non-TSan builds too.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

namespace embsr {
namespace obs {
namespace {

TEST(ObsRaceTest, ConcurrentCountersAndHistograms) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      // Half the threads resolve the handle every iteration (exercises the
      // registry's lookup path), half cache it (exercises the hot path).
      Counter* cached = Registry::Global().GetCounter("race/cached");
      Histogram* hist = Registry::Global().GetHistogram(
          "race/hist", DefaultLatencyBucketsMs());
      for (int i = 0; i < kIterations; ++i) {
        if (t % 2 == 0) {
          Registry::Global().GetCounter("race/looked_up")->Increment();
        } else {
          cached->Increment();
        }
        hist->Observe(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& th : threads) th.join();

  const int64_t looked_up =
      Registry::Global().GetCounter("race/looked_up")->value();
  const int64_t cached = Registry::Global().GetCounter("race/cached")->value();
  EXPECT_EQ(looked_up + cached, int64_t{kThreads} * kIterations);
}

TEST(ObsRaceTest, ConcurrentSpansAcrossStartStop) {
  constexpr int kThreads = 6;
  constexpr int kSpansPerThread = 500;
  TraceSession& session = TraceSession::Global();
  session.Start("");  // in-memory only

  std::atomic<bool> stop_requested{false};
  std::atomic<int64_t> recorded{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&session, &recorded] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const int64_t start = session.NowUs();
        { EMBSR_TRACE_SPAN("race/span"); }
        // Sessions may flip enabled mid-span; only count what had a chance
        // to land while enabled.
        if (session.enabled()) recorded.fetch_add(1);
        (void)start;
      }
    });
  }

  // Reader thread: snapshots and JSON export race against recording.
  std::thread reader([&session, &stop_requested] {
    while (!stop_requested.load()) {
      (void)session.SnapshotEvents();
      (void)session.event_count();
      (void)session.ToJson();
    }
  });

  for (auto& th : workers) th.join();
  stop_requested.store(true);
  reader.join();

  // All spans recorded while continuously enabled must be present.
  EXPECT_GE(static_cast<int64_t>(session.event_count()), recorded.load());
  EXPECT_TRUE(session.Stop().ok());

  // Start() clears prior events under concurrent NowUs() readers.
  std::thread ticker([&session] {
    for (int i = 0; i < 10000; ++i) (void)session.NowUs();
  });
  session.Start("");
  ticker.join();
  EXPECT_TRUE(session.Stop().ok());
}

TEST(ObsRaceTest, PoolChunksHammerMetricsConcurrently) {
  // The par:: pool and the obs registry meet on every parallel kernel (the
  // pool publishes queue-depth/task gauges; kernels run under spans), so
  // their interleavings must be race-free. Chunks from a 4-lane pool bump
  // counters and observe histograms while external reader threads snapshot,
  // all under the TSan leg of the sanitizer matrix.
  par::SetThreadCount(4);
  constexpr int kRounds = 50;
  constexpr int64_t kChunks = 256;

  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&stop_readers] {
      while (!stop_readers.load()) {
        (void)Registry::Global().SnapshotJson();
      }
    });
  }

  Counter* hits = Registry::Global().GetCounter("race/pool_chunks");
  Histogram* hist = Registry::Global().GetHistogram(
      "race/pool_hist", DefaultLatencyBucketsMs());
  for (int round = 0; round < kRounds; ++round) {
    par::For(0, kChunks, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        hits->Increment();
        hist->Observe(static_cast<double>(i % 32));
        Registry::Global()
            .GetCounter("race/pool_looked_up")
            ->Increment();
      }
    });
  }

  stop_readers.store(true);
  for (auto& th : readers) th.join();
  par::SetThreadCount(0);

  EXPECT_EQ(hits->value(), int64_t{kRounds} * kChunks);
  EXPECT_EQ(Registry::Global().GetCounter("race/pool_looked_up")->value(),
            int64_t{kRounds} * kChunks);
}

TEST(ObsRaceTest, TimingToggleRaces) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 2000; ++i) {
        if (t == 0) SetTimingEnabled(i % 2 == 0);
        EMBSR_TIMED_SPAN("race/timed", "race/timed_ms");
      }
    });
  }
  for (auto& th : threads) th.join();
  SetTimingEnabled(false);
}

}  // namespace
}  // namespace obs
}  // namespace embsr
