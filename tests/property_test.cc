// Property-style randomized invariant tests, parameterized over seeds.
// Each test states an invariant that must hold for *any* input drawn from
// the generators, not a hand-picked example.

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/embsr_model.h"
#include "graph/session_graph.h"
#include "metrics/metrics.h"
#include "optim/optimizer.h"
#include "test_util.h"
#include "util/rng.h"

namespace embsr {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

TEST_P(SeededProperty, SoftmaxRowsAreDistributions) {
  const int64_t n = 1 + rng_.UniformInt(6);
  const int64_t m = 2 + rng_.UniformInt(30);
  Tensor x = Tensor::Randn({n, m}, 5.0f, &rng_);
  Tensor s = RowSoftmax(x);
  for (int64_t i = 0; i < n; ++i) {
    double sum = 0;
    for (int64_t j = 0; j < m; ++j) {
      EXPECT_GE(s.at2(i, j), 0.0f);
      sum += s.at2(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_P(SeededProperty, SoftmaxIsShiftInvariant) {
  const int64_t m = 2 + rng_.UniformInt(10);
  Tensor x = Tensor::Randn({1, m}, 2.0f, &rng_);
  Tensor shifted = AddScalar(x, static_cast<float>(rng_.Uniform(-50, 50)));
  EXPECT_TRUE(RowSoftmax(x).AllClose(RowSoftmax(shifted), 1e-5f));
}

TEST_P(SeededProperty, MatMulDistributesOverAddition) {
  const int64_t n = 1 + rng_.UniformInt(5);
  const int64_t k = 1 + rng_.UniformInt(5);
  const int64_t m = 1 + rng_.UniformInt(5);
  Tensor a = Tensor::Randn({n, k}, 1.0f, &rng_);
  Tensor b = Tensor::Randn({k, m}, 1.0f, &rng_);
  Tensor c = Tensor::Randn({k, m}, 1.0f, &rng_);
  Tensor left = MatMul(a, Add(b, c));
  Tensor right = Add(MatMul(a, b), MatMul(a, c));
  EXPECT_TRUE(left.AllClose(right, 1e-4f));
}

TEST_P(SeededProperty, TransposeIsInvolution) {
  const int64_t n = 1 + rng_.UniformInt(8);
  const int64_t m = 1 + rng_.UniformInt(8);
  Tensor a = Tensor::Randn({n, m}, 1.0f, &rng_);
  EXPECT_TRUE(a.Transposed().Transposed().AllClose(a, 0.0f));
}

TEST_P(SeededProperty, L2NormalizedRowsHaveUnitNorm) {
  const int64_t n = 1 + rng_.UniformInt(6);
  const int64_t d = 2 + rng_.UniformInt(20);
  Tensor a = Tensor::Randn({n, d}, 2.0f, &rng_);
  Tensor norm = L2NormalizeRows(a);
  for (int64_t i = 0; i < n; ++i) {
    double acc = 0;
    for (int64_t j = 0; j < d; ++j) {
      acc += static_cast<double>(norm.at2(i, j)) * norm.at2(i, j);
    }
    EXPECT_NEAR(acc, 1.0, 1e-4);
  }
}

TEST_P(SeededProperty, MultigraphStructuralInvariants) {
  // Random macro sequence with no immediate duplicates (preprocessing
  // guarantees that), arbitrary revisits otherwise.
  const int len = 1 + static_cast<int>(rng_.UniformInt(20));
  std::vector<int64_t> seq;
  int64_t prev = -1;
  for (int i = 0; i < len; ++i) {
    int64_t item = rng_.UniformInt(8);
    if (item == prev) item = (item + 1) % 8;
    seq.push_back(item);
    prev = item;
  }
  auto g = SessionMultigraph::Build(seq);
  // One edge per transition; multi-edges preserved.
  EXPECT_EQ(g.num_edges(), static_cast<int>(seq.size()) - 1);
  // Nodes are exactly the distinct items.
  std::vector<int64_t> distinct = seq;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  EXPECT_EQ(g.num_nodes(), static_cast<int>(distinct.size()));
  // Alias maps every position to the node holding its item.
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(g.nodes()[g.alias()[i]], seq[i]);
  }
  // Edge order attributes are exactly 0..E-1 (chronological).
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edges()[e].order, e);
  }
  // In/out edge lists partition the edge set.
  int in_total = 0, out_total = 0;
  for (int v = 0; v < g.num_nodes(); ++v) {
    in_total += static_cast<int>(g.in_edges(v).size());
    out_total += static_cast<int>(g.out_edges(v).size());
  }
  EXPECT_EQ(in_total, g.num_edges());
  EXPECT_EQ(out_total, g.num_edges());
}

TEST_P(SeededProperty, RankOfTargetMatchesReferenceSort) {
  const int64_t n = 3 + rng_.UniformInt(50);
  std::vector<float> scores(n);
  for (auto& s : scores) {
    // Coarse quantization to force ties.
    s = static_cast<float>(rng_.UniformInt(6));
  }
  const int64_t target = rng_.UniformInt(n);
  // Reference: stable sort of (score desc, id asc); rank = index + 1.
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  const int expected =
      static_cast<int>(std::find(order.begin(), order.end(), target) -
                       order.begin()) +
      1;
  EXPECT_EQ(RankOfTarget(scores, target), expected);
}

TEST_P(SeededProperty, WilcoxonPValueIsAProbability) {
  const size_t n = 3 + rng_.UniformInt(100);
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng_.Normal();
    b[i] = rng_.Normal() + rng_.Uniform(-0.5, 0.5);
  }
  const double p = WilcoxonSignedRankP(a, b);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST_P(SeededProperty, OneAdamStepReducesLossOnRandomLinearModel) {
  // For a freshly initialized linear softmax classifier and any batch, a
  // small Adam step on the batch gradient must reduce the batch loss.
  const int64_t d = 4 + rng_.UniformInt(8);
  const int64_t c = 3 + rng_.UniformInt(8);
  ag::Variable w(Tensor::Randn({d, c}, 0.3f, &rng_), true);
  Tensor x = Tensor::Randn({5, d}, 1.0f, &rng_);
  std::vector<int64_t> targets(5);
  for (auto& t : targets) t = rng_.UniformInt(c);

  auto loss_fn = [&]() {
    return ag::SoftmaxCrossEntropy(ag::MatMul(ag::Constant(x), w), targets);
  };
  optim::Adam opt({w}, 1e-3f);
  const float before = loss_fn().value().at(0);
  opt.ZeroGrad();
  loss_fn().Backward();
  opt.Step();
  const float after = loss_fn().value().at(0);
  EXPECT_LT(after, before);
}

TEST_P(SeededProperty, EmbsrScoresFiniteOnRandomSessions) {
  TrainConfig cfg;
  cfg.embedding_dim = 12;
  cfg.seed = GetParam();
  EmbsrModel model("EMBSR", 40, 6, cfg);
  model.SetTraining(false);
  // Random well-formed example.
  Example ex;
  const int len = 1 + static_cast<int>(rng_.UniformInt(8));
  int64_t prev = -1;
  for (int i = 0; i < len; ++i) {
    int64_t item = rng_.UniformInt(40);
    if (item == prev) item = (item + 1) % 40;
    prev = item;
    const int k = 1 + static_cast<int>(rng_.UniformInt(3));
    std::vector<int64_t> ops;
    for (int j = 0; j < k; ++j) ops.push_back(rng_.UniformInt(6));
    ex.macro_items.push_back(item);
    ex.macro_ops.push_back(ops);
    for (int64_t op : ops) {
      ex.flat_items.push_back(item);
      ex.flat_ops.push_back(op);
    }
  }
  ex.target = rng_.UniformInt(40);
  const auto scores = model.ScoreAll(ex);
  ASSERT_EQ(scores.size(), 40u);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

}  // namespace
}  // namespace embsr
