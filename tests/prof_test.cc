// embsr::prof — per-op attribution, cost models, memory tracker, lane stats.
//
// The two contract-critical suites:
//  - CostModelCoverage diffs three name lists in both directions (ops
//    declared in autograd/ops.h, EMBSR_OP_COST markers scanned from
//    op_costs.cc, cost functions actually registered at runtime) so an op
//    added without a cost model — or a stale model for a removed op —
//    fails ctest, mirroring the gradcheck coverage contract.
//  - ProfAttribution pins the gap-based accounting: with profiling on,
//    per-op forward+backward time summed over the snapshot must land
//    within 10% of the enclosing StepScope spans (ISSUE acceptance
//    criterion).

#include <algorithm>
#include <string>
#include <vector>

#include "autograd/op_costs.h"
#include "autograd/ops.h"
#include "gtest/gtest.h"
#include "prof/op_profiler.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "verify/source_scan.h"

namespace embsr {
namespace {

using ag::Variable;

// Names in `a` that are missing from sorted `b`, for failure messages.
std::string Missing(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  std::string out;
  for (const std::string& name : a) {
    if (!std::binary_search(b.begin(), b.end(), name)) {
      if (!out.empty()) out += ", ";
      out += name;
    }
  }
  return out.empty() ? "(none)" : out;
}

prof::OpCost CostFor(const char* op, prof::ShapeInfo info) {
  ag::RegisterOpCostModels();
  prof::CostFn fn = prof::FindOpCost(op);
  EXPECT_NE(fn, nullptr) << "no cost model registered for " << op;
  return fn == nullptr ? prof::OpCost{} : fn(info);
}

TEST(CostModelPins, MatMulAgainstHandComputedValues) {
  // [3,4] x [4,5] -> [3,5]: 2*n*k*m = 2*3*4*5 = 120 flops;
  // reads (12+20) floats = 128 bytes; writes 15 floats = 60 bytes.
  prof::ShapeInfo s;
  s.inputs = {{3, 4}, {4, 5}};
  s.output = {3, 5};
  const prof::OpCost c = CostFor("MatMul", s);
  EXPECT_DOUBLE_EQ(c.flops, 120.0);
  EXPECT_DOUBLE_EQ(c.bytes_read, 128.0);
  EXPECT_DOUBLE_EQ(c.bytes_written, 60.0);
}

TEST(CostModelPins, GatherRowsAgainstHandComputedValues) {
  // Embedding gather of 3 rows of width 4: touches only the gathered rows
  // (12 floats = 48 bytes read), writes the same 48 bytes, zero flops —
  // the table size must NOT appear in the cost.
  prof::ShapeInfo s;
  s.inputs = {{1000, 4}};
  s.output = {3, 4};
  const prof::OpCost c = CostFor("GatherRows", s);
  EXPECT_DOUBLE_EQ(c.flops, 0.0);
  EXPECT_DOUBLE_EQ(c.bytes_read, 48.0);
  EXPECT_DOUBLE_EQ(c.bytes_written, 48.0);
}

TEST(CostModelPins, EveryRegisteredModelYieldsFiniteNonNegativeCosts) {
  ag::RegisterOpCostModels();
  prof::ShapeInfo s;
  s.inputs = {{8, 16}, {16, 8}, {8, 16}};
  s.output = {8, 16};
  for (const std::string& name : prof::RegisteredOpCostNames()) {
    prof::CostFn fn = prof::FindOpCost(name.c_str());
    ASSERT_NE(fn, nullptr) << name;
    const prof::OpCost c = fn(s);
    EXPECT_GE(c.flops, 0.0) << name;
    EXPECT_GE(c.bytes_read, 0.0) << name;
    EXPECT_GE(c.bytes_written, 0.0) << name;
  }
}

TEST(CostModelCoverage, DeclaredScannedAndRegisteredAgreeBothWays) {
  ag::RegisterOpCostModels();

  const auto declared = verify::ScanOpNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(declared.ok()) << declared.status().ToString();
  ASSERT_FALSE(declared.value().empty());

  const auto scanned = verify::ScanOpCostCoverage(EMBSR_REPO_ROOT);
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();

  const std::vector<std::string> registered = prof::RegisteredOpCostNames();

  EXPECT_EQ(declared.value(), scanned.value())
      << "ops without an EMBSR_OP_COST entry in src/autograd/op_costs.cc: "
      << Missing(declared.value(), scanned.value())
      << "; stale EMBSR_OP_COST entries for undeclared ops: "
      << Missing(scanned.value(), declared.value());

  EXPECT_EQ(declared.value(), registered)
      << "ops whose cost model never registers at runtime: "
      << Missing(declared.value(), registered)
      << "; runtime registrations with no declared op: "
      << Missing(registered, declared.value());
}

TEST(ProfAttribution, PerOpTimesSumToStepSpanWithinTenPercent) {
  Rng rng(17);
  const Tensor ta = Tensor::Randn({128, 128}, 0.5f, &rng);
  const Tensor tb = Tensor::Randn({128, 128}, 0.5f, &rng);
  const Tensor tc = Tensor::Randn({128, 128}, 0.5f, &rng);

  prof::Start();
  const int kSteps = 5;
  for (int i = 0; i < kSteps; ++i) {
    prof::StepScope step;
    Variable a(ta, true);
    Variable b(tb, true);
    Variable c(tc, true);
    Variable y = ag::SumAll(ag::MatMul(ag::MatMul(a, b), c));
    y.Backward();
  }
  prof::Stop();

  const prof::ProfileSnapshot snap = prof::Snapshot();
  EXPECT_EQ(snap.steps, kSteps);
  ASSERT_GT(snap.step_ns, 0);
  ASSERT_FALSE(snap.ops.empty());

  int64_t attributed = 0;
  bool saw_matmul = false;
  for (const prof::OpAgg& op : snap.ops) {
    attributed += op.forward_ns + op.backward_ns;
    if (op.name == "MatMul") {
      saw_matmul = true;
      EXPECT_EQ(op.calls, 2 * kSteps);
      EXPECT_EQ(op.backward_calls, 2 * kSteps);
      // 2 * 128^3 flops per call, both calls square.
      EXPECT_DOUBLE_EQ(op.flops, 2.0 * 128 * 128 * 128 * 2 * kSteps);
    }
  }
  EXPECT_TRUE(saw_matmul);

  // Gap-based forward charging + directly-timed backward means the per-op
  // sum can never exceed the step spans, and with 128^3 MatMuls dominating
  // the work it must reach at least 90% of them.
  const double ratio =
      static_cast<double>(attributed) / static_cast<double>(snap.step_ns);
  EXPECT_LE(ratio, 1.05) << "attributed " << attributed << "ns vs step "
                         << snap.step_ns << "ns";
  EXPECT_GE(ratio, 0.90) << "attributed " << attributed << "ns vs step "
                         << snap.step_ns << "ns";
}

TEST(ProfAttribution, ComponentScopeLabelsOps) {
  Rng rng(3);
  const Tensor t = Tensor::Randn({16, 16}, 0.5f, &rng);

  prof::Start();
  {
    prof::StepScope step;
    prof::ComponentScope component("prof_test_component");
    Variable a(t, true);
    ag::SumAll(ag::MatMul(a, a)).Backward();
  }
  prof::Stop();

  const prof::ProfileSnapshot snap = prof::Snapshot();
  bool found = false;
  for (const prof::OpAgg& c : snap.components) {
    if (c.name == "prof_test_component") {
      found = true;
      EXPECT_GT(c.calls, 0);
      EXPECT_GT(c.backward_calls, 0);
    }
  }
  EXPECT_TRUE(found) << "component rollup missing the scoped label";
}

TEST(ProfAttribution, DisabledProfilerRecordsNothing) {
  ASSERT_FALSE(prof::Enabled());
  {
    prof::StepScope step;  // must be inert when off
    Variable a(Tensor::Scalar(2.0f), true);
    ag::Mul(a, a).Backward();
  }
  // Start+Stop immediately: the session sees none of the work above.
  prof::Start();
  prof::Stop();
  const prof::ProfileSnapshot snap = prof::Snapshot();
  EXPECT_EQ(snap.steps, 0);
  EXPECT_TRUE(snap.ops.empty());
}

TEST(MemTrackerTest, LivePeakAndCountsFollowTensorLifetimes) {
  prof::Start();
  const prof::MemStats base = prof::MemSnapshot();
  {
    Tensor t = Tensor::Zeros({10, 10});  // 400 bytes
    const prof::MemStats mid = prof::MemSnapshot();
    EXPECT_EQ(mid.live_bytes - base.live_bytes, 400);
    EXPECT_GE(mid.peak_bytes, mid.live_bytes);
    EXPECT_EQ(mid.alloc_count - base.alloc_count, 1);
    EXPECT_EQ(mid.alloc_bytes_total - base.alloc_bytes_total, 400);
  }
  const prof::MemStats end = prof::MemSnapshot();
  EXPECT_EQ(end.live_bytes, base.live_bytes);
  EXPECT_EQ(end.free_count - base.free_count, 1);
  EXPECT_GE(end.peak_bytes - base.live_bytes, 400);
  prof::Stop();
}

TEST(MemTrackerTest, MoveTransfersOwnershipWithoutDoubleCounting) {
  prof::Start();
  const prof::MemStats base = prof::MemSnapshot();
  {
    Tensor t = Tensor::Zeros({8, 8});  // 256 bytes
    Tensor u = std::move(t);
    // Move transfers the buffer: still one live allocation.
    const prof::MemStats mid = prof::MemSnapshot();
    EXPECT_EQ(mid.live_bytes - base.live_bytes, 256);
    EXPECT_EQ(mid.alloc_count - base.alloc_count, 1);
  }
  const prof::MemStats end = prof::MemSnapshot();
  EXPECT_EQ(end.live_bytes, base.live_bytes);
  EXPECT_EQ(end.free_count - base.free_count, 1);
  prof::Stop();
}

TEST(MemTrackerTest, TimelineCapturesEventsAndCountsDrops) {
  prof::SetTimelineCapture(true, 4);
  prof::Start();  // clears the timeline
  {
    std::vector<Tensor> keep;
    for (int i = 0; i < 6; ++i) keep.push_back(Tensor::Zeros({4, 4}));
  }
  prof::Stop();
  const std::vector<prof::MemEvent> events = prof::TimelineSnapshot();
  EXPECT_EQ(events.size(), 4u);
  EXPECT_GT(prof::TimelineDropped(), 0);
  for (const prof::MemEvent& e : events) {
    EXPECT_GT(e.ts_ns, 0);
    EXPECT_EQ(e.delta_bytes, 64);  // 4x4 floats, all allocs fit in the cap
    EXPECT_GE(e.live_bytes, e.delta_bytes);
  }
  prof::SetTimelineCapture(false, 65536);  // restore the default
}

TEST(ProfPoolStats, LaneAccountingRoundTrips) {
  prof::Start();
  prof::AddLaneBusy(0, 1000, 2);
  prof::AddLaneBusy(2, 500, 1);
  prof::AddLaneBusy(0, 200, 1);
  const std::vector<prof::LaneStats> lanes = prof::LaneSnapshot();
  ASSERT_EQ(lanes.size(), 3u);  // trimmed to the highest recorded lane
  EXPECT_EQ(lanes[0].busy_ns, 1200);
  EXPECT_EQ(lanes[0].chunks, 3);
  EXPECT_EQ(lanes[1].busy_ns, 0);
  EXPECT_EQ(lanes[2].busy_ns, 500);
  EXPECT_EQ(lanes[2].chunks, 1);
  prof::Stop();
}

TEST(ProfReport, JsonHasTheSchemaV3Keys) {
  Rng rng(5);
  const Tensor t = Tensor::Randn({32, 32}, 0.5f, &rng);
  prof::Start();
  {
    prof::StepScope step;
    Variable a(t, true);
    ag::SumAll(ag::MatMul(a, a)).Backward();
  }
  prof::Stop();
  const std::string json = prof::ProfileJson();
  for (const char* key :
       {"\"enabled\"", "\"steps\"", "\"step_ms\"", "\"top_ops\"",
        "\"components\"", "\"memory\"", "\"peak_bytes\"", "\"lanes\"",
        "\"pool\"", "\"roofline\"", "\"MatMul\""}) {
    EXPECT_NE(json.find(key), std::string::npos)
        << "profile JSON missing " << key << ": " << json;
  }
}

}  // namespace
}  // namespace embsr
