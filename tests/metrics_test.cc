#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace embsr {
namespace {

TEST(RankOfTargetTest, BestScoreRanksFirst) {
  EXPECT_EQ(RankOfTarget({0.1f, 0.9f, 0.2f}, 1), 1);
  EXPECT_EQ(RankOfTarget({0.1f, 0.9f, 0.2f}, 2), 2);
  EXPECT_EQ(RankOfTarget({0.1f, 0.9f, 0.2f}, 0), 3);
}

TEST(RankOfTargetTest, TieBreaksByLowerIdFirst) {
  // Items 0 and 2 tie; the target is 2 -> item 0 ranks ahead of it.
  EXPECT_EQ(RankOfTarget({0.5f, 0.1f, 0.5f}, 2), 2);
  // Target 0 with the same tie ranks first.
  EXPECT_EQ(RankOfTarget({0.5f, 0.1f, 0.5f}, 0), 1);
}

TEST(RankAccumulatorTest, HitAndMrr) {
  RankAccumulator acc;
  acc.Add(1);
  acc.Add(3);
  acc.Add(25);
  acc.Add(7);
  EXPECT_EQ(acc.count(), 4);
  // H@5: ranks 1, 3 hit -> 50%.
  EXPECT_DOUBLE_EQ(acc.HitAt(5), 50.0);
  // H@20: ranks 1, 3, 7 -> 75%.
  EXPECT_DOUBLE_EQ(acc.HitAt(20), 75.0);
  // M@5: (1 + 1/3) / 4.
  EXPECT_NEAR(acc.MrrAt(5), 100.0 * (1.0 + 1.0 / 3) / 4, 1e-9);
  // M@20 adds 1/7.
  EXPECT_NEAR(acc.MrrAt(20), 100.0 * (1.0 + 1.0 / 3 + 1.0 / 7) / 4, 1e-9);
}

TEST(RankAccumulatorTest, EmptyIsZero) {
  RankAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.HitAt(5), 0.0);
  EXPECT_DOUBLE_EQ(acc.MrrAt(5), 0.0);
}

TEST(RankAccumulatorTest, MergeCombines) {
  RankAccumulator a, b;
  a.Add(1);
  b.Add(100);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.HitAt(10), 50.0);
}

TEST(RankAccumulatorTest, MonotoneInK) {
  RankAccumulator acc;
  for (int r : {1, 2, 4, 8, 16, 32}) acc.Add(r);
  EXPECT_LE(acc.HitAt(1), acc.HitAt(5));
  EXPECT_LE(acc.HitAt(5), acc.HitAt(10));
  EXPECT_LE(acc.HitAt(10), acc.HitAt(20));
  EXPECT_LE(acc.MrrAt(1), acc.MrrAt(20));
}

TEST(ReportAtTest, PopulatesAllCutoffs) {
  RankAccumulator acc;
  acc.Add(2);
  MetricReport rep = ReportAt(acc, {1, 5, 10});
  EXPECT_EQ(rep.hit.size(), 3u);
  EXPECT_DOUBLE_EQ(rep.hit.at(1), 0.0);
  EXPECT_DOUBLE_EQ(rep.hit.at(5), 100.0);
  EXPECT_DOUBLE_EQ(rep.mrr.at(5), 50.0);
}

TEST(MetricIdentityTest, HitAt1EqualsMrrAt1) {
  // The paper notes H@1 == M@1; verify on random ranks.
  Rng rng(5);
  RankAccumulator acc;
  for (int i = 0; i < 500; ++i) {
    acc.Add(1 + static_cast<int>(rng.UniformInt(40)));
  }
  EXPECT_DOUBLE_EQ(acc.HitAt(1), acc.MrrAt(1));
}

TEST(WilcoxonTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a = {0.1, 0.5, 0.3, 0.9, 0.2};
  EXPECT_DOUBLE_EQ(WilcoxonSignedRankP(a, a), 1.0);
}

TEST(WilcoxonTest, ClearlyShiftedIsSignificant) {
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform();
    a.push_back(x + 0.5);
    b.push_back(x);
  }
  EXPECT_LT(WilcoxonSignedRankP(a, b), 1e-6);
}

TEST(WilcoxonTest, SymmetricNoiseNotSignificant) {
  Rng rng(9);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(rng.Normal());
    b.push_back(rng.Normal());
  }
  EXPECT_GT(WilcoxonSignedRankP(a, b), 0.01);
}

TEST(WilcoxonTest, TooFewDifferencesReturnsOne) {
  EXPECT_DOUBLE_EQ(WilcoxonSignedRankP({1.0, 2.0}, {1.5, 2.0}), 1.0);
}

TEST(WilcoxonTest, SymmetricInArguments) {
  Rng rng(11);
  std::vector<double> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.Uniform());
    b.push_back(rng.Uniform());
  }
  EXPECT_NEAR(WilcoxonSignedRankP(a, b), WilcoxonSignedRankP(b, a), 1e-12);
}

TEST(TopKIndicesTest, ReturnsTopScoresInDescendingOrder) {
  const std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.7f, 0.3f};
  EXPECT_EQ(TopKIndices(scores, 3), (std::vector<int64_t>{1, 3, 2}));
}

TEST(TopKIndicesTest, TiesBreakTowardLowerIndex) {
  const std::vector<float> scores = {0.5f, 0.9f, 0.5f, 0.9f, 0.5f};
  EXPECT_EQ(TopKIndices(scores, 4), (std::vector<int64_t>{1, 3, 0, 2}));
}

TEST(TopKIndicesTest, KLargerThanNClampsToFullRanking) {
  const std::vector<float> scores = {0.2f, 0.8f, 0.4f};
  EXPECT_EQ(TopKIndices(scores, 10), (std::vector<int64_t>{1, 2, 0}));
}

TEST(TopKIndicesTest, KZeroAndEmptyInput) {
  EXPECT_TRUE(TopKIndices({0.1f, 0.2f}, 0).empty());
  EXPECT_TRUE(TopKIndices({}, 5).empty());
}

TEST(TopKIndicesTest, AgreesWithRankOfTarget) {
  // The partial top-k and the full ranking share one ordering: an item is in
  // the top k exactly when RankOfTarget gives it rank <= k, and its position
  // in the returned list is its rank - 1.
  Rng rng(42);
  std::vector<float> scores(101);
  for (auto& s : scores) s = static_cast<float>(rng.Uniform(-1.0, 1.0));
  scores[17] = scores[63];  // force a tie
  const size_t k = 10;
  const std::vector<int64_t> top = TopKIndices(scores, k);
  ASSERT_EQ(top.size(), k);
  for (size_t pos = 0; pos < top.size(); ++pos) {
    EXPECT_EQ(RankOfTarget(scores, top[pos]), static_cast<int>(pos) + 1);
  }
  for (int64_t i = 0; i < static_cast<int64_t>(scores.size()); ++i) {
    const bool in_top = std::find(top.begin(), top.end(), i) != top.end();
    EXPECT_EQ(in_top, RankOfTarget(scores, i) <= static_cast<int>(k)) << i;
  }
}

}  // namespace
}  // namespace embsr
