#include "optim/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace embsr {
namespace {

using ag::Variable;

Variable QuadraticLoss(const Variable& x, const Tensor& target) {
  Variable diff = ag::Sub(x, ag::Constant(target));
  return ag::SumAll(ag::Mul(diff, diff));
}

TEST(SgdTest, SingleStepMatchesFormula) {
  Variable x(Tensor({2}, {1.0f, 2.0f}), true);
  optim::Sgd opt({x}, /*lr=*/0.1f);
  QuadraticLoss(x, Tensor({2}, {0.0f, 0.0f})).Backward();
  opt.Step();
  // grad = 2x -> x' = x - 0.1 * 2x = 0.8x.
  EXPECT_NEAR(x.value().at(0), 0.8f, 1e-6);
  EXPECT_NEAR(x.value().at(1), 1.6f, 1e-6);
}

TEST(SgdTest, MomentumAcceleratesAlongConstantGradient) {
  Variable a(Tensor({1}, {0.0f}), true);
  Variable b(Tensor({1}, {0.0f}), true);
  optim::Sgd plain({a}, 0.01f, 0.0f);
  optim::Sgd heavy({b}, 0.01f, 0.9f);
  for (int i = 0; i < 10; ++i) {
    plain.ZeroGrad();
    heavy.ZeroGrad();
    ag::Scale(a, 1.0f).Backward();  // constant gradient 1
    ag::Scale(b, 1.0f).Backward();
    plain.Step();
    heavy.Step();
  }
  EXPECT_LT(b.value().at(0), a.value().at(0));  // moved further (negative)
}

TEST(SgdTest, SkipsParametersWithoutGrad) {
  Variable x(Tensor({1}, {5.0f}), true);
  optim::Sgd opt({x}, 0.1f);
  opt.Step();  // no backward happened
  EXPECT_FLOAT_EQ(x.value().at(0), 5.0f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Variable x(Tensor({3}, {5.0f, -4.0f, 2.0f}), true);
  const Tensor target({3}, {1.0f, 1.0f, 1.0f});
  optim::Adam opt({x}, /*lr=*/0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    QuadraticLoss(x, target).Backward();
    opt.Step();
  }
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(x.value().at(i), 1.0f, 1e-2);
}

TEST(AdamTest, FirstStepSizeIsLr) {
  // With bias correction, the very first Adam step has magnitude ~lr.
  Variable x(Tensor({1}, {10.0f}), true);
  optim::Adam opt({x}, 0.5f);
  ag::Scale(x, 3.0f).Backward();  // any nonzero gradient
  opt.Step();
  EXPECT_NEAR(x.value().at(0), 10.0f - 0.5f, 1e-4);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Variable a(Tensor({1}, {2.0f}), true);
  Variable b(Tensor({1}, {2.0f}), true);
  optim::Adam no_decay({a}, 0.01f, 0.9f, 0.999f, 1e-8f, 0.0f);
  optim::Adam decay({b}, 0.01f, 0.9f, 0.999f, 1e-8f, 0.5f);
  for (int i = 0; i < 50; ++i) {
    no_decay.ZeroGrad();
    decay.ZeroGrad();
    // Zero data gradient: only decay acts.
    ag::Scale(a, 0.0f).Backward();
    ag::Scale(b, 0.0f).Backward();
    no_decay.Step();
    decay.Step();
  }
  EXPECT_NEAR(a.value().at(0), 2.0f, 1e-5);
  EXPECT_LT(b.value().at(0), 2.0f);
}

TEST(ClipGradNormTest, NoOpBelowThreshold) {
  Variable x(Tensor({2}, {1.0f, 1.0f}), true);
  ag::SumAll(x).Backward();  // grad = (1, 1), norm sqrt(2)
  const float norm = optim::ClipGradNorm({x}, 10.0f);
  EXPECT_NEAR(norm, std::sqrt(2.0f), 1e-5);
  EXPECT_NEAR(x.GradOrZeros().at(0), 1.0f, 1e-6);
}

TEST(ClipGradNormTest, RescalesAboveThreshold) {
  Variable x(Tensor({2}, {1.0f, 1.0f}), true);
  ag::Scale(ag::SumAll(x), 100.0f).Backward();  // grad = (100, 100)
  optim::ClipGradNorm({x}, 1.0f);
  const Tensor g = x.GradOrZeros();
  EXPECT_NEAR(g.L2Norm(), 1.0f, 1e-4);
  EXPECT_NEAR(g.at(0), g.at(1), 1e-6);  // direction preserved
}

TEST(ClipGradNormTest, GlobalAcrossParameters) {
  Variable a(Tensor({1}, {0.0f}), true);
  Variable b(Tensor({1}, {0.0f}), true);
  ag::Scale(ag::Add(ag::Scale(a, 3.0f), ag::Scale(b, 4.0f)), 1.0f)
      .Backward();  // grads 3 and 4, global norm 5
  const float norm = optim::ClipGradNorm({a, b}, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5);
  EXPECT_NEAR(a.GradOrZeros().at(0), 0.6f, 1e-5);
  EXPECT_NEAR(b.GradOrZeros().at(0), 0.8f, 1e-5);
}

TEST(StepDecayScheduleTest, DecaysEveryStep) {
  optim::StepDecaySchedule s(1.0f, 3, 0.1f);
  EXPECT_FLOAT_EQ(s.LrForEpoch(0), 1.0f);
  EXPECT_FLOAT_EQ(s.LrForEpoch(2), 1.0f);
  EXPECT_FLOAT_EQ(s.LrForEpoch(3), 0.1f);
  EXPECT_FLOAT_EQ(s.LrForEpoch(6), 0.01f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Variable x(Tensor({1}, {1.0f}), true);
  optim::Sgd opt({x}, 0.1f);
  ag::SumAll(x).Backward();
  EXPECT_TRUE(x.has_grad());
  opt.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

}  // namespace
}  // namespace embsr
