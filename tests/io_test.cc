#include "data/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "robust/failpoint.h"

namespace embsr {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SessionCsvTest, RoundTrip) {
  std::vector<Session> sessions(2);
  sessions[0].events = {{1, 0}, {1, 2}, {5, 0}};
  sessions[1].events = {{7, 1}};
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteSessionsCsv(sessions, path).ok());

  auto loaded = ReadSessionsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].events, sessions[0].events);
  EXPECT_EQ(loaded.value()[1].events, sessions[1].events);
}

TEST(SessionCsvTest, RoundTripGeneratedDataset) {
  const auto sessions = GenerateSessions(TrivagoConfig(0.02));
  const std::string path = TempPath("generated.csv");
  ASSERT_TRUE(WriteSessionsCsv(sessions, path).ok());
  auto loaded = ReadSessionsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), sessions.size());
  for (size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].events, sessions[i].events) << "session " << i;
  }
}

TEST(SessionCsvTest, MissingFileIsNotFound) {
  auto r = ReadSessionsCsv(TempPath("does_not_exist.csv"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SessionCsvTest, RejectsBadHeader) {
  const std::string path = TempPath("bad_header.csv");
  std::ofstream(path) << "item,op\n1,2\n";
  auto r = ReadSessionsCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionCsvTest, RejectsMalformedRow) {
  const std::string path = TempPath("malformed.csv");
  std::ofstream(path) << "session_id,item_id,operation_id\n0,1\n";
  EXPECT_FALSE(ReadSessionsCsv(path).ok());
}

TEST(SessionCsvTest, RejectsNonNumericField) {
  const std::string path = TempPath("non_numeric.csv");
  std::ofstream(path) << "session_id,item_id,operation_id\n0,abc,1\n";
  EXPECT_FALSE(ReadSessionsCsv(path).ok());
}

TEST(SessionCsvTest, RejectsNegativeIds) {
  const std::string path = TempPath("negative.csv");
  std::ofstream(path) << "session_id,item_id,operation_id\n0,-5,1\n";
  EXPECT_FALSE(ReadSessionsCsv(path).ok());
}

TEST(SessionCsvTest, RejectsDecreasingSessionIds) {
  const std::string path = TempPath("decreasing.csv");
  std::ofstream(path) << "session_id,item_id,operation_id\n"
                      << "1,1,0\n0,2,0\n";
  EXPECT_FALSE(ReadSessionsCsv(path).ok());
}

TEST(SessionCsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  std::ofstream(path) << "session_id,item_id,operation_id\n"
                      << "0,1,0\n\n0,2,1\n";
  auto r = ReadSessionsCsv(path);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].events.size(), 2u);
}

TEST(SessionCsvTest, RejectsOutOfRangeIds) {
  const std::string path = TempPath("overflow.csv");
  // 20 digits > int64 max: strtoll saturates with ERANGE, which used to
  // slip through as a silently clamped id.
  std::ofstream(path) << "session_id,item_id,operation_id\n"
                      << "0,99999999999999999999,1\n";
  auto r = ReadSessionsCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("out of int64 range"),
            std::string::npos);
}

TEST(SessionCsvTest, ToleratesCrlfLineEndings) {
  const std::string path = TempPath("crlf.csv");
  std::ofstream(path, std::ios::binary)
      << "session_id,item_id,operation_id\r\n0,1,0\r\n0,2,1\r\n\r\n";
  auto r = ReadSessionsCsv(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 1u);
  ASSERT_EQ(r.value()[0].events.size(), 2u);
  EXPECT_EQ(r.value()[0].events[1], (MicroBehavior{2, 1}));
}

TEST(SessionCsvTest, ReadFailpointInjects) {
  auto& fp = robust::Failpoints::Global();
  fp.ClearAll();
  std::vector<Session> sessions(1);
  sessions[0].events = {{1, 0}};
  const std::string path = TempPath("failpoint.csv");
  ASSERT_TRUE(WriteSessionsCsv(sessions, path).ok());

  fp.Set("io.read", 1.0, /*limit=*/1);
  auto r = ReadSessionsCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("io.read"), std::string::npos);
  EXPECT_TRUE(ReadSessionsCsv(path).ok());  // limit exhausted

  fp.Set("io.write", 1.0, /*limit=*/1);
  EXPECT_FALSE(WriteSessionsCsv(sessions, path).ok());
  EXPECT_TRUE(WriteSessionsCsv(sessions, path).ok());
  fp.ClearAll();
}

}  // namespace
}  // namespace embsr
