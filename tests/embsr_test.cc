#include "core/embsr_model.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "metrics/metrics.h"
#include "util/check.h"
#include "test_util.h"

namespace embsr {
namespace {

TrainConfig SmallConfig() {
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.embedding_dim = 16;
  cfg.batch_size = 16;
  cfg.validate_every = 0;
  cfg.dropout = 0.0f;
  return cfg;
}

Example ToyExample() {
  Example ex;
  // The paper's Fig. 3 session shape: repeated items with multi-op runs.
  ex.macro_items = {1, 2, 3, 2, 3};
  ex.macro_ops = {{0}, {0}, {0}, {0, 4}, {0, 4, 5}};
  ex.flat_items = {1, 2, 3, 2, 2, 3, 3, 3};
  ex.flat_ops = {0, 0, 0, 0, 4, 0, 4, 5};
  ex.target = 4;
  return ex;
}

TEST(EmbsrModelTest, LogitsShapeAndFiniteness) {
  EmbsrModel model("EMBSR", /*num_items=*/20, /*num_operations=*/10,
                   SmallConfig());
  model.SetTraining(false);
  const auto scores = model.ScoreAll(ToyExample());
  ASSERT_EQ(scores.size(), 20u);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(EmbsrModelTest, ScoresBoundedByWk) {
  // Scores are wk * cos(m, e_i), so |score| <= wk.
  EmbsrConfig cfg;
  cfg.wk = 12.0f;
  EmbsrModel model("EMBSR", 30, 10, SmallConfig(), cfg);
  model.SetTraining(false);
  for (float s : model.ScoreAll(ToyExample())) {
    EXPECT_LE(std::abs(s), 12.0f + 1e-4f);
  }
}

TEST(EmbsrModelTest, GradientsFlowToAllParameterGroups) {
  EmbsrModel model("EMBSR", 20, 10, SmallConfig());
  model.SetTraining(true);
  // One training step by hand.
  ProcessedDataset data;
  data.num_items = 20;
  data.num_operations = 10;
  data.train = {ToyExample()};
  ASSERT_TRUE(model.Fit(data).ok());
  // After Fit, parameters should have moved: compare two fresh models'
  // scores — instead simply verify named parameter coverage.
  int with_grad_capable = 0;
  for (const auto& np : model.NamedParameters()) {
    EXPECT_TRUE(np.variable.requires_grad()) << np.name;
    ++with_grad_capable;
  }
  EXPECT_GT(with_grad_capable, 20);  // many parameter groups exist
}

TEST(EmbsrModelTest, SingleMacroItemSessionWorks) {
  // A session whose input collapsed to one item: no edges in the graph.
  EmbsrModel model("EMBSR", 20, 10, SmallConfig());
  model.SetTraining(false);
  Example ex;
  ex.macro_items = {5};
  ex.macro_ops = {{0, 1, 4}};
  ex.flat_items = {5, 5, 5};
  ex.flat_ops = {0, 1, 4};
  ex.target = 6;
  const auto scores = model.ScoreAll(ex);
  ASSERT_EQ(scores.size(), 20u);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(EmbsrModelTest, LongSessionIsTruncatedNotRejected) {
  TrainConfig cfg = SmallConfig();
  cfg.max_positions = 16;
  EmbsrModel model("EMBSR", 50, 10, cfg);
  model.SetTraining(false);
  Example ex;
  for (int i = 0; i < 40; ++i) {
    ex.macro_items.push_back(i % 47);
    ex.macro_ops.push_back({0, 1});
    ex.flat_items.push_back(i % 47);
    ex.flat_items.push_back(i % 47);
    ex.flat_ops.push_back(0);
    ex.flat_ops.push_back(1);
  }
  ex.target = 3;
  const auto scores = model.ScoreAll(ex);
  ASSERT_EQ(scores.size(), 50u);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(EmbsrModelTest, OperationsChangeThePrediction) {
  // Two sessions identical at the macro level but with different
  // micro-operations must produce different score vectors (the paper's
  // Fig. 1 motivation). An untrained model already passes if operations
  // enter the computation at all.
  EmbsrModel model("EMBSR", 20, 10, SmallConfig());
  model.SetTraining(false);
  Example a = ToyExample();
  Example b = ToyExample();
  b.macro_ops = {{0}, {0}, {0}, {0, 1}, {0, 1, 2}};
  b.flat_ops = {0, 0, 0, 0, 1, 0, 1, 2};
  const auto sa = model.ScoreAll(a);
  const auto sb = model.ScoreAll(b);
  EXPECT_NE(sa, sb);
}

TEST(EmbsrModelTest, MacroOnlyVariantIgnoresOperations) {
  // SGNN-Self discards all operation inputs: same macro sequence with
  // different operations must score identically — even when the operation
  // *runs have different lengths* (operation counts must not leak through
  // the attention sequence length).
  EmbsrModel model("SGNN-Self", 20, 10, SmallConfig(),
                   EmbsrVariants::SgnnSelf());
  model.SetTraining(false);
  Example a = ToyExample();
  Example b = ToyExample();
  b.macro_ops = {{0, 1, 2, 3}, {0}, {0, 5}, {0, 1}, {0}};
  b.flat_items.clear();
  b.flat_ops.clear();
  for (size_t i = 0; i < b.macro_items.size(); ++i) {
    for (int64_t op : b.macro_ops[i]) {
      b.flat_items.push_back(b.macro_items[i]);
      b.flat_ops.push_back(op);
    }
  }
  EXPECT_EQ(model.ScoreAll(a), model.ScoreAll(b));
}

TEST(EmbsrModelTest, FixedBetaZeroUsesRecentInterestOnly) {
  // With beta = 0, m = x_t: changing *earlier* flat positions' operations
  // while keeping the last micro-behavior and the GNN inputs identical is
  // hard to arrange; instead verify beta=0 and beta=1 differ and both are
  // valid, and that beta outside [0,1] is rejected by configuration intent.
  EmbsrModel m0("b0", 20, 10, SmallConfig(), EmbsrVariants::FixedBeta(0.0f));
  EmbsrModel m1("b1", 20, 10, SmallConfig(), EmbsrVariants::FixedBeta(1.0f));
  m0.SetTraining(false);
  m1.SetTraining(false);
  const auto s0 = m0.ScoreAll(ToyExample());
  const auto s1 = m1.ScoreAll(ToyExample());
  ASSERT_EQ(s0.size(), s1.size());
  for (float s : s0) EXPECT_TRUE(std::isfinite(s));
  for (float s : s1) EXPECT_TRUE(std::isfinite(s));
}

TEST(EmbsrModelTest, VariantsHaveDistinctArchitectures) {
  // Spot-check the flag combinations implied by the paper's names.
  EXPECT_FALSE(EmbsrVariants::NoSelfAttention().use_self_attention);
  EXPECT_TRUE(EmbsrVariants::NoSelfAttention().use_gnn);
  EXPECT_FALSE(EmbsrVariants::NoGnn().use_gnn);
  EXPECT_TRUE(EmbsrVariants::NoGnn().use_self_attention);
  EXPECT_FALSE(EmbsrVariants::NoFusionGate().use_fusion_gate);
  EXPECT_FALSE(EmbsrVariants::SgnnSelf().use_op_in_attention);
  EXPECT_FALSE(EmbsrVariants::SgnnSelf().use_op_gru_edges);
  EXPECT_TRUE(EmbsrVariants::SgnnSeqSelf().use_op_gru_edges);
  EXPECT_FALSE(EmbsrVariants::SgnnSeqSelf().use_dyadic);
  EXPECT_TRUE(EmbsrVariants::RnnSelf().rnn_backbone);
  EXPECT_FALSE(EmbsrVariants::SgnnAbsSelf().use_dyadic);
  EXPECT_TRUE(EmbsrVariants::SgnnAbsSelf().use_op_in_attention);
  EXPECT_TRUE(EmbsrVariants::SgnnDyadic().use_dyadic);
  EXPECT_FALSE(EmbsrVariants::SgnnDyadic().use_op_gru_edges);
  EXPECT_FLOAT_EQ(EmbsrVariants::FixedBeta(0.4f).fixed_beta, 0.4f);
}

TEST(EmbsrModelTest, CanOverfitATinyDataset) {
  // Memorization check: with a handful of sessions and enough epochs, the
  // full model should rank every training target first.
  ProcessedDataset data;
  data.name = "overfit";
  data.num_items = 12;
  data.num_operations = 6;
  for (int i = 0; i < 6; ++i) {
    Example ex;
    ex.macro_items = {static_cast<int64_t>(i), static_cast<int64_t>(i + 1)};
    ex.macro_ops = {{0}, {0, 2}};
    ex.flat_items = {static_cast<int64_t>(i), static_cast<int64_t>(i + 1),
                     static_cast<int64_t>(i + 1)};
    ex.flat_ops = {0, 0, 2};
    ex.target = (i + 5) % 12;
    data.train.push_back(ex);
  }
  TrainConfig cfg = SmallConfig();
  cfg.epochs = 40;
  cfg.lr = 0.01f;
  cfg.lr_decay_step = 100;
  cfg.batch_size = 6;
  EmbsrModel model("EMBSR", data.num_items, data.num_operations, cfg);
  ASSERT_TRUE(model.Fit(data).ok());
  int correct = 0;
  for (const auto& ex : data.train) {
    if (RankOfTarget(model.ScoreAll(ex), ex.target) == 1) ++correct;
  }
  EXPECT_GE(correct, 5) << "EMBSR failed to memorize 6 sessions";
}

TEST(EmbsrModelTest, DyadicBeatsMacroOnlyOnOpSwitchedTargets) {
  // Construct a dataset where the *operations* fully determine the target:
  // same item sequence {1, 2}, but op 3 on the last item means target 5
  // while op 4 means target 9. Macro-only variants cannot exceed 50%
  // accuracy; the dyadic model must solve it.
  ProcessedDataset data;
  data.name = "xor";
  data.num_items = 12;
  data.num_operations = 6;
  for (int rep = 0; rep < 8; ++rep) {
    for (int which = 0; which < 2; ++which) {
      Example ex;
      ex.macro_items = {1, 2};
      const int64_t op = which == 0 ? 3 : 4;
      ex.macro_ops = {{0}, {0, op}};
      ex.flat_items = {1, 2, 2};
      ex.flat_ops = {0, 0, op};
      ex.target = which == 0 ? 5 : 9;
      data.train.push_back(ex);
      data.test.push_back(ex);
    }
  }
  TrainConfig cfg = SmallConfig();
  cfg.epochs = 30;
  cfg.lr = 0.01f;
  cfg.lr_decay_step = 100;
  cfg.batch_size = 4;

  EmbsrModel dyadic("EMBSR", data.num_items, data.num_operations, cfg);
  ASSERT_TRUE(dyadic.Fit(data).ok());
  int dyadic_correct = 0;
  for (const auto& ex : data.test) {
    if (RankOfTarget(dyadic.ScoreAll(ex), ex.target) == 1) ++dyadic_correct;
  }
  EXPECT_EQ(dyadic_correct, static_cast<int>(data.test.size()));

  EmbsrModel macro("SGNN-Self", data.num_items, data.num_operations, cfg,
                   EmbsrVariants::SgnnSelf());
  ASSERT_TRUE(macro.Fit(data).ok());
  int macro_correct = 0;
  for (const auto& ex : data.test) {
    if (RankOfTarget(macro.ScoreAll(ex), ex.target) == 1) ++macro_correct;
  }
  // The macro model sees identical inputs for both classes: at most half
  // of the test cases can be ranked first.
  EXPECT_LE(macro_correct, static_cast<int>(data.test.size()) / 2);
}

}  // namespace
}  // namespace embsr
