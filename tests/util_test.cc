#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace embsr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad batch size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad batch size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad batch size");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::OutOfRange("").code(),      Status::FailedPrecondition("").code(),
      Status::Internal("").code(),        Status::Unimplemented("").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, NormalHasApproxUnitMoments) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(9);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(77);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, GeometricCappedRespectsCap) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(rng.GeometricCapped(0.99, 4), 4);
    EXPECT_EQ(rng.GeometricCapped(0.0, 10), 0);
  }
}

TEST(ZipfWeightsTest, DecreasingAndPositive) {
  auto w = ZipfWeights(10, 1.2);
  ASSERT_EQ(w.size(), 10u);
  for (size_t i = 1; i < w.size(); ++i) {
    EXPECT_GT(w[i], 0.0);
    EXPECT_LT(w[i], w[i - 1]);
  }
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(StringUtilTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "bb", "", "c"};
  EXPECT_EQ(Join(parts, ","), "a,bb,,c");
  EXPECT_EQ(Split("a,bb,,c", ','), parts);
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(12.3456, 2), "12.35");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abc");
}

TEST(StringUtilTest, RenderTableAligns) {
  std::string t = RenderTable({"m", "value"}, {{"H@5", "12.34"}});
  EXPECT_NE(t.find("| m   | value |"), std::string::npos);
  EXPECT_NE(t.find("H@5"), std::string::npos);
}

TEST(EnvTest, FallbacksWhenUnset) {
  unsetenv("EMBSR_TEST_ENV_X");
  EXPECT_DOUBLE_EQ(GetEnvDouble("EMBSR_TEST_ENV_X", 2.5), 2.5);
  EXPECT_EQ(GetEnvInt("EMBSR_TEST_ENV_X", 7), 7);
  EXPECT_EQ(GetEnvString("EMBSR_TEST_ENV_X", "d"), "d");
}

TEST(EnvTest, ParsesSetValues) {
  setenv("EMBSR_TEST_ENV_X", "3.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EMBSR_TEST_ENV_X", 1.0), 3.5);
  setenv("EMBSR_TEST_ENV_X", "42", 1);
  EXPECT_EQ(GetEnvInt("EMBSR_TEST_ENV_X", 0), 42);
  unsetenv("EMBSR_TEST_ENV_X");
}

}  // namespace
}  // namespace embsr
