// Two-run determinism: training the same model on the same data with the
// same seed must be bit-for-bit reproducible — identical parameters and
// identical evaluation metrics. This is the foundation the gradient checker
// (loss purity), crash-resume (exact replay), and any experiment in
// EXPERIMENTS.md all stand on; a single unseeded code path breaks it.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "gtest/gtest.h"
#include "models/neural_model.h"
#include "train/evaluator.h"
#include "train/model_zoo.h"
#include "util/check.h"

namespace embsr {
namespace {

const ProcessedDataset& SmallData() {
  static const ProcessedDataset* d = [] {
    auto r = MakeDataset(JdAppliancesConfig(0.02));
    EMBSR_CHECK_OK(r);
    return new ProcessedDataset(std::move(r).value());
  }();
  return *d;
}

struct RunOutcome {
  std::vector<Tensor> params;
  MetricReport report;
};

RunOutcome TrainOnce(const std::string& model_name) {
  const ProcessedDataset& data = SmallData();
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.embedding_dim = 16;
  cfg.seed = 1234;
  cfg.max_train_examples = 60;

  std::unique_ptr<Recommender> model =
      CreateModel(model_name, data.num_items, data.num_operations, cfg);
  EMBSR_CHECK(model != nullptr);
  EMBSR_CHECK_OK(model->Fit(data));

  RunOutcome out;
  auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
  EMBSR_CHECK(neural != nullptr);
  for (const auto& p : neural->Parameters()) out.params.push_back(p.value());
  out.report = Evaluate(model.get(), data.test, {10, 20}, 40).report;
  return out;
}

// Bit-for-bit: float equality via memcmp, not AllClose — "almost the same
// parameters" after two identical runs is a determinism bug, full stop.
void ExpectBitIdentical(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].shape(), b[i].shape()) << "param " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(),
                          sizeof(float) * static_cast<size_t>(a[i].size())),
              0)
        << "param " << i << " differs between identically-seeded runs";
  }
}

TEST(DeterminismTest, TwoRunsBitIdenticalGRU4Rec) {
  const RunOutcome first = TrainOnce("GRU4Rec");
  const RunOutcome second = TrainOnce("GRU4Rec");
  ExpectBitIdentical(first.params, second.params);
  EXPECT_EQ(first.report.hit, second.report.hit);
  EXPECT_EQ(first.report.mrr, second.report.mrr);
}

TEST(DeterminismTest, TwoRunsBitIdenticalEMBSR) {
  const RunOutcome first = TrainOnce("EMBSR");
  const RunOutcome second = TrainOnce("EMBSR");
  ExpectBitIdentical(first.params, second.params);
  EXPECT_EQ(first.report.hit, second.report.hit);
  EXPECT_EQ(first.report.mrr, second.report.mrr);
}

}  // namespace
}  // namespace embsr
