// Two-run determinism: training the same model on the same data with the
// same seed must be bit-for-bit reproducible — identical parameters and
// identical evaluation metrics. This is the foundation the gradient checker
// (loss purity), crash-resume (exact replay), and any experiment in
// EXPERIMENTS.md all stand on; a single unseeded code path breaks it.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "gtest/gtest.h"
#include "models/neural_model.h"
#include "par/thread_pool.h"
#include "robust/failpoint.h"
#include "serve/clock.h"
#include "serve/frontend.h"
#include "serve/scorer.h"
#include "train/evaluator.h"
#include "train/model_zoo.h"
#include "util/check.h"

namespace embsr {
namespace {

const ProcessedDataset& SmallData() {
  static const ProcessedDataset* d = [] {
    auto r = MakeDataset(JdAppliancesConfig(0.02));
    EMBSR_CHECK_OK(r);
    return new ProcessedDataset(std::move(r).value());
  }();
  return *d;
}

struct RunOutcome {
  std::vector<Tensor> params;
  MetricReport report;
};

RunOutcome TrainOnce(const std::string& model_name) {
  const ProcessedDataset& data = SmallData();
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.embedding_dim = 16;
  cfg.seed = 1234;
  cfg.max_train_examples = 60;

  std::unique_ptr<Recommender> model =
      CreateModel(model_name, data.num_items, data.num_operations, cfg);
  EMBSR_CHECK(model != nullptr);
  EMBSR_CHECK_OK(model->Fit(data));

  RunOutcome out;
  auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
  EMBSR_CHECK(neural != nullptr);
  for (const auto& p : neural->Parameters()) out.params.push_back(p.value());
  out.report = Evaluate(model.get(), data.test, {10, 20}, 40).report;
  return out;
}

// Bit-for-bit: float equality via memcmp, not AllClose — "almost the same
// parameters" after two identical runs is a determinism bug, full stop.
void ExpectBitIdentical(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].shape(), b[i].shape()) << "param " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(),
                          sizeof(float) * static_cast<size_t>(a[i].size())),
              0)
        << "param " << i << " differs between identically-seeded runs";
  }
}

TEST(DeterminismTest, TwoRunsBitIdenticalGRU4Rec) {
  const RunOutcome first = TrainOnce("GRU4Rec");
  const RunOutcome second = TrainOnce("GRU4Rec");
  ExpectBitIdentical(first.params, second.params);
  EXPECT_EQ(first.report.hit, second.report.hit);
  EXPECT_EQ(first.report.mrr, second.report.mrr);
}

TEST(DeterminismTest, TwoRunsBitIdenticalEMBSR) {
  const RunOutcome first = TrainOnce("EMBSR");
  const RunOutcome second = TrainOnce("EMBSR");
  ExpectBitIdentical(first.params, second.params);
  EXPECT_EQ(first.report.hit, second.report.hit);
  EXPECT_EQ(first.report.mrr, second.report.mrr);
}

// The parallel layer must not cost determinism: kernels partition outputs
// and never reorder a per-element reduction (DESIGN.md §11), so a 4-lane
// pool produces bit-for-bit the same parameters and metrics as the strict
// serial pool — not merely "close". This is the EMBSR_THREADS=4 leg the
// sanitizer matrix re-runs under TSan.
TEST(DeterminismTest, FourThreadsBitIdenticalToSerial) {
  par::SetThreadCount(1);
  const RunOutcome serial = TrainOnce("EMBSR");
  par::SetThreadCount(4);
  const RunOutcome parallel = TrainOnce("EMBSR");
  par::SetThreadCount(0);
  ExpectBitIdentical(serial.params, parallel.params);
  EXPECT_EQ(serial.report.hit, parallel.report.hit);
  EXPECT_EQ(serial.report.mrr, parallel.report.mrr);
}

// The documented cross-machine contract is looser than the bitwise one the
// previous test pins for this build: metric values agree within float
// round-off tolerance between serial and parallel evaluation. Kept as a
// separate leg so a future kernel that legitimately trades bitwise equality
// for speed (and downgrades §11) still has an explicit bar to clear.
TEST(DeterminismTest, SerialVsParallelEvaluationWithinTolerance) {
  par::SetThreadCount(1);
  const RunOutcome serial = TrainOnce("GRU4Rec");
  par::SetThreadCount(4);
  const RunOutcome parallel = TrainOnce("GRU4Rec");
  par::SetThreadCount(0);
  ASSERT_EQ(serial.report.hit.size(), parallel.report.hit.size());
  for (const auto& [k, v] : serial.report.hit) {
    ASSERT_TRUE(parallel.report.hit.count(k)) << "missing hit@" << k;
    EXPECT_NEAR(v, parallel.report.hit.at(k), 1e-6) << "hit@" << k;
  }
  for (const auto& [k, v] : serial.report.mrr) {
    ASSERT_TRUE(parallel.report.mrr.count(k)) << "missing mrr@" << k;
    EXPECT_NEAR(v, parallel.report.mrr.at(k), 1e-6) << "mrr@" << k;
  }
}

// The serving retry schedule is a pure function of (config seed, request
// id): two identical runs — same manual clock script, same injected
// failpoint pattern — must produce bit-identical backoff waits, retry
// counts and rankings for every request.
/// One serve run's observable retry schedule, response by response.
struct ServeTrace {
  std::vector<int64_t> backoff_ns;
  std::vector<int> retries;
  std::vector<std::vector<int64_t>> top_items;
  friend bool operator==(const ServeTrace&, const ServeTrace&) = default;
};

TEST(DeterminismTest, ServeBackoffScheduleBitIdenticalAcrossRuns) {
  ProcessedDataset data;
  data.name = "serve-determinism";
  data.num_items = 8;
  data.num_operations = 2;
  for (int64_t item = 0; item < 8; ++item) {
    Example ex;
    ex.macro_items = {item};
    ex.macro_ops = {{0}};
    ex.flat_items = {item};
    ex.flat_ops = {0};
    ex.target = item;
    data.train.push_back(ex);
  }

  auto run_once = [&data]() {
    robust::Failpoints::Global().ClearAll();
    // Every store lookup fails twice before succeeding; every third
    // scorer call fails. Limits make the pattern identical across runs.
    robust::Failpoints::Global().Set("serve.store_read", 1.0, /*limit=*/6);
    robust::Failpoints::Global().Set("serve.score", 1.0, /*limit=*/2);

    serve::PopularityScorer fallback;
    EXPECT_TRUE(fallback.Fit(data).ok());
    serve::PopularityScorer primary;
    EXPECT_TRUE(primary.Fit(data).ok());
    serve::ManualClock mc;
    serve::ServeConfig cfg;
    cfg.deadline_ms = 500;  // roomy: retries, not deadlines, under test
    cfg.max_retries = 4;
    cfg.seed = 99;
    serve::ServeFrontend fe(cfg, &primary, &fallback, mc.clock());

    ServeTrace trace;
    for (uint64_t id = 1; id <= 8; ++id) {
      serve::Request req;
      req.request_id = id;
      req.session_id = 1 + id % 3;
      req.event = MicroBehavior{static_cast<int64_t>(id % 8), 0};
      EXPECT_TRUE(fe.Submit(req).ok());
      auto r = fe.ProcessNext();
      EXPECT_TRUE(r.ok());
      if (!r.ok()) continue;
      trace.backoff_ns.push_back(r.value().backoff_ns);
      trace.retries.push_back(r.value().retries);
      trace.top_items.push_back(r.value().top_items);
    }
    robust::Failpoints::Global().ClearAll();
    return trace;
  };

  const ServeTrace first = run_once();
  const ServeTrace second = run_once();
  EXPECT_TRUE(first == second);
  // The schedule actually exercised retries (else the test proves nothing).
  int total_retries = 0;
  for (int r : first.retries) total_retries += r;
  EXPECT_GT(total_retries, 0);
  int64_t total_backoff = 0;
  for (int64_t b : first.backoff_ns) total_backoff += b;
  EXPECT_GT(total_backoff, 0);
}

}  // namespace
}  // namespace embsr
