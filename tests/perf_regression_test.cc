// Perf regression guard for the parallel execution layer, ctest-labeled
// `perf` so it can be excluded on noisy machines (ctest -LE perf).
//
// The headline assertion: threaded MatMul(256^3) at the hardware thread
// count must be >= 1.5x faster than the strict-serial pool. On single-core
// hosts the speedup leg GTEST_SKIPs (there is nothing to win), but the
// BENCH_par_smoke.json sidecar is still written — with the `threads` field
// and the measured timings — so scripts/check_bench_json.py always has a
// report to validate (the par_smoke_json ctest runs this binary under
// --run).

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "bench/bench_common.h"
#include "datagen/generator.h"
#include "gtest/gtest.h"
#include "par/thread_pool.h"
#include "prof/op_profiler.h"
#include "tensor/tensor.h"
#include "train/evaluator.h"
#include "train/model_zoo.h"
#include "util/rng.h"
#include "util/timer.h"

namespace embsr {
namespace {

// Median-of-reps wall time of `fn` in milliseconds, with warmup.
template <typename Fn>
double MedianMs(int reps, Fn fn) {
  fn();
  fn();  // warmup: page in, warm caches, spin up pool lanes
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    ms.push_back(t.ElapsedSeconds() * 1e3);
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

TEST(PerfRegression, ThreadedMatMulBeatsSerial) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  Rng rng(7);
  const Tensor a = Tensor::RandUniform({256, 256}, -1.0f, 1.0f, &rng);
  const Tensor b = Tensor::RandUniform({256, 256}, -1.0f, 1.0f, &rng);

  par::SetThreadCount(1);
  const double serial_ms = MedianMs(9, [&] { (void)MatMul(a, b); });
  par::SetThreadCount(0);  // hardware / EMBSR_THREADS default
  const double pool_ms = MedianMs(9, [&] { (void)MatMul(a, b); });
  const double speedup = serial_ms / std::max(pool_ms, 1e-9);

  {
    // Written before any skip/assert so the sidecar always exists.
    bench::BenchReport report("par_smoke");
    report.AddScalar("matmul256_serial_ms", serial_ms);
    report.AddScalar("matmul256_pool_ms", pool_ms);
    report.AddScalar("matmul256_speedup", speedup);
    report.AddScalar("hardware_concurrency", hw);
  }

  if (hw < 2) {
    GTEST_SKIP() << "single hardware thread (hw=" << hw
                 << "): the pool is serial here, no speedup to assert; "
                 << "measured speedup=" << speedup;
  }
  EXPECT_GE(speedup, 1.5)
      << "threaded MatMul(256^3) regressed: serial=" << serial_ms
      << "ms pool=" << pool_ms << "ms at " << par::ThreadCount() << " lanes";
}

TEST(PerfRegression, BatchedEvalThroughputFloorAtBatch32) {
  // The batched-execution floor (tentpole PR 9): evaluating GRU4Rec with
  // EMBSR_BATCH_SIZE=32 must clear 2x the sessions/sec of the legacy
  // per-session path on a multi-core host. Batching wins twice — the
  // [d, V] decode transpose is materialized once per forward-batch instead
  // of once per session, and 32 per-step GEMVs fuse into one GEMM — so
  // the floor holds even though both paths fan out across the pool. Like
  // the MatMul leg above, the BENCH_batch_smoke.json sidecar (with the
  // sessions_per_sec scalars bench_history.py checks) is written before
  // any skip.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  auto data = MakeDataset(JdAppliancesConfig(0.05));
  ASSERT_TRUE(data.ok());
  TrainConfig cfg;
  cfg.embedding_dim = 32;
  cfg.seed = 7;
  std::unique_ptr<Recommender> model = CreateModel(
      "GRU4Rec", data.value().num_items, data.value().num_operations, cfg);
  ASSERT_NE(model, nullptr);
  model->EnsureEvalMode();

  par::SetThreadCount(0);  // hardware / EMBSR_THREADS default
  auto sessions_per_sec = [&](const char* batch) {
    setenv("EMBSR_BATCH_SIZE", batch, 1);
    (void)Evaluate(model.get(), data.value().test, {20}, 64);  // warmup
    WallTimer t;
    const EvalResult r = Evaluate(model.get(), data.value().test, {20}, 512);
    const double wall = t.ElapsedSeconds();
    unsetenv("EMBSR_BATCH_SIZE");
    EMBSR_CHECK(!r.ranks.empty());
    return static_cast<double>(r.ranks.size()) / wall;
  };
  const double sps1 = sessions_per_sec("1");
  const double sps32 = sessions_per_sec("32");

  {
    bench::BenchReport report("batch_smoke");
    report.AddScalar("sessions_per_sec/GRU4Rec/b1", sps1);
    report.AddScalar("sessions_per_sec/GRU4Rec/b32", sps32);
    report.AddScalar("batch32_speedup", sps32 / std::max(sps1, 1e-9));
    report.AddScalar("hardware_concurrency", hw);
  }

  if (hw < 2) {
    GTEST_SKIP() << "single hardware thread (hw=" << hw
                 << "): multi-core floor does not apply; measured "
                 << "b1=" << sps1 << " b32=" << sps32 << " sessions/sec";
  }
  EXPECT_GE(sps32, 2.0 * sps1)
      << "batch-32 evaluation regressed below the 2x floor: b1=" << sps1
      << " b32=" << sps32 << " sessions/sec at " << par::ThreadCount()
      << " lanes";
}

TEST(PerfRegression, ProfOffOverheadWithinTwoPercent) {
  // The zero-cost-when-off guarantee (ISSUE 6): with EMBSR_PROF unset,
  // embsr::prof costs one branch per recorded op (Collector::ActiveOrNull)
  // plus one per tensor alloc/free (the mem hooks). Measure that branch
  // cost directly and require it under 2% of the real per-op time of the
  // micro-substrate workload — a machine-independent form of the "<= 2%
  // on bench_micro_substrate" criterion that does not need two builds.
  if (prof::Enabled()) {
    GTEST_SKIP() << "EMBSR_PROF=1: the off-path has nothing to measure";
  }

  // 1) Per-call cost of the disabled hooks.
  constexpr int kCalls = 1 << 20;
  volatile int64_t sink = 0;
  WallTimer hook_timer;
  for (int i = 0; i < kCalls; ++i) {
    sink = sink + (prof::Collector::ActiveOrNull() != nullptr);
    const bool counted = prof::OnTensorAlloc(16);
    prof::OnTensorFree(16, counted);
  }
  const double hook_ns = hook_timer.ElapsedSeconds() * 1e9 / kCalls;

  // 2) Real per-op time of an autograd round trip (the bench_micro_substrate
  // BM_AutogradRoundTrip shape): 3 recorded ops forward + 3 backward.
  Rng rng(11);
  const Tensor ta = Tensor::Randn({64, 64}, 0.5f, &rng);
  const Tensor tb = Tensor::Randn({64, 64}, 0.5f, &rng);
  auto round_trip = [&] {
    ag::Variable a(ta, true);
    ag::Variable b(tb, true);
    ag::SumAll(ag::MatMul(a, b)).Backward();
  };
  const double off_ms = MedianMs(15, round_trip);
  const double per_op_ns = off_ms * 1e6 / 6.0;

  // 3) For the record (EXPERIMENTS.md): the same workload profiled.
  prof::Start();
  const double on_ms = MedianMs(15, round_trip);
  prof::Stop();

  {
    bench::BenchReport report("prof_overhead");
    report.AddScalar("hook_off_ns_per_call", hook_ns);
    report.AddScalar("roundtrip_off_ms", off_ms);
    report.AddScalar("roundtrip_prof_on_ms", on_ms);
    report.AddScalar("prof_on_over_off_ratio",
                     on_ms / std::max(off_ms, 1e-9));
  }

  EXPECT_LT(hook_ns, 0.02 * per_op_ns)
      << "disabled-profiler hooks cost " << hook_ns << "ns/call vs "
      << per_op_ns << "ns per real op (>2%)";
  // Profiling ON may legitimately cost more, but an order-of-magnitude
  // blowup means a lock or allocation crept into the record path.
  EXPECT_LT(on_ms, off_ms * 2.0)
      << "EMBSR_PROF=1 round trip " << on_ms << "ms vs off " << off_ms
      << "ms";
}

TEST(PerfRegression, ParForOverheadIsBounded) {
  // A trivially small For must not cost more than ~1ms even with a live
  // pool: the single-chunk inline fast path short-circuits submission.
  par::SetThreadCount(0);
  const double ms = MedianMs(9, [&] {
    volatile int64_t sink = 0;
    par::For(0, 64, 4096,
             [&](int64_t lo, int64_t hi) { sink = sink + (hi - lo); });
  });
  EXPECT_LT(ms, 1.0) << "single-chunk par::For no longer runs inline?";
}

}  // namespace
}  // namespace embsr
