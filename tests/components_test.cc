#include "models/components.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace embsr {
namespace {

using ag::Variable;
using embsr::testing::AllFinite;
using embsr::testing::CheckGradients;

TEST(GgnnLayerTest, PreservesShape) {
  Rng rng(1);
  GgnnLayer layer(8, &rng);
  auto adj = BuildSrgnnAdjacency({1, 2, 3, 2});
  Variable h(Tensor::Randn({3, 8}, 0.5f, &rng), false);
  Variable out = layer.Forward(h, adj.a_in, adj.a_out);
  EXPECT_EQ(out.value().dim(0), 3);
  EXPECT_EQ(out.value().dim(1), 8);
  EXPECT_TRUE(AllFinite(out.value()));
}

TEST(GgnnLayerTest, IsolatedNodeStillUpdates) {
  // A single-node graph has empty adjacency; the gate should blend the
  // node's own state with the candidate, producing a finite result.
  Rng rng(2);
  GgnnLayer layer(4, &rng);
  auto adj = BuildSrgnnAdjacency({7});
  Variable h(Tensor::Randn({1, 4}, 1.0f, &rng), false);
  Variable out = layer.Forward(h, adj.a_in, adj.a_out);
  EXPECT_TRUE(AllFinite(out.value()));
}

TEST(GgnnLayerTest, GradientsFlowToInput) {
  Rng rng(3);
  GgnnLayer layer(4, &rng);
  auto adj = BuildSrgnnAdjacency({1, 2, 1});
  Variable h(Tensor::Randn({2, 4}, 0.5f, &rng), true);
  CheckGradients(
      [&](const std::vector<Variable>& v) {
        Variable out = layer.Forward(v[0], adj.a_in, adj.a_out);
        return ag::SumAll(ag::Mul(out, out));
      },
      {h});
}

TEST(SoftAttentionReadoutTest, ProducesSessionVector) {
  Rng rng(4);
  SoftAttentionReadout readout(6, &rng);
  Variable seq(Tensor::Randn({5, 6}, 0.7f, &rng), false);
  Variable rep = readout.Forward(seq);
  EXPECT_EQ(rep.value().dim(0), 1);
  EXPECT_EQ(rep.value().dim(1), 6);
}

TEST(SoftAttentionReadoutTest, DependsOnLastItem) {
  Rng rng(5);
  SoftAttentionReadout readout(6, &rng);
  Rng data_rng(6);
  Tensor base = Tensor::Randn({4, 6}, 0.7f, &data_rng);
  Tensor swapped = base;
  // Swap first and last rows: the readout keys on the last item, so the
  // output must change.
  for (int j = 0; j < 6; ++j) {
    std::swap(swapped.at2(0, j), swapped.at2(3, j));
  }
  Variable a = readout.Forward(Variable(base, false));
  Variable b = readout.Forward(Variable(swapped, false));
  EXPECT_FALSE(a.value().AllClose(b.value(), 1e-6f));
}

TEST(SelfAttentionBlockTest, ShapePreservedAndFinite) {
  Rng rng(7);
  SelfAttentionBlock block(8, &rng, 0.0f);
  Variable x(Tensor::Randn({5, 8}, 0.5f, &rng), false);
  Tensor mask = Tensor::Ones({5, 5});
  Variable out = block.Forward(x, mask, /*training=*/false, &rng);
  EXPECT_EQ(out.value().dim(0), 5);
  EXPECT_EQ(out.value().dim(1), 8);
  EXPECT_TRUE(AllFinite(out.value()));
}

TEST(SelfAttentionBlockTest, MaskBlocksInformationFlow) {
  Rng rng(8);
  SelfAttentionBlock block(8, &rng, 0.0f);
  Rng data_rng(9);
  Tensor a = Tensor::Randn({3, 8}, 0.5f, &data_rng);
  Tensor b = a;
  // Perturb row 2 only.
  for (int j = 0; j < 8; ++j) b.at2(2, j) += 1.0f;

  // Causal-style mask where position 0 sees only itself: its output row
  // must be identical regardless of row 2's contents.
  Tensor mask = Tensor::Zeros({3, 3});
  mask.at2(0, 0) = 1.0f;
  for (int j = 0; j < 3; ++j) {
    mask.at2(1, j) = 1.0f;
    mask.at2(2, j) = 1.0f;
  }
  Variable oa = block.Forward(Variable(a, false), mask, false, &rng);
  Variable ob = block.Forward(Variable(b, false), mask, false, &rng);
  EXPECT_TRUE(oa.value().Row(0).AllClose(ob.value().Row(0), 1e-5f));
  EXPECT_FALSE(oa.value().Row(2).AllClose(ob.value().Row(2), 1e-5f));
}

TEST(SelfAttentionBlockTest, GradCheck) {
  Rng rng(10);
  SelfAttentionBlock block(4, &rng, 0.0f);
  Variable x(Tensor::Randn({3, 4}, 0.5f, &rng), true);
  Tensor mask = Tensor::Ones({3, 3});
  CheckGradients(
      [&](const std::vector<Variable>& v) {
        Variable out = block.Forward(v[0], mask, false, &rng);
        return ag::SumAll(ag::Mul(out, out));
      },
      {x}, 1e-3f, 5e-2f);
}

TEST(ClampPositionTest, ClampsAtTableEnd) {
  EXPECT_EQ(ClampPosition(0, 10), 0);
  EXPECT_EQ(ClampPosition(9, 10), 9);
  EXPECT_EQ(ClampPosition(10, 10), 9);
  EXPECT_EQ(ClampPosition(1000, 10), 9);
}

}  // namespace
}  // namespace embsr
