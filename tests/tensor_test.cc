#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

namespace embsr {
namespace {

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.size(), 1);
  EXPECT_FLOAT_EQ(t.at(0), 0.0f);
}

TEST(TensorTest, ShapeConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FillConstruction) {
  Tensor t({2, 2}, 3.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t.at(i), 3.5f);
}

TEST(TensorTest, ExplicitData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at2(0, 0), 1);
  EXPECT_FLOAT_EQ(t.at2(0, 1), 2);
  EXPECT_FLOAT_EQ(t.at2(1, 0), 3);
  EXPECT_FLOAT_EQ(t.at2(1, 1), 4);
}

TEST(TensorTest, RandnStats) {
  Rng rng(1);
  Tensor t = Tensor::Randn({100, 100}, 2.0f, &rng);
  double sum = 0, sq = 0;
  for (int64_t i = 0; i < t.size(); ++i) {
    sum += t.at(i);
    sq += t.at(i) * t.at(i);
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.1);
  EXPECT_NEAR(sq / t.size(), 4.0, 0.2);
}

TEST(TensorTest, RandUniformRange) {
  Rng rng(2);
  Tensor t = Tensor::RandUniform({50, 50}, -0.5f, 0.5f, &rng);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.at(i), -0.5f);
    EXPECT_LT(t.at(i), 0.5f);
  }
}

TEST(TensorTest, ReshapeKeepsData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r.at2(2, 1), 6);
}

TEST(TensorTest, Transpose) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.Transposed();
  EXPECT_EQ(tt.dim(0), 3);
  EXPECT_EQ(tt.dim(1), 2);
  EXPECT_FLOAT_EQ(tt.at2(0, 1), 4);
  EXPECT_FLOAT_EQ(tt.at2(2, 0), 3);
  EXPECT_TRUE(tt.Transposed().AllClose(t));
}

TEST(TensorTest, SliceRows) {
  Tensor t({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = t.SliceRows(1, 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_FLOAT_EQ(s.at2(0, 0), 3);
  EXPECT_FLOAT_EQ(s.at2(1, 1), 6);
  Tensor row = t.Row(0);
  EXPECT_EQ(row.dim(0), 1);
  EXPECT_FLOAT_EQ(row.at2(0, 1), 2);
}

TEST(TensorTest, InPlaceOps) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.at(0), 4);
  a.SubInPlace(b);
  EXPECT_FLOAT_EQ(a.at(1), 2);
  a.MulInPlace(b);
  EXPECT_FLOAT_EQ(a.at(0), 3);
  a.ScaleInPlace(2.0f);
  EXPECT_FLOAT_EQ(a.at(1), 16);
  a.Fill(7.0f);
  EXPECT_FLOAT_EQ(a.at(0), 7);
}

TEST(TensorTest, L2Norm) {
  Tensor t({2, 2}, {3, 0, 0, 4});
  EXPECT_FLOAT_EQ(t.L2Norm(), 5.0f);
}

TEST(TensorKernels, ElementwiseBinary) {
  Tensor a({2}, {1, 2}), b({2}, {3, 5});
  EXPECT_TRUE(Add(a, b).AllClose(Tensor({2}, {4, 7})));
  EXPECT_TRUE(Sub(a, b).AllClose(Tensor({2}, {-2, -3})));
  EXPECT_TRUE(Mul(a, b).AllClose(Tensor({2}, {3, 10})));
}

TEST(TensorKernels, Unary) {
  Tensor a({2}, {-1, 2});
  EXPECT_TRUE(Scale(a, 2).AllClose(Tensor({2}, {-2, 4})));
  EXPECT_TRUE(AddScalar(a, 1).AllClose(Tensor({2}, {0, 3})));
  EXPECT_TRUE(Neg(a).AllClose(Tensor({2}, {1, -2})));
  EXPECT_TRUE(Relu(a).AllClose(Tensor({2}, {0, 2})));
  EXPECT_NEAR(Sigmoid(a).at(0), 1.0f / (1.0f + std::exp(1.0f)), 1e-6);
  EXPECT_NEAR(Tanh(a).at(1), std::tanh(2.0f), 1e-6);
  EXPECT_NEAR(Exp(a).at(0), std::exp(-1.0f), 1e-6);
  EXPECT_NEAR(Log(Tensor({1}, {2.0f})).at(0), std::log(2.0f), 1e-6);
}

TEST(TensorKernels, AddRowBroadcast) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor row({1, 2}, {10, 20});
  EXPECT_TRUE(
      AddRowBroadcast(a, row).AllClose(Tensor({2, 2}, {11, 22, 13, 24})));
}

TEST(TensorKernels, MatMulCorrectness) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(c.AllClose(Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(TensorKernels, MatMulIdentity) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 4}, 1.0f, &rng);
  Tensor eye({4, 4});
  for (int i = 0; i < 4; ++i) eye.at2(i, i) = 1.0f;
  EXPECT_TRUE(MatMul(a, eye).AllClose(a));
  EXPECT_TRUE(MatMul(eye, a).AllClose(a));
}

TEST(TensorKernels, Reductions) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(SumAll(a).at(0), 21);
  EXPECT_TRUE(SumRowsTo1xD(a).AllClose(Tensor({1, 3}, {5, 7, 9})));
  EXPECT_TRUE(SumColsToNx1(a).AllClose(Tensor({2, 1}, {6, 15})));
  EXPECT_FLOAT_EQ(MeanAll(a), 3.5f);
}

TEST(TensorKernels, RowSoftmaxSumsToOne) {
  Tensor a({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = RowSoftmax(a);
  for (int i = 0; i < 2; ++i) {
    float sum = 0;
    for (int j = 0; j < 3; ++j) {
      sum += s.at2(i, j);
      EXPECT_GT(s.at2(i, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
  // Monotone in the logits.
  EXPECT_LT(s.at2(0, 0), s.at2(0, 2));
}

TEST(TensorKernels, RowSoftmaxNumericalStability) {
  Tensor a({1, 2}, {1000.0f, 1001.0f});
  Tensor s = RowSoftmax(a);
  EXPECT_NEAR(s.at2(0, 0) + s.at2(0, 1), 1.0f, 1e-6);
  EXPECT_GT(s.at2(0, 1), s.at2(0, 0));
}

TEST(TensorKernels, RowSoftmaxMasked) {
  Tensor a({1, 3}, {5, 1, 3});
  Tensor mask({1, 3}, {1, 0, 1});
  Tensor s = RowSoftmaxMasked(a, mask);
  EXPECT_FLOAT_EQ(s.at2(0, 1), 0.0f);
  EXPECT_NEAR(s.at2(0, 0) + s.at2(0, 2), 1.0f, 1e-6);
}

TEST(TensorKernels, RowSoftmaxFullyMaskedRowIsZero) {
  Tensor a({1, 2}, {5, 1});
  Tensor mask({1, 2}, {0, 0});
  Tensor s = RowSoftmaxMasked(a, mask);
  EXPECT_FLOAT_EQ(s.at2(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(s.at2(0, 1), 0.0f);
}

TEST(TensorKernels, GatherScatterRoundTrip) {
  Tensor table({4, 2}, {0, 1, 10, 11, 20, 21, 30, 31});
  Tensor g = GatherRows(table, {2, 0, 2});
  EXPECT_TRUE(g.AllClose(Tensor({3, 2}, {20, 21, 0, 1, 20, 21})));

  Tensor grad({4, 2});
  ScatterAddRows(Tensor({3, 2}, {1, 1, 2, 2, 3, 3}), {2, 0, 2}, &grad);
  EXPECT_TRUE(grad.AllClose(Tensor({4, 2}, {2, 2, 0, 0, 4, 4, 0, 0})));
}

TEST(TensorKernels, Concat) {
  Tensor a({2, 1}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  EXPECT_TRUE(ConcatCols(a, b).AllClose(Tensor({2, 3}, {1, 3, 4, 2, 5, 6})));
  Tensor c({1, 1}, {9.0f});
  EXPECT_TRUE(ConcatRows(a, c).AllClose(Tensor({3, 1}, {1, 2, 9})));
}

TEST(TensorKernels, L2NormalizeRows) {
  Tensor a({2, 2}, {3, 4, 0, 0});
  Tensor n = L2NormalizeRows(a);
  EXPECT_NEAR(n.at2(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(n.at2(0, 1), 0.8f, 1e-6);
  // Zero rows stay zero (no NaN).
  EXPECT_FLOAT_EQ(n.at2(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(n.at2(1, 1), 0.0f);
}

TEST(TensorKernels, AllCloseRespectsShapeAndTol) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {1.0005f, 2});
  EXPECT_TRUE(a.AllClose(b, 1e-3f));
  EXPECT_FALSE(a.AllClose(b, 1e-5f));
  EXPECT_FALSE(a.AllClose(Tensor({1, 2}, {1, 2})));
}

}  // namespace
}  // namespace embsr
