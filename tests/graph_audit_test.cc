// Structural audit of every zoo model's autograd graph (src/analyze).
//
// Three layers of enforcement, mirroring gradcheck_test.cc:
//  1. Every registered model audit passes: all trainable parameters reach
//     the loss, accumulation counts match graph fan-out, no orphaned ops,
//     no aliased parameters.
//  2. Coverage: every model name in train/model_zoo.cc has a registered
//     audit in src/analyze/model_audits.cc (and no audit names a model the
//     zoo no longer builds) — enforced by the EMBSR_MODEL_AUDIT source
//     scan, so an unaudited new model fails here, not in review.
//  3. Seeded mutants: a deliberately miswired model (disconnected
//     embedding, double-accumulating backward, dropped op output, aliased
//     parameter) must be *detected* — the auditor's alarm actually rings.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "analyze/graph_dump.h"
#include "analyze/model_audits.h"
#include "analyze/tape_audit.h"
#include "autograd/ops.h"
#include "autograd/tape.h"
#include "gtest/gtest.h"
#include "models/neural_model.h"
#include "verify/source_scan.h"

namespace embsr {
namespace analyze {
namespace {

// ---- 1. Registered audits all pass ----------------------------------------

TEST(GraphAudit, EveryZooModelPassesItsTapeAudit) {
  int neural_audited = 0;
  for (const ModelAuditSpec& spec : ModelAudits()) {
    const ModelAuditOutcome outcome = RunModelAudit(spec);
    ASSERT_TRUE(outcome.known) << spec.model;
    if (!outcome.neural) continue;
    ++neural_audited;
    EXPECT_TRUE(outcome.report.ok())
        << spec.model << ": " << outcome.report.ToString();
    EXPECT_GT(outcome.report.stats.reachable_nodes, 0) << spec.model;
    EXPECT_GT(outcome.report.stats.parameters, 0) << spec.model;
  }
  // The paper's Table 3 zoo: 13+ gradient-trained models must be audited.
  EXPECT_GE(neural_audited, 13);
}

// ---- 2. Coverage enforced by source scan ----------------------------------

TEST(GraphAudit, EveryZooModelHasARegisteredAudit) {
  const auto models = verify::ScanModelNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  ASSERT_FALSE(models.value().empty());
  const auto covered = verify::ScanModelAuditCoverage(EMBSR_REPO_ROOT);
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  for (const std::string& name : models.value()) {
    EXPECT_TRUE(std::binary_search(covered.value().begin(),
                                   covered.value().end(), name))
        << "model '" << name << "' is built by src/train/model_zoo.cc but "
        << "has no tape audit; add an EMBSR_MODEL_AUDIT entry to "
        << "src/analyze/model_audits.cc";
  }
}

TEST(GraphAudit, NoStaleAuditRegistrations) {
  const auto models = verify::ScanModelNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  const auto covered = verify::ScanModelAuditCoverage(EMBSR_REPO_ROOT);
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  for (const std::string& name : covered.value()) {
    EXPECT_TRUE(std::binary_search(models.value().begin(),
                                   models.value().end(), name))
        << "audit '" << name << "' names a model train/model_zoo.cc does "
        << "not build; remove the stale EMBSR_MODEL_AUDIT entry";
  }
  // The scan and the in-memory registry must agree (a marker without an
  // actual registration, or vice versa, means the macro discipline broke).
  for (const std::string& name : covered.value()) {
    EXPECT_NE(FindModelAudit(name), nullptr) << name;
  }
  EXPECT_EQ(covered.value().size(), ModelAudits().size());
}

TEST(GraphAudit, ScanFindsKnownNames) {
  // Guards the scan regex itself against rot: if the marker style changes,
  // this fails before the coverage tests silently pass on empty sets.
  const auto covered = verify::ScanModelAuditCoverage(EMBSR_REPO_ROOT);
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  EXPECT_TRUE(std::binary_search(covered.value().begin(),
                                 covered.value().end(), "EMBSR"));
  EXPECT_TRUE(std::binary_search(covered.value().begin(),
                                 covered.value().end(), "GRU4Rec"));
}

// ---- 3. Seeded mutants: the alarm must ring -------------------------------

/// A deliberately miswired model: registers an item table AND an operation
/// table, but Logits never touches the operation table — exactly the
/// silent dead-embedding failure the auditor exists to catch.
class DisconnectedOpsModel : public NeuralSessionModel {
 public:
  DisconnectedOpsModel(int64_t num_items, int64_t num_ops,
                       const TrainConfig& cfg)
      : NeuralSessionModel("DisconnectedOps", num_items, num_ops, cfg) {
    items_ = RegisterParameter(
        "items", Tensor::Randn({num_items, cfg.embedding_dim}, 0.1f, rng()));
    ops_ = RegisterParameter(
        "ops", Tensor::Randn({num_ops, cfg.embedding_dim}, 0.1f, rng()));
    proj_ = RegisterParameter(
        "proj",
        Tensor::Randn({cfg.embedding_dim, num_items}, 0.1f, rng()));
  }

 protected:
  ag::Variable Logits(const Example& ex) override {
    ag::Variable rows = ag::GatherRows(items_, ex.macro_items);
    ag::Variable pooled = ag::MeanRowsTo1xD(rows);
    return ag::MatMul(pooled, proj_);  // ops_ never consulted
  }

 private:
  ag::Variable items_, ops_, proj_;
};

TEST(GraphAudit, DetectsDisconnectedEmbedding) {
  TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.seed = 17;
  DisconnectedOpsModel model(12, 4, cfg);
  model.SetTraining(false);

  Example ex;
  ex.macro_items = {3, 7, 5};
  ex.target = 9;

  ag::Tape tape;
  ag::Variable loss = model.LossOn(ex);
  loss.Backward();
  const TapeAuditReport report =
      AuditTape(loss, model.NamedParameters(), tape);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const std::string& f : report.failures) {
    found = found || f.find("dead parameter 'ops'") != std::string::npos;
  }
  EXPECT_TRUE(found) << report.ToString();

  // The same wiring with the dead table explicitly allowed is clean...
  TapeAuditOptions allow;
  allow.allowed_dead_params = {"ops"};
  EXPECT_TRUE(AuditTape(loss, model.NamedParameters(), tape, allow).ok());
  // ...and allowing a live parameter is itself flagged as stale.
  TapeAuditOptions stale;
  stale.allowed_dead_params = {"items"};
  const TapeAuditReport stale_report =
      AuditTape(loss, model.NamedParameters(), tape, stale);
  ASSERT_FALSE(stale_report.ok());
  EXPECT_NE(stale_report.failures[0].find("stale allowance"),
            std::string::npos);
}

TEST(GraphAudit, DetectsDoubleAccumulation) {
  ag::Tape tape;
  ag::Variable x(Tensor::Full({2, 2}, 1.0f), /*requires_grad=*/true);
  // Hand-built op whose backward accumulates into its parent twice — the
  // kind of bug a refactored backward_fn can introduce silently, since the
  // doubled gradient still has the right shape.
  auto buggy = std::make_shared<ag::Node>();
  buggy->op = "BuggyOp";
  buggy->value = Tensor::Scalar(4.0f);
  buggy->requires_grad = true;
  buggy->parents = {x.node()};
  auto xn = x.node();
  buggy->backward_fn = [xn](ag::Node* o) {
    xn->AccumulateGrad(Tensor::Full(xn->value.shape(), o->grad.at(0)));
    xn->AccumulateGrad(Tensor::Full(xn->value.shape(), o->grad.at(0)));
  };
  ag::Variable root = ag::Variable::FromNode(buggy);
  root.Backward();

  const TapeAuditReport report =
      AuditTape(root, {{"x", x}}, tape);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const std::string& f : report.failures) {
    found =
        found || f.find("gradient accumulation mismatch") != std::string::npos;
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST(GraphAudit, DetectsOrphanedOp) {
  ag::Tape tape;
  ag::Variable x(Tensor::Full({2, 2}, 2.0f), /*requires_grad=*/true);
  ag::Variable y = ag::Mul(x, x);
  { ag::Variable dropped = ag::Exp(y); }  // computed, then forgotten
  ag::Variable loss = ag::SumAll(y);
  loss.Backward();

  const TapeAuditReport report = AuditTape(loss, {{"x", x}}, tape);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const std::string& f : report.failures) {
    found = found || f.find("orphaned op 'Exp'") != std::string::npos;
  }
  EXPECT_TRUE(found) << report.ToString();

  TapeAuditOptions allow;
  allow.allowed_orphan_ops = {"Exp"};
  EXPECT_TRUE(AuditTape(loss, {{"x", x}}, tape, allow).ok())
      << AuditTape(loss, {{"x", x}}, tape, allow).ToString();
}

TEST(GraphAudit, DetectsAliasedParameters) {
  ag::Tape tape;
  ag::Variable x(Tensor::Full({2, 2}, 1.0f), /*requires_grad=*/true);
  ag::Variable loss = ag::SumAll(ag::Mul(x, x));
  loss.Backward();

  const TapeAuditReport report =
      AuditTape(loss, {{"a", x}, {"b", x}}, tape);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures[0].find("aliased parameters"), std::string::npos)
      << report.ToString();
}

// ---- Clean graphs, stats and dumps ----------------------------------------

TEST(GraphAudit, CleanGraphAuditsCleanWithExactStats) {
  ag::Tape tape;
  ag::Variable x(Tensor::Full({2, 3}, 0.5f), /*requires_grad=*/true);
  ag::Variable y = ag::Tanh(ag::Mul(x, x));
  ag::Variable loss = ag::SumAll(y);
  loss.Backward();

  const TapeAuditReport report = AuditTape(loss, {{"x", x}}, tape);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.stats.tape_nodes, 4);  // leaf, Mul, Tanh, SumAll
  EXPECT_EQ(report.stats.reachable_nodes, 4);
  // Mul has two parent edges (x twice, with multiplicity), Tanh and SumAll
  // one each.
  EXPECT_EQ(report.stats.edges, 4);
  EXPECT_EQ(report.stats.parameters, 1);
  EXPECT_EQ(report.stats.parameter_scalars, 6);
  EXPECT_EQ(report.stats.op_histogram.at("Mul"), 1);
  EXPECT_EQ(report.stats.op_histogram.at("leaf"), 1);
}

TEST(GraphAudit, SharedSubexpressionFanOutCounted) {
  // z = x*x used twice: z's fan-out is 2, x's is 2 (multiplicity in Mul).
  ag::Tape tape;
  ag::Variable x(Tensor::Full({2, 2}, 1.5f), /*requires_grad=*/true);
  ag::Variable z = ag::Mul(x, x);
  ag::Variable loss = ag::SumAll(ag::Add(z, z));
  loss.Backward();
  EXPECT_EQ(z.node()->accum_count, 2);
  const TapeAuditReport report = AuditTape(loss, {{"x", x}}, tape);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(GraphAudit, DotAndJsonDumpsRenderTheGraph) {
  ag::Variable x(Tensor::Full({2, 2}, 1.0f), /*requires_grad=*/true);
  ag::Variable loss = ag::SumAll(ag::Relu(x));

  const std::vector<nn::NamedParameter> params = {{"weights/x", x}};
  const std::string dot = ToDot(loss, params);
  EXPECT_NE(dot.find("digraph autograd"), std::string::npos);
  EXPECT_NE(dot.find("SumAll"), std::string::npos);
  EXPECT_NE(dot.find("weights/x"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);

  const std::string json = ToJson(loss, params);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"op\":\"Relu\""), std::string::npos);
  EXPECT_NE(json.find("\"param\":\"weights/x\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\":"), std::string::npos);
}

TEST(GraphAudit, TapeScopesNestAndRestore) {
  EXPECT_EQ(ag::Tape::Active(), nullptr);
  ag::Tape outer;
  EXPECT_EQ(ag::Tape::Active(), &outer);
  ag::Variable a(Tensor::Scalar(1.0f));
  {
    ag::Tape inner;
    EXPECT_EQ(ag::Tape::Active(), &inner);
    ag::Variable b(Tensor::Scalar(2.0f));
    EXPECT_EQ(inner.nodes().size(), 1u);  // only b
  }
  EXPECT_EQ(ag::Tape::Active(), &outer);
  EXPECT_EQ(outer.nodes().size(), 1u);  // only a; inner recorded b
}

}  // namespace
}  // namespace analyze
}  // namespace embsr
