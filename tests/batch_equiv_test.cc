// Batched-execution equivalence suite (the PR's headline test).
//
// The batched path (EMBSR_BATCH_SIZE > 1) is an *optimization*, never a
// semantic change, and this file holds it to that in three tiers:
//
//  1. Bit-for-bit at batch size 1: training with EMBSR_BATCH_SIZE=1 routes
//     through the exact legacy per-session loop (params memcmp'd after two
//     epochs, metrics identical), and the batched model forwards
//     (ScoreBatch) reproduce ScoreAll bitwise — including at B in {4, 16},
//     since every batched kernel is row-independent and the masked GRU
//     blend is a bitwise row copy.
//  2. Tolerance at batch sizes 4/16 for *training*: gradient accumulation
//     order and graph decomposition legitimately differ, so parameters
//     after two epochs agree within float tolerance, not bitwise
//     (EXPERIMENTS.md "Batch equivalence tolerances").
//  3. Ragged-edge fuzz: batches mixing length-1 / max-length / identical
//     sessions; padded steps contribute nothing to loss, gradients, or
//     live_bytes; AuditTape passes for every zoo model's batched graph.
//
// Suite name BatchEquiv is load-bearing: scripts/run_sanitized_tests.sh
// re-runs `ctest -R '^BatchEquiv'` under EMBSR_BATCH_SIZE=16 x
// EMBSR_THREADS=4, and scripts/verify_gate.py runs the binary in its
// --batch-equiv stage.

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analyze/model_audits.h"
#include "analyze/tape_audit.h"
#include "autograd/ops.h"
#include "autograd/tape.h"
#include "datagen/generator.h"
#include "gtest/gtest.h"
#include "models/neural_model.h"
#include "models/session_batch.h"
#include "nn/layers.h"
#include "prof/mem_tracker.h"
#include "prof/op_profiler.h"
#include "train/evaluator.h"
#include "train/model_zoo.h"
#include "util/check.h"
#include "util/rng.h"

namespace embsr {
namespace {

// The three models with genuinely batched kernels (BatchedLogits
// overrides); NARM rides along in forward tests to cover the default
// stacked-rows path every other zoo model uses.
const char* kBatchedModels[] = {"GRU4Rec", "STAMP", "EMBSR"};

const ProcessedDataset& SmallData() {
  static const ProcessedDataset* d = [] {
    auto r = MakeDataset(JdAppliancesConfig(0.02));
    EMBSR_CHECK_OK(r);
    return new ProcessedDataset(std::move(r).value());
  }();
  return *d;
}

/// Pins EMBSR_BATCH_SIZE for a scope. Every run in this file sets its own
/// value explicitly (null = unset, the default-path leg), so the suite is
/// robust under the sanitizer matrix leg that exports EMBSR_BATCH_SIZE=16
/// into the whole process.
class ScopedBatchSize {
 public:
  explicit ScopedBatchSize(const char* value) {
    if (value == nullptr) {
      unsetenv("EMBSR_BATCH_SIZE");
    } else {
      setenv("EMBSR_BATCH_SIZE", value, 1);
    }
  }
  ~ScopedBatchSize() { unsetenv("EMBSR_BATCH_SIZE"); }
};

struct RunOutcome {
  std::vector<Tensor> params;
  MetricReport report;
};

RunOutcome TrainOnce(const std::string& model_name, const char* batch_env,
                     const TrainConfig& cfg) {
  ScopedBatchSize env(batch_env);
  const ProcessedDataset& data = SmallData();
  std::unique_ptr<Recommender> model =
      CreateModel(model_name, data.num_items, data.num_operations, cfg);
  EMBSR_CHECK(model != nullptr);
  EMBSR_CHECK_OK(model->Fit(data));

  RunOutcome out;
  auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
  EMBSR_CHECK(neural != nullptr);
  for (const auto& p : neural->Parameters()) out.params.push_back(p.value());
  out.report = Evaluate(model.get(), data.test, {10, 20}, 40).report;
  return out;
}

TrainConfig SmallConfig() {
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.embedding_dim = 16;
  cfg.seed = 1234;
  cfg.max_train_examples = 60;
  return cfg;
}

/// Tolerance-mode config: dropout off (the batched forward draws dropout
/// RNG in a different order, so any dropout makes runs incomparable) and
/// best-on-validation restore off (near-equal validation MRR could select
/// different epochs' snapshots, turning a 1e-5 drift into a full epoch of
/// divergence).
TrainConfig ToleranceConfig() {
  TrainConfig cfg = SmallConfig();
  cfg.dropout = 0.0f;
  cfg.validate_every = 0;
  return cfg;
}

void ExpectBitIdentical(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].shape(), b[i].shape()) << "param " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(),
                          sizeof(float) * static_cast<size_t>(a[i].size())),
              0)
        << "param " << i << " differs";
  }
}

void ExpectAllClose(const std::vector<Tensor>& a,
                    const std::vector<Tensor>& b, float atol, float rtol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].shape(), b[i].shape()) << "param " << i;
    const float* pa = a[i].data();
    const float* pb = b[i].data();
    int64_t violations = 0;
    double worst = 0.0;
    for (int64_t j = 0; j < a[i].size(); ++j) {
      const double diff = std::fabs(static_cast<double>(pa[j]) - pb[j]);
      const double tol = atol + rtol * std::fabs(static_cast<double>(pb[j]));
      if (diff > tol) ++violations;
      worst = std::max(worst, diff);
    }
    EXPECT_EQ(violations, 0)
        << "param " << i << ": " << violations << "/" << a[i].size()
        << " elements beyond atol=" << atol << " rtol=" << rtol
        << " (worst |diff|=" << worst << ")";
  }
}

// ---- 1. Bit-for-bit at batch size 1 ---------------------------------------

// EMBSR_BATCH_SIZE=1 must be *the legacy path*, not a batched path that
// happens to agree: params after two epochs memcmp against an unset-env
// run, metrics identical.
TEST(BatchEquiv, TrainBitIdenticalAtBatchSize1) {
  for (const char* name : kBatchedModels) {
    SCOPED_TRACE(name);
    const RunOutcome legacy = TrainOnce(name, nullptr, SmallConfig());
    const RunOutcome pinned = TrainOnce(name, "1", SmallConfig());
    ExpectBitIdentical(legacy.params, pinned.params);
    EXPECT_EQ(legacy.report.hit, pinned.report.hit);
    EXPECT_EQ(legacy.report.mrr, pinned.report.mrr);
  }
}

// The batched forward implementations themselves (ScoreBatch exercises
// BatchedLogits, including the three model overrides) reproduce ScoreAll
// bitwise at B=1 — this is the leg that actually runs the new kernels.
TEST(BatchEquiv, ScoreBatchBitIdenticalToScoreAllAtBatchOne) {
  const ProcessedDataset& data = SmallData();
  std::vector<std::string> names(std::begin(kBatchedModels),
                                 std::end(kBatchedModels));
  names.push_back("NARM");  // default stacked-rows BatchedLogits
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> model =
        CreateModel(name, data.num_items, data.num_operations, SmallConfig());
    ASSERT_NE(model, nullptr);
    auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
    ASSERT_NE(neural, nullptr);
    neural->EnsureEvalMode();
    const size_t n = std::min<size_t>(data.test.size(), 12);
    for (size_t i = 0; i < n; ++i) {
      const Example& ex = data.test[i];
      const std::vector<float> serial = neural->ScoreAll(ex);
      const auto batched = neural->ScoreBatch({&ex});
      ASSERT_EQ(batched.size(), 1u);
      ASSERT_EQ(batched[0].size(), serial.size());
      EXPECT_EQ(std::memcmp(serial.data(), batched[0].data(),
                            sizeof(float) * serial.size()),
                0)
          << name << " example " << i;
    }
  }
}

// Every batched kernel is row-independent (MatMul rows, broadcasts, the
// masked GRU blend is a bitwise row copy, SegmentSumRows accumulates each
// segment in the same ascending order SumRowsTo1xD uses), so even B > 1
// forwards are bit-identical per session — ragged padding and all.
TEST(BatchEquiv, ScoreBatchBitIdenticalToScoreAllAtBatch4And16) {
  const ProcessedDataset& data = SmallData();
  for (const char* name : kBatchedModels) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> model =
        CreateModel(name, data.num_items, data.num_operations, SmallConfig());
    ASSERT_NE(model, nullptr);
    auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
    ASSERT_NE(neural, nullptr);
    neural->EnsureEvalMode();
    for (const size_t bsz : {size_t{4}, size_t{16}}) {
      const size_t n = std::min<size_t>(data.test.size(), bsz);
      std::vector<const Example*> chunk;
      for (size_t i = 0; i < n; ++i) chunk.push_back(&data.test[i]);
      const auto batched = neural->ScoreBatch(chunk);
      ASSERT_EQ(batched.size(), chunk.size());
      for (size_t i = 0; i < chunk.size(); ++i) {
        const std::vector<float> serial = neural->ScoreAll(*chunk[i]);
        ASSERT_EQ(batched[i].size(), serial.size());
        EXPECT_EQ(std::memcmp(serial.data(), batched[i].data(),
                              sizeof(float) * serial.size()),
                  0)
            << name << " B=" << bsz << " session " << i;
      }
    }
  }
}

// End to end through train/evaluator.cc: the batched evaluator partition
// produces the identical metric report and per-example ranks as the
// per-example path, because the scores underneath are bitwise equal.
TEST(BatchEquiv, EvaluatorBatchedMatchesSerial) {
  const ProcessedDataset& data = SmallData();
  std::unique_ptr<Recommender> model = CreateModel(
      "GRU4Rec", data.num_items, data.num_operations, SmallConfig());
  ASSERT_NE(model, nullptr);
  EvalResult serial, batched;
  {
    ScopedBatchSize env("1");
    serial = Evaluate(model.get(), data.test, {10, 20}, 40);
  }
  {
    ScopedBatchSize env("16");
    batched = Evaluate(model.get(), data.test, {10, 20}, 40);
  }
  EXPECT_EQ(serial.report.hit, batched.report.hit);
  EXPECT_EQ(serial.report.mrr, batched.report.mrr);
  EXPECT_EQ(serial.ranks, batched.ranks);
}

// ---- 2. Tolerance at batch sizes 4 / 16 -----------------------------------

// Training with forward-batches accumulates the same mean-loss gradient in
// a different association order (one batched backward vs. per-example
// accumulation), so two epochs end float-close, not bitwise. Tolerances
// are documented in EXPERIMENTS.md "Batch equivalence tolerances".
TEST(BatchEquiv, TrainToleranceAtBatch4And16) {
  for (const char* name : kBatchedModels) {
    SCOPED_TRACE(name);
    const RunOutcome serial = TrainOnce(name, "1", ToleranceConfig());
    for (const char* bsz : {"4", "16"}) {
      SCOPED_TRACE(bsz);
      const RunOutcome batched = TrainOnce(name, bsz, ToleranceConfig());
      ExpectAllClose(batched.params, serial.params, /*atol=*/2e-3f,
                     /*rtol=*/2e-2f);
      for (const auto& [k, v] : serial.report.mrr) {
        ASSERT_TRUE(batched.report.mrr.count(k));
        EXPECT_NEAR(v, batched.report.mrr.at(k), 0.08) << "mrr@" << k;
      }
      for (const auto& [k, v] : serial.report.hit) {
        ASSERT_TRUE(batched.report.hit.count(k));
        EXPECT_NEAR(v, batched.report.hit.at(k), 0.08) << "hit@" << k;
      }
    }
  }
}

// ---- 3. Ragged-edge fuzz ---------------------------------------------------

/// Consistent prefix of an example's micro-behavior session: the first k
/// macro items with their operation runs and the matching flat rows.
Example Prefix(const Example& ex, size_t k) {
  Example out;
  out.target = ex.target;
  size_t flat = 0;
  for (size_t i = 0; i < ex.macro_items.size(); ++i) {
    const size_t ops = ex.macro_ops[i].size();
    if (i < k) {
      out.macro_items.push_back(ex.macro_items[i]);
      out.macro_ops.push_back(ex.macro_ops[i]);
      for (size_t j = 0; j < ops; ++j) {
        out.flat_items.push_back(ex.flat_items[flat + j]);
        out.flat_ops.push_back(ex.flat_ops[flat + j]);
      }
    }
    flat += ops;
  }
  return out;
}

/// A deliberately ragged batch: a length-1 session, a session at (or past)
/// max_positions, and the same long session twice (identical-session
/// degenerate case).
std::vector<Example> RaggedExamples(int max_positions) {
  const ProcessedDataset& data = SmallData();
  const Example* longest = &data.test[0];
  for (const Example& ex : data.test) {
    if (ex.macro_items.size() > longest->macro_items.size()) longest = &ex;
  }
  EMBSR_CHECK_GT(longest->macro_items.size(), 2u);
  std::vector<Example> out;
  out.push_back(Prefix(*longest, 1));
  out.push_back(*longest);
  out.push_back(*longest);
  out.push_back(Prefix(*longest, std::min<size_t>(
                                     longest->macro_items.size() - 1,
                                     static_cast<size_t>(max_positions))));
  return out;
}

// The collator's two layouts agree with the per-session Tail() semantics
// on a ragged batch: right-aligned time-major placement with exact masks,
// and a flat concatenation whose segment bookkeeping is consistent.
TEST(BatchEquiv, CollatorLayoutsAreConsistentOnRaggedBatches) {
  const int kMaxPositions = 8;
  const std::vector<Example> exs = RaggedExamples(kMaxPositions);
  std::vector<const Example*> ptrs;
  for (const Example& e : exs) ptrs.push_back(&e);
  const SessionBatch b = CollateSessions(ptrs, kMaxPositions);

  ASSERT_EQ(b.batch, static_cast<int64_t>(exs.size()));
  int64_t flat_total = 0;
  for (int64_t bi = 0; bi < b.batch; ++bi) {
    const auto& items = exs[static_cast<size_t>(bi)].macro_items;
    const int64_t len = b.lengths[static_cast<size_t>(bi)];
    EXPECT_EQ(len, std::min<int64_t>(static_cast<int64_t>(items.size()),
                                     kMaxPositions));
    EXPECT_LE(len, b.max_len);
    EXPECT_EQ(b.targets[static_cast<size_t>(bi)],
              exs[static_cast<size_t>(bi)].target);
    // Time-major: session bi's step t holds its Tail item, mask 1; earlier
    // steps are pad item 0, mask 0.
    for (int64_t t = 0; t < b.max_len; ++t) {
      const int64_t start = b.max_len - len;
      const float mask = b.step_masks[static_cast<size_t>(t)].data()[bi];
      const int64_t item =
          b.time_major_items[static_cast<size_t>(t * b.batch + bi)];
      if (t >= start) {
        EXPECT_EQ(mask, 1.0f);
        EXPECT_EQ(item, items[items.size() - static_cast<size_t>(len) +
                              static_cast<size_t>(t - start)]);
      } else {
        EXPECT_EQ(mask, 0.0f);
        EXPECT_EQ(item, 0);
      }
    }
    // Flat: contiguous segment of `len` rows ending at last_row_index.
    EXPECT_EQ(b.last_row_index[static_cast<size_t>(bi)],
              flat_total + len - 1);
    for (int64_t p = 0; p < len; ++p) {
      EXPECT_EQ(b.segment_ids[static_cast<size_t>(flat_total + p)], bi);
      EXPECT_EQ(b.flat_items[static_cast<size_t>(flat_total + p)],
                items[items.size() - static_cast<size_t>(len) +
                      static_cast<size_t>(p)]);
    }
    EXPECT_EQ(b.inv_len_col.data()[bi], 1.0f / static_cast<float>(len));
    flat_total += len;
  }
  EXPECT_EQ(static_cast<int64_t>(b.flat_items.size()), flat_total);
  // step_all_valid is exactly "every session live at this step".
  for (int64_t t = 0; t < b.max_len; ++t) {
    bool all = true;
    for (int64_t bi = 0; bi < b.batch; ++bi) {
      all = all && b.step_masks[static_cast<size_t>(t)].data()[bi] == 1.0f;
    }
    EXPECT_EQ(b.step_all_valid[static_cast<size_t>(t)] != 0, all) << t;
  }
}

// BatchedLossOn over a ragged batch is the mean of the per-session losses:
// one logits row per session means no masked loss term exists to get
// wrong, and padding never reaches the loss.
TEST(BatchEquiv, BatchedLossIsMeanOfSerialLossesOnRaggedBatch) {
  const ProcessedDataset& data = SmallData();
  const std::vector<Example> exs = RaggedExamples(SmallConfig().max_positions);
  std::vector<const Example*> ptrs;
  for (const Example& e : exs) ptrs.push_back(&e);

  std::vector<std::string> names(std::begin(kBatchedModels),
                                 std::end(kBatchedModels));
  names.push_back("NARM");
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> model =
        CreateModel(name, data.num_items, data.num_operations, SmallConfig());
    ASSERT_NE(model, nullptr);
    auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
    ASSERT_NE(neural, nullptr);
    neural->SetTraining(false);  // dropout RNG order differs batched/serial

    const SessionBatch batch = CollateSessions(ptrs, SmallConfig().max_positions);
    const float batched = neural->BatchedLossOn(batch).value().at(0);
    double mean = 0.0;
    for (const Example* ex : ptrs) {
      mean += static_cast<double>(neural->LossOn(*ex).value().at(0));
    }
    mean /= static_cast<double>(ptrs.size());
    EXPECT_NEAR(batched, mean, 1e-5 + 1e-5 * std::fabs(mean));
  }
}

// Padded steps are inert in the masked GRU: with *garbage* (not zero) in
// every padded input row, each session's final state still memcmp-equals
// the serial ForwardLast over its real rows, and backward sends exactly
// zero gradient into every padded row.
TEST(BatchEquiv, PaddedStepsAreInertInBatchedGruForwardAndBackward) {
  const int64_t kDim = 6;
  const int64_t kBatch = 3;
  const std::vector<int64_t> lens = {1, 5, 3};
  const int64_t kSteps = 5;

  Rng rng(20260809);
  nn::GRU gru(kDim, kDim, &rng);

  Tensor xt = Tensor::Randn({kSteps * kBatch, kDim}, 0.5f, &rng);
  std::vector<Tensor> step_masks;
  std::vector<uint8_t> step_all_valid;
  for (int64_t t = 0; t < kSteps; ++t) {
    Tensor mask({kBatch, 1});
    bool all = true;
    for (int64_t bi = 0; bi < kBatch; ++bi) {
      if (t >= kSteps - lens[static_cast<size_t>(bi)]) {
        mask.data()[bi] = 1.0f;
      } else {
        all = false;
        // Garbage in padded rows: if any of it leaks into state or
        // gradient, the assertions below catch it.
        for (int64_t j = 0; j < kDim; ++j) {
          xt.data()[(t * kBatch + bi) * kDim + j] = 7.5f;
        }
      }
    }
    step_masks.push_back(std::move(mask));
    step_all_valid.push_back(all ? 1 : 0);
  }

  ag::Variable x(xt, /*requires_grad=*/true);
  ag::Variable h = gru.ForwardBatchedLast(x, kBatch, step_masks,
                                          step_all_valid);
  ASSERT_EQ(h.value().dim(0), kBatch);
  ASSERT_EQ(h.value().dim(1), kDim);

  // Forward: memcmp each session's row against the serial unroll of its
  // real (unpadded) rows.
  for (int64_t bi = 0; bi < kBatch; ++bi) {
    const int64_t len = lens[static_cast<size_t>(bi)];
    Tensor xi({len, kDim});
    for (int64_t p = 0; p < len; ++p) {
      const int64_t t = kSteps - len + p;
      std::memcpy(xi.data() + p * kDim, xt.data() + (t * kBatch + bi) * kDim,
                  sizeof(float) * static_cast<size_t>(kDim));
    }
    const ag::Variable serial = gru.ForwardLast(ag::Variable(xi));
    EXPECT_EQ(std::memcmp(serial.value().data(),
                          h.value().data() + bi * kDim,
                          sizeof(float) * static_cast<size_t>(kDim)),
              0)
        << "session " << bi;
  }

  // Backward: padded rows of x receive gradient exactly 0.0f; live rows
  // carry signal.
  ag::SumAll(h).Backward();
  ASSERT_TRUE(x.node()->grad_ready);
  const Tensor& g = x.node()->grad;
  double live_abs = 0.0;
  for (int64_t t = 0; t < kSteps; ++t) {
    for (int64_t bi = 0; bi < kBatch; ++bi) {
      const bool padded = t < kSteps - lens[static_cast<size_t>(bi)];
      for (int64_t j = 0; j < kDim; ++j) {
        const float gv = g.data()[(t * kBatch + bi) * kDim + j];
        if (padded) {
          EXPECT_EQ(gv, 0.0f) << "t=" << t << " b=" << bi << " j=" << j;
        } else {
          live_abs += std::fabs(gv);
        }
      }
    }
  }
  EXPECT_GT(live_abs, 0.0);
}

// Batched graphs do not leak: live_bytes returns to its pre-forward
// baseline once the graph is destroyed, for both the eval-scoring path and
// a full forward/backward (grad buffers are replaced in steady state, not
// grown) — on a ragged batch, so padded rows cannot hide a leak.
TEST(BatchEquiv, BatchedGraphsReturnLiveBytesToBaseline) {
  prof::Start();
  {
    const ProcessedDataset& data = SmallData();
    const std::vector<Example> exs =
        RaggedExamples(SmallConfig().max_positions);
    std::vector<const Example*> ptrs;
    for (const Example& e : exs) ptrs.push_back(&e);
    std::unique_ptr<Recommender> model = CreateModel(
        "GRU4Rec", data.num_items, data.num_operations, SmallConfig());
    ASSERT_NE(model, nullptr);
    auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
    ASSERT_NE(neural, nullptr);
    neural->SetTraining(false);
    const SessionBatch batch =
        CollateSessions(ptrs, SmallConfig().max_positions);

    // Eval scoring allocates nothing durable.
    {
      const auto warm = neural->ScoreBatch(ptrs);
      ASSERT_EQ(warm.size(), ptrs.size());
    }
    const prof::MemStats score_base = prof::MemSnapshot();
    {
      const auto scores = neural->ScoreBatch(ptrs);
      ASSERT_EQ(scores.size(), ptrs.size());
    }
    EXPECT_EQ(prof::MemSnapshot().live_bytes, score_base.live_bytes);

    // Forward/backward: after a warmup allocates the per-parameter grad
    // buffers, another round trip must end exactly where it started.
    { neural->BatchedLossOn(batch).Backward(); }
    neural->ZeroGrad();
    const prof::MemStats train_base = prof::MemSnapshot();
    { neural->BatchedLossOn(batch).Backward(); }
    neural->ZeroGrad();
    EXPECT_EQ(prof::MemSnapshot().live_bytes, train_base.live_bytes);
  }
  prof::Stop();
}

// Every zoo model's *batched* loss graph passes its registered tape audit
// on a ragged 3-session batch: all parameters reach the loss (modulo each
// variant's documented dead-parameter allowances), accumulation counts
// match fan-out, no orphaned ops — the same structural bar the per-session
// graphs clear in graph_audit_test.cc.
TEST(BatchEquiv, BatchedGraphPassesTapeAuditAcrossZoo) {
  // Audit vocabulary (12 items / 4 operations) with a ragged trio:
  // 3-item / 1-item / 5-item micro-behavior sessions.
  Example e1;
  e1.macro_items = {3, 7, 5};
  e1.macro_ops = {{1}, {0, 2}, {1, 3}};
  e1.flat_items = {3, 7, 7, 5, 5};
  e1.flat_ops = {1, 0, 2, 1, 3};
  e1.target = 9;
  Example e2;
  e2.macro_items = {5};
  e2.macro_ops = {{2}};
  e2.flat_items = {5};
  e2.flat_ops = {2};
  e2.target = 1;
  Example e3;
  e3.macro_items = {1, 2, 3, 4, 6};
  e3.macro_ops = {{0}, {1}, {2}, {3}, {0}};
  e3.flat_items = {1, 2, 3, 4, 6};
  e3.flat_ops = {0, 1, 2, 3, 0};
  e3.target = 11;
  const std::vector<const Example*> ptrs = {&e1, &e2, &e3};

  TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_positions = 16;
  cfg.seed = 17;

  int neural_audited = 0;
  for (const analyze::ModelAuditSpec& spec : analyze::ModelAudits()) {
    SCOPED_TRACE(spec.model);
    std::unique_ptr<Recommender> model = CreateModel(spec.model, 12, 4, cfg);
    ASSERT_NE(model, nullptr) << spec.model;
    auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
    if (neural == nullptr) continue;  // memory-based: no graph to audit
    ++neural_audited;

    neural->SetTraining(false);
    neural->ZeroGrad();
    const SessionBatch batch = CollateSessions(ptrs, cfg.max_positions);
    ag::Tape tape;
    ag::Variable loss = neural->BatchedLossOn(batch);
    loss.Backward();
    const analyze::TapeAuditReport report =
        AuditTape(loss, neural->NamedParameters(), tape, spec.options);
    EXPECT_TRUE(report.ok()) << spec.model << ": " << report.ToString();
    EXPECT_GT(report.stats.reachable_nodes, 0);
  }
  EXPECT_GE(neural_audited, 13);
}

}  // namespace
}  // namespace embsr
