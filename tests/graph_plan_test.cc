// Static shape/liveness analyzer and arena memory planner (src/analyze).
//
// Three layers of enforcement, mirroring graph_audit_test.cc:
//  1. Every zoo model's recorded graph gets a verified arena plan: all
//     shapes re-derive, the simulated backward schedule matches the
//     runtime's accumulation counts, no two simultaneously-live buffers
//     share arena bytes, and the planned footprint brackets the prof
//     memory tracker's measured peak within kPlannedPeakTolerance.
//  2. Coverage: every op declared in autograd/ops.h has a registered
//     EMBSR_SHAPE_RULE in src/analyze/shape_rules.cc (and no rule names a
//     dropped op) — enforced by source scan, so a new op cannot land
//     without a shape rule.
//  3. Seeded mutants: a corrupted plan (overlapping intervals, dead
//     store, too-early-freed gradient, over-held gradient, bad reshape
//     alias) must each be *rejected* with its named diagnostic — the
//     verifier's alarm actually rings.

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/graph_plan.h"
#include "analyze/model_audits.h"
#include "analyze/shape_rules.h"
#include "autograd/ops.h"
#include "autograd/tape.h"
#include "bench/bench_common.h"
#include "gtest/gtest.h"
#include "verify/source_scan.h"

namespace embsr {
namespace analyze {
namespace {

bool HasFailureTagged(const std::vector<std::string>& failures,
                      const std::string& tag) {
  for (const std::string& f : failures) {
    if (f.find(tag) != std::string::npos) return true;
  }
  return false;
}

// ---- 1. Whole zoo: plan, verify, cross-check against measured peak --------

TEST(GraphPlan, EveryZooModelGetsAVerifiedPlan) {
  bench::BenchReport report("graph_plan");
  int neural_planned = 0;
  for (const ModelAuditSpec& spec : ModelAudits()) {
    const ModelPlanOutcome outcome = RunModelPlan(spec.model);
    ASSERT_TRUE(outcome.known) << spec.model;
    if (!outcome.neural) continue;  // memory-based: no graph to plan
    ++neural_planned;

    EXPECT_TRUE(outcome.verify.ok())
        << spec.model << ": " << outcome.verify.ToString();
    EXPECT_GT(outcome.plan.stats.tape_nodes, 0) << spec.model;
    EXPECT_GT(outcome.plan.stats.backward_steps, 0) << spec.model;
    EXPECT_GT(outcome.plan.stats.shapes.checked, 0) << spec.model;
    EXPECT_GT(outcome.plan.planned_total_bytes, 0) << spec.model;
    EXPECT_GE(outcome.plan.planned_total_bytes, outcome.plan.planned_peak_bytes)
        << spec.model;
    EXPECT_GE(outcome.plan.arena_extent_bytes, outcome.plan.planned_peak_bytes)
        << spec.model;

    // The planned-vs-measured bracket: every planned buffer really is
    // allocated inside the measured window (lower bound exact), and the
    // pinned tolerance covers what the static plan cannot see (backward
    // temporaries, closure-captured tensors).
    EXPECT_GE(outcome.measured_peak_bytes, outcome.plan.planned_total_bytes)
        << spec.model;
    EXPECT_LE(static_cast<double>(outcome.measured_peak_bytes),
              static_cast<double>(outcome.plan.planned_total_bytes) *
                  kPlannedPeakTolerance)
        << spec.model << ": measured " << outcome.measured_peak_bytes
        << "B is " << outcome.measured_over_planned
        << "x planned; re-pin kPlannedPeakTolerance deliberately if the "
        << "backward really grew";

    report.AddScalar("planned_peak_bytes/" + spec.model,
                     static_cast<double>(outcome.plan.planned_peak_bytes));
    report.AddScalar("planned_total_bytes/" + spec.model,
                     static_cast<double>(outcome.plan.planned_total_bytes));
    report.AddScalar("measured_over_planned/" + spec.model,
                     outcome.measured_over_planned);
  }
  // The paper's Table 3 zoo: 13+ gradient-trained models must be planned.
  EXPECT_GE(neural_planned, 13);
}

// ---- 2. Shape-rule coverage enforced by source scan ------------------------

TEST(GraphPlan, EveryDeclaredOpHasAShapeRule) {
  const auto ops = verify::ScanOpNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_FALSE(ops.value().empty());
  const auto covered = verify::ScanShapeRuleCoverage(EMBSR_REPO_ROOT);
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  for (const std::string& name : ops.value()) {
    EXPECT_TRUE(std::binary_search(covered.value().begin(),
                                   covered.value().end(), name))
        << "op '" << name << "' is declared in src/autograd/ops.h but has "
        << "no shape rule; add an EMBSR_SHAPE_RULE entry to "
        << "src/analyze/shape_rules.cc";
  }
}

TEST(GraphPlan, NoStaleShapeRules) {
  const auto ops = verify::ScanOpNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  const auto covered = verify::ScanShapeRuleCoverage(EMBSR_REPO_ROOT);
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  for (const std::string& name : covered.value()) {
    EXPECT_TRUE(std::binary_search(ops.value().begin(), ops.value().end(),
                                   name))
        << "shape rule '" << name << "' names an op src/autograd/ops.h does "
        << "not declare; remove the stale EMBSR_SHAPE_RULE entry";
    EXPECT_TRUE(HasShapeRule(name)) << name;
  }
  // The scan and the in-memory registry must agree.
  EXPECT_EQ(covered.value().size(), ShapeRuleNames().size());
}

TEST(GraphPlan, ShapeRuleScanFindsKnownNames) {
  // Guards the scan regex itself against rot: if the marker style changes,
  // this fails before the coverage tests silently pass on empty sets.
  const auto covered = verify::ScanShapeRuleCoverage(EMBSR_REPO_ROOT);
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  EXPECT_TRUE(std::binary_search(covered.value().begin(),
                                 covered.value().end(), "MatMul"));
  EXPECT_TRUE(std::binary_search(covered.value().begin(),
                                 covered.value().end(),
                                 "SoftmaxCrossEntropy"));
}

TEST(GraphPlan, ShapeRuleCatchesCorruptedOutput) {
  ag::Variable x(Tensor::Full({2, 3}, 0.5f), /*requires_grad=*/true);
  ag::Variable y = ag::Mul(x, x);
  EXPECT_EQ(CheckNodeShape(*y.node()), "");
  // Corrupt the recorded output in place: [2,3] * [2,3] -> [2,2] is the
  // inconsistency class the rules exist to catch.
  y.node()->value = Tensor::Zeros({2, 2});
  const std::string diag = CheckNodeShape(*y.node());
  EXPECT_NE(diag.find("Mul"), std::string::npos) << diag;
}

// ---- 3. Clean graphs plan exactly ------------------------------------------

TEST(GraphPlan, CleanGraphPlansWithExactIntervals) {
  ag::Tape tape;
  ag::Variable x(Tensor::Full({2, 3}, 0.5f), /*requires_grad=*/true);
  ag::Variable y = ag::Tanh(ag::Mul(x, x));
  ag::Variable loss = ag::SumAll(y);
  loss.Backward();

  const GraphPlan plan = BuildGraphPlan(loss, {{"x", x}}, tape);
  const PlanVerifyReport verify = VerifyGraphPlan(plan);
  EXPECT_TRUE(verify.ok()) << verify.ToString();

  // Forward steps 0..3 (leaf, Mul, Tanh, SumAll), seed at 4, backward
  // execs 5..7 (SumAll, Tanh, Mul), end step 8.
  EXPECT_EQ(plan.stats.tape_nodes, 4);
  EXPECT_EQ(plan.stats.forward_steps, 4);
  EXPECT_EQ(plan.stats.backward_steps, 3);
  EXPECT_EQ(plan.stats.persistent_nodes, 0);
  EXPECT_EQ(plan.end_step, 8);
  // 4 value buffers + 4 grad buffers (seeded root, Tanh, Mul, leaf).
  EXPECT_EQ(plan.buffers.size(), 8u);
  EXPECT_EQ(plan.stats.planned_buffers, 8);
  // Three [2,3] values + scalar loss, mirrored by their grads.
  EXPECT_EQ(plan.planned_total_bytes, 2 * (3 * 24 + 4));
  EXPECT_GE(plan.planned_total_bytes, plan.planned_peak_bytes);
  EXPECT_GE(plan.arena_extent_bytes, plan.planned_peak_bytes);
  EXPECT_FALSE(plan.edges.empty());

  for (const PlanBuffer& b : plan.buffers) {
    EXPECT_GE(b.offset, 0) << b.label;
    EXPECT_LE(b.def_step, b.last_use_step) << b.label;
    if (b.is_grad && b.node_id == 0) {
      // The leaf's grad: accumulated twice by Mul's backward (x appears as
      // both factors) at step 7, held for the optimizer until end step 8.
      EXPECT_EQ(b.accum_steps, (std::vector<int64_t>{7, 7}));
      EXPECT_EQ(b.def_step, 7);
      EXPECT_EQ(b.last_use_step, 8);
      EXPECT_EQ(b.label, "x");
    }
  }

  const std::string json = PlanToJson(plan);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"planned_total_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"buffers\":"), std::string::npos);
  const std::string dot = PlanToDot(plan);
  EXPECT_NE(dot.find("digraph graph_plan"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(GraphPlan, ParametersOutsideTheTapeArePersistent) {
  ag::Variable w(Tensor::Full({2, 3}, 0.5f), /*requires_grad=*/true);
  ag::Tape tape;  // opened after w: w is a persistent (parameter) node
  ag::Variable loss = ag::SumAll(ag::Mul(w, w));
  loss.Backward();

  const GraphPlan plan = BuildGraphPlan(loss, {{"w", w}}, tape);
  const PlanVerifyReport verify = VerifyGraphPlan(plan);
  EXPECT_TRUE(verify.ok()) << verify.ToString();
  EXPECT_EQ(plan.stats.persistent_nodes, 1);

  bool saw_persistent_value = false, saw_param_grad = false;
  for (const PlanBuffer& b : plan.buffers) {
    if (b.label != "w") continue;
    if (!b.is_grad) {
      saw_persistent_value = true;
      EXPECT_TRUE(b.persistent);
      EXPECT_EQ(b.offset, -1);  // persistent storage is not arena-planned
      EXPECT_GT(b.reads, 0);
    } else {
      // The parameter's gradient is transient: born in backward, read by
      // the optimizer at end-of-graph, arena-planned like any other.
      saw_param_grad = true;
      EXPECT_FALSE(b.persistent);
      EXPECT_GE(b.offset, 0);
      EXPECT_EQ(b.last_use_step, plan.end_step);
    }
  }
  EXPECT_TRUE(saw_persistent_value);
  EXPECT_TRUE(saw_param_grad);
}

TEST(GraphPlan, DetectsScheduleDriftFromRuntime) {
  // A second Backward doubles every accum_count: the simulated schedule
  // (one pass) must disagree, and the plan must say so.
  ag::Tape tape;
  ag::Variable x(Tensor::Full({2, 2}, 1.0f), /*requires_grad=*/true);
  ag::Variable loss = ag::SumAll(ag::Mul(x, x));
  loss.Backward();
  loss.Backward();
  const GraphPlan plan = BuildGraphPlan(loss, {{"x", x}}, tape);
  EXPECT_TRUE(HasFailureTagged(plan.build_failures, "[accum-model]"));
  EXPECT_FALSE(VerifyGraphPlan(plan).ok());
}

// ---- 4. Seeded plan mutants: each named diagnostic must fire ---------------

/// A graph whose node z is accumulated at two *different* backward steps
/// (Add's exec and Tanh's exec), so gradient-interval mutants can sit
/// strictly between first and last accumulation.
struct TwoAccumFixture {
  ag::Tape tape;
  ag::Variable x{Tensor::Full({2, 2}, 0.5f), /*requires_grad=*/true};
  ag::Variable z, loss;
  GraphPlan plan;

  TwoAccumFixture() {
    z = ag::Mul(x, x);
    loss = ag::SumAll(ag::Add(z, ag::Tanh(z)));
    loss.Backward();
    plan = BuildGraphPlan(loss, {{"x", x}}, tape);
  }

  PlanBuffer* GradWithTwoAccumSteps() {
    for (PlanBuffer& b : plan.buffers) {
      if (b.is_grad && b.accum_steps.size() == 2 &&
          b.accum_steps[0] != b.accum_steps[1]) {
        return &b;
      }
    }
    return nullptr;
  }
};

TEST(GraphPlan, RejectsOverlappingIntervalPlan) {
  TwoAccumFixture fx;
  ASSERT_TRUE(VerifyGraphPlan(fx.plan).ok())
      << VerifyGraphPlan(fx.plan).ToString();
  // Collapse two simultaneously-live value buffers onto the same offset —
  // the exact corruption the arena verifier exists to refuse.
  PlanBuffer* a = nullptr;
  PlanBuffer* b = nullptr;
  for (PlanBuffer& buf : fx.plan.buffers) {
    if (buf.is_grad || buf.persistent) continue;
    if (a == nullptr) {
      a = &buf;
    } else if (b == nullptr && a->def_step <= buf.last_use_step &&
               buf.def_step <= a->last_use_step) {
      b = &buf;
    }
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  b->offset = a->offset;
  const PlanVerifyReport verify = VerifyGraphPlan(fx.plan);
  ASSERT_FALSE(verify.ok());
  EXPECT_TRUE(HasFailureTagged(verify.failures, "[overlapping-intervals]"))
      << verify.ToString();
}

TEST(GraphPlan, RejectsDeadStoreGraph) {
  ag::Tape tape;
  ag::Variable x(Tensor::Full({2, 2}, 2.0f), /*requires_grad=*/true);
  ag::Variable y = ag::Mul(x, x);
  { ag::Variable dropped = ag::Exp(y); }  // computed, then forgotten
  ag::Variable loss = ag::SumAll(y);
  loss.Backward();

  const GraphPlan plan = BuildGraphPlan(loss, {{"x", x}}, tape);
  const PlanVerifyReport verify = VerifyGraphPlan(plan);
  ASSERT_FALSE(verify.ok());
  EXPECT_TRUE(HasFailureTagged(verify.failures, "[dead-store]"))
      << verify.ToString();
  EXPECT_TRUE(HasFailureTagged(verify.failures, "Exp")) << verify.ToString();

  // The same plan with the dead op explicitly allowed is clean (mirrors
  // the tape auditor's allowed_orphan_ops escape hatch).
  PlanOptions allow;
  allow.allowed_dead_stores = {"Exp"};
  EXPECT_TRUE(VerifyGraphPlan(plan, allow).ok())
      << VerifyGraphPlan(plan, allow).ToString();
}

TEST(GraphPlan, RejectsGradFreedBeforeLastAccumulation) {
  TwoAccumFixture fx;
  PlanBuffer* g = fx.GradWithTwoAccumSteps();
  ASSERT_NE(g, nullptr);
  // Free the gradient after its first accumulation but before its second:
  // the arena would hand the bytes to someone else mid-accumulation.
  g->last_use_step = g->accum_steps.front();
  const PlanVerifyReport verify = VerifyGraphPlan(fx.plan);
  ASSERT_FALSE(verify.ok());
  EXPECT_TRUE(HasFailureTagged(verify.failures,
                               "[grad-freed-before-last-accumulation]"))
      << verify.ToString();
}

TEST(GraphPlan, RejectsGradOutlivingItsLastAccumulation) {
  TwoAccumFixture fx;
  PlanBuffer* g = fx.GradWithTwoAccumSteps();
  ASSERT_NE(g, nullptr);
  // Hold the gradient past end-of-graph: planned memory the schedule can
  // never touch again — the leak-shaped smell, not a correctness bug.
  g->last_use_step = fx.plan.end_step + 3;
  const PlanVerifyReport verify = VerifyGraphPlan(fx.plan);
  ASSERT_FALSE(verify.ok());
  EXPECT_TRUE(
      HasFailureTagged(verify.failures, "[grad-outlives-accumulation]"))
      << verify.ToString();
}

TEST(GraphPlan, RejectsReshapeAliasHazards) {
  TwoAccumFixture fx;
  // A well-formed view first: same bytes, lifetime inside the target's.
  const PlanBuffer* target = nullptr;
  for (const PlanBuffer& b : fx.plan.buffers) {
    if (!b.is_grad && !b.persistent && b.last_use_step > b.def_step) {
      target = &b;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  PlanBuffer view;
  view.id = static_cast<int64_t>(fx.plan.buffers.size());
  view.node_id = target->node_id;
  view.label = "view";
  view.shape = target->shape;
  view.size_bytes = target->size_bytes;
  view.def_step = target->def_step;
  view.last_use_step = target->last_use_step;
  view.reads = 1;
  view.alias_of = target->id;
  fx.plan.buffers.push_back(view);
  EXPECT_TRUE(VerifyGraphPlan(fx.plan).ok())
      << VerifyGraphPlan(fx.plan).ToString();

  // Mutant 1: the view claims more bytes than the storage it aliases —
  // the Tensor::Reshape growth bug class, caught statically this time.
  fx.plan.buffers.back().size_bytes = target->size_bytes + 4;
  PlanVerifyReport verify = VerifyGraphPlan(fx.plan);
  ASSERT_FALSE(verify.ok());
  EXPECT_TRUE(HasFailureTagged(verify.failures, "[reshape-alias-hazard]"))
      << verify.ToString();

  // Mutant 2: right size, but the view outlives the aliased buffer.
  fx.plan.buffers.back().size_bytes = target->size_bytes;
  fx.plan.buffers.back().last_use_step = target->last_use_step + 1;
  verify = VerifyGraphPlan(fx.plan);
  ASSERT_FALSE(verify.ok());
  EXPECT_TRUE(HasFailureTagged(verify.failures, "[reshape-alias-hazard]"))
      << verify.ToString();
}

}  // namespace
}  // namespace analyze
}  // namespace embsr
