#include "autograd/ops.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace embsr {
namespace {

using ag::Variable;
using embsr::testing::CheckGradients;

Variable Leaf(Tensor t) { return Variable(std::move(t), true); }

Tensor RandT(std::vector<int64_t> shape, uint64_t seed, float stddev = 0.7f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), stddev, &rng);
}

TEST(AutogradBasics, BackwardOnScalarLeaf) {
  Variable x = Leaf(Tensor::Scalar(3.0f));
  x.Backward();
  EXPECT_FLOAT_EQ(x.GradOrZeros().at(0), 1.0f);
}

TEST(AutogradBasics, GradAccumulatesAcrossBackwardCalls) {
  Variable x = Leaf(Tensor::Scalar(2.0f));
  ag::Scale(x, 3.0f).Backward();
  ag::Scale(x, 3.0f).Backward();
  EXPECT_FLOAT_EQ(x.GradOrZeros().at(0), 6.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.GradOrZeros().at(0), 0.0f);
  EXPECT_FALSE(x.has_grad());
}

TEST(AutogradBasics, DiamondGraphSumsPaths) {
  // y = x*x + x  => dy/dx = 2x + 1.
  Variable x = Leaf(Tensor::Scalar(3.0f));
  Variable y = ag::Add(ag::Mul(x, x), x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.GradOrZeros().at(0), 7.0f);
}

TEST(AutogradBasics, NoGraphRecordedWithoutRequiresGrad) {
  Variable a = ag::Constant(Tensor::Scalar(1.0f));
  Variable b = ag::Constant(Tensor::Scalar(2.0f));
  Variable c = ag::Add(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(c.node()->parents.empty());
}

TEST(AutogradBasics, SharedSubexpressionBackwardOnce) {
  // z = (x + x) * (x + x) -> dz/dx = 8x.
  Variable x = Leaf(Tensor::Scalar(1.5f));
  Variable s = ag::Add(x, x);
  Variable z = ag::Mul(s, s);
  z.Backward();
  EXPECT_FLOAT_EQ(x.GradOrZeros().at(0), 12.0f);
}

TEST(AutogradBasics, LongChainBackward) {
  Variable x = Leaf(Tensor::Scalar(1.0f));
  Variable y = x;
  for (int i = 0; i < 500; ++i) y = ag::Scale(y, 1.001f);
  y.Backward();
  EXPECT_NEAR(x.GradOrZeros().at(0), std::pow(1.001f, 500.0f), 1e-2);
}

// -- Finite-difference gradient checks per op --------------------------------------

TEST(GradCheck, AddSubMul) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        return ag::SumAll(ag::Mul(ag::Add(v[0], v[1]), ag::Sub(v[0], v[1])));
      },
      {Leaf(RandT({3, 4}, 1)), Leaf(RandT({3, 4}, 2))});
}

TEST(GradCheck, RowAndColBroadcasts) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable x = ag::AddRowBroadcast(v[0], v[1]);
        x = ag::MulRowBroadcast(x, v[2]);
        x = ag::MulColBroadcast(x, v[3]);
        return ag::SumAll(x);
      },
      {Leaf(RandT({3, 4}, 3)), Leaf(RandT({1, 4}, 4)),
       Leaf(RandT({1, 4}, 5)), Leaf(RandT({3, 1}, 6))});
}

TEST(GradCheck, MatMulAndTranspose) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        return ag::SumAll(ag::MatMul(v[0], ag::Transpose(v[1])));
      },
      {Leaf(RandT({2, 3}, 7)), Leaf(RandT({4, 3}, 8))});
}

TEST(GradCheck, Activations) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable x = ag::Sigmoid(v[0]);
        x = ag::Add(x, ag::Tanh(v[0]));
        x = ag::Add(x, ag::Exp(ag::Scale(v[0], 0.3f)));
        return ag::SumAll(x);
      },
      {Leaf(RandT({2, 5}, 9))});
}

TEST(GradCheck, ReluAwayFromKink) {
  // Use inputs far from 0 so finite differences are valid.
  Tensor t({2, 2}, {1.0f, -1.0f, 2.0f, -0.5f});
  CheckGradients(
      [](const std::vector<Variable>& v) {
        return ag::SumAll(ag::Relu(v[0]));
      },
      {Leaf(t)});
}

TEST(GradCheck, LogOfPositive) {
  Tensor t({3}, {0.5f, 1.5f, 2.5f});
  CheckGradients(
      [](const std::vector<Variable>& v) {
        return ag::SumAll(ag::Log(v[0]));
      },
      {Leaf(t)});
}

TEST(GradCheck, ConcatAndSlice) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable c = ag::ConcatCols(v[0], v[1]);
        Variable r = ag::ConcatRows(v[0], v[0]);
        return ag::Add(ag::SumAll(ag::SliceRows(c, 0, 1)),
                       ag::SumAll(ag::Mul(r, r)));
      },
      {Leaf(RandT({2, 2}, 10)), Leaf(RandT({2, 3}, 11))});
}

TEST(GradCheck, StackRows) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable s = ag::StackRows({v[0], v[1], v[0]});
        return ag::SumAll(ag::Mul(s, s));
      },
      {Leaf(RandT({1, 3}, 12)), Leaf(RandT({1, 3}, 13))});
}

TEST(GradCheck, GatherRows) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable g = ag::GatherRows(v[0], {0, 2, 2, 1});
        return ag::SumAll(ag::Mul(g, g));
      },
      {Leaf(RandT({3, 3}, 14))});
}

TEST(GradCheck, RowSoftmax) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable s = ag::RowSoftmax(v[0]);
        // Weighted sum so the gradient is non-trivial.
        Tensor w({2, 4});
        for (int64_t i = 0; i < w.size(); ++i) w.at(i) = 0.1f * (i + 1);
        return ag::SumAll(ag::Mul(s, ag::Constant(w)));
      },
      {Leaf(RandT({2, 4}, 15))});
}

TEST(GradCheck, RowSoftmaxMasked) {
  Tensor mask({2, 4}, {1, 1, 0, 1, 0, 1, 1, 1});
  CheckGradients(
      [mask](const std::vector<Variable>& v) {
        Variable s = ag::RowSoftmaxMasked(v[0], mask);
        Tensor w({2, 4});
        for (int64_t i = 0; i < w.size(); ++i) w.at(i) = 0.2f * (i + 1);
        return ag::SumAll(ag::Mul(s, ag::Constant(w)));
      },
      {Leaf(RandT({2, 4}, 16))});
}

TEST(GradCheck, Reductions) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable a = ag::SumRowsTo1xD(v[0]);
        Variable b = ag::SumColsToNx1(v[0]);
        Variable c = ag::MeanRowsTo1xD(v[0]);
        return ag::Add(ag::SumAll(ag::Mul(a, a)),
                       ag::Add(ag::SumAll(ag::Mul(b, b)), ag::SumAll(c)));
      },
      {Leaf(RandT({3, 2}, 17))});
}

TEST(GradCheck, RepeatRow) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable r = ag::RepeatRow(v[0], 4);
        return ag::SumAll(ag::Mul(r, r));
      },
      {Leaf(RandT({1, 3}, 18))});
}

TEST(GradCheck, L2NormalizeRows) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable n = ag::L2NormalizeRowsOp(v[0]);
        Tensor w({2, 3});
        for (int64_t i = 0; i < w.size(); ++i) w.at(i) = 0.3f * (i + 1);
        return ag::SumAll(ag::Mul(n, ag::Constant(w)));
      },
      {Leaf(RandT({2, 3}, 19, 1.0f))});
}

TEST(GradCheck, LayerNormRows) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable n = ag::LayerNormRows(v[0]);
        Tensor w({2, 4});
        for (int64_t i = 0; i < w.size(); ++i) w.at(i) = 0.15f * (i + 1);
        return ag::SumAll(ag::Mul(n, ag::Constant(w)));
      },
      {Leaf(RandT({2, 4}, 20, 1.0f))});
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  CheckGradients(
      [](const std::vector<Variable>& v) {
        return ag::SoftmaxCrossEntropy(v[0], {2, 0});
      },
      {Leaf(RandT({2, 5}, 21))});
}

// -- Semantics beyond gradients ------------------------------------------------------

TEST(AutogradOps, SoftmaxCrossEntropyValue) {
  // Uniform logits over C classes -> loss = log(C).
  Variable logits = Leaf(Tensor::Zeros({1, 4}));
  Variable loss = ag::SoftmaxCrossEntropy(logits, {1});
  EXPECT_NEAR(loss.value().at(0), std::log(4.0f), 1e-5);
}

TEST(AutogradOps, SoftmaxCrossEntropyGradientIsProbMinusOneHot) {
  Variable logits = Leaf(Tensor::Zeros({1, 4}));
  ag::SoftmaxCrossEntropy(logits, {1}).Backward();
  const Tensor g = logits.GradOrZeros();
  EXPECT_NEAR(g.at2(0, 0), 0.25f, 1e-5);
  EXPECT_NEAR(g.at2(0, 1), -0.75f, 1e-5);
}

TEST(AutogradOps, DropoutIdentityInEval) {
  Rng rng(22);
  Variable x = Leaf(RandT({4, 4}, 23));
  Variable y = ag::Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(y.value().AllClose(x.value()));
}

TEST(AutogradOps, DropoutPreservesExpectation) {
  Rng rng(24);
  Variable x = Leaf(Tensor::Ones({100, 100}));
  Variable y = ag::Dropout(x, 0.3f, /*training=*/true, &rng);
  EXPECT_NEAR(MeanAll(y.value()), 1.0f, 0.05f);
}

TEST(AutogradOps, DropoutZeroProbIsIdentity) {
  Rng rng(25);
  Variable x = Leaf(RandT({3, 3}, 26));
  Variable y = ag::Dropout(x, 0.0f, /*training=*/true, &rng);
  EXPECT_TRUE(y.value().AllClose(x.value()));
}

TEST(AutogradOps, LayerNormOutputStats) {
  Variable x = Leaf(RandT({5, 16}, 27, 3.0f));
  Variable y = ag::LayerNormRows(x);
  for (int64_t i = 0; i < 5; ++i) {
    double mean = 0, var = 0;
    for (int64_t j = 0; j < 16; ++j) mean += y.value().at2(i, j);
    mean /= 16;
    for (int64_t j = 0; j < 16; ++j) {
      const double c = y.value().at2(i, j) - mean;
      var += c * c;
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

}  // namespace
}  // namespace embsr
