// Contract tests for the embsr::par substrate (src/par/thread_pool.*):
// exact index coverage at several grains, inline nested execution, strict
// serial fallback at EMBSR_THREADS=1 / SetThreadCount(1), exception
// propagation with a reusable pool afterwards, and clean construction /
// shutdown churn (the latter is what the TSan leg of the sanitizer matrix
// hammers).

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"

namespace embsr {
namespace par {
namespace {

// Restores the default (EMBSR_THREADS / hardware) pool size when a test
// that pins the thread count exits, however it exits.
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(int threads) { SetThreadCount(threads); }
  ~ScopedThreadCount() { SetThreadCount(0); }
};

TEST(ParFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ScopedThreadCount pin(threads);
    for (int64_t grain : {int64_t{1}, int64_t{7}, int64_t{4096}}) {
      for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{7}, int64_t{64},
                        int64_t{1000}, int64_t{4096}, int64_t{10007}}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
        // Note: no upper bound on chunk width is asserted — grain is a
        // scheduling hint, and the serial / single-chunk fast paths
        // legitimately coalesce the whole range into one call.
        For(0, n, grain, [&](int64_t lo, int64_t hi) {
          ASSERT_LE(0, lo);
          ASSERT_LE(lo, hi);
          ASSERT_LE(hi, n);
          for (int64_t i = lo; i < hi; ++i) {
            hits[static_cast<size_t>(i)].fetch_add(1);
          }
        });
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "threads=" << threads << " grain=" << grain << " n=" << n
              << " index=" << i;
        }
      }
    }
  }
}

TEST(ParFor, NonZeroBeginIsRespected) {
  ScopedThreadCount pin(4);
  std::atomic<int64_t> sum{0};
  For(100, 200, 9, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  // sum of [100, 200) = (100 + 199) * 100 / 2
  EXPECT_EQ(sum.load(), 14950);
}

TEST(ParFor, EmptyAndReversedRangesRunNothing) {
  ScopedThreadCount pin(4);
  int calls = 0;
  For(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  For(9, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParFor, SerialPoolRunsOnCallingThread) {
  // The EMBSR_THREADS=1 contract: no workers exist, every chunk executes
  // inline on the submitting thread — exactly the pre-pool serial path.
  ScopedThreadCount pin(1);
  EXPECT_EQ(ThreadCount(), 1);
  const auto caller = std::this_thread::get_id();
  int64_t covered = 0;
  For(0, 1000, 7, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_FALSE(ThreadPool::InParallelRegion());
    covered += hi - lo;
  });
  EXPECT_EQ(covered, 1000);
}

TEST(ParFor, SingleChunkRunsInlineEvenOnParallelPool) {
  ScopedThreadCount pin(4);
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  For(0, 100, 4096, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 100);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParFor, NestedForRunsInlineOnTheSameThread) {
  // Serial-inside-parallel: a For issued from inside a chunk must execute
  // the inner range inline on the same thread, not deadlock or re-enter
  // the pool.
  ScopedThreadCount pin(4);
  std::atomic<int64_t> inner_total{0};
  For(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      EXPECT_TRUE(ThreadPool::InParallelRegion());
      const auto outer_thread = std::this_thread::get_id();
      For(0, 100, 3, [&](int64_t ilo, int64_t ihi) {
        EXPECT_EQ(std::this_thread::get_id(), outer_thread);
        inner_total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 100);
}

TEST(ParFor, ExceptionPropagatesAndPoolSurvives) {
  ScopedThreadCount pin(4);
  EXPECT_THROW(
      For(0, 1000, 1,
          [&](int64_t lo, int64_t) {
            if (lo == 500) throw std::runtime_error("chunk 500 failed");
          }),
      std::runtime_error);
  // The pool must drain the failed task set completely and stay usable.
  std::atomic<int64_t> covered{0};
  For(0, 1000, 1, [&](int64_t lo, int64_t hi) { covered += hi - lo; });
  EXPECT_EQ(covered.load(), 1000);
}

TEST(ParFor, ExceptionMessageIsTheFirstThrown) {
  ScopedThreadCount pin(2);
  try {
    For(0, 4, 1, [&](int64_t, int64_t) {
      throw std::runtime_error("boom");
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPool, ConstructDestroyChurn) {
  // Spawn/join churn with real work in between; run under TSan by the
  // sanitizer matrix to pin clean startup/shutdown.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4);
    std::atomic<int64_t> done{0};
    pool.Run(64, [&](int64_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 64);
  }
}

TEST(ThreadPool, ZeroAndNegativeSizesClampToSerial) {
  ThreadPool p0(0);
  EXPECT_EQ(p0.threads(), 1);
  ThreadPool pneg(-3);
  EXPECT_EQ(pneg.threads(), 1);
  std::atomic<int> runs{0};
  p0.Run(5, [&](int64_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 5);
}

TEST(ThreadPool, SetThreadCountSwapsTheGlobalPool) {
  SetThreadCount(3);
  EXPECT_EQ(ThreadCount(), 3);
  SetThreadCount(5);
  EXPECT_EQ(ThreadCount(), 5);
  SetThreadCount(0);  // back to the EMBSR_THREADS / hardware default
  EXPECT_GE(ThreadCount(), 1);
}

TEST(ThreadPool, PublishesChunkCounterAndQueueDepthGauge) {
  ScopedThreadCount pin(4);
  obs::Counter* chunks =
      obs::Registry::Global().GetCounter("par/chunks_total");
  obs::Gauge* depth = obs::Registry::Global().GetGauge("par/queue_depth");
  const int64_t before = chunks->value();
  For(0, 256, 1, [](int64_t, int64_t) {});
  EXPECT_EQ(chunks->value() - before, 256);
  // The pool is idle between Runs, so the gauge must have returned to 0.
  EXPECT_EQ(depth->value(), 0);
}

TEST(ThreadPool, RunZeroChunksReturnsImmediately) {
  ScopedThreadCount pin(4);
  int calls = 0;
  ThreadPool::Global().Run(0, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace par
}  // namespace embsr
