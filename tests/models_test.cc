#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "metrics/metrics.h"
#include "util/check.h"
#include "models/baselines_nonneural.h"
#include "test_util.h"
#include "train/model_zoo.h"

namespace embsr {
namespace {

using embsr::testing::AllFinite;

/// A tiny shared dataset so the fixture builds it once for all tests.
const ProcessedDataset& TinyDataset() {
  static const ProcessedDataset* dataset = [] {
    GeneratorConfig cfg = JdAppliancesConfig(0.02);  // ~200 sessions floor
    auto r = MakeDataset(cfg);
    EMBSR_CHECK_OK(r);
    return new ProcessedDataset(std::move(r).value());
  }();
  return *dataset;
}

TrainConfig TinyTrainConfig() {
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 32;
  cfg.embedding_dim = 16;
  cfg.max_train_examples = 60;
  cfg.validate_every = 0;
  return cfg;
}

// -- S-POP ----------------------------------------------------------------------

TEST(SPopTest, SessionItemsOutrankGlobalPopularity) {
  SPop model(10);
  ProcessedDataset data;
  data.name = "toy";
  data.num_items = 10;
  data.num_operations = 2;
  Example a;
  a.macro_items = {1, 1, 1, 2};  // item 1 globally popular
  a.target = 3;
  data.train = {a};
  ASSERT_TRUE(model.Fit(data).ok());

  Example query;
  query.macro_items = {7, 7, 2};
  auto scores = model.ScoreAll(query);
  // Item 7 appears twice in the session: best.
  EXPECT_EQ(std::max_element(scores.begin(), scores.end()) - scores.begin(),
            7);
  // Session item 2 outranks globally-popular-but-absent item 1.
  EXPECT_GT(scores[2], scores[1]);
  // Global popularity breaks ties among absent items.
  EXPECT_GT(scores[1], scores[4]);
}

TEST(SPopTest, FailsOnTrivagoStyleSessions) {
  // When the target never appears in the session, S-POP's top picks are
  // session items, and its H@K collapses — the paper's Trivago row.
  auto result = MakeDataset(TrivagoConfig(0.05));
  ASSERT_TRUE(result.ok());
  const auto& data = result.value();
  SPop model(data.num_items);
  ASSERT_TRUE(model.Fit(data).ok());
  int hits_at_5 = 0;
  int n = std::min<int>(100, data.test.size());
  for (int i = 0; i < n; ++i) {
    auto scores = model.ScoreAll(data.test[i]);
    if (RankOfTarget(scores, data.test[i].target) <= 5) ++hits_at_5;
  }
  EXPECT_LT(hits_at_5, 2 + n / 10);
}

// -- SKNN ----------------------------------------------------------------------

TEST(SknnTest, RecommendsItemsFromSimilarSessions) {
  Sknn model(10, /*k=*/5);
  ProcessedDataset data;
  data.num_items = 10;
  data.num_operations = 1;
  Example a;
  a.macro_items = {1, 2};
  a.target = 3;  // sessions with {1,2} end in 3
  Example b;
  b.macro_items = {1, 2};
  b.target = 3;
  Example c;
  c.macro_items = {7, 8};
  c.target = 9;
  data.train = {a, b, c};
  ASSERT_TRUE(model.Fit(data).ok());

  Example query;
  query.macro_items = {1, 2};
  auto scores = model.ScoreAll(query);
  EXPECT_GT(scores[3], scores[9]);
  EXPECT_GT(scores[3], 0.0f);
}

TEST(SknnTest, EmptySessionScoresZero) {
  Sknn model(5);
  ProcessedDataset data;
  data.num_items = 5;
  data.num_operations = 1;
  Example a;
  a.macro_items = {0};
  a.target = 1;
  data.train = {a};
  ASSERT_TRUE(model.Fit(data).ok());
  Example query;  // no items
  auto scores = model.ScoreAll(query);
  for (float s : scores) EXPECT_FLOAT_EQ(s, 0.0f);
}

// -- Shared invariants across every model in the zoo -------------------------------

class ModelZooTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::Values("S-POP", "SKNN", "NARM", "STAMP", "SR-GNN", "GC-SAN",
                      "BERT4Rec", "SGNN-HN", "RIB", "HUP", "MKM-SR", "EMBSR",
                      "EMBSR-NS", "EMBSR-NG", "EMBSR-NF", "SGNN-Self",
                      "SGNN-Seq-Self", "RNN-Self", "SGNN-Abs-Self",
                      "SGNN-Dyadic", "EMBSR-W", "GRU4Rec", "FPMC", "STAN"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(ModelZooTest, FitsAndProducesValidScores) {
  const auto& data = TinyDataset();
  auto model = CreateModel(GetParam(), data.num_items, data.num_operations,
                           TinyTrainConfig());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), GetParam());
  ASSERT_TRUE(model->Fit(data).ok());
  for (int i = 0; i < 3; ++i) {
    const auto scores = model->ScoreAll(data.test[i]);
    ASSERT_EQ(scores.size(), static_cast<size_t>(data.num_items));
    for (float s : scores) EXPECT_TRUE(std::isfinite(s));
    // Scores must discriminate (not all equal).
    EXPECT_NE(*std::max_element(scores.begin(), scores.end()),
              *std::min_element(scores.begin(), scores.end()));
  }
}

TEST_P(ModelZooTest, ScoringIsDeterministicInEvalMode) {
  const auto& data = TinyDataset();
  auto model = CreateModel(GetParam(), data.num_items, data.num_operations,
                           TinyTrainConfig());
  ASSERT_TRUE(model->Fit(data).ok());
  const auto s1 = model->ScoreAll(data.test[0]);
  const auto s2 = model->ScoreAll(data.test[0]);
  EXPECT_EQ(s1, s2);
}

TEST(ModelZooTest, UnknownNameReturnsNull) {
  EXPECT_EQ(CreateModel("NOPE", 10, 2, TinyTrainConfig()), nullptr);
}

TEST(ModelZooTest, Table3ListsTwelveModels) {
  EXPECT_EQ(Table3ModelNames().size(), 12u);
  EXPECT_EQ(Table3ModelNames().back(), "EMBSR");
  for (const auto& name : Table3ModelNames()) {
    EXPECT_NE(CreateModel(name, 10, 2, TinyTrainConfig()), nullptr) << name;
  }
}

// -- Learning sanity: neural models actually reduce loss -----------------------------

class LearningTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Representatives, LearningTest,
                         ::testing::Values("NARM", "SR-GNN", "MKM-SR",
                                           "SGNN-HN", "EMBSR"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(LearningTest, BeatsRandomRankingAfterTraining) {
  const auto& data = TinyDataset();
  TrainConfig cfg = TinyTrainConfig();
  cfg.epochs = 8;
  cfg.max_train_examples = 0;  // all ~200 examples of the tiny dataset
  auto model = CreateModel(GetParam(), data.num_items, data.num_operations,
                           cfg);
  ASSERT_TRUE(model->Fit(data).ok());
  RankAccumulator acc;
  const int n = std::min<int>(60, data.test.size());
  for (int i = 0; i < n; ++i) {
    acc.Add(RankOfTarget(model->ScoreAll(data.test[i]), data.test[i].target));
  }
  // Random ranking over |V| items gives H@20 = 100 * 20/|V|.
  const double random_h20 = 100.0 * 20.0 / data.num_items;
  EXPECT_GT(acc.HitAt(20), 1.5 * random_h20)
      << "model failed to learn anything useful";
}

}  // namespace
}  // namespace embsr
