// Acceptance tests for the fault-tolerant serving core (src/serve): the
// deadline contract, admission control, circuit breaking, degraded-mode
// labeling and session snapshot round-trips — all on a manual clock, so
// "the scorer took 80 ms" is a scripted fact, not a race.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "robust/failpoint.h"
#include "serve/clock.h"
#include "serve/frontend.h"
#include "serve/scorer.h"
#include "serve/session_store.h"
#include "util/fs_util.h"

namespace embsr {
namespace {

constexpr int64_t kMs = 1000000;  // ns per ms

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class FailpointEnvGuard {
 public:
  FailpointEnvGuard() { robust::Failpoints::Global().ClearAll(); }
  ~FailpointEnvGuard() { robust::Failpoints::Global().ClearAll(); }
};

/// Ten items, four operations, item popularity rising with the id (item 9
/// most popular) so fallback rankings are predictable.
ProcessedDataset TinyData() {
  ProcessedDataset data;
  data.name = "tiny";
  data.num_items = 10;
  data.num_operations = 4;
  for (int64_t item = 0; item < 10; ++item) {
    for (int64_t copies = 0; copies <= item; ++copies) {
      Example ex;
      ex.macro_items = {item};
      ex.macro_ops = {{0}};
      ex.flat_items = {item};
      ex.flat_ops = {0};
      ex.target = item;
      data.train.push_back(ex);
    }
  }
  return data;
}

/// Deterministic primary: scores every item by id (top item = highest id,
/// identical to the fallback-with-no-session ordering's *reverse* — see
/// ReversedScorer below for a distinguishable variant) and advances a
/// manual clock by a scripted per-call cost.
class StubScorer : public Recommender {
 public:
  StubScorer(int64_t num_items, serve::ManualClock* clock = nullptr,
             int64_t cost_ns = 0)
      : num_items_(num_items), clock_(clock), cost_ns_(cost_ns) {}

  std::string name() const override { return "stub"; }
  Status Fit(const ProcessedDataset&) override { return Status::OK(); }

  std::vector<float> ScoreAll(const Example&) override {
    ++calls_;
    if (clock_ != nullptr) clock_->Advance(cost_ns_);
    std::vector<float> s(static_cast<size_t>(num_items_));
    for (size_t i = 0; i < s.size(); ++i) s[i] = static_cast<float>(i);
    return s;
  }

  int calls() const { return calls_; }
  void set_cost_ns(int64_t ns) { cost_ns_ = ns; }

 private:
  int64_t num_items_;
  serve::ManualClock* clock_;
  int64_t cost_ns_;
  int calls_ = 0;
};

serve::ServeConfig TestConfig() {
  serve::ServeConfig cfg;
  cfg.deadline_ms = 50;
  cfg.queue_capacity = 4;
  cfg.max_retries = 3;
  cfg.backoff_base_ms = 2;
  cfg.breaker_strikes = 3;
  cfg.breaker_cooldown_ms = 250;
  cfg.top_k = 5;
  cfg.seed = 7;
  return cfg;
}

serve::Request Req(uint64_t id, uint64_t session = 1, int64_t item = 2,
                   int64_t op = 0) {
  serve::Request r;
  r.request_id = id;
  r.session_id = session;
  r.event = MicroBehavior{item, op};
  return r;
}

// ---------------------------------------------------------------------------
// (a) Deadline propagation: an expired budget never yields a full-price
// scoring result.

TEST(ServeTest, QueueWaitPastDeadlineAbandonsWithoutScoring) {
  FailpointEnvGuard guard;
  const ProcessedDataset data = TinyData();
  serve::PopularityScorer fallback;
  ASSERT_TRUE(fallback.Fit(data).ok());
  serve::ManualClock mc;
  StubScorer primary(data.num_items);
  serve::ServeFrontend fe(TestConfig(), &primary, &fallback, mc.clock());

  ASSERT_TRUE(fe.Submit(Req(1)).ok());
  mc.Advance(60 * kMs);  // budget is 50 ms; it expired while queued
  auto r = fe.ProcessNext();
  ASSERT_TRUE(r.ok());
  const serve::ServeResponse& resp = r.value();
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.top_items.empty());
  EXPECT_EQ(primary.calls(), 0);  // the work was abandoned, never priced
  EXPECT_GE(resp.queue_ms, 60.0);
}

TEST(ServeTest, SlowScorerPastDeadlineIsDiscardedForFallback) {
  FailpointEnvGuard guard;
  const ProcessedDataset data = TinyData();
  serve::PopularityScorer fallback;
  ASSERT_TRUE(fallback.Fit(data).ok());
  serve::ManualClock mc;
  // The primary takes 80 ms against a 50 ms budget: its answer arrives,
  // but too late to be the response.
  StubScorer primary(data.num_items, &mc, 80 * kMs);
  serve::ServeFrontend fe(TestConfig(), &primary, &fallback, mc.clock());

  ASSERT_TRUE(fe.Submit(Req(1, /*session=*/1, /*item=*/2)).ok());
  auto r = fe.ProcessNext();
  ASSERT_TRUE(r.ok());
  const serve::ServeResponse& resp = r.value();
  EXPECT_TRUE(resp.status.ok());
  EXPECT_EQ(primary.calls(), 1);
  EXPECT_TRUE(resp.degraded);
  EXPECT_EQ(resp.degraded_reason, "score_deadline");
  // The response is the fallback's ranking, not the stub's id-descending
  // one: the session's own item (2, recency-boosted) must outrank the
  // stub's favourite (9).
  ASSERT_FALSE(resp.top_items.empty());
  EXPECT_EQ(resp.top_items[0], 2);
}

// ---------------------------------------------------------------------------
// (b) Admission control: overflow sheds with a typed reject.

TEST(ServeTest, QueueOverflowShedsWithTypedReject) {
  FailpointEnvGuard guard;
  const ProcessedDataset data = TinyData();
  serve::PopularityScorer fallback;
  ASSERT_TRUE(fallback.Fit(data).ok());
  serve::ManualClock mc;
  StubScorer primary(data.num_items);
  serve::ServeConfig cfg = TestConfig();
  cfg.queue_capacity = 2;
  serve::ServeFrontend fe(cfg, &primary, &fallback, mc.clock());

  EXPECT_TRUE(fe.Submit(Req(1)).ok());
  EXPECT_TRUE(fe.Submit(Req(2)).ok());
  const Status shed = fe.Submit(Req(3));
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.message().find("shed"), std::string::npos);
  EXPECT_EQ(fe.queue_depth(), 2u);

  // The "serve.queue_full" failpoint forces a shed even with room.
  fe.ProcessAll();
  robust::Failpoints::Global().Set("serve.queue_full", 1.0, /*limit=*/1);
  EXPECT_EQ(fe.Submit(Req(4)).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(fe.Submit(Req(5)).ok());
}

// ---------------------------------------------------------------------------
// (c) Circuit breaker: opens after K consecutive injected failures,
// recovers through a half-open probe.

TEST(ServeTest, BreakerOpensAfterStrikesAndRecoversViaProbe) {
  FailpointEnvGuard guard;
  const ProcessedDataset data = TinyData();
  serve::PopularityScorer fallback;
  ASSERT_TRUE(fallback.Fit(data).ok());
  serve::ManualClock mc;
  StubScorer primary(data.num_items);
  serve::ServeConfig cfg = TestConfig();
  cfg.max_retries = 0;  // one scorer attempt per request
  cfg.breaker_strikes = 3;
  cfg.breaker_cooldown_ms = 250;
  serve::ServeFrontend fe(cfg, &primary, &fallback, mc.clock());
  auto& fp = robust::Failpoints::Global();

  // Three injected scorer failures in a row: every response is degraded
  // and the third strike opens the breaker.
  fp.Set("serve.score", 1.0, /*limit=*/3);
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(fe.Submit(Req(id)).ok());
    auto r = fe.ProcessNext();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().degraded);
    EXPECT_EQ(r.value().degraded_reason, "score_failed");
  }
  EXPECT_EQ(fe.breaker().state(), serve::BreakerState::kOpen);

  // While open, the primary is not even consulted (the failpoint is spent,
  // so a call *would* succeed — the breaker must prevent it).
  const int calls_when_opened = primary.calls();
  ASSERT_TRUE(fe.Submit(Req(4)).ok());
  auto r = fe.ProcessNext();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().degraded);
  EXPECT_EQ(r.value().degraded_reason, "breaker_open");
  EXPECT_EQ(primary.calls(), calls_when_opened);

  // After the cooldown the next request is the half-open probe; it
  // succeeds and closes the breaker — full-price service resumes.
  mc.Advance(251 * kMs);
  ASSERT_TRUE(fe.Submit(Req(5)).ok());
  r = fe.ProcessNext();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().degraded);
  EXPECT_EQ(primary.calls(), calls_when_opened + 1);
  EXPECT_EQ(fe.breaker().state(), serve::BreakerState::kClosed);
}

TEST(ServeTest, FailedProbeReopensBreaker) {
  FailpointEnvGuard guard;
  serve::ManualClock mc;
  serve::CircuitBreaker breaker(/*strike_threshold=*/2,
                                /*cooldown_ns=*/100 * kMs);
  EXPECT_TRUE(breaker.AllowRequest(mc.now_ns()));
  breaker.RecordFailure(mc.now_ns());
  EXPECT_TRUE(breaker.AllowRequest(mc.now_ns()));
  breaker.RecordFailure(mc.now_ns());
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(mc.now_ns()));

  mc.Advance(101 * kMs);
  EXPECT_TRUE(breaker.AllowRequest(mc.now_ns()));  // the half-open probe
  EXPECT_EQ(breaker.state(), serve::BreakerState::kHalfOpen);
  // Only one probe may be in flight.
  EXPECT_FALSE(breaker.AllowRequest(mc.now_ns()));
  breaker.RecordFailure(mc.now_ns());
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(mc.now_ns()));
  mc.Advance(101 * kMs);
  EXPECT_TRUE(breaker.AllowRequest(mc.now_ns()));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// (d) Degraded responses are labeled and answered by the popularity
// fallback.

TEST(ServeTest, DegradedResponseMatchesFallbackRanking) {
  FailpointEnvGuard guard;
  const ProcessedDataset data = TinyData();
  serve::PopularityScorer fallback;
  ASSERT_TRUE(fallback.Fit(data).ok());
  serve::ManualClock mc;
  StubScorer primary(data.num_items);
  serve::ServeConfig cfg = TestConfig();
  cfg.max_retries = 0;
  serve::ServeFrontend fe(cfg, &primary, &fallback, mc.clock());

  // Exhaust the scorer (retries disabled) on a session holding item 4.
  robust::Failpoints::Global().Set("serve.score", 1.0, /*limit=*/1);
  ASSERT_TRUE(fe.Submit(Req(1, /*session=*/9, /*item=*/4)).ok());
  auto r = fe.ProcessNext();
  ASSERT_TRUE(r.ok());
  const serve::ServeResponse& resp = r.value();
  EXPECT_TRUE(resp.status.ok());
  EXPECT_TRUE(resp.degraded);
  EXPECT_EQ(resp.degraded_reason, "score_failed");

  // Expected ranking: the fallback scored on exactly this session state.
  auto state = fe.store().Get(9);
  ASSERT_TRUE(state.ok());
  const std::vector<float> expect_scores =
      fallback.ScoreAll(state.value()->ToExample());
  EXPECT_EQ(resp.top_items, TopKIndices(expect_scores, cfg.top_k));
  EXPECT_EQ(resp.top_items[0], 4);  // recency-boosted session item first
}

TEST(ServeTest, StoreFailurePastRetriesFallsBackToPurePopularity) {
  FailpointEnvGuard guard;
  const ProcessedDataset data = TinyData();
  serve::PopularityScorer fallback;
  ASSERT_TRUE(fallback.Fit(data).ok());
  serve::ManualClock mc;
  StubScorer primary(data.num_items);
  serve::ServeConfig cfg = TestConfig();
  cfg.max_retries = 1;
  serve::ServeFrontend fe(cfg, &primary, &fallback, mc.clock());

  // Store down harder than the retry budget: 1 try + 1 retry, both fail.
  robust::Failpoints::Global().Set("serve.store_read", 1.0, /*limit=*/2);
  ASSERT_TRUE(fe.Submit(Req(1)).ok());
  auto r = fe.ProcessNext();
  ASSERT_TRUE(r.ok());
  const serve::ServeResponse& resp = r.value();
  EXPECT_TRUE(resp.status.ok());
  EXPECT_TRUE(resp.degraded);
  EXPECT_EQ(resp.degraded_reason, "store_unavailable");
  EXPECT_EQ(resp.retries, 1);
  EXPECT_GT(resp.backoff_ns, 0);
  EXPECT_EQ(primary.calls(), 0);
  // Pure popularity (no session state): item 9 is the most popular.
  ASSERT_FALSE(resp.top_items.empty());
  EXPECT_EQ(resp.top_items[0], 9);
}

TEST(ServeTest, TransientStoreFailureIsRetriedToFullPrice) {
  FailpointEnvGuard guard;
  const ProcessedDataset data = TinyData();
  serve::PopularityScorer fallback;
  ASSERT_TRUE(fallback.Fit(data).ok());
  serve::ManualClock mc;
  StubScorer primary(data.num_items);
  serve::ServeFrontend fe(TestConfig(), &primary, &fallback, mc.clock());

  // Two transient failures, then the store recovers: full-price response
  // with the retry/backoff accounting on the response.
  robust::Failpoints::Global().Set("serve.store_read", 1.0, /*limit=*/2);
  ASSERT_TRUE(fe.Submit(Req(1)).ok());
  auto r = fe.ProcessNext();
  ASSERT_TRUE(r.ok());
  const serve::ServeResponse& resp = r.value();
  EXPECT_TRUE(resp.status.ok());
  EXPECT_FALSE(resp.degraded);
  EXPECT_EQ(resp.retries, 2);
  EXPECT_GT(resp.backoff_ns, 0);
  EXPECT_EQ(primary.calls(), 1);
  EXPECT_EQ(fe.store().size(), 1u);
}

// ---------------------------------------------------------------------------
// (e) Session store: incremental state and bit-for-bit snapshot/restore.

TEST(ServeTest, SessionStateMergesMicroBehaviors) {
  serve::SessionStore store;
  // Same item twice = one macro item with two ops (the preprocess merge).
  ASSERT_TRUE(store.ApplyEvent(1, {5, 0}).ok());
  ASSERT_TRUE(store.ApplyEvent(1, {5, 2}).ok());
  auto r = store.ApplyEvent(1, {7, 1});
  ASSERT_TRUE(r.ok());
  const serve::SessionState& s = *r.value();
  EXPECT_EQ(s.macro_items, (std::vector<int64_t>{5, 7}));
  ASSERT_EQ(s.macro_ops.size(), 2u);
  EXPECT_EQ(s.macro_ops[0], (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(s.macro_ops[1], (std::vector<int64_t>{1}));
  EXPECT_EQ(s.flat_items, (std::vector<int64_t>{5, 5, 7}));
  EXPECT_EQ(s.flat_ops, (std::vector<int64_t>{0, 2, 1}));
}

TEST(ServeTest, SessionTrimDropsOldestMacroItems) {
  serve::SessionStoreConfig cfg;
  cfg.max_events_per_session = 3;
  serve::SessionStore store(cfg);
  ASSERT_TRUE(store.ApplyEvent(1, {1, 0}).ok());
  ASSERT_TRUE(store.ApplyEvent(1, {1, 1}).ok());
  ASSERT_TRUE(store.ApplyEvent(1, {2, 0}).ok());
  auto r = store.ApplyEvent(1, {3, 0});  // 4 flat events > cap of 3
  ASSERT_TRUE(r.ok());
  const serve::SessionState& s = *r.value();
  EXPECT_EQ(s.macro_items, (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(s.flat_items, (std::vector<int64_t>{2, 3}));
}

TEST(ServeTest, SnapshotRoundTripsBitForBit) {
  FailpointEnvGuard guard;
  serve::SessionStore store;
  ASSERT_TRUE(store.ApplyEvent(42, {5, 0}).ok());
  ASSERT_TRUE(store.ApplyEvent(42, {5, 2}).ok());
  ASSERT_TRUE(store.ApplyEvent(42, {7, 1}).ok());
  ASSERT_TRUE(store.ApplyEvent(1, {3, 3}).ok());
  ASSERT_TRUE(store.ApplyEvent(7, {9, 0}).ok());

  const std::string path = TempPath("serve_snapshot.bin");
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  const std::string original = store.Serialize();

  serve::SessionStore restored;
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  EXPECT_EQ(restored.size(), 3u);
  // Bit-for-bit: the restored store re-serializes to the same bytes (the
  // LRU stamps are runtime state, deliberately outside the image).
  EXPECT_EQ(restored.Serialize(), original);
  // Content round-trip, not just bytes.
  auto s = restored.Get(42);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value()->flat_items, (std::vector<int64_t>{5, 5, 7}));
  // And the restored store keeps serving incrementally.
  ASSERT_TRUE(restored.ApplyEvent(42, {7, 2}).ok());
  auto s2 = restored.Get(42);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value()->macro_ops.back(), (std::vector<int64_t>{1, 2}));
}

TEST(ServeTest, CorruptSnapshotIsRejectedAndStoreUnchanged) {
  FailpointEnvGuard guard;
  serve::SessionStore store;
  ASSERT_TRUE(store.ApplyEvent(1, {2, 0}).ok());
  const std::string path = TempPath("serve_snapshot_corrupt.bin");
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  {
    auto data = ReadFileToString(path);
    ASSERT_TRUE(data.ok());
    std::string bytes = std::move(data).value();
    bytes[bytes.size() / 2] ^= 0x01;
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  }
  serve::SessionStore victim;
  ASSERT_TRUE(victim.ApplyEvent(9, {1, 1}).ok());
  const std::string before = victim.Serialize();
  const Status s = victim.LoadSnapshot(path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("CRC"), std::string::npos);
  EXPECT_EQ(victim.Serialize(), before);  // unchanged on failure
}

TEST(ServeTest, StoreEvictsLeastRecentlyTouchedSession) {
  serve::SessionStoreConfig cfg;
  cfg.max_sessions = 2;
  serve::SessionStore store(cfg);
  ASSERT_TRUE(store.ApplyEvent(1, {1, 0}).ok());
  ASSERT_TRUE(store.ApplyEvent(2, {2, 0}).ok());
  ASSERT_TRUE(store.ApplyEvent(1, {3, 0}).ok());  // refresh session 1
  ASSERT_TRUE(store.ApplyEvent(3, {4, 0}).ok());  // evicts session 2
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictions(), 1);
  EXPECT_TRUE(store.Get(1).ok());
  EXPECT_EQ(store.Get(2).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.Get(3).ok());
}

// ---------------------------------------------------------------------------
// Latency injection composes with deadline accounting.

TEST(ServeTest, InjectedScorerStallEatsTheBudget) {
  FailpointEnvGuard guard;
  const ProcessedDataset data = TinyData();
  serve::PopularityScorer fallback;
  ASSERT_TRUE(fallback.Fit(data).ok());
  serve::ManualClock mc;
  StubScorer primary(data.num_items);  // free by itself
  serve::ServeFrontend fe(TestConfig(), &primary, &fallback, mc.clock());

  // A 60 ms injected stall against the 50 ms budget: the stall flows
  // through the frontend's clock, so the post-score deadline check sees
  // it and discards the full-price result.
  robust::Failpoints::Global().SetDelay("serve.score", 1.0, /*delay_ms=*/60,
                                        /*limit=*/1);
  ASSERT_TRUE(fe.Submit(Req(1)).ok());
  auto r = fe.ProcessNext();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().degraded);
  EXPECT_EQ(r.value().degraded_reason, "score_deadline");
  EXPECT_GE(r.value().latency_ms, 60.0);
}

// ---------------------------------------------------------------------------
// Chaos smoke: invariant-only assertions under whatever EMBSR_FAILPOINTS
// the environment armed (the sanitizer matrix's chaos leg arms scorer and
// store failures plus forced sheds). Deliberately no ClearAll: external
// chaos merges with the scripted traffic.

TEST(ServeChaos, SurvivesMixedTrafficWithInvariantsIntact) {
  const ProcessedDataset data = TinyData();
  serve::PopularityScorer fallback;
  ASSERT_TRUE(fallback.Fit(data).ok());
  serve::ManualClock mc;
  StubScorer primary(data.num_items, &mc, /*cost_ns=*/2 * kMs);
  serve::ServeConfig cfg = TestConfig();
  cfg.queue_capacity = 8;
  serve::ServeFrontend fe(cfg, &primary, &fallback, mc.clock());

  Rng traffic(123);
  int answered = 0;
  int shed = 0;
  int abandoned = 0;
  for (uint64_t id = 1; id <= 400; ++id) {
    const Status s = fe.Submit(Req(id, /*session=*/1 + id % 13,
                                   /*item=*/static_cast<int64_t>(
                                       traffic.UniformInt(10)),
                                   /*op=*/static_cast<int64_t>(
                                       traffic.UniformInt(4))));
    if (!s.ok()) {
      ASSERT_EQ(s.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
    // Drain lazily so spikes of un-drained requests age in the queue.
    if (id % 3 == 0) {
      mc.Advance(5 * kMs);
      while (fe.queue_depth() > 2) {
        auto r = fe.ProcessNext();
        ASSERT_TRUE(r.ok());
        const serve::ServeResponse& resp = r.value();
        if (resp.status.ok()) {
          ++answered;
          ASSERT_FALSE(resp.top_items.empty());
          ASSERT_LE(resp.top_items.size(), cfg.top_k);
          ASSERT_EQ(resp.top_items.size(), resp.top_scores.size());
          if (resp.degraded) ASSERT_FALSE(resp.degraded_reason.empty());
        } else {
          ASSERT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
          ++abandoned;
        }
      }
    }
  }
  for (const auto& resp : fe.ProcessAll()) {
    if (resp.status.ok()) {
      ++answered;
    } else {
      ++abandoned;
    }
  }
  EXPECT_GT(answered, 0);
  EXPECT_EQ(fe.queue_depth(), 0u);
  // Every submitted request is accounted for exactly once.
  EXPECT_EQ(answered + shed + abandoned, 400);

  // The store still snapshots and restores cleanly after the storm (skip
  // under an env-armed store failpoint, which injects lookup failures).
  const std::string path = TempPath("serve_chaos_snapshot.bin");
  ASSERT_TRUE(fe.store().SaveSnapshot(path).ok());
  serve::SessionStore restored;
  const Status load = restored.LoadSnapshot(path);
  if (load.ok()) {
    EXPECT_EQ(restored.Serialize(), fe.store().Serialize());
  }
}

}  // namespace
}  // namespace embsr
