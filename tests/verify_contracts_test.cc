// Debug-mode tensor contracts (EMBSR_CHECK_SHAPE / _FINITE / _BOUNDS) and
// the FATAL routing of util/check.h.
//
// This test file force-enables the contract templates for its own
// translation unit (see tests/CMakeLists.txt: EMBSR_CHECK_CONTRACTS=1),
// which is safe regardless of how the libraries were built: the macros are
// header-expanded per TU, so only code compiled here changes. Library-level
// contract coverage (ops/layers) is exercised by running the whole suite
// under a -DEMBSR_CHECK_CONTRACTS=ON build.

#include <limits>

#include "gtest/gtest.h"
#include "tensor/tensor.h"
#include "util/check.h"

namespace embsr {
namespace {

static_assert(EMBSR_CONTRACTS_ENABLED,
              "this test must be compiled with EMBSR_CHECK_CONTRACTS=1");

TEST(ContractsTest, PassingContractsAreSilent) {
  const Tensor a({2, 3}, 1.0f);
  const Tensor b({2, 3}, 2.0f);
  EMBSR_CHECK_SHAPE(a, b);
  EMBSR_CHECK_FINITE(a);
  EMBSR_CHECK_BOUNDS(2, 0, 3);
}

TEST(ContractsDeathTest, ShapeMismatchDies) {
  const Tensor a({2, 3});
  const Tensor b({3, 2});
  EXPECT_DEATH(EMBSR_CHECK_SHAPE(a, b), "shape contract violated");
}

TEST(ContractsDeathTest, NonFiniteTensorDies) {
  Tensor t({2, 2}, 1.0f);
  t.at(3) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_DEATH(EMBSR_CHECK_FINITE(t), "finite contract violated");
}

TEST(ContractsDeathTest, OutOfBoundsIndexDies) {
  EXPECT_DEATH(EMBSR_CHECK_BOUNDS(7, 0, 7), "bounds contract violated");
}

TEST(ContractsDeathTest, CheckFailureRoutesThroughFatalLog) {
  // The whole point of the check.h rework: a failed invariant produces a
  // structured FATAL log record (level tag + file:line) before aborting,
  // not a bare abort(). The death regex pins the log format.
  EXPECT_DEATH(EMBSR_CHECK_EQ(1 + 1, 3),
               "FATAL.*verify_contracts_test.*CHECK failed: 1 \\+ 1 == 3");
}

}  // namespace
}  // namespace embsr
