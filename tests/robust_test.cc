#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "core/embsr_model.h"
#include "datagen/generator.h"
#include "nn/layers.h"
#include "robust/ckpt_manager.h"
#include "robust/failpoint.h"
#include "robust/health.h"
#include "train/experiment.h"
#include "util/check.h"
#include "util/fs_util.h"

namespace embsr {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class FailpointEnvGuard {
 public:
  FailpointEnvGuard() { robust::Failpoints::Global().ClearAll(); }
  ~FailpointEnvGuard() { robust::Failpoints::Global().ClearAll(); }
};

// ---------------------------------------------------------------------------
// Failpoints

TEST(FailpointTest, UnarmedSiteNeverFails) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fp.ShouldFail("nope"));
  EXPECT_EQ(fp.TriggerCount("nope"), 0);
}

TEST(FailpointTest, ProbabilityOneAlwaysFails) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  fp.Set("always", 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fp.ShouldFail("always"));
  EXPECT_EQ(fp.TriggerCount("always"), 10);
}

TEST(FailpointTest, ProbabilityZeroNeverFails) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  fp.Set("never", 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fp.ShouldFail("never"));
}

TEST(FailpointTest, LimitCapsTriggers) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  fp.Set("capped", 1.0, /*limit=*/2);
  EXPECT_TRUE(fp.ShouldFail("capped"));
  EXPECT_TRUE(fp.ShouldFail("capped"));
  EXPECT_FALSE(fp.ShouldFail("capped"));
  EXPECT_EQ(fp.TriggerCount("capped"), 2);
}

TEST(FailpointTest, SkipDelaysArming) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  fp.Set("later", 1.0, /*limit=*/1, /*skip=*/2);
  EXPECT_FALSE(fp.ShouldFail("later"));  // skipped
  EXPECT_FALSE(fp.ShouldFail("later"));  // skipped
  EXPECT_TRUE(fp.ShouldFail("later"));   // armed
  EXPECT_FALSE(fp.ShouldFail("later"));  // limit exhausted
}

TEST(FailpointTest, ConfigureParsesFullGrammar) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  ASSERT_TRUE(fp.Configure("a=1,b=0.0,c=1x2,d=1x1@1").ok());
  EXPECT_TRUE(fp.ShouldFail("a"));
  EXPECT_FALSE(fp.ShouldFail("b"));
  EXPECT_TRUE(fp.ShouldFail("c"));
  EXPECT_TRUE(fp.ShouldFail("c"));
  EXPECT_FALSE(fp.ShouldFail("c"));
  EXPECT_FALSE(fp.ShouldFail("d"));
  EXPECT_TRUE(fp.ShouldFail("d"));
}

TEST(FailpointTest, ConfigureRejectsMalformedSpecs) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  EXPECT_FALSE(fp.Configure("noequals").ok());
  EXPECT_FALSE(fp.Configure("site=notanumber").ok());
  EXPECT_FALSE(fp.Configure("site=2.0").ok());   // prob > 1
  EXPECT_FALSE(fp.Configure("site=-0.5").ok());  // prob < 0
  EXPECT_FALSE(fp.Configure("=1").ok());         // empty site
}

TEST(FailpointTest, ReinitReadsEnvironment) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  setenv("EMBSR_FAILPOINTS", "env.site=1x1", 1);
  fp.ReinitFromEnv();
  EXPECT_TRUE(fp.ShouldFail("env.site"));
  EXPECT_FALSE(fp.ShouldFail("env.site"));
  unsetenv("EMBSR_FAILPOINTS");
  fp.ReinitFromEnv();
  EXPECT_FALSE(fp.ShouldFail("env.site"));
}

TEST(FailpointTest, LatencyModeDelaysInsteadOfFailing) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  ASSERT_TRUE(fp.Configure("slow=1@20ms").ok());
  // A latency site never hard-fails; every evaluation asks for the stall.
  EXPECT_FALSE(fp.ShouldFail("slow"));
  EXPECT_EQ(fp.ShouldDelayMs("slow"), 20);
  EXPECT_EQ(fp.ShouldDelayMs("slow"), 20);
  EXPECT_EQ(fp.TriggerCount("slow"), 2);
  // ...and ShouldFail on it consumed no limit/trigger state.
  ASSERT_TRUE(fp.Configure("slow2=1x1@5ms").ok());
  EXPECT_FALSE(fp.ShouldFail("slow2"));
  EXPECT_EQ(fp.ShouldDelayMs("slow2"), 5);
  EXPECT_EQ(fp.ShouldDelayMs("slow2"), 0);  // limit exhausted
}

TEST(FailpointTest, SetDelayArmsLatencyMode) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  fp.SetDelay("stall", 1.0, /*delay_ms=*/7, /*limit=*/2);
  EXPECT_EQ(fp.ShouldDelayMs("stall"), 7);
  EXPECT_EQ(fp.ShouldDelayMs("stall"), 7);
  EXPECT_EQ(fp.ShouldDelayMs("stall"), 0);
  EXPECT_EQ(fp.TriggerCount("stall"), 2);
}

TEST(FailpointTest, ErrorModeSitesNeverDelay) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  fp.Set("err", 1.0, /*limit=*/1);
  // Asking the wrong mode must not consume the one allowed trigger.
  EXPECT_EQ(fp.ShouldDelayMs("err"), 0);
  EXPECT_EQ(fp.TriggerCount("err"), 0);
  EXPECT_TRUE(fp.ShouldFail("err"));
}

TEST(FailpointTest, ConfigureRejectsMalformedLatencySpecs) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  EXPECT_FALSE(fp.Configure("s=1@ms").ok());      // no digits
  EXPECT_FALSE(fp.Configure("s=1@-3ms").ok());    // negative delay
  EXPECT_FALSE(fp.Configure("s=1@2.5ms").ok());   // fractional delay
  EXPECT_FALSE(fp.Configure("s=1@0ms").ok());     // zero-latency delay
  EXPECT_FALSE(fp.Configure("s=1@20msx").ok());   // trailing junk
  // A malformed clause must not arm the site.
  EXPECT_FALSE(fp.ShouldFail("s"));
  EXPECT_EQ(fp.ShouldDelayMs("s"), 0);
  // "@0" stays legal as a skip count (classic grammar).
  EXPECT_TRUE(fp.Configure("s=1x1@0").ok());
  EXPECT_TRUE(fp.ShouldFail("s"));
}

TEST(FailpointTest, InjectedFailureNamesTheSite) {
  Status s = robust::InjectedFailure("some.site", "doing a thing");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("some.site"), std::string::npos);
  EXPECT_NE(s.message().find("doing a thing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HealthGuard

robust::HealthConfig TestHealthConfig() {
  robust::HealthConfig cfg;
  cfg.max_strikes = 3;
  cfg.grad_limit = 100.0;
  cfg.lr_backoff = 0.5;
  return cfg;
}

TEST(HealthGuardTest, HealthyBatchesPassThrough) {
  robust::HealthGuard guard(TestHealthConfig());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(guard.CheckBatch(1.0, 2.0), robust::BatchVerdict::kOk);
  }
  EXPECT_EQ(guard.strikes(), 0);
  EXPECT_EQ(guard.lr_scale(), 1.0);
}

TEST(HealthGuardTest, NanLossEarnsStrikesThenRollback) {
  robust::HealthGuard guard(TestHealthConfig());
  const double nan = std::nan("");
  EXPECT_EQ(guard.CheckBatch(nan, 1.0), robust::BatchVerdict::kSkip);
  EXPECT_EQ(guard.lr_scale(), 0.5);
  EXPECT_EQ(guard.CheckBatch(nan, 1.0), robust::BatchVerdict::kSkip);
  EXPECT_EQ(guard.lr_scale(), 0.25);
  EXPECT_EQ(guard.CheckBatch(nan, 1.0), robust::BatchVerdict::kRollback);
  guard.NotifyRollback();
  EXPECT_EQ(guard.strikes(), 0);
  EXPECT_EQ(guard.lr_scale(), 0.125);  // backoff survives the rollback
}

TEST(HealthGuardTest, GoodBatchesResetStrikesAndRecoverLr) {
  robust::HealthGuard guard(TestHealthConfig());
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(guard.CheckBatch(inf, 1.0), robust::BatchVerdict::kSkip);
  EXPECT_EQ(guard.CheckBatch(1.0, 1.0), robust::BatchVerdict::kOk);
  EXPECT_EQ(guard.strikes(), 0);
  EXPECT_EQ(guard.lr_scale(), 1.0);  // one good batch undoes one backoff
}

TEST(HealthGuardTest, ExplodingGradNormIsUnhealthy) {
  robust::HealthConfig cfg = TestHealthConfig();
  EXPECT_TRUE(robust::HealthGuard::IsUnhealthy(cfg, 1.0, 1000.0));
  EXPECT_FALSE(robust::HealthGuard::IsUnhealthy(cfg, 1.0, 10.0));
  EXPECT_TRUE(robust::HealthGuard::IsUnhealthy(cfg, std::nan(""), 1.0));
  cfg.grad_limit = 0.0;  // 0 disables the norm check, not the NaN check
  EXPECT_FALSE(robust::HealthGuard::IsUnhealthy(cfg, 1.0, 1e9));
  EXPECT_TRUE(
      robust::HealthGuard::IsUnhealthy(cfg, 1.0, std::nan("")));
}

TEST(HealthGuardTest, LrScaleIsFloored) {
  robust::HealthConfig cfg = TestHealthConfig();
  cfg.max_strikes = 1000;
  robust::HealthGuard guard(cfg);
  for (int i = 0; i < 100; ++i) guard.CheckBatch(std::nan(""), 1.0);
  EXPECT_GE(guard.lr_scale(), cfg.min_lr_scale);
}

TEST(HealthGuardTest, ExportsStrikeAndBackoffGauges) {
  auto& reg = obs::Registry::Global();
  obs::Gauge* scale = reg.GetGauge("robust/health_lr_scale");
  obs::Gauge* strikes = reg.GetGauge("robust/health_strikes");
  obs::Gauge* level = reg.GetGauge("robust/health_backoff_level");
  const double nan = std::numeric_limits<double>::quiet_NaN();

  robust::HealthGuard guard(TestHealthConfig());  // ctor exports baseline
  EXPECT_EQ(strikes->value(), 0.0);
  EXPECT_EQ(scale->value(), 1.0);
  EXPECT_EQ(level->value(), 0.0);

  EXPECT_EQ(guard.CheckBatch(nan, 1.0), robust::BatchVerdict::kSkip);
  EXPECT_EQ(strikes->value(), 1.0);
  EXPECT_EQ(scale->value(), 0.5);
  EXPECT_EQ(level->value(), 1.0);

  EXPECT_EQ(guard.CheckBatch(nan, 1.0), robust::BatchVerdict::kSkip);
  EXPECT_EQ(strikes->value(), 2.0);
  EXPECT_EQ(scale->value(), 0.25);
  EXPECT_EQ(level->value(), 2.0);

  // A good batch clears strikes and recovers one backoff step; the gauges
  // follow in the same call.
  EXPECT_EQ(guard.CheckBatch(1.0, 1.0), robust::BatchVerdict::kOk);
  EXPECT_EQ(strikes->value(), 0.0);
  EXPECT_EQ(scale->value(), 0.5);
  EXPECT_EQ(level->value(), 1.0);
}

TEST(HealthGuardTest, RollbackEventsLandInCounterAndGauges) {
  auto& reg = obs::Registry::Global();
  obs::Counter* rollbacks = reg.GetCounter("robust/rollbacks");
  obs::Gauge* strikes = reg.GetGauge("robust/health_strikes");
  const int64_t before = rollbacks->value();
  const double nan = std::numeric_limits<double>::quiet_NaN();

  robust::HealthGuard guard(TestHealthConfig());  // max_strikes = 3
  EXPECT_EQ(guard.CheckBatch(nan, 1.0), robust::BatchVerdict::kSkip);
  EXPECT_EQ(guard.CheckBatch(nan, 1.0), robust::BatchVerdict::kSkip);
  EXPECT_EQ(guard.CheckBatch(nan, 1.0), robust::BatchVerdict::kRollback);
  guard.NotifyRollback();
  EXPECT_EQ(rollbacks->value(), before + 1);
  EXPECT_EQ(guard.strikes(), 0);
  EXPECT_EQ(strikes->value(), 0.0);
}

TEST(HealthGuardTest, ConfigFromEnv) {
  setenv("EMBSR_HEALTH_MAX_STRIKES", "7", 1);
  setenv("EMBSR_HEALTH_GRAD_LIMIT", "123.5", 1);
  setenv("EMBSR_HEALTH_LR_BACKOFF", "0.25", 1);
  const auto cfg = robust::HealthConfig::FromEnv();
  EXPECT_EQ(cfg.max_strikes, 7);
  EXPECT_DOUBLE_EQ(cfg.grad_limit, 123.5);
  EXPECT_DOUBLE_EQ(cfg.lr_backoff, 0.25);
  unsetenv("EMBSR_HEALTH_MAX_STRIKES");
  unsetenv("EMBSR_HEALTH_GRAD_LIMIT");
  unsetenv("EMBSR_HEALTH_LR_BACKOFF");
}

// ---------------------------------------------------------------------------
// CheckpointManager

robust::CheckpointManagerConfig ManagerConfig(const std::string& dir,
                                              int keep = 3) {
  robust::CheckpointManagerConfig cfg;
  cfg.dir = dir;
  cfg.keep_last = keep;
  cfg.every_epochs = 1;
  return cfg;
}

nn::TrainState StateForEpoch(int epoch) {
  nn::TrainState st;
  st.epoch = epoch;
  st.best_mrr = 0.01 * epoch;
  st.rng = Rng(42).SaveState();
  return st;
}

TEST(CheckpointManagerTest, DisabledWithoutDirectory) {
  robust::CheckpointManager mgr(ManagerConfig(""), "run");
  EXPECT_FALSE(mgr.enabled());
  Rng rng(1);
  nn::Linear lin(2, 2, &rng);
  nn::TrainState st;
  EXPECT_EQ(mgr.Save(lin, StateForEpoch(1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(mgr.LoadLatest(&lin, &st).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointManagerTest, RetentionKeepsNewestN) {
  const std::string dir = TempPath("ckpt_retention");
  robust::CheckpointManager mgr(ManagerConfig(dir, /*keep=*/2), "run");
  Rng rng(2);
  nn::Linear lin(2, 2, &rng);
  for (int epoch = 1; epoch <= 4; ++epoch) {
    ASSERT_TRUE(mgr.Save(lin, StateForEpoch(epoch)).ok());
  }
  const auto files = mgr.ListCheckpoints();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("epoch000003"), std::string::npos);
  EXPECT_NE(files[1].find("epoch000004"), std::string::npos);
}

TEST(CheckpointManagerTest, LoadLatestSkipsCorruptCheckpoint) {
  const std::string dir = TempPath("ckpt_corrupt");
  robust::CheckpointManager mgr(ManagerConfig(dir), "run");
  Rng rng(3);
  nn::Linear lin(2, 2, &rng);
  ASSERT_TRUE(mgr.Save(lin, StateForEpoch(1)).ok());
  ASSERT_TRUE(mgr.Save(lin, StateForEpoch(2)).ok());

  // Corrupt the newest file; LoadLatest should fall back to epoch 1.
  const auto files = mgr.ListCheckpoints();
  ASSERT_EQ(files.size(), 2u);
  {
    auto data = ReadFileToString(files.back());
    ASSERT_TRUE(data.ok());
    std::string bytes = std::move(data).value();
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream(files.back(), std::ios::binary | std::ios::trunc)
        << bytes;
  }
  nn::TrainState st;
  ASSERT_TRUE(mgr.LoadLatest(&lin, &st).ok());
  EXPECT_EQ(st.epoch, 1);
}

TEST(CheckpointManagerTest, LoadLatestReportsSkippedCorruptPaths) {
  const std::string dir = TempPath("ckpt_skipped_paths");
  robust::CheckpointManager mgr(ManagerConfig(dir, /*keep=*/3), "run");
  obs::Counter* skipped_counter =
      obs::Registry::Global().GetCounter("robust/ckpt_corrupt_skipped");
  const int64_t before = skipped_counter->value();
  Rng rng(5);
  nn::Linear lin(2, 2, &rng);
  for (int epoch = 1; epoch <= 3; ++epoch) {
    ASSERT_TRUE(mgr.Save(lin, StateForEpoch(epoch)).ok());
  }
  const auto files = mgr.ListCheckpoints();
  ASSERT_EQ(files.size(), 3u);
  {
    auto data = ReadFileToString(files.back());
    ASSERT_TRUE(data.ok());
    std::string bytes = std::move(data).value();
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream(files.back(), std::ios::binary | std::ios::trunc) << bytes;
  }

  nn::TrainState st;
  std::vector<std::string> skipped;
  ASSERT_TRUE(mgr.LoadLatest(&lin, &st, &skipped).ok());
  EXPECT_EQ(st.epoch, 2);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_EQ(skipped[0], files.back());
  EXPECT_EQ(skipped_counter->value(), before + 1);
}

TEST(CheckpointManagerTest, AllCorruptNamesEveryPathInStatus) {
  const std::string dir = TempPath("ckpt_all_corrupt");
  robust::CheckpointManager mgr(ManagerConfig(dir, /*keep=*/2), "run");
  Rng rng(6);
  nn::Linear lin(2, 2, &rng);
  ASSERT_TRUE(mgr.Save(lin, StateForEpoch(1)).ok());
  ASSERT_TRUE(mgr.Save(lin, StateForEpoch(2)).ok());
  for (const auto& path : mgr.ListCheckpoints()) {
    auto data = ReadFileToString(path);
    ASSERT_TRUE(data.ok());
    std::string bytes = std::move(data).value();
    bytes[bytes.size() / 3] ^= 0x11;
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  }

  nn::TrainState st;
  std::vector<std::string> skipped;
  const Status s = mgr.LoadLatest(&lin, &st, &skipped);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(skipped.size(), 2u);
  EXPECT_NE(s.message().find("skipped 2 corrupt checkpoint(s)"),
            std::string::npos);
  for (const auto& path : skipped) {
    EXPECT_NE(s.message().find(path), std::string::npos);
  }
}

TEST(CheckpointManagerTest, LoadLatestOnFreshRunIsNotFound) {
  const std::string dir = TempPath("ckpt_fresh");
  robust::CheckpointManager mgr(ManagerConfig(dir), "never_saved");
  Rng rng(4);
  nn::Linear lin(2, 2, &rng);
  nn::TrainState st;
  EXPECT_EQ(mgr.LoadLatest(&lin, &st).code(), StatusCode::kNotFound);
}

TEST(CheckpointManagerTest, SaveCadenceHonorsEveryEpochs) {
  auto cfg = ManagerConfig(TempPath("ckpt_cadence"));
  cfg.every_epochs = 3;
  robust::CheckpointManager mgr(cfg, "run");
  EXPECT_FALSE(mgr.ShouldSaveAfterEpoch(1, 10));
  EXPECT_FALSE(mgr.ShouldSaveAfterEpoch(2, 10));
  EXPECT_TRUE(mgr.ShouldSaveAfterEpoch(3, 10));
  EXPECT_TRUE(mgr.ShouldSaveAfterEpoch(10, 10));  // final epoch always saves
}

TEST(CheckpointManagerTest, SanitizesRunIds) {
  EXPECT_EQ(robust::CheckpointManager::SanitizeRunId("EMBSR/JD app:1"),
            "EMBSR_JD_app_1");
}

// ---------------------------------------------------------------------------
// Graceful degradation across the experiment harness

const ProcessedDataset& SmallData() {
  static const ProcessedDataset* d = [] {
    auto r = MakeDataset(JdAppliancesConfig(0.02));
    EMBSR_CHECK_OK(r);
    return new ProcessedDataset(std::move(r).value());
  }();
  return *d;
}

TEST(DegradedSweepTest, UnknownModelBecomesFailedCell) {
  FailpointEnvGuard guard;
  ExperimentResult r =
      RunExperiment("NOT-A-MODEL", SmallData(), TrainConfig(), {20});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown model"), std::string::npos);
  EXPECT_TRUE(r.eval.report.hit.empty());
}

TEST(DegradedSweepTest, CellFailpointFailsOneCellAndSweepContinues) {
  FailpointEnvGuard guard;
  robust::Failpoints::Global().Set("experiment.cell", 1.0, /*limit=*/1);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.max_train_examples = 20;
  cfg.validate_every = 0;

  std::vector<ExperimentResult> results;
  for (const char* name : {"S-POP", "SKNN"}) {
    results.push_back(RunExperiment(name, SmallData(), cfg, {20}, 10));
  }
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("experiment.cell"), std::string::npos);
  EXPECT_TRUE(results[1].ok);
  EXPECT_TRUE(results[1].eval.report.hit.contains(20));

  // The table renderer must survive the failed column.
  const std::string table = FormatMetricTable("jd_appliances", results, {20});
  EXPECT_NE(table.find("failed"), std::string::npos);
}

TEST(DegradedSweepTest, TrainingSurvivesInjectedNanGradients) {
  FailpointEnvGuard guard;
  auto& fp = robust::Failpoints::Global();
  auto* skipped =
      obs::Registry::Global().GetCounter("robust/skipped_batches");
  const int64_t skipped_before = skipped->value();

  // Poison the gradients of the first two batches; the health guard must
  // skip them and the run must still converge to finite parameters.
  fp.Set("train.nan_grad", 1.0, /*limit=*/2);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.embedding_dim = 8;
  cfg.batch_size = 16;
  cfg.max_train_examples = 64;
  cfg.validate_every = 0;
  EmbsrModel model("EMBSR", SmallData().num_items,
                   SmallData().num_operations, cfg);
  ASSERT_TRUE(model.Fit(SmallData()).ok());
  EXPECT_EQ(fp.TriggerCount("train.nan_grad"), 2);
  EXPECT_EQ(skipped->value() - skipped_before, 2);
  for (const auto& np : model.NamedParameters()) {
    for (int64_t i = 0; i < np.variable.value().size(); ++i) {
      ASSERT_TRUE(std::isfinite(np.variable.value().data()[i]))
          << np.name << " contains non-finite values after recovery";
    }
  }
}

TEST(DegradedSweepTest, BenchReportRecordsPerCellStatus) {
  FailpointEnvGuard guard;
  const std::string dir = TempPath("bench_json");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  setenv("EMBSR_BENCH_JSON_DIR", dir.c_str(), 1);
  {
    bench::BenchReport report("robust_test");
    ExperimentResult ok_cell;
    ok_cell.model = "S-POP";
    ok_cell.dataset = "jd";
    ok_cell.eval.report.hit[20] = 50.0;
    ok_cell.eval.report.mrr[20] = 25.0;
    ExperimentResult bad_cell;
    bad_cell.model = "EMBSR";
    bad_cell.dataset = "jd";
    bad_cell.ok = false;
    bad_cell.error = "fit failed: injected";
    report.AddResult(ok_cell);
    report.AddResult(bad_cell);
  }  // destructor writes the JSON
  unsetenv("EMBSR_BENCH_JSON_DIR");

  auto json = ReadFileToString(dir + "/BENCH_robust_test.json");
  ASSERT_TRUE(json.ok());
  const std::string& doc = json.value();
  EXPECT_NE(doc.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(doc.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(doc.find("fit failed: injected"), std::string::npos);
  // Schema v3: the profile block is present even with EMBSR_PROF unset.
  EXPECT_NE(doc.find("\"profile\""), std::string::npos);
}

}  // namespace
}  // namespace embsr
