// Arena-executor suite (DESIGN.md §17): plan cache, placement, bitwise
// equivalence, and the lifetime-conformance sentinel.
//
//  ArenaView        the single gate in tensor/arena_view.h, in isolation
//  ArenaPlanCache   warm-up discipline, signatures, eviction, fail-open
//  ArenaFootprint   live peak vs. plan, steady-state heap quiescence
//  ArenaEquiv       EMBSR_ARENA=1 is bitwise-invisible across the zoo,
//                   composed with EMBSR_BATCH_SIZE and EMBSR_THREADS
//  ArenaConformance seeded mutant plans prove every sentinel alarm rings
//
// Suite prefix "Arena" is load-bearing: scripts/run_sanitized_tests.sh
// re-runs `ctest -R '^(Arena|BatchEquiv)'` under EMBSR_ARENA=1 x
// EMBSR_CHECK_CONTRACTS, and scripts/verify_gate.py's --arena stage leans
// on the same binaries.

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analyze/graph_signature.h"
#include "arena/arena.h"
#include "autograd/ops.h"
#include "autograd/tape.h"
#include "datagen/generator.h"
#include "gtest/gtest.h"
#include "models/neural_model.h"
#include "obs/metrics.h"
#include "tensor/arena_view.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"
#include "train/evaluator.h"
#include "train/model_zoo.h"
#include "util/check.h"

namespace embsr {
namespace {

const char* kBatchedModels[] = {"GRU4Rec", "STAMP", "EMBSR"};

const ProcessedDataset& SmallData() {
  static const ProcessedDataset* d = [] {
    auto r = MakeDataset(JdAppliancesConfig(0.02));
    EMBSR_CHECK_OK(r);
    return new ProcessedDataset(std::move(r).value());
  }();
  return *d;
}

/// Pins (or unsets, value == nullptr) one environment variable for a scope
/// and restores the pre-existing value on exit, so legs of the sanitizer
/// matrix that export EMBSR_ARENA themselves stay undisturbed.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      unsetenv(name);
    } else {
      setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_ = false;
};

TrainConfig SmallConfig() {
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.embedding_dim = 16;
  cfg.seed = 1234;
  cfg.max_train_examples = 60;
  return cfg;
}

struct RunOutcome {
  std::vector<Tensor> params;
  MetricReport report;
};

/// One full train + evaluate with the arena toggled; every run starts from
/// an empty plan cache so the warm-up schedule is identical run to run.
RunOutcome TrainOnce(const std::string& model_name, bool arena_on,
                     const char* batch_env, const TrainConfig& cfg) {
  ScopedEnv arena_env("EMBSR_ARENA", arena_on ? "1" : nullptr);
  ScopedEnv batch_size(
      "EMBSR_BATCH_SIZE",
      batch_env);  // nullptr = unset, the legacy per-session loop
  arena::ResetForTesting();
  const ProcessedDataset& data = SmallData();
  std::unique_ptr<Recommender> model =
      CreateModel(model_name, data.num_items, data.num_operations, cfg);
  EMBSR_CHECK(model != nullptr);
  EMBSR_CHECK_OK(model->Fit(data));

  RunOutcome out;
  if (auto* neural = dynamic_cast<NeuralSessionModel*>(model.get())) {
    for (const auto& p : neural->Parameters()) out.params.push_back(p.value());
  }
  out.report = Evaluate(model.get(), data.test, {10, 20}, 40).report;
  return out;
}

void ExpectBitIdentical(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].shape(), b[i].shape()) << "param " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(),
                          sizeof(float) * static_cast<size_t>(a[i].size())),
              0)
        << "param " << i << " differs";
  }
}

/// A fixed four-op training step (MatMul -> Tanh -> Scale -> SumAll ->
/// Backward) against a persistent parameter `w` created outside every
/// scope. Deterministic, so replays of the same key conform bit for bit.
float SyntheticTrainStep(const std::string& key, const ag::Variable& w,
                         float scale) {
  arena::StepScope step(key);
  ag::Variable x(Tensor({4, 8}, 0.5f), /*requires_grad=*/false);
  ag::Variable h = ag::Tanh(ag::MatMul(x, w));
  ag::Variable s = ag::Scale(h, scale);
  ag::Variable loss = ag::SumAll(s);
  loss.Backward();
  return loss.value().at(0);
}

/// The forward-only analogue (no Backward; the root is named via SetRoot,
/// the way the model scoring paths drive their scopes).
float SyntheticScoreStep(const std::string& key, const ag::Variable& w,
                         float scale) {
  arena::StepScope step(key, /*forward_only=*/true);
  ag::Variable x(Tensor({4, 8}, 0.5f), /*requires_grad=*/false);
  ag::Variable h = ag::Tanh(ag::MatMul(x, w));
  ag::Variable s = ag::Scale(h, scale);
  step.SetRoot(s);
  return s.value().at(0);
}

ag::Variable MakeParam() {
  Tensor w({8, 4});
  for (int64_t i = 0; i < w.size(); ++i) {
    w.data()[i] = 0.01f * static_cast<float>((i % 17) - 8);
  }
  return ag::Variable(w, /*requires_grad=*/true);
}

int64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name)->value();
}

// ---- ArenaView: the sentinel gate in isolation ----------------------------

TEST(ArenaView, GateServesBytesWhileLive) {
  float buf[6] = {1, 2, 3, 4, 5, 6};
  int64_t clock = 3;
  ArenaView v;
  v.base = buf;
  v.elems = 6;
  v.def_step = 2;
  v.last_use_step = 5;
  v.clock = &clock;
  v.label = "unit";
  v.strict = true;
  Tensor t = Tensor::FromArenaView(&v, {2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.data(), buf);
  EXPECT_EQ(t.at(4), 5.0f);
  clock = 5;  // inclusive upper bound
  EXPECT_EQ(t.data(), buf);
}

TEST(ArenaView, ExpiredViewDiesOnTouch) {
  float buf[2] = {0, 0};
  int64_t clock = 0;
  ArenaView v;
  v.base = buf;
  v.elems = 2;
  v.clock = &clock;
  v.label = "unit";
  Tensor t = Tensor::FromArenaView(&v, {2});
  v.expired = true;
  EXPECT_DEATH(t.data(), "\\[use-after-free\\]");
}

TEST(ArenaView, StrictClockBoundsDie) {
  float buf[2] = {0, 0};
  int64_t clock = 1;
  ArenaView v;
  v.base = buf;
  v.elems = 2;
  v.def_step = 2;
  v.last_use_step = 4;
  v.clock = &clock;
  v.label = "unit";
  v.strict = true;
  Tensor t = Tensor::FromArenaView(&v, {2});
  EXPECT_DEATH(t.data(), "\\[use-before-def\\]");
  clock = 5;
  EXPECT_DEATH(t.data(), "\\[use-after-free\\]");
}

TEST(ArenaView, RecycledSlotDiesOnEscape) {
  float buf[2] = {0, 0};
  int64_t clock = 0;
  ArenaView v;
  v.base = buf;
  v.elems = 2;
  v.clock = &clock;
  v.label = "unit";
  v.generation = 7;
  Tensor t = Tensor::FromArenaView(&v, {2});
  EXPECT_EQ(t.data(), buf);
  ++v.generation;  // the executor recycled the slot for another buffer
  EXPECT_DEATH(t.data(), "recycled");
}

// ---- ArenaPlanCache -------------------------------------------------------

class ArenaPlanCache : public ::testing::Test {
 protected:
  void SetUp() override {
    setenv("EMBSR_ARENA", "1", 1);
    arena::ResetForTesting();
  }
  void TearDown() override {
    arena::ForceStrict(-1);
    arena::ResetForTesting();
    unsetenv("EMBSR_ARENA");
  }
};

// Occurrence 1 runs on the heap, occurrence 2 records + caches a verified
// plan, occurrence 3 replays it placed — and all three produce the same
// bits. Hit/miss counters follow the same schedule.
TEST_F(ArenaPlanCache, WarmupRecordsThenPlaces) {
  const ag::Variable w = MakeParam();
  const std::string key = "test/warmup";
  const int64_t hits0 = CounterValue("arena/plan_hits");
  const int64_t misses0 = CounterValue("arena/plan_misses");

  const float l1 = SyntheticTrainStep(key, w, 2.0f);
  EXPECT_TRUE(arena::LastStepStats().active);
  EXPECT_FALSE(arena::LastStepStats().placed);
  EXPECT_FALSE(arena::LastStepStats().recorded);
  EXPECT_EQ(arena::FindCachedPlan(key), nullptr);

  const float l2 = SyntheticTrainStep(key, w, 2.0f);
  EXPECT_TRUE(arena::LastStepStats().recorded);
  EXPECT_NE(arena::LastStepStats().signature, 0u);
  std::shared_ptr<const arena::CachedPlan> plan = arena::FindCachedPlan(key);
  ASSERT_NE(plan, nullptr);
  EXPECT_FALSE(plan->forward_only);
  EXPECT_GT(plan->forward_steps, 0);
  EXPECT_GT(plan->end_step, plan->forward_steps);
  EXPECT_GT(plan->planned_peak_bytes, 0);
  EXPECT_GT(plan->extent_elems, 0);
  EXPECT_FALSE(plan->death_order.empty());
  EXPECT_EQ(plan->nodes.size(), static_cast<size_t>(plan->forward_steps));

  const float l3 = SyntheticTrainStep(key, w, 2.0f);
  const arena::StepStats& st = arena::LastStepStats();
  EXPECT_TRUE(st.placed);
  EXPECT_FALSE(st.fell_back);
  EXPECT_GT(st.placed_buffers, 0);
  EXPECT_GT(st.placed_bytes, 0);
  EXPECT_EQ(st.signature, plan->signature.hash);

  EXPECT_EQ(l1, l2);
  EXPECT_EQ(l2, l3);
  EXPECT_EQ(CounterValue("arena/plan_misses") - misses0, 2);
  EXPECT_EQ(CounterValue("arena/plan_hits") - hits0, 1);
}

TEST_F(ArenaPlanCache, ForwardOnlyStepsPlaceViaSetRoot) {
  const ag::Variable w = MakeParam();
  const std::string key = "test/score";
  const float s1 = SyntheticScoreStep(key, w, 2.0f);
  const float s2 = SyntheticScoreStep(key, w, 2.0f);
  std::shared_ptr<const arena::CachedPlan> plan = arena::FindCachedPlan(key);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->forward_only);
  EXPECT_EQ(plan->end_step, plan->forward_steps);
  const float s3 = SyntheticScoreStep(key, w, 2.0f);
  EXPECT_TRUE(arena::LastStepStats().placed);
  EXPECT_FALSE(arena::LastStepStats().fell_back);
  EXPECT_GT(arena::LastStepStats().placed_buffers, 0);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s2, s3);
}

// Attribute-only differences (Scale by 2 vs. Scale by 3: same topology,
// same shapes) must produce distinct signatures — the attr_hash is part of
// the structural identity, not an accessory.
TEST_F(ArenaPlanCache, SignatureDistinguishesAttributeOnlyDifferences) {
  unsetenv("EMBSR_ARENA");  // audit tape below must not engage a scope
  auto signature_of = [](float scale) {
    ag::Tape tape;
    ag::Variable x(Tensor({2, 3}, 1.0f), /*requires_grad=*/true);
    ag::Variable y = ag::Scale(x, scale);
    return analyze::ComputeGraphSignature(tape.nodes(), y.node().get(),
                                          /*forward_only=*/false);
  };
  const analyze::GraphSignature a = signature_of(2.0f);
  const analyze::GraphSignature b = signature_of(3.0f);
  const analyze::GraphSignature a2 = signature_of(2.0f);
  EXPECT_EQ(a, a2);
  EXPECT_NE(a.hash, b.hash) << "attr-only difference hashed identically";

  // And end to end: the cached plans for the two scales carry the two
  // distinct signatures.
  setenv("EMBSR_ARENA", "1", 1);
  const ag::Variable w = MakeParam();
  SyntheticTrainStep("test/sig2", w, 2.0f);
  SyntheticTrainStep("test/sig2", w, 2.0f);
  SyntheticTrainStep("test/sig3", w, 3.0f);
  SyntheticTrainStep("test/sig3", w, 3.0f);
  auto p2 = arena::FindCachedPlan("test/sig2");
  auto p3 = arena::FindCachedPlan("test/sig3");
  ASSERT_NE(p2, nullptr);
  ASSERT_NE(p3, nullptr);
  EXPECT_NE(p2->signature.hash, p3->signature.hash);
}

// Over-cap plans evict least-recently-admitted entries wholesale; the
// evicted key restarts its warm-up discipline from occurrence 1.
TEST_F(ArenaPlanCache, EvictionRestartsWarmup) {
  ScopedEnv cap("EMBSR_ARENA_CACHE_CAP", "2");
  const ag::Variable w = MakeParam();
  const int64_t evictions0 = CounterValue("arena/plan_evictions");
  for (const char* key : {"test/ev-a", "test/ev-b", "test/ev-c"}) {
    SyntheticTrainStep(key, w, 2.0f);
    SyntheticTrainStep(key, w, 2.0f);
    ASSERT_NE(arena::FindCachedPlan(key), nullptr) << key;
  }
  EXPECT_EQ(CounterValue("arena/plan_evictions") - evictions0, 1);
  EXPECT_EQ(arena::FindCachedPlan("test/ev-a"), nullptr);
  EXPECT_NE(arena::FindCachedPlan("test/ev-b"), nullptr);
  EXPECT_NE(arena::FindCachedPlan("test/ev-c"), nullptr);
  // The evicted key is back at occurrence 1: plain heap, no record.
  SyntheticTrainStep("test/ev-a", w, 2.0f);
  EXPECT_FALSE(arena::LastStepStats().placed);
  EXPECT_FALSE(arena::LastStepStats().recorded);
}

// Fail-open: a key whose graph keeps changing (data-dependent topology)
// falls back mid-step, strikes, and is eventually blacklisted to permanent
// heap execution — the step itself never fails and stays bit-exact.
TEST_F(ArenaPlanCache, RepeatedMismatchFallsBackThenBlacklists) {
  const ag::Variable w = MakeParam();
  const std::string key = "test/flipflop";
  const int64_t fallbacks0 = CounterValue("arena/fallbacks");
  const float heap_a = SyntheticTrainStep(key, w, 2.0f);  // seen 1: heap
  SyntheticTrainStep(key, w, 2.0f);                       // seen 2: record A
  int fell_back = 0;
  for (int round = 0; round < 3; ++round) {
    // Placed replay of A meets graph B: conformance mismatch, spill.
    const float spilled = SyntheticTrainStep(key, w, 3.0f);
    EXPECT_TRUE(arena::LastStepStats().fell_back);
    EXPECT_EQ(spilled, SyntheticTrainStep("test/flipflop-ref", w, 3.0f));
    ++fell_back;
    // The strike reset the plan, so A re-records...
    SyntheticTrainStep(key, w, 2.0f);
  }
  EXPECT_EQ(CounterValue("arena/fallbacks") - fallbacks0, 3);
  // ...until strike three blacklists the key: from here on, plain heap.
  const float blacklisted = SyntheticTrainStep(key, w, 2.0f);
  const arena::StepStats& st = arena::LastStepStats();
  EXPECT_TRUE(st.active);
  EXPECT_FALSE(st.placed);
  EXPECT_FALSE(st.recorded);
  EXPECT_FALSE(st.fell_back);
  EXPECT_EQ(blacklisted, heap_a);
  EXPECT_EQ(arena::FindCachedPlan(key), nullptr);
  EXPECT_EQ(fell_back, 3);
}

// ---- ArenaFootprint -------------------------------------------------------

class ArenaFootprint : public ::testing::Test {
 protected:
  void SetUp() override {
    setenv("EMBSR_ARENA", "1", 1);
    arena::ResetForTesting();
  }
  void TearDown() override {
    arena::ResetForTesting();
    unsetenv("EMBSR_ARENA");
  }
};

// The acceptance bar from the issue: measured live peak stays within 5% of
// the planned peak (here: never above it — the executor seats buffers at
// the planner's own offsets), and steady-state steps stop acquiring heap.
TEST_F(ArenaFootprint, LivePeakWithinPlanAndHeapGoesQuiet) {
  const ag::Variable w = MakeParam();
  const std::string key = "test/footprint";
  for (int i = 0; i < 4; ++i) SyntheticTrainStep(key, w, 2.0f);
  const arena::StepStats& st = arena::LastStepStats();
  ASSERT_TRUE(st.placed);
  EXPECT_GT(st.live_peak_bytes, 0);
  EXPECT_GT(st.planned_peak_bytes, 0);
  EXPECT_LE(static_cast<double>(st.live_peak_bytes),
            static_cast<double>(st.planned_peak_bytes) * 1.05);
  EXPECT_GE(st.arena_extent_bytes, st.live_peak_bytes);

  // Steady state: every tensor the step still heap-allocates (before its
  // reseat into the arena) recycles through the buffer pool, so pool
  // heap acquisitions reach a fixed point.
  const int64_t acquires0 = tensor_pool::HeapAcquires();
  for (int i = 0; i < 3; ++i) SyntheticTrainStep(key, w, 2.0f);
  EXPECT_EQ(tensor_pool::HeapAcquires() - acquires0, 0);
}

// Same bar on a real model through the instrumented scoring path: the
// third identical ScoreAll is placed, later calls acquire nothing from the
// heap, and warm (placed) scores memcmp against the cold (heap) ones.
TEST_F(ArenaFootprint, ModelScoringPlacesAndStopsAllocating) {
  const ProcessedDataset& data = SmallData();
  std::unique_ptr<Recommender> model = CreateModel(
      "GRU4Rec", data.num_items, data.num_operations, SmallConfig());
  ASSERT_NE(model, nullptr);
  auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
  ASSERT_NE(neural, nullptr);
  neural->EnsureEvalMode();
  const Example& ex = data.test[0];

  const std::vector<float> cold = neural->ScoreAll(ex);
  EXPECT_FALSE(arena::LastStepStats().placed);
  neural->ScoreAll(ex);
  EXPECT_TRUE(arena::LastStepStats().recorded);
  const std::vector<float> warm = neural->ScoreAll(ex);
  const arena::StepStats& st = arena::LastStepStats();
  ASSERT_TRUE(st.placed) << "model scoring step did not replay its plan";
  EXPECT_FALSE(st.fell_back);
  EXPECT_GT(st.placed_buffers, 0);
  EXPECT_LE(static_cast<double>(st.live_peak_bytes),
            static_cast<double>(st.planned_peak_bytes) * 1.05);

  ASSERT_EQ(cold.size(), warm.size());
  EXPECT_EQ(std::memcmp(cold.data(), warm.data(),
                        sizeof(float) * cold.size()),
            0);

  const int64_t acquires0 = tensor_pool::HeapAcquires();
  const std::vector<float> steady = neural->ScoreAll(ex);
  EXPECT_EQ(tensor_pool::HeapAcquires() - acquires0, 0);
  EXPECT_EQ(std::memcmp(cold.data(), steady.data(),
                        sizeof(float) * cold.size()),
            0);
}

// ---- ArenaEquiv -----------------------------------------------------------

// EMBSR_ARENA=1 must be invisible: across the paper's full Table III zoo,
// two epochs of training end with memcmp-identical parameters and an
// identical metric report (non-neural baselines ride along report-only).
TEST(ArenaEquiv, TrainBitIdenticalAcrossZoo) {
  for (const std::string& name : Table3ModelNames()) {
    SCOPED_TRACE(name);
    const RunOutcome heap = TrainOnce(name, /*arena_on=*/false, nullptr,
                                      SmallConfig());
    const RunOutcome placed = TrainOnce(name, /*arena_on=*/true, nullptr,
                                        SmallConfig());
    ExpectBitIdentical(heap.params, placed.params);
    EXPECT_EQ(heap.report.hit, placed.report.hit);
    EXPECT_EQ(heap.report.mrr, placed.report.mrr);
  }
}

// Composed with the batched executor (EMBSR_BATCH_SIZE=16): the batched
// chunk scopes ("bt"/"be" keys) must be just as invisible.
TEST(ArenaEquiv, TrainBitIdenticalComposedWithBatching) {
  for (const char* name : kBatchedModels) {
    SCOPED_TRACE(name);
    const RunOutcome heap = TrainOnce(name, /*arena_on=*/false, "16",
                                      SmallConfig());
    const RunOutcome placed = TrainOnce(name, /*arena_on=*/true, "16",
                                        SmallConfig());
    ExpectBitIdentical(heap.params, placed.params);
    EXPECT_EQ(heap.report.hit, placed.report.hit);
    EXPECT_EQ(heap.report.mrr, placed.report.mrr);
  }
}

// Composed with threaded evaluation: worker threads each run their own
// per-thread arena and warm-up, and the result is still bitwise equal.
TEST(ArenaEquiv, TrainBitIdenticalComposedWithBatchingAndThreads) {
  ScopedEnv threads("EMBSR_THREADS", "4");
  const RunOutcome heap =
      TrainOnce("GRU4Rec", /*arena_on=*/false, "16", SmallConfig());
  const RunOutcome placed =
      TrainOnce("GRU4Rec", /*arena_on=*/true, "16", SmallConfig());
  ExpectBitIdentical(heap.params, placed.params);
  EXPECT_EQ(heap.report.hit, placed.report.hit);
  EXPECT_EQ(heap.report.mrr, placed.report.mrr);
}

// ---- ArenaConformance: seeded mutant plans --------------------------------

// Each test corrupts the cached plan for a warm key, pins strict mode, and
// proves the replay dies with the right alarm. Death style "threadsafe"
// re-runs the whole test in the child, so the cache state (including the
// seeded mutation) is rebuilt deterministically on both sides of the fork.
class ArenaConformance : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setenv("EMBSR_ARENA", "1", 1);
    arena::ResetForTesting();
    arena::ForceStrict(1);
  }
  void TearDown() override {
    arena::ForceStrict(-1);
    arena::ResetForTesting();
    unsetenv("EMBSR_ARENA");
  }

  /// Warms `key` to a cached plan and returns it.
  std::shared_ptr<const arena::CachedPlan> Warm(const std::string& key,
                                                const ag::Variable& w) {
    SyntheticTrainStep(key, w, 2.0f);
    SyntheticTrainStep(key, w, 2.0f);
    std::shared_ptr<const arena::CachedPlan> plan = arena::FindCachedPlan(key);
    EMBSR_CHECK(plan != nullptr);
    return plan;
  }
};

TEST_F(ArenaConformance, CatchesUseBeforeDef) {
  const ag::Variable w = MakeParam();
  const std::string key = "mutant/ubd";
  Warm(key, w);
  // Push a placed buffer's first-def past the end of the step: its very
  // first (planned-legal) read now happens "before" the def.
  ASSERT_TRUE(arena::MutateCachedPlan(key, [](arena::CachedPlan* p) {
    for (arena::NodeSpec& n : p->nodes) {
      if (n.value.offset >= 0) {
        n.value.def_step = p->end_step + 1;
        n.value.last_use_step = p->end_step + 1;
        break;
      }
    }
  }));
  EXPECT_DEATH(SyntheticTrainStep(key, w, 2.0f), "\\[use-before-def\\]");
}

TEST_F(ArenaConformance, CatchesUseAfterFree) {
  const ag::Variable w = MakeParam();
  const std::string key = "mutant/uaf";
  Warm(key, w);
  // Shrink the lifetime of the longest-lived placed buffer to a single
  // step: the executor sweeps (poisons + expires) it at def+1, and its
  // real last read — still scheduled at the original step — resurrects it.
  ASSERT_TRUE(arena::MutateCachedPlan(key, [](arena::CachedPlan* p) {
    arena::NodeSpec* victim = nullptr;
    int64_t widest = -1;
    for (arena::NodeSpec& n : p->nodes) {
      if (n.value.offset < 0) continue;
      const int64_t span = n.value.last_use_step - n.value.def_step;
      if (span > widest) {
        widest = span;
        victim = &n;
      }
    }
    EMBSR_CHECK(victim != nullptr && widest > 0);
    victim->value.last_use_step = victim->value.def_step;
  }));
  EXPECT_DEATH(SyntheticTrainStep(key, w, 2.0f), "\\[use-after-free\\]");
}

TEST_F(ArenaConformance, CatchesExtentOverflow) {
  const ag::Variable w = MakeParam();
  const std::string key = "mutant/extent";
  Warm(key, w);
  // Plant an offset beyond the planned extent: the seat bound-check must
  // refuse to hand out bytes the plan never reserved.
  ASSERT_TRUE(arena::MutateCachedPlan(key, [](arena::CachedPlan* p) {
    for (arena::NodeSpec& n : p->nodes) {
      if (n.value.offset >= 0) {
        n.value.offset = p->extent_elems + 4096;
        break;
      }
    }
  }));
  EXPECT_DEATH(SyntheticTrainStep(key, w, 2.0f), "\\[extent-overflow\\]");
}

TEST_F(ArenaConformance, CatchesStalePlan) {
  const ag::Variable w = MakeParam();
  const std::string key = "mutant/stale";
  Warm(key, w);
  // A plan cached for a different graph (here: one node's identity edited
  // in place) must be detected at the first divergent node.
  ASSERT_TRUE(arena::MutateCachedPlan(key, [](arena::CachedPlan* p) {
    p->nodes[0].op += "-mutant";
  }));
  EXPECT_DEATH(SyntheticTrainStep(key, w, 2.0f), "\\[stale-plan\\]");
}

// The same stale plan without the test pin does NOT kill the step: it
// spills, strikes, and returns the exact heap answer (the production
// fail-open contract the four alarms above are the strict-mode face of).
TEST_F(ArenaConformance, StalePlanFailsOpenWithoutPin) {
  const ag::Variable w = MakeParam();
  const std::string key = "mutant/stale-open";
  Warm(key, w);
  ASSERT_TRUE(arena::MutateCachedPlan(key, [](arena::CachedPlan* p) {
    p->nodes[0].op += "-mutant";
  }));
  arena::ForceStrict(0);
  const float spilled = SyntheticTrainStep(key, w, 2.0f);
  EXPECT_TRUE(arena::LastStepStats().fell_back);
  const float heap = SyntheticTrainStep("mutant/stale-open-ref", w, 2.0f);
  EXPECT_EQ(spilled, heap);
}

}  // namespace
}  // namespace embsr
