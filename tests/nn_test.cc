#include "nn/layers.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace embsr {
namespace {

using ag::Variable;
using embsr::testing::AllFinite;
using embsr::testing::CheckGradients;

TEST(ModuleTest, ParameterRegistryIsRecursive) {
  Rng rng(1);
  nn::FeedForward ffn(8, 16, &rng);
  auto named = ffn.NamedParameters();
  // fc1 weight+bias, fc2 weight+bias.
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].name, "fc1.weight");
  EXPECT_EQ(named[3].name, "fc2.bias");
  EXPECT_EQ(ffn.ParameterCount(), 8 * 16 + 16 + 16 * 8 + 8);
}

TEST(ModuleTest, TrainingModePropagates) {
  Rng rng(2);
  nn::FeedForward ffn(4, 4, &rng);
  EXPECT_TRUE(ffn.training());
  ffn.SetTraining(false);
  EXPECT_FALSE(ffn.training());
}

TEST(ModuleTest, ZeroGradClearsAllParameters) {
  Rng rng(3);
  nn::Linear lin(3, 3, &rng);
  Variable x(Tensor::Ones({2, 3}), false);
  ag::SumAll(lin.Forward(x)).Backward();
  bool any = false;
  for (auto& p : lin.Parameters()) any = any || p.has_grad();
  EXPECT_TRUE(any);
  lin.ZeroGrad();
  for (auto& p : lin.Parameters()) EXPECT_FALSE(p.has_grad());
}

TEST(LinearTest, ShapeAndBias) {
  Rng rng(4);
  nn::Linear lin(3, 5, &rng);
  Variable x(Tensor::Zeros({2, 3}), false);
  Variable y = lin.Forward(x);
  EXPECT_EQ(y.value().dim(0), 2);
  EXPECT_EQ(y.value().dim(1), 5);
  // With zero input, output equals the bias on each row.
  EXPECT_TRUE(y.value().Row(0).AllClose(y.value().Row(1)));
}

TEST(LinearTest, NoBiasMapsZeroToZero) {
  Rng rng(5);
  nn::Linear lin(3, 4, &rng, /*bias=*/false);
  Variable x(Tensor::Zeros({1, 3}), false);
  EXPECT_TRUE(lin.Forward(x).value().AllClose(Tensor::Zeros({1, 4})));
}

TEST(LinearTest, GradCheckThroughLayer) {
  Rng rng(6);
  nn::Linear lin(3, 2, &rng);
  auto params = lin.Parameters();
  Variable x(Tensor::Randn({2, 3}, 0.5f, &rng), true);
  std::vector<Variable> leaves = {x, params[0], params[1]};
  CheckGradients(
      [&lin](const std::vector<Variable>& v) {
        return ag::SumAll(ag::Mul(lin.Forward(v[0]), lin.Forward(v[0])));
      },
      leaves);
}

TEST(EmbeddingTest, LookupMatchesTable) {
  Rng rng(7);
  nn::Embedding emb(10, 4, &rng);
  Variable rows = emb.Forward({3, 3, 7});
  EXPECT_EQ(rows.value().dim(0), 3);
  EXPECT_TRUE(rows.value().Row(0).AllClose(rows.value().Row(1)));
  EXPECT_TRUE(
      rows.value().Row(2).AllClose(emb.table().value().Row(7)));
}

TEST(EmbeddingTest, GradientFlowsOnlyToUsedRows) {
  Rng rng(8);
  nn::Embedding emb(5, 3, &rng);
  ag::SumAll(emb.Forward({1, 1})).Backward();
  const Tensor g = emb.table().GradOrZeros();
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(g.at2(0, j), 0.0f);
    EXPECT_FLOAT_EQ(g.at2(1, j), 2.0f);  // used twice
    EXPECT_FLOAT_EQ(g.at2(4, j), 0.0f);
  }
}

TEST(GruTest, OutputShapesAndDeterminism) {
  Rng rng(9);
  nn::GRU gru(4, 6, &rng);
  Rng data_rng(10);
  Variable xs(Tensor::Randn({5, 4}, 1.0f, &data_rng), false);
  Variable h = gru.Forward(xs);
  EXPECT_EQ(h.value().dim(0), 5);
  EXPECT_EQ(h.value().dim(1), 6);
  Variable last = gru.ForwardLast(xs);
  EXPECT_TRUE(last.value().AllClose(h.value().SliceRows(4, 5)));
  // Same inputs -> same outputs (pure function).
  EXPECT_TRUE(gru.Forward(xs).value().AllClose(h.value()));
}

TEST(GruTest, HiddenStateIsBounded) {
  // GRU hidden states are convex mixes of tanh outputs: within (-1, 1).
  Rng rng(11);
  nn::GRU gru(3, 4, &rng);
  Rng data_rng(12);
  Variable xs(Tensor::Randn({20, 3}, 5.0f, &data_rng), false);
  Variable h = gru.Forward(xs);
  for (int64_t i = 0; i < h.value().size(); ++i) {
    EXPECT_GT(h.value().at(i), -1.0f);
    EXPECT_LT(h.value().at(i), 1.0f);
  }
}

TEST(GruTest, GradCheckThroughTime) {
  Rng rng(13);
  nn::GRUCell cell(3, 3, &rng);
  Rng data_rng(14);
  Variable x1(Tensor::Randn({1, 3}, 0.5f, &data_rng), true);
  Variable x2(Tensor::Randn({1, 3}, 0.5f, &data_rng), true);
  CheckGradients(
      [&cell](const std::vector<Variable>& v) {
        Variable h0 = ag::Constant(Tensor::Zeros({1, 3}));
        Variable h1 = cell.Forward(v[0], h0);
        Variable h2 = cell.Forward(v[1], h1);
        return ag::SumAll(ag::Mul(h2, h2));
      },
      {x1, x2});
}

TEST(GruTest, SequenceOrderMatters) {
  Rng rng(15);
  nn::GRU gru(2, 4, &rng);
  Tensor a({2, 2}, {1, 0, 0, 1});
  Tensor b({2, 2}, {0, 1, 1, 0});
  Variable ha = gru.ForwardLast(Variable(a, false));
  Variable hb = gru.ForwardLast(Variable(b, false));
  EXPECT_FALSE(ha.value().AllClose(hb.value(), 1e-6f));
}

TEST(LayerNormTest, AffineIdentityAtInit) {
  nn::LayerNorm ln(8);
  Rng rng(16);
  Variable x(Tensor::Randn({3, 8}, 2.0f, &rng), false);
  Variable y = ln.Forward(x);
  // gamma=1, beta=0 at init: output is the normalized input.
  Variable expected = ag::LayerNormRows(x);
  EXPECT_TRUE(y.value().AllClose(expected.value(), 1e-5f));
}

TEST(FeedForwardTest, FiniteAndShaped) {
  Rng rng(17);
  nn::FeedForward ffn(6, 12, &rng);
  Variable x(Tensor::Randn({4, 6}, 1.0f, &rng), false);
  Variable y = ffn.Forward(x);
  EXPECT_EQ(y.value().dim(0), 4);
  EXPECT_EQ(y.value().dim(1), 6);
  EXPECT_TRUE(AllFinite(y.value()));
}

TEST(InitTest, BoundMatchesRule) {
  EXPECT_FLOAT_EQ(nn::InitBound(100), 0.1f);
  EXPECT_FLOAT_EQ(nn::InitBound(4), 0.5f);
}

}  // namespace
}  // namespace embsr
