#include "nn/checkpoint.h"

#include <fstream>

#include <gtest/gtest.h>

#include "core/embsr_model.h"
#include "nn/layers.h"

namespace embsr {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CheckpointTest, RoundTripRestoresExactWeights) {
  Rng rng(1);
  nn::FeedForward a(8, 16, &rng);
  nn::FeedForward b(8, 16, &rng);  // different init
  const std::string path = TempPath("ffn.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(a, path).ok());
  ASSERT_TRUE(nn::LoadCheckpoint(path, &b).ok());

  const auto pa = a.NamedParameters();
  const auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].variable.value().AllClose(pb[i].variable.value(), 0.0f))
        << pa[i].name;
  }
}

TEST(CheckpointTest, FullEmbsrModelRoundTripPreservesScores) {
  TrainConfig cfg;
  cfg.embedding_dim = 16;
  EmbsrModel a("EMBSR", 30, 10, cfg);
  TrainConfig cfg2 = cfg;
  cfg2.seed = 12345;  // different init
  EmbsrModel b("EMBSR", 30, 10, cfg2);
  a.SetTraining(false);
  b.SetTraining(false);

  Example ex;
  ex.macro_items = {1, 2, 3};
  ex.macro_ops = {{0}, {0, 4}, {0}};
  ex.flat_items = {1, 2, 2, 3};
  ex.flat_ops = {0, 0, 4, 0};
  ex.target = 5;

  ASSERT_NE(a.ScoreAll(ex), b.ScoreAll(ex));
  const std::string path = TempPath("embsr.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(a, path).ok());
  ASSERT_TRUE(nn::LoadCheckpoint(path, &b).ok());
  EXPECT_EQ(a.ScoreAll(ex), b.ScoreAll(ex));
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  Rng rng(2);
  nn::Linear lin(2, 2, &rng);
  Status s = nn::LoadCheckpoint(TempPath("nope.ckpt"), &lin);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, RejectsArchitectureMismatch) {
  Rng rng(3);
  nn::Linear small(2, 2, &rng);
  nn::Linear big(4, 4, &rng);
  const std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(small, path).ok());
  Status s = nn::LoadCheckpoint(path, &big);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RejectsDifferentModuleShape) {
  Rng rng(4);
  nn::Linear lin(3, 3, &rng);
  nn::FeedForward ffn(3, 3, &rng);  // more parameters
  const std::string path = TempPath("count.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(lin, path).ok());
  EXPECT_FALSE(nn::LoadCheckpoint(path, &ffn).ok());
}

TEST(CheckpointTest, RejectsGarbageFile) {
  Rng rng(5);
  nn::Linear lin(2, 2, &rng);
  const std::string path = TempPath("garbage.ckpt");
  std::ofstream(path) << "this is not a checkpoint";
  Status s = nn::LoadCheckpoint(path, &lin);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsTruncatedFile) {
  Rng rng(6);
  nn::FeedForward ffn(8, 8, &rng);
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(ffn, path).ok());
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::string data(static_cast<size_t>(size) / 2, '\0');
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc) << data;
  EXPECT_FALSE(nn::LoadCheckpoint(path, &ffn).ok());
}

TEST(CheckpointTest, NullModuleIsInvalidArgument) {
  Status s = nn::LoadCheckpoint(TempPath("x.ckpt"), nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace embsr
