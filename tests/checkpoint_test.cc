#include "nn/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "core/embsr_model.h"
#include "nn/layers.h"
#include "robust/failpoint.h"
#include "util/check.h"
#include "util/fs_util.h"

namespace embsr {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadAll(const std::string& path) {
  auto r = ReadFileToString(path);
  EMBSR_CHECK_OK(r.status());
  return std::move(r).value();
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Hand-writes a format-v1 checkpoint (no flags word, no CRC) for `module`,
/// byte-identical to what the pre-v2 code produced.
std::string SerializeV1(const nn::Module& module) {
  std::string buf;
  buf.append("EMBSRCKP", 8);
  AppendPod(&buf, static_cast<uint32_t>(1));  // version
  const auto params = module.NamedParameters();
  AppendPod(&buf, static_cast<uint32_t>(params.size()));
  for (const auto& np : params) {
    AppendPod(&buf, static_cast<uint32_t>(np.name.size()));
    buf.append(np.name);
    const Tensor& t = np.variable.value();
    AppendPod(&buf, static_cast<uint32_t>(t.ndim()));
    for (int64_t d : t.shape()) AppendPod(&buf, d);
    buf.append(reinterpret_cast<const char*>(t.data()),
               sizeof(float) * static_cast<size_t>(t.size()));
  }
  return buf;
}

TEST(CheckpointTest, RoundTripRestoresExactWeights) {
  Rng rng(1);
  nn::FeedForward a(8, 16, &rng);
  nn::FeedForward b(8, 16, &rng);  // different init
  const std::string path = TempPath("ffn.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(a, path).ok());
  ASSERT_TRUE(nn::LoadCheckpoint(path, &b).ok());

  const auto pa = a.NamedParameters();
  const auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].variable.value().AllClose(pb[i].variable.value(), 0.0f))
        << pa[i].name;
  }
}

TEST(CheckpointTest, FullEmbsrModelRoundTripPreservesScores) {
  TrainConfig cfg;
  cfg.embedding_dim = 16;
  EmbsrModel a("EMBSR", 30, 10, cfg);
  TrainConfig cfg2 = cfg;
  cfg2.seed = 12345;  // different init
  EmbsrModel b("EMBSR", 30, 10, cfg2);
  a.SetTraining(false);
  b.SetTraining(false);

  Example ex;
  ex.macro_items = {1, 2, 3};
  ex.macro_ops = {{0}, {0, 4}, {0}};
  ex.flat_items = {1, 2, 2, 3};
  ex.flat_ops = {0, 0, 4, 0};
  ex.target = 5;

  ASSERT_NE(a.ScoreAll(ex), b.ScoreAll(ex));
  const std::string path = TempPath("embsr.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(a, path).ok());
  ASSERT_TRUE(nn::LoadCheckpoint(path, &b).ok());
  EXPECT_EQ(a.ScoreAll(ex), b.ScoreAll(ex));
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  Rng rng(2);
  nn::Linear lin(2, 2, &rng);
  Status s = nn::LoadCheckpoint(TempPath("nope.ckpt"), &lin);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, RejectsArchitectureMismatch) {
  Rng rng(3);
  nn::Linear small(2, 2, &rng);
  nn::Linear big(4, 4, &rng);
  const std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(small, path).ok());
  Status s = nn::LoadCheckpoint(path, &big);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RejectsDifferentModuleShape) {
  Rng rng(4);
  nn::Linear lin(3, 3, &rng);
  nn::FeedForward ffn(3, 3, &rng);  // more parameters
  const std::string path = TempPath("count.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(lin, path).ok());
  EXPECT_FALSE(nn::LoadCheckpoint(path, &ffn).ok());
}

TEST(CheckpointTest, RejectsGarbageFile) {
  Rng rng(5);
  nn::Linear lin(2, 2, &rng);
  const std::string path = TempPath("garbage.ckpt");
  std::ofstream(path) << "this is not a checkpoint";
  Status s = nn::LoadCheckpoint(path, &lin);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsTruncatedFile) {
  Rng rng(6);
  nn::FeedForward ffn(8, 8, &rng);
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(ffn, path).ok());
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::string data(static_cast<size_t>(size) / 2, '\0');
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc) << data;
  EXPECT_FALSE(nn::LoadCheckpoint(path, &ffn).ok());
}

TEST(CheckpointTest, NullModuleIsInvalidArgument) {
  Status s = nn::LoadCheckpoint(TempPath("x.ckpt"), nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, LegacyV1FileStillLoads) {
  Rng rng(7);
  nn::Linear a(3, 2, &rng);
  nn::Linear b(3, 2, &rng);  // different init
  const std::string path = TempPath("legacy.ckpt");
  WriteAll(path, SerializeV1(a));
  ASSERT_TRUE(nn::LoadCheckpoint(path, &b).ok());
  const auto pa = a.NamedParameters();
  const auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].variable.value().AllClose(pb[i].variable.value(), 0.0f))
        << pa[i].name;
  }
}

TEST(CheckpointTest, LoadingStateFromV1IsFailedPrecondition) {
  Rng rng(8);
  nn::Linear a(2, 2, &rng);
  const std::string path = TempPath("legacy_state.ckpt");
  WriteAll(path, SerializeV1(a));
  nn::TrainState state;
  Status s = nn::LoadCheckpoint(path, &a, &state);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, TrainStateRoundTripsExactly) {
  Rng rng(9);
  nn::Linear a(4, 3, &rng);
  nn::Linear b(4, 3, &rng);

  nn::TrainState in;
  in.epoch = 5;
  in.best_mrr = 0.4375;
  in.best_params.emplace_back(std::vector<int64_t>{2, 3}, 1.5f);
  Rng stream(123);
  for (int i = 0; i < 17; ++i) stream.Uniform();  // advance to a random point
  stream.Normal();  // populate the Box-Muller cache
  in.rng = stream.SaveState();
  in.opt_scalars = {3.0, 0.125};
  in.opt_slots.emplace_back(std::vector<int64_t>{4, 3}, 0.25f);
  in.opt_slots.emplace_back(std::vector<int64_t>{3}, -2.0f);

  const std::string path = TempPath("state.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(a, in, path).ok());
  nn::TrainState out;
  ASSERT_TRUE(nn::LoadCheckpoint(path, &b, &out).ok());

  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.best_mrr, in.best_mrr);
  ASSERT_EQ(out.best_params.size(), 1u);
  EXPECT_TRUE(out.best_params[0].AllClose(in.best_params[0], 0.0f));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out.rng.s[i], in.rng.s[i]);
  EXPECT_EQ(out.rng.has_cached_normal, in.rng.has_cached_normal);
  EXPECT_EQ(out.rng.cached_normal, in.rng.cached_normal);
  EXPECT_EQ(out.opt_scalars, in.opt_scalars);
  ASSERT_EQ(out.opt_slots.size(), 2u);
  EXPECT_TRUE(out.opt_slots[0].AllClose(in.opt_slots[0], 0.0f));
  EXPECT_TRUE(out.opt_slots[1].AllClose(in.opt_slots[1], 0.0f));

  // The restored stream continues exactly where the saved one left off.
  Rng resumed(1);
  resumed.RestoreState(out.rng);
  EXPECT_EQ(stream.Uniform(), resumed.Uniform());
  EXPECT_EQ(stream.Normal(), resumed.Normal());
}

TEST(CheckpointFuzzTest, TruncationAtEveryLengthIsRejected) {
  Rng rng(10);
  nn::Linear lin(2, 2, &rng);
  const std::string path = TempPath("fuzz_trunc.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(lin, path).ok());
  const std::string full = ReadAll(path);
  ASSERT_GT(full.size(), 16u);

  const std::string victim = TempPath("fuzz_trunc_victim.ckpt");
  for (size_t len = 0; len < full.size(); ++len) {
    WriteAll(victim, full.substr(0, len));
    Status s = nn::LoadCheckpoint(victim, &lin);
    EXPECT_FALSE(s.ok()) << "truncation to " << len << " bytes was accepted";
  }
}

TEST(CheckpointFuzzTest, EverySingleBitFlipIsDetected) {
  Rng rng(11);
  nn::Linear lin(2, 2, &rng);
  const std::string path = TempPath("fuzz_flip.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(lin, path).ok());
  const std::string full = ReadAll(path);

  // CRC-32 detects every single-bit error; flips in the magic/version
  // header fail their own checks first. Either way no flip may load.
  const std::string victim = TempPath("fuzz_flip_victim.ckpt");
  for (size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      WriteAll(victim, mutated);
      Status s = nn::LoadCheckpoint(victim, &lin);
      EXPECT_FALSE(s.ok()) << "flip of byte " << byte << " bit " << bit
                           << " was accepted";
    }
  }
}

TEST(CheckpointFuzzTest, TruncateFailpointIsCaughtByCrc) {
  auto& fp = robust::Failpoints::Global();
  fp.ClearAll();
  fp.Set("ckpt.truncate", 1.0, /*limit=*/1);
  Rng rng(12);
  nn::Linear lin(2, 2, &rng);
  const std::string path = TempPath("torn.ckpt");
  // The torn write itself reports success — exactly the dangerous case.
  ASSERT_TRUE(nn::SaveCheckpoint(lin, path).ok());
  EXPECT_EQ(fp.TriggerCount("ckpt.truncate"), 1);
  Status s = nn::LoadCheckpoint(path, &lin);
  ASSERT_FALSE(s.ok());
  fp.ClearAll();
}

TEST(CheckpointFuzzTest, WriteAndReadFailpointsInject) {
  auto& fp = robust::Failpoints::Global();
  fp.ClearAll();
  Rng rng(13);
  nn::Linear lin(2, 2, &rng);
  const std::string path = TempPath("injected.ckpt");

  fp.Set("ckpt.write", 1.0, /*limit=*/1);
  Status s = nn::SaveCheckpoint(lin, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("ckpt.write"), std::string::npos);

  ASSERT_TRUE(nn::SaveCheckpoint(lin, path).ok());  // limit exhausted
  fp.Set("ckpt.read", 1.0, /*limit=*/1);
  s = nn::LoadCheckpoint(path, &lin);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  ASSERT_TRUE(nn::LoadCheckpoint(path, &lin).ok());
  fp.ClearAll();
}

}  // namespace
}  // namespace embsr
