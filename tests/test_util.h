#ifndef EMBSR_TESTS_TEST_UTIL_H_
#define EMBSR_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace embsr {
namespace testing {

/// Numerically checks d(f(x))/dx against the autograd gradient.
///
/// `make_loss` must build a *scalar* Variable from the given leaf variables
/// (re-invoked per perturbation, so it must be a pure function of them).
/// Central differences with step `eps`; asserts max abs error <= tol.
inline void CheckGradients(
    const std::function<ag::Variable(const std::vector<ag::Variable>&)>&
        make_loss,
    std::vector<ag::Variable> leaves, float eps = 1e-3f, float tol = 2e-2f) {
  // Analytic gradients.
  for (auto& leaf : leaves) leaf.ZeroGrad();
  ag::Variable loss = make_loss(leaves);
  ASSERT_EQ(loss.value().size(), 1) << "loss must be scalar";
  loss.Backward();

  for (size_t li = 0; li < leaves.size(); ++li) {
    ag::Variable& leaf = leaves[li];
    if (!leaf.requires_grad()) continue;
    const Tensor analytic = leaf.GradOrZeros();
    for (int64_t i = 0; i < leaf.value().size(); ++i) {
      const float orig = leaf.value().at(i);
      leaf.mutable_value().at(i) = orig + eps;
      const float up = make_loss(leaves).value().at(0);
      leaf.mutable_value().at(i) = orig - eps;
      const float down = make_loss(leaves).value().at(0);
      leaf.mutable_value().at(i) = orig;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(analytic.at(i), numeric, tol)
          << "leaf " << li << " element " << i;
    }
  }
}

/// True if every element of the tensor is finite.
inline bool AllFinite(const Tensor& t) {
  for (int64_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(t.at(i))) return false;
  }
  return true;
}

}  // namespace testing
}  // namespace embsr

#endif  // EMBSR_TESTS_TEST_UTIL_H_
