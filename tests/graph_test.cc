#include "graph/session_graph.h"

#include <gtest/gtest.h>

namespace embsr {
namespace {

TEST(SessionMultigraphTest, PaperFigure3Construction) {
  // S^v = {v1, v2, v3, v2, v3, v4} (Fig. 3, second construction).
  const std::vector<int64_t> seq = {1, 2, 3, 2, 3, 4};
  auto g = SessionMultigraph::Build(seq);
  EXPECT_EQ(g.num_nodes(), 4);  // distinct: v1 v2 v3 v4
  EXPECT_EQ(g.num_edges(), 5);  // one edge per transition, multi-edges kept
  EXPECT_EQ(g.nodes(), (std::vector<int64_t>{1, 2, 3, 4}));
  // alias maps positions to node ids.
  EXPECT_EQ(g.alias(), (std::vector<int>{0, 1, 2, 1, 2, 3}));
}

TEST(SessionMultigraphTest, EdgesPreserveOrderAttribute) {
  auto g = SessionMultigraph::Build({1, 2, 3, 2, 3, 4});
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edges()[e].order, e);  // chronological edge ids
  }
  // The two v2->v3 transitions are distinct edges with different orders.
  const auto& e1 = g.edges()[1];  // v2 -> v3 at position 1
  const auto& e4 = g.edges()[4];  // v3 -> v4 at position 4... check e3
  EXPECT_EQ(e1.src, 1);
  EXPECT_EQ(e1.dst, 2);
  const auto& e3 = g.edges()[3];  // second v2 -> v3 at position 3
  EXPECT_EQ(e3.src, 1);
  EXPECT_EQ(e3.dst, 2);
  EXPECT_NE(e1.order, e3.order);
  EXPECT_EQ(e4.src, 2);
  EXPECT_EQ(e4.dst, 3);
}

TEST(SessionMultigraphTest, InOutEdgeLists) {
  auto g = SessionMultigraph::Build({1, 2, 3, 2, 3, 4});
  // Node 2 (= item v3) has two incoming edges (both from v2) and two
  // outgoing (to v2 and to v4).
  EXPECT_EQ(g.in_edges(2).size(), 2u);
  EXPECT_EQ(g.out_edges(2).size(), 2u);
  // Node 0 (= v1) has no incoming, one outgoing.
  EXPECT_TRUE(g.in_edges(0).empty());
  EXPECT_EQ(g.out_edges(0).size(), 1u);
  // Node 3 (= v4) terminal.
  EXPECT_EQ(g.in_edges(3).size(), 1u);
  EXPECT_TRUE(g.out_edges(3).empty());
}

TEST(SessionMultigraphTest, SingleItemSession) {
  auto g = SessionMultigraph::Build({7});
  EXPECT_EQ(g.num_nodes(), 1);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.alias(), (std::vector<int>{0}));
}

TEST(SessionMultigraphTest, RepeatedItemIsOneNode) {
  auto g = SessionMultigraph::Build({5, 9, 5, 9, 5});
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 4);
  // Self-transitions never occur (successive duplicates are merged
  // upstream), but a cycle 5->9->5 is fine.
  for (const auto& e : g.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(SrgnnAdjacencyTest, RowNormalization) {
  auto adj = BuildSrgnnAdjacency({1, 2, 3, 2, 3, 4});
  const int64_t n = static_cast<int64_t>(adj.nodes.size());
  ASSERT_EQ(n, 4);
  for (int64_t i = 0; i < n; ++i) {
    float out_sum = 0.0f, in_sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      out_sum += adj.a_out.at2(i, j);
      in_sum += adj.a_in.at2(i, j);
      EXPECT_GE(adj.a_out.at2(i, j), 0.0f);
      EXPECT_GE(adj.a_in.at2(i, j), 0.0f);
    }
    // Rows with any outgoing/incoming edges sum to 1; others to 0.
    EXPECT_TRUE(std::abs(out_sum - 1.0f) < 1e-5 || out_sum == 0.0f);
    EXPECT_TRUE(std::abs(in_sum - 1.0f) < 1e-5 || in_sum == 0.0f);
  }
}

TEST(SrgnnAdjacencyTest, CollapsesMultiEdges) {
  // v2 -> v3 occurs twice; the collapsed graph weights, it does not
  // duplicate: out row of v2 has v3 at 2/3 and v... wait: v2's outgoing
  // transitions are v3 (twice). From seq {1,2,3,2,3,4}: v2 -> v3 twice,
  // so out(v2) = {v3: 1.0}.
  auto adj = BuildSrgnnAdjacency({1, 2, 3, 2, 3, 4});
  const int v2 = 1, v3 = 2, v4 = 3;
  EXPECT_FLOAT_EQ(adj.a_out.at2(v2, v3), 1.0f);
  // v3's outgoing: to v2 once, to v4 once -> 0.5 each.
  EXPECT_FLOAT_EQ(adj.a_out.at2(v3, v2), 0.5f);
  EXPECT_FLOAT_EQ(adj.a_out.at2(v3, v4), 0.5f);
}

TEST(SrgnnAdjacencyTest, AliasMatchesMultigraph) {
  const std::vector<int64_t> seq = {4, 2, 4, 7};
  auto adj = BuildSrgnnAdjacency(seq);
  auto g = SessionMultigraph::Build(seq);
  EXPECT_EQ(adj.alias, g.alias());
  EXPECT_EQ(adj.nodes, g.nodes());
}

}  // namespace
}  // namespace embsr
