// End-to-end proof of exact training resumption: a run that crashes at an
// injected failpoint mid-training and resumes from its checkpoint must end
// up bit-for-bit identical to a run that never crashed — same parameters,
// same evaluation numbers. This pins down every piece of state the
// checkpoint carries (weights, optimizer moments, RNG stream, best-params
// tracking) and the derived-seed shuffle that makes epoch order a pure
// function of (seed, epoch).

#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/embsr_model.h"
#include "datagen/generator.h"
#include "robust/failpoint.h"
#include "train/evaluator.h"
#include "util/check.h"

namespace embsr {
namespace {

const ProcessedDataset& SmallData() {
  static const ProcessedDataset* d = [] {
    auto r = MakeDataset(JdAppliancesConfig(0.02));
    EMBSR_CHECK_OK(r);
    return new ProcessedDataset(std::move(r).value());
  }();
  return *d;
}

TrainConfig ResumeConfig() {
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 32;
  cfg.embedding_dim = 8;
  cfg.max_train_examples = 80;
  cfg.validate_every = 2;  // exercise best-params tracking across the crash
  cfg.dropout = 0.2f;      // exercise the checkpointed RNG stream
  return cfg;
}

void ExpectBitIdenticalParams(nn::Module& a, nn::Module& b) {
  const auto pa = a.NamedParameters();
  const auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    const Tensor& ta = pa[i].variable.value();
    const Tensor& tb = pb[i].variable.value();
    ASSERT_EQ(ta.shape(), tb.shape()) << pa[i].name;
    EXPECT_EQ(std::memcmp(ta.data(), tb.data(),
                          sizeof(float) * static_cast<size_t>(ta.size())),
              0)
        << "parameter '" << pa[i].name << "' diverged after resume";
  }
}

TEST(ResumeTest, CrashAndResumeIsBitForBitIdenticalToStraightRun) {
  const ProcessedDataset& data = SmallData();
  const TrainConfig cfg = ResumeConfig();
  auto& fp = robust::Failpoints::Global();
  fp.ClearAll();
  unsetenv("EMBSR_CKPT_DIR");

  // Straight run: all 4 epochs, no checkpointing.
  EmbsrModel straight("EMBSR", data.num_items, data.num_operations, cfg);
  ASSERT_TRUE(straight.Fit(data).ok());

  // Crashing run: checkpoint every epoch, injected crash after epoch 2
  // (skip the first evaluation of the site, trigger on the second).
  const std::string dir =
      std::string(::testing::TempDir()) + "/resume_ckpts";
  std::filesystem::remove_all(dir);  // stale checkpoints from earlier runs
  setenv("EMBSR_CKPT_DIR", dir.c_str(), 1);
  fp.Set("train.crash", 1.0, /*limit=*/1, /*skip=*/1);
  {
    EmbsrModel crashed("EMBSR", data.num_items, data.num_operations, cfg);
    Status s = crashed.Fit(data);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("train.crash"), std::string::npos);
  }
  EXPECT_EQ(fp.TriggerCount("train.crash"), 1);
  fp.ClearAll();

  // Resumed run: a fresh process would construct the model the same way,
  // find the epoch-2 checkpoint, and train epochs 3 and 4.
  EmbsrModel resumed("EMBSR", data.num_items, data.num_operations, cfg);
  ASSERT_TRUE(resumed.Fit(data).ok());
  unsetenv("EMBSR_CKPT_DIR");

  ExpectBitIdenticalParams(straight, resumed);

  EvalResult ev_straight = Evaluate(&straight, data.test, {20});
  EvalResult ev_resumed = Evaluate(&resumed, data.test, {20});
  EXPECT_EQ(ev_straight.report.mrr.at(20), ev_resumed.report.mrr.at(20));
  EXPECT_EQ(ev_straight.report.hit.at(20), ev_resumed.report.hit.at(20));
  EXPECT_EQ(ev_straight.ranks, ev_resumed.ranks);
}

TEST(ResumeTest, ResumeSkipsFinishedTraining) {
  // A checkpoint at the final epoch means Fit has nothing left to do and
  // must restore rather than retrain.
  const ProcessedDataset& data = SmallData();
  TrainConfig cfg = ResumeConfig();
  cfg.epochs = 2;
  const std::string dir =
      std::string(::testing::TempDir()) + "/resume_done_ckpts";
  std::filesystem::remove_all(dir);
  setenv("EMBSR_CKPT_DIR", dir.c_str(), 1);

  EmbsrModel first("EMBSR", data.num_items, data.num_operations, cfg);
  ASSERT_TRUE(first.Fit(data).ok());

  EmbsrModel second("EMBSR", data.num_items, data.num_operations, cfg);
  ASSERT_TRUE(second.Fit(data).ok());
  unsetenv("EMBSR_CKPT_DIR");

  ExpectBitIdenticalParams(first, second);
}

}  // namespace
}  // namespace embsr
