#include "datagen/generator.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

namespace embsr {
namespace {

TEST(GeneratorTest, Deterministic) {
  GeneratorConfig cfg = JdAppliancesConfig(0.05);
  auto a = GenerateSessions(cfg);
  auto b = GenerateSessions(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].events.size(), b[i].events.size());
    for (size_t j = 0; j < a[i].events.size(); ++j) {
      EXPECT_EQ(a[i].events[j], b[i].events[j]);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig cfg = JdAppliancesConfig(0.05);
  auto a = GenerateSessions(cfg);
  cfg.seed += 1;
  auto b = GenerateSessions(cfg);
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.size(), b.size()) && !any_diff; ++i) {
    any_diff = a[i].events.size() != b[i].events.size();
  }
  EXPECT_TRUE(any_diff);
}

class GeneratorPresetTest
    : public ::testing::TestWithParam<GeneratorConfig> {};

INSTANTIATE_TEST_SUITE_P(
    Presets, GeneratorPresetTest,
    ::testing::Values(JdAppliancesConfig(0.05), JdComputersConfig(0.05),
                      TrivagoConfig(0.05)),
    [](const ::testing::TestParamInfo<GeneratorConfig>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST_P(GeneratorPresetTest, EventsWithinVocabularies) {
  const GeneratorConfig cfg = GetParam();
  for (const auto& s : GenerateSessions(cfg)) {
    ASSERT_FALSE(s.events.empty());
    for (const auto& e : s.events) {
      EXPECT_GE(e.item, 0);
      EXPECT_LT(e.item, cfg.num_items());
      EXPECT_GE(e.operation, 0);
      EXPECT_LT(e.operation, cfg.num_operations);
    }
  }
}

TEST_P(GeneratorPresetTest, EveryItemVisitStartsWithEntryOperation) {
  const GeneratorConfig cfg = GetParam();
  const int64_t entry = cfg.num_operations >= 10
                            ? static_cast<int64_t>(kJdClick)
                            : static_cast<int64_t>(kTrvImpression);
  for (const auto& s : GenerateSessions(cfg)) {
    int64_t prev_item = -1;
    for (const auto& e : s.events) {
      if (e.item != prev_item) {
        EXPECT_EQ(e.operation, entry)
            << "first operation on a new item must be the entry op";
        prev_item = e.item;
      }
    }
  }
}

TEST_P(GeneratorPresetTest, PreprocessesToUsableDataset) {
  const GeneratorConfig cfg = GetParam();
  auto result = MakeDataset(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& d = result.value();
  EXPECT_GT(d.num_items, 50);
  EXPECT_EQ(d.num_operations, cfg.num_operations);
  EXPECT_GT(d.train.size(), d.valid.size());
  EXPECT_GT(d.test.size(), d.valid.size());
  EXPECT_GT(d.TotalMicroBehaviors(),
            static_cast<int64_t>(d.train.size()) * 3);
}

TEST(GeneratorTest, TrivagoTargetNeverInSession) {
  // The Trivago preset models click-outs on *new* hotels: the ground truth
  // must not appear among the session's input items. This is the property
  // behind the paper's S-POP = 0 row.
  auto result = MakeDataset(TrivagoConfig(0.1));
  ASSERT_TRUE(result.ok());
  int in_session = 0, total = 0;
  for (const auto& ex : result.value().test) {
    ++total;
    if (std::find(ex.macro_items.begin(), ex.macro_items.end(),
                  ex.target) != ex.macro_items.end()) {
      ++in_session;
    }
  }
  ASSERT_GT(total, 0);
  // A handful of sessions may regain an in-session target when the support
  // filter drops the generated target and promotes an earlier item; the
  // rate must stay negligible (paper: S-POP scores ~0 on Trivago).
  EXPECT_LE(in_session, 1 + total / 50);
}

TEST(GeneratorTest, JdTargetsOftenRepeatButNotAlways) {
  auto result = MakeDataset(JdAppliancesConfig(0.1));
  ASSERT_TRUE(result.ok());
  int in_session = 0, total = 0;
  for (const auto& ex : result.value().test) {
    ++total;
    if (std::find(ex.macro_items.begin(), ex.macro_items.end(),
                  ex.target) != ex.macro_items.end()) {
      ++in_session;
    }
  }
  ASSERT_GT(total, 0);
  const double frac = static_cast<double>(in_session) / total;
  EXPECT_GT(frac, 0.10);  // repeats exist (S-POP viable, as in the paper)
  EXPECT_LT(frac, 0.70);  // but are not the whole story
}

TEST(GeneratorTest, JdSessionsUseDeepOperations) {
  // The engagement ladder must actually fire: carts and orders appear.
  auto sessions = GenerateSessions(JdAppliancesConfig(0.1));
  int64_t carts = 0, orders = 0, comments = 0, clicks = 0;
  for (const auto& s : sessions) {
    for (const auto& e : s.events) {
      if (e.operation == kJdAddToCart) ++carts;
      if (e.operation == kJdOrder) ++orders;
      if (e.operation == kJdReadComments) ++comments;
      if (e.operation == kJdClick) ++clicks;
    }
  }
  EXPECT_GT(carts, 0);
  EXPECT_GT(orders, 0);
  EXPECT_GT(comments, 0);
  EXPECT_GT(clicks, carts);   // engagement is a funnel
  EXPECT_GT(carts, orders);
}

TEST(GeneratorTest, MicroBehaviorSignalIsInformative) {
  // Oracle check: predicting "a neighbour of the deepest-engaged item"
  // should match the target far more often than popularity alone.
  // The oracle knows the generator's depth scoring; learned models have to
  // recover it from the operations — this test validates the signal exists.
  GeneratorConfig cfg = JdAppliancesConfig(0.1);
  auto sessions = GenerateSessions(cfg);
  int signal_hits = 0, total = 0;
  for (const auto& s : sessions) {
    // Recompute per-item depth as the generator does.
    std::vector<int64_t> items;
    std::vector<std::vector<int64_t>> ops;
    std::vector<MicroBehavior> input(s.events.begin(), s.events.end() - 1);
    // Identify the target: last distinct item.
    int64_t target = s.events.back().item;
    // Strip the target's trailing run.
    while (!input.empty() && input.back().item == target) input.pop_back();
    if (input.empty()) continue;
    MergeSuccessive(input, &items, &ops);
    double best_depth = -1;
    int64_t deepest = -1;
    for (size_t i = 0; i < items.size(); ++i) {
      double depth = 0;
      for (int64_t op : ops[i]) {
        if (op == kJdAddToCart) depth += 3;
        if (op == kJdOrder) depth += 5;
        if (op == kJdReadComments) depth += 2;
        if (op == kJdReadDetail) depth += 1;
      }
      if (depth > best_depth) {
        best_depth = depth;
        deepest = items[i];
      }
    }
    ++total;
    // Hit if the target is the deepest item or an id-neighbour of it.
    if (std::abs(target - deepest) <= 3) ++signal_hits;
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(signal_hits) / total, 0.4);
}

TEST(GeneratorTest, SingleOpDatasetBuilds) {
  auto result = MakeDatasetSingleOp(JdAppliancesConfig(0.05), kJdClick);
  ASSERT_TRUE(result.ok());
  for (const auto& ex : result.value().train) {
    for (int64_t op : ex.flat_ops) EXPECT_EQ(op, kJdClick);
  }
}

TEST(GeneratorTest, ScaleGrowsSessionCount) {
  EXPECT_GT(JdAppliancesConfig(1.0).num_sessions,
            JdAppliancesConfig(0.1).num_sessions);
  EXPECT_GE(TrivagoConfig(0.0001).num_sessions, 200);  // floor
}

}  // namespace
}  // namespace embsr
