#include "train/experiment.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "datagen/generator.h"
#include "obs/run_logger.h"
#include "util/check.h"
#include "models/baselines_nonneural.h"
#include "train/model_zoo.h"

namespace embsr {
namespace {

const ProcessedDataset& SmallData() {
  static const ProcessedDataset* d = [] {
    auto r = MakeDataset(JdAppliancesConfig(0.02));
    EMBSR_CHECK_OK(r);
    return new ProcessedDataset(std::move(r).value());
  }();
  return *d;
}

TEST(EvaluatorTest, PerfectModelScoresHundred) {
  // A cheating "model" that always puts the target first.
  class Oracle : public Recommender {
   public:
    explicit Oracle(int64_t n) : n_(n) {}
    std::string name() const override { return "oracle"; }
    Status Fit(const ProcessedDataset&) override { return Status::OK(); }
    std::vector<float> ScoreAll(const Example& ex) override {
      std::vector<float> s(n_, 0.0f);
      s[ex.target] = 1.0f;
      return s;
    }

   private:
    int64_t n_;
  };
  Oracle oracle(SmallData().num_items);
  EvalResult r = Evaluate(&oracle, SmallData().test, {1, 5});
  EXPECT_DOUBLE_EQ(r.report.hit.at(1), 100.0);
  EXPECT_DOUBLE_EQ(r.report.mrr.at(5), 100.0);
  EXPECT_EQ(r.ranks.size(), SmallData().test.size());
  for (int rank : r.ranks) EXPECT_EQ(rank, 1);
}

TEST(EvaluatorTest, MaxExamplesLimitsWork) {
  SPop spop(SmallData().num_items);
  ASSERT_TRUE(spop.Fit(SmallData()).ok());
  EvalResult r = Evaluate(&spop, SmallData().test, {5}, 10);
  EXPECT_EQ(r.ranks.size(), 10u);
}

TEST(EvaluatorTest, ReciprocalRanksMatchRanks) {
  EvalResult r;
  r.ranks = {1, 4, 50};
  auto rr = r.ReciprocalRanksAt(20);
  ASSERT_EQ(rr.size(), 3u);
  EXPECT_DOUBLE_EQ(rr[0], 1.0);
  EXPECT_DOUBLE_EQ(rr[1], 0.25);
  EXPECT_DOUBLE_EQ(rr[2], 0.0);  // beyond the cutoff
}

TEST(ExperimentTest, RunsEndToEnd) {
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.embedding_dim = 8;
  cfg.max_train_examples = 40;
  cfg.validate_every = 0;
  ExperimentResult res =
      RunExperiment("STAMP", SmallData(), cfg, {5, 10, 20}, 20);
  EXPECT_EQ(res.model, "STAMP");
  EXPECT_EQ(res.dataset, SmallData().name);
  EXPECT_EQ(res.eval.ranks.size(), 20u);
  EXPECT_GT(res.fit_seconds, 0.0);
  EXPECT_TRUE(res.eval.report.hit.contains(20));
}

TEST(ExperimentTest, FormatMetricTableContainsAllCells) {
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.embedding_dim = 8;
  cfg.max_train_examples = 30;
  cfg.validate_every = 0;
  std::vector<ExperimentResult> results;
  results.push_back(RunExperiment("S-POP", SmallData(), cfg, {5, 10}, 20));
  results.push_back(RunExperiment("SKNN", SmallData(), cfg, {5, 10}, 20));
  const std::string table = FormatMetricTable("X", results, {5, 10});
  EXPECT_NE(table.find("S-POP"), std::string::npos);
  EXPECT_NE(table.find("SKNN"), std::string::npos);
  EXPECT_NE(table.find("H@5"), std::string::npos);
  EXPECT_NE(table.find("M@10"), std::string::npos);
  EXPECT_NE(table.find("Dataset: X"), std::string::npos);
}

TEST(ExperimentTest, BenchTrainConfigHonorsScale) {
  setenv("EMBSR_BENCH_SCALE", "0.1", 1);
  TrainConfig small = BenchTrainConfig();
  setenv("EMBSR_BENCH_SCALE", "1.0", 1);
  TrainConfig full = BenchTrainConfig();
  unsetenv("EMBSR_BENCH_SCALE");
  EXPECT_LE(small.epochs, full.epochs);
  EXPECT_GT(small.max_train_examples, 0);
}

TEST(RunLoggerTest, EmitsOneJsonlRecordPerEpoch) {
  const std::string path = testing::TempDir() + "/embsr_train_runlog.jsonl";
  std::remove(path.c_str());
  setenv("EMBSR_RUN_LOG", path.c_str(), 1);
  obs::RunLogger::ReinitGlobalFromEnv();

  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.embedding_dim = 8;
  cfg.max_train_examples = 20;
  cfg.validate_every = 0;
  // One neural baseline and EMBSR itself both feed the run log.
  RunExperiment("STAMP", SmallData(), cfg, {20}, 5);
  RunExperiment("EMBSR", SmallData(), cfg, {20}, 5);

  unsetenv("EMBSR_RUN_LOG");
  obs::RunLogger::ReinitGlobalFromEnv();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int stamp_lines = 0, embsr_lines = 0;
  int expected_epoch = 1;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    const bool is_stamp = line.find("\"model\":\"STAMP\"") != std::string::npos;
    const bool is_embsr = line.find("\"model\":\"EMBSR\"") != std::string::npos;
    ASSERT_TRUE(is_stamp || is_embsr) << line;
    stamp_lines += is_stamp;
    embsr_lines += is_embsr;
    EXPECT_NE(line.find("\"epoch\":" + std::to_string(expected_epoch)),
              std::string::npos)
        << line;
    expected_epoch = expected_epoch == cfg.epochs ? 1 : expected_epoch + 1;
    EXPECT_NE(line.find("\"loss\":"), std::string::npos);
    EXPECT_NE(line.find("\"grad_norm\":"), std::string::npos);
    EXPECT_NE(line.find("\"wall_seconds\":"), std::string::npos);
    EXPECT_NE(line.find("\"examples_per_sec\":"), std::string::npos);
  }
  EXPECT_EQ(stamp_lines, cfg.epochs);
  EXPECT_EQ(embsr_lines, cfg.epochs);
  std::remove(path.c_str());
}

TEST(ExperimentTest, WilcoxonOnModelPairIsComputable) {
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.embedding_dim = 8;
  cfg.max_train_examples = 40;
  cfg.validate_every = 0;
  auto a = RunExperiment("S-POP", SmallData(), cfg, {20}, 50);
  auto b = RunExperiment("SKNN", SmallData(), cfg, {20}, 50);
  const double p = WilcoxonSignedRankP(a.eval.ReciprocalRanksAt(20),
                                       b.eval.ReciprocalRanksAt(20));
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace embsr
