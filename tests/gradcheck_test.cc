// Registry-driven gradient verification of the whole autodiff surface.
//
// Three layers of enforcement:
//  1. Every registered op/layer case passes central-difference checking.
//  2. Coverage: every op declared in autograd/ops.h and every layer in
//     nn/layers.h has a registered case — adding one without a check fails
//     here, not in a code review.
//  3. Models: every neural model in train/model_zoo.cc gradchecks end to
//     end (parameters -> LossOn) on a fixed synthetic session.

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "verify/gradcheck.h"
#include "verify/model_check.h"
#include "verify/registry.h"
#include "verify/source_scan.h"

namespace embsr {
namespace verify {
namespace {

class GradCheckSuite : public ::testing::Test {
 protected:
  void SetUp() override { RegisterBuiltinGradCheckCases(); }
};

TEST_F(GradCheckSuite, EveryRegisteredCasePasses) {
  const auto& cases = GradCheckRegistry::Global().cases();
  ASSERT_FALSE(cases.empty());
  for (const auto& c : cases) {
    const GradCheckResult result = c.run();
    EXPECT_TRUE(result.ok) << c.kind << " " << c.name << ": "
                           << result.ToString();
    EXPECT_GT(result.checked_elements, 0) << c.kind << " " << c.name;
    EXPECT_LT(result.max_rel_error, 1e-2f)
        << c.kind << " " << c.name << ": " << result.ToString();
  }
}

TEST_F(GradCheckSuite, EveryDeclaredOpHasACase) {
  const auto declared = ScanOpNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(declared.ok()) << declared.status().ToString();
  ASSERT_FALSE(declared.value().empty());
  const auto registered = GradCheckRegistry::Global().Names("op");
  for (const std::string& name : declared.value()) {
    EXPECT_TRUE(std::binary_search(registered.begin(), registered.end(), name))
        << "op '" << name << "' is declared in src/autograd/ops.h but has no "
        << "gradient check; add a case to src/verify/cases.cc";
  }
}

TEST_F(GradCheckSuite, EveryDeclaredLayerHasACase) {
  const auto declared = ScanLayerNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(declared.ok()) << declared.status().ToString();
  ASSERT_FALSE(declared.value().empty());
  const auto registered = GradCheckRegistry::Global().Names("layer");
  for (const std::string& name : declared.value()) {
    EXPECT_TRUE(std::binary_search(registered.begin(), registered.end(), name))
        << "layer '" << name << "' is declared in src/nn/layers.h but has no "
        << "gradient check; add a case to src/verify/cases.cc";
  }
}

TEST_F(GradCheckSuite, NoStaleRegistrations) {
  // The inverse direction: a registered case whose op/layer no longer
  // exists means the scan regexes or the registry rotted.
  const auto ops = ScanOpNames(EMBSR_REPO_ROOT);
  const auto layers = ScanLayerNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(ops.ok() && layers.ok());
  for (const auto& c : GradCheckRegistry::Global().cases()) {
    const auto& declared = (c.kind == "op") ? ops.value() : layers.value();
    EXPECT_TRUE(std::find(declared.begin(), declared.end(), c.name) !=
                declared.end())
        << "registered " << c.kind << " case '" << c.name
        << "' matches nothing in the source tree";
  }
}

TEST_F(GradCheckSuite, SourceScanFindsKnownNames) {
  // Spot-check the scanners against names that must exist; guards against
  // a regex silently matching nothing (which would make the coverage tests
  // vacuously pass).
  const auto ops = ScanOpNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(ops.ok());
  EXPECT_GE(ops.value().size(), 30u);
  for (const char* must : {"MatMul", "SoftmaxCrossEntropy", "Dropout"}) {
    EXPECT_TRUE(std::binary_search(ops.value().begin(), ops.value().end(),
                                   std::string(must)))
        << must;
  }
  const auto layers = ScanLayerNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(layers.ok());
  for (const char* must : {"Linear", "Embedding", "GRUCell"}) {
    EXPECT_TRUE(std::binary_search(layers.value().begin(),
                                   layers.value().end(), std::string(must)))
        << must;
  }
  const auto models = ScanModelNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(models.ok());
  for (const char* must : {"EMBSR", "GRU4Rec", "SR-GNN", "S-POP"}) {
    EXPECT_TRUE(std::binary_search(models.value().begin(),
                                   models.value().end(), std::string(must)))
        << must;
  }
}

TEST_F(GradCheckSuite, EveryTensorKernelHasAnEquivalenceCase) {
  // Parallel-kernel coverage: every free kernel declared in tensor/tensor.h
  // must carry an EMBSR_KERNEL_EQUIV marker in tests/kernel_equiv_test.cc,
  // where it is property-tested against its frozen serial ref:: oracle at
  // several thread counts. Adding a kernel without wiring the equivalence
  // test fails here.
  const auto declared = ScanTensorKernelNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(declared.ok()) << declared.status().ToString();
  EXPECT_GE(declared.value().size(), 26u);
  for (const char* must : {"MatMul", "RowSoftmax", "RowLogSumExp",
                           "MulRowBroadcast"}) {
    EXPECT_TRUE(std::binary_search(declared.value().begin(),
                                   declared.value().end(), std::string(must)))
        << "scanner no longer finds kernel '" << must
        << "' — the regex in source_scan.cc rotted";
  }
  const auto covered = ScanKernelEquivCoverage(EMBSR_REPO_ROOT);
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  for (const std::string& name : declared.value()) {
    EXPECT_TRUE(std::binary_search(covered.value().begin(),
                                   covered.value().end(), name))
        << "kernel '" << name << "' is declared in src/tensor/tensor.h but "
        << "has no EMBSR_KERNEL_EQUIV case in tests/kernel_equiv_test.cc";
  }
  // Inverse direction: a marker for a kernel that no longer exists means
  // the equivalence suite tests dead code.
  for (const std::string& name : covered.value()) {
    EXPECT_TRUE(std::binary_search(declared.value().begin(),
                                   declared.value().end(), name))
        << "EMBSR_KERNEL_EQUIV(" << name << ") matches no declared kernel";
  }
}

TEST_F(GradCheckSuite, EveryZooModelGradChecksEndToEnd) {
  const auto models = ScanModelNames(EMBSR_REPO_ROOT);
  ASSERT_TRUE(models.ok()) << models.status().ToString();

  GradCheckConfig config;
  config.max_elements_per_leaf = 6;  // sampled; exhaustive would be O(P) fwds
  int neural_checked = 0;
  for (const std::string& name : models.value()) {
    SCOPED_TRACE(name);
    const ModelGradCheckOutcome outcome = CheckModelGradients(name, config);
    ASSERT_TRUE(outcome.known) << "scanned name CreateModel rejects: " << name;
    if (!outcome.neural) continue;  // memory-based baseline, no gradients
    EXPECT_TRUE(outcome.result.ok) << outcome.result.ToString();
    EXPECT_LT(outcome.result.max_rel_error, 1e-2f)
        << outcome.result.ToString();
    EXPECT_GT(outcome.result.checked_elements, 0);
    ++neural_checked;
  }
  // The acceptance bar: EMBSR plus at least 3 neural baselines.
  EXPECT_GE(neural_checked, 4);
}

TEST_F(GradCheckSuite, DetectsASeededGradientBug) {
  // The checker itself must be falsifiable: a deliberately wrong backward
  // (scale gradient off by 2x) has to be flagged.
  Rng rng(1234);
  std::vector<ag::Variable> leaves = {
      ag::Variable(Tensor::RandUniform({2, 3}, -1.0f, 1.0f, &rng), true)};
  const GradCheckResult result = CheckGradients(
      [](const std::vector<ag::Variable>& l) {
        // loss = sum(x * detach(x)): forward computes sum(x^2), but the
        // second factor is a constant snapshot, so backward yields x where
        // the true gradient is 2x — the classic detached-factor bug.
        return ag::SumAll(ag::Mul(l[0], ag::Constant(l[0].value())));
      },
      leaves);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.failures.empty());
}

TEST_F(GradCheckSuite, DetectsNonDeterministicLoss) {
  Rng rng(99);
  std::vector<ag::Variable> leaves = {
      ag::Variable(Tensor::RandUniform({2, 2}, -1.0f, 1.0f, &rng), true)};
  static uint64_t call_count = 0;
  const GradCheckResult result = CheckGradients(
      [](const std::vector<ag::Variable>& l) {
        // A fresh mask every call — exactly the bug the probe exists for.
        Rng mask_rng(++call_count);
        return ag::SumAll(ag::Dropout(l[0], 0.5f, true, &mask_rng));
      },
      leaves);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_NE(result.failures[0].find("not deterministic"), std::string::npos);
}

}  // namespace
}  // namespace verify
}  // namespace embsr
