// Kernel equivalence suite: every parallel tensor kernel in src/tensor must
// match its frozen serial oracle in src/tensor/ref_kernels.* across ragged
// shapes and thread counts.
//
// The contract (DESIGN.md §11) is ≤ 1e-5 relative error; because the
// parallel kernels partition outputs only and never split or reorder a
// per-element reduction, the results are in fact BIT-IDENTICAL at every
// thread count, and that is what these tests assert (memcmp), with the
// relative-error bound as a second, looser check that documents the
// published tolerance.
//
// Coverage is enforced from the outside: gradcheck_test scans this file for
// EMBSR_KERNEL_EQUIV(Name) markers and fails if any kernel declared in
// src/tensor/tensor.h lacks one (or if a marker goes stale).

#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "par/thread_pool.h"
#include "tensor/ref_kernels.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Coverage marker scanned by verify::ScanKernelEquivCoverage. Expands to a
// SCOPED_TRACE so failures name the kernel under test.
#define EMBSR_KERNEL_EQUIV(name) SCOPED_TRACE("kernel: " #name)

namespace embsr {
namespace {

// Thread counts every comparison runs at: strict serial, the smallest truly
// parallel pool, and the hardware default. SetThreadCount(0) restores the
// EMBSR_THREADS / hardware default afterwards.
std::vector<int> ThreadCountsUnderTest() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> counts = {1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

// Ragged [n, m] shapes: the 1x1 degenerate case, prime extents, extents
// around the 64-wide MatMul tile boundary, and skinny/wide extremes.
struct Shape2 {
  int64_t n, m;
};
const std::vector<Shape2>& RaggedShapes() {
  static const std::vector<Shape2> kShapes = {
      {1, 1}, {7, 13}, {1, 257}, {129, 1}, {64, 64}, {65, 66}, {31, 97},
  };
  return kShapes;
}

void ExpectBitIdentical(const Tensor& got, const Tensor& want,
                        const std::string& what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  ASSERT_EQ(std::memcmp(got.data(), want.data(),
                        sizeof(float) * static_cast<size_t>(got.size())),
            0)
      << what << ": parallel kernel diverges bitwise from the serial oracle";
  // The published (looser) contract, stated explicitly so the suite still
  // documents it even though the bitwise check above subsumes it.
  EXPECT_TRUE(got.AllClose(want, 1e-5f)) << what;
}

// Runs `compute` (which must call the production kernel) at every thread
// count under test and compares against `oracle` computed once, serially.
template <typename Fn>
void CheckAtAllThreadCounts(const Tensor& oracle, Fn compute,
                            const std::string& what) {
  for (int threads : ThreadCountsUnderTest()) {
    par::SetThreadCount(threads);
    const Tensor got = compute();
    ExpectBitIdentical(got, oracle,
                       what + " at threads=" + std::to_string(threads));
  }
  par::SetThreadCount(0);
}

std::string ShapeTag(const Shape2& s) {
  return std::to_string(s.n) + "x" + std::to_string(s.m);
}

class KernelEquivTest : public ::testing::Test {
 protected:
  void TearDown() override { par::SetThreadCount(0); }
  Rng rng_{20260806};
};

// -- Elementwise binary ---------------------------------------------------------

TEST_F(KernelEquivTest, ElementwiseBinary) {
  EMBSR_KERNEL_EQUIV(Add);
  EMBSR_KERNEL_EQUIV(Sub);
  EMBSR_KERNEL_EQUIV(Mul);
  for (const Shape2& s : RaggedShapes()) {
    const Tensor a = Tensor::RandUniform({s.n, s.m}, -2.0f, 2.0f, &rng_);
    const Tensor b = Tensor::RandUniform({s.n, s.m}, -2.0f, 2.0f, &rng_);
    CheckAtAllThreadCounts(tensor::ref::Add(a, b), [&] { return Add(a, b); },
                           "Add " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::Sub(a, b), [&] { return Sub(a, b); },
                           "Sub " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::Mul(a, b), [&] { return Mul(a, b); },
                           "Mul " + ShapeTag(s));
  }
}

TEST_F(KernelEquivTest, RowBroadcasts) {
  EMBSR_KERNEL_EQUIV(AddRowBroadcast);
  EMBSR_KERNEL_EQUIV(MulRowBroadcast);
  for (const Shape2& s : RaggedShapes()) {
    const Tensor a = Tensor::RandUniform({s.n, s.m}, -2.0f, 2.0f, &rng_);
    const Tensor row = Tensor::RandUniform({1, s.m}, -2.0f, 2.0f, &rng_);
    CheckAtAllThreadCounts(tensor::ref::AddRowBroadcast(a, row),
                           [&] { return AddRowBroadcast(a, row); },
                           "AddRowBroadcast " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::MulRowBroadcast(a, row),
                           [&] { return MulRowBroadcast(a, row); },
                           "MulRowBroadcast " + ShapeTag(s));
  }
}

// -- Elementwise unary ----------------------------------------------------------

TEST_F(KernelEquivTest, ElementwiseUnary) {
  EMBSR_KERNEL_EQUIV(Scale);
  EMBSR_KERNEL_EQUIV(AddScalar);
  EMBSR_KERNEL_EQUIV(Neg);
  EMBSR_KERNEL_EQUIV(Exp);
  EMBSR_KERNEL_EQUIV(Log);
  EMBSR_KERNEL_EQUIV(Tanh);
  EMBSR_KERNEL_EQUIV(Sigmoid);
  EMBSR_KERNEL_EQUIV(Relu);
  for (const Shape2& s : RaggedShapes()) {
    const Tensor a = Tensor::RandUniform({s.n, s.m}, -2.0f, 2.0f, &rng_);
    // Strictly positive input for Log.
    const Tensor pos = Tensor::RandUniform({s.n, s.m}, 0.1f, 3.0f, &rng_);
    CheckAtAllThreadCounts(tensor::ref::Scale(a, 1.75f),
                           [&] { return Scale(a, 1.75f); },
                           "Scale " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::AddScalar(a, -0.5f),
                           [&] { return AddScalar(a, -0.5f); },
                           "AddScalar " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::Neg(a), [&] { return Neg(a); },
                           "Neg " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::Exp(a), [&] { return Exp(a); },
                           "Exp " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::Log(pos), [&] { return Log(pos); },
                           "Log " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::Tanh(a), [&] { return Tanh(a); },
                           "Tanh " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::Sigmoid(a), [&] { return Sigmoid(a); },
                           "Sigmoid " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::Relu(a), [&] { return Relu(a); },
                           "Relu " + ShapeTag(s));
  }
}

// -- MatMul ---------------------------------------------------------------------

TEST_F(KernelEquivTest, MatMulRaggedShapes) {
  EMBSR_KERNEL_EQUIV(MatMul);
  // [n, k] x [k, m] with extents straddling the 64-wide j-tile and the
  // row-parallel grain; includes sparse-ish input to exercise the zero-skip.
  struct Shape3 {
    int64_t n, k, m;
  };
  const std::vector<Shape3> shapes = {
      {1, 1, 1}, {7, 13, 5},  {64, 64, 64}, {65, 3, 66},
      {1, 97, 1}, {31, 64, 129}, {128, 17, 63},
  };
  for (const auto& s : shapes) {
    Tensor a = Tensor::RandUniform({s.n, s.k}, -1.0f, 1.0f, &rng_);
    const Tensor b = Tensor::RandUniform({s.k, s.m}, -1.0f, 1.0f, &rng_);
    // Zero out ~25% of A so the `av == 0` skip path runs on both sides.
    for (int64_t i = 0; i < a.size(); i += 4) a.at(i) = 0.0f;
    const std::string tag = "MatMul " + std::to_string(s.n) + "x" +
                            std::to_string(s.k) + "x" + std::to_string(s.m);
    CheckAtAllThreadCounts(tensor::ref::MatMul(a, b),
                           [&] { return MatMul(a, b); }, tag);
  }
}

// -- Reductions -----------------------------------------------------------------

TEST_F(KernelEquivTest, Reductions) {
  EMBSR_KERNEL_EQUIV(SumAll);
  EMBSR_KERNEL_EQUIV(SumRowsTo1xD);
  EMBSR_KERNEL_EQUIV(SumColsToNx1);
  EMBSR_KERNEL_EQUIV(MeanAll);
  for (const Shape2& s : RaggedShapes()) {
    const Tensor a = Tensor::RandUniform({s.n, s.m}, -2.0f, 2.0f, &rng_);
    CheckAtAllThreadCounts(tensor::ref::SumAll(a), [&] { return SumAll(a); },
                           "SumAll " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::SumRowsTo1xD(a),
                           [&] { return SumRowsTo1xD(a); },
                           "SumRowsTo1xD " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::SumColsToNx1(a),
                           [&] { return SumColsToNx1(a); },
                           "SumColsToNx1 " + ShapeTag(s));
    const float want_mean = tensor::ref::MeanAll(a);
    CheckAtAllThreadCounts(Tensor::Scalar(want_mean),
                           [&] { return Tensor::Scalar(MeanAll(a)); },
                           "MeanAll " + ShapeTag(s));
  }
}

// -- Row kernels ----------------------------------------------------------------

TEST_F(KernelEquivTest, RowSoftmaxFamily) {
  EMBSR_KERNEL_EQUIV(RowSoftmax);
  EMBSR_KERNEL_EQUIV(RowSoftmaxMasked);
  EMBSR_KERNEL_EQUIV(RowLogSumExp);
  for (const Shape2& s : RaggedShapes()) {
    const Tensor a = Tensor::RandUniform({s.n, s.m}, -5.0f, 5.0f, &rng_);
    // 0/1 mask with at least one unmasked entry per row (column 0).
    Tensor mask({s.n, s.m});
    for (int64_t i = 0; i < s.n; ++i) {
      mask.at2(i, 0) = 1.0f;
      for (int64_t j = 1; j < s.m; ++j) {
        mask.at2(i, j) = (rng_.Uniform() < 0.6) ? 1.0f : 0.0f;
      }
    }
    CheckAtAllThreadCounts(tensor::ref::RowSoftmax(a),
                           [&] { return RowSoftmax(a); },
                           "RowSoftmax " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::RowSoftmaxMasked(a, mask),
                           [&] { return RowSoftmaxMasked(a, mask); },
                           "RowSoftmaxMasked " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::RowLogSumExp(a),
                           [&] { return RowLogSumExp(a); },
                           "RowLogSumExp " + ShapeTag(s));
  }
}

TEST_F(KernelEquivTest, L2NormalizeRowsIncludingZeroRows) {
  EMBSR_KERNEL_EQUIV(L2NormalizeRows);
  for (const Shape2& s : RaggedShapes()) {
    Tensor a = Tensor::RandUniform({s.n, s.m}, -2.0f, 2.0f, &rng_);
    // Force a zero row so the zero-norm branch is compared too.
    for (int64_t j = 0; j < s.m; ++j) a.at2(s.n - 1, j) = 0.0f;
    CheckAtAllThreadCounts(tensor::ref::L2NormalizeRows(a),
                           [&] { return L2NormalizeRows(a); },
                           "L2NormalizeRows " + ShapeTag(s));
  }
}

// -- Gather / scatter / concat --------------------------------------------------

TEST_F(KernelEquivTest, GatherAndScatter) {
  EMBSR_KERNEL_EQUIV(GatherRows);
  EMBSR_KERNEL_EQUIV(ScatterAddRows);
  const Tensor table = Tensor::RandUniform({97, 13}, -1.0f, 1.0f, &rng_);
  // Duplicate indices on purpose: ScatterAddRows accumulates, and duplicate
  // destinations are why it stays serial (DESIGN.md §11).
  const std::vector<int64_t> indices = {0, 5, 96, 5, 42, 0, 17, 5};
  const Tensor grad_rows = Tensor::RandUniform(
      {static_cast<int64_t>(indices.size()), 13}, -1.0f, 1.0f, &rng_);

  CheckAtAllThreadCounts(tensor::ref::GatherRows(table, indices),
                         [&] { return GatherRows(table, indices); },
                         "GatherRows");

  Tensor want_table({97, 13});
  tensor::ref::ScatterAddRows(grad_rows, indices, &want_table);
  CheckAtAllThreadCounts(want_table,
                         [&] {
                           Tensor got_table({97, 13});
                           ScatterAddRows(grad_rows, indices, &got_table);
                           return got_table;
                         },
                         "ScatterAddRows");
}

TEST_F(KernelEquivTest, BatchedSelectAndSegmentSum) {
  EMBSR_KERNEL_EQUIV(SelectRowsByMask);
  EMBSR_KERNEL_EQUIV(SegmentSumRows);
  for (const Shape2& s : RaggedShapes()) {
    const Tensor a = Tensor::RandUniform({s.n, s.m}, -1.0f, 1.0f, &rng_);
    const Tensor b = Tensor::RandUniform({s.n, s.m}, -1.0f, 1.0f, &rng_);
    Tensor mask({s.n, 1});
    for (int64_t i = 0; i < s.n; ++i) {
      mask.data()[i] = rng_.Bernoulli(0.5) ? 1.0f : 0.0f;
    }
    CheckAtAllThreadCounts(tensor::ref::SelectRowsByMask(a, b, mask),
                           [&] { return SelectRowsByMask(a, b, mask); },
                           "SelectRowsByMask " + ShapeTag(s));

    // Ragged segment map: contiguous runs of random length, plus one
    // trailing empty segment — the shape the session collator emits.
    std::vector<int64_t> segments(static_cast<size_t>(s.n));
    int64_t seg = 0;
    for (int64_t i = 0; i < s.n; ++i) {
      segments[static_cast<size_t>(i)] = seg;
      if (rng_.Bernoulli(0.4)) ++seg;
    }
    const int64_t num_segments = seg + 2;
    CheckAtAllThreadCounts(
        tensor::ref::SegmentSumRows(a, segments, num_segments),
        [&] { return SegmentSumRows(a, segments, num_segments); },
        "SegmentSumRows " + ShapeTag(s));
  }
}

TEST_F(KernelEquivTest, Concats) {
  EMBSR_KERNEL_EQUIV(ConcatCols);
  EMBSR_KERNEL_EQUIV(ConcatRows);
  for (const Shape2& s : RaggedShapes()) {
    const Tensor a = Tensor::RandUniform({s.n, s.m}, -1.0f, 1.0f, &rng_);
    const Tensor bc = Tensor::RandUniform({s.n, s.m + 3}, -1.0f, 1.0f, &rng_);
    const Tensor br = Tensor::RandUniform({s.n + 2, s.m}, -1.0f, 1.0f, &rng_);
    CheckAtAllThreadCounts(tensor::ref::ConcatCols(a, bc),
                           [&] { return ConcatCols(a, bc); },
                           "ConcatCols " + ShapeTag(s));
    CheckAtAllThreadCounts(tensor::ref::ConcatRows(a, br),
                           [&] { return ConcatRows(a, br); },
                           "ConcatRows " + ShapeTag(s));
  }
}

}  // namespace
}  // namespace embsr
