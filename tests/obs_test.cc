#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_logger.h"

namespace embsr {
namespace obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Structural JSON check: balanced braces/brackets outside of strings, and
/// strings themselves terminated. Not a full parser, but catches broken
/// emission (unbalanced scopes, unescaped quotes, trailing garbage).
bool JsonStructurallyValid(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

// -- JsonWriter ----------------------------------------------------------------

TEST(JsonWriterTest, WritesNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").BeginArray().Number(0.5).String("x").Bool(true).Null().EndArray();
  w.Key("c").BeginObject().Key("d").String("e").EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[0.5,\"x\",true,null],\"c\":{\"d\":\"e\"}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject().Key("k\"ey").String("line\nbreak\ttab\\slash").EndObject();
  EXPECT_EQ(w.str(), "{\"k\\\"ey\":\"line\\nbreak\\ttab\\\\slash\"}");
  EXPECT_TRUE(JsonStructurallyValid(w.str()));
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.BeginArray().Number(std::nan("")).EndArray();
  EXPECT_EQ(w.str(), "[null]");
}

// -- Metrics -------------------------------------------------------------------

TEST(MetricsTest, CounterIsAtomicUnderConcurrentIncrements) {
  Counter* c = Registry::Global().GetCounter("test/concurrent_counter");
  const int64_t before = c->value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value() - before, int64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  Histogram h({1.0, 10.0});
  h.Observe(0.5);   // <= 1      -> bucket 0
  h.Observe(1.0);   // == bound  -> bucket 0 (inclusive upper bound)
  h.Observe(1.5);   // <= 10     -> bucket 1
  h.Observe(10.0);  // == bound  -> bucket 1
  h.Observe(10.5);  // > last    -> overflow bucket
  const std::vector<int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 23.5);
}

TEST(MetricsTest, PercentileOfEmptyHistogramIsZero) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 0.0);
}

TEST(MetricsTest, PercentileWithSingleSampleStaysInItsBucket) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(5.0);  // bucket (1, 10]
  // Every percentile resolves to the one sample's bucket: rank is clamped
  // to 1, so the estimate is the bucket's upper bound at full fraction.
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GT(v, 1.0) << "p=" << p;
    EXPECT_LE(v, 10.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), h.Percentile(100.0));
}

TEST(MetricsTest, PercentileWithAllEqualSamplesIsConstantAcrossP) {
  Histogram h({1.0, 10.0, 100.0});
  for (int i = 0; i < 50; ++i) h.Observe(10.0);  // all land in (1, 10]
  // All samples share one bucket, so p only moves the within-bucket
  // interpolation fraction; the estimate must never leave the bucket.
  double prev = h.Percentile(0.0);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GT(v, 1.0) << "p=" << p;
    EXPECT_LE(v, 10.0) << "p=" << p;
    EXPECT_GE(v, prev) << "percentile not monotone at p=" << p;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 10.0);
}

TEST(MetricsTest, PercentileIsMonotoneAndCreditsOverflowTheLastBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(1000.0);  // overflow bucket
  double prev = h.Percentile(0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "percentile not monotone at p=" << p;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 100.0);  // overflow -> last bound
  // Out-of-range p clamps instead of misbehaving.
  EXPECT_DOUBLE_EQ(h.Percentile(-5.0), h.Percentile(0.0));
  EXPECT_DOUBLE_EQ(h.Percentile(200.0), h.Percentile(100.0));
}

TEST(MetricsTest, GaugeLastWriteWins) {
  Gauge* g = Registry::Global().GetGauge("test/gauge");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->value(), -2.25);
}

TEST(MetricsTest, RegistryReturnsStableHandles) {
  Counter* a = Registry::Global().GetCounter("test/stable");
  Counter* b = Registry::Global().GetCounter("test/stable");
  EXPECT_EQ(a, b);
  Histogram* h1 =
      Registry::Global().GetHistogram("test/stable_hist", {1.0, 2.0});
  Histogram* h2 =
      Registry::Global().GetHistogram("test/stable_hist", {99.0});
  EXPECT_EQ(h1, h2);  // bounds of the first registration win
  ASSERT_EQ(h1->bounds().size(), 2u);
}

TEST(MetricsTest, SnapshotJsonIsValidAndNamesMetrics) {
  Registry::Global().GetCounter("test/snap_counter")->Add(3);
  Registry::Global().GetGauge("test/snap_gauge")->Set(0.5);
  Registry::Global()
      .GetHistogram("test/snap_hist", {1.0, 2.0})
      ->Observe(1.5);
  const std::string json = Registry::Global().SnapshotJson();
  EXPECT_TRUE(JsonStructurallyValid(json));
  EXPECT_NE(json.find("\"test/snap_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test/snap_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test/snap_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// -- Trace ---------------------------------------------------------------------

TEST(TraceTest, DisabledSessionRecordsNothing) {
  TraceSession& session = TraceSession::Global();
  ASSERT_FALSE(session.enabled());  // no EMBSR_TRACE in the test env
  const size_t before = session.event_count();
  {
    EMBSR_TRACE_SPAN("test/should_not_appear");
  }
  EXPECT_EQ(session.event_count(), before);
}

TEST(TraceTest, RecordsNestedSpansAcrossThreads) {
  TraceSession& session = TraceSession::Global();
  session.Start("");  // in-memory only
  auto worker = [] {
    EMBSR_TRACE_SPAN("test/outer");
    {
      EMBSR_TRACE_SPAN("test/inner");
    }
  };
  std::thread t1(worker);
  std::thread t2(worker);
  t1.join();
  t2.join();
  ASSERT_TRUE(session.Stop().ok());

  const std::vector<TraceEvent> events = session.SnapshotEvents();
  int outer = 0, inner = 0;
  std::vector<uint32_t> tids;
  for (const auto& e : events) {
    if (std::string(e.name) == "test/outer") {
      ++outer;
      tids.push_back(e.tid);
    }
    if (std::string(e.name) == "test/inner") ++inner;
  }
  EXPECT_EQ(outer, 2);
  EXPECT_EQ(inner, 2);
  ASSERT_EQ(tids.size(), 2u);
  EXPECT_NE(tids[0], tids[1]);  // each thread got its own tid

  // Nesting: within a thread the inner span lies inside the outer one.
  for (const auto& e : events) {
    if (std::string(e.name) != "test/inner") continue;
    for (const auto& o : events) {
      if (std::string(o.name) == "test/outer" && o.tid == e.tid) {
        EXPECT_GE(e.ts_us, o.ts_us);
        EXPECT_LE(e.ts_us + e.dur_us, o.ts_us + o.dur_us);
      }
    }
  }
}

TEST(TraceTest, ExportsValidChromeTraceJson) {
  const std::string path = testing::TempDir() + "/embsr_trace_test.json";
  std::remove(path.c_str());
  TraceSession& session = TraceSession::Global();
  session.Start(path);
  {
    EMBSR_TRACE_SPAN("test/export_a");
    EMBSR_TRACE_SPAN("test/export_b");
  }
  ASSERT_TRUE(session.Stop().ok());

  const std::string json = ReadFile(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonStructurallyValid(json));
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"test/export_a\""), std::string::npos);
  EXPECT_NE(json.find("\"test/export_b\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, TimedSpanFeedsHistogramWhileTracing) {
  Histogram* h = Registry::Global().GetHistogram("test/timed_span_ms",
                                                 DefaultLatencyBucketsMs());
  const int64_t before = h->count();
  TraceSession& session = TraceSession::Global();
  session.Start("");
  {
    ScopedSpan span("test/timed", h);
  }
  ASSERT_TRUE(session.Stop().ok());
  EXPECT_EQ(h->count(), before + 1);
}

// -- RunLogger -----------------------------------------------------------------

TEST(RunLoggerTest, WritesOneJsonLinePerEpoch) {
  const std::string path = testing::TempDir() + "/embsr_runlog_test.jsonl";
  std::remove(path.c_str());
  {
    RunLogger logger(path);
    ASSERT_TRUE(logger.ok());
    for (int epoch = 1; epoch <= 3; ++epoch) {
      EpochRecord rec;
      rec.model = "m";
      rec.dataset = "d";
      rec.epoch = epoch;
      rec.total_epochs = 3;
      rec.loss = 1.0 / epoch;
      rec.grad_norm = 0.5;
      rec.wall_seconds = 0.01;
      rec.examples_per_sec = 100.0;
      rec.lr = 0.005;
      if (epoch == 2) rec.valid_mrr = 42.0;
      logger.LogEpoch(rec);
    }
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(JsonStructurallyValid(line));
    EXPECT_NE(line.find("\"model\":\"m\""), std::string::npos);
    EXPECT_NE(line.find("\"epoch\":" + std::to_string(lines)),
              std::string::npos);
    EXPECT_NE(line.find("\"grad_norm\":"), std::string::npos);
    EXPECT_NE(line.find("\"examples_per_sec\":"), std::string::npos);
    if (lines == 2) {
      EXPECT_NE(line.find("\"valid_mrr\":42"), std::string::npos);
    } else {
      EXPECT_EQ(line.find("\"valid_mrr\""), std::string::npos);
    }
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace embsr
