#include "data/preprocess.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace embsr {
namespace {

Session MakeSession(std::initializer_list<std::pair<int64_t, int64_t>> evs) {
  Session s;
  for (auto [item, op] : evs) s.events.push_back({item, op});
  return s;
}

TEST(MergeSuccessiveTest, PaperFigure3Example) {
  // The session of Fig. 3: items v1 v2 v3 v2 v2 v2 v3 v3 v3 v4 with ops
  // merging to S^v = {v1, v2, v3, v2, v3, v4} and
  // S^o = {(o1), (o1), (o1), (o1,o2), (o1,o2,o3), (o1)}.
  std::vector<MicroBehavior> events = {
      {1, 1}, {2, 1}, {3, 1}, {2, 1}, {2, 2},
      {3, 1}, {3, 2}, {3, 3}, {4, 1}};
  std::vector<int64_t> items;
  std::vector<std::vector<int64_t>> ops;
  MergeSuccessive(events, &items, &ops);
  EXPECT_EQ(items, (std::vector<int64_t>{1, 2, 3, 2, 3, 4}));
  ASSERT_EQ(ops.size(), 6u);
  EXPECT_EQ(ops[0], (std::vector<int64_t>{1}));
  EXPECT_EQ(ops[3], (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(ops[4], (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(ops[5], (std::vector<int64_t>{1}));
}

TEST(MergeSuccessiveTest, EmptyInput) {
  std::vector<int64_t> items;
  std::vector<std::vector<int64_t>> ops;
  MergeSuccessive({}, &items, &ops);
  EXPECT_TRUE(items.empty());
  EXPECT_TRUE(ops.empty());
}

TEST(MergeSuccessiveTest, SingleRun) {
  std::vector<int64_t> items;
  std::vector<std::vector<int64_t>> ops;
  MergeSuccessive({{5, 0}, {5, 1}, {5, 2}}, &items, &ops);
  EXPECT_EQ(items, (std::vector<int64_t>{5}));
  EXPECT_EQ(ops[0], (std::vector<int64_t>{0, 1, 2}));
}

PreprocessConfig LooseConfig() {
  PreprocessConfig c;
  c.min_item_support = 1;
  c.shuffle = false;
  c.train_fraction = 0.7;
  c.valid_fraction = 0.1;
  return c;
}

std::vector<Session> ManySessions(int n) {
  std::vector<Session> sessions;
  for (int i = 0; i < n; ++i) {
    // Rotate over a small item alphabet so every item is well supported.
    const int64_t a = i % 5, b = (i + 1) % 5, c = (i + 2) % 5;
    sessions.push_back(MakeSession({{a, 0}, {a, 1}, {b, 0}, {c, 0}}));
  }
  return sessions;
}

TEST(PreprocessTest, SplitSizesFollowFractions) {
  auto result = Preprocess(ManySessions(100), 3, LooseConfig(), "t");
  ASSERT_TRUE(result.ok());
  const auto& d = result.value();
  EXPECT_EQ(d.train.size(), 70u);
  EXPECT_EQ(d.valid.size(), 10u);
  EXPECT_EQ(d.test.size(), 20u);
  EXPECT_EQ(d.num_operations, 3);
  EXPECT_EQ(d.name, "t");
}

TEST(PreprocessTest, TargetIsLastMacroItemAndExcludedFromInput) {
  auto result = Preprocess(ManySessions(100), 3, LooseConfig(), "t");
  ASSERT_TRUE(result.ok());
  for (const auto& ex : result.value().train) {
    // Input macro sequence must not end with the target (no leakage).
    ASSERT_FALSE(ex.macro_items.empty());
    EXPECT_NE(ex.macro_items.back(), ex.target);
    // Flat stream must not include the target's trailing run.
    EXPECT_NE(ex.flat_items.back(), ex.target);
    // Parallel arrays.
    EXPECT_EQ(ex.flat_items.size(), ex.flat_ops.size());
    EXPECT_EQ(ex.macro_items.size(), ex.macro_ops.size());
  }
}

TEST(PreprocessTest, FlatAndMacroAreConsistent) {
  auto result = Preprocess(ManySessions(60), 3, LooseConfig(), "t");
  ASSERT_TRUE(result.ok());
  for (const auto& ex : result.value().train) {
    size_t total_ops = 0;
    for (const auto& ops : ex.macro_ops) {
      ASSERT_FALSE(ops.empty());
      total_ops += ops.size();
    }
    EXPECT_EQ(total_ops, ex.flat_items.size());
    // Re-merging the flat stream must reproduce the macro sequence.
    std::vector<MicroBehavior> events;
    for (size_t i = 0; i < ex.flat_items.size(); ++i) {
      events.push_back({ex.flat_items[i], ex.flat_ops[i]});
    }
    std::vector<int64_t> items;
    std::vector<std::vector<int64_t>> ops;
    MergeSuccessive(events, &items, &ops);
    EXPECT_EQ(items, ex.macro_items);
    EXPECT_EQ(ops, ex.macro_ops);
  }
}

TEST(PreprocessTest, MinSupportDropsRareItems) {
  std::vector<Session> sessions = ManySessions(50);
  // One session with a unique rare item 99.
  sessions.push_back(MakeSession({{0, 0}, {99, 0}, {1, 0}, {2, 0}}));
  PreprocessConfig cfg = LooseConfig();
  cfg.min_item_support = 2;
  auto result = Preprocess(sessions, 3, cfg, "t");
  ASSERT_TRUE(result.ok());
  for (const auto* split :
       {&result.value().train, &result.value().valid, &result.value().test}) {
    for (const auto& ex : *split) {
      for (int64_t item : ex.flat_items) EXPECT_LT(item, 5);
      EXPECT_LT(ex.target, 5);
    }
  }
}

TEST(PreprocessTest, ItemsAreDenselyRemapped) {
  auto result = Preprocess(ManySessions(80), 3, LooseConfig(), "t");
  ASSERT_TRUE(result.ok());
  const auto& d = result.value();
  std::set<int64_t> seen;
  for (const auto& ex : d.train) {
    for (int64_t item : ex.flat_items) seen.insert(item);
    seen.insert(ex.target);
  }
  for (int64_t item : seen) {
    EXPECT_GE(item, 0);
    EXPECT_LT(item, d.num_items);
  }
}

TEST(PreprocessTest, TestItemsAllSeenInTraining) {
  // Sessions whose late portion uses items absent from early sessions.
  std::vector<Session> sessions = ManySessions(70);
  for (int i = 0; i < 30; ++i) {
    // Unseen items 100/101 mixed into otherwise-usable sessions; the
    // preprocessing must drop the unseen events but keep the session.
    const int64_t a = i % 5, b = (i + 1) % 5;
    sessions.push_back(
        MakeSession({{a, 0}, {100, 1}, {b, 0}, {101, 0}, {a, 1}}));
  }
  PreprocessConfig cfg = LooseConfig();
  auto result = Preprocess(sessions, 3, cfg, "t");
  ASSERT_TRUE(result.ok());
  const auto& d = result.value();
  for (const auto& ex : d.test) {
    for (int64_t item : ex.flat_items) EXPECT_LT(item, d.num_items);
    EXPECT_LT(ex.target, d.num_items);
  }
}

TEST(PreprocessTest, SingleMacroItemSessionsExcluded) {
  std::vector<Session> sessions = ManySessions(40);
  for (int i = 0; i < 10; ++i) {
    sessions.push_back(MakeSession({{0, 0}, {0, 1}, {0, 2}}));  // one item
  }
  auto result = Preprocess(sessions, 3, LooseConfig(), "t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().train.size() + result.value().valid.size() +
                result.value().test.size(),
            40u);
}

TEST(PreprocessTest, TruncationKeepsMostRecentEvents) {
  std::vector<Session> sessions = ManySessions(40);
  Session longs;
  for (int i = 0; i < 30; ++i) {
    longs.events.push_back({static_cast<int64_t>(i % 5), 0});
  }
  sessions.push_back(longs);
  PreprocessConfig cfg = LooseConfig();
  cfg.max_session_events = 8;
  auto result = Preprocess(sessions, 3, cfg, "t");
  ASSERT_TRUE(result.ok());
  for (const auto& ex : result.value().train) {
    EXPECT_LE(ex.flat_items.size(), 8u);
  }
}

TEST(PreprocessTest, SingleOperationRestrictionKeepsTarget) {
  std::vector<Session> with_ops;
  for (int i = 0; i < 50; ++i) {
    const int64_t a = i % 5, b = (i + 1) % 5, c = (i + 2) % 5;
    with_ops.push_back(MakeSession(
        {{a, 0}, {a, 1}, {b, 1}, {b, 0}, {c, 0}}));
  }
  PreprocessConfig cfg = LooseConfig();
  auto full = Preprocess(with_ops, 2, cfg, "full");
  cfg.restrict_macro_to_operation = 0;
  auto restricted = Preprocess(with_ops, 2, cfg, "click-only");
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(restricted.ok());
  ASSERT_EQ(full.value().train.size(), restricted.value().train.size());
  for (size_t i = 0; i < full.value().train.size(); ++i) {
    // Ground truth must be identical under the restriction (supplement).
    EXPECT_EQ(full.value().train[i].target,
              restricted.value().train[i].target);
    // All remaining operations are the restricted one.
    for (int64_t op : restricted.value().train[i].flat_ops) {
      EXPECT_EQ(op, 0);
    }
  }
}

TEST(PreprocessTest, RejectsEmptyAndBadConfig) {
  EXPECT_FALSE(Preprocess({}, 2, LooseConfig(), "x").ok());
  PreprocessConfig bad = LooseConfig();
  bad.train_fraction = 0.95;
  bad.valid_fraction = 0.1;
  EXPECT_FALSE(Preprocess(ManySessions(20), 2, bad, "x").ok());
}

TEST(PreprocessTest, TotalMicroBehaviorsCountsTargets) {
  auto result = Preprocess(ManySessions(30), 3, LooseConfig(), "t");
  ASSERT_TRUE(result.ok());
  const auto& d = result.value();
  int64_t expected = 0;
  for (const auto* split : {&d.train, &d.valid, &d.test}) {
    for (const auto& ex : *split) {
      expected += static_cast<int64_t>(ex.flat_items.size()) + 1;
    }
  }
  EXPECT_EQ(d.TotalMicroBehaviors(), expected);
}

TEST(BatchIteratorTest, CoversAllIndicesOnce) {
  Rng rng(1);
  BatchIterator it(10, 3, &rng);
  std::multiset<size_t> seen;
  while (!it.Done()) {
    auto batch = it.Next();
    EXPECT_LE(batch.size(), 3u);
    seen.insert(batch.begin(), batch.end());
  }
  EXPECT_EQ(seen.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(BatchIteratorTest, NoRngMeansSequential) {
  BatchIterator it(5, 2, nullptr);
  EXPECT_EQ(it.Next(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(it.Next(), (std::vector<size_t>{2, 3}));
  EXPECT_EQ(it.Next(), (std::vector<size_t>{4}));
  EXPECT_TRUE(it.Done());
}

}  // namespace
}  // namespace embsr
