#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace embsr {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

/// Browsing styles driving operation emission (the paper's Fig. 1 users).
enum Style { kResearcher = 0, kDirectBuyer = 1, kWindowShopper = 2 };

/// Engagement depth score of an operation list; the target is planted near
/// the item with the highest depth, so depth is the signal models must
/// recover from the operations.
double DepthScore(const std::vector<int64_t>& ops, int num_operations) {
  double d = 0.0;
  const bool jd = num_operations >= 10;
  for (int64_t op : ops) {
    if (jd) {
      switch (op) {
        case kJdReadDetail: d += 1.0; break;
        case kJdReadComments: d += 2.0; break;
        case kJdCompareList: d += 0.5; break;
        case kJdAddToCart: d += 3.0; break;
        case kJdOrder: d += 5.0; break;
        case kJdFavorite: d += 1.0; break;
        case kJdShare: d += 0.5; break;
        default: break;
      }
    } else {
      switch (op) {
        case kTrvImage: d += 1.0; break;
        case kTrvInfo: d += 1.0; break;
        case kTrvDeals: d += 2.0; break;
        case kTrvRating: d += 1.5; break;
        case kTrvClickout: d += 4.0; break;
        default: break;
      }
    }
  }
  return d;
}

std::vector<int64_t> EmitOpsJd(double affinity, Style style, Rng* rng) {
  std::vector<int64_t> ops{kJdClick};
  if (rng->Bernoulli(0.10)) ops.push_back(kJdHover);
  const bool detail = rng->Bernoulli(Clamp01(0.25 + 1.1 * affinity));
  if (detail) ops.push_back(kJdReadDetail);
  bool comments = false;
  if (style == kResearcher && detail &&
      rng->Bernoulli(Clamp01(0.3 + affinity))) {
    ops.push_back(kJdReadComments);
    comments = true;
  }
  if (rng->Bernoulli(0.12)) ops.push_back(kJdCompareList);
  if (rng->Bernoulli(0.04 + 0.10 * affinity)) ops.push_back(kJdFavorite);
  bool cart = false;
  double p_cart = Clamp01((affinity - 0.40) * 1.6);
  if (style == kResearcher && comments) p_cart = Clamp01(p_cart + 0.15);
  if (style == kWindowShopper) p_cart *= 0.3;
  if (rng->Bernoulli(p_cart)) {
    ops.push_back(kJdAddToCart);
    cart = true;
  }
  double p_order = 0.0;
  if (cart) {
    p_order = Clamp01((affinity - 0.55) * 1.8);
  } else if (style == kDirectBuyer) {
    // Direct buyers sometimes order straight from the product page,
    // giving the <click, order> dyadic pattern of the paper's Fig. 1.
    p_order = Clamp01((affinity - 0.65) * 1.5);
  }
  if (rng->Bernoulli(p_order)) ops.push_back(kJdOrder);
  if (rng->Bernoulli(0.03)) ops.push_back(kJdShare);
  return ops;
}

std::vector<int64_t> EmitOpsTrivago(double affinity, Style style, Rng* rng) {
  std::vector<int64_t> ops{kTrvImpression};
  if (rng->Bernoulli(Clamp01(0.3 + affinity))) ops.push_back(kTrvImage);
  if (style == kResearcher && rng->Bernoulli(Clamp01(0.2 + affinity))) {
    ops.push_back(kTrvRating);
  }
  if (rng->Bernoulli(Clamp01(0.15 + 0.8 * affinity))) ops.push_back(kTrvInfo);
  if (rng->Bernoulli(Clamp01((affinity - 0.35) * 1.4))) {
    ops.push_back(kTrvDeals);
  }
  double p_out = Clamp01((affinity - 0.5) * 1.6);
  if (style == kWindowShopper) p_out *= 0.3;
  if (rng->Bernoulli(p_out)) ops.push_back(kTrvClickout);
  return ops;
}

}  // namespace

GeneratorConfig JdAppliancesConfig(double scale) {
  GeneratorConfig c;
  c.name = "JD-Appliances";
  c.num_sessions = std::max(200, static_cast<int>(6000 * scale));
  c.num_categories = 12;
  c.items_per_category = 40;
  c.num_operations = 10;
  c.min_macro_len = 3;
  c.max_macro_len = 12;
  c.zipf_alpha = 1.1;
  c.revisit_prob = 0.15;
  c.drift_prob = 0.25;
  c.signal_strength = 0.85;
  c.target_repeat_prob = 0.35;
  c.accessory_target_prob = 0.55;
  c.base_affinity = 0.18;
  c.seed = 20220501;
  return c;
}

GeneratorConfig JdComputersConfig(double scale) {
  GeneratorConfig c;
  c.name = "JD-Computers";
  c.num_sessions = std::max(200, static_cast<int>(6000 * scale));
  c.num_categories = 14;
  c.items_per_category = 45;
  c.num_operations = 10;
  c.min_macro_len = 3;
  c.max_macro_len = 12;
  c.zipf_alpha = 1.0;
  c.revisit_prob = 0.12;
  c.drift_prob = 0.35;
  c.signal_strength = 0.80;
  c.target_repeat_prob = 0.25;
  c.accessory_target_prob = 0.60;
  c.base_affinity = 0.15;
  c.seed = 20220502;
  return c;
}

GeneratorConfig TrivagoConfig(double scale) {
  GeneratorConfig c;
  c.name = "Trivago";
  c.num_sessions = std::max(200, static_cast<int>(4500 * scale));
  c.num_categories = 20;
  c.items_per_category = 40;
  c.num_operations = 6;
  c.min_macro_len = 3;
  c.max_macro_len = 9;
  c.zipf_alpha = 0.9;
  c.revisit_prob = 0.0;     // hotel searches rarely loop back
  c.drift_prob = 0.30;
  c.signal_strength = 0.80;
  c.target_repeat_prob = 0.0;  // the clicked-out hotel is a *new* item
  c.accessory_target_prob = 0.45;
  c.base_affinity = 0.15;
  c.seed = 20220503;
  return c;
}

std::vector<Session> GenerateSessions(const GeneratorConfig& cfg) {
  EMBSR_CHECK_GT(cfg.num_sessions, 0);
  EMBSR_CHECK_GE(cfg.min_macro_len, 2);
  EMBSR_CHECK_GE(cfg.max_macro_len, cfg.min_macro_len);
  Rng rng(cfg.seed);
  const bool jd = cfg.num_operations >= 10;
  const std::vector<double> zipf =
      ZipfWeights(cfg.items_per_category, cfg.zipf_alpha);
  const std::vector<double> cat_pop = ZipfWeights(cfg.num_categories, 0.8);

  auto item_id = [&](int cat, int local) {
    return static_cast<int64_t>(cat) * cfg.items_per_category + local;
  };
  auto cat_of = [&](int64_t item) {
    return static_cast<int>(item / cfg.items_per_category);
  };
  auto local_of = [&](int64_t item) {
    return static_cast<int>(item % cfg.items_per_category);
  };
  auto accessory_cat = [&](int cat) { return (cat + 1) % cfg.num_categories; };

  std::vector<Session> sessions;
  sessions.reserve(cfg.num_sessions);

  for (int s = 0; s < cfg.num_sessions; ++s) {
    Session session;
    const double style_draw = rng.Uniform();
    const Style style = style_draw < 0.40   ? kResearcher
                        : style_draw < 0.75 ? kDirectBuyer
                                            : kWindowShopper;
    const int pref_cat = static_cast<int>(rng.Categorical(cat_pop));
    int cur_cat = pref_cat;
    const int macro_len = cfg.min_macro_len +
                          static_cast<int>(rng.UniformInt(
                              cfg.max_macro_len - cfg.min_macro_len + 1));

    std::vector<int64_t> visited;
    int64_t deepest_item = -1;
    double deepest_depth = -1.0;
    bool deepest_strong = false;  // cart/order (JD), deals/clickout (Trivago)
    int64_t last_item = -1;

    for (int step = 0; step < macro_len - 1; ++step) {
      int64_t item;
      if (!visited.empty() && rng.Bernoulli(cfg.revisit_prob)) {
        item = visited[rng.UniformInt(visited.size())];
      } else {
        const int local = static_cast<int>(rng.Categorical(zipf));
        item = item_id(cur_cat, local);
      }
      if (item == last_item) {
        // Avoid degenerate immediate self-transitions; shift to a neighbour.
        const int local = (local_of(item) + 1) % cfg.items_per_category;
        item = item_id(cat_of(item), local);
      }
      last_item = item;
      visited.push_back(item);

      double affinity = cfg.base_affinity +
                        (cat_of(item) == pref_cat ? 0.45 : 0.0) +
                        rng.Normal(0.0, 0.15);
      if (style == kWindowShopper) affinity *= 0.55;
      affinity = Clamp01(affinity);

      const std::vector<int64_t> ops =
          jd ? EmitOpsJd(affinity, style, &rng)
             : EmitOpsTrivago(affinity, style, &rng);
      for (int64_t op : ops) session.events.push_back({item, op});

      const double depth = DepthScore(ops, cfg.num_operations);
      if (depth > deepest_depth) {
        deepest_depth = depth;
        deepest_item = item;
        deepest_strong = false;
        for (int64_t op : ops) {
          if (jd ? (op == kJdAddToCart || op == kJdOrder)
                 : (op == kTrvDeals || op == kTrvClickout)) {
            deepest_strong = true;
          }
        }
      }

      // Operation-conditioned transition: this is what makes the next item
      // predictable *from the operations*.
      const bool ordered =
          jd && std::find(ops.begin(), ops.end(),
                          static_cast<int64_t>(kJdOrder)) != ops.end();
      const bool carted =
          jd && std::find(ops.begin(), ops.end(),
                          static_cast<int64_t>(kJdAddToCart)) != ops.end();
      if (ordered) {
        cur_cat = accessory_cat(cat_of(item));
      } else if (carted) {
        cur_cat = cat_of(item);  // keep comparing in the same category
      } else if (rng.Bernoulli(cfg.drift_prob)) {
        cur_cat = rng.Bernoulli(0.5)
                      ? pref_cat
                      : static_cast<int>(rng.UniformInt(cfg.num_categories));
      }
    }

    // Plant the ground-truth last item.
    std::unordered_set<int64_t> seen(visited.begin(), visited.end());
    int64_t target = -1;
    if (deepest_item >= 0 && rng.Bernoulli(cfg.signal_strength)) {
      if (deepest_strong && rng.Bernoulli(cfg.accessory_target_prob)) {
        // Strong intent resolved: the user moves on to the accessory
        // category, at a position mirroring the deepest item. Only the
        // operations reveal that a session takes this branch.
        const int acat = accessory_cat(cat_of(deepest_item));
        for (int attempt = 0; attempt < 8 && target < 0; ++attempt) {
          int local = local_of(deepest_item) +
                      static_cast<int>(rng.UniformInt(4)) - 1;
          local = std::max(0, std::min(cfg.items_per_category - 1, local));
          const int64_t cand = item_id(acat, local);
          if (cfg.target_repeat_prob == 0.0 && seen.contains(cand)) continue;
          target = cand;
        }
      } else if (rng.Bernoulli(cfg.target_repeat_prob)) {
        target = deepest_item;
      } else {
        // A similar item: same category, neighbouring id (possibly unseen).
        // The browsing style fixes the direction (researchers trade down,
        // direct buyers trade up) — another operation-visible signal.
        const int cat = cat_of(deepest_item);
        const int dir = style == kResearcher ? -1 : 1;
        for (int attempt = 0; attempt < 8 && target < 0; ++attempt) {
          const int delta = dir * (1 + static_cast<int>(rng.UniformInt(3)));
          int local = local_of(deepest_item) + delta;
          local = std::max(0, std::min(cfg.items_per_category - 1, local));
          const int64_t cand = item_id(cat, local);
          if (cand == deepest_item) continue;
          if (cfg.target_repeat_prob == 0.0 && seen.contains(cand)) continue;
          target = cand;
        }
      }
    }
    if (target < 0) {
      // Popularity fallback within the preferred category.
      for (int attempt = 0; attempt < 8 && target < 0; ++attempt) {
        const int local = static_cast<int>(rng.Categorical(zipf));
        const int64_t cand = item_id(pref_cat, local);
        if (cfg.target_repeat_prob == 0.0 && seen.contains(cand)) continue;
        if (cand == last_item) continue;
        target = cand;
      }
      if (target < 0) target = item_id(pref_cat, 0);
    }
    if (target == last_item) {
      // Merging would fold the target into the last input item; nudge it.
      const int local = (local_of(target) + 1) % cfg.items_per_category;
      target = item_id(cat_of(target), local);
    }
    if (cfg.target_repeat_prob == 0.0) {
      // No-repeat datasets (Trivago): the fallback paths above may still
      // have landed on a visited item; walk the category until unseen.
      for (int step = 1; step < cfg.items_per_category &&
                         (seen.contains(target) || target == last_item);
           ++step) {
        const int local = (local_of(target) + 1) % cfg.items_per_category;
        target = item_id(cat_of(target), local);
      }
    }

    // The target item's own (withheld) micro-behaviors.
    session.events.push_back({target, jd ? static_cast<int64_t>(kJdClick)
                                         : static_cast<int64_t>(kTrvImpression)});
    if (rng.Bernoulli(0.5)) {
      session.events.push_back(
          {target, jd ? static_cast<int64_t>(kJdReadDetail)
                      : static_cast<int64_t>(kTrvInfo)});
    }
    sessions.push_back(std::move(session));
  }
  return sessions;
}

PreprocessConfig PreprocessConfigFor(const GeneratorConfig& cfg) {
  PreprocessConfig p;
  const double sessions_scale = cfg.num_sessions / 4000.0;
  const bool jd = cfg.num_operations >= 10;
  p.min_item_support =
      std::max(2, static_cast<int>((jd ? 8 : 4) * sessions_scale));
  p.max_session_events = 60;
  p.shuffle = true;
  p.shuffle_seed = cfg.seed ^ 0x5bd1e995;
  return p;
}

Result<ProcessedDataset> MakeDataset(const GeneratorConfig& config) {
  EMBSR_TIMED_SPAN("datagen/make_dataset", "datagen/make_dataset_ms");
  static obs::Counter* session_counter =
      obs::Registry::Global().GetCounter("datagen/sessions");
  session_counter->Add(config.num_sessions);
  return Preprocess(GenerateSessions(config), config.num_operations,
                    PreprocessConfigFor(config), config.name);
}

Result<ProcessedDataset> MakeDatasetSingleOp(const GeneratorConfig& config,
                                             int64_t operation) {
  EMBSR_TIMED_SPAN("datagen/make_dataset", "datagen/make_dataset_ms");
  static obs::Counter* session_counter =
      obs::Registry::Global().GetCounter("datagen/sessions");
  session_counter->Add(config.num_sessions);
  PreprocessConfig p = PreprocessConfigFor(config);
  p.restrict_macro_to_operation = operation;
  return Preprocess(GenerateSessions(config), config.num_operations, p,
                    config.name + "-single-op");
}

}  // namespace embsr
