#ifndef EMBSR_DATAGEN_GENERATOR_H_
#define EMBSR_DATAGEN_GENERATOR_H_

#include <string>
#include <vector>

#include "data/preprocess.h"
#include "data/session.h"
#include "util/rng.h"

namespace embsr {

/// Configuration of the synthetic micro-behavior session simulator.
///
/// The simulator stands in for the paper's proprietary JD.com and Trivago
/// logs. Its design goal is not realism per se but *planting the signal the
/// paper studies*: the next item depends on the user's micro-operations
/// (engagement depth, add-to-cart/order events), so models that decode
/// operations can out-predict models that only see the item sequence.
///
/// World model:
///  - Items live in contiguous categories; popularity is Zipf within each
///    category. Neighbouring item ids inside a category are "similar items"
///    (e.g. the same mouse pad in three sizes, as in the paper's Fig. 7).
///  - A user has a preferred category, a browsing style (researcher /
///    direct buyer / window shopper) and a per-item affinity. Style and
///    affinity drive which operations are emitted on each item via an
///    engagement ladder (click -> detail -> comments -> cart -> order).
///  - Transitions react to operations: an order jumps to the accessory
///    category, a cart keeps comparing similar items, shallow clicks drift.
///  - The ground-truth last item is drawn near the most deeply engaged item
///    with probability `signal_strength` (and may be that very item with
///    probability `target_repeat_prob`), otherwise from the preferred
///    category's popularity. Trivago-style presets set target_repeat_prob
///    to ~0 and forbid revisits, reproducing the paper's observation that
///    S-POP scores zero there.
struct GeneratorConfig {
  std::string name = "synthetic";
  int num_sessions = 4000;
  int num_categories = 10;
  int items_per_category = 40;
  /// Operation vocabulary size: 10 for the JD presets, 6 for Trivago.
  int num_operations = 10;
  /// Macro-item session length range (before preprocessing).
  int min_macro_len = 3;
  int max_macro_len = 12;
  /// Zipf exponent for item popularity within a category.
  double zipf_alpha = 1.1;
  /// Probability that a macro step revisits an earlier item of the session.
  double revisit_prob = 0.15;
  /// Probability that a shallow engagement switches category.
  double drift_prob = 0.25;
  /// Probability that the target is tied to the deepest-engaged item
  /// (the micro-behavior signal); else it is a popularity draw.
  double signal_strength = 0.85;
  /// Probability that the signal-following target is *exactly* the deepest
  /// item (repeat purchase); JD-like presets > 0, Trivago-like ~ 0.
  double target_repeat_prob = 0.5;
  /// When the deepest engagement showed *strong intent* (add-to-cart/order,
  /// or deals/click-out for Trivago), probability that the target jumps to
  /// the accessory category instead of staying near the deepest item. This
  /// branch is what defeats pure item-co-occurrence methods: sessions with
  /// the same items split between two far-apart targets, and only the
  /// operations reveal which branch a session is on.
  double accessory_target_prob = 0.35;
  /// Base engagement level added to every item visit.
  double base_affinity = 0.15;
  uint64_t seed = 42;

  int num_items() const { return num_categories * items_per_category; }
};

/// Operation ids used by the JD-style engagement ladder (10 operations).
enum JdOperation : int64_t {
  kJdClick = 0,
  kJdReadDetail = 1,
  kJdReadComments = 2,
  kJdCompareList = 3,
  kJdAddToCart = 4,
  kJdOrder = 5,
  kJdFavorite = 6,
  kJdShare = 7,
  kJdBrowseFilter = 8,
  kJdHover = 9,
};

/// Operation ids used by the Trivago-style ladder (6 operations).
enum TrivagoOperation : int64_t {
  kTrvImpression = 0,
  kTrvImage = 1,
  kTrvInfo = 2,
  kTrvDeals = 3,
  kTrvRating = 4,
  kTrvClickout = 5,
};

/// Dataset presets mirroring the paper's three datasets, scaled for CPU.
/// `scale` multiplies the session count (1.0 = repo default size).
GeneratorConfig JdAppliancesConfig(double scale = 1.0);
GeneratorConfig JdComputersConfig(double scale = 1.0);
GeneratorConfig TrivagoConfig(double scale = 1.0);

/// Generates raw sessions from the config's generative model.
std::vector<Session> GenerateSessions(const GeneratorConfig& config);

/// Preprocessing settings matched to each preset's scale.
PreprocessConfig PreprocessConfigFor(const GeneratorConfig& config);

/// Convenience: generate + preprocess in one call.
Result<ProcessedDataset> MakeDataset(const GeneratorConfig& config);

/// Convenience: generate + preprocess with the macro sequence restricted to
/// a single operation type (the supplement's protocol).
Result<ProcessedDataset> MakeDatasetSingleOp(const GeneratorConfig& config,
                                             int64_t operation);

}  // namespace embsr

#endif  // EMBSR_DATAGEN_GENERATOR_H_
