#ifndef EMBSR_MODELS_NEURAL_MODEL_H_
#define EMBSR_MODELS_NEURAL_MODEL_H_

#include <string>
#include <vector>

#include "autograd/ops.h"
#include "models/recommender.h"
#include "models/session_batch.h"
#include "nn/module.h"
#include "util/rng.h"

namespace embsr {

/// Base class for all gradient-trained session recommenders.
///
/// Subclasses implement Logits(example) -> [1, num_items]; the base provides
/// the training loop (Adam, step-decay LR, gradient accumulation over
/// mini-batches, global-norm clipping, best-on-validation checkpointing)
/// and inference-mode scoring. Forward passes are per-session (the graphs
/// differ per session), with gradients accumulated across the mini-batch —
/// mathematically identical to batched training with mean loss.
class NeuralSessionModel : public Recommender, public nn::Module {
 public:
  NeuralSessionModel(std::string name, int64_t num_items,
                     int64_t num_operations, const TrainConfig& config);

  std::string name() const override { return name_; }

  Status Fit(const ProcessedDataset& data) override;

  std::vector<float> ScoreAll(const Example& ex) override;

  /// Drops the module tree into eval mode (training() == false), after which
  /// ScoreAll is a pure read of parameters and safe to call concurrently.
  void EnsureEvalMode() override { SetTraining(false); }

  /// Differentiable training loss on one example: softmax cross-entropy of
  /// Logits(ex) against the example's target. This is exactly the per-example
  /// term the training loop optimizes; it is public so external verifiers
  /// (src/verify gradcheck) can check d(loss)/d(parameters) end-to-end.
  ag::Variable LossOn(const Example& ex);

  /// Differentiable *mean* loss over a collated forward-batch: softmax
  /// cross-entropy of BatchedLogits against the batch's targets, averaged
  /// over its sessions. Scale(BatchedLossOn(b), b.batch / batch_size) backs
  /// the same accumulated gradient the per-example loop produces. Public
  /// for the same verifier reason as LossOn.
  ag::Variable BatchedLossOn(const SessionBatch& batch);

  /// Scores every session of `examples` through one batched forward
  /// (eval-mode logits, row per session). In eval mode this is read-only
  /// like ScoreAll, so evaluator threads may score disjoint batches
  /// concurrently.
  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<const Example*>& examples);

  const TrainConfig& config() const { return cfg_; }
  int64_t num_items() const { return num_items_; }
  int64_t num_operations() const { return num_operations_; }

 protected:
  /// Unnormalized scores over all items for one example, differentiable.
  virtual ag::Variable Logits(const Example& ex) = 0;

  /// Unnormalized scores [batch, num_items] for a collated batch,
  /// differentiable. The default stacks per-session Logits rows — correct
  /// for every model, so the batched trainer/evaluator work zoo-wide —
  /// while models with genuinely batched kernels (GRU4Rec, STAMP, EMBSR)
  /// override it. Overrides must return row i bit-identical to
  /// Logits(*batch.examples[i]) when batch.batch == 1 (tests/
  /// batch_equiv_test.cc holds them to it).
  virtual ag::Variable BatchedLogits(const SessionBatch& batch);

  Rng* rng() { return &rng_; }

 private:
  /// Mean reciprocal rank @20 on a split, in inference mode.
  double ValidationMrr(const std::vector<Example>& split, size_t cap);

  std::vector<Tensor> SnapshotParameters() const;
  void RestoreParameters(const std::vector<Tensor>& snapshot);

  std::string name_;
  int64_t num_items_;
  int64_t num_operations_;
  TrainConfig cfg_;
  Rng rng_;
};

}  // namespace embsr

#endif  // EMBSR_MODELS_NEURAL_MODEL_H_
