#include "models/components.h"

#include <cmath>

#include "prof/op_profiler.h"
#include "util/check.h"

namespace embsr {

using ag::Variable;

GgnnLayer::GgnnLayer(int64_t dim, Rng* rng)
    : in_proj_(dim, dim, rng), out_proj_(dim, dim, rng) {
  RegisterModule("in_proj", &in_proj_);
  RegisterModule("out_proj", &out_proj_);
  const float b = nn::InitBound(dim);
  auto mk = [&](const char* name, int64_t r, int64_t c) {
    return RegisterParameter(name, Tensor::RandUniform({r, c}, -b, b, rng));
  };
  w_z_ = mk("w_z", 2 * dim, dim);
  u_z_ = mk("u_z", dim, dim);
  w_r_ = mk("w_r", 2 * dim, dim);
  u_r_ = mk("u_r", dim, dim);
  w_h_ = mk("w_h", 2 * dim, dim);
  u_h_ = mk("u_h", dim, dim);
}

Variable GgnnLayer::Forward(const Variable& h, const Tensor& a_in,
                            const Tensor& a_out) const {
  using namespace ag;  // NOLINT
  prof::ComponentScope prof_component("ggnn");
  Variable m_in = MatMul(Constant(a_in), in_proj_.Forward(h));
  Variable m_out = MatMul(Constant(a_out), out_proj_.Forward(h));
  Variable a = ConcatCols(m_in, m_out);  // [n, 2d]
  Variable z = Sigmoid(Add(MatMul(a, w_z_), MatMul(h, u_z_)));
  Variable r = Sigmoid(Add(MatMul(a, w_r_), MatMul(h, u_r_)));
  Variable cand = Tanh(Add(MatMul(a, w_h_), MatMul(Mul(r, h), u_h_)));
  Variable one_minus_z = AddScalar(Neg(z), 1.0f);
  return Add(Mul(one_minus_z, h), Mul(z, cand));
}

SoftAttentionReadout::SoftAttentionReadout(int64_t dim, Rng* rng)
    : w1_(dim, dim, rng, /*bias=*/false),
      w2_(dim, dim, rng, /*bias=*/true),
      w3_(2 * dim, dim, rng, /*bias=*/false) {
  RegisterModule("w1", &w1_);
  RegisterModule("w2", &w2_);
  RegisterModule("w3", &w3_);
  const float b = nn::InitBound(dim);
  q_ = RegisterParameter("q", Tensor::RandUniform({dim, 1}, -b, b, rng));
}

Variable SoftAttentionReadout::Forward(const Variable& seq) const {
  using namespace ag;  // NOLINT
  prof::ComponentScope prof_component("attention_readout");
  const int64_t t = seq.value().dim(0);
  Variable h_last = Row(seq, t - 1);
  Variable query = RepeatRow(w1_.Forward(h_last), t);
  Variable keys = w2_.Forward(seq);
  Variable alpha = MatMul(Sigmoid(Add(query, keys)), q_);  // [t, 1]
  Variable s_g = MatMul(Transpose(alpha), seq);            // [1, d]
  return w3_.Forward(ConcatCols(h_last, s_g));
}

SelfAttentionBlock::SelfAttentionBlock(int64_t dim, Rng* rng, float dropout)
    : wq_(dim, dim, rng, /*bias=*/false),
      wk_(dim, dim, rng, /*bias=*/false),
      wv_(dim, dim, rng, /*bias=*/false),
      ffn_(dim, dim, rng),
      ln1_(dim),
      ln2_(dim),
      dropout_(dropout) {
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("ffn", &ffn_);
  RegisterModule("ln1", &ln1_);
  RegisterModule("ln2", &ln2_);
}

Variable SelfAttentionBlock::Forward(const Variable& x, const Tensor& mask,
                                     bool training, Rng* dropout_rng) const {
  using namespace ag;  // NOLINT
  prof::ComponentScope prof_component("self_attention");
  const int64_t d = x.value().dim(1);
  Variable q = wq_.Forward(x);
  Variable k = wk_.Forward(x);
  Variable v = wv_.Forward(x);
  Variable scores =
      Scale(MatMul(q, Transpose(k)), 1.0f / std::sqrt(static_cast<float>(d)));
  Variable alpha = RowSoftmaxMasked(scores, mask);
  Variable attn = MatMul(alpha, v);
  attn = Dropout(attn, dropout_, training, dropout_rng);
  Variable h = ln1_.Forward(Add(x, attn));
  Variable f = Dropout(ffn_.Forward(h), dropout_, training, dropout_rng);
  return ln2_.Forward(Add(h, f));
}

int64_t ClampPosition(int64_t pos, int64_t max_positions) {
  EMBSR_CHECK_GT(max_positions, 0);
  return pos < max_positions ? pos : max_positions - 1;
}

}  // namespace embsr
