#ifndef EMBSR_MODELS_BASELINES_NONNEURAL_H_
#define EMBSR_MODELS_BASELINES_NONNEURAL_H_

#include <cstdint>
#include <vector>

#include "models/recommender.h"

namespace embsr {

/// S-POP: recommends the most popular items *within the current session*,
/// breaking ties by global training popularity (Hidasi et al. 2016's
/// session-popularity baseline). Scores zero-session items by a small
/// global-popularity epsilon so the full ranking is defined.
class SPop : public Recommender {
 public:
  explicit SPop(int64_t num_items) : num_items_(num_items) {}

  std::string name() const override { return "S-POP"; }
  Status Fit(const ProcessedDataset& data) override;
  std::vector<float> ScoreAll(const Example& ex) override;

 private:
  int64_t num_items_;
  std::vector<float> global_pop_;  // normalized to (0, 0.5]
};

/// SKNN: session-based k-nearest neighbours (Jannach & Ludewig 2017).
/// Neighbour sessions are training sessions sharing at least one item with
/// the current one; similarity is cosine over binary item sets; an item's
/// score is the similarity-weighted count over the top-k neighbours.
class Sknn : public Recommender {
 public:
  Sknn(int64_t num_items, int k = 100, size_t max_candidates = 1000)
      : num_items_(num_items), k_(k), max_candidates_(max_candidates) {}

  std::string name() const override { return "SKNN"; }
  Status Fit(const ProcessedDataset& data) override;
  std::vector<float> ScoreAll(const Example& ex) override;

 private:
  int64_t num_items_;
  int k_;
  size_t max_candidates_;
  /// One entry per training session: its full item set (input + target).
  std::vector<std::vector<int64_t>> session_items_;
  /// item -> indices of sessions containing it (inverted index).
  std::vector<std::vector<int32_t>> item_to_sessions_;
};

}  // namespace embsr

#endif  // EMBSR_MODELS_BASELINES_NONNEURAL_H_
