#include "models/session_batch.h"

#include <algorithm>

#include "util/check.h"
#include "util/env.h"

namespace embsr {

SessionBatch CollateSessions(const std::vector<const Example*>& examples,
                             int64_t max_positions) {
  EMBSR_CHECK(!examples.empty());
  EMBSR_CHECK_GT(max_positions, 0);
  SessionBatch b;
  b.batch = static_cast<int64_t>(examples.size());
  b.examples = examples;

  b.lengths.reserve(examples.size());
  b.targets.reserve(examples.size());
  for (const Example* ex : examples) {
    EMBSR_CHECK(ex != nullptr);
    EMBSR_CHECK(!ex->macro_items.empty());
    const int64_t len = std::min(
        static_cast<int64_t>(ex->macro_items.size()), max_positions);
    b.lengths.push_back(len);
    b.targets.push_back(ex->target);
    b.max_len = std::max(b.max_len, len);
  }

  // Padded time-major layout, right-aligned: session bi occupies steps
  // [T - len, T) so its last real item is always at step T - 1.
  const int64_t t_steps = b.max_len;
  b.time_major_items.assign(
      static_cast<size_t>(t_steps * b.batch), 0);
  b.step_masks.reserve(static_cast<size_t>(t_steps));
  b.step_all_valid.reserve(static_cast<size_t>(t_steps));
  for (int64_t t = 0; t < t_steps; ++t) {
    Tensor mask({b.batch, 1});
    bool all_valid = true;
    for (int64_t bi = 0; bi < b.batch; ++bi) {
      const Example& ex = *examples[static_cast<size_t>(bi)];
      const int64_t len = b.lengths[static_cast<size_t>(bi)];
      const int64_t start = t_steps - len;  // first live step
      if (t >= start) {
        // Most recent `len` macro items, i.e. the Tail() the per-session
        // forwards take.
        const size_t pos = ex.macro_items.size() -
                           static_cast<size_t>(len) +
                           static_cast<size_t>(t - start);
        b.time_major_items[static_cast<size_t>(t * b.batch + bi)] =
            ex.macro_items[pos];
        mask.data()[bi] = 1.0f;
      } else {
        all_valid = false;
      }
    }
    b.step_masks.push_back(std::move(mask));
    b.step_all_valid.push_back(all_valid ? 1 : 0);
  }

  // Session-major flat layout: truncated sessions back to back.
  int64_t total = 0;
  for (int64_t len : b.lengths) total += len;
  b.flat_items.reserve(static_cast<size_t>(total));
  b.segment_ids.reserve(static_cast<size_t>(total));
  b.last_row_index.reserve(examples.size());
  b.inv_len_col = Tensor({b.batch, 1});
  for (int64_t bi = 0; bi < b.batch; ++bi) {
    const Example& ex = *examples[static_cast<size_t>(bi)];
    const int64_t len = b.lengths[static_cast<size_t>(bi)];
    const size_t first = ex.macro_items.size() - static_cast<size_t>(len);
    for (int64_t p = 0; p < len; ++p) {
      b.flat_items.push_back(ex.macro_items[first + static_cast<size_t>(p)]);
      b.segment_ids.push_back(bi);
    }
    b.last_row_index.push_back(
        static_cast<int64_t>(b.flat_items.size()) - 1);
    // 1.0f / (float)len is exactly the factor MeanRowsTo1xD scales by, so
    // the batched mean matches the per-session one bit for bit.
    b.inv_len_col.data()[bi] = 1.0f / static_cast<float>(len);
  }
  return b;
}

int ForwardBatchSizeFromEnv() {
  return std::max(1, GetEnvInt("EMBSR_BATCH_SIZE", 1));
}

}  // namespace embsr
