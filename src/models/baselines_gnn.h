#ifndef EMBSR_MODELS_BASELINES_GNN_H_
#define EMBSR_MODELS_BASELINES_GNN_H_

#include <memory>
#include <vector>

#include "models/components.h"
#include "models/neural_model.h"

namespace embsr {

/// SR-GNN (Wu et al. 2019): gated GNN over the collapsed session graph with
/// a soft-attention readout against the last item.
class SrGnn : public NeuralSessionModel {
 public:
  SrGnn(int64_t num_items, int64_t num_operations, const TrainConfig& cfg);

 protected:
  ag::Variable Logits(const Example& ex) override;

 private:
  nn::Embedding items_;
  GgnnLayer ggnn_;
  SoftAttentionReadout readout_;
};

/// GC-SAN (Xu et al. 2019): SR-GNN's gated GNN followed by self-attention
/// blocks; the session embedding mixes the attention output with the last
/// item state (weight omega as in the paper).
class GcSan : public NeuralSessionModel {
 public:
  GcSan(int64_t num_items, int64_t num_operations, const TrainConfig& cfg,
        int num_attention_layers = 1, float omega = 0.6f);

 protected:
  ag::Variable Logits(const Example& ex) override;

 private:
  nn::Embedding items_;
  GgnnLayer ggnn_;
  std::vector<std::unique_ptr<SelfAttentionBlock>> blocks_;
  float omega_;
};

/// MKM-SR (Meng et al. 2020), without the knowledge-graph auxiliary task
/// (the variant the paper compares against): gated GNN for the item
/// sequence, a GRU over the flat operation sequence, and a session
/// representation formed from both.
class MkmSr : public NeuralSessionModel {
 public:
  MkmSr(int64_t num_items, int64_t num_operations, const TrainConfig& cfg);

 protected:
  ag::Variable Logits(const Example& ex) override;

 private:
  nn::Embedding items_;
  nn::Embedding ops_;
  GgnnLayer ggnn_;
  nn::GRU op_gru_;
  SoftAttentionReadout readout_;
  nn::Linear combine_;
};

/// SGNN-HN (Pan et al. 2020): star graph neural network with highway
/// networks. A star node connected to every satellite propagates long-range
/// information; a highway gate mixes pre-/post-GNN embeddings; readout is
/// position-aware attention; scoring uses NISER-style L2 normalization with
/// scale factor w_k.
class SgnnHn : public NeuralSessionModel {
 public:
  SgnnHn(int64_t num_items, int64_t num_operations, const TrainConfig& cfg,
         int num_layers = 1, float wk = 12.0f);

 protected:
  ag::Variable Logits(const Example& ex) override;

 private:
  friend class SgnnHnStarTest;

  nn::Embedding items_;
  nn::Embedding positions_;
  GgnnLayer ggnn_;
  ag::Variable wq1_, wk1_, wq2_, wk2_;  // star gating / update projections
  nn::Linear highway_;
  nn::Linear att_w1_;
  nn::Linear att_w2_;
  nn::Linear att_w3_;
  ag::Variable att_q_;
  nn::Linear combine_;
  int num_layers_;
  float wk_;
};

}  // namespace embsr

#endif  // EMBSR_MODELS_BASELINES_GNN_H_
