#include "models/baselines_nonneural.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace embsr {

Status SPop::Fit(const ProcessedDataset& data) {
  std::vector<int64_t> counts(num_items_, 0);
  int64_t max_count = 0;
  for (const auto& ex : data.train) {
    for (int64_t item : ex.macro_items) {
      EMBSR_CHECK_LT(item, num_items_);
      max_count = std::max(max_count, ++counts[item]);
    }
    max_count = std::max(max_count, ++counts[ex.target]);
  }
  global_pop_.assign(num_items_, 0.0f);
  if (max_count > 0) {
    for (int64_t i = 0; i < num_items_; ++i) {
      global_pop_[i] =
          0.5f * static_cast<float>(counts[i]) / static_cast<float>(max_count);
    }
  }
  return Status::OK();
}

std::vector<float> SPop::ScoreAll(const Example& ex) {
  std::vector<float> scores = global_pop_;
  for (int64_t item : ex.macro_items) {
    if (item >= 0 && item < num_items_) scores[item] += 1.0f;
  }
  return scores;
}

Status Sknn::Fit(const ProcessedDataset& data) {
  session_items_.clear();
  item_to_sessions_.assign(num_items_, {});
  session_items_.reserve(data.train.size());
  for (const auto& ex : data.train) {
    std::unordered_set<int64_t> set(ex.macro_items.begin(),
                                    ex.macro_items.end());
    set.insert(ex.target);
    std::vector<int64_t> items(set.begin(), set.end());
    std::sort(items.begin(), items.end());
    const int32_t sid = static_cast<int32_t>(session_items_.size());
    for (int64_t item : items) {
      EMBSR_CHECK_LT(item, num_items_);
      item_to_sessions_[item].push_back(sid);
    }
    session_items_.push_back(std::move(items));
  }
  return Status::OK();
}

std::vector<float> Sknn::ScoreAll(const Example& ex) {
  std::vector<float> scores(num_items_, 0.0f);
  std::unordered_set<int64_t> current(ex.macro_items.begin(),
                                      ex.macro_items.end());
  if (current.empty()) return scores;

  // Count shared items with candidate neighbour sessions.
  std::unordered_map<int32_t, int> overlap;
  for (int64_t item : current) {
    const auto& sessions = item_to_sessions_[item];
    // For very popular items, cap the scanned postings for speed.
    const size_t limit = std::min(sessions.size(), max_candidates_);
    for (size_t i = 0; i < limit; ++i) ++overlap[sessions[i]];
  }
  if (overlap.empty()) return scores;

  struct Neighbour {
    int32_t sid;
    float sim;
  };
  std::vector<Neighbour> neighbours;
  neighbours.reserve(overlap.size());
  const double cur_size = static_cast<double>(current.size());
  for (const auto& [sid, shared] : overlap) {
    const double sim =
        shared / std::sqrt(cur_size *
                           static_cast<double>(session_items_[sid].size()));
    neighbours.push_back({sid, static_cast<float>(sim)});
  }
  const size_t k = std::min<size_t>(k_, neighbours.size());
  std::partial_sort(neighbours.begin(), neighbours.begin() + k,
                    neighbours.end(), [](const Neighbour& a,
                                         const Neighbour& b) {
                      return a.sim > b.sim;
                    });
  for (size_t i = 0; i < k; ++i) {
    for (int64_t item : session_items_[neighbours[i].sid]) {
      scores[item] += neighbours[i].sim;
    }
  }
  return scores;
}

}  // namespace embsr
