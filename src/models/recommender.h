#ifndef EMBSR_MODELS_RECOMMENDER_H_
#define EMBSR_MODELS_RECOMMENDER_H_

#include <string>
#include <vector>

#include "data/session.h"
#include "util/status.h"

namespace embsr {

/// Training hyperparameters shared by all neural models (the paper's
/// Sec. V-A-4 setup, scaled for CPU).
struct TrainConfig {
  int epochs = 5;
  int batch_size = 64;
  float lr = 0.003f;
  /// Step decay: lr *= gamma every `lr_decay_step` epochs.
  float lr_decay_gamma = 0.5f;
  int lr_decay_step = 3;
  float weight_decay = 1e-5f;
  float clip_norm = 5.0f;
  float dropout = 0.2f;
  int64_t embedding_dim = 32;
  /// Longest flat micro-behavior sequence fed to attention models.
  int max_positions = 64;
  uint64_t seed = 7;
  bool verbose = false;
  /// If > 0, subsample the training split to at most this many examples.
  int max_train_examples = 0;
  /// If > 0, evaluate on the validation split every epoch and restore the
  /// best parameters at the end (by MRR@20); 0 disables.
  int validate_every = 1;
};

/// A session-based recommender: anything that can be fit on a processed
/// dataset and then score every candidate item for a session prefix.
class Recommender {
 public:
  virtual ~Recommender() = default;

  virtual std::string name() const = 0;

  /// Trains (or indexes) the model on `data.train` (+ `data.valid`).
  virtual Status Fit(const ProcessedDataset& data) = 0;

  /// Scores all items for one example; the returned vector has
  /// `num_items` entries, higher = more likely next item.
  ///
  /// Thread-safety contract: after EnsureEvalMode() returns, concurrent
  /// ScoreAll calls from multiple threads must be safe — the evaluator
  /// fans examples out across the par:: pool. In practice this means the
  /// scoring path must be read-only on model state.
  virtual std::vector<float> ScoreAll(const Example& ex) = 0;

  /// Pins the model into evaluation mode so that subsequent ScoreAll calls
  /// mutate no shared state (see the contract above). Called once by the
  /// evaluator before its parallel scoring loop. Default: no-op, which is
  /// correct for stateless/baseline scorers.
  virtual void EnsureEvalMode() {}
};

}  // namespace embsr

#endif  // EMBSR_MODELS_RECOMMENDER_H_
