#include "models/baselines_seq.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace embsr {

using ag::Variable;

namespace {

/// Truncates a sequence to its most recent `max_len` entries.
template <typename T>
std::vector<T> Tail(const std::vector<T>& v, size_t max_len) {
  if (v.size() <= max_len) return v;
  return std::vector<T>(v.end() - max_len, v.end());
}

}  // namespace

// -- NARM ----------------------------------------------------------------------

Narm::Narm(int64_t num_items, int64_t num_operations, const TrainConfig& cfg)
    : NeuralSessionModel("NARM", num_items, num_operations, cfg),
      items_(num_items, cfg.embedding_dim, rng()),
      gru_(cfg.embedding_dim, cfg.embedding_dim, rng()),
      a1_(cfg.embedding_dim, cfg.embedding_dim, rng(), /*bias=*/false),
      a2_(cfg.embedding_dim, cfg.embedding_dim, rng(), /*bias=*/false),
      decode_(2 * cfg.embedding_dim, cfg.embedding_dim, rng(),
              /*bias=*/false) {
  RegisterModule("items", &items_);
  RegisterModule("gru", &gru_);
  RegisterModule("a1", &a1_);
  RegisterModule("a2", &a2_);
  RegisterModule("decode", &decode_);
  const float b = nn::InitBound(cfg.embedding_dim);
  v_ = RegisterParameter("v",
                         Tensor::RandUniform({cfg.embedding_dim, 1}, -b, b,
                                             rng()));
}

Variable Narm::Logits(const Example& ex) {
  EMBSR_TIMED_SPAN("narm/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  const auto seq = Tail(ex.macro_items, config().max_positions);
  Variable x = items_.Forward(seq);
  x = Dropout(x, config().dropout, training(), rng());
  Variable h = gru_.Forward(x);  // [t, d]
  const int64_t t = h.value().dim(0);
  Variable h_t = Row(h, t - 1);
  Variable att = MatMul(
      Sigmoid(Add(RepeatRow(a1_.Forward(h_t), t), a2_.Forward(h))), v_);
  Variable c_local = MatMul(Transpose(att), h);  // [1, d]
  Variable c = ConcatCols(h_t, c_local);
  c = Dropout(c, config().dropout, training(), rng());
  Variable rep = decode_.Forward(c);
  return MatMul(rep, Transpose(items_.table()));
}

// -- STAMP ----------------------------------------------------------------------

Stamp::Stamp(int64_t num_items, int64_t num_operations,
             const TrainConfig& cfg)
    : NeuralSessionModel("STAMP", num_items, num_operations, cfg),
      items_(num_items, cfg.embedding_dim, rng()),
      w1_(cfg.embedding_dim, cfg.embedding_dim, rng(), /*bias=*/false),
      w2_(cfg.embedding_dim, cfg.embedding_dim, rng(), /*bias=*/false),
      w3_(cfg.embedding_dim, cfg.embedding_dim, rng(), /*bias=*/false),
      mlp_s_(cfg.embedding_dim, cfg.embedding_dim, rng()),
      mlp_t_(cfg.embedding_dim, cfg.embedding_dim, rng()) {
  RegisterModule("items", &items_);
  RegisterModule("w1", &w1_);
  RegisterModule("w2", &w2_);
  RegisterModule("w3", &w3_);
  RegisterModule("mlp_s", &mlp_s_);
  RegisterModule("mlp_t", &mlp_t_);
  const float b = nn::InitBound(cfg.embedding_dim);
  w0_ = RegisterParameter(
      "w0", Tensor::RandUniform({cfg.embedding_dim, 1}, -b, b, rng()));
  ba_ = RegisterParameter(
      "ba", Tensor::Zeros({1, cfg.embedding_dim}));
}

Variable Stamp::Logits(const Example& ex) {
  EMBSR_TIMED_SPAN("stamp/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  const auto seq = Tail(ex.macro_items, config().max_positions);
  Variable x = items_.Forward(seq);
  x = Dropout(x, config().dropout, training(), rng());
  const int64_t t = x.value().dim(0);
  Variable x_t = Row(x, t - 1);
  Variable m_s = MeanRowsTo1xD(x);
  Variable pre = AddRowBroadcast(
      Add(w1_.Forward(x),
          Add(RepeatRow(w2_.Forward(x_t), t), RepeatRow(w3_.Forward(m_s), t))),
      ba_);
  Variable att = MatMul(Sigmoid(pre), w0_);   // [t, 1]
  Variable m_a = MatMul(Transpose(att), x);   // [1, d]
  Variable h_s = Tanh(mlp_s_.Forward(m_a));
  Variable h_t = Tanh(mlp_t_.Forward(x_t));
  Variable rep = Mul(h_s, h_t);
  return MatMul(rep, Transpose(items_.table()));
}

Variable Stamp::BatchedLogits(const SessionBatch& batch) {
  EMBSR_TIMED_SPAN("stamp/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  Variable x = items_.Forward(batch.flat_items);  // [N, d], no padding
  x = Dropout(x, config().dropout, training(), rng());
  Variable x_t = GatherRows(x, batch.last_row_index);  // [B, d]
  // Per-session mean: segment sums accumulate each session's contiguous
  // rows in the same ascending order SumRowsTo1xD takes, and the 1/len
  // column is the exact factor MeanRowsTo1xD scales by.
  Variable m_s = MulColBroadcast(
      SegmentSumRows(x, batch.segment_ids, batch.batch),
      Constant(batch.inv_len_col));  // [B, d]
  // The legacy RepeatRow-to-session-length broadcasts become row gathers
  // through segment_ids.
  Variable pre = AddRowBroadcast(
      Add(w1_.Forward(x),
          Add(GatherRows(w2_.Forward(x_t), batch.segment_ids),
              GatherRows(w3_.Forward(m_s), batch.segment_ids))),
      ba_);
  Variable att = MatMul(Sigmoid(pre), w0_);  // [N, 1]
  // att^T x per session: the weighted rows sum in the same ascending-k
  // order the legacy [1, t] x [t, d] MatMul uses.
  Variable m_a = SegmentSumRows(MulColBroadcast(x, att), batch.segment_ids,
                                batch.batch);  // [B, d]
  Variable h_s = Tanh(mlp_s_.Forward(m_a));
  Variable h_t = Tanh(mlp_t_.Forward(x_t));
  Variable rep = Mul(h_s, h_t);
  return MatMul(rep, Transpose(items_.table()));
}

// -- RIB ----------------------------------------------------------------------

Rib::Rib(int64_t num_items, int64_t num_operations, const TrainConfig& cfg)
    : NeuralSessionModel("RIB", num_items, num_operations, cfg),
      items_(num_items, cfg.embedding_dim, rng()),
      ops_(num_operations, cfg.embedding_dim, rng()),
      gru_(cfg.embedding_dim, cfg.embedding_dim, rng()),
      att_proj_(cfg.embedding_dim, cfg.embedding_dim, rng()) {
  RegisterModule("items", &items_);
  RegisterModule("ops", &ops_);
  RegisterModule("gru", &gru_);
  RegisterModule("att_proj", &att_proj_);
  const float b = nn::InitBound(cfg.embedding_dim);
  att_v_ = RegisterParameter(
      "att_v", Tensor::RandUniform({cfg.embedding_dim, 1}, -b, b, rng()));
}

Variable Rib::Logits(const Example& ex) {
  EMBSR_TIMED_SPAN("rib/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  const auto flat_items = Tail(ex.flat_items, config().max_positions);
  const auto flat_ops = Tail(ex.flat_ops, config().max_positions);
  Variable x = Add(items_.Forward(flat_items), ops_.Forward(flat_ops));
  x = Dropout(x, config().dropout, training(), rng());
  Variable h = gru_.Forward(x);
  Variable att = RowSoftmaxMasked(
      Transpose(MatMul(Tanh(att_proj_.Forward(h)), att_v_)),
      Tensor::Ones({1, h.value().dim(0)}));  // [1, t]
  Variable rep = MatMul(att, h);
  rep = Dropout(rep, config().dropout, training(), rng());
  return MatMul(rep, Transpose(items_.table()));
}

// -- HUP ----------------------------------------------------------------------

Hup::Hup(int64_t num_items, int64_t num_operations, const TrainConfig& cfg)
    : NeuralSessionModel("HUP", num_items, num_operations, cfg),
      items_(num_items, cfg.embedding_dim, rng()),
      ops_(num_operations, cfg.embedding_dim, rng()),
      micro_gru_(cfg.embedding_dim, cfg.embedding_dim, rng()),
      fuse_(2 * cfg.embedding_dim, cfg.embedding_dim, rng()),
      macro_gru_(cfg.embedding_dim, cfg.embedding_dim, rng()),
      a1_(cfg.embedding_dim, cfg.embedding_dim, rng(), /*bias=*/false),
      a2_(cfg.embedding_dim, cfg.embedding_dim, rng(), /*bias=*/false),
      decode_(2 * cfg.embedding_dim, cfg.embedding_dim, rng(),
              /*bias=*/false) {
  RegisterModule("items", &items_);
  RegisterModule("ops", &ops_);
  RegisterModule("micro_gru", &micro_gru_);
  RegisterModule("fuse", &fuse_);
  RegisterModule("macro_gru", &macro_gru_);
  RegisterModule("a1", &a1_);
  RegisterModule("a2", &a2_);
  RegisterModule("decode", &decode_);
  const float b = nn::InitBound(cfg.embedding_dim);
  v_ = RegisterParameter(
      "v", Tensor::RandUniform({cfg.embedding_dim, 1}, -b, b, rng()));
}

Variable Hup::Logits(const Example& ex) {
  EMBSR_TIMED_SPAN("hup/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  const size_t max_items = static_cast<size_t>(config().max_positions) / 2;
  const size_t start =
      ex.macro_items.size() > max_items ? ex.macro_items.size() - max_items
                                        : 0;
  std::vector<int64_t> macro(ex.macro_items.begin() + start,
                             ex.macro_items.end());
  Variable item_emb = items_.Forward(macro);
  std::vector<Variable> op_summaries;
  op_summaries.reserve(macro.size());
  for (size_t i = start; i < ex.macro_ops.size(); ++i) {
    Variable oe = ops_.Forward(ex.macro_ops[i]);
    op_summaries.push_back(micro_gru_.ForwardLast(oe));
  }
  Variable op_mat = StackRows(op_summaries);
  Variable x = fuse_.Forward(ConcatCols(item_emb, op_mat));
  x = Dropout(x, config().dropout, training(), rng());
  Variable h = macro_gru_.Forward(x);
  const int64_t t = h.value().dim(0);
  Variable h_t = Row(h, t - 1);
  Variable att = MatMul(
      Sigmoid(Add(RepeatRow(a1_.Forward(h_t), t), a2_.Forward(h))), v_);
  Variable c_local = MatMul(Transpose(att), h);
  Variable rep = decode_.Forward(ConcatCols(h_t, c_local));
  return MatMul(rep, Transpose(items_.table()));
}

// -- BERT4Rec --------------------------------------------------------------------

Bert4Rec::Bert4Rec(int64_t num_items, int64_t num_operations,
                   const TrainConfig& cfg, int num_layers)
    : NeuralSessionModel("BERT4Rec", num_items, num_operations, cfg),
      items_(num_items + 1, cfg.embedding_dim, rng()),
      positions_(cfg.max_positions + 1, cfg.embedding_dim, rng()) {
  RegisterModule("items", &items_);
  RegisterModule("positions", &positions_);
  for (int i = 0; i < num_layers; ++i) {
    blocks_.push_back(
        std::make_unique<SelfAttentionBlock>(cfg.embedding_dim, rng(),
                                             cfg.dropout));
    RegisterModule("block" + std::to_string(i), blocks_.back().get());
  }
}

Variable Bert4Rec::Logits(const Example& ex) {
  EMBSR_TIMED_SPAN("bert4rec/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  std::vector<int64_t> seq = Tail(ex.macro_items, config().max_positions);
  seq.push_back(num_items());  // [MASK] token at the target position
  std::vector<int64_t> pos(seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    pos[i] = ClampPosition(static_cast<int64_t>(i), config().max_positions + 1);
  }
  Variable x = Add(items_.Forward(seq), positions_.Forward(pos));
  x = Dropout(x, config().dropout, training(), rng());
  const int64_t t = x.value().dim(0);
  Tensor mask = Tensor::Ones({t, t});  // fully bidirectional
  for (auto& block : blocks_) {
    x = block->Forward(x, mask, training(), rng());
  }
  Variable z = Row(x, t - 1);
  // Tied output weights over the real items (excluding [MASK]).
  Variable table = SliceRows(items_.table(), 0, num_items());
  return MatMul(z, Transpose(table));
}

}  // namespace embsr
