#ifndef EMBSR_MODELS_BASELINES_SEQ_H_
#define EMBSR_MODELS_BASELINES_SEQ_H_

#include "models/components.h"
#include "models/neural_model.h"

namespace embsr {

/// NARM (Li et al. 2017): GRU encoder with an attention mechanism combining
/// the user's global purpose (attended hidden states) and sequential
/// behaviour (last hidden state); bilinear decoding.
class Narm : public NeuralSessionModel {
 public:
  Narm(int64_t num_items, int64_t num_operations, const TrainConfig& cfg);

 protected:
  ag::Variable Logits(const Example& ex) override;

 private:
  nn::Embedding items_;
  nn::GRU gru_;
  nn::Linear a1_;
  nn::Linear a2_;
  ag::Variable v_;
  nn::Linear decode_;  // B: [2d -> d]
};

/// STAMP (Liu et al. 2018): short-term attention/memory priority — attention
/// over item embeddings keyed by the last click and the session mean, with
/// trilinear composition scoring.
class Stamp : public NeuralSessionModel {
 public:
  Stamp(int64_t num_items, int64_t num_operations, const TrainConfig& cfg);

 protected:
  ag::Variable Logits(const Example& ex) override;

  /// Batched forward over the collator's session-major flat layout: no
  /// padding exists, the per-session mean and attention sums reduce with
  /// SegmentSumRows, and the decode GEMM runs once per batch.
  ag::Variable BatchedLogits(const SessionBatch& batch) override;

 private:
  nn::Embedding items_;
  nn::Linear w1_, w2_, w3_;
  ag::Variable w0_;
  ag::Variable ba_;
  nn::Linear mlp_s_, mlp_t_;
};

/// RIB (Zhou et al. 2018): the first micro-behavior SR model — a GRU over
/// (item + operation) embeddings of the flat micro-behavior sequence with an
/// attention pooling layer.
class Rib : public NeuralSessionModel {
 public:
  Rib(int64_t num_items, int64_t num_operations, const TrainConfig& cfg);

 protected:
  ag::Variable Logits(const Example& ex) override;

 private:
  nn::Embedding items_;
  nn::Embedding ops_;
  nn::GRU gru_;
  nn::Linear att_proj_;
  ag::Variable att_v_;
};

/// HUP (Gu et al. 2020), simplified to its session-scoped pyramid: a micro
/// GRU summarizes each item's operation sequence, an item-level GRU consumes
/// [item embedding ; operation summary], and attention pools item states.
class Hup : public NeuralSessionModel {
 public:
  Hup(int64_t num_items, int64_t num_operations, const TrainConfig& cfg);

 protected:
  ag::Variable Logits(const Example& ex) override;

 private:
  nn::Embedding items_;
  nn::Embedding ops_;
  nn::GRU micro_gru_;
  nn::Linear fuse_;
  nn::GRU macro_gru_;
  nn::Linear a1_;
  nn::Linear a2_;
  ag::Variable v_;
  nn::Linear decode_;
};

/// BERT4Rec (Sun et al. 2019), adapted to the session setting: bidirectional
/// transformer blocks over item+position embeddings with a [MASK] token
/// appended at the target position (the cloze objective degenerates to
/// next-item prediction when only the last position is masked, which is the
/// evaluation protocol here).
class Bert4Rec : public NeuralSessionModel {
 public:
  Bert4Rec(int64_t num_items, int64_t num_operations, const TrainConfig& cfg,
           int num_layers = 2);

 protected:
  ag::Variable Logits(const Example& ex) override;

 private:
  nn::Embedding items_;  // num_items + 1 rows; last row is [MASK]
  nn::Embedding positions_;
  std::vector<std::unique_ptr<SelfAttentionBlock>> blocks_;
};

}  // namespace embsr

#endif  // EMBSR_MODELS_BASELINES_SEQ_H_
