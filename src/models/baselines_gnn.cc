#include "models/baselines_gnn.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/check.h"

namespace embsr {

using ag::Variable;

namespace {

template <typename T>
std::vector<T> Tail(const std::vector<T>& v, size_t max_len) {
  if (v.size() <= max_len) return v;
  return std::vector<T>(v.end() - max_len, v.end());
}

/// Reorders node states [n, d] into sequence states [t, d] via the alias.
Variable NodesToSequence(const Variable& nodes, const std::vector<int>& alias) {
  std::vector<int64_t> idx(alias.begin(), alias.end());
  return ag::GatherRows(nodes, idx);
}

}  // namespace

// -- SR-GNN ---------------------------------------------------------------------

SrGnn::SrGnn(int64_t num_items, int64_t num_operations,
             const TrainConfig& cfg)
    : NeuralSessionModel("SR-GNN", num_items, num_operations, cfg),
      items_(num_items, cfg.embedding_dim, rng()),
      ggnn_(cfg.embedding_dim, rng()),
      readout_(cfg.embedding_dim, rng()) {
  RegisterModule("items", &items_);
  RegisterModule("ggnn", &ggnn_);
  RegisterModule("readout", &readout_);
}

Variable SrGnn::Logits(const Example& ex) {
  EMBSR_TIMED_SPAN("srgnn/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  const auto seq = Tail(ex.macro_items, config().max_positions);
  SrgnnAdjacency adj = BuildSrgnnAdjacency(seq);
  Variable h = items_.Forward(adj.nodes);
  h = Dropout(h, config().dropout, training(), rng());
  h = ggnn_.Forward(h, adj.a_in, adj.a_out);
  Variable states = NodesToSequence(h, adj.alias);
  Variable rep = readout_.Forward(states);
  return MatMul(rep, Transpose(items_.table()));
}

// -- GC-SAN ---------------------------------------------------------------------

GcSan::GcSan(int64_t num_items, int64_t num_operations,
             const TrainConfig& cfg, int num_attention_layers, float omega)
    : NeuralSessionModel("GC-SAN", num_items, num_operations, cfg),
      items_(num_items, cfg.embedding_dim, rng()),
      ggnn_(cfg.embedding_dim, rng()),
      omega_(omega) {
  RegisterModule("items", &items_);
  RegisterModule("ggnn", &ggnn_);
  for (int i = 0; i < num_attention_layers; ++i) {
    blocks_.push_back(std::make_unique<SelfAttentionBlock>(
        cfg.embedding_dim, rng(), cfg.dropout));
    RegisterModule("block" + std::to_string(i), blocks_.back().get());
  }
}

Variable GcSan::Logits(const Example& ex) {
  EMBSR_TIMED_SPAN("gcsan/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  const auto seq = Tail(ex.macro_items, config().max_positions);
  SrgnnAdjacency adj = BuildSrgnnAdjacency(seq);
  Variable h = items_.Forward(adj.nodes);
  h = Dropout(h, config().dropout, training(), rng());
  h = ggnn_.Forward(h, adj.a_in, adj.a_out);
  Variable states = NodesToSequence(h, adj.alias);
  const int64_t t = states.value().dim(0);
  Variable h_last = Row(states, t - 1);
  Tensor mask = Tensor::Ones({t, t});
  Variable x = states;
  for (auto& block : blocks_) {
    x = block->Forward(x, mask, training(), rng());
  }
  Variable e_f = Row(x, t - 1);
  Variable rep = Add(Scale(e_f, omega_), Scale(h_last, 1.0f - omega_));
  return MatMul(rep, Transpose(items_.table()));
}

// -- MKM-SR ---------------------------------------------------------------------

MkmSr::MkmSr(int64_t num_items, int64_t num_operations,
             const TrainConfig& cfg)
    : NeuralSessionModel("MKM-SR", num_items, num_operations, cfg),
      items_(num_items, cfg.embedding_dim, rng()),
      ops_(num_operations, cfg.embedding_dim, rng()),
      ggnn_(cfg.embedding_dim, rng()),
      op_gru_(cfg.embedding_dim, cfg.embedding_dim, rng()),
      readout_(cfg.embedding_dim, rng()),
      combine_(2 * cfg.embedding_dim, cfg.embedding_dim, rng(),
               /*bias=*/false) {
  RegisterModule("items", &items_);
  RegisterModule("ops", &ops_);
  RegisterModule("ggnn", &ggnn_);
  RegisterModule("op_gru", &op_gru_);
  RegisterModule("readout", &readout_);
  RegisterModule("combine", &combine_);
}

Variable MkmSr::Logits(const Example& ex) {
  EMBSR_TIMED_SPAN("mkmsr/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  const auto seq = Tail(ex.macro_items, config().max_positions);
  SrgnnAdjacency adj = BuildSrgnnAdjacency(seq);
  Variable h = items_.Forward(adj.nodes);
  h = Dropout(h, config().dropout, training(), rng());
  h = ggnn_.Forward(h, adj.a_in, adj.a_out);
  Variable states = NodesToSequence(h, adj.alias);
  Variable item_rep = readout_.Forward(states);

  const auto flat_ops = Tail(ex.flat_ops, config().max_positions);
  Variable op_rep = op_gru_.ForwardLast(ops_.Forward(flat_ops));

  Variable rep = combine_.Forward(ConcatCols(item_rep, op_rep));
  return MatMul(rep, Transpose(items_.table()));
}

// -- SGNN-HN --------------------------------------------------------------------

SgnnHn::SgnnHn(int64_t num_items, int64_t num_operations,
               const TrainConfig& cfg, int num_layers, float wk)
    : NeuralSessionModel("SGNN-HN", num_items, num_operations, cfg),
      items_(num_items, cfg.embedding_dim, rng()),
      positions_(cfg.max_positions + 1, cfg.embedding_dim, rng()),
      ggnn_(cfg.embedding_dim, rng()),
      highway_(2 * cfg.embedding_dim, cfg.embedding_dim, rng(),
               /*bias=*/false),
      att_w1_(cfg.embedding_dim, cfg.embedding_dim, rng(), /*bias=*/false),
      att_w2_(cfg.embedding_dim, cfg.embedding_dim, rng(), /*bias=*/false),
      att_w3_(cfg.embedding_dim, cfg.embedding_dim, rng(), /*bias=*/true),
      combine_(2 * cfg.embedding_dim, cfg.embedding_dim, rng(),
               /*bias=*/false),
      num_layers_(num_layers),
      wk_(wk) {
  RegisterModule("items", &items_);
  RegisterModule("positions", &positions_);
  RegisterModule("ggnn", &ggnn_);
  RegisterModule("highway", &highway_);
  RegisterModule("att_w1", &att_w1_);
  RegisterModule("att_w2", &att_w2_);
  RegisterModule("att_w3", &att_w3_);
  RegisterModule("combine", &combine_);
  const float b = nn::InitBound(cfg.embedding_dim);
  auto mk = [&](const char* name) {
    return RegisterParameter(
        name, Tensor::RandUniform({cfg.embedding_dim, cfg.embedding_dim},
                                  -b, b, rng()));
  };
  wq1_ = mk("wq1");
  wk1_ = mk("wk1");
  wq2_ = mk("wq2");
  wk2_ = mk("wk2");
  att_q_ = RegisterParameter(
      "att_q", Tensor::RandUniform({cfg.embedding_dim, 1}, -b, b, rng()));
}

Variable SgnnHn::Logits(const Example& ex) {
  EMBSR_TIMED_SPAN("sgnnhn/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  const int64_t d = config().embedding_dim;
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  const auto seq = Tail(ex.macro_items, config().max_positions);
  SrgnnAdjacency adj = BuildSrgnnAdjacency(seq);
  const int64_t n = static_cast<int64_t>(adj.nodes.size());

  Variable h0 = items_.Forward(adj.nodes);
  h0 = Dropout(h0, config().dropout, training(), rng());
  Variable h = h0;
  Variable star = MeanRowsTo1xD(h0);

  for (int layer = 0; layer < num_layers_; ++layer) {
    Variable h_hat = ggnn_.Forward(h, adj.a_in, adj.a_out);
    // Satellite <- star gate: alpha_i = (Wq1 h_i)^T (Wk1 star) / sqrt(d),
    // squashed with a sigmoid for numerical stability.
    Variable alpha = Sigmoid(Scale(
        MatMul(MatMul(h_hat, wq1_), Transpose(MatMul(star, wk1_))),
        inv_sqrt_d));  // [n, 1]
    Variable star_rows = RepeatRow(star, n);
    Variable one_minus = AddScalar(Neg(alpha), 1.0f);
    h = Add(MulColBroadcast(h_hat, one_minus),
            MulColBroadcast(star_rows, alpha));
    // Star update by attention over satellites.
    Variable beta = RowSoftmaxMasked(
        Scale(Transpose(MatMul(MatMul(h, wk2_), Transpose(MatMul(star, wq2_)))),
              inv_sqrt_d),
        Tensor::Ones({1, n}));  // [1, n]
    star = MatMul(beta, h);
  }

  // Highway between pre- and post-GNN node embeddings.
  Variable g = Sigmoid(highway_.Forward(ConcatCols(h0, h)));
  Variable one_minus_g = AddScalar(Neg(g), 1.0f);
  Variable hf = Add(Mul(g, h0), Mul(one_minus_g, h));

  // Position-aware attention readout against last item + star.
  Variable states = NodesToSequence(hf, adj.alias);
  const int64_t t = states.value().dim(0);
  std::vector<int64_t> pos(t);
  for (int64_t i = 0; i < t; ++i) {
    pos[i] = ClampPosition(t - 1 - i, config().max_positions + 1);
  }
  Variable states_pos = Add(states, positions_.Forward(pos));
  Variable h_last = Row(states, t - 1);
  Variable att_in =
      Add(att_w1_.Forward(states_pos),
          Add(RepeatRow(att_w2_.Forward(h_last), t),
              RepeatRow(att_w3_.Forward(star), t)));
  Variable gamma = MatMul(Sigmoid(att_in), att_q_);  // [t, 1]
  Variable s_g = MatMul(Transpose(gamma), states);
  Variable rep = combine_.Forward(ConcatCols(s_g, h_last));

  // NISER-style normalized scoring.
  Variable m_hat = Scale(L2NormalizeRowsOp(rep), wk_);
  Variable items_norm = L2NormalizeRowsOp(items_.table());
  return MatMul(m_hat, Transpose(items_norm));
}

}  // namespace embsr
