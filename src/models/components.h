#ifndef EMBSR_MODELS_COMPONENTS_H_
#define EMBSR_MODELS_COMPONENTS_H_

#include <vector>

#include "autograd/ops.h"
#include "graph/session_graph.h"
#include "nn/layers.h"

namespace embsr {

/// One gated-GNN propagation step over the *collapsed* weighted session
/// graph (Li et al. 2016 as used by SR-GNN): messages flow along the
/// row-normalized in/out adjacency, then a GRU-style gate updates each node.
/// Used by the SR-GNN, GC-SAN and MKM-SR baselines.
class GgnnLayer : public nn::Module {
 public:
  GgnnLayer(int64_t dim, Rng* rng);

  /// h: [n, d] node embeddings; adjacency from BuildSrgnnAdjacency.
  ag::Variable Forward(const ag::Variable& h, const Tensor& a_in,
                       const Tensor& a_out) const;

 private:
  nn::Linear in_proj_;
  nn::Linear out_proj_;
  ag::Variable w_z_, u_z_, w_r_, u_r_, w_h_, u_h_;  // gate weights
};

/// SR-GNN's soft-attention session readout: attends node embeddings against
/// the last item's embedding and mixes the global vector with the local one.
///   alpha_i = q^T sigmoid(W1 h_last + W2 h_i + c)
///   s_g = sum_i alpha_i h_i ;  s = W3 [h_last ; s_g]
class SoftAttentionReadout : public nn::Module {
 public:
  SoftAttentionReadout(int64_t dim, Rng* rng);

  /// seq: [t, d] position-ordered item states. Returns [1, d].
  ag::Variable Forward(const ag::Variable& seq) const;

 private:
  nn::Linear w1_;
  nn::Linear w2_;
  ag::Variable q_;
  nn::Linear w3_;
};

/// A standard single-head transformer encoder block: scaled dot-product
/// self-attention + position-wise FFN, both with residual connections and
/// layer normalization. Used by GC-SAN, BERT4Rec and the EMBSR ablations
/// with *standard* (non-operation-aware) attention.
class SelfAttentionBlock : public nn::Module {
 public:
  SelfAttentionBlock(int64_t dim, Rng* rng, float dropout = 0.0f);

  /// x: [t, d] -> [t, d]. `mask` (t x t of 0/1) marks allowed attention
  /// edges; pass an all-ones tensor for full bidirectional attention.
  ag::Variable Forward(const ag::Variable& x, const Tensor& mask,
                       bool training, Rng* dropout_rng) const;

 private:
  nn::Linear wq_;
  nn::Linear wk_;
  nn::Linear wv_;
  nn::FeedForward ffn_;
  nn::LayerNorm ln1_;
  nn::LayerNorm ln2_;
  float dropout_;
};

/// Clamps position index to the embedding table size.
int64_t ClampPosition(int64_t pos, int64_t max_positions);

}  // namespace embsr

#endif  // EMBSR_MODELS_COMPONENTS_H_
