#include "models/neural_model.h"

#include <algorithm>

#include "data/preprocess.h"
#include "metrics/metrics.h"
#include "obs/run_logger.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace embsr {

NeuralSessionModel::NeuralSessionModel(std::string name, int64_t num_items,
                                       int64_t num_operations,
                                       const TrainConfig& config)
    : name_(std::move(name)),
      num_items_(num_items),
      num_operations_(num_operations),
      cfg_(config),
      rng_(config.seed) {
  EMBSR_CHECK_GT(num_items_, 0);
  EMBSR_CHECK_GE(num_operations_, 0);
}

Status NeuralSessionModel::Fit(const ProcessedDataset& data) {
  EMBSR_TRACE_SPAN("train/fit");
  if (data.train.empty()) {
    return Status::InvalidArgument("empty training split");
  }
  if (data.num_items != num_items_) {
    return Status::InvalidArgument("model/dataset item count mismatch");
  }

  std::vector<const Example*> train;
  train.reserve(data.train.size());
  for (const auto& ex : data.train) train.push_back(&ex);
  if (cfg_.max_train_examples > 0 &&
      static_cast<int>(train.size()) > cfg_.max_train_examples) {
    rng_.Shuffle(&train);
    train.resize(cfg_.max_train_examples);
  }

  optim::Adam opt(Parameters(), cfg_.lr, 0.9f, 0.999f, 1e-8f,
                  cfg_.weight_decay);
  optim::StepDecaySchedule schedule(cfg_.lr, cfg_.lr_decay_step,
                                    cfg_.lr_decay_gamma);
  const float inv_batch = 1.0f / static_cast<float>(cfg_.batch_size);

  double best_mrr = -1.0;
  std::vector<Tensor> best_params;

  obs::RunLogger* run_log = obs::RunLogger::Global();
  static obs::Gauge* loss_gauge =
      obs::Registry::Global().GetGauge("train/loss");
  static obs::Gauge* throughput_gauge =
      obs::Registry::Global().GetGauge("train/examples_per_sec");
  static obs::Counter* epoch_counter =
      obs::Registry::Global().GetCounter("train/epochs");

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    EMBSR_TRACE_SPAN("train/epoch");
    WallTimer timer;
    SetTraining(true);
    opt.set_lr(schedule.LrForEpoch(epoch));
    rng_.Shuffle(&train);
    double epoch_loss = 0.0;
    double grad_norm_sum = 0.0;
    int64_t steps = 0;
    int64_t batches = 0;

    for (size_t begin = 0; begin < train.size();
         begin += cfg_.batch_size) {
      const size_t end =
          std::min(begin + cfg_.batch_size, train.size());
      opt.ZeroGrad();
      for (size_t i = begin; i < end; ++i) {
        const Example& ex = *train[i];
        ag::Variable logits = Logits(ex);
        ag::Variable loss =
            ag::SoftmaxCrossEntropy(logits, {ex.target});
        epoch_loss += loss.value().at(0);
        // Scale so accumulated gradients equal the batch-mean gradient.
        ag::Scale(loss, inv_batch).Backward();
        ++steps;
      }
      if (cfg_.clip_norm > 0.0f) {
        grad_norm_sum += optim::ClipGradNorm(Parameters(), cfg_.clip_norm);
      } else if (run_log != nullptr) {
        // The extra parameter sweep is only paid when telemetry asked for
        // it; clipping already measures the norm as a side effect above.
        grad_norm_sum += optim::GlobalGradNorm(Parameters());
      }
      ++batches;
      opt.Step();
    }

    const double epoch_seconds = timer.ElapsedSeconds();
    const double mean_loss = steps > 0 ? epoch_loss / steps : 0.0;
    const double examples_per_sec =
        epoch_seconds > 0.0 ? static_cast<double>(steps) / epoch_seconds
                            : 0.0;
    loss_gauge->Set(mean_loss);
    throughput_gauge->Set(examples_per_sec);
    epoch_counter->Increment();

    if (cfg_.verbose) {
      EMBSR_LOG(Info) << name_ << " epoch " << epoch + 1 << "/"
                      << cfg_.epochs << " loss=" << mean_loss << " ("
                      << epoch_seconds << "s)";
    }

    double valid_mrr = -1.0;
    if (cfg_.validate_every > 0 && !data.valid.empty() &&
        (epoch + 1) % cfg_.validate_every == 0) {
      EMBSR_TRACE_SPAN("train/validate");
      const double mrr = ValidationMrr(data.valid, 400);
      valid_mrr = mrr;
      if (mrr > best_mrr) {
        best_mrr = mrr;
        best_params = SnapshotParameters();
      }
      if (cfg_.verbose) {
        EMBSR_LOG(Info) << name_ << " valid MRR@20=" << mrr;
      }
    }

    if (run_log != nullptr) {
      obs::EpochRecord rec;
      rec.model = name_;
      rec.dataset = data.name;
      rec.epoch = epoch + 1;
      rec.total_epochs = cfg_.epochs;
      rec.loss = mean_loss;
      rec.grad_norm = batches > 0 ? grad_norm_sum / batches : 0.0;
      rec.wall_seconds = epoch_seconds;
      rec.examples_per_sec = examples_per_sec;
      rec.lr = opt.lr();
      rec.valid_mrr = valid_mrr;
      run_log->LogEpoch(rec);
    }
  }

  if (!best_params.empty()) RestoreParameters(best_params);
  SetTraining(false);
  return Status::OK();
}

std::vector<float> NeuralSessionModel::ScoreAll(const Example& ex) {
  EMBSR_TIMED_SPAN("model/score_all", "model/score_all_ms");
  const bool was_training = training();
  SetTraining(false);
  ag::Variable logits = Logits(ex);
  SetTraining(was_training);
  const Tensor& v = logits.value();
  EMBSR_CHECK_EQ(v.size(), num_items_);
  return std::vector<float>(v.data(), v.data() + v.size());
}

double NeuralSessionModel::ValidationMrr(const std::vector<Example>& split,
                                         size_t cap) {
  RankAccumulator acc;
  const size_t n = std::min(split.size(), cap);
  for (size_t i = 0; i < n; ++i) {
    acc.Add(RankOfTarget(ScoreAll(split[i]), split[i].target));
  }
  return acc.MrrAt(20);
}

std::vector<Tensor> NeuralSessionModel::SnapshotParameters() const {
  std::vector<Tensor> out;
  for (const auto& p : Parameters()) out.push_back(p.value());
  return out;
}

void NeuralSessionModel::RestoreParameters(
    const std::vector<Tensor>& snapshot) {
  auto params = Parameters();
  EMBSR_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = snapshot[i];
  }
}

}  // namespace embsr
