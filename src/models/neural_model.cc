#include "models/neural_model.h"

#include <algorithm>

#include "data/preprocess.h"
#include "metrics/metrics.h"
#include "optim/optimizer.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace embsr {

NeuralSessionModel::NeuralSessionModel(std::string name, int64_t num_items,
                                       int64_t num_operations,
                                       const TrainConfig& config)
    : name_(std::move(name)),
      num_items_(num_items),
      num_operations_(num_operations),
      cfg_(config),
      rng_(config.seed) {
  EMBSR_CHECK_GT(num_items_, 0);
  EMBSR_CHECK_GE(num_operations_, 0);
}

Status NeuralSessionModel::Fit(const ProcessedDataset& data) {
  if (data.train.empty()) {
    return Status::InvalidArgument("empty training split");
  }
  if (data.num_items != num_items_) {
    return Status::InvalidArgument("model/dataset item count mismatch");
  }

  std::vector<const Example*> train;
  train.reserve(data.train.size());
  for (const auto& ex : data.train) train.push_back(&ex);
  if (cfg_.max_train_examples > 0 &&
      static_cast<int>(train.size()) > cfg_.max_train_examples) {
    rng_.Shuffle(&train);
    train.resize(cfg_.max_train_examples);
  }

  optim::Adam opt(Parameters(), cfg_.lr, 0.9f, 0.999f, 1e-8f,
                  cfg_.weight_decay);
  optim::StepDecaySchedule schedule(cfg_.lr, cfg_.lr_decay_step,
                                    cfg_.lr_decay_gamma);
  const float inv_batch = 1.0f / static_cast<float>(cfg_.batch_size);

  double best_mrr = -1.0;
  std::vector<Tensor> best_params;

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    WallTimer timer;
    SetTraining(true);
    opt.set_lr(schedule.LrForEpoch(epoch));
    rng_.Shuffle(&train);
    double epoch_loss = 0.0;
    int64_t steps = 0;

    for (size_t begin = 0; begin < train.size();
         begin += cfg_.batch_size) {
      const size_t end =
          std::min(begin + cfg_.batch_size, train.size());
      opt.ZeroGrad();
      for (size_t i = begin; i < end; ++i) {
        const Example& ex = *train[i];
        ag::Variable logits = Logits(ex);
        ag::Variable loss =
            ag::SoftmaxCrossEntropy(logits, {ex.target});
        epoch_loss += loss.value().at(0);
        // Scale so accumulated gradients equal the batch-mean gradient.
        ag::Scale(loss, inv_batch).Backward();
        ++steps;
      }
      if (cfg_.clip_norm > 0.0f) {
        optim::ClipGradNorm(Parameters(), cfg_.clip_norm);
      }
      opt.Step();
    }

    if (cfg_.verbose) {
      EMBSR_LOG(Info) << name_ << " epoch " << epoch + 1 << "/"
                      << cfg_.epochs << " loss="
                      << (steps > 0 ? epoch_loss / steps : 0.0)
                      << " (" << timer.ElapsedSeconds() << "s)";
    }

    if (cfg_.validate_every > 0 && !data.valid.empty() &&
        (epoch + 1) % cfg_.validate_every == 0) {
      const double mrr = ValidationMrr(data.valid, 400);
      if (mrr > best_mrr) {
        best_mrr = mrr;
        best_params = SnapshotParameters();
      }
      if (cfg_.verbose) {
        EMBSR_LOG(Info) << name_ << " valid MRR@20=" << mrr;
      }
    }
  }

  if (!best_params.empty()) RestoreParameters(best_params);
  SetTraining(false);
  return Status::OK();
}

std::vector<float> NeuralSessionModel::ScoreAll(const Example& ex) {
  const bool was_training = training();
  SetTraining(false);
  ag::Variable logits = Logits(ex);
  SetTraining(was_training);
  const Tensor& v = logits.value();
  EMBSR_CHECK_EQ(v.size(), num_items_);
  return std::vector<float>(v.data(), v.data() + v.size());
}

double NeuralSessionModel::ValidationMrr(const std::vector<Example>& split,
                                         size_t cap) {
  RankAccumulator acc;
  const size_t n = std::min(split.size(), cap);
  for (size_t i = 0; i < n; ++i) {
    acc.Add(RankOfTarget(ScoreAll(split[i]), split[i].target));
  }
  return acc.MrrAt(20);
}

std::vector<Tensor> NeuralSessionModel::SnapshotParameters() const {
  std::vector<Tensor> out;
  for (const auto& p : Parameters()) out.push_back(p.value());
  return out;
}

void NeuralSessionModel::RestoreParameters(
    const std::vector<Tensor>& snapshot) {
  auto params = Parameters();
  EMBSR_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = snapshot[i];
  }
}

}  // namespace embsr
