#include "models/neural_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "arena/arena.h"
#include "data/preprocess.h"
#include "metrics/metrics.h"
#include "obs/run_logger.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "prof/op_profiler.h"
#include "robust/ckpt_manager.h"
#include "robust/failpoint.h"
#include "robust/health.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace embsr {

namespace {

// Salts for the derived RNG streams (see DeriveSeed): the subsample
// selection and each epoch's visit order depend only on (seed, salt,
// epoch), never on how much training history preceded them — the property
// that makes checkpoint resume replay the uninterrupted schedule exactly.
constexpr uint64_t kSubsampleSalt = 0x5AB5A17ULL;
constexpr uint64_t kEpochShuffleSalt = 0xE90C45ULL;

// Arena step keys. A key names a (model, input-structure) equivalence
// class: two steps with equal keys must build identically-shaped graphs, so
// one step's verified memory plan replays for the other. The hash covers
// the *skeleton* of the example — sequence lengths, per-item operation
// counts, distinct-node counts (what GNN adjacency shapes derive from) —
// and never item identities, which only change tensor contents. A key that
// turns out to under-split (a model with data-dependent topology) merely
// strikes and blacklists itself to heap execution; it cannot corrupt a step.
uint64_t ExampleStructureHash(const Example& ex) {
  uint64_t h = analyze::kFnvOffsetBasis;
  h = analyze::HashMixU64(h, static_cast<uint64_t>(ex.macro_items.size()));
  for (const auto& ops : ex.macro_ops) {
    h = analyze::HashMixU64(h, static_cast<uint64_t>(ops.size()));
  }
  h = analyze::HashMixU64(h, static_cast<uint64_t>(ex.flat_items.size()));
  std::unordered_set<int64_t> unique_items(ex.macro_items.begin(),
                                           ex.macro_items.end());
  h = analyze::HashMixU64(h, static_cast<uint64_t>(unique_items.size()));
  std::unordered_set<int64_t> unique_pairs;
  for (size_t i = 0; i < ex.flat_items.size(); ++i) {
    const int64_t op = i < ex.flat_ops.size() ? ex.flat_ops[i] : 0;
    unique_pairs.insert((ex.flat_items[i] << 8) ^ op);
  }
  h = analyze::HashMixU64(h, static_cast<uint64_t>(unique_pairs.size()));
  return h;
}

uint64_t BatchStructureHash(const SessionBatch& batch) {
  uint64_t h = analyze::kFnvOffsetBasis;
  h = analyze::HashMixU64(h, static_cast<uint64_t>(batch.batch));
  h = analyze::HashMixU64(h, static_cast<uint64_t>(batch.max_len));
  for (const Example* ex : batch.examples) {
    h = analyze::HashMixU64(h, ExampleStructureHash(*ex));
  }
  return h;
}

std::string ArenaKey(const std::string& model, const char* kind,
                     int64_t num_items, const TrainConfig& cfg, uint64_t h) {
  // Model dimensions ride along so two instances of the same architecture
  // with different configs never share a plan.
  uint64_t c = analyze::HashMixU64(
      analyze::kFnvOffsetBasis, static_cast<uint64_t>(num_items));
  c = analyze::HashMixU64(c, static_cast<uint64_t>(cfg.embedding_dim));
  c = analyze::HashMixU64(c, static_cast<uint64_t>(cfg.max_positions));
  return model + "|" + kind + "|" + std::to_string(c) + "|" +
         std::to_string(h);
}

bool AllFinite(const std::vector<Tensor>& tensors) {
  for (const Tensor& t : tensors) {
    const float* p = t.data();
    for (int64_t i = 0; i < t.size(); ++i) {
      if (!std::isfinite(p[i])) return false;
    }
  }
  return true;
}

}  // namespace

NeuralSessionModel::NeuralSessionModel(std::string name, int64_t num_items,
                                       int64_t num_operations,
                                       const TrainConfig& config)
    : name_(std::move(name)),
      num_items_(num_items),
      num_operations_(num_operations),
      cfg_(config),
      rng_(config.seed) {
  EMBSR_CHECK_GT(num_items_, 0);
  EMBSR_CHECK_GE(num_operations_, 0);
}

Status NeuralSessionModel::Fit(const ProcessedDataset& data) {
  EMBSR_TRACE_SPAN("train/fit");
  prof::MaybeInitFromEnv();
  if (data.train.empty()) {
    return Status::InvalidArgument("empty training split");
  }
  if (data.num_items != num_items_) {
    return Status::InvalidArgument("model/dataset item count mismatch");
  }

  std::vector<const Example*> train;
  train.reserve(data.train.size());
  for (const auto& ex : data.train) train.push_back(&ex);
  if (cfg_.max_train_examples > 0 &&
      static_cast<int>(train.size()) > cfg_.max_train_examples) {
    Rng subsample_rng(DeriveSeed(cfg_.seed, kSubsampleSalt));
    subsample_rng.Shuffle(&train);
    // lint: allow(raw-resize): post-shuffle subsample truncation
    train.resize(cfg_.max_train_examples);
  }

  optim::Adam opt(Parameters(), cfg_.lr, 0.9f, 0.999f, 1e-8f,
                  cfg_.weight_decay);
  optim::StepDecaySchedule schedule(cfg_.lr, cfg_.lr_decay_step,
                                    cfg_.lr_decay_gamma);
  const float inv_batch = 1.0f / static_cast<float>(cfg_.batch_size);
  // EMBSR_BATCH_SIZE > 1 groups each gradient-accumulation mini-batch into
  // collated forward-batches; the default 1 keeps the legacy per-example
  // loop below, byte for byte.
  const size_t forward_batch =
      static_cast<size_t>(ForwardBatchSizeFromEnv());

  double best_mrr = -1.0;
  std::vector<Tensor> best_params;

  robust::HealthGuard guard;
  robust::CheckpointManager ckpt(robust::CheckpointManagerConfig::FromEnv(),
                                 name_ + "-" + data.name);
  auto& failpoints = robust::Failpoints::Global();

  obs::RunLogger* run_log = obs::RunLogger::Global();
  static obs::Gauge* loss_gauge =
      obs::Registry::Global().GetGauge("train/loss");
  static obs::Gauge* throughput_gauge =
      obs::Registry::Global().GetGauge("train/examples_per_sec");
  static obs::Counter* epoch_counter =
      obs::Registry::Global().GetCounter("train/epochs");
  static obs::Counter* skipped_counter =
      obs::Registry::Global().GetCounter("robust/skipped_batches");
  static obs::Counter* resume_counter =
      obs::Registry::Global().GetCounter("robust/resumes");

  // Resume: pick up the newest loadable checkpoint of this (model, dataset)
  // run. Weights, optimizer moments, RNG stream, best-validation snapshot
  // and epoch counter all restore, so the continued run is bit-for-bit the
  // uninterrupted one.
  int start_epoch = 0;
  if (ckpt.enabled()) {
    nn::TrainState st;
    std::vector<std::string> skipped_corrupt;
    const Status s = ckpt.LoadLatest(this, &st, &skipped_corrupt);
    if (!skipped_corrupt.empty()) {
      EMBSR_LOG(Warning) << name_ << "/" << data.name << ": resume skipped "
                         << skipped_corrupt.size()
                         << " corrupt checkpoint(s), newest: "
                         << skipped_corrupt.front();
    }
    if (s.ok()) {
      const Status imp = opt.ImportState(st.opt_scalars, st.opt_slots);
      if (imp.ok()) {
        rng_.RestoreState(st.rng);
        start_epoch = st.epoch;
        best_mrr = st.best_mrr;
        best_params = std::move(st.best_params);
        resume_counter->Increment();
        EMBSR_LOG(Info) << name_ << "/" << data.name << ": resuming from "
                        << start_epoch << " completed epoch(s)";
      } else {
        EMBSR_LOG(Warning) << "checkpoint optimizer state rejected ("
                           << imp.ToString() << "); training from scratch";
      }
    } else if (s.code() != StatusCode::kNotFound) {
      EMBSR_LOG(Warning) << "checkpoint resume failed (" << s.ToString()
                         << "); training from scratch";
    }
  }

  // Last-known-good state for health-guard rollbacks, refreshed at every
  // epoch boundary whose parameters are all finite. Kept in memory so
  // rollback works even with checkpointing disabled.
  std::vector<Tensor> good_params = SnapshotParameters();
  std::vector<double> good_opt_scalars;
  std::vector<Tensor> good_opt_slots;
  opt.ExportState(&good_opt_scalars, &good_opt_slots);
  RngState good_rng = rng_.SaveState();

  for (int epoch = start_epoch; epoch < cfg_.epochs; ++epoch) {
    EMBSR_TRACE_SPAN("train/epoch");
    WallTimer timer;
    SetTraining(true);
    const float epoch_lr = schedule.LrForEpoch(epoch);
    // Visit order is a pure function of (seed, epoch): iota + shuffle from
    // a derived stream, independent of rng_ and of previous epochs.
    std::vector<const Example*> order = train;
    Rng shuffle_rng(DeriveSeed(cfg_.seed, kEpochShuffleSalt + epoch));
    shuffle_rng.Shuffle(&order);

    double epoch_loss = 0.0;
    double grad_norm_sum = 0.0;
    int64_t steps = 0;
    int64_t batches = 0;
    int64_t skipped = 0;

    for (size_t begin = 0; begin < order.size();
         begin += cfg_.batch_size) {
      const size_t end =
          std::min(begin + cfg_.batch_size, order.size());
      opt.ZeroGrad();
      double batch_loss = 0.0;
      if (forward_batch > 1) {
        for (size_t i = begin; i < end; i += forward_batch) {
          const size_t sub_end = std::min(i + forward_batch, end);
          // One profiler step = one forward-batch's forward + backward.
          prof::StepScope prof_step;
          const std::vector<const Example*> chunk(
              order.begin() + static_cast<ptrdiff_t>(i),
              order.begin() + static_cast<ptrdiff_t>(sub_end));
          const SessionBatch sb = CollateSessions(chunk, cfg_.max_positions);
          // Declared before the loss so the chunk's graph (and any arena
          // views inside it) dies before the scope closes.
          arena::StepScope arena_step(ArenaKey(
              name_, "bt", num_items_, cfg_, BatchStructureHash(sb)));
          ag::Variable loss = BatchedLossOn(sb);
          const float chunk_n = static_cast<float>(sub_end - i);
          // BatchedLossOn is the chunk *mean*; batch_loss accumulates
          // per-example sums, and the backward scale re-weights the mean
          // so accumulated gradients equal the batch-mean gradient.
          batch_loss += static_cast<double>(loss.value().at(0)) * chunk_n;
          ag::Scale(loss, chunk_n * inv_batch).Backward();
        }
      } else {
        for (size_t i = begin; i < end; ++i) {
          // One profiler step = one example's forward + backward; the per-op
          // attributed times must sum to this span (prof_test pins it).
          prof::StepScope prof_step;
          arena::StepScope arena_step(ArenaKey(
              name_, "t", num_items_, cfg_, ExampleStructureHash(*order[i])));
          ag::Variable loss = LossOn(*order[i]);
          batch_loss += loss.value().at(0);
          // Scale so accumulated gradients equal the batch-mean gradient.
          ag::Scale(loss, inv_batch).Backward();
        }
      }
      const int64_t batch_examples = static_cast<int64_t>(end - begin);

      if (failpoints.ShouldFail("train.nan_grad")) {
        // Poison the accumulated gradient of the first parameter, the way
        // a real fp32 overflow in backward would.
        auto params = Parameters();
        if (!params.empty()) {
          Tensor poison(params[0].value().shape(),
                        std::numeric_limits<float>::quiet_NaN());
          params[0].node()->AccumulateGrad(poison);
        }
      }

      const float grad_norm =
          cfg_.clip_norm > 0.0f
              ? optim::ClipGradNorm(Parameters(), cfg_.clip_norm)
              : optim::GlobalGradNorm(Parameters());

      const robust::BatchVerdict verdict = guard.CheckBatch(
          batch_loss / static_cast<double>(batch_examples), grad_norm);
      if (verdict == robust::BatchVerdict::kOk) {
        epoch_loss += batch_loss;
        grad_norm_sum += grad_norm;
        steps += batch_examples;
        ++batches;
        opt.set_lr(epoch_lr * static_cast<float>(guard.lr_scale()));
        opt.Step();
        continue;
      }
      ++skipped;
      skipped_counter->Increment();
      if (verdict == robust::BatchVerdict::kRollback) {
        // Skipping can only cure a bad *batch*; after max_strikes
        // consecutive failures the parameters themselves are suspect, so
        // restore the last good state (weights + moments + RNG).
        EMBSR_LOG(Warning)
            << name_ << " epoch " << epoch + 1 << ": " << guard.strikes()
            << " consecutive unhealthy batches, rolling back to last good "
               "state (lr scale " << guard.lr_scale() << ")";
        RestoreParameters(good_params);
        EMBSR_CHECK_OK(opt.ImportState(good_opt_scalars, good_opt_slots));
        rng_.RestoreState(good_rng);
        guard.NotifyRollback();
      }
    }

    const double epoch_seconds = timer.ElapsedSeconds();
    const double mean_loss = steps > 0 ? epoch_loss / steps : 0.0;
    const double examples_per_sec =
        epoch_seconds > 0.0 ? static_cast<double>(steps) / epoch_seconds
                            : 0.0;
    loss_gauge->Set(mean_loss);
    throughput_gauge->Set(examples_per_sec);
    epoch_counter->Increment();

    if (cfg_.verbose) {
      EMBSR_LOG(Info) << name_ << " epoch " << epoch + 1 << "/"
                      << cfg_.epochs << " loss=" << mean_loss << " ("
                      << epoch_seconds << "s)";
    }

    double valid_mrr = -1.0;
    if (cfg_.validate_every > 0 && !data.valid.empty() &&
        (epoch + 1) % cfg_.validate_every == 0) {
      EMBSR_TRACE_SPAN("train/validate");
      const double mrr = ValidationMrr(data.valid, 400);
      valid_mrr = mrr;
      if (mrr > best_mrr) {
        best_mrr = mrr;
        best_params = SnapshotParameters();
      }
      if (cfg_.verbose) {
        EMBSR_LOG(Info) << name_ << " valid MRR@20=" << mrr;
      }
    }

    std::vector<Tensor> epoch_snapshot = SnapshotParameters();
    if (AllFinite(epoch_snapshot)) {
      good_params = std::move(epoch_snapshot);
      opt.ExportState(&good_opt_scalars, &good_opt_slots);
      good_rng = rng_.SaveState();
    }

    if (ckpt.ShouldSaveAfterEpoch(epoch + 1, cfg_.epochs)) {
      nn::TrainState st;
      st.epoch = epoch + 1;
      st.best_mrr = best_mrr;
      st.best_params = best_params;
      st.rng = rng_.SaveState();
      opt.ExportState(&st.opt_scalars, &st.opt_slots);
      const Status cs = ckpt.Save(*this, st);
      if (!cs.ok()) {
        // A failed checkpoint must not kill training: log it, keep the
        // previous checkpoints, and continue. Counted by the manager.
        EMBSR_LOG(Warning) << name_ << " epoch " << epoch + 1
                           << ": checkpoint save failed: " << cs.ToString();
      }
    }

    if (run_log != nullptr) {
      obs::EpochRecord rec;
      rec.model = name_;
      rec.dataset = data.name;
      rec.epoch = epoch + 1;
      rec.total_epochs = cfg_.epochs;
      rec.loss = mean_loss;
      rec.grad_norm = batches > 0 ? grad_norm_sum / batches : 0.0;
      rec.wall_seconds = epoch_seconds;
      rec.examples_per_sec = examples_per_sec;
      rec.lr = opt.lr();
      rec.valid_mrr = valid_mrr;
      rec.skipped_batches = skipped;
      run_log->LogEpoch(rec);
    }

    if (failpoints.ShouldFail("train.crash")) {
      return robust::InjectedFailure(
          "train.crash", "simulated crash after epoch " +
                             std::to_string(epoch + 1) + " of " + name_);
    }
  }

  if (!best_params.empty()) RestoreParameters(best_params);
  SetTraining(false);
  return Status::OK();
}

ag::Variable NeuralSessionModel::LossOn(const Example& ex) {
  // Contract: the example must reference this model's vocabulary. Item ids
  // inside the session are checked by Embedding at lookup; the target is
  // only ever used as a logits column, so check it here at the model edge.
  EMBSR_CHECK_BOUNDS(ex.target, 0, num_items_);
  ag::Variable logits = Logits(ex);
  prof::ComponentScope prof_component("loss");
  return ag::SoftmaxCrossEntropy(logits, {ex.target});
}

ag::Variable NeuralSessionModel::BatchedLogits(const SessionBatch& batch) {
  std::vector<ag::Variable> rows;
  rows.reserve(batch.examples.size());
  for (const Example* ex : batch.examples) rows.push_back(Logits(*ex));
  return rows.size() == 1 ? rows[0] : ag::StackRows(rows);
}

ag::Variable NeuralSessionModel::BatchedLossOn(const SessionBatch& batch) {
  // Same model-edge contract as LossOn: targets are only ever used as
  // logits columns, so bounds-check them here.
  // Indexed loop: EMBSR_CHECK_BOUNDS compiles to ((void)0) in
  // non-contracts builds, which would leave a range-for binding unused.
  for (size_t i = 0; i < batch.targets.size(); ++i) {
    EMBSR_CHECK_BOUNDS(batch.targets[i], 0, num_items_);
  }
  ag::Variable logits = BatchedLogits(batch);
  prof::ComponentScope prof_component("loss");
  return ag::SoftmaxCrossEntropy(logits, batch.targets);
}

std::vector<std::vector<float>> NeuralSessionModel::ScoreBatch(
    const std::vector<const Example*>& examples) {
  EMBSR_TIMED_SPAN("model/score_batch", "model/score_batch_ms");
  prof::Collector::MarkThisThread();
  const SessionBatch batch = CollateSessions(examples, cfg_.max_positions);
  // Mirror ScoreAll's mode handling: only toggle the training flag when
  // set, so concurrent eval-mode calls stay read-only.
  const bool was_training = training();
  if (was_training) SetTraining(false);
  arena::StepScope arena_step(
      ArenaKey(name_, "be", num_items_, cfg_, BatchStructureHash(batch)),
      /*forward_only=*/true);
  ag::Variable logits = BatchedLogits(batch);
  arena_step.SetRoot(logits);
  if (was_training) SetTraining(true);
  const Tensor& v = logits.value();
  EMBSR_CHECK_EQ(v.rows(), batch.batch);
  EMBSR_CHECK_EQ(v.cols(), num_items_);
  const std::vector<float>& flat = v.vec();
  std::vector<std::vector<float>> out(examples.size());
  for (size_t i = 0; i < examples.size(); ++i) {
    const auto begin =
        flat.begin() + static_cast<int64_t>(i) * num_items_;
    out[i].assign(begin, begin + num_items_);
  }
  return out;
}

std::vector<float> NeuralSessionModel::ScoreAll(const Example& ex) {
  EMBSR_TIMED_SPAN("model/score_all", "model/score_all_ms");
  // Inference has no StepScope; re-origin the forward gap here so time
  // spent between scoring calls is never attributed to the first op.
  prof::Collector::MarkThisThread();
  // Only toggle the mode flag if the model is actually in training mode.
  // When it is already in eval mode — the steady state after Fit(), and the
  // state the parallel evaluator pins via EnsureEvalMode() — this method
  // must not write any shared model state: concurrent ScoreAll calls from
  // evaluator threads rely on the forward pass being read-only.
  arena::StepScope arena_step(
      ArenaKey(name_, "e", num_items_, cfg_, ExampleStructureHash(ex)),
      /*forward_only=*/true);
  if (training()) {
    SetTraining(false);
    ag::Variable logits = Logits(ex);
    SetTraining(true);
    arena_step.SetRoot(logits);
    const Tensor& v = logits.value();
    EMBSR_CHECK_EQ(v.size(), num_items_);
    return v.vec();
  }
  ag::Variable logits = Logits(ex);
  arena_step.SetRoot(logits);
  const Tensor& v = logits.value();
  EMBSR_CHECK_EQ(v.size(), num_items_);
  return v.vec();
}

double NeuralSessionModel::ValidationMrr(const std::vector<Example>& split,
                                         size_t cap) {
  RankAccumulator acc;
  const size_t n = std::min(split.size(), cap);
  for (size_t i = 0; i < n; ++i) {
    acc.Add(RankOfTarget(ScoreAll(split[i]), split[i].target));
  }
  return acc.MrrAt(20);
}

std::vector<Tensor> NeuralSessionModel::SnapshotParameters() const {
  std::vector<Tensor> out;
  for (const auto& p : Parameters()) out.push_back(p.value());
  return out;
}

void NeuralSessionModel::RestoreParameters(
    const std::vector<Tensor>& snapshot) {
  auto params = Parameters();
  EMBSR_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = snapshot[i];
  }
}

}  // namespace embsr
