#ifndef EMBSR_MODELS_SESSION_BATCH_H_
#define EMBSR_MODELS_SESSION_BATCH_H_

#include <cstdint>
#include <vector>

#include "data/session.h"
#include "tensor/tensor.h"

namespace embsr {

/// A collated forward-batch of ragged sessions (session-parallel
/// mini-batching, Hidasi et al., arXiv 1511.06939). The collator emits two
/// parallel layouts so every model family can pick the one its math wants:
///
///  * Padded time-major, right-aligned: `time_major_items` row t*batch + b
///    is session b's macro item at step t, with sessions *front*-padded
///    (pad item 0) to `max_len` steps. Right alignment means a padded step
///    precedes its session's first real item, the hidden state stays
///    exactly zero through it (see GRU::ForwardBatchedLast), and every
///    session's final state lands at the last step — no end-gather needed.
///    `step_masks[t]` is a [batch, 1] 0/1 column of live sessions;
///    `step_all_valid[t]` flags steps where the mask is all ones.
///
///  * Session-major flat (no padding): `flat_items` concatenates the
///    truncated sessions back to back, `segment_ids` maps each row to its
///    session, and `last_row_index` points at each session's final row.
///    Attention models reduce over this layout with SegmentSumRows, so no
///    padded row ever exists to leak into a sum.
///
/// Sessions are truncated to their most recent `max_positions` macro items,
/// exactly like the per-session model forwards. Padding never contributes
/// to loss or gradients: the time-major path blends padded steps away by
/// bitwise row select (so grads into padded rows are exact zeros), and the
/// flat path has no padded rows at all. Each session still yields exactly
/// one logits row, so the batch loss needs no mask of its own.
struct SessionBatch {
  int64_t batch = 0;    // number of sessions B
  int64_t max_len = 0;  // padded step count T (longest truncated session)

  /// The collated examples, in batch order (borrowed pointers).
  std::vector<const Example*> examples;
  /// Truncated session lengths, in batch order.
  std::vector<int64_t> lengths;
  /// Per-session prediction targets, in batch order.
  std::vector<int64_t> targets;

  // Padded time-major layout.
  std::vector<int64_t> time_major_items;  // [T * B], pad item 0
  std::vector<Tensor> step_masks;         // T tensors of shape [B, 1]
  std::vector<uint8_t> step_all_valid;    // per step: mask all ones?

  // Session-major flat layout.
  std::vector<int64_t> flat_items;      // [sum(lengths)]
  std::vector<int64_t> segment_ids;     // row -> session, non-decreasing
  std::vector<int64_t> last_row_index;  // per session, into flat_items
  Tensor inv_len_col;                   // [B, 1] of 1 / lengths[b]
};

/// Collates `examples` (non-empty, borrowed) into a SessionBatch,
/// truncating each session to its most recent `max_positions` macro items.
SessionBatch CollateSessions(const std::vector<const Example*>& examples,
                             int64_t max_positions);

/// Forward-batch size from EMBSR_BATCH_SIZE, clamped to >= 1. The default 1
/// routes training and evaluation through the legacy per-session path.
int ForwardBatchSizeFromEnv();

}  // namespace embsr

#endif  // EMBSR_MODELS_SESSION_BATCH_H_
