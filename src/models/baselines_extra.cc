#include "models/baselines_extra.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace embsr {

using ag::Variable;

namespace {

template <typename T>
std::vector<T> Tail(const std::vector<T>& v, size_t max_len) {
  if (v.size() <= max_len) return v;
  return std::vector<T>(v.end() - max_len, v.end());
}

}  // namespace

// -- GRU4Rec --------------------------------------------------------------------

Gru4Rec::Gru4Rec(int64_t num_items, int64_t num_operations,
                 const TrainConfig& cfg)
    : NeuralSessionModel("GRU4Rec", num_items, num_operations, cfg),
      items_(num_items, cfg.embedding_dim, rng()),
      gru_(cfg.embedding_dim, cfg.embedding_dim, rng()) {
  RegisterModule("items", &items_);
  RegisterModule("gru", &gru_);
}

Variable Gru4Rec::Logits(const Example& ex) {
  using namespace ag;  // NOLINT
  const auto seq = Tail(ex.macro_items, config().max_positions);
  Variable x = items_.Forward(seq);
  x = Dropout(x, config().dropout, training(), rng());
  Variable h = gru_.ForwardLast(x);
  return MatMul(h, Transpose(items_.table()));
}

Variable Gru4Rec::BatchedLogits(const SessionBatch& batch) {
  using namespace ag;  // NOLINT
  Variable x = items_.Forward(batch.time_major_items);  // [T*B, d]
  x = Dropout(x, config().dropout, training(), rng());
  Variable h = gru_.ForwardBatchedLast(x, batch.batch, batch.step_masks,
                                       batch.step_all_valid);  // [B, d]
  return MatMul(h, Transpose(items_.table()));
}

// -- FPMC -----------------------------------------------------------------------

Fpmc::Fpmc(int64_t num_items, int64_t num_operations, const TrainConfig& cfg)
    : NeuralSessionModel("FPMC", num_items, num_operations, cfg),
      item_to_latent_(num_items, cfg.embedding_dim, rng()),
      latent_to_item_(num_items, cfg.embedding_dim, rng()) {
  RegisterModule("item_to_latent", &item_to_latent_);
  RegisterModule("latent_to_item", &latent_to_item_);
}

Variable Fpmc::Logits(const Example& ex) {
  using namespace ag;  // NOLINT
  EMBSR_CHECK(!ex.macro_items.empty());
  Variable last = item_to_latent_.Forward({ex.macro_items.back()});
  return MatMul(last, Transpose(latent_to_item_.table()));
}

// -- STAN -----------------------------------------------------------------------

Stan::Stan(int64_t num_items, int k, float lambda_recency,
           float lambda_distance)
    : num_items_(num_items),
      k_(k),
      lambda_recency_(lambda_recency),
      lambda_distance_(lambda_distance) {}

Status Stan::Fit(const ProcessedDataset& data) {
  session_seqs_.clear();
  item_to_sessions_.assign(num_items_, {});
  session_seqs_.reserve(data.train.size());
  for (const auto& ex : data.train) {
    std::vector<int64_t> seq = ex.macro_items;
    seq.push_back(ex.target);
    const int32_t sid = static_cast<int32_t>(session_seqs_.size());
    std::unordered_set<int64_t> distinct(seq.begin(), seq.end());
    for (int64_t item : distinct) {
      EMBSR_CHECK_LT(item, num_items_);
      item_to_sessions_[item].push_back(sid);
    }
    session_seqs_.push_back(std::move(seq));
  }
  return Status::OK();
}

std::vector<float> Stan::ScoreAll(const Example& ex) {
  std::vector<float> scores(num_items_, 0.0f);
  const auto& cur = ex.macro_items;
  if (cur.empty()) return scores;

  // Recency weight of each current-session item: items near the end count
  // more when measuring similarity (STAN's first extension over SKNN).
  std::unordered_map<int64_t, float> cur_weight;
  const size_t t = cur.size();
  for (size_t i = 0; i < t; ++i) {
    const float w = std::exp(-lambda_recency_ *
                             static_cast<float>(t - 1 - i));
    auto [it, inserted] = cur_weight.try_emplace(cur[i], w);
    if (!inserted) it->second = std::max(it->second, w);
  }

  // Candidate neighbours and their recency-weighted overlap.
  std::unordered_map<int32_t, float> overlap;
  for (const auto& [item, w] : cur_weight) {
    const auto& sessions = item_to_sessions_[item];
    const size_t limit = std::min<size_t>(sessions.size(), 1000);
    for (size_t i = 0; i < limit; ++i) overlap[sessions[i]] += w;
  }
  if (overlap.empty()) return scores;

  struct Neighbour {
    int32_t sid;
    float sim;
  };
  std::vector<Neighbour> neighbours;
  neighbours.reserve(overlap.size());
  for (const auto& [sid, shared] : overlap) {
    const float sim =
        shared / std::sqrt(static_cast<float>(cur.size()) *
                           static_cast<float>(session_seqs_[sid].size()));
    neighbours.push_back({sid, sim});
  }
  const size_t k = std::min<size_t>(k_, neighbours.size());
  std::partial_sort(
      neighbours.begin(), neighbours.begin() + k, neighbours.end(),
      [](const Neighbour& a, const Neighbour& b) { return a.sim > b.sim; });

  // Score neighbor items, decayed by distance from the position of the
  // *most recent shared item* in the neighbor session (second extension).
  for (size_t ni = 0; ni < k; ++ni) {
    const auto& seq = session_seqs_[neighbours[ni].sid];
    int match_pos = -1;
    // Walk the current session from its end to find the freshest match.
    for (auto it = cur.rbegin(); it != cur.rend() && match_pos < 0; ++it) {
      for (size_t p = 0; p < seq.size(); ++p) {
        if (seq[p] == *it) match_pos = static_cast<int>(p);
      }
    }
    if (match_pos < 0) continue;
    for (size_t p = 0; p < seq.size(); ++p) {
      const float dist =
          std::fabs(static_cast<float>(p) - static_cast<float>(match_pos));
      scores[seq[p]] +=
          neighbours[ni].sim * std::exp(-lambda_distance_ * dist);
    }
  }
  return scores;
}

}  // namespace embsr
