#ifndef EMBSR_MODELS_BASELINES_EXTRA_H_
#define EMBSR_MODELS_BASELINES_EXTRA_H_

#include "nn/layers.h"
#include "models/neural_model.h"
#include "models/recommender.h"

namespace embsr {

/// Additional classic baselines discussed in the paper's related work but
/// not part of its Table III. They round out the comparison for downstream
/// users (and serve as sanity anchors: anything in Table III should beat
/// a first-order Markov model).

/// GRU4Rec (Hidasi et al. 2016), simplified to whole-session training:
/// a GRU over item embeddings; the last hidden state scores all items by
/// dot product with the (tied) item embedding table.
class Gru4Rec : public NeuralSessionModel {
 public:
  Gru4Rec(int64_t num_items, int64_t num_operations, const TrainConfig& cfg);

 protected:
  ag::Variable Logits(const Example& ex) override;

  /// Session-parallel batched forward: one embedding gather over the
  /// padded time-major items, one masked GRU unroll, one decode GEMM
  /// against the item table (transposed once per batch, not per session).
  ag::Variable BatchedLogits(const SessionBatch& batch) override;

 private:
  nn::Embedding items_;
  nn::GRU gru_;
};

/// FPMC (Rendle et al. 2010) restricted to the session setting: a
/// factorized first-order Markov chain. score(next = j | last = i) =
/// <e_IL(i), e_LI(j)> with two learned embedding tables (there is no user
/// factor because sessions are anonymous).
class Fpmc : public NeuralSessionModel {
 public:
  Fpmc(int64_t num_items, int64_t num_operations, const TrainConfig& cfg);

 protected:
  ag::Variable Logits(const Example& ex) override;

 private:
  nn::Embedding item_to_latent_;  // e_IL, indexed by the last item
  nn::Embedding latent_to_item_;  // e_LI, the candidate side
};

/// STAN (Garg et al. 2019): sequence- and time-aware neighborhood — SKNN
/// with (1) recency-weighted session similarity (recent items of the
/// current session count more) and (2) neighbor items weighted by their
/// distance from the matched item inside the neighbor session.
class Stan : public Recommender {
 public:
  Stan(int64_t num_items, int k = 100, float lambda_recency = 0.5f,
       float lambda_distance = 0.5f);

  std::string name() const override { return "STAN"; }
  Status Fit(const ProcessedDataset& data) override;
  std::vector<float> ScoreAll(const Example& ex) override;

 private:
  int64_t num_items_;
  int k_;
  float lambda_recency_;
  float lambda_distance_;
  /// Ordered item sequences (input + target) of the training sessions.
  std::vector<std::vector<int64_t>> session_seqs_;
  std::vector<std::vector<int32_t>> item_to_sessions_;
};

}  // namespace embsr

#endif  // EMBSR_MODELS_BASELINES_EXTRA_H_
