#include "optim/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace embsr {
namespace optim {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

void Optimizer::ExportState(std::vector<double>* scalars,
                            std::vector<Tensor>* slots) const {
  scalars->clear();
  slots->clear();
}

Status Optimizer::ImportState(const std::vector<double>& scalars,
                              const std::vector<Tensor>& slots) {
  if (!scalars.empty() || !slots.empty()) {
    return Status::FailedPrecondition(
        "stateless optimizer given non-empty state");
  }
  return Status::OK();
}

namespace {

/// Shared by Sgd/Adam imports: checks a slot list against the live buffers
/// before any mutation so a failed import leaves the optimizer untouched.
Status CheckSlots(const std::vector<Tensor>& slots, size_t offset,
                  const std::vector<Tensor>& expected, const char* what) {
  if (slots.size() < offset + expected.size()) {
    return Status::FailedPrecondition(std::string("optimizer state has too "
                                                  "few slots for ") +
                                      what);
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (slots[offset + i].shape() != expected[i].shape()) {
      return Status::FailedPrecondition(
          std::string("optimizer slot shape mismatch in ") + what +
          " at index " + std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace

Sgd::Sgd(std::vector<ag::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.push_back(Tensor::Zeros(p.value().shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    Tensor g = p.GradOrZeros();
    if (momentum_ != 0.0f) {
      velocity_[i].ScaleInPlace(momentum_);
      velocity_[i].AddInPlace(g);
      g = velocity_[i];
    }
    p.mutable_value().SubInPlace(Scale(g, lr_));
  }
}

void Sgd::ExportState(std::vector<double>* scalars,
                      std::vector<Tensor>* slots) const {
  scalars->clear();
  *slots = velocity_;
}

Status Sgd::ImportState(const std::vector<double>& scalars,
                        const std::vector<Tensor>& slots) {
  if (!scalars.empty() || slots.size() != velocity_.size()) {
    return Status::FailedPrecondition("SGD state layout mismatch");
  }
  Status s = CheckSlots(slots, 0, velocity_, "SGD velocity");
  if (!s.ok()) return s;
  velocity_ = slots;
  return Status::OK();
}

Adam::Adam(std::vector<ag::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::Zeros(p.value().shape()));
    v_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.GradOrZeros();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    float* pw = p.mutable_value().data();
    const float* pg = g.data();
    const int64_t n = g.size();
    for (int64_t k = 0; k < n; ++k) {
      float gk = pg[k];
      if (weight_decay_ != 0.0f) gk += weight_decay_ * pw[k];
      pm[k] = beta1_ * pm[k] + (1.0f - beta1_) * gk;
      pv[k] = beta2_ * pv[k] + (1.0f - beta2_) * gk * gk;
      const float mhat = pm[k] / bc1;
      const float vhat = pv[k] / bc2;
      pw[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::ExportState(std::vector<double>* scalars,
                       std::vector<Tensor>* slots) const {
  scalars->assign({static_cast<double>(t_)});
  slots->clear();
  slots->reserve(m_.size() + v_.size());
  for (const auto& t : m_) slots->push_back(t);
  for (const auto& t : v_) slots->push_back(t);
}

Status Adam::ImportState(const std::vector<double>& scalars,
                         const std::vector<Tensor>& slots) {
  if (scalars.size() != 1 || slots.size() != m_.size() + v_.size()) {
    return Status::FailedPrecondition("Adam state layout mismatch");
  }
  Status s = CheckSlots(slots, 0, m_, "Adam first moment");
  if (!s.ok()) return s;
  s = CheckSlots(slots, m_.size(), v_, "Adam second moment");
  if (!s.ok()) return s;
  t_ = static_cast<int64_t>(scalars[0]);
  for (size_t i = 0; i < m_.size(); ++i) m_[i] = slots[i];
  for (size_t i = 0; i < v_.size(); ++i) v_[i] = slots[m_.size() + i];
  return Status::OK();
}

float GlobalGradNorm(const std::vector<ag::Variable>& params) {
  double total = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const float n = p.GradOrZeros().L2Norm();
    total += static_cast<double>(n) * n;
  }
  return static_cast<float>(std::sqrt(total));
}

float ClipGradNorm(const std::vector<ag::Variable>& params, float max_norm) {
  EMBSR_CHECK_GT(max_norm, 0.0f);
  const float norm = GlobalGradNorm(params);
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& pv : params) {
      // GradOrZeros copies; mutate via the node by re-accumulating scaled.
      ag::Variable p = pv;
      if (!p.has_grad()) continue;
      Tensor g = p.GradOrZeros();
      g.ScaleInPlace(scale);
      p.ZeroGrad();
      p.node()->AccumulateGrad(g);
    }
  }
  return norm;
}

float StepDecaySchedule::LrForEpoch(int epoch) const {
  EMBSR_CHECK_GE(epoch, 0);
  EMBSR_CHECK_GT(step_size_, 0);
  return base_lr_ * std::pow(gamma_, static_cast<float>(epoch / step_size_));
}

}  // namespace optim
}  // namespace embsr
