#include "optim/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace embsr {
namespace optim {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<ag::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.push_back(Tensor::Zeros(p.value().shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    Tensor g = p.GradOrZeros();
    if (momentum_ != 0.0f) {
      velocity_[i].ScaleInPlace(momentum_);
      velocity_[i].AddInPlace(g);
      g = velocity_[i];
    }
    p.mutable_value().SubInPlace(Scale(g, lr_));
  }
}

Adam::Adam(std::vector<ag::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::Zeros(p.value().shape()));
    v_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.GradOrZeros();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    float* pw = p.mutable_value().data();
    const float* pg = g.data();
    const int64_t n = g.size();
    for (int64_t k = 0; k < n; ++k) {
      float gk = pg[k];
      if (weight_decay_ != 0.0f) gk += weight_decay_ * pw[k];
      pm[k] = beta1_ * pm[k] + (1.0f - beta1_) * gk;
      pv[k] = beta2_ * pv[k] + (1.0f - beta2_) * gk * gk;
      const float mhat = pm[k] / bc1;
      const float vhat = pv[k] / bc2;
      pw[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

float GlobalGradNorm(const std::vector<ag::Variable>& params) {
  double total = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const float n = p.GradOrZeros().L2Norm();
    total += static_cast<double>(n) * n;
  }
  return static_cast<float>(std::sqrt(total));
}

float ClipGradNorm(const std::vector<ag::Variable>& params, float max_norm) {
  EMBSR_CHECK_GT(max_norm, 0.0f);
  const float norm = GlobalGradNorm(params);
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& pv : params) {
      // GradOrZeros copies; mutate via the node by re-accumulating scaled.
      ag::Variable p = pv;
      if (!p.has_grad()) continue;
      Tensor g = p.GradOrZeros();
      g.ScaleInPlace(scale);
      p.ZeroGrad();
      p.node()->AccumulateGrad(g);
    }
  }
  return norm;
}

float StepDecaySchedule::LrForEpoch(int epoch) const {
  EMBSR_CHECK_GE(epoch, 0);
  EMBSR_CHECK_GT(step_size_, 0);
  return base_lr_ * std::pow(gamma_, static_cast<float>(epoch / step_size_));
}

}  // namespace optim
}  // namespace embsr
