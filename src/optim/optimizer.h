#ifndef EMBSR_OPTIM_OPTIMIZER_H_
#define EMBSR_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"
#include "util/status.h"

namespace embsr {
namespace optim {

/// Interface for gradient-based optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the parameters' accumulated gradients.
  /// Parameters with no accumulated gradient are skipped.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Serializes the optimizer's internal state (step counters, moment
  /// buffers) into an opaque scalar list + tensor list, the shape the
  /// checkpoint format stores (nn::TrainState). The base implementation
  /// exports nothing (stateless optimizers).
  virtual void ExportState(std::vector<double>* scalars,
                           std::vector<Tensor>* slots) const;

  /// Restores state produced by ExportState of the same optimizer type
  /// over the same parameter list. FailedPrecondition on count/shape
  /// mismatch; the optimizer is left untouched on error.
  virtual Status ImportState(const std::vector<double>& scalars,
                             const std::vector<Tensor>& slots);

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  std::vector<ag::Variable> params_;
  float lr_ = 0.001f;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Variable> params, float lr, float momentum = 0.0f);

  void Step() override;
  void ExportState(std::vector<double>* scalars,
                   std::vector<Tensor>* slots) const override;
  Status ImportState(const std::vector<double>& scalars,
                     const std::vector<Tensor>& slots) override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction; the paper's optimizer.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;
  void ExportState(std::vector<double>* scalars,
                   std::vector<Tensor>* slots) const override;
  Status ImportState(const std::vector<double>& scalars,
                     const std::vector<Tensor>& slots) override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// L2 norm of all accumulated gradients taken together (parameters with no
/// gradient contribute zero).
float GlobalGradNorm(const std::vector<ag::Variable>& params);

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<ag::Variable>& params, float max_norm);

/// Multiplicative learning-rate decay: lr = base * gamma^(epoch / step_size).
/// Matches the schedule in the paper's MKM-SR-derived training setup.
class StepDecaySchedule {
 public:
  StepDecaySchedule(float base_lr, int step_size, float gamma)
      : base_lr_(base_lr), step_size_(step_size), gamma_(gamma) {}

  float LrForEpoch(int epoch) const;

 private:
  float base_lr_;
  int step_size_;
  float gamma_;
};

}  // namespace optim
}  // namespace embsr

#endif  // EMBSR_OPTIM_OPTIMIZER_H_
