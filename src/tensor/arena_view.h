#ifndef EMBSR_TENSOR_ARENA_VIEW_H_
#define EMBSR_TENSOR_ARENA_VIEW_H_

#include <cstdint>

#include "util/check.h"

namespace embsr {

/// Metadata for a tensor whose storage lives inside the arena executor's
/// pre-planned block instead of its own heap vector (DESIGN.md §17). The
/// executor (src/arena) creates one view per placed plan buffer; a Tensor
/// holding a non-null ArenaView* owns no bytes — data()/size() route here.
///
/// The view doubles as the lifetime-conformance sentinel's checkpoint:
/// every touch of arena storage funnels through ArenaViewData(), which
/// cross-checks the executor's step clock against the plan's
/// [first_def, last_use] interval. `expired` (set when the executor sweeps
/// the buffer at its planned death, or spills it on fallback) is checked
/// unconditionally; the clock-interval checks run when the executor armed
/// `strict` (EMBSR_CHECK_CONTRACTS builds, or the test override).
///
/// Views are pool-recycled by the executor, never freed mid-run, so a
/// stale pointer in an escaped Tensor still points at live memory; the
/// `generation` stamp (checked by Tensor, which records the value at
/// placement) turns such an escape into a FATAL instead of a silent read
/// of whatever buffer reuses the slot.
struct ArenaView {
  float* base = nullptr;
  int64_t elems = 0;
  int64_t def_step = 0;       // plan step of first write
  int64_t last_use_step = 0;  // plan step of last read/accumulation
  const int64_t* clock = nullptr;  // the owning executor's step clock
  uint64_t generation = 0;    // bumped each time the slot is recycled
  const char* label = "";     // diagnostic name (op or parameter)
  int64_t buffer_id = -1;     // PlanBuffer::id in the cached plan
  bool is_grad = false;
  bool strict = false;   // arm the interval checks (sentinel mode)
  bool expired = false;  // swept at planned death or spilled
};

/// The single gate in front of arena bytes. FATAL diagnostics name the
/// violation class, the buffer and the plan step, mirroring the verifier's
/// tag vocabulary so a dynamic alarm reads like a static one.
inline float* ArenaViewData(const ArenaView* v) {
  EMBSR_CHECK_MSG(!v->expired,
                  "[use-after-free] arena %s buffer #%lld ('%s') touched "
                  "after its planned interval [%lld, %lld] was swept",
                  v->is_grad ? "grad" : "value",
                  static_cast<long long>(v->buffer_id), v->label,
                  static_cast<long long>(v->def_step),
                  static_cast<long long>(v->last_use_step));
  if (v->strict) {
    const int64_t now = *v->clock;
    EMBSR_CHECK_MSG(now >= v->def_step,
                    "[use-before-def] arena %s buffer #%lld ('%s') touched "
                    "at plan step %lld before its first def at step %lld",
                    v->is_grad ? "grad" : "value",
                    static_cast<long long>(v->buffer_id), v->label,
                    static_cast<long long>(now),
                    static_cast<long long>(v->def_step));
    EMBSR_CHECK_MSG(now <= v->last_use_step,
                    "[use-after-free] arena %s buffer #%lld ('%s') touched "
                    "at plan step %lld past its last use at step %lld",
                    v->is_grad ? "grad" : "value",
                    static_cast<long long>(v->buffer_id), v->label,
                    static_cast<long long>(now),
                    static_cast<long long>(v->last_use_step));
  }
  return v->base;
}

}  // namespace embsr

#endif  // EMBSR_TENSOR_ARENA_VIEW_H_
