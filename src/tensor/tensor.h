#ifndef EMBSR_TENSOR_TENSOR_H_
#define EMBSR_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "prof/mem_tracker.h"
#include "tensor/arena_view.h"
#include "tensor/buffer_pool.h"
#include "util/rng.h"

namespace embsr {

/// A dense, row-major, contiguous float32 tensor.
///
/// This is the storage substrate under the autograd engine: a Tensor itself
/// has no gradient and no graph — it is just shaped numeric data plus
/// kernels. All neural models in the repo ultimately bottom out in these
/// kernels, so relative benchmark comparisons between models are fair.
///
/// Shapes use int64 extents; rank 0 (scalar), 1 (vector), 2 (matrix) and 3
/// are used in practice. Copy is deep (value semantics), moves are cheap.
class Tensor {
 public:
  /// An empty (rank-0, size-1) scalar tensor holding 0.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Tensor of the given shape with every element set to `fill`.
  Tensor(std::vector<int64_t> shape, float fill);

  /// Tensor with explicit contents; `data.size()` must equal the shape size.
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  // -- Factories -------------------------------------------------------------

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor Scalar(float value);
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(std::vector<int64_t> shape, float stddev, Rng* rng);
  /// I.i.d. Uniform(lo, hi) entries.
  static Tensor RandUniform(std::vector<int64_t> shape, float lo, float hi,
                            Rng* rng);

  /// Adopts storage inside the arena executor's planned block: the tensor
  /// owns no bytes, and every data()/size() routes through the view (and
  /// its lifetime-conformance sentinel). The view must outlive the tensor's
  /// *accesses* — the executor guarantees slot memory stays alive for the
  /// thread and stamps `generation` so post-step escapes die loudly instead
  /// of reading a recycled slot. shape must match the view's element count.
  static Tensor FromArenaView(ArenaView* view, std::vector<int64_t> shape);

  // -- Special members --------------------------------------------------------
  // Spelled out (rule of five) so the memory profiler sees every buffer
  // acquisition and release; when profiling is off each alloc hook is one
  // relaxed atomic load + branch and each free is a plain branch on the
  // counted flag (DESIGN.md §13). The flag travels with the buffer: moves
  // transfer it (and explicitly empty the source) so the byte accounting
  // matches ownership exactly, and a tensor allocated before prof::Start()
  // is never subtracted from a session it was never added to.

  // Arena-view tensors (view_ != nullptr) own no storage: their destructor
  // releases nothing and prof never counted them (the executor accounts the
  // arena block as a whole). Heap tensors release through the recycling
  // pool, which is inert until an arena step enables it on the thread.
  // Copying *from* a view materializes a deep heap copy through the view's
  // sentinel gate, so an expired source is caught, not silently duplicated.

  ~Tensor() {
    if (view_ != nullptr) return;  // the arena owns the bytes
    prof::OnTensorFree(size(), prof_counted_);
    tensor_pool::Release(&data_);
  }

  Tensor(const Tensor& other) : shape_(other.shape_) {
    tensor_pool::AcquireCopy(&data_, other.data(), other.size());
    prof_counted_ = prof::OnTensorAlloc(size());
  }

  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      if (view_ != nullptr) {
        view_ = nullptr;
      } else {
        prof::OnTensorFree(size(), prof_counted_);
      }
      shape_ = other.shape_;
      tensor_pool::AcquireCopy(&data_, other.data(), other.size());
      prof_counted_ = prof::OnTensorAlloc(size());
    }
    return *this;
  }

  Tensor(Tensor&& other) noexcept
      : shape_(std::move(other.shape_)),
        data_(std::move(other.data_)),
        prof_counted_(other.prof_counted_),
        view_(other.view_),
        view_gen_(other.view_gen_) {
    other.shape_.clear();
    other.data_.clear();
    other.prof_counted_ = false;
    other.view_ = nullptr;
  }

  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      if (view_ == nullptr) {
        prof::OnTensorFree(size(), prof_counted_);
        tensor_pool::Release(&data_);
      }
      shape_ = std::move(other.shape_);
      data_ = std::move(other.data_);
      prof_counted_ = other.prof_counted_;
      view_ = other.view_;
      view_gen_ = other.view_gen_;
      other.shape_.clear();
      other.data_.clear();
      other.prof_counted_ = false;
      other.view_ = nullptr;
    }
    return *this;
  }

  // -- Introspection ----------------------------------------------------------

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size() const {
    return view_ != nullptr ? view_->elems
                            : static_cast<int64_t>(data_.size());
  }
  int64_t dim(int64_t axis) const;
  /// Number of rows / columns; requires rank <= 2 (rank-1 is a single row).
  int64_t rows() const;
  int64_t cols() const;

  bool is_arena_view() const { return view_ != nullptr; }

  const float* data() const {
    return view_ != nullptr ? CheckedViewData() : data_.data();
  }
  float* data() { return view_ != nullptr ? CheckedViewData() : data_.data(); }
  const std::vector<float>& vec() const {
    // Roots the arena never places (loss, logits) are the only tensors read
    // this way; a view here means the placement policy regressed.
    EMBSR_CHECK_MSG(view_ == nullptr,
                    "vec() on an arena-placed tensor ('%s'): arena views "
                    "expose data()/size() only", view_->label);
    return data_;
  }

  float at(int64_t i) const;
  float& at(int64_t i);
  float at2(int64_t i, int64_t j) const;
  float& at2(int64_t i, int64_t j);

  /// True if shapes are equal and every element differs by <= tol.
  bool AllClose(const Tensor& other, float tol = 1e-5f) const;

  std::string ShapeString() const;
  std::string ToString(int64_t max_elems = 64) const;

  // -- Shape ops ---------------------------------------------------------------

  /// Returns a copy with a new shape of the same total size.
  Tensor Reshape(std::vector<int64_t> new_shape) const;
  /// Matrix transpose; requires rank 2.
  Tensor Transposed() const;
  /// Copy of rows [begin, end) of a rank-2 tensor (or elements for rank-1).
  Tensor SliceRows(int64_t begin, int64_t end) const;
  /// Copy of a single row as a [1, cols] tensor.
  Tensor Row(int64_t r) const;

  // -- In-place arithmetic (used by the optimizers) ------------------------------

  Tensor& AddInPlace(const Tensor& other);
  Tensor& SubInPlace(const Tensor& other);
  Tensor& MulInPlace(const Tensor& other);
  Tensor& ScaleInPlace(float s);
  Tensor& Fill(float value);

  /// Frobenius (flattened L2) norm.
  float L2Norm() const;

 private:
  /// View adoption (FromArenaView): no storage, no prof accounting.
  Tensor(ArenaView* view, std::vector<int64_t> shape)
      : shape_(std::move(shape)), view_(view), view_gen_(view->generation) {}

  float* CheckedViewData() const {
    EMBSR_CHECK_MSG(view_->generation == view_gen_,
                    "[use-after-free] arena view slot for '%s' was recycled "
                    "under a tensor that escaped its step scope",
                    view_->label);
    return ArenaViewData(view_);
  }

  std::vector<int64_t> shape_;
  std::vector<float> data_;
  // Whether the memory profiler counted this buffer at allocation; handed
  // back to prof::OnTensorFree so only counted buffers are subtracted.
  bool prof_counted_ = false;
  ArenaView* view_ = nullptr;
  uint64_t view_gen_ = 0;
};

// -- Out-of-place kernels -------------------------------------------------------

/// Elementwise; shapes must match exactly.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

/// Adds a [1, d] (or rank-1 length-d) bias row to every row of a [n, d].
Tensor AddRowBroadcast(const Tensor& a, const Tensor& row);

/// Multiplies every row of a [n, d] elementwise by a [1, d] (or rank-1
/// length-d) row.
Tensor MulRowBroadcast(const Tensor& a, const Tensor& row);

Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);

/// [n, k] x [k, m] -> [n, m].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Sum of all elements as a scalar tensor.
Tensor SumAll(const Tensor& a);
/// Column sums: [n, d] -> [1, d].
Tensor SumRowsTo1xD(const Tensor& a);
/// Row sums: [n, d] -> [n, 1].
Tensor SumColsToNx1(const Tensor& a);
/// Arithmetic mean of all elements.
float MeanAll(const Tensor& a);

/// Row-wise softmax of a rank-2 tensor (numerically stabilized).
Tensor RowSoftmax(const Tensor& a);

/// Row-wise softmax with additive mask: entries where mask==0 get -inf
/// before the softmax. `mask` is [n, m] of 0/1.
Tensor RowSoftmaxMasked(const Tensor& a, const Tensor& mask);

/// Row-wise log(sum(exp(x))) of a rank-2 tensor (numerically stabilized):
/// [n, m] -> [n, 1].
Tensor RowLogSumExp(const Tensor& a);

/// Gathers rows of `table` ([v, d]) at `indices` -> [indices.size(), d].
Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices);

/// grad_table[indices[i]] += grad_rows[i] for each i; shapes [n,d] into [v,d].
void ScatterAddRows(const Tensor& grad_rows,
                    const std::vector<int64_t>& indices, Tensor* grad_table);

/// Row-wise bitwise select: out row i is a's row i where mask[i] != 0, else
/// b's row i. `mask` is [n, 1] (or rank-1 length-n); a and b are [n, d].
/// Rows are copied, not blended, so the selected row is bit-identical to its
/// source — the property the batched GRU's masked step updates rely on.
Tensor SelectRowsByMask(const Tensor& a, const Tensor& b, const Tensor& mask);

/// Segment sum over rows: out[segments[i]] += a[i] for each row i of a in
/// ascending order, into a zeroed [num_segments, d] output. Each segment id
/// must lie in [0, num_segments); empty segments stay zero. With rows of one
/// segment contiguous and ascending, each output row accumulates in the same
/// order as SumRowsTo1xD over that segment's slice.
Tensor SegmentSumRows(const Tensor& a, const std::vector<int64_t>& segments,
                      int64_t num_segments);

/// Concatenates rank-2 tensors along columns ([n, d1] + [n, d2] -> [n, d1+d2]).
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Concatenates rank-2 tensors along rows ([n1, d] + [n2, d] -> [n1+n2, d]).
Tensor ConcatRows(const Tensor& a, const Tensor& b);

/// L2-normalizes each row to unit norm (rows of zero norm are left zero).
Tensor L2NormalizeRows(const Tensor& a, float eps = 1e-12f);

}  // namespace embsr

#endif  // EMBSR_TENSOR_TENSOR_H_
