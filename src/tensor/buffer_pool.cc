#include "tensor/buffer_pool.h"

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

namespace embsr {
namespace tensor_pool {

namespace {

/// Keep at most this many parked bytes per thread; beyond it, released
/// buffers just die. Far above any zoo working set, far below trouble.
constexpr int64_t kMaxCachedBytes = int64_t{64} << 20;

/// Buffers park in power-of-two size classes: class c holds capacities in
/// [2^c, 2^(c+1)). Acquire pops from the class that guarantees the fit,
/// Release pushes onto the class its capacity fills — both O(1), which is
/// what keeps a 10k-buffer graph step linear in its buffer count instead
/// of quadratic (a flat sorted free list shifts half the pool per call).
constexpr int kMinClassBits = 6;  // 64 floats = 256 B; smaller isn't worth parking
constexpr int kNumClasses = 26;   // up to 2^31 floats, far past kMaxCachedBytes

/// Smallest class whose every member fits a request of n floats.
int ClassForRequest(int64_t n) {
  int c = kMinClassBits;
  while (c < kMinClassBits + kNumClasses - 1 && (int64_t{1} << c) < n) ++c;
  return c - kMinClassBits;
}

/// Largest class whose guarantee (capacity >= 2^c) this capacity honours;
/// -1 when the buffer is too small to park.
int ClassForCapacity(size_t cap) {
  if (cap < (size_t{1} << kMinClassBits)) return -1;
  int c = kMinClassBits;
  while (c + 1 < kMinClassBits + kNumClasses &&
         (size_t{1} << (c + 1)) <= cap) {
    ++c;
  }
  return c - kMinClassBits;
}

struct Pool {
  bool enabled = false;
  int64_t cached_bytes = 0;
  int64_t heap_acquires = 0;
  // LIFO per class: the most recently released buffer is the hottest.
  std::array<std::vector<std::vector<float>>, kNumClasses> classes;
};

Pool& ThisPool() {
  thread_local Pool pool;
  return pool;
}

/// Round a heap acquisition up to its class boundary (when that does not
/// overshoot a clamped request): every buffer that later cycles through the
/// pool then has an exact class capacity, so steady-state traffic always
/// finds its match in the first class probed and HeapAcquires() reaches a
/// fixed point after one warm-up step.
void ReserveClass(Pool* p, std::vector<float>* out, int64_t n) {
  if (!p->enabled) return;
  const size_t cls = size_t{1} << (ClassForRequest(n) + kMinClassBits);
  if (cls >= static_cast<size_t>(n)) out->reserve(cls);
}

/// Pull a parked buffer guaranteed to hold n floats into *out; returns
/// false (leaving *out alone) when every fitting class is empty.
bool TakeFrom(Pool* p, std::vector<float>* out, int64_t n) {
  const int first = ClassForRequest(n);
  for (int c = first; c < kNumClasses; ++c) {
    std::vector<std::vector<float>>& bucket =
        p->classes[static_cast<size_t>(c)];
    if (bucket.empty()) continue;
    p->cached_bytes -=
        static_cast<int64_t>(bucket.back().capacity() * sizeof(float));
    *out = std::move(bucket.back());
    bucket.pop_back();
    return true;
  }
  return false;
}

}  // namespace

bool Enabled() { return ThisPool().enabled; }

void Enable() { ThisPool().enabled = true; }

void Acquire(std::vector<float>* out, int64_t n, float fill) {
  Pool& p = ThisPool();
  if (p.enabled && out->capacity() < static_cast<size_t>(n)) {
    TakeFrom(&p, out, n);
  }
  if (out->capacity() < static_cast<size_t>(n)) {
    ++p.heap_acquires;
    ReserveClass(&p, out, n);
  }
  out->assign(static_cast<size_t>(n), fill);
}

void AcquireCopy(std::vector<float>* out, const float* src, int64_t n) {
  Pool& p = ThisPool();
  if (p.enabled && out->capacity() < static_cast<size_t>(n)) {
    TakeFrom(&p, out, n);
  }
  if (out->capacity() < static_cast<size_t>(n)) {
    ++p.heap_acquires;
    ReserveClass(&p, out, n);
  }
  out->assign(src, src + n);
}

void Release(std::vector<float>* v) {
  Pool& p = ThisPool();
  if (!p.enabled || v->capacity() == 0) return;
  const int c = ClassForCapacity(v->capacity());
  if (c < 0) return;
  const int64_t bytes = static_cast<int64_t>(v->capacity() * sizeof(float));
  if (p.cached_bytes + bytes > kMaxCachedBytes) return;
  p.classes[static_cast<size_t>(c)].push_back(std::move(*v));
  p.cached_bytes += bytes;
}

int64_t HeapAcquires() { return ThisPool().heap_acquires; }

int64_t CachedBytes() { return ThisPool().cached_bytes; }

void DrainForTesting() {
  Pool& p = ThisPool();
  for (auto& bucket : p.classes) {
    bucket.clear();
    bucket.shrink_to_fit();
  }
  p.cached_bytes = 0;
}

}  // namespace tensor_pool
}  // namespace embsr
