#ifndef EMBSR_TENSOR_REF_KERNELS_H_
#define EMBSR_TENSOR_REF_KERNELS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace embsr {
namespace tensor {
namespace ref {

/// The pre-parallelization serial kernels, kept verbatim as the oracle for
/// tests/kernel_equiv_test.cc. Every production kernel in tensor.cc must
/// match its `ref::` twin to <= 1e-5 relative error at every thread count —
/// and, because the parallel kernels only partition *outputs* and never
/// reorder a per-element reduction (DESIGN.md §11), they actually match
/// bit for bit. These are not for production use: they are single-threaded
/// by construction and stay frozen when the real kernels evolve.

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor AddRowBroadcast(const Tensor& a, const Tensor& row);
Tensor MulRowBroadcast(const Tensor& a, const Tensor& row);
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor SumAll(const Tensor& a);
Tensor SumRowsTo1xD(const Tensor& a);
Tensor SumColsToNx1(const Tensor& a);
float MeanAll(const Tensor& a);
Tensor RowSoftmax(const Tensor& a);
Tensor RowSoftmaxMasked(const Tensor& a, const Tensor& mask);
Tensor RowLogSumExp(const Tensor& a);
Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices);
void ScatterAddRows(const Tensor& grad_rows,
                    const std::vector<int64_t>& indices, Tensor* grad_table);
Tensor SelectRowsByMask(const Tensor& a, const Tensor& b, const Tensor& mask);
Tensor SegmentSumRows(const Tensor& a, const std::vector<int64_t>& segments,
                      int64_t num_segments);
Tensor ConcatCols(const Tensor& a, const Tensor& b);
Tensor ConcatRows(const Tensor& a, const Tensor& b);
Tensor L2NormalizeRows(const Tensor& a, float eps = 1e-12f);

}  // namespace ref
}  // namespace tensor
}  // namespace embsr

#endif  // EMBSR_TENSOR_REF_KERNELS_H_
