#include "tensor/ref_kernels.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/check.h"

namespace embsr {
namespace tensor {
namespace ref {

namespace {

template <typename F>
Tensor BinaryOp(const Tensor& a, const Tensor& b, F f) {
  EMBSR_CHECK(a.shape() == b.shape());
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

template <typename F>
Tensor UnaryOp(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x * y; });
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& row) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(row.size(), a.dim(1));
  Tensor out = a;
  const int64_t n = a.dim(0), d = a.dim(1);
  const float* pr = row.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) po[i * d + j] += pr[j];
  }
  return out;
}

Tensor MulRowBroadcast(const Tensor& a, const Tensor& row) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(row.size(), a.dim(1));
  const int64_t n = a.dim(0), d = a.dim(1);
  Tensor out({n, d});
  const float* pa = a.data();
  const float* pr = row.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) po[i * d + j] = pa[i * d + j] * pr[j];
  }
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x * s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x + s; });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](float x) { return -x; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::log(x); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::tanh(x); });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(b.ndim(), 2);
  EMBSR_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  Tensor out({n, m});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // ikj loop order for cache-friendly access to b and out.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * m;
      float* orow = po + i * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor SumRowsTo1xD(const Tensor& a) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), d = a.dim(1);
  Tensor out({1, d});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) out.data()[j] += a.data()[i * d + j];
  }
  return out;
}

Tensor SumColsToNx1(const Tensor& a) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), d = a.dim(1);
  Tensor out({n, 1});
  for (int64_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < d; ++j) acc += a.data()[i * d + j];
    out.data()[i] = static_cast<float>(acc);
  }
  return out;
}

float MeanAll(const Tensor& a) {
  EMBSR_CHECK_GT(a.size(), 0);
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  return static_cast<float>(acc / static_cast<double>(a.size()));
}

Tensor RowSoftmax(const Tensor& a) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), m = a.dim(1);
  Tensor out(a.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * m;
    float* orow = out.data() + i * m;
    float mx = row[0];
    for (int64_t j = 1; j < m; ++j) mx = std::max(mx, row[j]);
    double z = 0.0;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] = std::exp(row[j] - mx);
      z += orow[j];
    }
    const float inv = static_cast<float>(1.0 / z);
    for (int64_t j = 0; j < m; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor RowSoftmaxMasked(const Tensor& a, const Tensor& mask) {
  EMBSR_CHECK(a.shape() == mask.shape());
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), m = a.dim(1);
  Tensor masked = a;
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  for (int64_t i = 0; i < n * m; ++i) {
    if (mask.data()[i] == 0.0f) masked.data()[i] = kNegInf;
  }
  Tensor out(a.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = masked.data() + i * m;
    float* orow = out.data() + i * m;
    float mx = kNegInf;
    for (int64_t j = 0; j < m; ++j) mx = std::max(mx, row[j]);
    if (mx == kNegInf) {
      for (int64_t j = 0; j < m; ++j) orow[j] = 0.0f;
      continue;
    }
    double z = 0.0;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] = row[j] == kNegInf ? 0.0f : std::exp(row[j] - mx);
      z += orow[j];
    }
    const float inv = static_cast<float>(1.0 / z);
    for (int64_t j = 0; j < m; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor RowLogSumExp(const Tensor& a) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), m = a.dim(1);
  Tensor out({n, 1});
  for (int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * m;
    float mx = row[0];
    for (int64_t j = 1; j < m; ++j) mx = std::max(mx, row[j]);
    double z = 0.0;
    for (int64_t j = 0; j < m; ++j) z += std::exp(row[j] - mx);
    out.data()[i] = mx + static_cast<float>(std::log(z));
  }
  return out;
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices) {
  EMBSR_CHECK_EQ(table.ndim(), 2);
  const int64_t d = table.dim(1);
  Tensor out({static_cast<int64_t>(indices.size()), d});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    EMBSR_CHECK_GE(r, 0);
    EMBSR_CHECK_LT(r, table.dim(0));
    std::memcpy(out.data() + static_cast<int64_t>(i) * d,
                table.data() + r * d, sizeof(float) * d);
  }
  return out;
}

void ScatterAddRows(const Tensor& grad_rows,
                    const std::vector<int64_t>& indices, Tensor* grad_table) {
  EMBSR_CHECK(grad_table != nullptr);
  EMBSR_CHECK_EQ(grad_rows.ndim(), 2);
  EMBSR_CHECK_EQ(grad_table->ndim(), 2);
  EMBSR_CHECK_EQ(grad_rows.dim(0), static_cast<int64_t>(indices.size()));
  EMBSR_CHECK_EQ(grad_rows.dim(1), grad_table->dim(1));
  const int64_t d = grad_rows.dim(1);
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    EMBSR_CHECK_GE(r, 0);
    EMBSR_CHECK_LT(r, grad_table->dim(0));
    float* dst = grad_table->data() + r * d;
    const float* src = grad_rows.data() + static_cast<int64_t>(i) * d;
    for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
}

Tensor SelectRowsByMask(const Tensor& a, const Tensor& b, const Tensor& mask) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK(a.shape() == b.shape());
  const int64_t n = a.dim(0), d = a.dim(1);
  EMBSR_CHECK_EQ(mask.size(), n);
  Tensor out({n, d});
  for (int64_t i = 0; i < n; ++i) {
    const float* src = mask.data()[i] != 0.0f ? a.data() : b.data();
    std::memcpy(out.data() + i * d, src + i * d, sizeof(float) * d);
  }
  return out;
}

Tensor SegmentSumRows(const Tensor& a, const std::vector<int64_t>& segments,
                      int64_t num_segments) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(a.dim(0), static_cast<int64_t>(segments.size()));
  EMBSR_CHECK_GT(num_segments, 0);
  const int64_t d = a.dim(1);
  Tensor out({num_segments, d});
  for (size_t i = 0; i < segments.size(); ++i) {
    const int64_t s = segments[i];
    EMBSR_CHECK_GE(s, 0);
    EMBSR_CHECK_LT(s, num_segments);
    float* dst = out.data() + s * d;
    const float* src = a.data() + static_cast<int64_t>(i) * d;
    for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(b.ndim(), 2);
  EMBSR_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t n = a.dim(0), da = a.dim(1), db = b.dim(1);
  Tensor out({n, da + db});
  for (int64_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * (da + db), a.data() + i * da,
                sizeof(float) * da);
    std::memcpy(out.data() + i * (da + db) + da, b.data() + i * db,
                sizeof(float) * db);
  }
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(b.ndim(), 2);
  EMBSR_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t d = a.dim(1);
  Tensor out({a.dim(0) + b.dim(0), d});
  std::memcpy(out.data(), a.data(), sizeof(float) * a.size());
  std::memcpy(out.data() + a.size(), b.data(), sizeof(float) * b.size());
  return out;
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), d = a.dim(1);
  Tensor out(a.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * d;
    float* orow = out.data() + i * d;
    double acc = 0.0;
    for (int64_t j = 0; j < d; ++j) acc += static_cast<double>(row[j]) * row[j];
    const double norm = std::sqrt(acc);
    if (norm < eps) continue;  // leave the zero row zero
    const float inv = static_cast<float>(1.0 / norm);
    for (int64_t j = 0; j < d; ++j) orow[j] = row[j] * inv;
  }
  return out;
}

}  // namespace ref
}  // namespace tensor
}  // namespace embsr
