#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "par/access_check.h"
#include "par/thread_pool.h"
#include "tensor/buffer_pool.h"
#include "util/check.h"

namespace embsr {

namespace {

int64_t ShapeSize(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    EMBSR_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor() : shape_{} {
  tensor_pool::Acquire(&data_, 1, 0.0f);
  prof_counted_ = prof::OnTensorAlloc(size());
}

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  tensor_pool::Acquire(&data_, ShapeSize(shape_), 0.0f);
  prof_counted_ = prof::OnTensorAlloc(size());
}

Tensor::Tensor(std::vector<int64_t> shape, float fill)
    : shape_(std::move(shape)) {
  tensor_pool::Acquire(&data_, ShapeSize(shape_), fill);
  prof_counted_ = prof::OnTensorAlloc(size());
}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  EMBSR_CHECK_EQ(ShapeSize(shape_), static_cast<int64_t>(data_.size()));
  prof_counted_ = prof::OnTensorAlloc(size());
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Tensor(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::Scalar(float value) {
  Tensor t;
  t.data_[0] = value;
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, float stddev, Rng* rng) {
  EMBSR_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng->Normal(0.0, stddev));
  return t;
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, float lo, float hi,
                           Rng* rng) {
  EMBSR_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng->Uniform(lo, hi));
  return t;
}

Tensor Tensor::FromArenaView(ArenaView* view, std::vector<int64_t> shape) {
  EMBSR_CHECK(view != nullptr);
  EMBSR_CHECK_EQ(ShapeSize(shape), view->elems);
  return Tensor(view, std::move(shape));
}

int64_t Tensor::dim(int64_t axis) const {
  EMBSR_CHECK_GE(axis, 0);
  EMBSR_CHECK_LT(axis, ndim());
  return shape_[axis];
}

int64_t Tensor::rows() const {
  EMBSR_CHECK_LE(ndim(), 2);
  if (ndim() < 2) return 1;
  return shape_[0];
}

int64_t Tensor::cols() const {
  EMBSR_CHECK_LE(ndim(), 2);
  if (ndim() == 0) return 1;
  return shape_.back();
}

float Tensor::at(int64_t i) const {
  EMBSR_CHECK_GE(i, 0);
  EMBSR_CHECK_LT(i, size());
  return data()[i];
}

float& Tensor::at(int64_t i) {
  EMBSR_CHECK_GE(i, 0);
  EMBSR_CHECK_LT(i, size());
  return data()[i];
}

float Tensor::at2(int64_t i, int64_t j) const {
  EMBSR_CHECK_EQ(ndim(), 2);
  EMBSR_CHECK_GE(i, 0);
  EMBSR_CHECK_LT(i, shape_[0]);
  EMBSR_CHECK_GE(j, 0);
  EMBSR_CHECK_LT(j, shape_[1]);
  return data()[i * shape_[1] + j];
}

float& Tensor::at2(int64_t i, int64_t j) {
  EMBSR_CHECK_EQ(ndim(), 2);
  EMBSR_CHECK_GE(i, 0);
  EMBSR_CHECK_LT(i, shape_[0]);
  EMBSR_CHECK_GE(j, 0);
  EMBSR_CHECK_LT(j, shape_[1]);
  return data()[i * shape_[1] + j];
}

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  const float* a = data();
  const float* b = other.data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << "]";
  return out.str();
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::ostringstream out;
  out << "Tensor" << ShapeString() << " {";
  const float* p = data();
  int64_t n = std::min<int64_t>(size(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << p[i];
  }
  if (n < size()) out << ", ...";
  out << "}";
  return out.str();
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  EMBSR_CHECK_EQ(ShapeSize(new_shape), size());
  // Built via the pooled shape constructor — not by assigning the private
  // members of a default Tensor — so the memory profiler counts the buffer
  // at its real size (the flag set by Tensor() would otherwise cover a
  // 1-element buffer that the destructor frees at full size).
  Tensor t(std::move(new_shape));
  std::memcpy(t.data_.data(), data(), sizeof(float) * size());
  return t;
}

Tensor Tensor::Transposed() const {
  EMBSR_CHECK_EQ(ndim(), 2);
  const int64_t n = shape_[0], m = shape_[1];
  Tensor t({m, n});
  const float* src = data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      t.data_[j * n + i] = src[i * m + j];
    }
  }
  return t;
}

Tensor Tensor::SliceRows(int64_t begin, int64_t end) const {
  EMBSR_CHECK_GE(begin, 0);
  EMBSR_CHECK_LE(begin, end);
  if (ndim() == 1) {
    EMBSR_CHECK_LE(end, shape_[0]);
    Tensor t({end - begin});
    std::memcpy(t.data_.data(), data() + begin,
                sizeof(float) * (end - begin));
    return t;
  }
  EMBSR_CHECK_EQ(ndim(), 2);
  EMBSR_CHECK_LE(end, shape_[0]);
  const int64_t d = shape_[1];
  Tensor t({end - begin, d});
  std::memcpy(t.data_.data(), data() + begin * d,
              sizeof(float) * (end - begin) * d);
  return t;
}

Tensor Tensor::Row(int64_t r) const { return SliceRows(r, r + 1); }

Tensor& Tensor::AddInPlace(const Tensor& other) {
  EMBSR_CHECK(shape_ == other.shape_);
  float* p = data();
  const float* q = other.data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) p[i] += q[i];
  return *this;
}

Tensor& Tensor::SubInPlace(const Tensor& other) {
  EMBSR_CHECK(shape_ == other.shape_);
  float* p = data();
  const float* q = other.data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) p[i] -= q[i];
  return *this;
}

Tensor& Tensor::MulInPlace(const Tensor& other) {
  EMBSR_CHECK(shape_ == other.shape_);
  float* p = data();
  const float* q = other.data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) p[i] *= q[i];
  return *this;
}

Tensor& Tensor::ScaleInPlace(float s) {
  float* p = data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) p[i] *= s;
  return *this;
}

Tensor& Tensor::Fill(float value) {
  float* p = data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) p[i] = value;
  return *this;
}

float Tensor::L2Norm() const {
  double acc = 0.0;
  const float* p = data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) acc += static_cast<double>(p[i]) * p[i];
  return static_cast<float>(std::sqrt(acc));
}

// -- Free kernels ------------------------------------------------------------
//
// Parallelization contract (DESIGN.md §11): every kernel below partitions its
// OUTPUT index space across threads and never splits or reorders the
// reduction that produces a single output element. Each element is therefore
// computed by exactly one thread, in exactly the order the old serial kernel
// used — results are bit-identical to the frozen tensor::ref:: oracles at
// every thread count, including EMBSR_THREADS=1 (which runs this very code
// inline with no pool involvement at all).
//
// The contract is no longer enforced by convention alone: every parallel
// kernel dispatches through par::ForChecked with a per-chunk read/write
// declaration, and the serial-by-contract reductions are wrapped in
// EMBSR_SENTINEL_SERIAL_REDUCTION. In -DEMBSR_CHECK_CONTRACTS=ON builds the
// access sentinel (par/access_check.h, DESIGN.md §12) verifies the declared
// partition before the loop runs; release builds compile the declarations
// away.

namespace {

// Minimum elements of work per chunk. Ranges at or below one grain run
// inline (par::For never touches the pool for a single chunk), so small
// tensors pay zero synchronization overhead.
constexpr int64_t kElemGrain = 1 << 13;  // elementwise kernels
constexpr int64_t kRowGrainElems = 1 << 12;  // row kernels: grain rows = this / row width
constexpr int64_t kMatMulGrainFlops = 1 << 14;  // matmul: grain rows = this / (k * m)

int64_t RowGrain(int64_t row_width) {
  return std::max<int64_t>(1, kRowGrainElems / std::max<int64_t>(1, row_width));
}

template <typename F>
Tensor BinaryOp(const char* name, const Tensor& a, const Tensor& b, F f) {
  EMBSR_CHECK(a.shape() == b.shape());
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  par::ForChecked(
      name, 0, a.size(), kElemGrain,
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo, hi);
        acc->Read(pa, lo, hi);
        acc->Read(pb, lo, hi);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
      });
  return out;
}

template <typename F>
Tensor UnaryOp(const char* name, const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  par::ForChecked(
      name, 0, a.size(), kElemGrain,
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo, hi);
        acc->Read(pa, lo, hi);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
      });
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp("Add", a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp("Sub", a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp("Mul", a, b, [](float x, float y) { return x * y; });
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& row) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(row.size(), a.dim(1));
  Tensor out = a;
  const int64_t n = a.dim(0), d = a.dim(1);
  const float* pr = row.data();
  float* po = out.data();
  par::ForChecked(
      "AddRowBroadcast", 0, n, RowGrain(d),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo * d, hi * d);
        acc->Read(po, lo * d, hi * d);  // in-place += over the copied rows
        acc->Read(pr, 0, d);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          for (int64_t j = 0; j < d; ++j) po[i * d + j] += pr[j];
        }
      });
  return out;
}

Tensor MulRowBroadcast(const Tensor& a, const Tensor& row) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(row.size(), a.dim(1));
  const int64_t n = a.dim(0), d = a.dim(1);
  Tensor out({n, d});
  const float* pa = a.data();
  const float* pr = row.data();
  float* po = out.data();
  par::ForChecked(
      "MulRowBroadcast", 0, n, RowGrain(d),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo * d, hi * d);
        acc->Read(pa, lo * d, hi * d);
        acc->Read(pr, 0, d);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          for (int64_t j = 0; j < d; ++j) {
            po[i * d + j] = pa[i * d + j] * pr[j];
          }
        }
      });
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  return UnaryOp("Scale", a, [s](float x) { return x * s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp("AddScalar", a, [s](float x) { return x + s; });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp("Neg", a, [](float x) { return -x; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp("Exp", a, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& a) {
  return UnaryOp("Log", a, [](float x) { return std::log(x); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp("Tanh", a, [](float x) { return std::tanh(x); });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp("Sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp("Relu", a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(b.ndim(), 2);
  EMBSR_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  Tensor out({n, m});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Row-parallel, cache-blocked ikj. Each thread owns a contiguous block of
  // output rows; within a row, columns are tiled 64 wide so the active slices
  // of b and out stay cache-resident across the k sweep. Every out[i][j]
  // still accumulates av * b[kk][j] for kk ascending (with the same
  // zero-skip), so the float summation order — and hence the result — is
  // bit-identical to the serial ref:: kernel at every thread count.
  constexpr int64_t kTile = 64;
  const int64_t grain =
      std::max<int64_t>(1, kMatMulGrainFlops / std::max<int64_t>(1, k * m));
  par::ForChecked(
      "MatMul", 0, n, grain,
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo * m, hi * m);
        acc->Read(pa, lo * k, hi * k);
        acc->Read(pb, 0, k * m);  // every chunk sweeps all of b
      },
      [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* arow = pa + i * k;
      float* orow = po + i * m;
      for (int64_t jb = 0; jb < m; jb += kTile) {
        const int64_t je = std::min<int64_t>(jb + kTile, m);
        for (int64_t kk = 0; kk < k; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = pb + kk * m;
          for (int64_t j = jb; j < je; ++j) orow[j] += av * brow[j];
        }
      }
    }
  });
  return out;
}

// SumAll / SumRowsTo1xD / MeanAll reduce ACROSS the would-be partition axis,
// so any split would reorder the float summation; they stay serial by the
// kernel contract (DESIGN.md §11).
Tensor SumAll(const Tensor& a) {
  EMBSR_SENTINEL_SERIAL_REDUCTION("SumAll");
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor SumRowsTo1xD(const Tensor& a) {
  EMBSR_SENTINEL_SERIAL_REDUCTION("SumRowsTo1xD");
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), d = a.dim(1);
  Tensor out({1, d});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) out.data()[j] += a.data()[i * d + j];
  }
  return out;
}

Tensor SumColsToNx1(const Tensor& a) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), d = a.dim(1);
  Tensor out({n, 1});
  const float* pa = a.data();
  float* po = out.data();
  par::ForChecked(
      "SumColsToNx1", 0, n, RowGrain(d),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo, hi);
        acc->Read(pa, lo * d, hi * d);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          double acc = 0.0;
          for (int64_t j = 0; j < d; ++j) acc += pa[i * d + j];
          po[i] = static_cast<float>(acc);
        }
      });
  return out;
}

float MeanAll(const Tensor& a) {
  EMBSR_SENTINEL_SERIAL_REDUCTION("MeanAll");
  EMBSR_CHECK_GT(a.size(), 0);
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  return static_cast<float>(acc / static_cast<double>(a.size()));
}

Tensor RowSoftmax(const Tensor& a) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), m = a.dim(1);
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  par::ForChecked(
      "RowSoftmax", 0, n, RowGrain(m),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo * m, hi * m);
        acc->Read(pa, lo * m, hi * m);
      },
      [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* row = pa + i * m;
      float* orow = po + i * m;
      float mx = row[0];
      for (int64_t j = 1; j < m; ++j) mx = std::max(mx, row[j]);
      double z = 0.0;
      for (int64_t j = 0; j < m; ++j) {
        orow[j] = std::exp(row[j] - mx);
        z += orow[j];
      }
      const float inv = static_cast<float>(1.0 / z);
      for (int64_t j = 0; j < m; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Tensor RowSoftmaxMasked(const Tensor& a, const Tensor& mask) {
  EMBSR_CHECK(a.shape() == mask.shape());
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), m = a.dim(1);
  // Rows that are entirely masked produce uniform outputs over zero weight;
  // guard by checking the max.
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pm = mask.data();
  float* po = out.data();
  par::ForChecked(
      "RowSoftmaxMasked", 0, n, RowGrain(m),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo * m, hi * m);
        acc->Read(pa, lo * m, hi * m);
        acc->Read(pm, lo * m, hi * m);
      },
      [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* arow = pa + i * m;
      const float* mrow = pm + i * m;
      float* orow = po + i * m;
      float mx = kNegInf;
      for (int64_t j = 0; j < m; ++j) {
        if (mrow[j] != 0.0f) mx = std::max(mx, arow[j]);
      }
      if (mx == kNegInf) {
        for (int64_t j = 0; j < m; ++j) orow[j] = 0.0f;
        continue;
      }
      double z = 0.0;
      for (int64_t j = 0; j < m; ++j) {
        orow[j] = mrow[j] == 0.0f ? 0.0f : std::exp(arow[j] - mx);
        z += orow[j];
      }
      const float inv = static_cast<float>(1.0 / z);
      for (int64_t j = 0; j < m; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Tensor RowLogSumExp(const Tensor& a) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), m = a.dim(1);
  Tensor out({n, 1});
  const float* pa = a.data();
  float* po = out.data();
  par::ForChecked(
      "RowLogSumExp", 0, n, RowGrain(m),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo, hi);
        acc->Read(pa, lo * m, hi * m);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float* row = pa + i * m;
          float mx = row[0];
          for (int64_t j = 1; j < m; ++j) mx = std::max(mx, row[j]);
          double z = 0.0;
          for (int64_t j = 0; j < m; ++j) z += std::exp(row[j] - mx);
          po[i] = mx + static_cast<float>(std::log(z));
        }
      });
  return out;
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices) {
  EMBSR_CHECK_EQ(table.ndim(), 2);
  const int64_t d = table.dim(1);
  const int64_t n = static_cast<int64_t>(indices.size());
  Tensor out({n, d});
  const float* pt = table.data();
  float* po = out.data();
  par::ForChecked(
      "GatherRows", 0, n, RowGrain(d),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo * d, hi * d);
        // Which table rows get read depends on the (data-dependent)
        // indices; declare the whole table — reads never conflict anyway.
        acc->Read(pt, 0, table.size());
        acc->Read(indices.data(), lo, hi);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const int64_t r = indices[static_cast<size_t>(i)];
          EMBSR_CHECK_GE(r, 0);
          EMBSR_CHECK_LT(r, table.dim(0));
          std::memcpy(po + i * d, pt + r * d, sizeof(float) * d);
        }
      });
  return out;
}

// ScatterAddRows stays serial: duplicate indices make destination rows
// overlap across iterations, so a partition over i would race and a
// partition over table rows would still need the full index scan per chunk.
void ScatterAddRows(const Tensor& grad_rows,
                    const std::vector<int64_t>& indices, Tensor* grad_table) {
  EMBSR_SENTINEL_SERIAL_REDUCTION("ScatterAddRows");
  EMBSR_CHECK(grad_table != nullptr);
  EMBSR_CHECK_EQ(grad_rows.ndim(), 2);
  EMBSR_CHECK_EQ(grad_table->ndim(), 2);
  EMBSR_CHECK_EQ(grad_rows.dim(0), static_cast<int64_t>(indices.size()));
  EMBSR_CHECK_EQ(grad_rows.dim(1), grad_table->dim(1));
  const int64_t d = grad_rows.dim(1);
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    EMBSR_CHECK_GE(r, 0);
    EMBSR_CHECK_LT(r, grad_table->dim(0));
    float* dst = grad_table->data() + r * d;
    const float* src = grad_rows.data() + static_cast<int64_t>(i) * d;
    for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
}

Tensor SelectRowsByMask(const Tensor& a, const Tensor& b, const Tensor& mask) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK(a.shape() == b.shape());
  const int64_t n = a.dim(0), d = a.dim(1);
  EMBSR_CHECK_EQ(mask.size(), n);
  Tensor out({n, d});
  const float* pa = a.data();
  const float* pb = b.data();
  const float* pm = mask.data();
  float* po = out.data();
  par::ForChecked(
      "SelectRowsByMask", 0, n, RowGrain(d),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo * d, hi * d);
        acc->Read(pa, lo * d, hi * d);
        acc->Read(pb, lo * d, hi * d);
        acc->Read(pm, lo, hi);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float* src = pm[i] != 0.0f ? pa : pb;
          std::memcpy(po + i * d, src + i * d, sizeof(float) * d);
        }
      });
  return out;
}

// SegmentSumRows stays serial for the same reason as ScatterAddRows:
// repeated segment ids make output rows overlap across iterations. The
// ascending-i accumulation order is part of the kernel's contract — with a
// segment's rows contiguous, its output row adds up in exactly the order
// SumRowsTo1xD would over that slice.
Tensor SegmentSumRows(const Tensor& a, const std::vector<int64_t>& segments,
                      int64_t num_segments) {
  EMBSR_SENTINEL_SERIAL_REDUCTION("SegmentSumRows");
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(a.dim(0), static_cast<int64_t>(segments.size()));
  EMBSR_CHECK_GT(num_segments, 0);
  const int64_t d = a.dim(1);
  Tensor out({num_segments, d});
  for (size_t i = 0; i < segments.size(); ++i) {
    const int64_t s = segments[i];
    EMBSR_CHECK_GE(s, 0);
    EMBSR_CHECK_LT(s, num_segments);
    float* dst = out.data() + s * d;
    const float* src = a.data() + static_cast<int64_t>(i) * d;
    for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(b.ndim(), 2);
  EMBSR_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t n = a.dim(0), da = a.dim(1), db = b.dim(1);
  Tensor out({n, da + db});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  par::ForChecked(
      "ConcatCols", 0, n, RowGrain(da + db),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo * (da + db), hi * (da + db));
        acc->Read(pa, lo * da, hi * da);
        acc->Read(pb, lo * db, hi * db);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          std::memcpy(po + i * (da + db), pa + i * da, sizeof(float) * da);
          std::memcpy(po + i * (da + db) + da, pb + i * db,
                      sizeof(float) * db);
        }
      });
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  EMBSR_CHECK_EQ(b.ndim(), 2);
  EMBSR_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t d = a.dim(1);
  const int64_t na = a.dim(0), nb = b.dim(0);
  Tensor out({na + nb, d});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Row-parallel pure copy: output row i comes from a (i < na) or b.
  par::ForChecked(
      "ConcatRows", 0, na + nb, RowGrain(d),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo * d, hi * d);
        const int64_t a_hi = hi < na ? hi : na;
        if (lo < a_hi) acc->Read(pa, lo * d, a_hi * d);
        const int64_t b_lo = lo > na ? lo : na;
        if (b_lo < hi) acc->Read(pb, (b_lo - na) * d, (hi - na) * d);
      },
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float* src = i < na ? pa + i * d : pb + (i - na) * d;
          std::memcpy(po + i * d, src, sizeof(float) * d);
        }
      });
  return out;
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  EMBSR_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0), d = a.dim(1);
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  par::ForChecked(
      "L2NormalizeRows", 0, n, RowGrain(d),
      [&](int64_t lo, int64_t hi, par::AccessSet* acc) {
        acc->Write(po, lo * d, hi * d);
        acc->Read(pa, lo * d, hi * d);
      },
      [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* row = pa + i * d;
      float* orow = po + i * d;
      double acc = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        acc += static_cast<double>(row[j]) * row[j];
      }
      const double norm = std::sqrt(acc);
      if (norm < eps) continue;  // leave the zero row zero
      const float inv = static_cast<float>(1.0 / norm);
      for (int64_t j = 0; j < d; ++j) orow[j] = row[j] * inv;
    }
  });
  return out;
}

}  // namespace embsr
