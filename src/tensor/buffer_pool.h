#ifndef EMBSR_TENSOR_BUFFER_POOL_H_
#define EMBSR_TENSOR_BUFFER_POOL_H_

#include <cstdint>
#include <vector>

namespace embsr {
namespace tensor_pool {

/// Thread-local recycling pool for Tensor storage vectors, the second half
/// of the arena executor's zero-steady-state-allocation story (DESIGN.md
/// §17): the arena absorbs the planned graph buffers, and this pool absorbs
/// everything else a step still materializes on the heap (kernel outputs
/// before placement, optimizer temporaries, the fallback path). Disabled —
/// completely inert, no behavior change — until the first arena StepScope
/// on the thread calls Enable(); from then on every released Tensor buffer
/// parks here and every acquisition is served from the pool when a large-
/// enough buffer exists.
///
/// Recycled buffers are handed back with assign()-initialized contents, so
/// a pooled acquisition is bit-identical to a fresh allocation; the memory
/// profiler's OnTensorAlloc/OnTensorFree accounting is untouched (prof
/// tracks logical tensor lifetimes, the pool only hides the malloc). The
/// free list is a capacity-sorted flat vector — steady-state acquire and
/// release shift vector handles around without touching malloc, which is
/// what lets HeapAcquires() reach a fixed point after warm-up.
bool Enabled();
void Enable();

/// Serve `out` with n elements, every one set to `fill` (or copied from
/// `src`). `out` is overwritten.
void Acquire(std::vector<float>* out, int64_t n, float fill);
void AcquireCopy(std::vector<float>* out, const float* src, int64_t n);

/// Park a dying buffer's storage for reuse (no-op when disabled or full).
void Release(std::vector<float>* v);

/// Number of times an Acquire on this thread had to grow a buffer on the
/// real heap — the "tensor heap allocations per step" the arena bench and
/// tests assert hits zero once a step's working set has been seen.
int64_t HeapAcquires();

/// Bytes currently parked on this thread (diagnostics).
int64_t CachedBytes();

/// Drop every parked buffer on this thread (tests isolate with this).
void DrainForTesting();

}  // namespace tensor_pool
}  // namespace embsr

#endif  // EMBSR_TENSOR_BUFFER_POOL_H_
