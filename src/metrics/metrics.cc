#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace embsr {

int RankOfTarget(const std::vector<float>& scores, int64_t target) {
  EMBSR_CHECK_GE(target, 0);
  EMBSR_CHECK_LT(target, static_cast<int64_t>(scores.size()));
  const float ts = scores[target];
  int rank = 1;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (static_cast<int64_t>(i) == target) continue;
    if (scores[i] > ts ||
        (scores[i] == ts && static_cast<int64_t>(i) < target)) {
      ++rank;
    }
  }
  return rank;
}

std::vector<int64_t> TopKIndices(const std::vector<float>& scores, size_t k) {
  const size_t n = scores.size();
  k = std::min(k, n);
  std::vector<int64_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<int64_t>(i);
  const auto better = [&scores](int64_t a, int64_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;  // same tie-break as RankOfTarget: lower id ranks ahead
  };
  if (k < n) {
    std::nth_element(idx.begin(), idx.begin() + static_cast<int64_t>(k),
                     idx.end(), better);
    idx.resize(k);  // lint: allow(raw-resize): top-k truncation
  }
  std::sort(idx.begin(), idx.end(), better);
  return idx;
}

void RankAccumulator::Add(int rank) {
  EMBSR_CHECK_GE(rank, 1);
  ranks_.push_back(rank);
}

void RankAccumulator::Merge(const RankAccumulator& other) {
  ranks_.insert(ranks_.end(), other.ranks_.begin(), other.ranks_.end());
}

double RankAccumulator::HitAt(int k) const {
  if (ranks_.empty()) return 0.0;
  int hits = 0;
  for (int r : ranks_) {
    if (r <= k) ++hits;
  }
  return 100.0 * hits / static_cast<double>(ranks_.size());
}

double RankAccumulator::MrrAt(int k) const {
  if (ranks_.empty()) return 0.0;
  double acc = 0.0;
  for (int r : ranks_) {
    if (r <= k) acc += 1.0 / r;
  }
  return 100.0 * acc / static_cast<double>(ranks_.size());
}

MetricReport ReportAt(const RankAccumulator& acc, const std::vector<int>& ks) {
  MetricReport rep;
  for (int k : ks) {
    rep.hit[k] = acc.HitAt(k);
    rep.mrr[k] = acc.MrrAt(k);
  }
  return rep;
}

double WilcoxonSignedRankP(const std::vector<double>& a,
                           const std::vector<double>& b) {
  EMBSR_CHECK_EQ(a.size(), b.size());
  struct Diff {
    double abs;
    int sign;
  };
  std::vector<Diff> diffs;
  diffs.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d == 0.0) continue;  // zero differences are dropped (Wilcoxon 1945)
    diffs.push_back({std::fabs(d), d > 0 ? 1 : -1});
  }
  const size_t n = diffs.size();
  if (n < 3) return 1.0;  // not enough evidence to reject anything

  std::sort(diffs.begin(), diffs.end(),
            [](const Diff& x, const Diff& y) { return x.abs < y.abs; });

  // Assign mid-ranks for ties; accumulate tie correction.
  double w_plus = 0.0;
  double tie_correction = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && diffs[j + 1].abs == diffs[i].abs) ++j;
    const double mid_rank = (static_cast<double>(i + 1) + (j + 1)) / 2.0;
    const double t = static_cast<double>(j - i + 1);
    if (t > 1) tie_correction += t * t * t - t;
    for (size_t k = i; k <= j; ++k) {
      if (diffs[k].sign > 0) w_plus += mid_rank;
    }
    i = j + 1;
  }

  const double mean = n * (n + 1) / 4.0;
  const double var =
      n * (n + 1) * (2.0 * n + 1) / 24.0 - tie_correction / 48.0;
  if (var <= 0.0) return 1.0;
  // Continuity correction.
  const double z = (std::fabs(w_plus - mean) - 0.5) / std::sqrt(var);
  // Two-sided p from the normal tail.
  const double p = std::erfc(z / std::sqrt(2.0));
  return std::min(1.0, p);
}

}  // namespace embsr
