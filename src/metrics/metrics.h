#ifndef EMBSR_METRICS_METRICS_H_
#define EMBSR_METRICS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace embsr {

/// 1-based rank of `target` under `scores` (higher score = better rank).
/// Ties are broken pessimistically: items with equal score and lower id
/// rank ahead of the target only if their id is smaller — i.e. the target's
/// rank is 1 + (#items strictly better) + (#equal-score items with lower id),
/// which keeps evaluation deterministic.
int RankOfTarget(const std::vector<float>& scores, int64_t target);

/// Indices of the k highest-scoring items, best first, without sorting the
/// whole score vector (nth_element partition, then only the top-k slice is
/// sorted — O(n + k log k)). Ties break deterministically toward the lower
/// item id, matching RankOfTarget's convention. `k` is clamped to
/// `scores.size()`.
std::vector<int64_t> TopKIndices(const std::vector<float>& scores,
                                 std::size_t k);

/// Accumulates ranks of test predictions and reports HR@K / MRR@K (the
/// paper's H@K and M@K, Eq. 21–22), as percentages.
class RankAccumulator {
 public:
  void Add(int rank);
  void Merge(const RankAccumulator& other);

  int count() const { return static_cast<int>(ranks_.size()); }
  /// Fraction (in %) of cases with rank <= k.
  double HitAt(int k) const;
  /// Mean reciprocal rank (in %), zero when rank > k.
  double MrrAt(int k) const;

  const std::vector<int>& ranks() const { return ranks_; }

 private:
  std::vector<int> ranks_;
};

/// Holds H@K / M@K for a set of cutoffs; the unit is percent.
struct MetricReport {
  std::map<int, double> hit;
  std::map<int, double> mrr;
};

MetricReport ReportAt(const RankAccumulator& acc, const std::vector<int>& ks);

/// Two-sided Wilcoxon signed-rank test on paired samples (the significance
/// test the paper applies to per-session reciprocal ranks). Returns the
/// p-value under the normal approximation; ties and zero differences are
/// handled by the standard corrections. Requires a.size() == b.size().
double WilcoxonSignedRankP(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace embsr

#endif  // EMBSR_METRICS_METRICS_H_
