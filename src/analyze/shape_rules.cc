#include "analyze/shape_rules.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

namespace embsr {
namespace analyze {

namespace {

using ShapeRule = std::function<std::string(const ag::Node&)>;

int64_t NumElems(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

std::string ShapeStr(const std::vector<int64_t>& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

const std::vector<int64_t>& Out(const ag::Node& n) { return n.value.shape(); }

const std::vector<int64_t>& In(const ag::Node& n, size_t i) {
  return n.parents[i]->value.shape();
}

std::string Fail(const ag::Node& n, const std::string& why) {
  std::ostringstream out;
  out << "op '" << n.op << "' output " << ShapeStr(Out(n)) << " vs inputs (";
  for (size_t i = 0; i < n.parents.size(); ++i) {
    if (i > 0) out << ", ";
    out << ShapeStr(In(n, i));
  }
  out << "): " << why;
  return out.str();
}

std::string WantArity(const ag::Node& n, size_t k) {
  if (n.parents.size() == k) return "";
  std::ostringstream out;
  out << "expected " << k << " input(s), node has " << n.parents.size();
  return Fail(n, out.str());
}

bool Rank2(const std::vector<int64_t>& s) { return s.size() == 2; }

/// Rows treated as a [1, d] or rank-1 [d] vector; -1 if neither.
int64_t RowWidth(const std::vector<int64_t>& s) {
  if (s.size() == 1) return s[0];
  if (s.size() == 2 && s[0] == 1) return s[1];
  return -1;
}

/// out shape identical to input 0 (unary elementwise and friends).
std::string SameAsInput(const ag::Node& n) {
  if (std::string e = WantArity(n, 1); !e.empty()) return e;
  if (Out(n) != In(n, 0)) return Fail(n, "output must match the input shape");
  return "";
}

/// out shape identical to both inputs (binary elementwise).
std::string SameShapeBinary(const ag::Node& n) {
  if (std::string e = WantArity(n, 2); !e.empty()) return e;
  if (In(n, 0) != In(n, 1)) return Fail(n, "input shapes must match");
  if (Out(n) != In(n, 0)) return Fail(n, "output must match the input shape");
  return "";
}

/// a: [n, d]; row: width d; out == a.
std::string RowBroadcast(const ag::Node& n) {
  if (std::string e = WantArity(n, 2); !e.empty()) return e;
  if (!Rank2(In(n, 0))) return Fail(n, "input 0 must be rank 2");
  if (RowWidth(In(n, 1)) != In(n, 0)[1]) {
    return Fail(n, "row width must equal input 0's column count");
  }
  if (Out(n) != In(n, 0)) return Fail(n, "output must match input 0's shape");
  return "";
}

/// [n, d] reductions with a fully-determined output shape.
std::string ColSums(const ag::Node& n) {  // [n, d] -> [1, d]
  if (std::string e = WantArity(n, 1); !e.empty()) return e;
  if (!Rank2(In(n, 0))) return Fail(n, "input must be rank 2");
  if (Out(n) != std::vector<int64_t>{1, In(n, 0)[1]}) {
    return Fail(n, "output must be [1, input cols]");
  }
  return "";
}

std::string Scalar(const ag::Node& n) {
  if (NumElems(Out(n)) != 1) return Fail(n, "output must be a scalar");
  return "";
}

void Register(std::map<std::string, ShapeRule>* rules, const char* name,
              ShapeRule rule) {
  (*rules)[name] = std::move(rule);
}

// Shape-rule contract: a rule sees one recorded node (output value + parent
// values, in op-argument order) and re-derives the output shape, or — when
// an op attribute is invisible to the graph (slice bounds, gather indices,
// repeat counts) — checks every bound the attribute cannot break.
//
// Marker format: the quoted name in an EMBSR_SHAPE_RULE marker must be the
// ops.h declaration name; verify::ScanShapeRuleCoverage diffs the two lists
// in both directions (the scan is textual, so spelling the quoted form in
// this comment would register a phantom rule).
//
// Four declared ops lower to other ops before a node is built (Neg ->
// Scale, Row -> SliceRows, RowSoftmax -> RowSoftmaxMasked, MeanRowsTo1xD ->
// Scale(SumRowsTo1xD)) and Dropout is the identity in eval mode; their
// rules are registered anyway so coverage tracks the *declared* API — if a
// lowering is ever undone, the node is already checkable.
#define EMBSR_SHAPE_RULE(name) \
  Register(&rules, name, [](const ag::Node& n) -> std::string

std::map<std::string, ShapeRule> BuildRules() {
  std::map<std::string, ShapeRule> rules;

  // -- Elementwise binary --------------------------------------------------
  EMBSR_SHAPE_RULE("Add") { return SameShapeBinary(n); });
  EMBSR_SHAPE_RULE("Sub") { return SameShapeBinary(n); });
  EMBSR_SHAPE_RULE("Mul") { return SameShapeBinary(n); });

  // -- Broadcasts ----------------------------------------------------------
  EMBSR_SHAPE_RULE("AddRowBroadcast") { return RowBroadcast(n); });
  EMBSR_SHAPE_RULE("MulRowBroadcast") { return RowBroadcast(n); });
  EMBSR_SHAPE_RULE("MulColBroadcast") {
    if (std::string e = WantArity(n, 2); !e.empty()) return e;
    if (!Rank2(In(n, 0))) return Fail(n, "input 0 must be rank 2");
    if (In(n, 1) != std::vector<int64_t>{In(n, 0)[0], 1}) {
      return Fail(n, "input 1 must be [input 0 rows, 1]");
    }
    if (Out(n) != In(n, 0)) {
      return Fail(n, "output must match input 0's shape");
    }
    return "";
  });

  // -- Elementwise unary (incl. lowered and eval-identity ops) -------------
  EMBSR_SHAPE_RULE("Scale") { return SameAsInput(n); });
  EMBSR_SHAPE_RULE("AddScalar") { return SameAsInput(n); });
  EMBSR_SHAPE_RULE("Neg") { return SameAsInput(n); });
  EMBSR_SHAPE_RULE("Sigmoid") { return SameAsInput(n); });
  EMBSR_SHAPE_RULE("Tanh") { return SameAsInput(n); });
  EMBSR_SHAPE_RULE("Relu") { return SameAsInput(n); });
  EMBSR_SHAPE_RULE("Exp") { return SameAsInput(n); });
  EMBSR_SHAPE_RULE("Log") { return SameAsInput(n); });
  EMBSR_SHAPE_RULE("Dropout") { return SameAsInput(n); });
  EMBSR_SHAPE_RULE("L2NormalizeRowsOp") { return SameAsInput(n); });
  EMBSR_SHAPE_RULE("LayerNormRows") {
    if (std::string e = SameAsInput(n); !e.empty()) return e;
    if (!Rank2(Out(n))) return Fail(n, "output must be rank 2");
    return "";
  });

  // -- Matrix ops ----------------------------------------------------------
  EMBSR_SHAPE_RULE("MatMul") {
    if (std::string e = WantArity(n, 2); !e.empty()) return e;
    if (!Rank2(In(n, 0)) || !Rank2(In(n, 1))) {
      return Fail(n, "both inputs must be rank 2");
    }
    if (In(n, 0)[1] != In(n, 1)[0]) {
      return Fail(n, "inner dimensions must agree");
    }
    if (Out(n) != std::vector<int64_t>{In(n, 0)[0], In(n, 1)[1]}) {
      return Fail(n, "output must be [input 0 rows, input 1 cols]");
    }
    return "";
  });
  EMBSR_SHAPE_RULE("Transpose") {
    if (std::string e = WantArity(n, 1); !e.empty()) return e;
    if (!Rank2(In(n, 0))) return Fail(n, "input must be rank 2");
    if (Out(n) != std::vector<int64_t>{In(n, 0)[1], In(n, 0)[0]}) {
      return Fail(n, "output must be the transposed input shape");
    }
    return "";
  });

  // -- Concatenation / stacking / slicing ----------------------------------
  EMBSR_SHAPE_RULE("ConcatCols") {
    if (std::string e = WantArity(n, 2); !e.empty()) return e;
    if (!Rank2(In(n, 0)) || !Rank2(In(n, 1))) {
      return Fail(n, "both inputs must be rank 2");
    }
    if (In(n, 0)[0] != In(n, 1)[0]) return Fail(n, "row counts must agree");
    if (Out(n) !=
        std::vector<int64_t>{In(n, 0)[0], In(n, 0)[1] + In(n, 1)[1]}) {
      return Fail(n, "output must be [rows, cols0 + cols1]");
    }
    return "";
  });
  EMBSR_SHAPE_RULE("ConcatRows") {
    if (std::string e = WantArity(n, 2); !e.empty()) return e;
    if (!Rank2(In(n, 0)) || !Rank2(In(n, 1))) {
      return Fail(n, "both inputs must be rank 2");
    }
    if (In(n, 0)[1] != In(n, 1)[1]) {
      return Fail(n, "column counts must agree");
    }
    if (Out(n) !=
        std::vector<int64_t>{In(n, 0)[0] + In(n, 1)[0], In(n, 0)[1]}) {
      return Fail(n, "output must be [rows0 + rows1, cols]");
    }
    return "";
  });
  EMBSR_SHAPE_RULE("StackRows") {
    if (n.parents.empty()) return Fail(n, "expected at least one input");
    const int64_t d = RowWidth(In(n, 0));
    if (d < 0) return Fail(n, "inputs must be [1, d] or rank-1 rows");
    for (size_t i = 1; i < n.parents.size(); ++i) {
      if (RowWidth(In(n, i)) != d) {
        return Fail(n, "all rows must share one width");
      }
    }
    if (Out(n) !=
        std::vector<int64_t>{static_cast<int64_t>(n.parents.size()), d}) {
      return Fail(n, "output must be [row count, row width]");
    }
    return "";
  });
  // Slice bounds are op attributes the node does not carry, so the rule is
  // bounded rather than exact: column-preserving, never more rows than the
  // input.
  EMBSR_SHAPE_RULE("SliceRows") {
    if (std::string e = WantArity(n, 1); !e.empty()) return e;
    if (Rank2(In(n, 0))) {
      if (!Rank2(Out(n)) || Out(n)[1] != In(n, 0)[1]) {
        return Fail(n, "output must keep the input's column count");
      }
      if (Out(n)[0] < 1 || Out(n)[0] > In(n, 0)[0]) {
        return Fail(n, "output rows must be in [1, input rows]");
      }
      return "";
    }
    if (NumElems(Out(n)) < 1 || NumElems(Out(n)) > NumElems(In(n, 0))) {
      return Fail(n, "output cannot outsize the input");
    }
    return "";
  });
  EMBSR_SHAPE_RULE("Row") {
    if (std::string e = WantArity(n, 1); !e.empty()) return e;
    if (!Rank2(In(n, 0))) return Fail(n, "input must be rank 2");
    if (Out(n) != std::vector<int64_t>{1, In(n, 0)[1]}) {
      return Fail(n, "output must be [1, input cols]");
    }
    return "";
  });
  // Gather indices are invisible; the row count is whatever was asked for.
  EMBSR_SHAPE_RULE("GatherRows") {
    if (std::string e = WantArity(n, 1); !e.empty()) return e;
    if (!Rank2(In(n, 0))) return Fail(n, "table must be rank 2");
    if (!Rank2(Out(n)) || Out(n)[1] != In(n, 0)[1]) {
      return Fail(n, "output must keep the table's column count");
    }
    if (Out(n)[0] < 1) return Fail(n, "output must gather at least one row");
    return "";
  });
  // The mask is an op attribute (invisible here); both inputs and the
  // output must agree exactly.
  EMBSR_SHAPE_RULE("SelectRowsByMask") {
    if (std::string e = WantArity(n, 2); !e.empty()) return e;
    if (!Rank2(Out(n))) return Fail(n, "output must be rank 2");
    if (Out(n) != In(n, 0) || Out(n) != In(n, 1)) {
      return Fail(n, "output must match both input shapes");
    }
    return "";
  });
  // Segment ids are invisible; the segment count is whatever was asked for,
  // but the column width must survive the reduction.
  EMBSR_SHAPE_RULE("SegmentSumRows") {
    if (std::string e = WantArity(n, 1); !e.empty()) return e;
    if (!Rank2(In(n, 0))) return Fail(n, "input must be rank 2");
    if (!Rank2(Out(n)) || Out(n)[1] != In(n, 0)[1]) {
      return Fail(n, "output must keep the input's column count");
    }
    if (Out(n)[0] < 1) return Fail(n, "output must have at least one segment");
    return "";
  });
  EMBSR_SHAPE_RULE("RepeatRow") {
    if (std::string e = WantArity(n, 1); !e.empty()) return e;
    const int64_t d = RowWidth(In(n, 0));
    if (d < 0) return Fail(n, "input must be a [1, d] row");
    if (!Rank2(Out(n)) || Out(n)[1] != d || Out(n)[0] < 1) {
      return Fail(n, "output must be [n >= 1, input width]");
    }
    return "";
  });

  // -- Softmax / reductions / loss -----------------------------------------
  EMBSR_SHAPE_RULE("RowSoftmaxMasked") {
    if (std::string e = SameAsInput(n); !e.empty()) return e;
    if (!Rank2(Out(n))) return Fail(n, "output must be rank 2");
    return "";
  });
  EMBSR_SHAPE_RULE("RowSoftmax") {
    if (std::string e = SameAsInput(n); !e.empty()) return e;
    if (!Rank2(Out(n))) return Fail(n, "output must be rank 2");
    return "";
  });
  EMBSR_SHAPE_RULE("SumAll") {
    if (std::string e = WantArity(n, 1); !e.empty()) return e;
    return Scalar(n);
  });
  EMBSR_SHAPE_RULE("SumRowsTo1xD") { return ColSums(n); });
  EMBSR_SHAPE_RULE("MeanRowsTo1xD") { return ColSums(n); });
  EMBSR_SHAPE_RULE("SumColsToNx1") {
    if (std::string e = WantArity(n, 1); !e.empty()) return e;
    if (!Rank2(In(n, 0))) return Fail(n, "input must be rank 2");
    if (Out(n) != std::vector<int64_t>{In(n, 0)[0], 1}) {
      return Fail(n, "output must be [input rows, 1]");
    }
    return "";
  });
  EMBSR_SHAPE_RULE("SoftmaxCrossEntropy") {
    if (std::string e = WantArity(n, 1); !e.empty()) return e;
    if (!Rank2(In(n, 0))) return Fail(n, "logits must be rank 2");
    return Scalar(n);
  });

  return rules;
}

#undef EMBSR_SHAPE_RULE

const std::map<std::string, ShapeRule>& Rules() {
  static const auto* rules =  // lint: allow(raw-new): leaked singleton
      new std::map<std::string, ShapeRule>(BuildRules());
  return *rules;
}

}  // namespace

bool HasShapeRule(const std::string& op) { return Rules().count(op) > 0; }

std::vector<std::string> ShapeRuleNames() {
  std::vector<std::string> names;
  names.reserve(Rules().size());
  for (const auto& [name, rule] : Rules()) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::string CheckNodeShape(const ag::Node& node) {
  auto it = Rules().find(node.op);
  if (it == Rules().end()) {
    return "op '" + std::string(node.op) +
           "' has no registered shape rule (add an EMBSR_SHAPE_RULE entry "
           "to src/analyze/shape_rules.cc)";
  }
  return it->second(node);
}

std::vector<std::string> CheckShapes(const std::vector<ag::Node*>& nodes,
                                     ShapeCheckStats* stats) {
  std::vector<std::string> failures;
  ShapeCheckStats local;
  for (ag::Node* n : nodes) {
    if (std::string(n->op) == "leaf") {
      ++local.leaves;
      continue;
    }
    if (n->parents.empty()) {
      // Ops over non-differentiable inputs record no parents (MakeOp only
      // keeps them when a gradient will flow); their inputs are invisible,
      // so the rule cannot run.
      ++local.skipped;
      continue;
    }
    ++local.checked;
    if (std::string e = CheckNodeShape(*n); !e.empty()) {
      failures.push_back("[shape-rule] " + e);
    }
  }
  if (stats != nullptr) *stats = local;
  return failures;
}

}  // namespace analyze
}  // namespace embsr
