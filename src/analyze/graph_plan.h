#ifndef EMBSR_ANALYZE_GRAPH_PLAN_H_
#define EMBSR_ANALYZE_GRAPH_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analyze/shape_rules.h"
#include "autograd/tape.h"
#include "autograd/variable.h"
#include "nn/module.h"

namespace embsr {
namespace analyze {

/// Static shape/liveness analysis and arena memory planning over recorded
/// ag::Tape graphs — the load-bearing prerequisite for the ROADMAP item-3b
/// arena executor. The gradcheck registry proves the gradients are right
/// and the tape auditor proves the wiring is right; this pass proves the
/// *memory story* is right: every node's shape re-derives from its inputs,
/// every buffer has a sound first-def/last-use interval across forward and
/// backward (gradient buffers and their accumulation sites included), and
/// the resulting arena plan provably never overlaps two live intervals.
///
/// Schedule model. Steps number a unified forward+backward timeline:
///   0 .. F-1   forward: one step per tape node, in creation order
///   F          Backward()'s gradient seed at the root
///   F+1 ..     backward: one step per executed backward_fn, in the exact
///              order Variable::Backward runs them (ag::BackwardPostOrder
///              reversed, gated on simulated grad readiness)
///   E          end-of-graph: the caller reads the loss value and the
///              optimizer reads every parameter gradient
/// Backward reads are modeled conservatively: executing a node's backward
/// reads its own value, its own grad, and every parent's value (the
/// superset of what any closure in ops.cc touches), so planned lifetimes
/// only over-cover, never under-cover, the real access pattern.
///
/// Parameters (and any other node allocated before the tape opened) are
/// *persistent*: their values are not arena candidates and carry no
/// interval, but their gradient buffers — allocated during backward — are
/// planned like any other.

/// One planned buffer: the value or gradient storage of one graph node.
struct PlanBuffer {
  int64_t id = 0;       // index in GraphPlan::buffers
  int64_t node_id = 0;  // owning node: tape index, or -(k+1) for the k-th
                        // persistent (pre-tape) node
  std::string label;    // op name, or the parameter name for named leaves
  std::string shape;    // recorded value shape (diagnostics/dumps)
  bool is_grad = false;
  bool persistent = false;  // allocated before the tape: not arena-planned
  bool requires_grad = false;
  bool is_root = false;
  int64_t size_bytes = 0;
  int64_t def_step = 0;        // first write
  int64_t last_use_step = 0;   // last read/accumulation (inclusive)
  int64_t last_read_step = -1; // last pure read (-1: never read)
  int64_t reads = 0;           // modeled read count
  std::vector<int64_t> accum_steps;  // grad buffers: accumulation sites
  int64_t exec_step = -1;  // value buffers: the owning node's backward
                           // execution step (-1 if its backward never runs).
                           // The arena executor advances its conformance
                           // clock to this step before each backward_fn.
  int64_t offset = -1;   // arena offset (first-fit); -1 when not planned
  int64_t alias_of = -1; // id of the buffer this one views (Reshape-style);
                         // -1 = owns storage. The builder never emits
                         // aliases; the verifier vets them for the future
                         // arena executor's in-place rewrites.
};

struct GraphPlanStats {
  int64_t tape_nodes = 0;
  int64_t persistent_nodes = 0;
  int64_t planned_buffers = 0;  // transient, own-storage
  int64_t forward_steps = 0;
  int64_t backward_steps = 0;
  ShapeCheckStats shapes;
};

struct GraphPlan {
  std::vector<PlanBuffer> buffers;
  /// Value-buffer dataflow edges (parent buffer id -> consumer buffer id),
  /// for the DOT rendering.
  std::vector<std::pair<int64_t, int64_t>> edges;
  int64_t end_step = 0;  // E in the schedule model
  /// Sum of all transient buffer sizes: the high-water mark a heap
  /// execution (which frees nothing until graph destruction) must hold.
  /// This is the number cross-checked against the prof-measured peak.
  int64_t planned_total_bytes = 0;
  /// Liveness peak: max over steps of simultaneously-live transient bytes.
  /// What a perfect arena would need; the headroom vs. planned_total_bytes
  /// is the arena executor's win, tracked per model by bench_history.
  int64_t planned_peak_bytes = 0;
  /// First-fit arena size: max(offset + size). >= planned_peak_bytes; the
  /// gap is fragmentation.
  int64_t arena_extent_bytes = 0;
  /// Failures found while building: shape-rule violations and
  /// simulated-vs-runtime accumulation mismatches. VerifyGraphPlan folds
  /// these into its report.
  std::vector<std::string> build_failures;
  GraphPlanStats stats;
};

struct PlanOptions {
  /// Op names whose value buffers may legitimately go unread (mirrors
  /// TapeAuditOptions::allowed_orphan_ops). Normally empty.
  std::vector<std::string> allowed_dead_stores;
  /// Plan a forward pass with no Backward(): no gradient seed, no backward
  /// steps, no grad buffers; end_step is the forward step count and the
  /// root is read there (the serving / ScoreAll shape of a step).
  bool forward_only = false;
  /// The arena executor's planning context, which breaks two assumptions
  /// the audit-time planner makes: persistent (parameter) gradients
  /// accumulate across a whole mini-batch, so their runtime accum_count is
  /// unrelated to this single step's schedule (the cross-check skips them),
  /// and dead-store hygiene is the model audit's business, not a memory-
  /// safety property (the verifier skips [dead-store]).
  bool executor_mode = false;
};

/// Builds the liveness intervals and first-fit arena plan for the graph
/// under `loss`. Precondition: the graph was recorded by `tape` and exactly
/// one Backward() ran since the parameters were zeroed (the accumulation
/// cross-check compares the simulated schedule against Node::accum_count).
GraphPlan BuildGraphPlan(const ag::Variable& loss,
                         const std::vector<nn::NamedParameter>& params,
                         const ag::Tape& tape,
                         const PlanOptions& options = {});

/// Same, over an explicitly captured node list (creation order) instead of
/// a live Tape — the arena executor records nodes through an ExecObserver
/// rather than opening a tape of its own.
GraphPlan BuildGraphPlan(const ag::Variable& loss,
                         const std::vector<nn::NamedParameter>& params,
                         const std::vector<std::shared_ptr<ag::Node>>& recorded,
                         const PlanOptions& options = {});

struct PlanVerifyReport {
  bool ok() const { return failures.empty(); }
  std::vector<std::string> failures;
  std::string ToString() const;
};

/// Static verifier over the plan *alone* (no graph access), so a stored or
/// mutated plan is checkable — which is what lets the planner-mutant tests
/// prove the alarm rings. Named diagnostics, each `[tag]`-prefixed:
///   [shape-rule]              carried over from build_failures
///   [accum-model]             simulated schedule disagreed with runtime
///   [malformed-interval]      inverted interval / missing offset / size 0
///   [overlapping-intervals]   two simultaneously-live buffers share bytes
///   [dead-store]              a differentiable value written, never read
///   [grad-freed-before-last-accumulation]  interval ends before a site
///   [grad-outlives-accumulation]  grad kept past its last read/accum
///   [reshape-alias-hazard]    alias views a different-sized or
///                             shorter-lived buffer (the Tensor::Reshape
///                             bug class PR 6 caught dynamically)
PlanVerifyReport VerifyGraphPlan(const GraphPlan& plan,
                                 const PlanOptions& options = {});

/// Compact JSON ({"buffers": [...], "planned_total_bytes": ...}) via
/// obs::JsonWriter; deterministic field order.
std::string PlanToJson(const GraphPlan& plan);

/// Graphviz DOT: value buffers as ellipses, grads as dashed boxes,
/// dataflow edges, one label line with interval and arena offset.
std::string PlanToDot(const GraphPlan& plan);

/// Pinned agreement bound between planned_total_bytes and the PR-6 memory
/// profiler's measured peak on the zoo models: the measured peak must lie
/// in [planned_total, planned_total * kPlannedPeakTolerance]. The lower
/// bound is exact (every planned buffer is really allocated inside the
/// measured window); the headroom covers what the static plan cannot see —
/// backward temporaries and tensors captured by op closures (softmax probs,
/// masks). Measured ratios across the 24-model zoo sit at 1.01–1.26, worst
/// case FPMC (tiny graph, so its backward temporaries weigh relatively
/// most); 1.5 leaves room for kernel-level temporaries to shift without
/// letting a whole uncaptured subgraph slip past unplanned.
constexpr double kPlannedPeakTolerance = 1.5;

/// Whole-zoo runner, mirroring RunModelAudit: builds `model` on the tiny
/// audit vocabulary, records one eval-mode forward/backward under a tape
/// *inside a fresh prof session* (restarting any active session), plans
/// and verifies the graph, and cross-checks planned vs. measured peak.
/// When EMBSR_GRAPH_DUMP_DIR is set, writes plan_<model>.json and
/// plan_<model>.dot next to the graph_<model>.* audit dumps.
struct ModelPlanOutcome {
  bool known = false;   // CreateModel recognized the name
  bool neural = false;  // memory-based baselines have no graph to plan
  GraphPlan plan;
  PlanVerifyReport verify;
  int64_t measured_peak_bytes = 0;  // prof peak delta over the run
  double measured_over_planned = 0.0;
};
ModelPlanOutcome RunModelPlan(const std::string& model);

}  // namespace analyze
}  // namespace embsr

#endif  // EMBSR_ANALYZE_GRAPH_PLAN_H_
