#include <memory>
#include <string>

#include "analyze/graph_plan.h"
#include "analyze/model_audits.h"
#include "models/neural_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prof/op_profiler.h"
#include "train/model_zoo.h"
#include "util/env.h"
#include "util/fs_util.h"
#include "util/logging.h"

namespace embsr {
namespace analyze {

namespace {

/// Same tiny fixed session and vocabulary as the model audits: every model
/// path (GNN, op encoding, attention) has real work to do, and the dumped
/// plan sits next to the audit's graph dump for the same graph.
Example PlanExample() {
  Example ex;
  ex.macro_items = {3, 7, 5};
  ex.macro_ops = {{1}, {0, 2}, {1, 3}};
  ex.flat_items = {3, 7, 7, 5, 5};
  ex.flat_ops = {1, 0, 2, 1, 3};
  ex.target = 9;
  return ex;
}

constexpr int64_t kPlanVocabItems = 12;
constexpr int64_t kPlanVocabOperations = 4;

}  // namespace

ModelPlanOutcome RunModelPlan(const std::string& model) {
  EMBSR_TRACE_SPAN("analyze/model_plan");
  ModelPlanOutcome outcome;

  TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_positions = 16;
  cfg.seed = 17;

  std::unique_ptr<Recommender> rec =
      CreateModel(model, kPlanVocabItems, kPlanVocabOperations, cfg);
  if (rec == nullptr) return outcome;
  outcome.known = true;
  auto* neural = dynamic_cast<NeuralSessionModel*>(rec.get());
  if (neural == nullptr) return outcome;  // memory-based: nothing to plan
  outcome.neural = true;

  neural->SetTraining(false);
  neural->ZeroGrad();
  const Example ex = PlanExample();

  // A model variant's legitimately-unused op outputs (if it ever registers
  // any) are the same set its tape audit allows as orphans.
  PlanOptions options;
  if (const ModelAuditSpec* spec = FindModelAudit(model)) {
    options.allowed_dead_stores = spec->options.allowed_orphan_ops;
  }

  // Bracket exactly the forward+backward in a fresh prof session so the
  // measured peak is the graph's transient footprint. Start() is a reset,
  // so an already-active session (EMBSR_PROF=1 runs) is restarted rather
  // than corrupted; it is left running — with cleared stats — afterwards.
  const bool outer_session = prof::Enabled();
  prof::Start();
  const int64_t live0 = prof::MemSnapshot().live_bytes;
  {
    ag::Tape tape;
    ag::Variable loss = neural->LossOn(ex);
    loss.Backward();
    outcome.measured_peak_bytes = prof::MemSnapshot().peak_bytes - live0;
    outcome.plan =
        BuildGraphPlan(loss, neural->NamedParameters(), tape, options);
    outcome.verify = VerifyGraphPlan(outcome.plan, options);
  }
  if (!outer_session) prof::Stop();

  if (outcome.plan.planned_total_bytes > 0) {
    outcome.measured_over_planned =
        static_cast<double>(outcome.measured_peak_bytes) /
        static_cast<double>(outcome.plan.planned_total_bytes);
  }

  obs::Registry& reg = obs::Registry::Global();
  reg.GetGauge("analyze/plan_total_bytes")
      ->Set(static_cast<double>(outcome.plan.planned_total_bytes));
  reg.GetGauge("analyze/plan_peak_bytes")
      ->Set(static_cast<double>(outcome.plan.planned_peak_bytes));
  reg.GetCounter("analyze/plans_total")->Increment();

  const std::string dump_dir = GetEnvString("EMBSR_GRAPH_DUMP_DIR", "");
  if (!dump_dir.empty()) {
    const Status json = AtomicWriteFile(dump_dir + "/plan_" + model + ".json",
                                        PlanToJson(outcome.plan));
    const Status dot = AtomicWriteFile(dump_dir + "/plan_" + model + ".dot",
                                       PlanToDot(outcome.plan));
    if (!json.ok() || !dot.ok()) {
      EMBSR_LOG(Warning) << "plan dump for " << model << " failed: "
                         << (json.ok() ? dot : json).ToString();
    }
  }
  return outcome;
}

}  // namespace analyze
}  // namespace embsr
