#include "analyze/model_audits.h"

#include <memory>

#include "analyze/graph_dump.h"
#include "models/neural_model.h"
#include "obs/trace.h"
#include "train/model_zoo.h"
#include "util/env.h"
#include "util/fs_util.h"
#include "util/logging.h"

namespace embsr {
namespace analyze {

namespace {

/// Tiny fixed session for the audit forward pass — same shape as the
/// gradcheck harness's tiny example (micro-behavior session of 3 macro
/// items with parallel operations), chosen so every model path (GNN on the
/// item graph, op encoding, attention over positions) has real work to do.
Example AuditExample() {
  Example ex;
  ex.macro_items = {3, 7, 5};
  ex.macro_ops = {{1}, {0, 2}, {1, 3}};
  ex.flat_items = {3, 7, 7, 5, 5};
  ex.flat_ops = {1, 0, 2, 1, 3};
  ex.target = 9;
  return ex;
}

constexpr int64_t kAuditVocabItems = 12;
constexpr int64_t kAuditVocabOperations = 4;

/// Coverage marker. verify/source_scan.cc collects every quoted-string
/// EMBSR_MODEL_AUDIT use in this file and tests/graph_audit_test.cc diffs
/// the set against train/model_zoo.cc in both directions — register a
/// model here or its audit coverage test fails.
#define EMBSR_MODEL_AUDIT(name) name

/// EmbsrModel registers every component unconditionally (stable checkpoint
/// layout and parameter count across the ablation grid — see
/// core/embsr_model.cc); a variant's disabled components are therefore
/// *expected* dead parameters, listed per audit below. The allowances are
/// exact: a listed parameter that does receive gradient fails the audit as
/// a stale allowance, so they cannot mask a real regression.

/// All ten parameters of one nn::Gru cell registered under `prefix`.
void AllowGruCell(const std::string& prefix, TapeAuditOptions* o) {
  for (const char* p : {"w_ir", "w_iz", "w_in", "w_hr", "w_hz", "w_hn",
                        "b_r", "b_z", "b_in", "b_hn"}) {
    o->allowed_dead_params.push_back(prefix + "." + std::string(p));
  }
}

/// The flat-sequence GRU backbone and its fusion head are only wired when
/// cfg.rnn_backbone is set (RNN-Self); every other EMBSR-family audit
/// allows them dead.
TapeAuditOptions* AllowRnnBackbone(TapeAuditOptions* o) {
  AllowGruCell("rnn_backbone_gru.cell", o);
  o->allowed_dead_params.push_back("rnn_fuse.weight");
  o->allowed_dead_params.push_back("rnn_fuse.bias");
  return o;
}

/// op_importance only contributes when cfg.weight_operations (EMBSR-W).
TapeAuditOptions* AllowOpImportance(TapeAuditOptions* o) {
  o->allowed_dead_params.push_back("op_importance");
  return o;
}

/// The star-multigraph GNN stage — GGNN update gates, the two message
/// attention pairs, message projections and the highway combine — is
/// bypassed entirely when !cfg.use_gnn (EMBSR-NG, RNN-Self).
TapeAuditOptions* AllowGnn(TapeAuditOptions* o) {
  for (const char* p : {"w_z", "u_z", "w_r", "u_r", "w_u", "u_u", "wq1",
                        "wk1", "wq2", "wk2", "msg_in.weight", "msg_in.bias",
                        "msg_out.weight", "msg_out.bias", "highway.weight"}) {
    o->allowed_dead_params.push_back(p);
  }
  return o;
}

/// The per-item micro-operation GRU feeds the GNN messages (Eq. 5–6); it
/// goes dead when those edges are disabled (!use_op_gru_edges) or the GNN
/// stage is bypassed altogether.
TapeAuditOptions* AllowMicroOpGru(TapeAuditOptions* o) {
  AllowGruCell("micro_gru.cell", o);
  return o;
}

/// The operation-aware self-attention block (query projection, position
/// table, FFN, both layer norms) — unused when !cfg.use_self_attention
/// (EMBSR-NS, where the global preference is the star input directly).
TapeAuditOptions* AllowSelfAttention(TapeAuditOptions* o) {
  for (const char* p : {"w_q_attn", "positions.table", "ffn.fc1.weight",
                        "ffn.fc1.bias", "ffn.fc2.weight", "ffn.fc2.bias",
                        "ln1.gamma", "ln1.beta", "ln2.gamma", "ln2.beta"}) {
    o->allowed_dead_params.push_back(p);
  }
  return o;
}

/// Dyadic relation embeddings (Eq. 14/16) enter only the attention
/// keys/values; dead when !cfg.use_dyadic or the attention block itself is
/// off.
TapeAuditOptions* AllowDyadicRelations(TapeAuditOptions* o) {
  o->allowed_dead_params.push_back("relations.table");
  return o;
}

/// Absolute operation embeddings; dead when neither the attention inputs
/// (!use_op_in_attention) nor the op-GRU edges consume them (SGNN-Self).
TapeAuditOptions* AllowOpsTable(TapeAuditOptions* o) {
  o->allowed_dead_params.push_back("ops.table");
  return o;
}

std::vector<ModelAuditSpec> BuildAudits() {
  std::vector<ModelAuditSpec> audits;
  auto add = [&audits](const std::string& name) -> TapeAuditOptions* {
    audits.push_back({name, {}});
    return &audits.back().options;
  };

  // Memory-based baselines: no parameters, trivially clean.
  add(EMBSR_MODEL_AUDIT("S-POP"));
  add(EMBSR_MODEL_AUDIT("SKNN"));
  add(EMBSR_MODEL_AUDIT("STAN"));

  // Neural baselines: every parameter must reach the loss, no exceptions.
  add(EMBSR_MODEL_AUDIT("NARM"));
  add(EMBSR_MODEL_AUDIT("STAMP"));
  add(EMBSR_MODEL_AUDIT("SR-GNN"));
  add(EMBSR_MODEL_AUDIT("GC-SAN"));
  add(EMBSR_MODEL_AUDIT("BERT4Rec"));
  add(EMBSR_MODEL_AUDIT("SGNN-HN"));
  add(EMBSR_MODEL_AUDIT("RIB"));
  add(EMBSR_MODEL_AUDIT("HUP"));
  add(EMBSR_MODEL_AUDIT("MKM-SR"));
  add(EMBSR_MODEL_AUDIT("GRU4Rec"));
  add(EMBSR_MODEL_AUDIT("FPMC"));

  // EMBSR and its ablation grid. Each variant allows exactly the component
  // groups its EmbsrConfig switches off — nothing more (the stale-allowance
  // check turns an over-broad list into a failure).
  AllowRnnBackbone(AllowOpImportance(add(EMBSR_MODEL_AUDIT("EMBSR"))));
  AllowSelfAttention(AllowDyadicRelations(
      AllowRnnBackbone(AllowOpImportance(add(EMBSR_MODEL_AUDIT("EMBSR-NS"))))));
  AllowGnn(AllowMicroOpGru(
      AllowRnnBackbone(AllowOpImportance(add(EMBSR_MODEL_AUDIT("EMBSR-NG"))))));
  AllowRnnBackbone(AllowOpImportance(add(EMBSR_MODEL_AUDIT("EMBSR-NF"))));
  AllowRnnBackbone(add(EMBSR_MODEL_AUDIT("EMBSR-W")));
  AllowOpsTable(AllowDyadicRelations(AllowMicroOpGru(AllowRnnBackbone(
      AllowOpImportance(add(EMBSR_MODEL_AUDIT("SGNN-Self")))))));
  AllowDyadicRelations(AllowRnnBackbone(
      AllowOpImportance(add(EMBSR_MODEL_AUDIT("SGNN-Seq-Self")))));
  AllowGnn(AllowMicroOpGru(AllowDyadicRelations(
      AllowOpImportance(add(EMBSR_MODEL_AUDIT("RNN-Self"))))));
  AllowDyadicRelations(AllowMicroOpGru(AllowRnnBackbone(
      AllowOpImportance(add(EMBSR_MODEL_AUDIT("SGNN-Abs-Self"))))));
  AllowMicroOpGru(AllowRnnBackbone(
      AllowOpImportance(add(EMBSR_MODEL_AUDIT("SGNN-Dyadic")))));

  return audits;
}

#undef EMBSR_MODEL_AUDIT

}  // namespace

const std::vector<ModelAuditSpec>& ModelAudits() {
  static const auto* audits =  // lint: allow(raw-new): leaked singleton
      new std::vector<ModelAuditSpec>(BuildAudits());
  return *audits;
}

const ModelAuditSpec* FindModelAudit(const std::string& name) {
  for (const ModelAuditSpec& spec : ModelAudits()) {
    if (spec.model == name) return &spec;
  }
  return nullptr;
}

ModelAuditOutcome RunModelAudit(const ModelAuditSpec& spec) {
  EMBSR_TRACE_SPAN("analyze/model_audit");
  ModelAuditOutcome outcome;

  TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_positions = 16;
  cfg.seed = 17;

  std::unique_ptr<Recommender> model =
      CreateModel(spec.model, kAuditVocabItems, kAuditVocabOperations, cfg);
  if (model == nullptr) return outcome;
  outcome.known = true;

  auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
  if (neural == nullptr) return outcome;  // memory-based: no graph to audit
  outcome.neural = true;

  // Eval mode: the audited graph is the deterministic inference wiring
  // (dropout contributes no nodes), matching the gradcheck harness.
  neural->SetTraining(false);
  neural->ZeroGrad();

  const Example ex = AuditExample();
  ag::Tape tape;
  ag::Variable loss = neural->LossOn(ex);
  loss.Backward();
  outcome.report =
      AuditTape(loss, neural->NamedParameters(), tape, spec.options);
  ExportTapeStats(outcome.report.stats);

  const std::string dump_dir = GetEnvString("EMBSR_GRAPH_DUMP_DIR", "");
  if (!dump_dir.empty()) {
    const std::vector<nn::NamedParameter> params = neural->NamedParameters();
    const Status dot = AtomicWriteFile(
        dump_dir + "/graph_" + spec.model + ".dot", ToDot(loss, params));
    const Status json = AtomicWriteFile(
        dump_dir + "/graph_" + spec.model + ".json", ToJson(loss, params));
    if (!dot.ok() || !json.ok()) {
      EMBSR_LOG(Warning) << "graph dump for " << spec.model
                         << " failed: " << (dot.ok() ? json : dot).ToString();
    }
  }
  return outcome;
}

}  // namespace analyze
}  // namespace embsr
