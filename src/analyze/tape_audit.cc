#include "analyze/tape_audit.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace embsr {
namespace analyze {

namespace {

bool Contains(const std::vector<std::string>& list, const std::string& s) {
  return std::find(list.begin(), list.end(), s) != list.end();
}

}  // namespace

std::vector<ag::Node*> ReachableNodes(const ag::Variable& root) {
  std::vector<ag::Node*> order;
  if (!root.defined()) return order;
  std::unordered_set<ag::Node*> visited;
  std::vector<ag::Node*> stack{root.node().get()};
  visited.insert(root.node().get());
  while (!stack.empty()) {
    ag::Node* cur = stack.back();
    stack.pop_back();
    order.push_back(cur);
    for (const auto& p : cur->parents) {
      if (visited.insert(p.get()).second) stack.push_back(p.get());
    }
  }
  return order;
}

TapeAuditReport AuditTape(const ag::Variable& loss,
                          const std::vector<nn::NamedParameter>& params,
                          const ag::Tape& tape,
                          const TapeAuditOptions& options) {
  TapeAuditReport report;
  auto fail = [&report](const std::string& msg) {
    report.failures.push_back(msg);
  };

  if (!loss.defined()) {
    fail("audit root (loss) is an undefined Variable");
    return report;
  }

  const std::vector<ag::Node*> reachable_order = ReachableNodes(loss);
  std::unordered_set<ag::Node*> reachable(reachable_order.begin(),
                                          reachable_order.end());

  report.stats.tape_nodes = static_cast<int64_t>(tape.nodes().size());
  report.stats.reachable_nodes = static_cast<int64_t>(reachable_order.size());
  report.stats.parameters = static_cast<int64_t>(params.size());
  for (ag::Node* n : reachable_order) {
    report.stats.edges += static_cast<int64_t>(n->parents.size());
    ++report.stats.op_histogram[n->op];
  }

  // Invariants 4 & 5: parameters are distinct leaves. Aliased names would
  // double-count gradients; a parameter with parents is rebuilt every
  // forward pass and never actually trains.
  std::unordered_map<ag::Node*, std::string> param_name_of_node;
  std::unordered_map<const float*, std::string> param_name_of_buffer;
  for (const nn::NamedParameter& p : params) {
    if (!p.variable.defined()) {
      fail("parameter '" + p.name + "' is an undefined Variable");
      continue;
    }
    ag::Node* node = p.variable.node().get();
    report.stats.parameter_scalars += node->value.size();
    auto [node_it, node_fresh] = param_name_of_node.emplace(node, p.name);
    if (!node_fresh) {
      fail("aliased parameters: '" + p.name + "' and '" + node_it->second +
           "' share one graph node");
    }
    auto [buf_it, buf_fresh] =
        param_name_of_buffer.emplace(node->value.data(), p.name);
    if (!buf_fresh && node_fresh) {
      fail("aliased parameters: '" + p.name + "' and '" + buf_it->second +
           "' share one value buffer");
    }
    if (!node->parents.empty() || node->backward_fn) {
      fail("parameter '" + p.name + "' is not a leaf (produced by op '" +
           std::string(node->op) + "')");
    }
    if (!node->requires_grad) {
      fail("parameter '" + p.name + "' does not require grad");
    }
  }

  // Expected accumulation count per node: one per consumer edge whose
  // consumer's backward actually ran (mirrors Variable::Backward, which
  // fires backward_fn for reachable nodes with grad_ready), plus one at
  // the root for the Backward() seed.
  std::unordered_map<ag::Node*, int64_t> expected;
  for (ag::Node* n : reachable_order) {
    if (!n->backward_fn || !n->grad_ready) continue;
    for (const auto& p : n->parents) {
      if (p->requires_grad) ++expected[p.get()];
    }
  }
  ++expected[loss.node().get()];

  // Invariant 1: every parameter on a path to the loss, gradient received —
  // with explicitly-allowed exceptions, themselves checked for staleness.
  for (const nn::NamedParameter& p : params) {
    if (!p.variable.defined()) continue;
    ag::Node* node = p.variable.node().get();
    const bool alive = reachable.count(node) > 0 && node->accum_count > 0;
    const bool allowed_dead = Contains(options.allowed_dead_params, p.name);
    if (!alive && !allowed_dead) {
      fail("dead parameter '" + p.name + "' (" +
           (reachable.count(node) ? "reachable but received no gradient"
                                  : "not reachable from the loss") +
           ")");
    } else if (alive && allowed_dead) {
      fail("stale allowance: parameter '" + p.name +
           "' is listed as allowed-dead but received a gradient");
    } else if (!alive) {
      ++report.stats.dead_params_allowed;
    }
  }

  // Invariant 2: accumulation count equals fan-out for every reachable
  // requires_grad node.
  for (ag::Node* n : reachable_order) {
    if (!n->requires_grad) continue;
    const auto it = expected.find(n);
    const int64_t want = it == expected.end() ? 0 : it->second;
    if (n->accum_count != want) {
      std::ostringstream msg;
      msg << "gradient accumulation mismatch on op '" << n->op << "'";
      const auto name_it = param_name_of_node.find(n);
      if (name_it != param_name_of_node.end()) {
        msg << " (parameter '" << name_it->second << "')";
      }
      msg << ": accumulated " << n->accum_count << " times, graph fan-out is "
          << want;
      fail(msg.str());
    }
  }

  // Invariant 3: no orphaned ops — everything recorded that carries
  // requires_grad must be an ancestor of the loss.
  for (const auto& node : tape.nodes()) {
    if (!node->requires_grad || reachable.count(node.get())) continue;
    if (Contains(options.allowed_orphan_ops, node->op)) continue;
    fail("orphaned op '" + std::string(node->op) + "' producing " +
         node->value.ShapeString() +
         ": recorded on the tape but unreachable from the loss");
  }

  return report;
}

std::string TapeAuditReport::ToString() const {
  std::ostringstream out;
  out << "tape audit: " << (ok() ? "OK" : "FAILED") << " — "
      << stats.reachable_nodes << "/" << stats.tape_nodes
      << " nodes reachable, " << stats.edges << " edges, " << stats.parameters
      << " parameters (" << stats.parameter_scalars << " scalars, "
      << stats.dead_params_allowed << " allowed-dead)";
  for (const std::string& f : failures) out << "\n  - " << f;
  return out.str();
}

}  // namespace analyze
}  // namespace embsr
