#ifndef EMBSR_ANALYZE_SHAPE_RULES_H_
#define EMBSR_ANALYZE_SHAPE_RULES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace embsr {
namespace analyze {

/// Per-op symbolic shape rules over recorded autograd graphs.
///
/// Every op declared in autograd/ops.h has one registered rule that checks
/// a node's recorded output shape against its parents' shapes — the static
/// half of the shape contracts the kernels assert dynamically. The graph
/// planner (graph_plan.h) runs these over every node before trusting the
/// recorded sizes for liveness and arena layout; a node whose shape cannot
/// be re-derived from its inputs would silently corrupt the plan.
///
/// Coverage is enforced the same way as the op cost models: each rule in
/// shape_rules.cc carries an EMBSR_SHAPE_RULE("Name") marker,
/// verify::ScanShapeRuleCoverage collects the markers, and
/// tests/graph_plan_test.cc diffs them against autograd/ops.h in both
/// directions — an op without a shape rule fails the scan test, not a
/// production run.
///
/// Rules are *checkers*, not inferrers: attributes that never reach the
/// node (slice bounds, gather indices, repeat counts) make full inference
/// impossible from the graph alone, so rules with hidden attributes check
/// the bounds the attributes cannot escape (e.g. a SliceRows output has its
/// input's column count and no more rows than its input).

/// True if `op` has a registered shape rule.
bool HasShapeRule(const std::string& op);

/// All registered rule names, sorted (mirrors the source-scan markers).
std::vector<std::string> ShapeRuleNames();

/// Checks `node`'s recorded output shape against its parents via the rule
/// registered for its op. Returns "" when consistent, a diagnostic when
/// not, and a diagnostic when the op has no rule. Precondition: the node
/// has recorded parents (ops on non-differentiable inputs record none and
/// must be skipped by the caller — they are opaque to static analysis).
std::string CheckNodeShape(const ag::Node& node);

struct ShapeCheckStats {
  int64_t checked = 0;  // op nodes with recorded parents, rule applied
  int64_t skipped = 0;  // op nodes without recorded parents (opaque)
  int64_t leaves = 0;   // leaf nodes (no rule applies)
};

/// Runs CheckNodeShape over every node: leaves and opaque op nodes are
/// counted and skipped, everything else is checked. Returns all
/// diagnostics, "[shape-rule]"-prefixed.
std::vector<std::string> CheckShapes(const std::vector<ag::Node*>& nodes,
                                     ShapeCheckStats* stats);

}  // namespace analyze
}  // namespace embsr

#endif  // EMBSR_ANALYZE_SHAPE_RULES_H_
