#ifndef EMBSR_ANALYZE_MODEL_AUDITS_H_
#define EMBSR_ANALYZE_MODEL_AUDITS_H_

#include <string>
#include <vector>

#include "analyze/tape_audit.h"

namespace embsr {
namespace analyze {

/// One registered per-model audit: which zoo model to build, and which
/// structural exceptions its configuration makes legitimate.
struct ModelAuditSpec {
  std::string model;
  TapeAuditOptions options;
};

/// All registered per-model audits, one per zoo model name. Coverage is
/// *enforced*, not aspirational: verify/source_scan.cc regex-scans
/// src/analyze/model_audits.cc for EMBSR_MODEL_AUDIT("...") markers and
/// tests/graph_audit_test.cc fails if any model_zoo.cc name lacks an entry
/// (or an entry names a model the zoo no longer builds).
const std::vector<ModelAuditSpec>& ModelAudits();

/// The spec registered for `name`, or null.
const ModelAuditSpec* FindModelAudit(const std::string& name);

struct ModelAuditOutcome {
  bool known = false;   // CreateModel recognized the name
  bool neural = false;  // gradient-trained; memory-based baselines have no
                        // graph and audit trivially
  TapeAuditReport report;
};

/// Builds the model on the tiny audit vocabulary, records one eval-mode
/// forward/backward of LossOn on a fixed synthetic session under an
/// ag::Tape, audits the graph against the spec, and exports stats through
/// embsr::obs. When EMBSR_GRAPH_DUMP_DIR is set, also writes
/// graph_<model>.dot and graph_<model>.json there.
ModelAuditOutcome RunModelAudit(const ModelAuditSpec& spec);

}  // namespace analyze
}  // namespace embsr

#endif  // EMBSR_ANALYZE_MODEL_AUDITS_H_
