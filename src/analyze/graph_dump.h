#ifndef EMBSR_ANALYZE_GRAPH_DUMP_H_
#define EMBSR_ANALYZE_GRAPH_DUMP_H_

#include <string>
#include <vector>

#include "analyze/tape_audit.h"
#include "autograd/variable.h"
#include "nn/module.h"

namespace embsr {
namespace analyze {

/// Renders the graph under `loss` (everything reachable through parent
/// edges) as Graphviz DOT: ops as ellipses, parameters as labeled boxes,
/// edges from input to consumer. Node order is the deterministic discovery
/// order of ReachableNodes, so dumps diff cleanly across runs.
std::string ToDot(const ag::Variable& loss,
                  const std::vector<nn::NamedParameter>& params);

/// Same graph as compact JSON ({"nodes": [...], "edges": [...]}) via
/// obs::JsonWriter, for tooling that would rather not parse DOT.
std::string ToJson(const ag::Variable& loss,
                   const std::vector<nn::NamedParameter>& params);

/// Publishes audit stats through embsr::obs — gauges analyze/graph_nodes,
/// analyze/graph_edges, analyze/graph_params (last audited graph) and
/// counter analyze/audits_total — so training telemetry snapshots include
/// the shape of the last audited graph.
void ExportTapeStats(const TapeAuditStats& stats);

}  // namespace analyze
}  // namespace embsr

#endif  // EMBSR_ANALYZE_GRAPH_DUMP_H_
