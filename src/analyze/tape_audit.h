#ifndef EMBSR_ANALYZE_TAPE_AUDIT_H_
#define EMBSR_ANALYZE_TAPE_AUDIT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "autograd/tape.h"
#include "autograd/variable.h"
#include "nn/module.h"

namespace embsr {
namespace analyze {

/// Structural audit of one recorded forward/backward pass.
///
/// The gradcheck harness (src/verify) answers "are the gradients
/// numerically right?"; this auditor answers the question upstream of it:
/// "is the graph wired the way the model intends?" A model whose operation
/// embedding never reaches the loss still trains, still scores, and
/// silently becomes a weaker baseline — the classic miswired-baseline
/// failure the session-rec replication literature keeps finding. Dead
/// parameters, dropped op outputs and double-accumulating backwards are
/// all invisible to finite differences of the parameters that *do* work.
///
/// Invariants checked (run AuditTape after exactly one Backward() on a
/// freshly built graph whose nodes were recorded by an ag::Tape):
///
///   1. *No dead parameters.* Every registered parameter is an ancestor of
///      the loss and received a gradient — unless explicitly allowed
///      (ablation variants construct components their config disables).
///      Allowances are checked both ways: an allowed-dead parameter that
///      *does* get a gradient is a stale allowance and also fails.
///   2. *Accumulation matches fan-out.* For every reachable requires_grad
///      node, the number of AccumulateGrad calls it received equals its
///      consumer-edge count (with multiplicity) plus one at the backward
///      root for the seed. Catches backwards that accumulate twice, skip a
///      parent, or leak gradient into detached subgraphs.
///   3. *No orphaned ops.* Every requires_grad node recorded on the tape is
///      reachable from the loss. An unreachable op means a computed output
///      was dropped on the floor — usually a refactor losing a term.
///   4. *No aliased parameters.* No two registered parameter names share a
///      graph node or a value buffer; aliasing would double-count
///      gradients and corrupt optimizer state.
///   5. *Parameters are leaves.* A parameter produced by an op would be
///      re-created every forward pass and never actually train.

struct TapeAuditOptions {
  /// Exact Module::NamedParameters paths expected to receive no gradient.
  /// Normally empty; EMBSR ablation variants list the components their
  /// config switches off (registered unconditionally by EmbsrModel).
  std::vector<std::string> allowed_dead_params;
  /// Op names (Node::op) whose outputs may legitimately be left unused.
  /// Normally empty.
  std::vector<std::string> allowed_orphan_ops;
};

struct TapeAuditStats {
  int64_t tape_nodes = 0;       // everything recorded, incl. constants
  int64_t reachable_nodes = 0;  // ancestors of the loss (loss included)
  int64_t edges = 0;            // parent links among reachable nodes
  int64_t parameters = 0;       // registered named parameters
  int64_t parameter_scalars = 0;
  int64_t dead_params_allowed = 0;  // allowed-dead list entries that matched
  std::map<std::string, int64_t> op_histogram;  // reachable nodes per op
};

struct TapeAuditReport {
  bool ok() const { return failures.empty(); }
  std::vector<std::string> failures;
  TapeAuditStats stats;

  /// Human-readable multi-line summary (stats + every failure).
  std::string ToString() const;
};

/// All ancestors of `root` (root itself included), in deterministic
/// discovery order. Shared by the auditor and the graph dumpers.
std::vector<ag::Node*> ReachableNodes(const ag::Variable& root);

/// Audits the graph under `loss` against `params` and the recorded `tape`.
/// Precondition: exactly one Backward() ran since the parameters were
/// zeroed (the fan-out counts assume a single seed).
TapeAuditReport AuditTape(const ag::Variable& loss,
                          const std::vector<nn::NamedParameter>& params,
                          const ag::Tape& tape,
                          const TapeAuditOptions& options = {});

}  // namespace analyze
}  // namespace embsr

#endif  // EMBSR_ANALYZE_TAPE_AUDIT_H_
