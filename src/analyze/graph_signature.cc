#include "analyze/graph_signature.h"

#include <cstring>
#include <unordered_map>

namespace embsr {
namespace analyze {

namespace {

uint64_t HashMixBytes(uint64_t h, const char* s) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*s));
    h *= kPrime;
  }
  // Terminator keeps ("ab","c") distinct from ("a","bc").
  h ^= 0xffull;
  h *= kPrime;
  return h;
}

}  // namespace

GraphSignature ComputeGraphSignature(
    const std::vector<std::shared_ptr<ag::Node>>& recorded,
    const ag::Node* root, bool forward_only) {
  GraphSignature sig;
  sig.tape_nodes = static_cast<int64_t>(recorded.size());
  sig.forward_only = forward_only;

  // Tape index per recorded node; persistent parents get negative ordinals
  // in first-encounter order — stable across runs because encounter order
  // is creation order, never a pointer value.
  std::unordered_map<const ag::Node*, int64_t> index;
  index.reserve(recorded.size() * 2);
  for (size_t i = 0; i < recorded.size(); ++i) {
    index.emplace(recorded[i].get(), static_cast<int64_t>(i));
  }
  int64_t persistent_seen = 0;

  uint64_t h = kFnvOffsetBasis;
  for (size_t i = 0; i < recorded.size(); ++i) {
    const ag::Node* n = recorded[i].get();
    h = HashMixBytes(h, n->op);
    h = HashMixU64(h, static_cast<uint64_t>(n->value.ndim()));
    for (int64_t d : n->value.shape()) {
      h = HashMixU64(h, static_cast<uint64_t>(d));
    }
    h = HashMixU64(h, n->attr_hash);
    h = HashMixU64(h, n->requires_grad ? 1 : 2);
    h = HashMixU64(h, static_cast<uint64_t>(n->parents.size()));
    for (const auto& p : n->parents) {
      auto it = index.find(p.get());
      if (it == index.end()) {
        it = index.emplace(p.get(), -(++persistent_seen)).first;
      }
      h = HashMixU64(h, static_cast<uint64_t>(it->second));
    }
  }
  const auto root_it = root != nullptr ? index.find(root) : index.end();
  h = HashMixU64(h, root_it != index.end()
                        ? static_cast<uint64_t>(root_it->second)
                        : ~0ull);
  h = HashMixU64(h, forward_only ? 3 : 4);
  sig.hash = h;
  return sig;
}

}  // namespace analyze
}  // namespace embsr
