#include "analyze/graph_plan.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analyze/tape_audit.h"
#include "obs/json.h"

namespace embsr {
namespace analyze {

namespace {

constexpr int64_t kBytesPerElem = static_cast<int64_t>(sizeof(float));

/// Per-node bookkeeping while the plan is under construction.
struct NodeInfo {
  int64_t fwd_step = -1;  // tape creation index; -1 for persistent nodes
  int64_t node_id = 0;
  int64_t value_buf = -1;
  int64_t exec_step = -1;  // backward execution step, -1 if never executed
  std::vector<int64_t> accum_steps;
};

bool Contains(const std::vector<std::string>& list, const std::string& s) {
  return std::find(list.begin(), list.end(), s) != list.end();
}

void NoteValueRead(PlanBuffer* b, int64_t step) {
  ++b->reads;
  b->last_read_step = std::max(b->last_read_step, step);
}

}  // namespace

GraphPlan BuildGraphPlan(const ag::Variable& loss,
                         const std::vector<nn::NamedParameter>& params,
                         const ag::Tape& tape,
                         const PlanOptions& options) {
  return BuildGraphPlan(loss, params, tape.nodes(), options);
}

GraphPlan BuildGraphPlan(const ag::Variable& loss,
                         const std::vector<nn::NamedParameter>& params,
                         const std::vector<std::shared_ptr<ag::Node>>& recorded,
                         const PlanOptions& options) {
  GraphPlan plan;
  if (!loss.defined()) {
    plan.build_failures.push_back(
        "[accum-model] plan root (loss) is an undefined Variable");
    return plan;
  }
  ag::Node* root = loss.node().get();

  // ---- Node universe: tape nodes in creation order (forward steps), then
  // reachable pre-tape nodes (parameters and cached constants: persistent).
  std::vector<ag::Node*> nodes;
  std::unordered_map<ag::Node*, NodeInfo> info;
  const int64_t forward_steps = static_cast<int64_t>(recorded.size());
  for (int64_t i = 0; i < forward_steps; ++i) {
    ag::Node* n = recorded[static_cast<size_t>(i)].get();
    auto [it, fresh] = info.try_emplace(n);
    if (!fresh) continue;  // defensive: a tape records each node once
    it->second.fwd_step = i;
    it->second.node_id = i;
    nodes.push_back(n);
  }
  int64_t persistent_nodes = 0;
  for (ag::Node* n : ReachableNodes(loss)) {
    auto [it, fresh] = info.try_emplace(n);
    if (!fresh) continue;
    it->second.node_id = -(++persistent_nodes);
    nodes.push_back(n);
  }
  if (info.count(root) == 0) {
    // Cannot happen (the root is reachable from itself); bail defensively.
    plan.build_failures.push_back("[accum-model] root missing from universe");
    return plan;
  }

  std::unordered_map<ag::Node*, std::string> param_name;
  for (const nn::NamedParameter& p : params) {
    if (p.variable.defined()) {
      param_name.emplace(p.variable.node().get(), p.name);
    }
  }

  // ---- Shape pass: every recorded op's output must re-derive from its
  // inputs before the sizes below are trusted for layout.
  plan.build_failures = CheckShapes(nodes, &plan.stats.shapes);

  // ---- Backward schedule: replay exactly what Variable::Backward() runs.
  // Forward-only plans (eval/serving steps) have no seed and no backward
  // steps; the caller reads the root at end_step == forward_steps.
  int64_t step = forward_steps;
  if (!options.forward_only) {
    const std::vector<ag::Node*> post = ag::BackwardPostOrder(loss);
    std::unordered_set<ag::Node*> ready;
    ready.insert(root);
    info[root].accum_steps.push_back(forward_steps);  // the gradient seed
    for (auto it = post.rbegin(); it != post.rend(); ++it) {
      ag::Node* n = *it;
      if (!n->backward_fn || ready.count(n) == 0) continue;
      info[n].exec_step = ++step;
      for (const auto& p : n->parents) {
        if (!p->requires_grad) continue;
        info[p.get()].accum_steps.push_back(step);
        ready.insert(p.get());
      }
    }
  }
  const int64_t backward_steps = step - forward_steps;
  const int64_t end_step = options.forward_only ? forward_steps : step + 1;
  plan.end_step = end_step;
  plan.stats.tape_nodes = forward_steps;
  plan.stats.persistent_nodes = persistent_nodes;
  plan.stats.forward_steps = forward_steps;
  plan.stats.backward_steps = backward_steps;

  // ---- Accumulation cross-check: the simulated schedule must agree with
  // what the runtime recorded (valid after exactly one Backward since
  // ZeroGrad — the documented precondition).
  for (ag::Node* n : nodes) {
    const NodeInfo& ni = info[n];
    // Executor context: persistent grads accumulate across the mini-batch,
    // so their runtime count says nothing about this one step's schedule.
    if (options.executor_mode && ni.fwd_step < 0) continue;
    const int64_t simulated = static_cast<int64_t>(ni.accum_steps.size());
    if (simulated != n->accum_count) {
      std::ostringstream out;
      out << "[accum-model] node #" << ni.node_id << " (op '" << n->op
          << "'): schedule simulates " << simulated
          << " gradient accumulation(s), runtime recorded " << n->accum_count;
      plan.build_failures.push_back(out.str());
    }
  }

  // ---- Buffers: one value buffer per node; one grad buffer per node that
  // accumulates. Gradient buffers are always transient — they are allocated
  // during the backward pass being planned.
  for (ag::Node* n : nodes) {
    NodeInfo& ni = info[n];
    PlanBuffer b;
    b.id = static_cast<int64_t>(plan.buffers.size());
    b.node_id = ni.node_id;
    auto it = param_name.find(n);
    b.label = it != param_name.end() ? it->second : std::string(n->op);
    b.shape = n->value.ShapeString();
    b.persistent = ni.fwd_step < 0;
    b.requires_grad = n->requires_grad;
    b.is_root = n == root;
    b.size_bytes = n->value.size() * kBytesPerElem;
    b.def_step = ni.fwd_step;  // -1 for persistent: allocated pre-tape
    b.exec_step = ni.exec_step;
    ni.value_buf = b.id;
    plan.buffers.push_back(std::move(b));
  }
  for (ag::Node* n : nodes) {
    const NodeInfo& ni = info[n];
    if (ni.accum_steps.empty()) continue;
    PlanBuffer g;
    g.id = static_cast<int64_t>(plan.buffers.size());
    g.node_id = ni.node_id;
    g.label = plan.buffers[static_cast<size_t>(ni.value_buf)].label;
    g.shape = n->value.ShapeString();
    g.is_grad = true;
    g.requires_grad = true;
    g.size_bytes = n->value.size() * kBytesPerElem;
    g.def_step = ni.accum_steps.front();
    g.accum_steps = ni.accum_steps;
    // The grad is read once: by this node's own backward execution, or —
    // for leaves, where no backward runs — by the optimizer at end-of-graph.
    g.last_read_step = ni.exec_step >= 0 ? ni.exec_step : end_step;
    g.reads = 1;
    g.last_use_step = std::max(g.last_read_step, ni.accum_steps.back());
    plan.buffers.push_back(std::move(g));
  }

  // ---- Value reads. Forward: each recorded op reads its parents at its
  // own creation step (and contributes a dataflow edge). Backward: an
  // executed node reads its own value and every parent value (the
  // conservative superset of what the closures in ops.cc touch). End: the
  // caller reads the root value.
  for (ag::Node* n : nodes) {
    const NodeInfo& ni = info[n];
    if (ni.fwd_step >= 0) {
      for (const auto& p : n->parents) {
        PlanBuffer* pb = &plan.buffers[static_cast<size_t>(
            info[p.get()].value_buf)];
        NoteValueRead(pb, ni.fwd_step);
        plan.edges.emplace_back(pb->id, ni.value_buf);
      }
    }
    if (ni.exec_step >= 0) {
      NoteValueRead(&plan.buffers[static_cast<size_t>(ni.value_buf)],
                    ni.exec_step);
      for (const auto& p : n->parents) {
        NoteValueRead(&plan.buffers[static_cast<size_t>(
                          info[p.get()].value_buf)],
                      ni.exec_step);
      }
    }
  }
  NoteValueRead(&plan.buffers[static_cast<size_t>(info[root].value_buf)],
                end_step);
  for (PlanBuffer& b : plan.buffers) {
    if (b.is_grad || b.persistent) continue;
    b.last_use_step = std::max(b.def_step, b.last_read_step);
  }

  // ---- First-fit arena layout over the transient intervals, plus the
  // liveness peak (what a perfect arena needs) and the total (what the
  // current heap execution holds at its high-water mark).
  std::vector<int64_t> layout_order;
  for (const PlanBuffer& b : plan.buffers) {
    if (!b.persistent && b.alias_of < 0) layout_order.push_back(b.id);
  }
  std::stable_sort(layout_order.begin(), layout_order.end(),
                   [&plan](int64_t a, int64_t b) {
                     return plan.buffers[static_cast<size_t>(a)].def_step <
                            plan.buffers[static_cast<size_t>(b)].def_step;
                   });
  std::map<int64_t, int64_t> live_delta;
  for (size_t i = 0; i < layout_order.size(); ++i) {
    PlanBuffer& b = plan.buffers[static_cast<size_t>(layout_order[i])];
    plan.planned_total_bytes += b.size_bytes;
    live_delta[b.def_step] += b.size_bytes;
    live_delta[b.last_use_step + 1] -= b.size_bytes;
    std::vector<std::pair<int64_t, int64_t>> busy;
    for (size_t j = 0; j < i; ++j) {
      const PlanBuffer& o = plan.buffers[static_cast<size_t>(layout_order[j])];
      if (b.def_step <= o.last_use_step && o.def_step <= b.last_use_step) {
        busy.emplace_back(o.offset, o.offset + o.size_bytes);
      }
    }
    std::sort(busy.begin(), busy.end());
    int64_t at = 0;
    for (const auto& [lo, hi] : busy) {
      if (at + b.size_bytes <= lo) break;
      at = std::max(at, hi);
    }
    b.offset = at;
    plan.arena_extent_bytes =
        std::max(plan.arena_extent_bytes, at + b.size_bytes);
  }
  int64_t live = 0;
  for (const auto& [s, delta] : live_delta) {
    live += delta;
    plan.planned_peak_bytes = std::max(plan.planned_peak_bytes, live);
  }
  plan.stats.planned_buffers = static_cast<int64_t>(layout_order.size());
  return plan;
}

PlanVerifyReport VerifyGraphPlan(const GraphPlan& plan,
                                 const PlanOptions& options) {
  PlanVerifyReport report;
  auto fail = [&report](const std::string& msg) {
    report.failures.push_back(msg);
  };
  for (const std::string& f : plan.build_failures) fail(f);

  const int64_t count = static_cast<int64_t>(plan.buffers.size());
  for (const PlanBuffer& b : plan.buffers) {
    std::ostringstream who;
    who << (b.is_grad ? "grad" : "value") << " buffer #" << b.id << " ('"
        << b.label << "' " << b.shape << ")";

    if (b.alias_of >= 0) {
      // Reshape-style views: legal only onto a same-sized, own-storage,
      // transient buffer whose lifetime covers the view — anything else is
      // the growth/alias bug class the PR-6 memory tracker caught at
      // runtime in Tensor::Reshape.
      if (b.alias_of >= count || b.alias_of == b.id) {
        fail("[reshape-alias-hazard] " + who.str() +
             " aliases a buffer that does not exist");
        continue;
      }
      const PlanBuffer& t = plan.buffers[static_cast<size_t>(b.alias_of)];
      if (t.alias_of >= 0) {
        fail("[reshape-alias-hazard] " + who.str() +
             " aliases another alias (chains are not verifiable)");
      }
      if (t.size_bytes != b.size_bytes) {
        std::ostringstream out;
        out << "[reshape-alias-hazard] " << who.str() << " views "
            << t.size_bytes << "B storage as " << b.size_bytes
            << "B (a reshape must preserve the byte count)";
        fail(out.str());
      }
      if (t.persistent) continue;  // persistent storage outlives any view
      if (b.def_step < t.def_step || b.last_use_step > t.last_use_step) {
        fail("[reshape-alias-hazard] " + who.str() +
             " outlives the buffer it views");
      }
      continue;
    }
    if (b.persistent) continue;  // not arena-planned: no interval to vet

    if (b.size_bytes <= 0 || b.offset < 0 || b.last_use_step < b.def_step) {
      fail("[malformed-interval] " + who.str() +
           " has no offset, a non-positive size, or an inverted interval");
      continue;
    }
    if (!b.is_grad && b.requires_grad && !b.is_root && b.reads == 0 &&
        !options.executor_mode &&
        !Contains(options.allowed_dead_stores, b.label)) {
      fail("[dead-store] " + who.str() +
           " is written but never read before free (computed output dropped "
           "on the floor)");
    }
    if (b.is_grad && !b.accum_steps.empty()) {
      const int64_t first_accum =
          *std::min_element(b.accum_steps.begin(), b.accum_steps.end());
      const int64_t last_accum =
          *std::max_element(b.accum_steps.begin(), b.accum_steps.end());
      if (b.def_step != first_accum) {
        fail("[malformed-interval] " + who.str() +
             " is not defined at its first accumulation");
      }
      if (b.last_use_step < last_accum) {
        std::ostringstream out;
        out << "[grad-freed-before-last-accumulation] " << who.str()
            << " is freed at step " << b.last_use_step
            << " but still accumulates at step " << last_accum;
        fail(out.str());
      }
      const int64_t needed = std::max(last_accum, b.last_read_step);
      if (b.last_use_step > needed) {
        std::ostringstream out;
        out << "[grad-outlives-accumulation] " << who.str()
            << " is kept until step " << b.last_use_step
            << " but its last accumulation/read is step " << needed;
        fail(out.str());
      }
    }
  }

  // The core guarantee: no two simultaneously-live own-storage buffers may
  // share arena bytes. Pairwise is O(B^2) with B in the hundreds — cheap,
  // and simple enough to trust as a *verifier* (vs. the planner it checks).
  for (int64_t i = 0; i < count; ++i) {
    const PlanBuffer& a = plan.buffers[static_cast<size_t>(i)];
    if (a.persistent || a.alias_of >= 0 || a.offset < 0) continue;
    for (int64_t j = i + 1; j < count; ++j) {
      const PlanBuffer& b = plan.buffers[static_cast<size_t>(j)];
      if (b.persistent || b.alias_of >= 0 || b.offset < 0) continue;
      const bool live_together =
          a.def_step <= b.last_use_step && b.def_step <= a.last_use_step;
      const bool bytes_overlap = a.offset < b.offset + b.size_bytes &&
                                 b.offset < a.offset + a.size_bytes;
      if (live_together && bytes_overlap) {
        std::ostringstream out;
        out << "[overlapping-intervals] buffers #" << a.id << " ('" << a.label
            << "' steps " << a.def_step << ".." << a.last_use_step << " @"
            << a.offset << "+" << a.size_bytes << ") and #" << b.id << " ('"
            << b.label << "' steps " << b.def_step << ".." << b.last_use_step
            << " @" << b.offset << "+" << b.size_bytes
            << ") are live together and share arena bytes";
        fail(out.str());
      }
    }
  }
  return report;
}

std::string PlanVerifyReport::ToString() const {
  std::ostringstream out;
  out << "graph plan verify: "
      << (failures.empty() ? "ok" : std::to_string(failures.size()) +
                                        " failure(s)")
      << "\n";
  for (const std::string& f : failures) out << "  " << f << "\n";
  return out.str();
}

std::string PlanToJson(const GraphPlan& plan) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("planned_total_bytes").Int(plan.planned_total_bytes);
  w.Key("planned_peak_bytes").Int(plan.planned_peak_bytes);
  w.Key("arena_extent_bytes").Int(plan.arena_extent_bytes);
  w.Key("end_step").Int(plan.end_step);
  w.Key("stats").BeginObject();
  w.Key("tape_nodes").Int(plan.stats.tape_nodes);
  w.Key("persistent_nodes").Int(plan.stats.persistent_nodes);
  w.Key("planned_buffers").Int(plan.stats.planned_buffers);
  w.Key("forward_steps").Int(plan.stats.forward_steps);
  w.Key("backward_steps").Int(plan.stats.backward_steps);
  w.Key("shapes_checked").Int(plan.stats.shapes.checked);
  w.Key("shapes_skipped").Int(plan.stats.shapes.skipped);
  w.EndObject();
  w.Key("buffers").BeginArray();
  for (const PlanBuffer& b : plan.buffers) {
    w.BeginObject();
    w.Key("id").Int(b.id);
    w.Key("node").Int(b.node_id);
    w.Key("label").String(b.label);
    w.Key("shape").String(b.shape);
    w.Key("grad").Bool(b.is_grad);
    w.Key("persistent").Bool(b.persistent);
    w.Key("size_bytes").Int(b.size_bytes);
    w.Key("def").Int(b.def_step);
    w.Key("last_use").Int(b.last_use_step);
    w.Key("reads").Int(b.reads);
    if (!b.accum_steps.empty()) {
      w.Key("accums").BeginArray();
      for (int64_t s : b.accum_steps) w.Int(s);
      w.EndArray();
    }
    if (b.offset >= 0) w.Key("offset").Int(b.offset);
    if (b.alias_of >= 0) w.Key("alias_of").Int(b.alias_of);
    w.EndObject();
  }
  w.EndArray();
  w.Key("edges").BeginArray();
  for (const auto& [from, to] : plan.edges) {
    w.BeginArray().Int(from).Int(to).EndArray();
  }
  w.EndArray();
  w.Key("build_failures").BeginArray();
  for (const std::string& f : plan.build_failures) w.String(f);
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string PlanToDot(const GraphPlan& plan) {
  std::ostringstream out;
  out << "digraph graph_plan {\n  rankdir=BT;\n";
  // Value buffer id per node, so grads can point at their value.
  std::map<int64_t, int64_t> value_of_node;
  for (const PlanBuffer& b : plan.buffers) {
    if (!b.is_grad) value_of_node[b.node_id] = b.id;
  }
  for (const PlanBuffer& b : plan.buffers) {
    out << "  b" << b.id << " [label=\"" << (b.is_grad ? "grad " : "")
        << b.label << "\\n" << b.shape << " " << b.size_bytes << "B";
    if (b.persistent) {
      out << "\\npersistent";
    } else {
      out << "\\ns" << b.def_step << "..s" << b.last_use_step;
      if (b.offset >= 0) out << " @" << b.offset;
    }
    out << "\"";
    if (b.is_grad) out << ", shape=box, style=dashed";
    if (b.persistent) out << ", shape=box";
    out << "];\n";
  }
  for (const auto& [from, to] : plan.edges) {
    out << "  b" << from << " -> b" << to << ";\n";
  }
  for (const PlanBuffer& b : plan.buffers) {
    if (!b.is_grad) continue;
    auto it = value_of_node.find(b.node_id);
    if (it != value_of_node.end()) {
      out << "  b" << it->second << " -> b" << b.id << " [style=dotted];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace analyze
}  // namespace embsr
