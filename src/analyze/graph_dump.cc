#include "analyze/graph_dump.h"

#include <sstream>
#include <unordered_map>

#include "obs/json.h"
#include "obs/metrics.h"

namespace embsr {
namespace analyze {

namespace {

/// Stable small ids in discovery order, plus the parameter-name lookup both
/// renderers need.
struct GraphIndex {
  std::vector<ag::Node*> order;
  std::unordered_map<ag::Node*, int64_t> id;
  std::unordered_map<ag::Node*, std::string> param_name;

  GraphIndex(const ag::Variable& loss,
             const std::vector<nn::NamedParameter>& params) {
    order = ReachableNodes(loss);
    for (size_t i = 0; i < order.size(); ++i) {
      id.emplace(order[i], static_cast<int64_t>(i));
    }
    for (const nn::NamedParameter& p : params) {
      if (p.variable.defined()) {
        param_name.emplace(p.variable.node().get(), p.name);
      }
    }
  }

  const std::string* ParamName(ag::Node* n) const {
    auto it = param_name.find(n);
    return it == param_name.end() ? nullptr : &it->second;
  }
};

}  // namespace

std::string ToDot(const ag::Variable& loss,
                  const std::vector<nn::NamedParameter>& params) {
  const GraphIndex g(loss, params);
  std::ostringstream out;
  out << "digraph autograd {\n  rankdir=BT;\n";
  for (ag::Node* n : g.order) {
    const int64_t id = g.id.at(n);
    const std::string* pname = g.ParamName(n);
    out << "  n" << id << " [label=\""
        << (pname != nullptr ? *pname : std::string(n->op)) << "\\n"
        << n->value.ShapeString() << "\""
        << (pname != nullptr ? ", shape=box" : "")
        << (n->requires_grad ? "" : ", style=dotted") << "];\n";
  }
  // Edges point input -> consumer: data-flow direction.
  for (ag::Node* n : g.order) {
    for (const auto& p : n->parents) {
      out << "  n" << g.id.at(p.get()) << " -> n" << g.id.at(n) << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string ToJson(const ag::Variable& loss,
                   const std::vector<nn::NamedParameter>& params) {
  const GraphIndex g(loss, params);
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("nodes").BeginArray();
  for (ag::Node* n : g.order) {
    const std::string* pname = g.ParamName(n);
    w.BeginObject();
    w.Key("id").Int(g.id.at(n));
    w.Key("op").String(n->op);
    w.Key("shape").String(n->value.ShapeString());
    w.Key("requires_grad").Bool(n->requires_grad);
    if (pname != nullptr) w.Key("param").String(*pname);
    w.EndObject();
  }
  w.EndArray();
  w.Key("edges").BeginArray();
  for (ag::Node* n : g.order) {
    for (const auto& p : n->parents) {
      w.BeginArray().Int(g.id.at(p.get())).Int(g.id.at(n)).EndArray();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void ExportTapeStats(const TapeAuditStats& stats) {
  obs::Registry& reg = obs::Registry::Global();
  reg.GetGauge("analyze/graph_nodes")
      ->Set(static_cast<double>(stats.reachable_nodes));
  reg.GetGauge("analyze/graph_edges")->Set(static_cast<double>(stats.edges));
  reg.GetGauge("analyze/graph_params")
      ->Set(static_cast<double>(stats.parameters));
  reg.GetCounter("analyze/audits_total")->Increment();
}

}  // namespace analyze
}  // namespace embsr
