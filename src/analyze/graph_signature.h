#ifndef EMBSR_ANALYZE_GRAPH_SIGNATURE_H_
#define EMBSR_ANALYZE_GRAPH_SIGNATURE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"

namespace embsr {
namespace analyze {

/// Canonical structural hash of a recorded autograd graph — the key under
/// which the arena executor caches and reuses a verified memory plan. Two
/// steps with equal signatures produce tapes with identical topology, op
/// names, shapes and op attributes, so one step's plan (offsets, liveness
/// intervals, backward schedule) is valid for the other verbatim.
///
/// Hashed per node, in tape order: the op name, the value shape, the op's
/// attribute hash (Node::attr_hash — scalar parameters like Scale's factor
/// or SliceRows' bounds that change the computation without changing any
/// shape; attribute-only differences MUST yield distinct signatures), the
/// requires_grad flag, and each parent encoded as its tape index or, for
/// persistent pre-tape nodes (parameters, cached constants), a negative
/// ordinal assigned in first-encounter order. The root's position and the
/// forward-only flag are mixed in last, so a train step and an eval step
/// over the same forward graph never collide.
struct GraphSignature {
  uint64_t hash = 0;
  int64_t tape_nodes = 0;
  bool forward_only = false;

  bool operator==(const GraphSignature& o) const {
    return hash == o.hash && tape_nodes == o.tape_nodes &&
           forward_only == o.forward_only;
  }
  bool operator!=(const GraphSignature& o) const { return !(*this == o); }
};

GraphSignature ComputeGraphSignature(
    const std::vector<std::shared_ptr<ag::Node>>& recorded,
    const ag::Node* root, bool forward_only);

/// FNV-1a mixing primitive shared with the arena executor's key builders
/// (deterministic across runs and platforms; never hashes pointers).
inline uint64_t HashMixU64(uint64_t h, uint64_t v) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffull;
    h *= kPrime;
  }
  return h;
}

constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;

}  // namespace analyze
}  // namespace embsr

#endif  // EMBSR_ANALYZE_GRAPH_SIGNATURE_H_
