#include "obs/run_logger.h"

#include <memory>

#include "obs/json.h"
#include "util/env.h"
#include "util/logging.h"

namespace embsr {
namespace obs {

namespace {

std::mutex g_global_mu;
std::unique_ptr<RunLogger> g_global;          // guarded by g_global_mu
bool g_global_initialized = false;            // guarded by g_global_mu

}  // namespace

RunLogger::RunLogger(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    EMBSR_LOG(Warning) << "cannot open run log '" << path
                       << "'; telemetry disabled";
  }
}

RunLogger::~RunLogger() {
  if (file_ != nullptr) std::fclose(file_);
}

void RunLogger::LogEpoch(const EpochRecord& rec) {
  if (file_ == nullptr) return;
  JsonWriter w;
  w.BeginObject();
  w.Key("model").String(rec.model);
  w.Key("dataset").String(rec.dataset);
  w.Key("epoch").Int(rec.epoch);
  w.Key("total_epochs").Int(rec.total_epochs);
  w.Key("loss").Number(rec.loss);
  w.Key("grad_norm").Number(rec.grad_norm);
  w.Key("wall_seconds").Number(rec.wall_seconds);
  w.Key("examples_per_sec").Number(rec.examples_per_sec);
  w.Key("lr").Number(rec.lr);
  if (rec.valid_mrr >= 0.0) w.Key("valid_mrr").Number(rec.valid_mrr);
  if (rec.skipped_batches > 0) {
    w.Key("skipped_batches").Int(rec.skipped_batches);
  }
  w.EndObject();

  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(file_, "%s\n", w.str().c_str());
  std::fflush(file_);
}

RunLogger* RunLogger::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!g_global_initialized) {
    g_global_initialized = true;
    const std::string path = GetEnvString("EMBSR_RUN_LOG", "");
    if (!path.empty()) g_global = std::make_unique<RunLogger>(path);
  }
  return (g_global != nullptr && g_global->ok()) ? g_global.get() : nullptr;
}

void RunLogger::ReinitGlobalFromEnv() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global.reset();
  g_global_initialized = false;
}

}  // namespace obs
}  // namespace embsr
