#ifndef EMBSR_OBS_RUN_LOGGER_H_
#define EMBSR_OBS_RUN_LOGGER_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace embsr {
namespace obs {

/// One epoch of training telemetry, as fed by NeuralSessionModel::Fit.
struct EpochRecord {
  std::string model;
  std::string dataset;
  int epoch = 0;  // 1-based
  int total_epochs = 0;
  double loss = 0.0;            // mean per-example loss over the epoch
  double grad_norm = 0.0;       // mean pre-clip global grad norm per batch
  double wall_seconds = 0.0;    // epoch wall time
  double examples_per_sec = 0.0;
  double lr = 0.0;
  /// MRR@20 on the validation split when this epoch validated; < 0 → the
  /// field is omitted from the record.
  double valid_mrr = -1.0;
  /// Batches the numerical health guard discarded (NaN/Inf loss, exploding
  /// gradient) this epoch; see robust::HealthGuard.
  int64_t skipped_batches = 0;
};

/// Append-only JSONL training log: one self-contained JSON object per
/// epoch. The training loop feeds it through Global(), which is active
/// whenever `EMBSR_RUN_LOG=<path>` is set; tests and tools can also
/// construct loggers directly against a path.
class RunLogger {
 public:
  explicit RunLogger(const std::string& path);
  ~RunLogger();

  RunLogger(const RunLogger&) = delete;
  RunLogger& operator=(const RunLogger&) = delete;

  /// Whether the sink opened successfully.
  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Serializes `rec` as one JSON line and flushes. Thread-safe.
  void LogEpoch(const EpochRecord& rec);

  /// The process-wide logger configured by EMBSR_RUN_LOG, or nullptr when
  /// the variable is unset (or the file could not be opened). The env var
  /// is read once, at first call.
  static RunLogger* Global();

  /// Drops the cached global logger and re-reads EMBSR_RUN_LOG on the next
  /// Global() call. Tests only.
  static void ReinitGlobalFromEnv();

 private:
  std::mutex mu_;
  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace obs
}  // namespace embsr

#endif  // EMBSR_OBS_RUN_LOGGER_H_
