#ifndef EMBSR_OBS_JSON_H_
#define EMBSR_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace embsr {
namespace obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& s);

/// Minimal streaming JSON writer shared by the trace exporter, the metrics
/// registry, the run logger and the bench harnesses. Emits compact
/// (single-line) JSON; key order is exactly the call order, so output is
/// deterministic. The writer trusts the caller to produce a well-formed
/// document (Key only inside objects, matching Begin/End); it exists to
/// centralize escaping and number formatting, not to validate.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; must be followed by exactly one value.
  JsonWriter& Key(const std::string& k);

  JsonWriter& String(const std::string& v);
  JsonWriter& Number(double v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();
  /// Splices a pre-serialized JSON value verbatim (e.g. a nested snapshot).
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();

  std::string out_;
  /// One entry per open scope: true once the first element was written.
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace obs
}  // namespace embsr

#endif  // EMBSR_OBS_JSON_H_
