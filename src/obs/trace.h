#ifndef EMBSR_OBS_TRACE_H_
#define EMBSR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace embsr {
namespace obs {

/// One completed span. `name` must point at a string with static storage
/// duration (the EMBSR_TRACE_SPAN macro guarantees this); events never own
/// their name, which keeps recording allocation-free apart from buffer
/// growth.
struct TraceEvent {
  const char* name = nullptr;
  int64_t ts_us = 0;   // span start, microseconds since session start
  int64_t dur_us = 0;  // span duration in microseconds
  uint32_t tid = 0;    // small per-thread id assigned on first record
};

/// Process-global trace recorder with Chrome trace-event JSON export.
///
/// Spans are recorded into lock-protected *per-thread* buffers (the lock is
/// per buffer and uncontended in steady state; the global mutex is only
/// taken when a new thread records its first span, and on Start/Stop).
/// When disabled — the default — recording is a single relaxed atomic load;
/// no lock, no clock read, no allocation.
///
/// Setting `EMBSR_TRACE=<path>` starts a session at first use and writes
/// the trace to `<path>` at process exit. Programs (and tests) can instead
/// drive Start()/Stop() explicitly. The output loads in `chrome://tracing`
/// and https://ui.perfetto.dev.
class TraceSession {
 public:
  static TraceSession& Global();

  /// Begins recording; clears previously recorded events. `path` is where
  /// Stop() writes the trace ("" records in memory only).
  void Start(std::string path);

  /// Stops recording and, if a path was given, writes the Chrome trace
  /// JSON there. Events stay queryable until the next Start().
  Status Stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one completed span; no-op unless enabled.
  void Record(const char* name, int64_t ts_us, int64_t dur_us);

  /// Microseconds since the session origin (steady clock).
  int64_t NowUs() const;

  /// Merged copy of all thread buffers (event order within a thread is
  /// chronological; across threads it is by registration order).
  std::vector<TraceEvent> SnapshotEvents() const;
  size_t event_count() const;

  /// Chrome trace-event JSON ("X" complete events, one pid, real tids).
  std::string ToJson() const;

 private:
  struct ThreadBuffer {
    std::mutex mu;
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  TraceSession();

  ThreadBuffer* GetThreadBuffer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards buffers_, path_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::string path_;
  /// Atomic because NowUs() reads it on every span without taking mu_
  /// while Start() rewrites it. A span racing with Start() may measure
  /// against the old origin; Record() clamps negative timestamps to 0.
  std::atomic<int64_t> origin_ns_{0};
  uint32_t next_tid_ = 0;
};

/// Whether duration histograms on instrumented paths are recorded. Off by
/// default; turned on by `EMBSR_METRICS=1` or SetTimingEnabled(true), and
/// implied by an active trace session (a traced span's duration is measured
/// anyway, so publishing it to the histogram is free).
bool TimingEnabled();
void SetTimingEnabled(bool enabled);

/// RAII span: measures from construction to destruction. Emits a trace
/// event when the global session is enabled, and (optionally) records the
/// duration into `histogram` in milliseconds when timing metrics are on.
/// When neither is active the constructor is one or two relaxed loads.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* histogram = nullptr)
      : name_(name), histogram_(histogram) {
    TraceSession& session = TraceSession::Global();
    tracing_ = session.enabled();
    timing_ = histogram != nullptr && (tracing_ || TimingEnabled());
    if (tracing_ || timing_) start_us_ = session.NowUs();
  }

  ~ScopedSpan() {
    if (!tracing_ && !timing_) return;
    TraceSession& session = TraceSession::Global();
    const int64_t dur_us = session.NowUs() - start_us_;
    if (tracing_) session.Record(name_, start_us_, dur_us);
    if (timing_) histogram_->Observe(static_cast<double>(dur_us) / 1000.0);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram* histogram_;
  int64_t start_us_ = 0;
  bool tracing_ = false;
  bool timing_ = false;
};

}  // namespace obs
}  // namespace embsr

#define EMBSR_OBS_CONCAT_INNER(a, b) a##b
#define EMBSR_OBS_CONCAT(a, b) EMBSR_OBS_CONCAT_INNER(a, b)

/// Traces the enclosing scope as a span named `name` (a string literal).
#define EMBSR_TRACE_SPAN(name)                                      \
  ::embsr::obs::ScopedSpan EMBSR_OBS_CONCAT(embsr_span_, __LINE__)( \
      name)

/// Like EMBSR_TRACE_SPAN, but additionally records the span duration into
/// the latency histogram `hist_name` (milliseconds) when timing metrics are
/// enabled. The histogram handle is resolved once per call site.
#define EMBSR_TIMED_SPAN(name, hist_name)                                  \
  static ::embsr::obs::Histogram* EMBSR_OBS_CONCAT(embsr_span_hist_,       \
                                                   __LINE__) =             \
      ::embsr::obs::Registry::Global().GetHistogram(                       \
          hist_name, ::embsr::obs::DefaultLatencyBucketsMs());             \
  ::embsr::obs::ScopedSpan EMBSR_OBS_CONCAT(embsr_span_, __LINE__)(        \
      name, EMBSR_OBS_CONCAT(embsr_span_hist_, __LINE__))

#endif  // EMBSR_OBS_TRACE_H_
