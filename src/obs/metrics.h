#ifndef EMBSR_OBS_METRICS_H_
#define EMBSR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace embsr {
namespace obs {

/// Naming scheme: `<subsystem>/<what>[_<unit>]`, e.g. `autograd/backward_ms`
/// (histogram), `eval/examples` (counter), `train/loss` (gauge). Units are
/// part of the name so snapshots are self-describing.

/// Monotonically increasing integer metric. Lock-free; safe to bump from any
/// thread.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. A sample `v` lands in the first bucket whose
/// upper bound satisfies `v <= bound`; samples above the last bound land in
/// an implicit overflow bucket, so `bucket_counts()` has `bounds.size() + 1`
/// entries. Observation is lock-free.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// Bucket-interpolated percentile estimate, `p` in [0, 100]. Contract:
  /// an empty histogram returns 0.0; with samples, the result lies within
  /// the bucket containing the rank-⌈p/100·count⌉ sample (linear
  /// interpolation by rank inside the bucket, bucket lower edge 0.0 for the
  /// first bucket) and is monotone in `p`. Samples in the overflow bucket
  /// are credited the last finite bound — percentiles are estimates, not
  /// exact order statistics. Lock-free; concurrent Observe calls may be
  /// partially visible.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> bucket_counts() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  void Reset();

  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket bounds (milliseconds) for latency histograms.
const std::vector<double>& DefaultLatencyBucketsMs();

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<int64_t> counts;  // bounds.size() + 1, overflow last
  int64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Process-global metric registry. Get* registers on first use and returns
/// a stable pointer — call sites cache it in a function-local static so the
/// steady state is one map lookup per process, not per call. Registration
/// takes a mutex; recording through the returned handles is lock-free.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is used only on first registration of `name`.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;
  /// Snapshot serialized as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}.
  std::string SnapshotJson() const;

  /// Zeroes all values (handles stay valid). Tests only.
  void ResetForTest();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace embsr

#endif  // EMBSR_OBS_METRICS_H_
