#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"
#include "util/env.h"

namespace embsr {
namespace obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<bool>& TimingFlag() {
  static std::atomic<bool> flag{[] {
    const std::string v = GetEnvString("EMBSR_METRICS", "");
    return !v.empty() && v != "0";
  }()};
  return flag;
}

}  // namespace

bool TimingEnabled() {
  return TimingFlag().load(std::memory_order_relaxed);
}

void SetTimingEnabled(bool enabled) {
  TimingFlag().store(enabled, std::memory_order_relaxed);
}

TraceSession::TraceSession() {
  const std::string path = GetEnvString("EMBSR_TRACE", "");
  if (!path.empty()) {
    Start(path);
    // Write the trace out when the process ends, so `EMBSR_TRACE=x ./bench`
    // just works without any cooperation from main().
    std::atexit([] {
      const Status s = TraceSession::Global().Stop();
      if (!s.ok()) {
        std::fprintf(stderr, "embsr: trace export failed: %s\n",
                     s.ToString().c_str());
      }
    });
  }
}

TraceSession& TraceSession::Global() {
  static TraceSession* instance =
      new TraceSession();  // lint: allow(raw-new): leaked singleton, never destroyed
  return *instance;
}

void TraceSession::Start(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  path_ = std::move(path);
  origin_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

Status TraceSession::Stop() {
  const bool was_enabled = enabled_.exchange(false);
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path.swap(path_);
  }
  if (!was_enabled || path.empty()) return Status::OK();

  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

int64_t TraceSession::NowUs() const {
  return (SteadyNowNs() - origin_ns_.load(std::memory_order_relaxed)) / 1000;
}

TraceSession::ThreadBuffer* TraceSession::GetThreadBuffer() {
  // The shared_ptr is held both by the thread and the session, so events
  // survive thread exit and Stop() can always merge them.
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (buffer == nullptr) {
    buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  return buffer.get();
}

void TraceSession::Record(const char* name, int64_t ts_us, int64_t dur_us) {
  if (!enabled()) return;
  ThreadBuffer* buf = GetThreadBuffer();
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->events.push_back(
      TraceEvent{name, ts_us < 0 ? 0 : ts_us, dur_us, buf->tid});
}

std::vector<TraceEvent> TraceSession::SnapshotEvents() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

size_t TraceSession::event_count() const {
  size_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::string TraceSession::ToJson() const {
  const std::vector<TraceEvent> events = SnapshotEvents();
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("cat").String("embsr");
    w.Key("ph").String("X");
    w.Key("ts").Int(e.ts_us);
    w.Key("dur").Int(e.dur_us);
    w.Key("pid").Int(1);
    w.Key("tid").Int(e.tid);
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.str();
}

}  // namespace obs
}  // namespace embsr
