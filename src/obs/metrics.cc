#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"
#include "util/check.h"

namespace embsr {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  EMBSR_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    EMBSR_CHECK(bounds_[i - 1] < bounds_[i]);
  }
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::Percentile(double p) const {
  p = std::min(100.0, std::max(0.0, p));
  const std::vector<int64_t> counts = bucket_counts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the target sample, 1-based; p=0 maps to rank 1 so the result
  // stays inside the populated range.
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(total));
  if (static_cast<double>(rank) < p / 100.0 * static_cast<double>(total)) {
    ++rank;  // ceil
  }
  rank = std::min(total, std::max<int64_t>(1, rank));
  int64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] >= rank) {
      if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(counts[i]);
      return lower + (upper - lower) * frac;
    }
    cum += counts[i];
  }
  return bounds_.back();  // unreachable unless racing with Observe
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0,
      5000.0};
  return kBuckets;
}

Registry& Registry::Global() {
  static Registry* instance =
      new Registry();  // lint: allow(raw-new): leaked singleton, never destroyed
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.counts = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::string Registry::SnapshotJson() const {
  const MetricsSnapshot snap = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, v] : snap.counters) w.Key(name).Int(v);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, v] : snap.gauges) w.Key(name).Number(v);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& h : snap.histograms) {
    w.Key(h.name).BeginObject();
    w.Key("bounds").BeginArray();
    for (double b : h.bounds) w.Number(b);
    w.EndArray();
    w.Key("counts").BeginArray();
    for (int64_t c : h.counts) w.Int(c);
    w.EndArray();
    w.Key("count").Int(h.count);
    w.Key("sum").Number(h.sum);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace embsr
