#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace embsr {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double v) {
  MaybeComma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf literal.
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  MaybeComma();
  out_ += json;
  return *this;
}

}  // namespace obs
}  // namespace embsr
