#ifndef EMBSR_AUTOGRAD_TAPE_H_
#define EMBSR_AUTOGRAD_TAPE_H_

#include <memory>
#include <vector>

#include "autograd/variable.h"

namespace embsr {
namespace ag {

/// Records every graph node built on the current thread while in scope —
/// the raw material for the structural audits in src/analyze.
///
/// A Tape is a passive observer: it takes shared ownership of every node
/// created under it (so ops whose results were dropped — orphans — survive
/// for inspection instead of being freed with their last Variable handle),
/// but it never changes forward or backward behaviour. Scopes nest; only
/// the innermost tape records. Recording is thread-local, which matches how
/// this repo runs forward passes: one session per thread, each building an
/// independent graph.
///
/// Cost when no tape is active: one thread-local pointer load per node.
class Tape {
 public:
  Tape();
  ~Tape();

  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Recorded nodes in creation order: leaves (Variable constructions) and
  /// op outputs (MakeOp), whether or not they require grad.
  const std::vector<std::shared_ptr<Node>>& nodes() const { return nodes_; }

  /// The innermost tape recording on this thread, or null.
  static Tape* Active();

  /// Hook for Variable's leaf constructor and ops.cc's MakeOp; no-op when
  /// no tape is active on this thread.
  static void Record(const std::shared_ptr<Node>& node);

 private:
  std::vector<std::shared_ptr<Node>> nodes_;
  Tape* outer_;
};

}  // namespace ag
}  // namespace embsr

#endif  // EMBSR_AUTOGRAD_TAPE_H_
