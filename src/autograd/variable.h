#ifndef EMBSR_AUTOGRAD_VARIABLE_H_
#define EMBSR_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace embsr {
namespace ag {

/// Internal graph node for reverse-mode autodiff. Do not use directly;
/// interact through Variable and the ops in ops.h.
struct Node {
  Tensor value;
  /// Gradient of the (scalar) loss w.r.t. `value`. Allocated lazily on the
  /// first accumulation; `grad_ready` says whether it holds real data.
  Tensor grad;
  bool grad_ready = false;
  bool requires_grad = false;
  /// Parents in the computation graph (inputs of the op that produced this).
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this node's grad into its parents' grads. Null for leaves.
  std::function<void(Node*)> backward_fn;
  /// Static name of the op that produced this node; "leaf" for Variables
  /// built directly (parameters, constants). Always a string literal, so
  /// storing the pointer is safe.
  const char* op = "leaf";
  /// Model-component label (prof::ComponentScope) active when the node was
  /// recorded; set only while profiling, so backward time lands in the same
  /// component bucket as forward time. Null or a string literal.
  const char* component = nullptr;
  /// Hash of the op's non-shape scalar attributes (Scale's factor,
  /// SliceRows' bounds, ...), folded into the analyze graph signature so
  /// two graphs that differ only in an attribute never share a cached
  /// arena plan. 0 = the op has no attributes.
  uint64_t attr_hash = 0;
  /// Gradient accumulations received since construction / the last
  /// ZeroGrad. The tape auditor (src/analyze) checks this against graph
  /// fan-out: after one backward pass it must equal the number of consumer
  /// edges that propagated a gradient here (+1 at the backward root for
  /// the seed).
  int64_t accum_count = 0;

  /// Adds `g` into this node's grad buffer (allocating it if needed).
  void AccumulateGrad(const Tensor& g);
};

/// A value in a define-by-run computation graph.
///
/// Variable is a cheap shared handle: copying it aliases the same node. A
/// fresh graph is built on every forward pass; Backward() walks it once in
/// reverse topological order. Gradients *accumulate* across Backward calls
/// until ZeroGrad, which is what lets the trainer do batch-size-1 forward
/// passes with gradient accumulation over a mini-batch.
class Variable {
 public:
  /// An empty handle; most operations on it are invalid.
  Variable() = default;

  /// Wraps a tensor as a leaf. Parameters pass requires_grad=true.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();
  /// The accumulated gradient; zeros if none has been accumulated yet.
  Tensor GradOrZeros() const;
  bool requires_grad() const;
  bool has_grad() const;

  /// Clears the accumulated gradient (keeps the buffer).
  void ZeroGrad();

  /// Runs backpropagation from this variable, which must be a scalar.
  /// Seeds d(self)/d(self) = 1 and accumulates into every reachable leaf
  /// with requires_grad set.
  void Backward() const;

  /// Shape helpers forwarded to the value tensor.
  int64_t rows() const { return value().rows(); }
  int64_t cols() const { return value().cols(); }

  const std::shared_ptr<Node>& node() const { return node_; }

  /// Internal: constructs from an existing node (used by ops.cc).
  static Variable FromNode(std::shared_ptr<Node> node);

 private:
  std::shared_ptr<Node> node_;
};

/// Makes a non-differentiable constant variable.
Variable Constant(Tensor value);

/// The post-order (children-first) node sequence Backward() builds over the
/// requires_grad subgraph under `root` before executing backward functions
/// back-to-front. Exposed so the static graph planner (src/analyze) mirrors
/// the execution schedule exactly instead of re-deriving the traversal —
/// the two cannot drift because Backward() itself runs this function.
std::vector<Node*> BackwardPostOrder(const Variable& root);

}  // namespace ag
}  // namespace embsr

#endif  // EMBSR_AUTOGRAD_VARIABLE_H_
