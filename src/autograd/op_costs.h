#ifndef EMBSR_AUTOGRAD_OP_COSTS_H_
#define EMBSR_AUTOGRAD_OP_COSTS_H_

namespace embsr {
namespace ag {

/// Registers an analytic prof cost model for every op declared in ops.h.
/// Idempotent and thread-safe; called lazily from the first profiled op.
/// Coverage is enforced both ways by verify::ScanOpCostCoverage +
/// tests/prof_test.cc: an op declared without an EMBSR_OP_COST entry — or a
/// stale entry for a removed op — fails ctest.
void RegisterOpCostModels();

}  // namespace ag
}  // namespace embsr

#endif  // EMBSR_AUTOGRAD_OP_COSTS_H_
