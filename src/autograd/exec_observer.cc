#include "autograd/exec_observer.h"

#include "util/check.h"

namespace embsr {
namespace ag {

namespace {
thread_local ExecObserver* t_active_observer = nullptr;
}  // namespace

ExecObserver* ExecObserver::Active() { return t_active_observer; }

void ExecObserver::Install(ExecObserver* obs) {
  EMBSR_CHECK(obs != nullptr);
  EMBSR_CHECK_MSG(t_active_observer == nullptr,
                  "an ExecObserver is already installed on this thread");
  t_active_observer = obs;
}

void ExecObserver::Uninstall(ExecObserver* obs) {
  EMBSR_CHECK_MSG(t_active_observer == obs,
                  "Uninstall() by an observer that is not installed");
  t_active_observer = nullptr;
}

}  // namespace ag
}  // namespace embsr
