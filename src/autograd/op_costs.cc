#include "autograd/op_costs.h"

#include <cstdint>

#include "prof/cost_model.h"

namespace embsr {
namespace ag {

namespace {

using prof::NumElems;
using prof::OpCost;
using prof::ShapeInfo;

/// Output element count.
double Out(const ShapeInfo& s) { return static_cast<double>(NumElems(s.output)); }

/// Element count of input `i` (0 if absent — defensive, shapes come from
/// the live graph).
double In(const ShapeInfo& s, size_t i) {
  return i < s.inputs.size() ? static_cast<double>(NumElems(s.inputs[i]))
                             : 0.0;
}

/// Sum of all input element counts.
double InAll(const ShapeInfo& s) {
  double n = 0.0;
  for (const auto& shape : s.inputs) {
    n += static_cast<double>(NumElems(shape));
  }
  return n;
}

/// Trailing dimension of the output ([ ] -> 1).
double OutLastDim(const ShapeInfo& s) {
  return s.output.empty() ? 1.0
                          : static_cast<double>(s.output.back());
}

constexpr double kB = 4.0;  // bytes per float32 element

}  // namespace

// Cost-model contract (DESIGN.md §13): flops counts arithmetic operations
// (one multiply-add = 2), transcendentals (exp/tanh/log/...) are charged a
// flat 4 flops/element, and bytes assume every operand is streamed exactly
// once — a traffic lower bound, not a cache model. Multi-pass reductions
// (softmax, layernorm) charge one flop per element per pass.
//
// Marker format: the quoted name in an EMBSR_OP_COST marker must be the
// ops.h declaration name; verify::ScanOpCostCoverage diffs the two lists in
// both directions (the scan is textual, so spelling the quoted form in this
// comment would register a phantom op).
#define EMBSR_OP_COST(name) \
  prof::RegisterOpCost(name, [](const ShapeInfo& s) -> OpCost

void RegisterOpCostModels() {
  static const bool registered = [] {
    // -- Elementwise binary ---------------------------------------------------
    EMBSR_OP_COST("Add") {
      return {Out(s), kB * InAll(s), kB * Out(s)};
    });
    EMBSR_OP_COST("Sub") {
      return {Out(s), kB * InAll(s), kB * Out(s)};
    });
    EMBSR_OP_COST("Mul") {
      return {Out(s), kB * InAll(s), kB * Out(s)};
    });
    EMBSR_OP_COST("AddRowBroadcast") {
      return {Out(s), kB * InAll(s), kB * Out(s)};
    });
    EMBSR_OP_COST("MulRowBroadcast") {
      return {Out(s), kB * InAll(s), kB * Out(s)};
    });
    EMBSR_OP_COST("MulColBroadcast") {
      return {Out(s), kB * InAll(s), kB * Out(s)};
    });

    // -- Elementwise unary ----------------------------------------------------
    EMBSR_OP_COST("Scale") {
      return {Out(s), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("AddScalar") {
      return {Out(s), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("Neg") {
      return {Out(s), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("Relu") {
      return {Out(s), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("Sigmoid") {
      return {4.0 * Out(s), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("Tanh") {
      return {4.0 * Out(s), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("Exp") {
      return {4.0 * Out(s), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("Log") {
      return {4.0 * Out(s), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("Dropout") {
      return {Out(s), kB * In(s, 0), kB * Out(s)};
    });

    // -- Linear algebra -------------------------------------------------------
    // MatMul [n,k]x[k,m]: 2nkm flops (n*k input elements each fused
    // multiply-added across the m output columns).
    EMBSR_OP_COST("MatMul") {
      return {2.0 * In(s, 0) * OutLastDim(s), kB * InAll(s), kB * Out(s)};
    });
    EMBSR_OP_COST("Transpose") {
      return {0.0, kB * In(s, 0), kB * Out(s)};
    });

    // -- Data movement --------------------------------------------------------
    EMBSR_OP_COST("ConcatCols") {
      return {0.0, kB * InAll(s), kB * Out(s)};
    });
    EMBSR_OP_COST("ConcatRows") {
      return {0.0, kB * InAll(s), kB * Out(s)};
    });
    EMBSR_OP_COST("StackRows") {
      return {0.0, kB * InAll(s), kB * Out(s)};
    });
    EMBSR_OP_COST("SliceRows") {
      return {0.0, kB * Out(s), kB * Out(s)};
    });
    EMBSR_OP_COST("Row") {
      return {0.0, kB * Out(s), kB * Out(s)};
    });
    // Embedding gather: only the selected rows are touched, so traffic is
    // proportional to the *output*, not the table.
    EMBSR_OP_COST("GatherRows") {
      return {0.0, kB * Out(s), kB * Out(s)};
    });
    EMBSR_OP_COST("RepeatRow") {
      return {0.0, kB * In(s, 0), kB * Out(s)};
    });
    // Row select: pure copies; reads one source row per output row plus the
    // [n, 1] mask column.
    EMBSR_OP_COST("SelectRowsByMask") {
      return {0.0, kB * (Out(s) + Out(s) / OutLastDim(s)), kB * Out(s)};
    });
    // Segment sum: one add per input element into the zeroed output.
    EMBSR_OP_COST("SegmentSumRows") {
      return {In(s, 0), kB * In(s, 0), kB * Out(s)};
    });

    // -- Row reductions / normalizations --------------------------------------
    // Softmax: max + subtract + exp(4) + sum + divide = 8 passes-worth.
    EMBSR_OP_COST("RowSoftmax") {
      return {8.0 * Out(s), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("RowSoftmaxMasked") {
      return {8.0 * Out(s), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("SumAll") {
      return {In(s, 0), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("SumRowsTo1xD") {
      return {In(s, 0), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("SumColsToNx1") {
      return {In(s, 0), kB * In(s, 0), kB * Out(s)};
    });
    EMBSR_OP_COST("MeanRowsTo1xD") {
      return {In(s, 0) + Out(s), kB * In(s, 0), kB * Out(s)};
    });
    // L2 normalize: square-accumulate (2n) + divide (n).
    EMBSR_OP_COST("L2NormalizeRowsOp") {
      return {3.0 * Out(s), kB * In(s, 0), kB * Out(s)};
    });
    // LayerNorm: mean (n) + centered variance (2n) + subtract (n) + scale (n).
    EMBSR_OP_COST("LayerNormRows") {
      return {5.0 * Out(s), kB * In(s, 0), kB * Out(s)};
    });
    // Fused softmax (8 passes) + log-likelihood pick + reduce (~1 pass).
    EMBSR_OP_COST("SoftmaxCrossEntropy") {
      return {9.0 * In(s, 0), kB * In(s, 0), kB * Out(s)};
    });
    return true;
  }();
  (void)registered;
}

#undef EMBSR_OP_COST

}  // namespace ag
}  // namespace embsr
