#ifndef EMBSR_AUTOGRAD_EXEC_OBSERVER_H_
#define EMBSR_AUTOGRAD_EXEC_OBSERVER_H_

#include <memory>

#include "autograd/variable.h"

namespace embsr {
namespace ag {

/// Thread-local execution hooks for the arena executor (src/arena).
///
/// A Tape passively *retains* nodes for post-hoc analysis; an ExecObserver
/// instead rides along with execution — it sees each node the moment it is
/// recorded (while the producing op's output is still the freshest tensor
/// alive, so storage can be reseated into the arena before any consumer
/// reads it) and each backward step the moment before it runs (so the
/// executor's conformance clock tracks the plan schedule in real time).
///
/// At most one observer per thread. The observer must not build graph nodes
/// from inside a callback (no reentrancy), and installation is refused while
/// nested — the arena executor additionally stays out of any step that has
/// an audit Tape open, so tapes never observe reseated storage mid-record.
class ExecObserver {
 public:
  virtual ~ExecObserver() = default;

  /// A node was just recorded (leaf construction or MakeOp), before any
  /// consumer ran. attr_hash/parents/value are final; grad is untouched.
  virtual void OnNodeRecorded(const std::shared_ptr<Node>& node) = 0;

  /// Backward() is about to seed d(root)/d(root) = 1.
  virtual void OnBackwardSeed(Node* root) = 0;

  /// `node`'s backward_fn is about to run.
  virtual void OnBackwardOp(Node* node) = 0;

  /// `node`'s grad buffer was just seated (first accumulation).
  virtual void OnGradSeated(Node* node) = 0;

  /// The observer installed on this thread, or null.
  static ExecObserver* Active();
  /// Installs `obs` (which must outlive the installation). FATAL if another
  /// observer is already installed on this thread.
  static void Install(ExecObserver* obs);
  /// FATAL unless `obs` is the installed observer.
  static void Uninstall(ExecObserver* obs);
};

}  // namespace ag
}  // namespace embsr

#endif  // EMBSR_AUTOGRAD_EXEC_OBSERVER_H_
