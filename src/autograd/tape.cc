#include "autograd/tape.h"

#include "autograd/exec_observer.h"

namespace embsr {
namespace ag {

namespace {
thread_local Tape* t_active_tape = nullptr;
}  // namespace

Tape::Tape() : outer_(t_active_tape) { t_active_tape = this; }

Tape::~Tape() { t_active_tape = outer_; }

Tape* Tape::Active() { return t_active_tape; }

void Tape::Record(const std::shared_ptr<Node>& node) {
  if (t_active_tape != nullptr) t_active_tape->nodes_.push_back(node);
  if (ExecObserver* eo = ExecObserver::Active()) eo->OnNodeRecorded(node);
}

}  // namespace ag
}  // namespace embsr
