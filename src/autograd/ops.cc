#include "autograd/ops.h"

#include <cmath>
#include <cstring>

#include "autograd/op_costs.h"
#include "autograd/tape.h"
#include "prof/op_profiler.h"
#include "util/check.h"

namespace embsr {
namespace ag {

namespace {

/// Slow path taken only while EMBSR_PROF is on: looks up the op's cost
/// model, stamps the active component label on the node (so backward time
/// lands in the same bucket) and records the forward gap.
void ProfileForwardNode(prof::Collector* pc, Node* node,
                        const std::vector<Variable>& inputs) {
  // Cost models live in a static-library TU of their own; registering here,
  // on first profiled op, keeps them immune to linker dead-stripping.
  static const bool registered = [] {
    RegisterOpCostModels();
    return true;
  }();
  (void)registered;
  prof::ShapeInfo shapes;
  shapes.output = node->value.shape();
  shapes.inputs.reserve(inputs.size());
  for (const auto& v : inputs) shapes.inputs.push_back(v.value().shape());
  prof::OpCost cost;
  if (prof::CostFn fn = prof::FindOpCost(node->op)) {
    cost = fn(shapes);
  } else {
    prof::CountUncoveredOp();  // the source scan should make this impossible
  }
  node->component = prof::CurrentComponent();
  pc->RecordForward(node->op, node->component, cost);
}

/// Hash of an op's scalar attributes (Node::attr_hash): FNV-1a over the raw
/// 64-bit encodings, nonzero by construction so "has attributes" is
/// distinguishable from "has none" in the analyze graph signature.
uint64_t AttrHash(std::initializer_list<uint64_t> attrs) {
  uint64_t h = 14695981039346656037ull;
  for (uint64_t a : attrs) {
    for (int i = 0; i < 8; ++i) {
      h ^= (a >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  }
  return h == 0 ? 1 : h;
}

uint64_t AttrBits(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Builds the output node. Records parents and the backward closure only when
/// some input requires grad, so inference-only forward passes build no graph.
/// `op` must be a string literal naming the public op (it is stored on the
/// node and shown by the analyze tooling). Ops with scalar attributes that
/// change the computation without changing shapes or topology pass an
/// AttrHash so graph signatures keep them apart.
Variable MakeOp(const char* op, Tensor value, std::vector<Variable> inputs,
                std::function<void(Node*)> backward,
                uint64_t attr_hash = 0) {
  // Contract: no op may produce NaN/Inf. Checking the single funnel point
  // catches a numeric blow-up at the op that created it rather than ten ops
  // downstream in the loss. (No-op unless EMBSR_CHECK_CONTRACTS.)
  EMBSR_CHECK_FINITE(value);
  auto node = std::make_shared<Node>();
  node->op = op;
  node->attr_hash = attr_hash;
  node->value = std::move(value);
  bool rg = false;
  for (const auto& v : inputs) {
    EMBSR_CHECK(v.defined());
    rg = rg || v.node()->requires_grad;
  }
  node->requires_grad = rg;
  if (rg) {
    node->parents.reserve(inputs.size());
    for (auto& v : inputs) node->parents.push_back(v.node());
    node->backward_fn = std::move(backward);
  }
  Tape::Record(node);
  if (prof::Collector* pc = prof::Collector::ActiveOrNull()) {
    ProfileForwardNode(pc, node.get(), inputs);
  }
  return Variable::FromNode(node);
}

void AccumIfNeeded(const std::shared_ptr<Node>& parent, const Tensor& g) {
  if (parent->requires_grad) parent->AccumulateGrad(g);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("Add", embsr::Add(a.value(), b.value()), {a, b},
                [an, bn](Node* out) {
                  AccumIfNeeded(an, out->grad);
                  AccumIfNeeded(bn, out->grad);
                });
}

Variable Sub(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("Sub", embsr::Sub(a.value(), b.value()), {a, b},
                [an, bn](Node* out) {
                  AccumIfNeeded(an, out->grad);
                  AccumIfNeeded(bn, embsr::Neg(out->grad));
                });
}

Variable Mul(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("Mul", embsr::Mul(a.value(), b.value()), {a, b},
                [an, bn](Node* out) {
                  AccumIfNeeded(an, embsr::Mul(out->grad, bn->value));
                  AccumIfNeeded(bn, embsr::Mul(out->grad, an->value));
                });
}

Variable AddRowBroadcast(const Variable& a, const Variable& row) {
  auto an = a.node();
  auto rn = row.node();
  return MakeOp("AddRowBroadcast", embsr::AddRowBroadcast(a.value(), row.value()), {a, row},
                [an, rn](Node* out) {
                  AccumIfNeeded(an, out->grad);
                  if (rn->requires_grad) {
                    Tensor g = embsr::SumRowsTo1xD(out->grad);
                    // lint: allow(raw-resize): same-count rank fixup, copies
                    rn->AccumulateGrad(g.Reshape(rn->value.shape()));
                  }
                });
}

Variable MulRowBroadcast(const Variable& a, const Variable& row) {
  EMBSR_CHECK_EQ(a.value().ndim(), 2);
  EMBSR_CHECK_EQ(row.value().size(), a.value().dim(1));
  Tensor out = embsr::MulRowBroadcast(a.value(), row.value());
  auto an = a.node();
  auto rn = row.node();
  return MakeOp("MulRowBroadcast", std::move(out), {a, row}, [an, rn](Node* o) {
    if (an->requires_grad) {
      an->AccumulateGrad(embsr::MulRowBroadcast(o->grad, rn->value));
    }
    if (rn->requires_grad) {
      Tensor gr = embsr::SumRowsTo1xD(embsr::Mul(o->grad, an->value));
      // lint: allow(raw-resize): same-count rank fixup, copies
      rn->AccumulateGrad(gr.Reshape(rn->value.shape()));
    }
  });
}

Variable MulColBroadcast(const Variable& a, const Variable& col) {
  EMBSR_CHECK_EQ(a.value().ndim(), 2);
  EMBSR_CHECK_EQ(col.value().ndim(), 2);
  EMBSR_CHECK_EQ(col.value().dim(0), a.value().dim(0));
  EMBSR_CHECK_EQ(col.value().dim(1), 1);
  const int64_t n = a.value().dim(0), d = a.value().dim(1);
  Tensor out({n, d});
  for (int64_t i = 0; i < n; ++i) {
    const float c = col.value().data()[i];
    for (int64_t j = 0; j < d; ++j) {
      out.data()[i * d + j] = a.value().data()[i * d + j] * c;
    }
  }
  auto an = a.node();
  auto cn = col.node();
  return MakeOp("MulColBroadcast", std::move(out), {a, col}, [an, cn, n, d](Node* o) {
    if (an->requires_grad) {
      Tensor ga({n, d});
      for (int64_t i = 0; i < n; ++i) {
        const float c = cn->value.data()[i];
        for (int64_t j = 0; j < d; ++j) {
          ga.data()[i * d + j] = o->grad.data()[i * d + j] * c;
        }
      }
      an->AccumulateGrad(ga);
    }
    if (cn->requires_grad) {
      cn->AccumulateGrad(embsr::SumColsToNx1(embsr::Mul(o->grad, an->value)));
    }
  });
}

Variable Scale(const Variable& a, float s) {
  auto an = a.node();
  return MakeOp(
      "Scale", embsr::Scale(a.value(), s), {a},
      [an, s](Node* out) { AccumIfNeeded(an, embsr::Scale(out->grad, s)); },
      AttrHash({AttrBits(s)}));
}

Variable AddScalar(const Variable& a, float s) {
  auto an = a.node();
  return MakeOp("AddScalar", embsr::AddScalar(a.value(), s), {a},
                [an](Node* out) { AccumIfNeeded(an, out->grad); },
                AttrHash({AttrBits(s)}));
}

Variable Neg(const Variable& a) { return Scale(a, -1.0f); }

Variable MatMul(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("MatMul", embsr::MatMul(a.value(), b.value()), {a, b},
                [an, bn](Node* out) {
                  if (an->requires_grad) {
                    an->AccumulateGrad(
                        embsr::MatMul(out->grad, bn->value.Transposed()));
                  }
                  if (bn->requires_grad) {
                    bn->AccumulateGrad(
                        embsr::MatMul(an->value.Transposed(), out->grad));
                  }
                });
}

Variable Transpose(const Variable& a) {
  auto an = a.node();
  return MakeOp("Transpose", a.value().Transposed(), {a}, [an](Node* out) {
    AccumIfNeeded(an, out->grad.Transposed());
  });
}

Variable Sigmoid(const Variable& a) {
  Tensor y = embsr::Sigmoid(a.value());
  auto an = a.node();
  return MakeOp("Sigmoid", y, {a}, [an](Node* out) {
    if (!an->requires_grad) return;
    Tensor g = out->grad;
    const float* py = out->value.data();
    float* pg = g.data();
    for (int64_t i = 0; i < g.size(); ++i) pg[i] *= py[i] * (1.0f - py[i]);
    an->AccumulateGrad(g);
  });
}

Variable Tanh(const Variable& a) {
  Tensor y = embsr::Tanh(a.value());
  auto an = a.node();
  return MakeOp("Tanh", y, {a}, [an](Node* out) {
    if (!an->requires_grad) return;
    Tensor g = out->grad;
    const float* py = out->value.data();
    float* pg = g.data();
    for (int64_t i = 0; i < g.size(); ++i) pg[i] *= 1.0f - py[i] * py[i];
    an->AccumulateGrad(g);
  });
}

Variable Relu(const Variable& a) {
  Tensor y = embsr::Relu(a.value());
  auto an = a.node();
  return MakeOp("Relu", y, {a}, [an](Node* out) {
    if (!an->requires_grad) return;
    Tensor g = out->grad;
    const float* px = an->value.data();
    float* pg = g.data();
    for (int64_t i = 0; i < g.size(); ++i) {
      if (px[i] <= 0.0f) pg[i] = 0.0f;
    }
    an->AccumulateGrad(g);
  });
}

Variable Exp(const Variable& a) {
  Tensor y = embsr::Exp(a.value());
  auto an = a.node();
  return MakeOp("Exp", y, {a}, [an](Node* out) {
    if (!an->requires_grad) return;
    an->AccumulateGrad(embsr::Mul(out->grad, out->value));
  });
}

Variable Log(const Variable& a) {
  Tensor y = embsr::Log(a.value());
  auto an = a.node();
  return MakeOp("Log", y, {a}, [an](Node* out) {
    if (!an->requires_grad) return;
    Tensor g = out->grad;
    const float* px = an->value.data();
    float* pg = g.data();
    for (int64_t i = 0; i < g.size(); ++i) pg[i] /= px[i];
    an->AccumulateGrad(g);
  });
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  const int64_t da = a.value().dim(1);
  const int64_t db = b.value().dim(1);
  return MakeOp("ConcatCols", embsr::ConcatCols(a.value(), b.value()), {a, b},
                [an, bn, da, db](Node* out) {
                  const int64_t n = out->grad.dim(0);
                  if (an->requires_grad) {
                    Tensor ga({n, da});
                    for (int64_t i = 0; i < n; ++i) {
                      std::memcpy(ga.data() + i * da,
                                  out->grad.data() + i * (da + db),
                                  sizeof(float) * da);
                    }
                    an->AccumulateGrad(ga);
                  }
                  if (bn->requires_grad) {
                    Tensor gb({n, db});
                    for (int64_t i = 0; i < n; ++i) {
                      std::memcpy(gb.data() + i * db,
                                  out->grad.data() + i * (da + db) + da,
                                  sizeof(float) * db);
                    }
                    bn->AccumulateGrad(gb);
                  }
                });
}

Variable ConcatRows(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  const int64_t na = a.value().dim(0);
  const int64_t nb = b.value().dim(0);
  return MakeOp("ConcatRows", embsr::ConcatRows(a.value(), b.value()), {a, b},
                [an, bn, na, nb](Node* out) {
                  if (an->requires_grad) {
                    an->AccumulateGrad(out->grad.SliceRows(0, na));
                  }
                  if (bn->requires_grad) {
                    bn->AccumulateGrad(out->grad.SliceRows(na, na + nb));
                  }
                });
}

Variable StackRows(const std::vector<Variable>& rows) {
  EMBSR_CHECK(!rows.empty());
  const int64_t d = rows[0].value().cols();
  const int64_t k = static_cast<int64_t>(rows.size());
  Tensor out({k, d});
  for (int64_t i = 0; i < k; ++i) {
    EMBSR_CHECK_EQ(rows[i].value().size(), d);
    std::memcpy(out.data() + i * d, rows[i].value().data(),
                sizeof(float) * d);
  }
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(rows.size());
  for (const auto& r : rows) parents.push_back(r.node());
  return MakeOp("StackRows", std::move(out), rows, [parents, d](Node* o) {
    for (size_t i = 0; i < parents.size(); ++i) {
      if (!parents[i]->requires_grad) continue;
      Tensor g = o->grad.SliceRows(static_cast<int64_t>(i),
                                   static_cast<int64_t>(i) + 1);
      // lint: allow(raw-resize): same-count rank fixup, copies
      parents[i]->AccumulateGrad(g.Reshape(parents[i]->value.shape()));
    }
  });
}

Variable SliceRows(const Variable& a, int64_t begin, int64_t end) {
  auto an = a.node();
  return MakeOp("SliceRows", a.value().SliceRows(begin, end), {a},
                [an, begin, end](Node* out) {
                  if (!an->requires_grad) return;
                  Tensor ga(an->value.shape());
                  const int64_t d = ga.ndim() == 2 ? ga.dim(1) : 1;
                  std::memcpy(ga.data() + begin * d, out->grad.data(),
                              sizeof(float) * (end - begin) * d);
                  an->AccumulateGrad(ga);
                },
                AttrHash({static_cast<uint64_t>(begin),
                          static_cast<uint64_t>(end)}));
}

Variable Row(const Variable& a, int64_t r) { return SliceRows(a, r, r + 1); }

Variable GatherRows(const Variable& table,
                    const std::vector<int64_t>& indices) {
  auto tn = table.node();
  return MakeOp("GatherRows", embsr::GatherRows(table.value(), indices), {table},
                [tn, indices](Node* out) {
                  if (!tn->requires_grad) return;
                  Tensor gt(tn->value.shape());
                  embsr::ScatterAddRows(out->grad, indices, &gt);
                  tn->AccumulateGrad(gt);
                });
}

Variable SelectRowsByMask(const Variable& a, const Variable& b,
                          const Tensor& mask) {
  Tensor y = embsr::SelectRowsByMask(a.value(), b.value(), mask);
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("SelectRowsByMask", std::move(y), {a, b},
                [an, bn, mask](Node* out) {
                  const Tensor zero(out->grad.shape());
                  if (an->requires_grad) {
                    an->AccumulateGrad(
                        embsr::SelectRowsByMask(out->grad, zero, mask));
                  }
                  if (bn->requires_grad) {
                    bn->AccumulateGrad(
                        embsr::SelectRowsByMask(zero, out->grad, mask));
                  }
                });
}

Variable SegmentSumRows(const Variable& a,
                        const std::vector<int64_t>& segments,
                        int64_t num_segments) {
  Tensor y = embsr::SegmentSumRows(a.value(), segments, num_segments);
  auto an = a.node();
  return MakeOp("SegmentSumRows", std::move(y), {a},
                [an, segments](Node* out) {
                  if (!an->requires_grad) return;
                  an->AccumulateGrad(embsr::GatherRows(out->grad, segments));
                });
}

Variable RowSoftmaxMasked(const Variable& a, const Tensor& mask) {
  Tensor y = embsr::RowSoftmaxMasked(a.value(), mask);
  auto an = a.node();
  return MakeOp("RowSoftmaxMasked", y, {a}, [an](Node* out) {
    if (!an->requires_grad) return;
    // dL/dx_i = y_i * (g_i - sum_j g_j y_j), row-wise.
    const int64_t n = out->value.dim(0), m = out->value.dim(1);
    Tensor ga({n, m});
    for (int64_t i = 0; i < n; ++i) {
      const float* y = out->value.data() + i * m;
      const float* g = out->grad.data() + i * m;
      double dot = 0.0;
      for (int64_t j = 0; j < m; ++j) dot += static_cast<double>(g[j]) * y[j];
      float* o = ga.data() + i * m;
      for (int64_t j = 0; j < m; ++j) {
        o[j] = y[j] * (g[j] - static_cast<float>(dot));
      }
    }
    an->AccumulateGrad(ga);
  });
}

Variable RowSoftmax(const Variable& a) {
  return RowSoftmaxMasked(a, Tensor::Ones(a.value().shape()));
}

Variable SumAll(const Variable& a) {
  auto an = a.node();
  return MakeOp("SumAll", embsr::SumAll(a.value()), {a}, [an](Node* out) {
    if (!an->requires_grad) return;
    an->AccumulateGrad(Tensor::Full(an->value.shape(), out->grad.at(0)));
  });
}

Variable SumRowsTo1xD(const Variable& a) {
  auto an = a.node();
  return MakeOp("SumRowsTo1xD", embsr::SumRowsTo1xD(a.value()), {a}, [an](Node* out) {
    if (!an->requires_grad) return;
    const int64_t n = an->value.dim(0), d = an->value.dim(1);
    Tensor ga({n, d});
    for (int64_t i = 0; i < n; ++i) {
      std::memcpy(ga.data() + i * d, out->grad.data(), sizeof(float) * d);
    }
    an->AccumulateGrad(ga);
  });
}

Variable SumColsToNx1(const Variable& a) {
  auto an = a.node();
  return MakeOp("SumColsToNx1", embsr::SumColsToNx1(a.value()), {a}, [an](Node* out) {
    if (!an->requires_grad) return;
    const int64_t n = an->value.dim(0), d = an->value.dim(1);
    Tensor ga({n, d});
    for (int64_t i = 0; i < n; ++i) {
      const float g = out->grad.data()[i];
      for (int64_t j = 0; j < d; ++j) ga.data()[i * d + j] = g;
    }
    an->AccumulateGrad(ga);
  });
}

Variable MeanRowsTo1xD(const Variable& a) {
  const int64_t n = a.value().dim(0);
  return Scale(SumRowsTo1xD(a), 1.0f / static_cast<float>(n));
}

Variable RepeatRow(const Variable& a, int64_t n) {
  EMBSR_CHECK_EQ(a.value().rows(), 1);
  const int64_t d = a.value().cols();
  Tensor out({n, d});
  for (int64_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * d, a.value().data(), sizeof(float) * d);
  }
  auto an = a.node();
  return MakeOp(
      "RepeatRow", std::move(out), {a},
      [an](Node* o) {
        if (!an->requires_grad) return;
        Tensor g = embsr::SumRowsTo1xD(o->grad);
        // lint: allow(raw-resize): same-count rank fixup, copies
        an->AccumulateGrad(g.Reshape(an->value.shape()));
      },
      AttrHash({static_cast<uint64_t>(n)}));
}

Variable L2NormalizeRowsOp(const Variable& a) {
  constexpr float kEps = 1e-12f;
  Tensor y = embsr::L2NormalizeRows(a.value(), kEps);
  auto an = a.node();
  return MakeOp("L2NormalizeRowsOp", y, {a}, [an](Node* out) {
    if (!an->requires_grad) return;
    const int64_t n = an->value.dim(0), d = an->value.dim(1);
    Tensor ga({n, d});
    for (int64_t i = 0; i < n; ++i) {
      const float* x = an->value.data() + i * d;
      const float* y = out->value.data() + i * d;
      const float* g = out->grad.data() + i * d;
      double norm_sq = 0.0;
      for (int64_t j = 0; j < d; ++j) norm_sq += static_cast<double>(x[j]) * x[j];
      const double norm = std::sqrt(norm_sq);
      if (norm < kEps) continue;  // zero row: zero grad
      double gy = 0.0;
      for (int64_t j = 0; j < d; ++j) gy += static_cast<double>(g[j]) * y[j];
      const float inv = static_cast<float>(1.0 / norm);
      for (int64_t j = 0; j < d; ++j) {
        ga.data()[i * d + j] = (g[j] - static_cast<float>(gy) * y[j]) * inv;
      }
    }
    an->AccumulateGrad(ga);
  });
}

Variable LayerNormRows(const Variable& a, float eps) {
  EMBSR_CHECK_EQ(a.value().ndim(), 2);
  const int64_t n = a.value().dim(0), d = a.value().dim(1);
  Tensor y({n, d});
  std::vector<float> inv_std(n);
  for (int64_t i = 0; i < n; ++i) {
    const float* x = a.value().data() + i * d;
    double mean = 0.0;
    for (int64_t j = 0; j < d; ++j) mean += x[j];
    mean /= d;
    double var = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double c = x[j] - mean;
      var += c * c;
    }
    var /= d;
    const double istd = 1.0 / std::sqrt(var + eps);
    inv_std[i] = static_cast<float>(istd);
    for (int64_t j = 0; j < d; ++j) {
      y.data()[i * d + j] = static_cast<float>((x[j] - mean) * istd);
    }
  }
  auto an = a.node();
  return MakeOp("LayerNormRows", std::move(y), {a}, [an, inv_std, n, d](Node* out) {
    if (!an->requires_grad) return;
    Tensor ga({n, d});
    for (int64_t i = 0; i < n; ++i) {
      const float* yv = out->value.data() + i * d;
      const float* g = out->grad.data() + i * d;
      double gm = 0.0, gym = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        gm += g[j];
        gym += static_cast<double>(g[j]) * yv[j];
      }
      gm /= d;
      gym /= d;
      for (int64_t j = 0; j < d; ++j) {
        ga.data()[i * d + j] = static_cast<float>(
            (g[j] - gm - yv[j] * gym) * inv_std[i]);
      }
    }
    an->AccumulateGrad(ga);
  }, AttrHash({AttrBits(eps)}));
}

Variable Dropout(const Variable& a, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) return a;
  EMBSR_CHECK(rng != nullptr);
  EMBSR_CHECK_LT(p, 1.0f);
  const float keep = 1.0f - p;
  const float scale = 1.0f / keep;
  Tensor mask(a.value().shape());
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng->Bernoulli(keep) ? scale : 0.0f;
  }
  Tensor out = embsr::Mul(a.value(), mask);
  auto an = a.node();
  return MakeOp("Dropout", std::move(out), {a}, [an, mask](Node* o) {
    AccumIfNeeded(an, embsr::Mul(o->grad, mask));
  }, AttrHash({AttrBits(p)}));
}

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int64_t>& targets) {
  EMBSR_CHECK_EQ(logits.value().ndim(), 2);
  const int64_t n = logits.value().dim(0);
  const int64_t c = logits.value().dim(1);
  EMBSR_CHECK_EQ(n, static_cast<int64_t>(targets.size()));
  Tensor probs = embsr::RowSoftmax(logits.value());
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    EMBSR_CHECK_GE(targets[i], 0);
    EMBSR_CHECK_LT(targets[i], c);
    const float p = probs.at2(i, targets[i]);
    loss -= std::log(std::max(p, 1e-12f));
  }
  loss /= n;
  auto ln = logits.node();
  return MakeOp("SoftmaxCrossEntropy", Tensor::Scalar(static_cast<float>(loss)), {logits},
                [ln, probs, targets, n, c](Node* out) {
                  if (!ln->requires_grad) return;
                  const float g0 = out->grad.at(0) / static_cast<float>(n);
                  Tensor ga = probs;
                  for (int64_t i = 0; i < n; ++i) {
                    ga.at2(i, targets[i]) -= 1.0f;
                  }
                  ga.ScaleInPlace(g0);
                  ln->AccumulateGrad(ga);
                });
}

}  // namespace ag
}  // namespace embsr
