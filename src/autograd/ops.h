#ifndef EMBSR_AUTOGRAD_OPS_H_
#define EMBSR_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "util/rng.h"

namespace embsr {
namespace ag {

/// Differentiable operations. Every function builds one node in the
/// computation graph; gradients flow to any input with requires_grad set.
/// Shape contracts mirror the kernels in tensor/tensor.h.

// Elementwise; shapes must match.
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);

/// a: [n, d]; row: [1, d] (or rank-1 [d]); adds row to every row of a.
Variable AddRowBroadcast(const Variable& a, const Variable& row);
/// a: [n, d]; row: [1, d]; multiplies every row of a elementwise by row.
Variable MulRowBroadcast(const Variable& a, const Variable& row);
/// a: [n, d]; col: [n, 1]; scales row i of a by col[i].
Variable MulColBroadcast(const Variable& a, const Variable& col);

Variable Scale(const Variable& a, float s);
Variable AddScalar(const Variable& a, float s);
Variable Neg(const Variable& a);

/// [n, k] x [k, m] -> [n, m].
Variable MatMul(const Variable& a, const Variable& b);
/// Matrix transpose (rank 2).
Variable Transpose(const Variable& a);

Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
Variable Exp(const Variable& a);
/// Natural log; caller guarantees strictly positive inputs.
Variable Log(const Variable& a);

/// [n, d1] ++ [n, d2] -> [n, d1+d2].
Variable ConcatCols(const Variable& a, const Variable& b);
/// [n1, d] ++ [n2, d] -> [n1+n2, d].
Variable ConcatRows(const Variable& a, const Variable& b);
/// Stacks k row vectors [1, d] into [k, d].
Variable StackRows(const std::vector<Variable>& rows);
/// Rows [begin, end) of a rank-2 input.
Variable SliceRows(const Variable& a, int64_t begin, int64_t end);
/// Single row r as [1, d].
Variable Row(const Variable& a, int64_t r);

/// Embedding lookup: rows of `table` ([v, d]) at `indices`.
Variable GatherRows(const Variable& table, const std::vector<int64_t>& indices);

/// Row-wise bitwise select between same-shape a and b: output row i is a's
/// where mask[i] != 0, else b's. `mask` ([n, 1] or rank-1 [n]) is an op
/// attribute, not a differentiable input. Gradients route to the selected
/// side only — the unselected side's rows receive exactly zero, which is how
/// the batched GRU keeps padded steps out of the gradient entirely.
Variable SelectRowsByMask(const Variable& a, const Variable& b,
                          const Tensor& mask);

/// Segment sum over rows: out[segments[i]] += a[i], [n, d] ->
/// [num_segments, d], accumulating in ascending row order. The transpose of
/// GatherRows; backward gathers output grads back through `segments`.
Variable SegmentSumRows(const Variable& a,
                        const std::vector<int64_t>& segments,
                        int64_t num_segments);

/// Row-wise softmax. `mask` (same shape, 0/1) marks valid entries; fully
/// masked rows come out as all-zero. Pass an all-ones mask for plain softmax.
Variable RowSoftmaxMasked(const Variable& a, const Tensor& mask);
Variable RowSoftmax(const Variable& a);

/// Scalar sum of all elements.
Variable SumAll(const Variable& a);
/// Column sums: [n, d] -> [1, d].
Variable SumRowsTo1xD(const Variable& a);
/// Row sums: [n, d] -> [n, 1].
Variable SumColsToNx1(const Variable& a);
/// Column means: [n, d] -> [1, d].
Variable MeanRowsTo1xD(const Variable& a);

/// Repeats a [1, d] row n times -> [n, d].
Variable RepeatRow(const Variable& a, int64_t n);

/// Row-wise L2 normalization (zero rows stay zero).
Variable L2NormalizeRowsOp(const Variable& a);

/// Row-wise layer normalization to zero mean / unit variance (no affine;
/// compose with MulRowBroadcast + AddRowBroadcast for gamma/beta).
Variable LayerNormRows(const Variable& a, float eps = 1e-5f);

/// Inverted dropout. Identity when !training or p == 0.
Variable Dropout(const Variable& a, float p, bool training, Rng* rng);

/// Mean cross-entropy of row-wise softmax(logits) against integer targets.
/// logits: [n, C]; targets.size() == n. Returns a scalar.
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int64_t>& targets);

}  // namespace ag
}  // namespace embsr

#endif  // EMBSR_AUTOGRAD_OPS_H_
