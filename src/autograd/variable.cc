#include "autograd/variable.h"

#include <unordered_set>

#include "autograd/exec_observer.h"
#include "autograd/tape.h"
#include "obs/trace.h"
#include "prof/op_profiler.h"
#include "util/check.h"

namespace embsr {
namespace ag {

void Node::AccumulateGrad(const Tensor& g) {
  EMBSR_CHECK(g.shape() == value.shape());
  if (!grad_ready) {
    grad = g;
    grad_ready = true;
    // First seat: the arena executor reseats the fresh grad buffer at its
    // planned offset before any further accumulation or read touches it.
    if (ExecObserver* eo = ExecObserver::Active()) eo->OnGradSeated(this);
  } else {
    grad.AddInPlace(g);
  }
  ++accum_count;
}

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  Tape::Record(node_);
}

const Tensor& Variable::value() const {
  EMBSR_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  EMBSR_CHECK(defined());
  return node_->value;
}

Tensor Variable::GradOrZeros() const {
  EMBSR_CHECK(defined());
  if (!node_->grad_ready) return Tensor::Zeros(node_->value.shape());
  return node_->grad;
}

bool Variable::requires_grad() const {
  EMBSR_CHECK(defined());
  return node_->requires_grad;
}

bool Variable::has_grad() const {
  EMBSR_CHECK(defined());
  return node_->grad_ready;
}

void Variable::ZeroGrad() {
  EMBSR_CHECK(defined());
  node_->grad_ready = false;
  node_->accum_count = 0;
}

void Variable::Backward() const {
  EMBSR_TIMED_SPAN("autograd/backward", "autograd/backward_ms");
  static obs::Counter* backward_calls =
      obs::Registry::Global().GetCounter("autograd/backward_calls");
  backward_calls->Increment();

  EMBSR_CHECK(defined());
  EMBSR_CHECK_MSG(node_->value.size() == 1,
                  "Backward() requires a scalar root, got %s",
                  node_->value.ShapeString().c_str());

  const std::vector<Node*> order = BackwardPostOrder(*this);

  ExecObserver* eo = ExecObserver::Active();
  if (eo != nullptr) eo->OnBackwardSeed(node_.get());
  node_->AccumulateGrad(Tensor::Full(node_->value.shape(), 1.0f));

  // `order` is post-order (children first); iterate from the back so each
  // node's grad is complete before it propagates to parents.
  prof::Collector* pc = prof::Collector::ActiveOrNull();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->grad_ready) {
      if (eo != nullptr) eo->OnBackwardOp(n);
      if (pc != nullptr) {
        const int64_t t0 = prof::NowNs();
        n->backward_fn(n);
        pc->RecordBackward(n->op, n->component, prof::NowNs() - t0);
      } else {
        n->backward_fn(n);
      }
    }
  }
  // Re-origin the forward gap so graph-walk time between this backward pass
  // and the next recorded op is never charged to that op.
  if (pc != nullptr) prof::Collector::MarkThisThread();
}

Variable Variable::FromNode(std::shared_ptr<Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable Constant(Tensor value) { return Variable(std::move(value), false); }

std::vector<Node*> BackwardPostOrder(const Variable& root) {
  // Iterative post-order DFS over requires_grad parents: a reverse
  // topological order. Backward() executes it back-to-front so each node's
  // grad is complete before it propagates; the analyze planner replays the
  // same sequence to model gradient liveness.
  std::vector<Node*> order;
  if (!root.defined()) return order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.node().get(), 0);
  visited.insert(root.node().get());
  while (!stack.empty()) {
    auto& [cur, next_child] = stack.back();
    if (next_child < cur->parents.size()) {
      Node* child = cur->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(cur);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace ag
}  // namespace embsr
