#ifndef EMBSR_NN_CHECKPOINT_H_
#define EMBSR_NN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/rng.h"
#include "util/status.h"

namespace embsr {
namespace nn {

/// Everything beyond raw weights that exact training resumption needs.
/// The optimizer portion is opaque to nn (a scalar list plus a tensor
/// list) so this header does not depend on optim; optim::Optimizer
/// exports/imports into these fields.
struct TrainState {
  /// Number of completed epochs (the resume point).
  int32_t epoch = 0;
  /// Best validation MRR@20 seen so far; < 0 = no validation yet.
  double best_mrr = -1.0;
  /// Parameter snapshot at the best validation point (empty if none).
  std::vector<Tensor> best_params;
  /// Training RNG stream (dropout draws etc.), restored bit-for-bit.
  RngState rng;
  /// Opaque optimizer state: scalars (e.g. Adam's step count) + slot
  /// tensors (e.g. Adam's m and v), in the optimizer's own order.
  std::vector<double> opt_scalars;
  std::vector<Tensor> opt_slots;
};

/// Binary checkpointing of a module's parameters and (optionally) its full
/// training state.
///
/// Format v2 (little-endian):
///   magic "EMBSRCKP" (8 bytes), version u32 = 2, flags u32 (bit0 = has
///   TrainState), parameter count u32, then per parameter: name length u32
///   + name bytes, rank u32 + dims i64[], data f32[]. When bit0 is set the
///   TrainState follows: epoch i32, best_mrr f64, best-params tensor list,
///   RNG state (4x u64 + u32 flag + f64), optimizer scalars (count u32 +
///   f64[]) and slot tensor list. The file ends with a u32 CRC-32 of every
///   preceding byte, so truncation and bit rot are always detected.
///
/// Version 1 files (weights only, no CRC) still load. Loading verifies that
/// names, order and shapes match the target module exactly, so a checkpoint
/// can only be restored into the same architecture (by design: silent
/// partial loads hide bugs). Every read is bounds-checked; errors carry the
/// failing byte offset.
///
/// Writes are crash-safe: the file is assembled in memory, written to a
/// same-directory temporary, fsync'd and atomically renamed (see
/// AtomicWriteFile), so a crash mid-save never corrupts an existing
/// checkpoint. Failpoints "ckpt.write" (injected I/O error) and
/// "ckpt.truncate" (silently truncated payload, for exercising the CRC
/// path) hook the write.
Status SaveCheckpoint(const Module& module, const std::string& path);

/// Saves weights plus training state (format v2 with flags bit0 set).
Status SaveCheckpoint(const Module& module, const TrainState& state,
                      const std::string& path);

/// Restores weights into `module`; a trailing TrainState, if present, is
/// ignored. Accepts format v1 and v2.
Status LoadCheckpoint(const std::string& path, Module* module);

/// Restores weights and training state. Fails with FailedPrecondition on a
/// checkpoint that has no training state (e.g. a v1 file).
Status LoadCheckpoint(const std::string& path, Module* module,
                      TrainState* state);

}  // namespace nn
}  // namespace embsr

#endif  // EMBSR_NN_CHECKPOINT_H_
