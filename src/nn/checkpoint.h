#ifndef EMBSR_NN_CHECKPOINT_H_
#define EMBSR_NN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace embsr {
namespace nn {

/// Binary checkpointing of a module's trainable parameters.
///
/// Format (little-endian):
///   magic "EMBSRCKP" (8 bytes), version u32, parameter count u32, then per
///   parameter: name length u32 + name bytes, rank u32 + dims i64[], data
///   f32[]. Loading verifies that names, order and shapes match the target
///   module exactly, so a checkpoint can only be restored into the same
///   architecture (by design: silent partial loads hide bugs).
Status SaveCheckpoint(const Module& module, const std::string& path);
Status LoadCheckpoint(const std::string& path, Module* module);

}  // namespace nn
}  // namespace embsr

#endif  // EMBSR_NN_CHECKPOINT_H_
