#ifndef EMBSR_NN_LAYERS_H_
#define EMBSR_NN_LAYERS_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace embsr {
namespace nn {

/// All layers initialize weights Uniform(-1/sqrt(d), 1/sqrt(d)) where d is
/// the hidden size, matching the initialization the paper inherits from
/// MKM-SR ("the parameters are initialized the same with [12]").
float InitBound(int64_t hidden_dim);

/// y = x W + b, with W: [in, out].
class Linear : public Module {
 public:
  Linear(int64_t in_dim, int64_t out_dim, Rng* rng, bool bias = true);

  /// x: [n, in] -> [n, out].
  ag::Variable Forward(const ag::Variable& x) const;

  const ag::Variable& weight() const { return weight_; }

 private:
  ag::Variable weight_;
  ag::Variable bias_;
  bool has_bias_;
};

/// A lookup table of `count` embeddings of dimension `dim`.
class Embedding : public Module {
 public:
  Embedding(int64_t count, int64_t dim, Rng* rng);

  /// indices -> [indices.size(), dim].
  ag::Variable Forward(const std::vector<int64_t>& indices) const;

  /// The full table as a variable (e.g. as the candidate-item matrix when
  /// scoring all items).
  const ag::Variable& table() const { return table_; }

  int64_t count() const { return count_; }
  int64_t dim() const { return dim_; }

 private:
  ag::Variable table_;
  int64_t count_;
  int64_t dim_;
};

/// A single GRU step (cho et al. 2014 formulation, PyTorch gate layout).
class GRUCell : public Module {
 public:
  GRUCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// x: [n, input_dim], h: [n, hidden_dim] -> [n, hidden_dim].
  ag::Variable Forward(const ag::Variable& x, const ag::Variable& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  ag::Variable w_ir_, w_iz_, w_in_;  // input->gate weights [in, hid]
  ag::Variable w_hr_, w_hz_, w_hn_;  // hidden->gate weights [hid, hid]
  ag::Variable b_r_, b_z_, b_in_, b_hn_;
};

/// Unrolled GRU over a sequence whose rows are time steps.
class GRU : public Module {
 public:
  GRU(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// xs: [t, input_dim]; returns all hidden states [t, hidden_dim].
  /// The initial hidden state is zero.
  ag::Variable Forward(const ag::Variable& xs) const;

  /// Convenience: just the final hidden state [1, hidden_dim].
  ag::Variable ForwardLast(const ag::Variable& xs) const;

  /// Batched masked unroll over `batch` right-aligned (front-padded)
  /// sequences in one time-major tensor: xs row t*batch + b is session b's
  /// input at step t. `step_masks[t]` is a [batch, 1] 0/1 column marking
  /// which sessions are live at step t; `step_all_valid[t]` short-circuits
  /// the masked blend on steps where every session is live. Padded steps
  /// update h by bitwise identity (SelectRowsByMask), so with front padding
  /// the state stays exactly zero until a session starts and the returned
  /// final state [batch, hidden_dim] is each session's last step — no
  /// gather needed. At batch == 1 (never padded) this computes bit-for-bit
  /// the same floats as ForwardLast.
  ag::Variable ForwardBatchedLast(
      const ag::Variable& xs, int64_t batch,
      const std::vector<Tensor>& step_masks,
      const std::vector<uint8_t>& step_all_valid) const;

  int64_t hidden_dim() const { return cell_.hidden_dim(); }

 private:
  GRUCell cell_;
};

/// Row-wise layer normalization with learned affine (gamma, beta).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim);

  ag::Variable Forward(const ag::Variable& x) const;

 private:
  ag::Variable gamma_;
  ag::Variable beta_;
};

/// Position-wise feed-forward network: max(0, x W1 + b1) W2 + b2 (Eq. 17).
class FeedForward : public Module {
 public:
  FeedForward(int64_t dim, int64_t hidden_dim, Rng* rng);

  ag::Variable Forward(const ag::Variable& x) const;

 private:
  Linear fc1_;
  Linear fc2_;
};

}  // namespace nn
}  // namespace embsr

#endif  // EMBSR_NN_LAYERS_H_
