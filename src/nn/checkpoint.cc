#include "nn/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace embsr {
namespace nn {

namespace {

constexpr char kMagic[8] = {'E', 'M', 'B', 'S', 'R', 'C', 'K', 'P'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const auto params = module.NamedParameters();
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(params.size()));
  for (const auto& np : params) {
    WritePod(out, static_cast<uint32_t>(np.name.size()));
    out.write(np.name.data(), static_cast<std::streamsize>(np.name.size()));
    const Tensor& t = np.variable.value();
    WritePod(out, static_cast<uint32_t>(t.ndim()));
    for (int64_t d : t.shape()) WritePod(out, d);
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(sizeof(float) * t.size()));
  }
  out.flush();
  if (!out.good()) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Status LoadCheckpoint(const std::string& path, Module* module) {
  if (module == nullptr) {
    return Status::InvalidArgument("null module");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open '" + path + "'");

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a checkpoint");
  }
  uint32_t version = 0, count = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadPod(in, &count)) {
    return Status::InvalidArgument("truncated checkpoint");
  }
  auto params = module->NamedParameters();
  if (count != params.size()) {
    return Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(params.size()));
  }
  for (auto& np : params) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > 4096) {
      return Status::InvalidArgument("truncated checkpoint (name length)");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in.good() || name != np.name) {
      return Status::FailedPrecondition("parameter name mismatch: expected '" +
                                        np.name + "', found '" + name + "'");
    }
    uint32_t rank = 0;
    if (!ReadPod(in, &rank) || rank > 8) {
      return Status::InvalidArgument("truncated checkpoint (rank)");
    }
    std::vector<int64_t> shape(rank);
    for (auto& d : shape) {
      if (!ReadPod(in, &d)) {
        return Status::InvalidArgument("truncated checkpoint (dims)");
      }
    }
    Tensor& dst = np.variable.mutable_value();
    if (shape != dst.shape()) {
      return Status::FailedPrecondition("shape mismatch for '" + np.name +
                                        "'");
    }
    in.read(reinterpret_cast<char*>(dst.data()),
            static_cast<std::streamsize>(sizeof(float) * dst.size()));
    if (!in.good()) {
      return Status::InvalidArgument("truncated checkpoint (data)");
    }
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace embsr
