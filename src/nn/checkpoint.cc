#include "nn/checkpoint.h"

#include <cstdint>
#include <cstring>

#include "robust/failpoint.h"
#include "util/crc32.h"
#include "util/fs_util.h"

namespace embsr {
namespace nn {

namespace {

constexpr char kMagic[8] = {'E', 'M', 'B', 'S', 'R', 'C', 'K', 'P'};
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersion = 2;
constexpr uint32_t kFlagHasTrainState = 1u << 0;
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxRank = 8;

// ---------------------------------------------------------------------------
// Serialization helpers over an in-memory buffer. Assembling the whole file
// in memory (checkpoints are parameter-sized) is what makes the atomic
// tmp+rename write and the whole-file CRC trivially correct.

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendTensor(std::string* out, const Tensor& t) {
  AppendPod(out, static_cast<uint32_t>(t.ndim()));
  for (int64_t d : t.shape()) AppendPod(out, d);
  out->append(reinterpret_cast<const char*>(t.data()),
              sizeof(float) * static_cast<size_t>(t.size()));
}

/// Bounds-checked cursor over the loaded file. Every failure names the
/// offset where the file ran out or went bad.
class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data) {}

  size_t offset() const { return off_; }
  size_t remaining() const { return data_.size() - off_; }

  Status Read(void* dst, size_t n, const char* what) {
    if (n > remaining()) {
      return Status::InvalidArgument(
          "truncated checkpoint: need " + std::to_string(n) + " bytes for " +
          what + " at offset " + std::to_string(off_) + ", have " +
          std::to_string(remaining()));
    }
    std::memcpy(  // lint: allow(data-arith): byte I/O, n <= remaining() checked above
        dst, data_.data() + off_, n);
    off_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadPod(T* value, const char* what) {
    return Read(value, sizeof(T), what);
  }

  Status ReadString(std::string* out, size_t n, const char* what) {
    out->resize(n);
    return Read(out->data(), n, what);
  }

 private:
  const std::string& data_;
  size_t off_ = 0;
};

Status ReadTensorInto(ByteReader* r, Tensor* dst, const char* what) {
  uint32_t rank = 0;
  Status s = r->ReadPod(&rank, what);
  if (!s.ok()) return s;
  if (rank > kMaxRank) {
    return Status::InvalidArgument(
        std::string("corrupt checkpoint: implausible rank for ") + what +
        " at offset " + std::to_string(r->offset()));
  }
  std::vector<int64_t> shape(rank);
  int64_t elems = 1;
  for (auto& d : shape) {
    s = r->ReadPod(&d, what);
    if (!s.ok()) return s;
    if (d < 0 || (d > 0 && elems > (1LL << 40) / d)) {
      return Status::InvalidArgument(
          std::string("corrupt checkpoint: implausible dims for ") + what +
          " at offset " + std::to_string(r->offset()));
    }
    elems *= d;
  }
  Tensor t(shape);
  s = r->Read(t.data(), sizeof(float) * static_cast<size_t>(t.size()), what);
  if (!s.ok()) return s;
  *dst = std::move(t);
  return Status::OK();
}

/// Reads a tensor whose shape must match `dst` exactly (a module weight).
Status ReadTensorMatching(ByteReader* r, Tensor* dst, const std::string& name) {
  uint32_t rank = 0;
  Status s = r->ReadPod(&rank, "tensor rank");
  if (!s.ok()) return s;
  if (rank > kMaxRank) {
    return Status::InvalidArgument(
        "corrupt checkpoint: implausible rank for '" + name + "' at offset " +
        std::to_string(r->offset()));
  }
  std::vector<int64_t> shape(rank);
  for (auto& d : shape) {
    s = r->ReadPod(&d, "tensor dims");
    if (!s.ok()) return s;
  }
  if (shape != dst->shape()) {
    return Status::FailedPrecondition("shape mismatch for '" + name + "'");
  }
  return r->Read(dst->data(), sizeof(float) * static_cast<size_t>(dst->size()),
                 "tensor data");
}

Status ReadRngState(ByteReader* r, RngState* rng) {
  for (auto& word : rng->s) {
    Status s = r->ReadPod(&word, "rng state");
    if (!s.ok()) return s;
  }
  uint32_t has_cached = 0;
  Status s = r->ReadPod(&has_cached, "rng cache flag");
  if (!s.ok()) return s;
  rng->has_cached_normal = has_cached != 0;
  return r->ReadPod(&rng->cached_normal, "rng cached normal");
}

void AppendTrainState(std::string* out, const TrainState& st) {
  AppendPod(out, st.epoch);
  AppendPod(out, st.best_mrr);
  AppendPod(out, static_cast<uint32_t>(st.best_params.size()));
  for (const Tensor& t : st.best_params) AppendTensor(out, t);
  for (uint64_t word : st.rng.s) AppendPod(out, word);
  AppendPod(out, static_cast<uint32_t>(st.rng.has_cached_normal ? 1 : 0));
  AppendPod(out, st.rng.cached_normal);
  AppendPod(out, static_cast<uint32_t>(st.opt_scalars.size()));
  for (double v : st.opt_scalars) AppendPod(out, v);
  AppendPod(out, static_cast<uint32_t>(st.opt_slots.size()));
  for (const Tensor& t : st.opt_slots) AppendTensor(out, t);
}

Status ReadTrainState(ByteReader* r, TrainState* st) {
  Status s = r->ReadPod(&st->epoch, "epoch");
  if (!s.ok()) return s;
  s = r->ReadPod(&st->best_mrr, "best_mrr");
  if (!s.ok()) return s;
  uint32_t best_count = 0;
  s = r->ReadPod(&best_count, "best-params count");
  if (!s.ok()) return s;
  // lint: allow(raw-resize): count-prefixed deserialization buffer
  st->best_params.resize(best_count);
  for (auto& t : st->best_params) {
    s = ReadTensorInto(r, &t, "best-params tensor");
    if (!s.ok()) return s;
  }
  s = ReadRngState(r, &st->rng);
  if (!s.ok()) return s;
  uint32_t scalar_count = 0;
  s = r->ReadPod(&scalar_count, "optimizer scalar count");
  if (!s.ok()) return s;
  if (scalar_count > 1u << 20) {
    return Status::InvalidArgument(
        "corrupt checkpoint: implausible optimizer scalar count at offset " +
        std::to_string(r->offset()));
  }
  // lint: allow(raw-resize): count-prefixed deserialization buffer
  st->opt_scalars.resize(scalar_count);
  for (auto& v : st->opt_scalars) {
    s = r->ReadPod(&v, "optimizer scalar");
    if (!s.ok()) return s;
  }
  uint32_t slot_count = 0;
  s = r->ReadPod(&slot_count, "optimizer slot count");
  if (!s.ok()) return s;
  if (slot_count > 1u << 20) {
    return Status::InvalidArgument(
        "corrupt checkpoint: implausible optimizer slot count at offset " +
        std::to_string(r->offset()));
  }
  // lint: allow(raw-resize): count-prefixed deserialization buffer
  st->opt_slots.resize(slot_count);
  for (auto& t : st->opt_slots) {
    s = ReadTensorInto(r, &t, "optimizer slot");
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status SaveImpl(const Module& module, const TrainState* state,
                const std::string& path) {
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  AppendPod(&buf, kVersion);
  AppendPod(&buf, state != nullptr ? kFlagHasTrainState : 0u);
  const auto params = module.NamedParameters();
  AppendPod(&buf, static_cast<uint32_t>(params.size()));
  for (const auto& np : params) {
    AppendPod(&buf, static_cast<uint32_t>(np.name.size()));
    buf.append(np.name);
    AppendTensor(&buf, np.variable.value());
  }
  if (state != nullptr) AppendTrainState(&buf, *state);
  const uint32_t crc = Crc32(buf.data(), buf.size());
  AppendPod(&buf, crc);

  auto& fp = robust::Failpoints::Global();
  if (fp.ShouldFail("ckpt.write")) {
    return robust::InjectedFailure("ckpt.write", "writing '" + path + "'");
  }
  if (fp.ShouldFail("ckpt.truncate")) {
    // Simulates a torn direct write (e.g. a copy through a non-atomic
    // channel): half the payload lands, the call still reports success.
    // The CRC catches it at load time.
    return AtomicWriteFile(path, buf.substr(0, buf.size() / 2));
  }
  return AtomicWriteFile(path, buf);
}

/// v1 layout: no flags word, no CRC, stream of params only.
Status LoadLegacyParams(ByteReader* r, const std::string& path,
                        Module* module) {
  uint32_t count = 0;
  Status s = r->ReadPod(&count, "parameter count");
  if (!s.ok()) return s;
  auto params = module->NamedParameters();
  if (count != params.size()) {
    return Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(params.size()));
  }
  for (auto& np : params) {
    uint32_t name_len = 0;
    s = r->ReadPod(&name_len, "name length");
    if (!s.ok()) return s;
    if (name_len > kMaxNameLen) {
      return Status::InvalidArgument(
          "corrupt checkpoint '" + path + "': implausible name length at "
          "offset " + std::to_string(r->offset()));
    }
    std::string name;
    s = r->ReadString(&name, name_len, "parameter name");
    if (!s.ok()) return s;
    if (name != np.name) {
      return Status::FailedPrecondition("parameter name mismatch: expected '" +
                                        np.name + "', found '" + name + "'");
    }
    s = ReadTensorMatching(r, &np.variable.mutable_value(), np.name);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status LoadImpl(const std::string& path, Module* module, TrainState* state,
                bool require_state) {
  if (module == nullptr) {
    return Status::InvalidArgument("null module");
  }
  if (robust::Failpoints::Global().ShouldFail("ckpt.read")) {
    return robust::InjectedFailure("ckpt.read", "reading '" + path + "'");
  }
  auto file = ReadFileToString(path);
  if (!file.ok()) return file.status();
  const std::string& data = file.value();

  ByteReader r(data);
  char magic[8];
  Status s = r.Read(magic, sizeof(magic), "magic");
  if (!s.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a checkpoint");
  }
  uint32_t version = 0;
  s = r.ReadPod(&version, "version");
  if (!s.ok()) return s;
  if (version != kVersionLegacy && version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }

  if (version == kVersionLegacy) {
    if (require_state) {
      return Status::FailedPrecondition(
          "'" + path + "' is a v1 checkpoint with no training state");
    }
    return LoadLegacyParams(&r, path, module);
  }

  // v2: verify the whole-file CRC before trusting any field.
  if (data.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument("'" + path + "' is too short for a CRC");
  }
  const size_t crc_off = data.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(  // lint: allow(data-arith): byte I/O, crc_off = size - 4 with size checked
      &stored_crc, data.data() + crc_off, sizeof(uint32_t));
  const uint32_t computed_crc = Crc32(data.data(), crc_off);
  if (stored_crc != computed_crc) {
    return Status::InvalidArgument(
        "CRC mismatch in '" + path + "': stored " +
        std::to_string(stored_crc) + ", computed " +
        std::to_string(computed_crc) + " over bytes [0, " +
        std::to_string(crc_off) + ")");
  }

  uint32_t flags = 0;
  s = r.ReadPod(&flags, "flags");
  if (!s.ok()) return s;
  s = LoadLegacyParams(&r, path, module);  // v2 param section == v1 layout
  if (!s.ok()) return s;

  const bool has_state = (flags & kFlagHasTrainState) != 0;
  if (require_state && !has_state) {
    return Status::FailedPrecondition("'" + path +
                                      "' carries no training state");
  }
  if (has_state && state != nullptr) {
    s = ReadTrainState(&r, state);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  return SaveImpl(module, nullptr, path);
}

Status SaveCheckpoint(const Module& module, const TrainState& state,
                      const std::string& path) {
  return SaveImpl(module, &state, path);
}

Status LoadCheckpoint(const std::string& path, Module* module) {
  return LoadImpl(path, module, nullptr, /*require_state=*/false);
}

Status LoadCheckpoint(const std::string& path, Module* module,
                      TrainState* state) {
  return LoadImpl(path, module, state, /*require_state=*/true);
}

}  // namespace nn
}  // namespace embsr
