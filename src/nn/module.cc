#include "nn/module.h"

#include "util/check.h"

namespace embsr {
namespace nn {

std::vector<NamedParameter> Module::NamedParameters() const {
  std::vector<NamedParameter> out;
  CollectNamed("", &out);
  return out;
}

std::vector<ag::Variable> Module::Parameters() const {
  std::vector<ag::Variable> out;
  for (const auto& np : NamedParameters()) out.push_back(np.variable);
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t n = 0;
  for (const auto& np : NamedParameters()) n += np.variable.value().size();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::ZeroGrad() {
  for (auto& v : Parameters()) v.ZeroGrad();
}

ag::Variable Module::RegisterParameter(const std::string& name, Tensor init) {
  ag::Variable v(std::move(init), /*requires_grad=*/true);
  params_.push_back({name, v});
  return v;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  EMBSR_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

void Module::CollectNamed(const std::string& prefix,
                          std::vector<NamedParameter>* out) const {
  for (const auto& p : params_) {
    out->push_back({prefix + p.name, p.variable});
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

}  // namespace nn
}  // namespace embsr
