#include "nn/layers.h"

#include <cmath>

#include "prof/op_profiler.h"
#include "util/check.h"

namespace embsr {
namespace nn {

float InitBound(int64_t hidden_dim) {
  EMBSR_CHECK_GT(hidden_dim, 0);
  return 1.0f / std::sqrt(static_cast<float>(hidden_dim));
}

// -- Linear -------------------------------------------------------------------

Linear::Linear(int64_t in_dim, int64_t out_dim, Rng* rng, bool bias)
    : has_bias_(bias) {
  const float b = InitBound(out_dim);
  weight_ = RegisterParameter(
      "weight", Tensor::RandUniform({in_dim, out_dim}, -b, b, rng));
  if (has_bias_) {
    bias_ = RegisterParameter("bias",
                              Tensor::RandUniform({1, out_dim}, -b, b, rng));
  }
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  // Layer-boundary contracts: ops check their own outputs (MakeOp), layers
  // check what callers feed them, so a bad input is reported at the layer
  // the caller actually wrote.
  EMBSR_CHECK_FINITE(x.value());
  ag::Variable y = ag::MatMul(x, weight_);
  if (has_bias_) y = ag::AddRowBroadcast(y, bias_);
  return y;
}

// -- Embedding ----------------------------------------------------------------

Embedding::Embedding(int64_t count, int64_t dim, Rng* rng)
    : count_(count), dim_(dim) {
  const float b = InitBound(dim);
  table_ = RegisterParameter("table",
                             Tensor::RandUniform({count, dim}, -b, b, rng));
}

ag::Variable Embedding::Forward(const std::vector<int64_t>& indices) const {
#if EMBSR_CONTRACTS_ENABLED
  for (const int64_t idx : indices) EMBSR_CHECK_BOUNDS(idx, 0, count_);
#endif
  prof::ComponentScope prof_component("embedding");
  return ag::GatherRows(table_, indices);
}

// -- GRUCell ------------------------------------------------------------------

GRUCell::GRUCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : hidden_dim_(hidden_dim) {
  const float b = InitBound(hidden_dim);
  auto mk = [&](const char* name, int64_t r, int64_t c) {
    return RegisterParameter(name, Tensor::RandUniform({r, c}, -b, b, rng));
  };
  w_ir_ = mk("w_ir", input_dim, hidden_dim);
  w_iz_ = mk("w_iz", input_dim, hidden_dim);
  w_in_ = mk("w_in", input_dim, hidden_dim);
  w_hr_ = mk("w_hr", hidden_dim, hidden_dim);
  w_hz_ = mk("w_hz", hidden_dim, hidden_dim);
  w_hn_ = mk("w_hn", hidden_dim, hidden_dim);
  b_r_ = mk("b_r", 1, hidden_dim);
  b_z_ = mk("b_z", 1, hidden_dim);
  b_in_ = mk("b_in", 1, hidden_dim);
  b_hn_ = mk("b_hn", 1, hidden_dim);
}

ag::Variable GRUCell::Forward(const ag::Variable& x,
                              const ag::Variable& h) const {
  EMBSR_CHECK_FINITE(x.value());
  EMBSR_CHECK_FINITE(h.value());
  using namespace ag;  // NOLINT: local readability for the math
  Variable r = Sigmoid(AddRowBroadcast(
      Add(MatMul(x, w_ir_), MatMul(h, w_hr_)), b_r_));
  Variable z = Sigmoid(AddRowBroadcast(
      Add(MatMul(x, w_iz_), MatMul(h, w_hz_)), b_z_));
  Variable n = Tanh(Add(
      AddRowBroadcast(MatMul(x, w_in_), b_in_),
      Mul(r, AddRowBroadcast(MatMul(h, w_hn_), b_hn_))));
  // h' = (1 - z) * n + z * h
  Variable one_minus_z = AddScalar(Neg(z), 1.0f);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

// -- GRU ----------------------------------------------------------------------

GRU::GRU(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : cell_(input_dim, hidden_dim, rng) {
  RegisterModule("cell", &cell_);
}

ag::Variable GRU::Forward(const ag::Variable& xs) const {
  const int64_t t = xs.value().dim(0);
  EMBSR_CHECK_GT(t, 0);
  prof::ComponentScope prof_component("gru");
  ag::Variable h = ag::Constant(Tensor::Zeros({1, cell_.hidden_dim()}));
  std::vector<ag::Variable> states;
  states.reserve(t);
  for (int64_t i = 0; i < t; ++i) {
    h = cell_.Forward(ag::Row(xs, i), h);
    states.push_back(h);
  }
  return ag::StackRows(states);
}

ag::Variable GRU::ForwardLast(const ag::Variable& xs) const {
  ag::Variable all = Forward(xs);
  const int64_t t = all.value().dim(0);
  return ag::Row(all, t - 1);
}

ag::Variable GRU::ForwardBatchedLast(
    const ag::Variable& xs, int64_t batch,
    const std::vector<Tensor>& step_masks,
    const std::vector<uint8_t>& step_all_valid) const {
  EMBSR_CHECK_GT(batch, 0);
  const int64_t rows = xs.value().dim(0);
  EMBSR_CHECK_EQ(rows % batch, 0);
  const int64_t t = rows / batch;
  EMBSR_CHECK_GT(t, 0);
  EMBSR_CHECK_EQ(static_cast<int64_t>(step_masks.size()), t);
  EMBSR_CHECK_EQ(static_cast<int64_t>(step_all_valid.size()), t);
  prof::ComponentScope prof_component("gru");
  ag::Variable h = ag::Constant(Tensor::Zeros({batch, cell_.hidden_dim()}));
  for (int64_t i = 0; i < t; ++i) {
    ag::Variable h_new =
        cell_.Forward(ag::SliceRows(xs, i * batch, (i + 1) * batch), h);
    // Padded steps keep h by bitwise row copy; the blend is skipped
    // entirely when every session is live at this step (always at batch 1).
    h = step_all_valid[i] != 0
            ? h_new
            : ag::SelectRowsByMask(h_new, h, step_masks[i]);
  }
  return h;
}

// -- LayerNorm ----------------------------------------------------------------

LayerNorm::LayerNorm(int64_t dim) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({1, dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({1, dim}));
}

ag::Variable LayerNorm::Forward(const ag::Variable& x) const {
  EMBSR_CHECK_FINITE(x.value());
  return ag::AddRowBroadcast(
      ag::MulRowBroadcast(ag::LayerNormRows(x), gamma_), beta_);
}

// -- FeedForward ----------------------------------------------------------------

FeedForward::FeedForward(int64_t dim, int64_t hidden_dim, Rng* rng)
    : fc1_(dim, hidden_dim, rng), fc2_(hidden_dim, dim, rng) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

ag::Variable FeedForward::Forward(const ag::Variable& x) const {
  EMBSR_CHECK_FINITE(x.value());
  return fc2_.Forward(ag::Relu(fc1_.Forward(x)));
}

}  // namespace nn
}  // namespace embsr
