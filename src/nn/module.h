#ifndef EMBSR_NN_MODULE_H_
#define EMBSR_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace embsr {
namespace nn {

/// A named trainable parameter handle.
struct NamedParameter {
  std::string name;
  ag::Variable variable;
};

/// Base class for neural network building blocks.
///
/// A Module owns trainable parameters (registered at construction) and may
/// contain child modules. Parameters() flattens the whole subtree for the
/// optimizer; SetTraining toggles train/eval behaviour (dropout) recursively.
/// Modules are neither copyable nor movable: children register raw pointers
/// into their parent, so addresses must stay stable.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its descendants, prefixed by path.
  std::vector<NamedParameter> NamedParameters() const;

  /// Just the variable handles, for optimizers.
  std::vector<ag::Variable> Parameters() const;

  /// Total number of scalar weights in the subtree.
  int64_t ParameterCount() const;

  /// Switches train/eval mode (affects Dropout) for the whole subtree.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Zeroes all gradients in the subtree.
  void ZeroGrad();

 protected:
  /// Registers a leaf parameter initialized with `init`; returns the handle.
  ag::Variable RegisterParameter(const std::string& name, Tensor init);

  /// Registers a child module (not owned).
  void RegisterModule(const std::string& name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<NamedParameter>* out) const;

  std::vector<NamedParameter> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace embsr

#endif  // EMBSR_NN_MODULE_H_
