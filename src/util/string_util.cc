#include "util/string_util.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace embsr {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size(), 0);
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << " " << PadRight(cell, widths[c]) << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&]() {
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "|";
    }
    out << "\n";
  };
  emit_row(header);
  emit_rule();
  for (const auto& row : rows) emit_row(row);
  return out.str();
}

}  // namespace embsr
