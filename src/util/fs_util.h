#ifndef EMBSR_UTIL_FS_UTIL_H_
#define EMBSR_UTIL_FS_UTIL_H_

#include <string>

#include "util/status.h"

namespace embsr {

/// Reads the whole file at `path` into a string. NotFound when the file
/// cannot be opened, Internal on a short read.
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-safe whole-file write: the data is written to a temporary file in
/// the same directory, flushed and fsync'd, then atomically renamed over
/// `path`. Readers therefore never observe a half-written file — after a
/// crash either the old file or the complete new file exists. The temporary
/// is removed on any failure.
Status AtomicWriteFile(const std::string& path, const std::string& data);

}  // namespace embsr

#endif  // EMBSR_UTIL_FS_UTIL_H_
