#ifndef EMBSR_UTIL_CRC32_H_
#define EMBSR_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace embsr {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant).
/// Used by the checkpoint format to detect torn writes and bit rot; a
/// single-bit flip anywhere in the covered range always changes the sum.
///
/// `Crc32(data, n)` computes the checksum of one buffer. For incremental
/// use, seed with `kCrc32Init`, feed chunks through `Crc32Update`, and
/// finalize with `Crc32Final`.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;

uint32_t Crc32Update(uint32_t state, const void* data, size_t n);

inline uint32_t Crc32Final(uint32_t state) { return state ^ 0xFFFFFFFFu; }

inline uint32_t Crc32(const void* data, size_t n) {
  return Crc32Final(Crc32Update(kCrc32Init, data, n));
}

}  // namespace embsr

#endif  // EMBSR_UTIL_CRC32_H_
