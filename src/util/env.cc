#include "util/env.h"

#include <cstdlib>

namespace embsr {

double GetEnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

int GetEnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  long v = std::strtol(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<int>(v);
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  return raw;
}

double BenchScale() { return GetEnvDouble("EMBSR_BENCH_SCALE", 1.0); }

}  // namespace embsr
