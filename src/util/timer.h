#ifndef EMBSR_UTIL_TIMER_H_
#define EMBSR_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace embsr {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Blocks the calling thread for `ns` nanoseconds (no-op for ns <= 0).
/// Lives in util so the layers above can stall (injected latency, backoff
/// waits) without reaching for std::chrono directly — the serve frontend
/// routes every wait through its injectable clock, which points here only
/// in real-time mode.
inline void SleepForNs(int64_t ns) {
  if (ns <= 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

}  // namespace embsr

#endif  // EMBSR_UTIL_TIMER_H_
