#ifndef EMBSR_UTIL_TIMER_H_
#define EMBSR_UTIL_TIMER_H_

#include <chrono>

namespace embsr {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace embsr

#endif  // EMBSR_UTIL_TIMER_H_
