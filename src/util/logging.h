#ifndef EMBSR_UTIL_LOGGING_H_
#define EMBSR_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace embsr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink: collects the message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace embsr

#define EMBSR_LOG(level)                                                  \
  ::embsr::internal_logging::LogMessage(::embsr::LogLevel::k##level,     \
                                        __FILE__, __LINE__)              \
      .stream()

#endif  // EMBSR_UTIL_LOGGING_H_
