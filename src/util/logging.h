#ifndef EMBSR_UTIL_LOGGING_H_
#define EMBSR_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace embsr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error"
/// (case-insensitive). Returns false and leaves `*level` untouched on
/// unknown input. The initial global level is read from EMBSR_LOG_LEVEL the
/// first time a message is logged.
bool ParseLogLevel(const std::string& name, LogLevel* level);

/// Small dense id for the calling thread (0 for the first thread that
/// logs, 1 for the next, ...). Stable for the thread's lifetime.
int LoggingThreadId();

namespace internal_logging {

/// Stream-style log sink: collects the message and emits it on destruction
/// prefixed with wall-clock timestamp, level, thread id and file:line, e.g.
/// `[2026-08-06 12:34:56.789 INFO tid=0 experiment.cc:37] msg`.
///
/// kFatal messages bypass the level filter and abort the process after
/// emitting (the EMBSR_CHECK family in util/check.h routes through this).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace embsr

#define EMBSR_LOG(level)                                                  \
  ::embsr::internal_logging::LogMessage(::embsr::LogLevel::k##level,     \
                                        __FILE__, __LINE__)              \
      .stream()

#endif  // EMBSR_UTIL_LOGGING_H_
