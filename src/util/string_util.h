#ifndef EMBSR_UTIL_STRING_UTIL_H_
#define EMBSR_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace embsr {

/// Joins `parts` with `sep` between them.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` at each occurrence of `sep`; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Formats a double with `digits` decimal places, e.g. 12.34.
std::string FormatDouble(double value, int digits = 2);

/// Left-pads or truncates `s` to exactly `width` characters.
std::string PadLeft(const std::string& s, size_t width);

/// Right-pads or truncates `s` to exactly `width` characters.
std::string PadRight(const std::string& s, size_t width);

/// Renders an aligned plain-text table: one header row plus data rows.
/// Used by the bench harnesses to print paper-style tables.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

}  // namespace embsr

#endif  // EMBSR_UTIL_STRING_UTIL_H_
