#ifndef EMBSR_UTIL_STATUS_H_
#define EMBSR_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace embsr {

/// Error codes used across the library. Modeled after the RocksDB/Abseil
/// convention: library entry points that can fail return a Status (or a
/// Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  /// The caller's deadline expired before the operation completed; any
  /// partial work was abandoned, not returned (serving-path contract).
  kDeadlineExceeded,
  /// A bounded resource (admission queue, capacity budget) is full and the
  /// request was shed instead of queued unboundedly.
  kResourceExhausted,
  /// A dependency is temporarily down (circuit open, transient fault);
  /// retrying later may succeed.
  kUnavailable,
};

/// A Status describes the outcome of an operation: OK, or an error code
/// together with a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: batch size must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored Result aborts the process (see CHECK in check.h), so callers
/// must test ok() first on fallible paths.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace embsr

#endif  // EMBSR_UTIL_STATUS_H_
