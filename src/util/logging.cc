#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include "util/env.h"

namespace embsr {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

void InitLevelFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const std::string raw = GetEnvString("EMBSR_LOG_LEVEL", "");
    LogLevel level;
    if (!raw.empty() && ParseLogLevel(raw, &level)) SetLogLevel(level);
  });
}

/// "2026-08-06 12:34:56.789" in UTC.
std::string FormatTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  // Sized so gcc can prove the worst-case snprintf expansion fits (a year
  // outside [0, 9999] would otherwise trip -Wformat-truncation).
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

int LoggingThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  InitLevelFromEnvOnce();
  stream_ << "[" << FormatTimestamp() << " " << LevelName(level) << " tid="
          << LoggingThreadId() << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  // Fatal messages are never filtered: a failed invariant check must leave
  // its diagnostic behind no matter what EMBSR_LOG_LEVEL says.
  if (level_ != LogLevel::kFatal &&
      static_cast<int>(level_) <
          g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace embsr
