#ifndef EMBSR_UTIL_ENV_H_
#define EMBSR_UTIL_ENV_H_

#include <string>

namespace embsr {

/// Returns the environment variable's value, or `fallback` if unset/invalid.
double GetEnvDouble(const char* name, double fallback);
int GetEnvInt(const char* name, int fallback);
std::string GetEnvString(const char* name, const std::string& fallback);

/// Global workload multiplier for the benchmark harnesses, read from
/// EMBSR_BENCH_SCALE (default 1.0). Values < 1 shrink dataset sizes and
/// epoch counts, values > 1 grow them toward the paper's scale.
double BenchScale();

}  // namespace embsr

#endif  // EMBSR_UTIL_ENV_H_
