#ifndef EMBSR_UTIL_RNG_H_
#define EMBSR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace embsr {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). One instance per logical stream; never shared across threads.
/// All experiments in this repo are seeded, so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit word.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Weights must be non-negative and not all zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Geometric-ish sample: number of successes before failure, capped.
  int GeometricCapped(double continue_prob, int cap);

  /// In-place Fisher-Yates shuffle of indices.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Builds Zipf-distributed weights: weight[i] ~ 1 / (i+1)^alpha.
std::vector<double> ZipfWeights(size_t n, double alpha);

}  // namespace embsr

#endif  // EMBSR_UTIL_RNG_H_
