#ifndef EMBSR_UTIL_RNG_H_
#define EMBSR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace embsr {

/// Complete serializable generator state: the xoshiro words plus the
/// Box-Muller carry. Restoring it reproduces the stream bit-for-bit, which
/// is what makes checkpointed training exactly resumable.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). One instance per logical stream; never shared across threads.
/// All experiments in this repo are seeded, so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Snapshots / restores the full generator state (see RngState).
  RngState SaveState() const;
  void RestoreState(const RngState& state);

  /// Uniform 64-bit word.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Weights must be non-negative and not all zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Geometric-ish sample: number of successes before failure, capped.
  int GeometricCapped(double continue_prob, int cap);

  /// In-place Fisher-Yates shuffle of indices.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Builds Zipf-distributed weights: weight[i] ~ 1 / (i+1)^alpha.
std::vector<double> ZipfWeights(size_t n, double alpha);

/// Derives an independent stream seed from (seed, salt) via splitmix64
/// mixing. Used to give each training epoch its own shuffle stream so the
/// visit order of epoch E depends only on (config seed, E) — never on how
/// many epochs ran before it — which is what lets a resumed run replay the
/// exact schedule of an uninterrupted one.
uint64_t DeriveSeed(uint64_t seed, uint64_t salt);

}  // namespace embsr

#endif  // EMBSR_UTIL_RNG_H_
