#ifndef EMBSR_UTIL_CHECK_H_
#define EMBSR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal-invariant assertions. These are *not* for validating user input
/// (return Status for that); they guard programmer errors inside the library
/// and abort with a diagnostic when violated. They stay on in release builds
/// because a silently corrupt tensor shape is worse than a crash.

#define EMBSR_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define EMBSR_CHECK_MSG(cond, ...)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s: ", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define EMBSR_CHECK_EQ(a, b) EMBSR_CHECK((a) == (b))
#define EMBSR_CHECK_NE(a, b) EMBSR_CHECK((a) != (b))
#define EMBSR_CHECK_LT(a, b) EMBSR_CHECK((a) < (b))
#define EMBSR_CHECK_LE(a, b) EMBSR_CHECK((a) <= (b))
#define EMBSR_CHECK_GT(a, b) EMBSR_CHECK((a) > (b))
#define EMBSR_CHECK_GE(a, b) EMBSR_CHECK((a) >= (b))

namespace embsr::internal_check {

/// Extracts a Status (by value — the argument may be a temporary whose
/// lifetime ends with the enclosing statement) from a Status or Result<T>.
template <typename T>
auto AsStatus(const T& status_or_result) {
  if constexpr (requires { status_or_result.status(); }) {
    return status_or_result.status();
  } else {
    return status_or_result;
  }
}

}  // namespace embsr::internal_check

/// Checks that an embsr::Status (or Result) is OK.
#define EMBSR_CHECK_OK(expr)                                                 \
  do {                                                                       \
    const auto embsr_check_ok_status =                                       \
        ::embsr::internal_check::AsStatus((expr));                           \
    if (!embsr_check_ok_status.ok()) {                                       \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, embsr_check_ok_status.ToString().c_str());      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // EMBSR_UTIL_CHECK_H_
