#ifndef EMBSR_UTIL_CHECK_H_
#define EMBSR_UTIL_CHECK_H_

#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>

#include "util/logging.h"

/// Internal-invariant assertions. These are *not* for validating user input
/// (return Status for that); they guard programmer errors inside the library
/// and abort with a diagnostic when violated. They stay on in release builds
/// because a silently corrupt tensor shape is worse than a crash.
///
/// Failures route through util/logging as a FATAL record (timestamp, level,
/// thread id, file:line), so a crashing run leaves the same trail as its
/// ordinary logs, then abort().

#define EMBSR_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      EMBSR_LOG(Fatal) << "CHECK failed: " << #cond;                         \
    }                                                                        \
  } while (0)

namespace embsr::internal_check {

/// printf-style formatting for EMBSR_CHECK_MSG.
__attribute__((format(printf, 1, 2))) inline std::string FormatMsg(
    const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace embsr::internal_check

#define EMBSR_CHECK_MSG(cond, ...)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      EMBSR_LOG(Fatal) << "CHECK failed: " << #cond << ": "                  \
                       << ::embsr::internal_check::FormatMsg(__VA_ARGS__);   \
    }                                                                        \
  } while (0)

/// Binary comparisons print both operand values (operands must be
/// ostream-printable; evaluated exactly once).
#define EMBSR_CHECK_BINOP(op, a, b)                                          \
  do {                                                                       \
    auto&& embsr_check_a = (a);                                              \
    auto&& embsr_check_b = (b);                                              \
    if (!(embsr_check_a op embsr_check_b)) {                                 \
      EMBSR_LOG(Fatal) << "CHECK failed: " << #a " " #op " " #b << " ("      \
                       << embsr_check_a << " vs " << embsr_check_b << ")";   \
    }                                                                        \
  } while (0)

#define EMBSR_CHECK_EQ(a, b) EMBSR_CHECK_BINOP(==, a, b)
#define EMBSR_CHECK_NE(a, b) EMBSR_CHECK_BINOP(!=, a, b)
#define EMBSR_CHECK_LT(a, b) EMBSR_CHECK_BINOP(<, a, b)
#define EMBSR_CHECK_LE(a, b) EMBSR_CHECK_BINOP(<=, a, b)
#define EMBSR_CHECK_GT(a, b) EMBSR_CHECK_BINOP(>, a, b)
#define EMBSR_CHECK_GE(a, b) EMBSR_CHECK_BINOP(>=, a, b)

namespace embsr::internal_check {

/// Extracts a Status (by value — the argument may be a temporary whose
/// lifetime ends with the enclosing statement) from a Status or Result<T>.
template <typename T>
auto AsStatus(const T& status_or_result) {
  if constexpr (requires { status_or_result.status(); }) {
    return status_or_result.status();
  } else {
    return status_or_result;
  }
}

}  // namespace embsr::internal_check

/// Checks that an embsr::Status (or Result) is OK.
#define EMBSR_CHECK_OK(expr)                                                 \
  do {                                                                       \
    const auto embsr_check_ok_status =                                       \
        ::embsr::internal_check::AsStatus((expr));                           \
    if (!embsr_check_ok_status.ok()) {                                       \
      EMBSR_LOG(Fatal) << "CHECK_OK failed: "                                \
                       << embsr_check_ok_status.ToString();                  \
    }                                                                        \
  } while (0)

// ---- Debug-mode tensor contracts -------------------------------------------
//
// EMBSR_CHECK_SHAPE / EMBSR_CHECK_FINITE / EMBSR_CHECK_BOUNDS guard tensor-op
// and layer preconditions (shape agreement, finiteness, index bounds). They
// are O(size) scans in the worst case, so they compile to no-ops unless the
// EMBSR_CHECK_CONTRACTS CMake option is on (which defines
// EMBSR_CHECK_CONTRACTS=1 for the whole build); release benches are
// unaffected. The helpers are templates on "anything with shape()/data()" so
// this header never has to include tensor/tensor.h (util sits below tensor
// in the layer DAG).

namespace embsr::internal_check {

template <typename TensorT>
void ContractShapeEq(const TensorT& a, const TensorT& b, const char* a_name,
                     const char* b_name, const char* file, int line) {
  if (a.shape() == b.shape()) return;
  internal_logging::LogMessage(LogLevel::kFatal, file, line).stream()
      << "shape contract violated: " << a_name << " is " << a.ShapeString()
      << " but " << b_name << " is " << b.ShapeString();
}

template <typename TensorT>
void ContractFinite(const TensorT& t, const char* t_name, const char* file,
                    int line) {
  const float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(p[i])) {
      internal_logging::LogMessage(LogLevel::kFatal, file, line).stream()
          << "finite contract violated: " << t_name << " element " << i
          << " of " << t.size() << " is " << p[i];
    }
  }
}

inline void ContractBounds(int64_t value, int64_t lo, int64_t hi,
                           const char* expr, const char* file, int line) {
  if (value >= lo && value < hi) return;
  internal_logging::LogMessage(LogLevel::kFatal, file, line).stream()
      << "bounds contract violated: " << expr << " = " << value
      << " not in [" << lo << ", " << hi << ")";
}

}  // namespace embsr::internal_check

#if defined(EMBSR_CHECK_CONTRACTS) && EMBSR_CHECK_CONTRACTS
#define EMBSR_CONTRACTS_ENABLED 1
/// Both tensors must have identical shapes.
#define EMBSR_CHECK_SHAPE(a, b)                                       \
  ::embsr::internal_check::ContractShapeEq((a), (b), #a, #b, __FILE__, \
                                           __LINE__)
/// Every element of the tensor must be finite (no NaN/Inf).
#define EMBSR_CHECK_FINITE(t) \
  ::embsr::internal_check::ContractFinite((t), #t, __FILE__, __LINE__)
/// `i` must lie in the half-open range [lo, hi).
#define EMBSR_CHECK_BOUNDS(i, lo, hi)                                    \
  ::embsr::internal_check::ContractBounds((i), (lo), (hi), #i, __FILE__, \
                                          __LINE__)
#else
#define EMBSR_CONTRACTS_ENABLED 0
#define EMBSR_CHECK_SHAPE(a, b) ((void)0)
#define EMBSR_CHECK_FINITE(t) ((void)0)
#define EMBSR_CHECK_BOUNDS(i, lo, hi) ((void)0)
#endif

#endif  // EMBSR_UTIL_CHECK_H_
