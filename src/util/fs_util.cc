#include "util/fs_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace embsr {

namespace {

std::string Errno() { return std::strerror(errno); }

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return Status::NotFound("cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string data(static_cast<size_t>(size), '\0');
  in.read(data.data(), size);
  if (!in.good() && size > 0) {
    return Status::Internal("short read from '" + path + "'");
  }
  return data;
}

Status AtomicWriteFile(const std::string& path, const std::string& data) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open '" + tmp + "' for writing: " +
                            Errno());
  }
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(  // lint: allow(data-arith): byte I/O, off < size by loop condition
        fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = Errno();
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("write to '" + tmp + "' failed: " + err);
    }
    off += static_cast<size_t>(n);
  }
  // Data must be durable before the rename publishes it, otherwise a crash
  // can leave a fully-renamed file with missing tail pages.
  if (::fsync(fd) != 0) {
    const std::string err = Errno();
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("fsync of '" + tmp + "' failed: " + err);
  }
  if (::close(fd) != 0) {
    const std::string err = Errno();
    ::unlink(tmp.c_str());
    return Status::Internal("close of '" + tmp + "' failed: " + err);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = Errno();
    ::unlink(tmp.c_str());
    return Status::Internal("rename '" + tmp + "' -> '" + path +
                            "' failed: " + err);
  }
  return Status::OK();
}

}  // namespace embsr
