#ifndef EMBSR_DATA_SESSION_H_
#define EMBSR_DATA_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace embsr {

/// One micro-behavior: a user performs `operation` on `item` (the tuple
/// s_i = (v_i, o_i) of the paper, Sec. II-B).
struct MicroBehavior {
  int64_t item = 0;
  int64_t operation = 0;

  friend bool operator==(const MicroBehavior& a,
                         const MicroBehavior& b) = default;
};

/// A raw interaction session: the chronological micro-behavior sequence S_t.
struct Session {
  std::vector<MicroBehavior> events;
};

/// A preprocessed training/evaluation example.
///
/// Successive micro-behaviors on the same item are merged into one macro
/// item with its operation sub-sequence (Sec. II-B). The *last* macro item
/// of the session is the prediction target and is removed from the inputs
/// (including its micro-behaviors) to avoid the v_t == v_{t+1} leakage the
/// paper warns about.
struct Example {
  /// Macro-item sequence S^v (input part, length n-1 of the paper's n).
  std::vector<int64_t> macro_items;
  /// Per macro item, its micro-operation sequence o^i (parallel to
  /// macro_items; each inner vector is non-empty).
  std::vector<std::vector<int64_t>> macro_ops;
  /// The flat micro-behavior sequence (items) feeding the self-attention.
  std::vector<int64_t> flat_items;
  /// The flat micro-behavior sequence (operations), parallel to flat_items.
  std::vector<int64_t> flat_ops;
  /// Ground-truth next macro item v^{n}.
  int64_t target = 0;
};

/// Fully preprocessed dataset: contiguous item/operation ids and the three
/// splits of the paper's protocol (70% / 10% / 20%).
struct ProcessedDataset {
  std::string name;
  int64_t num_items = 0;
  int64_t num_operations = 0;
  std::vector<Example> train;
  std::vector<Example> valid;
  std::vector<Example> test;

  /// Total number of micro-behaviors over all examples (Table II row).
  int64_t TotalMicroBehaviors() const;
};

}  // namespace embsr

#endif  // EMBSR_DATA_SESSION_H_
