#include "data/preprocess.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace embsr {

int64_t ProcessedDataset::TotalMicroBehaviors() const {
  int64_t n = 0;
  for (const auto* split : {&train, &valid, &test}) {
    for (const auto& ex : *split) {
      n += static_cast<int64_t>(ex.flat_items.size()) + 1;  // + target event
    }
  }
  return n;
}

void MergeSuccessive(const std::vector<MicroBehavior>& events,
                     std::vector<int64_t>* macro_items,
                     std::vector<std::vector<int64_t>>* macro_ops) {
  macro_items->clear();
  macro_ops->clear();
  for (const auto& e : events) {
    if (macro_items->empty() || macro_items->back() != e.item) {
      macro_items->push_back(e.item);
      macro_ops->emplace_back();
    }
    macro_ops->back().push_back(e.operation);
  }
}

namespace {

/// Builds an Example from a cleaned, remapped session. Returns false if the
/// session is unusable (fewer than two macro items, or empty input under the
/// operation restriction).
bool BuildExample(const std::vector<MicroBehavior>& events,
                  int64_t restrict_op, Example* out) {
  std::vector<int64_t> macro_items;
  std::vector<std::vector<int64_t>> macro_ops;
  MergeSuccessive(events, &macro_items, &macro_ops);
  if (macro_items.size() < 2) return false;

  const int64_t target = macro_items.back();

  // Find where the trailing run of the target item starts; events before it
  // form the model input (Sec. II-B: predicting the next *macro* item, so
  // the target's own micro-behaviors are withheld).
  size_t input_end = events.size();
  while (input_end > 0 && events[input_end - 1].item == target) --input_end;
  EMBSR_CHECK_GT(input_end, 0u);

  std::vector<MicroBehavior> input_events(events.begin(),
                                          events.begin() + input_end);
  if (restrict_op >= 0) {
    std::vector<MicroBehavior> kept;
    for (const auto& e : input_events) {
      if (e.operation == restrict_op) kept.push_back(e);
    }
    input_events = std::move(kept);
    if (input_events.empty()) return false;
  }

  out->target = target;
  MergeSuccessive(input_events, &out->macro_items, &out->macro_ops);
  out->flat_items.clear();
  out->flat_ops.clear();
  out->flat_items.reserve(input_events.size());
  out->flat_ops.reserve(input_events.size());
  for (const auto& e : input_events) {
    out->flat_items.push_back(e.item);
    out->flat_ops.push_back(e.operation);
  }
  return true;
}

}  // namespace

Result<ProcessedDataset> Preprocess(const std::vector<Session>& sessions,
                                    int64_t num_operations,
                                    const PreprocessConfig& config,
                                    const std::string& name) {
  if (sessions.empty()) {
    return Status::InvalidArgument("no sessions to preprocess");
  }
  if (config.train_fraction <= 0.0 ||
      config.train_fraction + config.valid_fraction >= 1.0) {
    return Status::InvalidArgument("invalid split fractions");
  }

  // 1. Item support over all micro-behaviors.
  std::unordered_map<int64_t, int64_t> support;
  for (const auto& s : sessions) {
    for (const auto& e : s.events) ++support[e.item];
  }

  // 2. Drop low-support items; truncate long sessions to their most recent
  //    events; keep sessions that still have at least two macro items.
  std::vector<std::vector<MicroBehavior>> cleaned;
  cleaned.reserve(sessions.size());
  for (const auto& s : sessions) {
    std::vector<MicroBehavior> events;
    events.reserve(s.events.size());
    for (const auto& e : s.events) {
      if (support[e.item] >= config.min_item_support) events.push_back(e);
    }
    if (config.max_session_events > 0 &&
        static_cast<int>(events.size()) > config.max_session_events) {
      events.erase(events.begin(),
                   events.end() - config.max_session_events);
    }
    std::vector<int64_t> mi;
    std::vector<std::vector<int64_t>> mo;
    MergeSuccessive(events, &mi, &mo);
    if (mi.size() < 2) continue;  // single-item sessions are excluded
    cleaned.push_back(std::move(events));
  }
  if (cleaned.size() < 10) {
    return Status::FailedPrecondition(
        "too few usable sessions after filtering");
  }

  // 3. Split 70/10/20.
  if (config.shuffle) {
    Rng rng(config.shuffle_seed);
    rng.Shuffle(&cleaned);
  }
  const size_t n = cleaned.size();
  const size_t n_train = static_cast<size_t>(n * config.train_fraction);
  const size_t n_valid = static_cast<size_t>(n * config.valid_fraction);

  // 4. Item vocabulary from the training split only.
  std::unordered_map<int64_t, int64_t> vocab;
  for (size_t i = 0; i < n_train; ++i) {
    for (const auto& e : cleaned[i]) {
      if (!vocab.contains(e.item)) {
        const int64_t id = static_cast<int64_t>(vocab.size());
        vocab[e.item] = id;
      }
    }
  }
  if (vocab.empty()) return Status::FailedPrecondition("empty vocabulary");

  ProcessedDataset out;
  out.name = name;
  out.num_items = static_cast<int64_t>(vocab.size());
  out.num_operations = num_operations;

  auto emit_split = [&](size_t begin, size_t end, bool drop_unseen,
                        std::vector<Example>* dst) {
    for (size_t i = begin; i < end; ++i) {
      std::vector<MicroBehavior> events;
      events.reserve(cleaned[i].size());
      bool ok = true;
      for (const auto& e : cleaned[i]) {
        auto it = vocab.find(e.item);
        if (it == vocab.end()) {
          if (drop_unseen) continue;  // skip unseen item events
          ok = false;
          break;
        }
        events.push_back({it->second, e.operation});
      }
      if (!ok || events.empty()) continue;
      Example ex;
      if (BuildExample(events, config.restrict_macro_to_operation, &ex)) {
        dst->push_back(std::move(ex));
      }
    }
  };

  emit_split(0, n_train, /*drop_unseen=*/false, &out.train);
  emit_split(n_train, n_train + n_valid, /*drop_unseen=*/true, &out.valid);
  emit_split(n_train + n_valid, n, /*drop_unseen=*/true, &out.test);

  if (out.train.empty() || out.test.empty()) {
    return Status::FailedPrecondition("a split came out empty");
  }
  return out;
}

BatchIterator::BatchIterator(size_t n, size_t batch_size, Rng* rng)
    : batch_size_(batch_size == 0 ? 1 : batch_size) {
  order_.resize(n);  // lint: allow(raw-resize): index permutation
  for (size_t i = 0; i < n; ++i) order_[i] = i;
  if (rng != nullptr) rng->Shuffle(&order_);
}

std::vector<size_t> BatchIterator::Next() {
  std::vector<size_t> out;
  const size_t end = std::min(pos_ + batch_size_, order_.size());
  out.assign(order_.begin() + pos_, order_.begin() + end);
  pos_ = end;
  return out;
}

}  // namespace embsr
