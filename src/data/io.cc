#include "data/io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "robust/failpoint.h"
#include "util/string_util.h"

namespace embsr {

Status WriteSessionsCsv(const std::vector<Session>& sessions,
                        const std::string& path) {
  if (robust::Failpoints::Global().ShouldFail("io.write")) {
    return robust::InjectedFailure("io.write", "write to '" + path + "'");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  out << "session_id,item_id,operation_id\n";
  for (size_t sid = 0; sid < sessions.size(); ++sid) {
    for (const auto& e : sessions[sid].events) {
      out << sid << ',' << e.item << ',' << e.operation << '\n';
    }
  }
  out.flush();
  if (!out.good()) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::vector<Session>> ReadSessionsCsv(const std::string& path) {
  if (robust::Failpoints::Global().ShouldFail("io.read")) {
    return robust::InjectedFailure("io.read", "read of '" + path + "'");
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty file '" + path + "'");
  }
  // Tolerate CRLF exports: strip one trailing '\r' per line.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != "session_id,item_id,operation_id") {
    return Status::InvalidArgument("bad header in '" + path + "': " + line);
  }

  std::vector<Session> sessions;
  int64_t current_sid = -1;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 3) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 3 fields");
    }
    int64_t values[3] = {0, 0, 0};
    bool numeric = true;
    bool overflow = false;
    for (int f = 0; f < 3; ++f) {
      char* end = nullptr;
      errno = 0;
      values[f] = std::strtoll(fields[f].c_str(), &end, 10);
      numeric = numeric && end != fields[f].c_str() && *end == '\0';
      overflow = overflow || errno == ERANGE;
    }
    if (!numeric) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": non-numeric field");
    }
    if (overflow) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": id out of int64 range");
    }
    const int64_t sid = values[0], item = values[1], op = values[2];
    if (sid < 0 || item < 0 || op < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": negative id");
    }
    if (sid != current_sid) {
      // New session. Rows of one session must be contiguous; a jump back to
      // an earlier id would silently merge sessions, so reject it.
      if (!sessions.empty() && sid < current_sid) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": session ids must be non-decreasing");
      }
      sessions.emplace_back();
      current_sid = sid;
    }
    sessions.back().events.push_back({item, op});
  }
  return sessions;
}

}  // namespace embsr
