#ifndef EMBSR_DATA_IO_H_
#define EMBSR_DATA_IO_H_

#include <string>
#include <vector>

#include "data/session.h"
#include "util/status.h"

namespace embsr {

/// On-disk interchange for micro-behavior logs.
///
/// Format: CSV with a header, one micro-behavior per line,
///
///   session_id,item_id,operation_id
///
/// sorted by session and time within each session (rows of one session must
/// be contiguous; their order is the chronological event order). This is
/// the shape the public JD/Trivago dumps use after column projection, so a
/// downstream user can export their log with one SQL query.

/// Writes sessions to `path`. Session ids are assigned 0..n-1.
[[nodiscard]] Status WriteSessionsCsv(const std::vector<Session>& sessions,
                                      const std::string& path);

/// Reads sessions from `path`. Fails with InvalidArgument on malformed
/// rows, negative or out-of-range ids, or a missing header — never aborts
/// on bad input. CRLF line endings are tolerated. The `io.read` failpoint
/// injects a read failure here (see robust/failpoint.h).
[[nodiscard]] Result<std::vector<Session>> ReadSessionsCsv(
    const std::string& path);

}  // namespace embsr

#endif  // EMBSR_DATA_IO_H_
