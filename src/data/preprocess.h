#ifndef EMBSR_DATA_PREPROCESS_H_
#define EMBSR_DATA_PREPROCESS_H_

#include <string>
#include <vector>

#include "data/session.h"
#include "util/rng.h"
#include "util/status.h"

namespace embsr {

/// Knobs of the paper's preprocessing protocol (Sec. V-A-1).
struct PreprocessConfig {
  /// Items occurring fewer than this many times are removed (50 for the JD
  /// datasets, 5 for Trivago in the paper).
  int min_item_support = 5;
  /// Maximum number of micro-behaviors kept per session (long sessions keep
  /// their most recent events). 0 disables truncation.
  int max_session_events = 50;
  /// Split fractions; test gets the remainder.
  double train_fraction = 0.7;
  double valid_fraction = 0.1;
  /// Shuffle sessions before splitting.
  bool shuffle = true;
  uint64_t shuffle_seed = 17;
  /// If >= 0, keep only events with this operation id when forming the
  /// *macro item sequence* (the supplement's "single type of operation"
  /// protocol); the ground truth is kept consistent with the full data.
  int64_t restrict_macro_to_operation = -1;
};

/// Runs the full preprocessing pipeline on raw sessions:
///   1. drop items with support below `min_item_support`,
///   2. merge successive same-item micro-behaviors into macro items,
///   3. drop sessions with fewer than two macro items,
///   4. split 70/10/20,
///   5. restrict valid/test to items seen in training,
///   6. emit Examples with the last macro item as target.
///
/// `num_operations` is the size of the operation vocabulary (operation ids in
/// the sessions must already be dense in [0, num_operations)).
Result<ProcessedDataset> Preprocess(const std::vector<Session>& sessions,
                                    int64_t num_operations,
                                    const PreprocessConfig& config,
                                    const std::string& name);

/// Merges successive same-item events: returns macro items and their
/// per-item operation runs. Exposed for tests and the graph builder.
void MergeSuccessive(const std::vector<MicroBehavior>& events,
                     std::vector<int64_t>* macro_items,
                     std::vector<std::vector<int64_t>>* macro_ops);

/// Mini-batch index iterator: shuffles [0, n) and yields chunks.
class BatchIterator {
 public:
  BatchIterator(size_t n, size_t batch_size, Rng* rng);

  /// Next chunk of indices; empty when exhausted.
  std::vector<size_t> Next();

  bool Done() const { return pos_ >= order_.size(); }

 private:
  std::vector<size_t> order_;
  size_t batch_size_;
  size_t pos_ = 0;
};

}  // namespace embsr

#endif  // EMBSR_DATA_PREPROCESS_H_
