#ifndef EMBSR_PAR_THREAD_POOL_H_
#define EMBSR_PAR_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace embsr {
namespace par {

/// Deterministic fork-join thread pool — the substrate under every parallel
/// kernel and loop in this repo.
///
/// Design constraints, in priority order:
///   1. *Determinism.* The pool never decides what work exists — callers
///      split an index range into fixed chunks and the pool only decides
///      which thread runs which chunk. As long as chunk outputs are
///      disjoint and each chunk's computation is self-contained (the kernel
///      contract, DESIGN.md §11), results are bit-identical at every thread
///      count, including 1.
///   2. *Serial fallback.* `EMBSR_THREADS=1` (or a pool sized 1) runs every
///      task inline on the calling thread — no worker threads are spawned
///      at all, so the serial path is exactly the pre-pool code path.
///   3. *No nesting.* A task submitted from inside a pool worker runs
///      inline on that worker. This makes "parallel outer loop, serial
///      inner kernels" the automatic behaviour for nested parallelism
///      (e.g. a parallel evaluator calling parallel MatMul), which is what
///      preserves per-cell determinism in experiment sweeps.
///
/// Scheduling is a shared atomic chunk cursor (self-balancing, no work
/// stealing, no per-thread deques); the submitting thread participates in
/// the chunk loop, so a pool of N threads applies N+1-way effective
/// parallelism only when workers are otherwise idle and degrades to the
/// caller doing everything if workers are busy.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining lane).
  /// `threads <= 1` spawns nothing and makes Run() purely inline.
  explicit ThreadPool(int threads);

  /// Joins all workers; outstanding Run() calls must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured lane count (workers + the calling thread), >= 1.
  int threads() const { return threads_; }

  /// Executes `fn(chunk)` for every chunk in [0, num_chunks). Blocks until
  /// all chunks finished. Chunks are claimed dynamically but each runs
  /// exactly once. The first exception thrown by any chunk is rethrown on
  /// the calling thread after the task set drains (remaining chunks are
  /// skipped, not interrupted). Calls from inside a worker run inline.
  /// Concurrent external Run() calls are serialized.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn);

  /// True while the current thread is executing pool work — as a worker or
  /// as a submitter participating in its own task set. Used to suppress
  /// nested parallelism.
  static bool InParallelRegion();

  /// Process-global pool, lazily sized from EMBSR_THREADS (default: the
  /// hardware concurrency; 1 = strict serial). See also SetThreadCount.
  static ThreadPool& Global();

 private:
  struct TaskSet;

  void WorkerLoop(int lane);
  void RunChunks(TaskSet* task);

  const int threads_;
  // lint: allow(raw-thread): the pool is the one sanctioned thread owner
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards task_ and stop_
  std::condition_variable wake_;   // workers wait here for a task set
  std::condition_variable done_;   // submitter waits here for completion
  std::shared_ptr<TaskSet> task_;  // currently running task set, if any
  bool stop_ = false;

  std::mutex run_mu_;  // serializes external Run() submissions
};

/// Lane count of the global pool (>= 1): the effective value of
/// EMBSR_THREADS after defaulting and clamping, or the SetThreadCount
/// override.
int ThreadCount();

/// Replaces the global pool with one of `threads` lanes (<= 0 restores the
/// EMBSR_THREADS/default sizing). Blocks until the old pool drains. For
/// tests and benchmarks that sweep thread counts; not safe to call
/// concurrently with in-flight parallel work.
void SetThreadCount(int threads);

/// Splits [begin, end) into contiguous chunks of at most `grain` indices
/// and runs `fn(chunk_begin, chunk_end)` for each on the global pool.
/// Every index is covered exactly once. Runs inline — no pool touch at
/// all — when the range fits one chunk, the pool is serial, or the caller
/// is already a pool worker.
void For(int64_t begin, int64_t end, int64_t grain,
         const std::function<void(int64_t, int64_t)>& fn);

}  // namespace par
}  // namespace embsr

#endif  // EMBSR_PAR_THREAD_POOL_H_
