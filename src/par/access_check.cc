#include "par/access_check.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace embsr {
namespace par {
namespace internal {

namespace {

/// Kernel name of the innermost active serial-reduction scope, or null.
thread_local const char* t_serial_reduction = nullptr;

obs::Counter* CheckedLoopCounter() {
  static obs::Counter* counter =
      obs::Registry::Global().GetCounter("par/contract_checked_loops");
  return counter;
}

}  // namespace

void AccessChecker::AddChunk(const AccessSet& set) {
  const int64_t chunk = num_chunks_++;
  for (const AccessSet::Range& r : set.ranges()) {
    if (r.begin >= r.end) continue;  // empty declarations are vacuous
    Entry e{r.buf, r.begin, r.end, chunk};
    (r.write ? writes_ : reads_).push_back(e);
  }
}

void AccessChecker::Verify() const {
  CheckedLoopCounter()->Increment();

  auto by_buf_begin = [](const Entry& a, const Entry& b) {
    if (a.buf != b.buf) return a.buf < b.buf;
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.end < b.end;
  };
  std::vector<Entry> writes = writes_;
  std::sort(writes.begin(), writes.end(), by_buf_begin);

  // 1. Writes must partition: overlapping write ranges are only legal when
  // both come from the same chunk (one lane may re-touch its own output).
  // Sweep each buffer's sorted ranges, merging same-chunk overlaps; the
  // first cross-chunk overlap aborts, so tracking one chunk id suffices.
  for (size_t i = 1; i < writes.size(); ++i) {
    const Entry& prev = writes[i - 1];
    Entry& cur = writes[i];
    if (prev.buf != cur.buf || cur.begin >= prev.end) continue;
    EMBSR_CHECK_MSG(
        prev.chunk == cur.chunk,
        "access contract violated: kernel %s declares overlapping writes to "
        "buffer %p — chunk %lld writes [%lld, %lld) and chunk %lld writes "
        "[%lld, %lld)",
        kernel_, prev.buf, static_cast<long long>(prev.chunk),
        static_cast<long long>(prev.begin), static_cast<long long>(prev.end),
        static_cast<long long>(cur.chunk), static_cast<long long>(cur.begin),
        static_cast<long long>(cur.end));
    // Same chunk: extend so a later chunk overlapping either range is
    // still caught against the merged span.
    if (cur.end < prev.end) cur.end = prev.end;
    cur.begin = prev.begin;
  }

  // 2. No chunk may read another chunk's output: reading a foreign write
  // range would make the result depend on chunk execution order.
  for (const Entry& r : reads_) {
    for (const Entry& w : writes_) {
      if (w.buf != r.buf || w.chunk == r.chunk) continue;
      if (r.begin < w.end && w.begin < r.end) {
        EMBSR_CHECK_MSG(
            false,
            "access contract violated: kernel %s chunk %lld reads "
            "[%lld, %lld) of buffer %p which chunk %lld writes as "
            "[%lld, %lld)",
            kernel_, static_cast<long long>(r.chunk),
            static_cast<long long>(r.begin), static_cast<long long>(r.end),
            r.buf, static_cast<long long>(w.chunk),
            static_cast<long long>(w.begin), static_cast<long long>(w.end));
      }
    }
  }
}

const char* EnterSerialReduction(const char* kernel) {
  const char* prev = t_serial_reduction;
  t_serial_reduction = kernel;
  return prev;
}

void ExitSerialReduction(const char* prev) { t_serial_reduction = prev; }

void CheckNotInSerialReduction() {
  EMBSR_CHECK_MSG(
      t_serial_reduction == nullptr,
      "access contract violated: par::For dispatched inside the "
      "serial-by-contract reduction %s — splitting it would make the "
      "accumulation order depend on the partition (DESIGN.md §11)",
      t_serial_reduction);
}

}  // namespace internal
}  // namespace par
}  // namespace embsr
