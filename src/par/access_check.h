#ifndef EMBSR_PAR_ACCESS_CHECK_H_
#define EMBSR_PAR_ACCESS_CHECK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "par/thread_pool.h"
#include "util/check.h"

namespace embsr {
namespace par {

/// Kernel access-contract sentinel — the DESIGN.md §11 output-partition
/// contract checked structurally instead of by convention.
///
/// In TUs compiled with EMBSR_CHECK_CONTRACTS, every parallel kernel
/// declares, per chunk of its par::For range, which half-open element
/// ranges of which buffers that chunk writes and reads. Before any chunk
/// runs, the checker verifies:
///
///   1. no two chunks write the same element of any buffer;
///   2. no chunk reads an element that a *different* chunk writes (a lane
///      may freely read back its own output);
///   3. serial-by-contract reductions never dispatch through par::For
///      (EMBSR_SENTINEL_SERIAL_REDUCTION below).
///
/// Because the check runs on declared index sets — not on observed
/// interleavings — a partition bug is caught deterministically on every
/// run at every thread count, including EMBSR_THREADS=1 where TSan by
/// construction sees no concurrent access at all. Violations abort through
/// the FATAL logger like every other contract. In release TUs the declare
/// lambdas are never invoked and ForChecked is exactly par::For.

/// Per-chunk access declaration: each range is a half-open [begin, end)
/// span of *element indices* into the buffer identified by `buf` (any
/// stable address — in practice the tensor's data pointer).
class AccessSet {
 public:
  struct Range {
    const void* buf;
    int64_t begin;
    int64_t end;
    bool write;
  };

  void Write(const void* buf, int64_t begin, int64_t end) {
    ranges_.push_back({buf, begin, end, /*write=*/true});
  }
  void Read(const void* buf, int64_t begin, int64_t end) {
    ranges_.push_back({buf, begin, end, /*write=*/false});
  }

  const std::vector<Range>& ranges() const { return ranges_; }

 private:
  std::vector<Range> ranges_;
};

namespace internal {

/// Collects the declared access sets of one checked loop and verifies the
/// partition contract. Compiled unconditionally (callers gate per TU), so
/// a contracts-built test can drive kernels in a release-built library.
class AccessChecker {
 public:
  explicit AccessChecker(const char* kernel) : kernel_(kernel) {}

  void AddChunk(const AccessSet& set);

  /// Aborts via the FATAL logger with "access contract violated" on any
  /// overlapping-write or foreign-read declaration.
  void Verify() const;

 private:
  struct Entry {
    const void* buf;
    int64_t begin;
    int64_t end;
    int64_t chunk;
  };

  const char* kernel_;
  int64_t num_chunks_ = 0;
  std::vector<Entry> writes_;
  std::vector<Entry> reads_;
};

/// par::For calls this on every dispatch; aborts if the calling thread is
/// inside a serial-by-contract reduction scope.
void CheckNotInSerialReduction();

const char* EnterSerialReduction(const char* kernel);  // returns previous
void ExitSerialReduction(const char* prev);

}  // namespace internal

/// Marks the dynamic extent of a serial-by-contract reduction kernel
/// (SumAll, SumRowsTo1xD, MeanAll, ScatterAddRows): any par::For dispatch
/// while a scope is active is a contract violation — the reduction's
/// accumulation order would depend on the partition.
class SerialReductionScope {
 public:
  explicit SerialReductionScope(const char* kernel)
      : prev_(internal::EnterSerialReduction(kernel)) {}
  ~SerialReductionScope() { internal::ExitSerialReduction(prev_); }

  SerialReductionScope(const SerialReductionScope&) = delete;
  SerialReductionScope& operator=(const SerialReductionScope&) = delete;

 private:
  const char* prev_;
};

#if EMBSR_CONTRACTS_ENABLED
#define EMBSR_SENTINEL_SERIAL_REDUCTION(kernel) \
  ::embsr::par::SerialReductionScope embsr_sentinel_serial_scope_(kernel)
#else
#define EMBSR_SENTINEL_SERIAL_REDUCTION(kernel) ((void)0)
#endif

/// par::For plus a per-chunk access declaration. `declare(lo, hi, &set)`
/// must register every buffer range the body's fn(lo, hi) call writes or
/// reads; the declared chunks mirror For's chunking exactly ([begin+i*g,
/// begin+(i+1)*g) clipped to end), which is the *finest* partition For ever
/// uses — For only merges chunks (serial pool, nesting), never splits them,
/// so a partition proven disjoint here is disjoint under every schedule.
/// In release TUs `declare` is not invoked and the call is exactly For.
template <typename DeclareFn, typename BodyFn>
void ForChecked(const char* kernel, int64_t begin, int64_t end, int64_t grain,
                DeclareFn&& declare, BodyFn&& body) {
#if EMBSR_CONTRACTS_ENABLED
  if (begin < end) {
    const int64_t g = grain < 1 ? 1 : grain;
    internal::AccessChecker checker(kernel);
    for (int64_t lo = begin; lo < end; lo += g) {
      const int64_t hi = lo + g < end ? lo + g : end;
      AccessSet set;
      declare(lo, hi, &set);
      checker.AddChunk(set);
    }
    checker.Verify();
  }
#else
  (void)kernel;
  (void)declare;
#endif
  For(begin, end, grain, std::forward<BodyFn>(body));
}

}  // namespace par
}  // namespace embsr

#endif  // EMBSR_PAR_ACCESS_CHECK_H_
