#include "par/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "par/access_check.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "prof/clock.h"
#include "prof/pool_stats.h"
#include "util/check.h"
#include "util/env.h"

namespace embsr {
namespace par {

namespace {

/// True while the current thread is executing chunks of a task set — on a
/// worker, or on the submitting thread while it participates. Nested For()
/// calls check this and run inline.
thread_local bool t_in_parallel_region = false;

/// Profiler lane id of the current thread: 0 for any non-pool thread
/// (submitters participate as lane 0), i+1 for pool worker i. Only read
/// when pool profiling is on.
thread_local int t_lane = 0;

/// EMBSR_THREADS semantics: unset/0 -> hardware concurrency, 1 -> strict
/// serial, N -> N lanes. Clamped to [1, 256] (a runaway value would only
/// oversubscribe; 256 is far above any machine this targets).
int ConfiguredThreadCount() {
  int n = GetEnvInt("EMBSR_THREADS", 0);
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;  // hardware_concurrency() may report 0
  return std::min(n, 256);
}

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge =
      obs::Registry::Global().GetGauge("par/queue_depth");
  return gauge;
}

obs::Counter* ChunkCounter() {
  static obs::Counter* counter =
      obs::Registry::Global().GetCounter("par/chunks_total");
  return counter;
}

obs::Histogram* ChunkMsHist() {
  static obs::Histogram* h = obs::Registry::Global().GetHistogram(
      "par/chunk_ms", obs::DefaultLatencyBucketsMs());
  return h;
}

/// Bounds in percent of the perfectly-balanced per-lane chunk share; 100
/// means every lane ran exactly num_chunks/lanes chunks.
obs::Histogram* ImbalanceHist() {
  static obs::Histogram* h = obs::Registry::Global().GetHistogram(
      "par/chunk_imbalance_pct",
      {100.0, 110.0, 125.0, 150.0, 200.0, 300.0, 500.0, 1000.0});
  return h;
}

/// Profiled execution of one inline slice/chunk: times it, credits the
/// current lane, and feeds the chunk-latency histogram. Only reached when
/// prof::PoolProfilingEnabled().
template <typename Body>
void RunChunkProfiled(const Body& body) {
  const int64_t t0 = prof::NowNs();
  body();
  const int64_t dur = prof::NowNs() - t0;
  prof::AddLaneBusy(t_lane, dur, 1);
  ChunkMsHist()->Observe(static_cast<double>(dur) * 1e-6);
}

}  // namespace

/// One fork-join task set: a chunk function plus the claim/completion
/// cursors. Shared (via shared_ptr) between the submitter and the workers
/// so a worker that wakes up late never dereferences a dead task.
struct ThreadPool::TaskSet {
  const std::function<void(int64_t)>* fn = nullptr;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> finished{0};  // counts executed AND skipped chunks
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;  // first failure wins
  /// Per-lane executed-chunk counts, allocated (threads_ slots) only while
  /// pool profiling is on; feeds the chunk-imbalance histogram.
  std::unique_ptr<std::atomic<int64_t>[]> prof_lane_chunks;
};

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 0; i + 1 < threads_; ++i) {
    // The pool is the one sanctioned owner of raw threads in this tree —
    // everything else goes through par::For so thread count, nesting and
    // determinism stay centrally controlled.
    workers_.emplace_back([this, i] {
      WorkerLoop(i + 1);
    });  // lint: allow(raw-thread): the pool itself
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

void ThreadPool::WorkerLoop(int lane) {
  t_in_parallel_region = true;  // workers only ever run task chunks
  t_lane = lane;
  std::shared_ptr<TaskSet> last_seen;
  for (;;) {
    std::shared_ptr<TaskSet> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stop_ || (task_ && task_ != last_seen); });
      if (stop_) return;
      task = task_;
    }
    last_seen = task;
    RunChunks(task.get());
  }
}

void ThreadPool::RunChunks(TaskSet* task) {
  for (;;) {
    const int64_t chunk = task->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= task->num_chunks) return;
    // Once one chunk failed the task's result is a rethrow; the remaining
    // chunks are claimed and counted but not executed so the set drains
    // fast. (finished must reach num_chunks either way — it is the
    // completion condition.)
    if (!task->failed.load(std::memory_order_acquire)) {
      EMBSR_TRACE_SPAN("par/chunk");
      auto body = [&] {
        try {
          (*task->fn)(chunk);
        } catch (...) {
          std::lock_guard<std::mutex> lock(task->error_mu);
          if (!task->error) task->error = std::current_exception();
          task->failed.store(true, std::memory_order_release);
        }
      };
      if (task->prof_lane_chunks) {
        RunChunkProfiled(body);
        task->prof_lane_chunks[t_lane].fetch_add(1,
                                                 std::memory_order_relaxed);
      } else {
        body();
      }
    }
    if (task->finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        task->num_chunks) {
      // Take mu_ before notifying: the submitter checks the completion
      // predicate under mu_, and `finished` itself is written outside it —
      // without this lock the notify could slot between the submitter's
      // predicate check and its sleep and be lost.
      std::lock_guard<std::mutex> lock(mu_);
      done_.notify_all();
      return;
    }
  }
}

void ThreadPool::Run(int64_t num_chunks,
                     const std::function<void(int64_t)>& fn) {
  if (num_chunks <= 0) return;
  // Inline paths: serial pool, nested submission from inside a parallel
  // region, or a single chunk. Exceptions propagate naturally.
  if (threads_ <= 1 || t_in_parallel_region || num_chunks == 1) {
    if (prof::PoolProfilingEnabled()) {
      for (int64_t c = 0; c < num_chunks; ++c) {
        RunChunkProfiled([&] { fn(c); });
      }
    } else {
      for (int64_t c = 0; c < num_chunks; ++c) fn(c);
    }
    return;
  }

  // One task set at a time: concurrent external submitters queue up here.
  // Nested submissions ran inline above, so a thread never waits on a lock
  // it already holds.
  std::lock_guard<std::mutex> run_lock(run_mu_);

  auto task = std::make_shared<TaskSet>();
  task->fn = &fn;
  task->num_chunks = num_chunks;
  if (prof::PoolProfilingEnabled()) {
    // Value-initialized -> all counts start at 0.
    task->prof_lane_chunks =
        std::make_unique<std::atomic<int64_t>[]>(threads_);
  }
  ChunkCounter()->Add(num_chunks);
  QueueDepthGauge()->Set(static_cast<double>(num_chunks));
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = task;
  }
  wake_.notify_all();

  // The submitting thread is a full lane: claim chunks like any worker.
  // Mark it in-region so kernels it runs don't try to re-enter the pool.
  t_in_parallel_region = true;
  RunChunks(task.get());
  t_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&] {
      return task->finished.load(std::memory_order_acquire) ==
             task->num_chunks;
    });
    task_.reset();
  }
  QueueDepthGauge()->Set(0.0);

  if (task->prof_lane_chunks) {
    int64_t max_chunks = 0;
    for (int i = 0; i < threads_; ++i) {
      max_chunks = std::max(
          max_chunks,
          task->prof_lane_chunks[i].load(std::memory_order_relaxed));
    }
    const double fair_share =
        static_cast<double>(num_chunks) / static_cast<double>(threads_);
    if (fair_share > 0.0) {
      ImbalanceHist()->Observe(100.0 * static_cast<double>(max_chunks) /
                               fair_share);
    }
  }

  if (task->error) std::rethrow_exception(task->error);
}

namespace {

std::mutex g_pool_mu;
ThreadPool* g_pool = nullptr;

ThreadPool* GlobalPoolSlot() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    // Leaked deliberately: worker threads must outlive every static whose
    // destructor might still submit work at exit.
    // lint: allow(raw-new): leaked singleton
    g_pool = new ThreadPool(ConfiguredThreadCount());
  }
  return g_pool;
}

}  // namespace

ThreadPool& ThreadPool::Global() { return *GlobalPoolSlot(); }

int ThreadCount() { return ThreadPool::Global().threads(); }

void SetThreadCount(int threads) {
  // lint: allow(raw-new): swapped into the leaked singleton slot
  ThreadPool* replacement = new ThreadPool(
      threads > 0 ? threads : ConfiguredThreadCount());
  ThreadPool* old = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    old = g_pool;
    g_pool = replacement;
  }
  // Joins the retiring pool's workers before returning.
  delete old;  // lint: allow(raw-new): retiring the previous singleton
}

void For(int64_t begin, int64_t end, int64_t grain,
         const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  // Serial-by-contract reductions must never dispatch parallel work — not
  // even on the inline paths below, since the same call would split the
  // reduction at another thread count. One thread-local load when clean.
  internal::CheckNotInSerialReduction();
  const int64_t g = std::max<int64_t>(1, grain);
  const int64_t span = end - begin;
  const int64_t num_chunks = (span + g - 1) / g;
  // Fast path: nothing to distribute, or we're already inside a parallel
  // region. Avoids even the Global() lookup for small serial work.
  if (num_chunks == 1 || ThreadPool::InParallelRegion()) {
    if (prof::PoolProfilingEnabled()) {
      RunChunkProfiled([&] { fn(begin, end); });
    } else {
      fn(begin, end);
    }
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  if (pool.threads() <= 1) {
    if (prof::PoolProfilingEnabled()) {
      RunChunkProfiled([&] { fn(begin, end); });
    } else {
      fn(begin, end);
    }
    return;
  }
  pool.Run(num_chunks, [&](int64_t chunk) {
    const int64_t b = begin + chunk * g;
    const int64_t e = std::min(end, b + g);
    fn(b, e);
  });
}

}  // namespace par
}  // namespace embsr
