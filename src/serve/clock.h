#ifndef EMBSR_SERVE_CLOCK_H_
#define EMBSR_SERVE_CLOCK_H_

#include <cstdint>
#include <functional>

#include "prof/clock.h"
#include "util/timer.h"

namespace embsr {
namespace serve {

/// Injectable time source for the serving core.
///
/// Every deadline check, backoff wait and injected stall in embsr::serve
/// goes through one of these two functions — never through a raw clock —
/// so tests can swap in a ManualClock and make "the scorer took 80 ms" a
/// deterministic fact instead of a flaky race against real time. The real
/// clock reads prof::NowNs (the repo's one sanctioned monotonic ns clock)
/// and sleeps through util's SleepForNs.
struct ServeClock {
  std::function<int64_t()> now_ns;
  std::function<void(int64_t)> sleep_ns;
};

/// Wall-clock ServeClock for production and benches.
inline ServeClock RealClock() {
  return ServeClock{[] { return prof::NowNs(); },
                    [](int64_t ns) { SleepForNs(ns); }};
}

/// Virtual time for tests: now() is a counter, sleep() advances it. Also
/// lets a test schedule "the next scorer call takes X ns" by advancing
/// inside a stub scorer. Copy the two std::functions out via clock() —
/// they share this object's state by reference, so the ManualClock must
/// outlive the frontend under test.
class ManualClock {
 public:
  explicit ManualClock(int64_t start_ns = 0) : now_ns_(start_ns) {}

  int64_t now_ns() const { return now_ns_; }
  void Advance(int64_t ns) { now_ns_ += ns; }

  ServeClock clock() {
    return ServeClock{[this] { return now_ns_; },
                      [this](int64_t ns) {
                        if (ns > 0) now_ns_ += ns;
                      }};
  }

 private:
  int64_t now_ns_;
};

}  // namespace serve
}  // namespace embsr

#endif  // EMBSR_SERVE_CLOCK_H_
