#include "serve/frontend.h"

#include <algorithm>
#include <utility>

#include "metrics/metrics.h"
#include "obs/metrics.h"
#include "robust/failpoint.h"
#include "util/env.h"
#include "util/rng.h"

namespace embsr {
namespace serve {

namespace {
constexpr int64_t kNsPerMs = 1000000;
}  // namespace

ServeConfig ServeConfig::FromEnv() {
  ServeConfig cfg;
  cfg.deadline_ms = std::max(1, GetEnvInt("EMBSR_SERVE_DEADLINE_MS", 50));
  cfg.queue_capacity =
      static_cast<size_t>(std::max(1, GetEnvInt("EMBSR_SERVE_QUEUE_CAP", 256)));
  cfg.max_retries = std::max(0, GetEnvInt("EMBSR_SERVE_RETRIES", 3));
  cfg.backoff_base_ms = std::max(0, GetEnvInt("EMBSR_SERVE_BACKOFF_MS", 2));
  cfg.breaker_strikes =
      std::max(1, GetEnvInt("EMBSR_SERVE_BREAKER_STRIKES", 5));
  cfg.breaker_cooldown_ms =
      std::max(0, GetEnvInt("EMBSR_SERVE_BREAKER_COOLDOWN_MS", 250));
  cfg.top_k = static_cast<size_t>(std::max(1, GetEnvInt("EMBSR_SERVE_TOP_K", 20)));
  cfg.seed = static_cast<uint64_t>(std::max(0, GetEnvInt("EMBSR_SERVE_SEED", 7)));
  cfg.store = SessionStoreConfig::FromEnv();
  return cfg;
}

ServeFrontend::ServeFrontend(ServeConfig config, Recommender* primary,
                             PopularityScorer* fallback, ServeClock clock)
    : config_(std::move(config)),
      primary_(primary),
      fallback_(fallback),
      clock_(std::move(clock)),
      store_(config_.store),
      breaker_(config_.breaker_strikes,
               config_.breaker_cooldown_ms * kNsPerMs) {}

Status ServeFrontend::Submit(const Request& req) {
  static obs::Counter* submitted =
      obs::Registry::Global().GetCounter("serve/requests");
  static obs::Counter* shed = obs::Registry::Global().GetCounter("serve/shed");
  static obs::Gauge* depth =
      obs::Registry::Global().GetGauge("serve/queue_depth");
  submitted->Increment();
  if (queue_.size() >= config_.queue_capacity ||
      robust::Failpoints::Global().ShouldFail("serve.queue_full")) {
    shed->Increment();
    return Status::ResourceExhausted(
        "admission queue at capacity (" + std::to_string(queue_.size()) + "/" +
        std::to_string(config_.queue_capacity) + "); request " +
        std::to_string(req.request_id) + " shed");
  }
  const int64_t now = clock_.now_ns();
  queue_.push_back(
      QueuedRequest{req, now, now + config_.deadline_ms * kNsPerMs});
  depth->Set(static_cast<double>(queue_.size()));
  return Status::OK();
}

void ServeFrontend::Backoff(int attempt, Rng* jitter, ServeResponse* resp) {
  static obs::Counter* retries =
      obs::Registry::Global().GetCounter("serve/retries");
  // Exponential base doubling per attempt, full jitter in [0.5, 1.5) of the
  // nominal wait — desynchronizes retry storms while keeping the expected
  // schedule; the draw comes off the request's own stream, so it is a pure
  // function of (config seed, request id, attempt).
  const int64_t nominal_ns = (config_.backoff_base_ms * kNsPerMs) << attempt;
  const int64_t wait_ns =
      static_cast<int64_t>(static_cast<double>(nominal_ns) *
                           (0.5 + jitter->Uniform()));
  clock_.sleep_ns(wait_ns);
  resp->backoff_ns += wait_ns;
  ++resp->retries;
  retries->Increment();
}

void ServeFrontend::Degrade(const Example& ex, const std::string& reason,
                            ServeResponse* resp, std::vector<float>* scores) {
  static obs::Counter* degraded =
      obs::Registry::Global().GetCounter("serve/degraded");
  degraded->Increment();
  resp->degraded = true;
  resp->degraded_reason = reason;
  *scores = fallback_->ScoreAll(ex);
}

void ServeFrontend::FinishTopK(const std::vector<float>& scores,
                               ServeResponse* resp) {
  resp->top_items = TopKIndices(scores, config_.top_k);
  resp->top_scores.reserve(resp->top_items.size());
  for (int64_t item : resp->top_items) {
    resp->top_scores.push_back(scores[static_cast<size_t>(item)]);
  }
}

Result<ServeResponse> ServeFrontend::ProcessNext() {
  static obs::Counter* expired =
      obs::Registry::Global().GetCounter("serve/deadline_expired");
  static obs::Counter* score_failures =
      obs::Registry::Global().GetCounter("serve/score_failures");
  static obs::Gauge* depth =
      obs::Registry::Global().GetGauge("serve/queue_depth");
  static obs::Histogram* latency = obs::Registry::Global().GetHistogram(
      "serve/latency_ms", obs::DefaultLatencyBucketsMs());

  if (queue_.empty()) return Status::NotFound("admission queue empty");
  QueuedRequest qr = std::move(queue_.front());
  queue_.pop_front();
  depth->Set(static_cast<double>(queue_.size()));

  ServeResponse resp;
  resp.request_id = qr.req.request_id;
  resp.queue_ms =
      static_cast<double>(clock_.now_ns() - qr.enqueue_ns) / kNsPerMs;
  Rng jitter(DeriveSeed(config_.seed, qr.req.request_id));

  auto finish = [&](const std::vector<float>& scores) {
    FinishTopK(scores, &resp);
    resp.latency_ms =
        static_cast<double>(clock_.now_ns() - qr.enqueue_ns) / kNsPerMs;
    latency->Observe(resp.latency_ms);
    return Result<ServeResponse>(std::move(resp));
  };
  auto abandon = [&](const std::string& stage) {
    expired->Increment();
    resp.status = Status::DeadlineExceeded(
        "request " + std::to_string(qr.req.request_id) + ": budget of " +
        std::to_string(config_.deadline_ms) + " ms spent before " + stage +
        "; work abandoned");
    resp.latency_ms =
        static_cast<double>(clock_.now_ns() - qr.enqueue_ns) / kNsPerMs;
    latency->Observe(resp.latency_ms);
    return Result<ServeResponse>(std::move(resp));
  };

  // Stage 0: the budget may be gone before any work starts (long queue
  // wait under overload). Abandon instead of scoring into a void.
  if (Expired(qr.deadline_ns)) return abandon("dequeue");

  // Stage 1: session-store update, retried across transient failures.
  const SessionState* state = nullptr;
  for (int attempt = 0;; ++attempt) {
    auto r = store_.ApplyEvent(qr.req.session_id, qr.req.event);
    if (r.ok()) {
      state = r.value();
      break;
    }
    if (attempt >= config_.max_retries) break;
    Backoff(attempt, &jitter, &resp);
    if (Expired(qr.deadline_ns)) return abandon("store update");
  }
  const Example ex = state != nullptr ? state->ToExample() : Example{};
  if (state == nullptr) {
    // Store down past the retry budget: answer from pure popularity (the
    // fallback needs no session state) rather than failing the request.
    std::vector<float> scores;
    Degrade(ex, "store_unavailable", &resp, &scores);
    return finish(scores);
  }

  // Stage 2: primary scorer — deadline-checked, breaker-guarded, retried,
  // with injectable stalls ("serve.score=p@DELAYms") flowing through the
  // same clock the deadline is checked against.
  if (Expired(qr.deadline_ns)) return abandon("scoring");
  std::vector<float> scores;
  bool scored = false;
  std::string degrade_reason;
  for (int attempt = 0;; ++attempt) {
    if (!breaker_.AllowRequest(clock_.now_ns())) {
      degrade_reason = "breaker_open";
      break;
    }
    const int64_t stall_ms =
        robust::Failpoints::Global().ShouldDelayMs("serve.score");
    if (stall_ms > 0) clock_.sleep_ns(stall_ms * kNsPerMs);
    if (robust::Failpoints::Global().ShouldFail("serve.score")) {
      score_failures->Increment();
      breaker_.RecordFailure(clock_.now_ns());
      if (attempt >= config_.max_retries) {
        degrade_reason = "score_failed";
        break;
      }
      Backoff(attempt, &jitter, &resp);
      if (Expired(qr.deadline_ns)) {
        degrade_reason = "score_failed";
        break;
      }
      continue;
    }
    scores = primary_->ScoreAll(ex);
    breaker_.RecordSuccess();
    scored = true;
    break;
  }

  // Stage 3: top-K. A full-price result that finished after the deadline
  // is discarded — the caller already gave up on it — and replaced by the
  // cheap fallback, labeled degraded.
  if (scored && Expired(qr.deadline_ns)) {
    scored = false;
    degrade_reason = "score_deadline";
  }
  if (!scored) Degrade(ex, degrade_reason, &resp, &scores);
  return finish(scores);
}

std::vector<ServeResponse> ServeFrontend::ProcessAll() {
  std::vector<ServeResponse> out;
  while (!queue_.empty()) {
    auto r = ProcessNext();
    if (r.ok()) out.push_back(std::move(r.value()));
  }
  return out;
}

}  // namespace serve
}  // namespace embsr
