#include "serve/scorer.h"

#include <algorithm>

#include "obs/metrics.h"

namespace embsr {
namespace serve {

namespace {

/// Geometric decay of the recency boost per step back from the session end.
constexpr float kRecencyDecay = 0.8f;
/// Boost for the most recent item. Popularity is normalized to [0, 1], so
/// 2.0 guarantees the last item outranks any purely-popular item — the
/// S-POP ordering: session items first (most recent wins), popularity as
/// the tie-breaking tail.
constexpr float kRecencyBoost = 2.0f;

}  // namespace

Status PopularityScorer::Fit(const ProcessedDataset& data) {
  if (data.num_items <= 0) {
    return Status::InvalidArgument("PopularityScorer: dataset has no items");
  }
  std::vector<int64_t> counts(static_cast<size_t>(data.num_items), 0);
  auto tally = [&counts](int64_t item) {
    if (item >= 0 && item < static_cast<int64_t>(counts.size())) {
      ++counts[static_cast<size_t>(item)];
    }
  };
  for (const Example& ex : data.train) {
    for (int64_t item : ex.macro_items) tally(item);
    tally(ex.target);
  }
  const int64_t max_count =
      counts.empty() ? 0 : *std::max_element(counts.begin(), counts.end());
  popularity_.assign(counts.size(), 0.0f);
  if (max_count > 0) {
    for (size_t i = 0; i < counts.size(); ++i) {
      popularity_[i] =
          static_cast<float>(counts[i]) / static_cast<float>(max_count);
    }
  }
  return Status::OK();
}

std::vector<float> PopularityScorer::ScoreAll(const Example& ex) {
  std::vector<float> scores = popularity_;
  // Walk the session backwards; each item gets the boost of its most
  // recent occurrence only (std::max, not +=), so a long dwell on one item
  // doesn't pile up an unbounded score.
  float boost = kRecencyBoost;
  for (auto it = ex.macro_items.rbegin(); it != ex.macro_items.rend(); ++it) {
    const int64_t item = *it;
    if (item >= 0 && item < static_cast<int64_t>(scores.size())) {
      float& s = scores[static_cast<size_t>(item)];
      s = std::max(s, popularity_[static_cast<size_t>(item)] + boost);
    }
    boost *= kRecencyDecay;
  }
  return scores;
}

CircuitBreaker::CircuitBreaker(int strike_threshold, int64_t cooldown_ns)
    : strike_threshold_(std::max(1, strike_threshold)),
      cooldown_ns_(std::max<int64_t>(0, cooldown_ns)) {
  ExportMetrics();
}

bool CircuitBreaker::AllowRequest(int64_t now_ns) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      if (now_ns < open_until_ns_) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      static obs::Counter* probes =
          obs::Registry::Global().GetCounter("serve/breaker_probes");
      probes->Increment();
      ExportMetrics();
      return true;
    }
    case BreakerState::kHalfOpen: {
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      static obs::Counter* probes =
          obs::Registry::Global().GetCounter("serve/breaker_probes");
      probes->Increment();
      return true;
    }
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  strikes_ = 0;
  probe_in_flight_ = false;
  if (state_ != BreakerState::kClosed) {
    state_ = BreakerState::kClosed;
    static obs::Counter* closed =
        obs::Registry::Global().GetCounter("serve/breaker_closed_total");
    closed->Increment();
  }
  ExportMetrics();
}

void CircuitBreaker::RecordFailure(int64_t now_ns) {
  probe_in_flight_ = false;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: the dependency is still down, back off again.
    Open(now_ns);
    return;
  }
  ++strikes_;
  if (state_ == BreakerState::kClosed && strikes_ >= strike_threshold_) {
    Open(now_ns);
    return;
  }
  ExportMetrics();
}

void CircuitBreaker::Open(int64_t now_ns) {
  state_ = BreakerState::kOpen;
  strikes_ = 0;
  open_until_ns_ = now_ns + cooldown_ns_;
  static obs::Counter* opened =
      obs::Registry::Global().GetCounter("serve/breaker_open_total");
  opened->Increment();
  ExportMetrics();
}

void CircuitBreaker::ExportMetrics() const {
  static obs::Gauge* state_gauge =
      obs::Registry::Global().GetGauge("serve/breaker_state");
  static obs::Gauge* strikes_gauge =
      obs::Registry::Global().GetGauge("serve/breaker_strikes");
  state_gauge->Set(static_cast<double>(static_cast<int>(state_)));
  strikes_gauge->Set(static_cast<double>(strikes_));
}

}  // namespace serve
}  // namespace embsr
