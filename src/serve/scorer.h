#ifndef EMBSR_SERVE_SCORER_H_
#define EMBSR_SERVE_SCORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/session.h"
#include "models/recommender.h"
#include "util/status.h"

namespace embsr {
namespace serve {

/// Cheap degraded-mode scorer: global item popularity from the training
/// split plus an in-session recency boost. Costs O(num_items) with no
/// matrix work at all, so it answers in microseconds where a neural scorer
/// takes milliseconds — the whole point of graceful degradation is that a
/// worse answer *now* beats a better answer after the deadline.
///
/// The recency boost re-ranks the popularity prior toward items the user
/// just interacted with (the strongest single signal in session-based
/// recommendation, cf. the S-POP baseline): the last distinct item in the
/// session gets the largest boost, decaying geometrically backwards.
class PopularityScorer final : public Recommender {
 public:
  std::string name() const override { return "serve-popularity"; }

  /// Counts item occurrences (inputs and targets) over `data.train`.
  Status Fit(const ProcessedDataset& data) override;

  /// Popularity prior + recency boost. Works on an *empty* session too
  /// (pure popularity), which is what makes it a valid fallback when even
  /// the session store lookup failed.
  std::vector<float> ScoreAll(const Example& ex) override;

  bool fitted() const { return !popularity_.empty(); }
  int64_t num_items() const { return static_cast<int64_t>(popularity_.size()); }

 private:
  /// popularity_[i] in [0, 1]: occurrence count normalized by the max.
  std::vector<float> popularity_;
};

/// Circuit breaker states, exported via the `serve/breaker_state` gauge.
enum class BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// Consecutive-failure circuit breaker guarding the primary scorer.
///
/// Closed: requests pass; each failure increments a consecutive-failure
/// strike count, each success clears it. When strikes reach
/// `strike_threshold` the breaker opens. Open: requests are refused (the
/// frontend answers from the popularity fallback without paying for a
/// doomed scorer call) until `cooldown_ns` of clock time has passed, after
/// which the breaker half-opens. HalfOpen: exactly one probe request is
/// let through to the primary; success closes the breaker, failure
/// re-opens it for another full cooldown.
///
/// Time is injected by the caller (the frontend's ServeClock) so tests
/// drive the open→half-open transition deterministically. Not internally
/// synchronized — same single-writer contract as SessionStore.
class CircuitBreaker {
 public:
  CircuitBreaker(int strike_threshold, int64_t cooldown_ns);

  /// True if a request may hit the primary scorer at `now_ns`. Flips
  /// Open → HalfOpen once the cooldown has elapsed; in HalfOpen, admits
  /// only the single probe (false while that probe's verdict is pending).
  bool AllowRequest(int64_t now_ns);

  /// Report the outcome of an admitted request.
  void RecordSuccess();
  void RecordFailure(int64_t now_ns);

  BreakerState state() const { return state_; }
  int strikes() const { return strikes_; }

 private:
  void Open(int64_t now_ns);
  void ExportMetrics() const;

  const int strike_threshold_;
  const int64_t cooldown_ns_;
  BreakerState state_ = BreakerState::kClosed;
  int strikes_ = 0;
  int64_t open_until_ns_ = 0;
  bool probe_in_flight_ = false;
};

}  // namespace serve
}  // namespace embsr

#endif  // EMBSR_SERVE_SCORER_H_
