#ifndef EMBSR_SERVE_FRONTEND_H_
#define EMBSR_SERVE_FRONTEND_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "models/recommender.h"
#include "serve/clock.h"
#include "serve/scorer.h"
#include "serve/session_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace embsr {
namespace serve {

/// Serving knobs, read from the environment by FromEnv:
///
///   EMBSR_SERVE_DEADLINE_MS          per-request latency budget (50)
///   EMBSR_SERVE_QUEUE_CAP            admission queue capacity (256)
///   EMBSR_SERVE_RETRIES              max retries of a transient failure (3)
///   EMBSR_SERVE_BACKOFF_MS           base retry backoff, doubles/try (2)
///   EMBSR_SERVE_BREAKER_STRIKES      consecutive scorer failures to open (5)
///   EMBSR_SERVE_BREAKER_COOLDOWN_MS  open→half-open cooldown (250)
///   EMBSR_SERVE_TOP_K                recommendations per response (20)
///   EMBSR_SERVE_SEED                 backoff-jitter seed (7)
struct ServeConfig {
  int64_t deadline_ms = 50;
  size_t queue_capacity = 256;
  int max_retries = 3;
  int64_t backoff_base_ms = 2;
  int breaker_strikes = 5;
  int64_t breaker_cooldown_ms = 250;
  size_t top_k = 20;
  uint64_t seed = 7;
  SessionStoreConfig store;

  static ServeConfig FromEnv();
};

/// One scoring request: apply `event` to `session_id`'s live state, then
/// recommend the next items. `request_id` must be unique per request — it
/// salts the backoff-jitter stream, so a request's retry schedule is a pure
/// function of (config seed, request id).
struct Request {
  uint64_t request_id = 0;
  uint64_t session_id = 0;
  MicroBehavior event;
};

/// Why a response came from the degraded path (empty when full price).
/// Values: "breaker_open", "score_failed", "score_deadline",
/// "store_unavailable".
struct ServeResponse {
  uint64_t request_id = 0;
  /// OK for every answered request (including degraded ones);
  /// kDeadlineExceeded when the budget expired before scoring started and
  /// the work was abandoned.
  Status status = Status::OK();
  bool degraded = false;
  std::string degraded_reason;
  std::vector<int64_t> top_items;
  std::vector<float> top_scores;
  /// Transient-failure retries spent (store + scorer).
  int retries = 0;
  /// Total jittered backoff waited, in ns. Deterministic given
  /// (config seed, request id) — the determinism test asserts on it.
  int64_t backoff_ns = 0;
  double queue_ms = 0.0;
  double latency_ms = 0.0;
};

/// The fault-tolerant request front end.
///
/// Single-threaded by design: Submit() only performs admission control
/// (bounded queue, load shedding) and ProcessNext() runs the pipeline for
/// one queued request:
///
///   dequeue ── deadline? ── store update (retry w/ jittered backoff)
///     ── deadline? ── primary scorer (breaker-guarded, retried,
///        latency-injectable) ── deadline? ── top-K
///
/// The per-request budget is fixed at Submit time (enqueue instant +
/// deadline_ms) so time spent queued eats the same budget as time spent
/// scoring — overload turns into shedding and degraded answers instead of
/// unbounded latency. Whenever the primary path cannot answer in budget
/// (breaker open, retries exhausted, scorer finished late), the response
/// is re-scored by the popularity/recency fallback and labeled degraded;
/// a request is only abandoned outright (kDeadlineExceeded) when its
/// budget was already gone before any scoring started.
///
/// Failpoint sites: "serve.queue_full" (forced shed at Submit),
/// "serve.store_read" (transient store failure, inside SessionStore),
/// "serve.score" (scorer failure, or injected stall when armed @DELAYms).
///
/// All time flows through the injected ServeClock; under EMBSR_THREADS=1
/// with a manual clock every response — including backoff schedules — is
/// bit-identical across runs.
class ServeFrontend {
 public:
  /// `primary` and `fallback` are borrowed and must outlive the frontend.
  /// `fallback` must be fitted; it is the always-works degraded scorer.
  ServeFrontend(ServeConfig config, Recommender* primary,
                PopularityScorer* fallback, ServeClock clock = RealClock());

  /// Admission control. OK = queued; kResourceExhausted = shed (queue at
  /// capacity or injected "serve.queue_full").
  [[nodiscard]] Status Submit(const Request& req);

  /// Runs the pipeline for the oldest queued request. NotFound when the
  /// queue is empty.
  Result<ServeResponse> ProcessNext();

  /// Drains the queue, preserving order.
  std::vector<ServeResponse> ProcessAll();

  size_t queue_depth() const { return queue_.size(); }
  SessionStore& store() { return store_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  const ServeConfig& config() const { return config_; }

 private:
  struct QueuedRequest {
    Request req;
    int64_t enqueue_ns = 0;
    int64_t deadline_ns = 0;
  };

  bool Expired(int64_t deadline_ns) const {
    return clock_.now_ns() >= deadline_ns;
  }

  /// Sleeps the jittered exponential backoff for `attempt` (0-based) on
  /// the request's jitter stream; accounts the wait into `resp`.
  void Backoff(int attempt, Rng* jitter, ServeResponse* resp);

  /// Scores via the fallback and marks the response degraded.
  void Degrade(const Example& ex, const std::string& reason,
               ServeResponse* resp, std::vector<float>* scores);

  void FinishTopK(const std::vector<float>& scores, ServeResponse* resp);

  ServeConfig config_;
  Recommender* primary_;
  PopularityScorer* fallback_;
  ServeClock clock_;
  SessionStore store_;
  CircuitBreaker breaker_;
  std::deque<QueuedRequest> queue_;
};

}  // namespace serve
}  // namespace embsr

#endif  // EMBSR_SERVE_FRONTEND_H_
