#ifndef EMBSR_SERVE_SESSION_STORE_H_
#define EMBSR_SERVE_SESSION_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/session.h"
#include "util/status.h"

namespace embsr {
namespace serve {

/// One live session's incrementally-maintained model input.
///
/// This is the serving-side mirror of data/preprocess.cc's macro/micro
/// merge: each arriving micro-behavior either extends the last macro item's
/// operation sub-sequence (same item as the previous event) or opens a new
/// macro item. The flat micro sequence feeding the self-attention models is
/// kept in parallel. The point is MicroRec-style low memory traffic per
/// request: appending one event is O(1) amortized — the session is never
/// re-derived from its full event log at request time.
struct SessionState {
  std::vector<int64_t> macro_items;
  /// Parallel to macro_items; each inner vector is non-empty.
  std::vector<std::vector<int64_t>> macro_ops;
  std::vector<int64_t> flat_items;
  std::vector<int64_t> flat_ops;
  /// Store-logical recency stamp for LRU eviction. Not serialized: snapshot
  /// bytes depend only on session *content*, so snapshot→restore→snapshot
  /// round-trips bit-for-bit.
  uint64_t last_touch = 0;

  /// Applies one micro-behavior (merge-or-extend, see above).
  void Append(const MicroBehavior& ev);

  /// Drops the oldest macro items (and their micro-behaviors) until at most
  /// `max_flat_events` flat events remain. Bounds per-session memory for
  /// pathological never-ending sessions.
  void TrimToFlatCap(size_t max_flat_events);

  /// The model-facing view: the whole current session as input, target
  /// unset (serving predicts it). Ops/items invariants match preprocess.
  Example ToExample() const;

  friend bool operator==(const SessionState& a, const SessionState& b) {
    return a.macro_items == b.macro_items && a.macro_ops == b.macro_ops &&
           a.flat_items == b.flat_items && a.flat_ops == b.flat_ops;
  }
};

/// Knobs for the in-memory store, read from the environment:
///
///   EMBSR_SERVE_MAX_SESSIONS  LRU-evict beyond this many live sessions
///   EMBSR_SERVE_MAX_EVENTS    per-session flat-event cap (sliding window)
struct SessionStoreConfig {
  size_t max_sessions = 100000;
  size_t max_events_per_session = 256;

  static SessionStoreConfig FromEnv();
};

/// In-memory per-user session state with incremental updates, LRU eviction
/// and CRC'd snapshot/restore.
///
/// Not internally synchronized: the serving frontend processes requests one
/// at a time off its admission queue (see ServeFrontend), which is the
/// store's one writer. Snapshots use the checkpoint-v2 conventions: the
/// whole image is assembled in memory, CRC-32'd over every preceding byte,
/// and written atomically (tmp + fsync + rename via AtomicWriteFile), so a
/// crash mid-snapshot never corrupts the previous one, and truncation or
/// bit rot is always detected at load.
///
/// The failpoint site "serve.store_read" injects a *transient* lookup
/// failure into ApplyEvent/Get — the unit the frontend's retry-with-backoff
/// wraps.
class SessionStore {
 public:
  explicit SessionStore(SessionStoreConfig config = SessionStoreConfig());

  /// Applies one event to `session_id` (creating the session if new),
  /// refreshes its LRU stamp, and returns the updated state. The returned
  /// pointer is valid until the next non-const store call. Internal on an
  /// injected "serve.store_read" failure.
  Result<const SessionState*> ApplyEvent(uint64_t session_id,
                                         const MicroBehavior& ev);

  /// Read-only lookup. NotFound for unknown sessions; Internal on an
  /// injected "serve.store_read" failure.
  Result<const SessionState*> Get(uint64_t session_id) const;

  size_t size() const { return sessions_.size(); }
  int64_t evictions() const { return evictions_; }

  /// Serializes every session (sorted by id, so output is deterministic)
  /// in the snapshot format; the trailing 4 bytes are the CRC-32 of
  /// everything before them.
  std::string Serialize() const;

  /// Atomic CRC'd snapshot of the whole store.
  [[nodiscard]] Status SaveSnapshot(const std::string& path) const;

  /// Replaces the store contents with a snapshot's. Bounds-checked parse,
  /// CRC verified first; on any error the store is left unchanged. LRU
  /// recency restarts from zero (recency is runtime state, not content).
  [[nodiscard]] Status LoadSnapshot(const std::string& path);

  const SessionStoreConfig& config() const { return config_; }

 private:
  void MaybeEvict();

  SessionStoreConfig config_;
  std::map<uint64_t, SessionState> sessions_;
  uint64_t touch_seq_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace serve
}  // namespace embsr

#endif  // EMBSR_SERVE_SESSION_STORE_H_
