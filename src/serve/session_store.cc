#include "serve/session_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "robust/failpoint.h"
#include "util/crc32.h"
#include "util/env.h"
#include "util/fs_util.h"

namespace embsr {
namespace serve {

namespace {

constexpr char kMagic[8] = {'E', 'M', 'B', 'S', 'R', 'S', 'S', 'T'};
constexpr uint32_t kVersion = 2;  // checkpoint-v2 conventions (CRC trailer)
// Parse-time plausibility caps: a corrupt length field must fail fast with
// an offset, not drive a multi-gigabyte allocation.
constexpr uint64_t kMaxSessions = 1u << 26;
constexpr uint64_t kMaxEventsPerSession = 1u << 20;

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendI64Vec(std::string* out, const std::vector<int64_t>& v) {
  AppendPod(out, static_cast<uint64_t>(v.size()));
  for (int64_t x : v) AppendPod(out, x);
}

/// Bounds-checked cursor (the nn/checkpoint.cc idiom): every failure names
/// the byte offset where the snapshot went bad.
class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data) {}

  size_t offset() const { return off_; }
  size_t remaining() const { return data_.size() - off_; }

  Status Read(void* dst, size_t n, const char* what) {
    if (n > remaining()) {
      return Status::InvalidArgument(
          "truncated session snapshot: need " + std::to_string(n) +
          " bytes for " + what + " at offset " + std::to_string(off_) +
          ", have " + std::to_string(remaining()));
    }
    std::memcpy(  // lint: allow(data-arith): byte I/O, n <= remaining() checked above
        dst, data_.data() + off_, n);
    off_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadPod(T* value, const char* what) {
    return Read(value, sizeof(T), what);
  }

  Status ReadI64Vec(std::vector<int64_t>* out, uint64_t cap,
                    const char* what) {
    uint64_t n = 0;
    Status s = ReadPod(&n, what);
    if (!s.ok()) return s;
    if (n > cap || n * sizeof(int64_t) > remaining()) {
      return Status::InvalidArgument(
          std::string("corrupt session snapshot: implausible length for ") +
          what + " at offset " + std::to_string(off_));
    }
    out->resize(n);
    return n == 0 ? Status::OK()
                  : Read(out->data(), n * sizeof(int64_t), what);
  }

 private:
  const std::string& data_;
  size_t off_ = 0;
};

}  // namespace

SessionStoreConfig SessionStoreConfig::FromEnv() {
  SessionStoreConfig cfg;
  cfg.max_sessions = static_cast<size_t>(
      std::max(1, GetEnvInt("EMBSR_SERVE_MAX_SESSIONS", 100000)));
  cfg.max_events_per_session = static_cast<size_t>(
      std::max(2, GetEnvInt("EMBSR_SERVE_MAX_EVENTS", 256)));
  return cfg;
}

void SessionState::Append(const MicroBehavior& ev) {
  if (macro_items.empty() || macro_items.back() != ev.item) {
    macro_items.push_back(ev.item);
    macro_ops.emplace_back();
  }
  macro_ops.back().push_back(ev.operation);
  flat_items.push_back(ev.item);
  flat_ops.push_back(ev.operation);
}

void SessionState::TrimToFlatCap(size_t max_flat_events) {
  while (flat_items.size() > max_flat_events && macro_items.size() > 1) {
    const size_t drop = macro_ops.front().size();
    macro_items.erase(macro_items.begin());
    macro_ops.erase(macro_ops.begin());
    flat_items.erase(flat_items.begin(),
                     flat_items.begin() + static_cast<ptrdiff_t>(drop));
    flat_ops.erase(flat_ops.begin(),
                   flat_ops.begin() + static_cast<ptrdiff_t>(drop));
  }
}

Example SessionState::ToExample() const {
  Example ex;
  ex.macro_items = macro_items;
  ex.macro_ops = macro_ops;
  ex.flat_items = flat_items;
  ex.flat_ops = flat_ops;
  ex.target = 0;  // unknown at serving time: the model predicts it
  return ex;
}

SessionStore::SessionStore(SessionStoreConfig config)
    : config_(std::move(config)) {}

Result<const SessionState*> SessionStore::ApplyEvent(uint64_t session_id,
                                                     const MicroBehavior& ev) {
  if (robust::Failpoints::Global().ShouldFail("serve.store_read")) {
    return robust::InjectedFailure("serve.store_read",
                                   "session store lookup");
  }
  SessionState& state = sessions_[session_id];
  state.Append(ev);
  state.TrimToFlatCap(config_.max_events_per_session);
  state.last_touch = ++touch_seq_;
  MaybeEvict();
  // The just-touched session holds the maximum LRU stamp, so eviction can
  // never pick it; its map node (and thus &state) is stable.
  return Result<const SessionState*>(&state);
}

Result<const SessionState*> SessionStore::Get(uint64_t session_id) const {
  if (robust::Failpoints::Global().ShouldFail("serve.store_read")) {
    return robust::InjectedFailure("serve.store_read",
                                   "session store lookup");
  }
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  return Result<const SessionState*>(&it->second);
}

void SessionStore::MaybeEvict() {
  static obs::Counter* evicted =
      obs::Registry::Global().GetCounter("serve/store_evictions");
  while (sessions_.size() > config_.max_sessions) {
    auto victim = sessions_.begin();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second.last_touch < victim->second.last_touch) victim = it;
    }
    sessions_.erase(victim);
    ++evictions_;
    evicted->Increment();
  }
}

std::string SessionStore::Serialize() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendPod(&out, kVersion);
  AppendPod(&out, static_cast<uint64_t>(sessions_.size()));
  for (const auto& [id, state] : sessions_) {
    AppendPod(&out, id);
    AppendI64Vec(&out, state.macro_items);
    for (const auto& ops : state.macro_ops) AppendI64Vec(&out, ops);
    AppendI64Vec(&out, state.flat_items);
    AppendI64Vec(&out, state.flat_ops);
  }
  const uint32_t crc = Crc32(out.data(), out.size());
  AppendPod(&out, crc);
  return out;
}

Status SessionStore::SaveSnapshot(const std::string& path) const {
  static obs::Counter* snapshots =
      obs::Registry::Global().GetCounter("serve/store_snapshots");
  const Status s = AtomicWriteFile(path, Serialize());
  if (s.ok()) snapshots->Increment();
  return s;
}

Status SessionStore::LoadSnapshot(const std::string& path) {
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  const std::string& bytes = data.value();
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) * 2) {
    return Status::InvalidArgument("session snapshot too short: " +
                                   std::to_string(bytes.size()) + " bytes");
  }
  const uint32_t stored_crc = [&] {
    uint32_t crc = 0;
    std::memcpy(&crc, bytes.data() + bytes.size() - sizeof(crc),  // lint: allow(data-arith): byte I/O, size checked above
                sizeof(crc));
    return crc;
  }();
  const uint32_t actual_crc =
      Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("session snapshot CRC mismatch");
  }

  ByteReader r(bytes);
  char magic[sizeof(kMagic)];
  Status s = r.Read(magic, sizeof(magic), "magic");
  if (!s.ok()) return s;
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a session snapshot (bad magic)");
  }
  uint32_t version = 0;
  s = r.ReadPod(&version, "version");
  if (!s.ok()) return s;
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported session snapshot version " +
                                   std::to_string(version));
  }
  uint64_t count = 0;
  s = r.ReadPod(&count, "session count");
  if (!s.ok()) return s;
  if (count > kMaxSessions) {
    return Status::InvalidArgument(
        "corrupt session snapshot: implausible session count");
  }

  std::map<uint64_t, SessionState> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    s = r.ReadPod(&id, "session id");
    if (!s.ok()) return s;
    SessionState state;
    s = r.ReadI64Vec(&state.macro_items, kMaxEventsPerSession, "macro items");
    if (!s.ok()) return s;
    // lint: allow(raw-resize): per-item op lists sized from wire count
    state.macro_ops.resize(state.macro_items.size());
    for (auto& ops : state.macro_ops) {
      s = r.ReadI64Vec(&ops, kMaxEventsPerSession, "macro ops");
      if (!s.ok()) return s;
      if (ops.empty()) {
        return Status::InvalidArgument(
            "corrupt session snapshot: empty macro op list at offset " +
            std::to_string(r.offset()));
      }
    }
    s = r.ReadI64Vec(&state.flat_items, kMaxEventsPerSession, "flat items");
    if (!s.ok()) return s;
    s = r.ReadI64Vec(&state.flat_ops, kMaxEventsPerSession, "flat ops");
    if (!s.ok()) return s;
    if (state.flat_ops.size() != state.flat_items.size()) {
      return Status::InvalidArgument(
          "corrupt session snapshot: flat items/ops length mismatch at "
          "offset " +
          std::to_string(r.offset()));
    }
    loaded.emplace(id, std::move(state));
  }
  if (r.remaining() != sizeof(uint32_t)) {
    return Status::InvalidArgument(
        "corrupt session snapshot: trailing bytes at offset " +
        std::to_string(r.offset()));
  }

  sessions_ = std::move(loaded);
  touch_seq_ = 0;
  for (auto& [id, state] : sessions_) state.last_touch = ++touch_seq_;
  return Status::OK();
}

}  // namespace serve
}  // namespace embsr
