#ifndef EMBSR_TRAIN_EXPERIMENT_H_
#define EMBSR_TRAIN_EXPERIMENT_H_

#include <string>
#include <vector>

#include "data/session.h"
#include "train/evaluator.h"

namespace embsr {

/// One trained-and-evaluated (model, dataset) cell of a results table.
/// A cell that failed (unknown model, training error, injected fault) has
/// `ok == false`, a human-readable `error`, and empty eval metrics; sweeps
/// keep going past failed cells instead of aborting the whole run.
struct ExperimentResult {
  std::string model;
  std::string dataset;
  EvalResult eval;
  double fit_seconds = 0.0;
  double eval_seconds = 0.0;
  bool ok = true;
  std::string error;
};

/// Trains `model_name` on `data` and evaluates on the test split at the
/// given cutoffs. `max_test` of 0 evaluates the whole split. Failures are
/// reported in the returned cell (`ok`/`error`), not by aborting.
ExperimentResult RunExperiment(const std::string& model_name,
                               const ProcessedDataset& data,
                               const TrainConfig& config,
                               const std::vector<int>& ks,
                               size_t max_test = 0);

/// Runs one cell per model name in parallel on the par:: pool and returns
/// the cells in input order. Each cell is self-contained (its own model,
/// its own per-cell RNG seeded from `config`), and everything inside a cell
/// — training, kernels, evaluation — runs serially within that cell because
/// nested parallelism is suppressed, so every cell's numbers are
/// bit-identical to what a standalone RunExperiment call produces at any
/// EMBSR_THREADS setting. Failed cells are reported in-place, as in
/// RunExperiment.
std::vector<ExperimentResult> RunExperimentCells(
    const std::vector<std::string>& model_names, const ProcessedDataset& data,
    const TrainConfig& config, const std::vector<int>& ks,
    size_t max_test = 0);

/// The CPU-scaled default training configuration used by the benchmark
/// harnesses; honors EMBSR_BENCH_SCALE for epochs/sample counts.
TrainConfig BenchTrainConfig();

/// Renders a paper-style results block: one row per metric (H@K, M@K per
/// cutoff), one column per model.
std::string FormatMetricTable(
    const std::string& dataset,
    const std::vector<ExperimentResult>& results,
    const std::vector<int>& ks);

}  // namespace embsr

#endif  // EMBSR_TRAIN_EXPERIMENT_H_
