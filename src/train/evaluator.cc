#include "train/evaluator.h"

#include <algorithm>

#include "models/neural_model.h"
#include "models/session_batch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "prof/op_profiler.h"
#include "util/check.h"
#include "util/timer.h"

namespace embsr {

std::vector<double> EvalResult::ReciprocalRanksAt(int k) const {
  std::vector<double> out;
  out.reserve(ranks.size());
  for (int r : ranks) out.push_back(r <= k ? 1.0 / r : 0.0);
  return out;
}

EvalResult Evaluate(Recommender* model, const std::vector<Example>& test,
                    const std::vector<int>& ks, size_t max_examples) {
  EMBSR_TRACE_SPAN("eval/evaluate");
  prof::MaybeInitFromEnv();
  static obs::Counter* example_counter =
      obs::Registry::Global().GetCounter("eval/examples");
  static obs::Gauge* throughput_gauge =
      obs::Registry::Global().GetGauge("eval/examples_per_sec");

  EMBSR_CHECK(model != nullptr);
  EvalResult result;
  RankAccumulator acc;
  const size_t n =
      max_examples == 0 ? test.size() : std::min(test.size(), max_examples);
  WallTimer timer;
  // Examples are scored in parallel: each loop index owns exactly one slot
  // of the preallocated rank vector, so the merged result is in example
  // order regardless of which thread scored what. The model must be pinned
  // in eval mode first so ScoreAll is read-only (see Recommender's
  // thread-safety contract); per-example model work (e.g. parallel MatMul)
  // automatically runs serially inside the pool, keeping each example's
  // scores bit-identical to a serial evaluation.
  model->EnsureEvalMode();
  result.ranks.assign(n, 0);
  // EMBSR_BATCH_SIZE > 1 scores collated session batches instead of single
  // examples — same slot-per-example merge, with each loop index owning one
  // whole batch's worth of contiguous rank slots. The default 1 keeps the
  // per-example path byte for byte.
  const size_t forward_batch = static_cast<size_t>(ForwardBatchSizeFromEnv());
  auto* neural = dynamic_cast<NeuralSessionModel*>(model);
  if (neural != nullptr && forward_batch > 1) {
    const int64_t num_batches =
        static_cast<int64_t>((n + forward_batch - 1) / forward_batch);
    par::For(0, num_batches, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t bi = lo; bi < hi; ++bi) {
        const size_t begin = static_cast<size_t>(bi) * forward_batch;
        const size_t end = std::min(begin + forward_batch, n);
        std::vector<const Example*> chunk;
        chunk.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) chunk.push_back(&test[i]);
        const std::vector<std::vector<float>> scores =
            neural->ScoreBatch(chunk);
        for (size_t i = begin; i < end; ++i) {
          result.ranks[i] =
              RankOfTarget(scores[i - begin], test[i].target);
        }
      }
    });
  } else {
    par::For(0, static_cast<int64_t>(n), 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        const Example& ex = test[static_cast<size_t>(i)];
        const std::vector<float> scores = model->ScoreAll(ex);
        result.ranks[static_cast<size_t>(i)] = RankOfTarget(scores, ex.target);
      }
    });
  }
  for (int rank : result.ranks) acc.Add(rank);
  const double seconds = timer.ElapsedSeconds();
  example_counter->Add(static_cast<int64_t>(n));
  if (seconds > 0.0) {
    throughput_gauge->Set(static_cast<double>(n) / seconds);
  }
  result.report = ReportAt(acc, ks);
  return result;
}

}  // namespace embsr
