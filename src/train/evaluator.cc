#include "train/evaluator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace embsr {

std::vector<double> EvalResult::ReciprocalRanksAt(int k) const {
  std::vector<double> out;
  out.reserve(ranks.size());
  for (int r : ranks) out.push_back(r <= k ? 1.0 / r : 0.0);
  return out;
}

EvalResult Evaluate(Recommender* model, const std::vector<Example>& test,
                    const std::vector<int>& ks, size_t max_examples) {
  EMBSR_TRACE_SPAN("eval/evaluate");
  static obs::Counter* example_counter =
      obs::Registry::Global().GetCounter("eval/examples");
  static obs::Gauge* throughput_gauge =
      obs::Registry::Global().GetGauge("eval/examples_per_sec");

  EMBSR_CHECK(model != nullptr);
  EvalResult result;
  RankAccumulator acc;
  const size_t n =
      max_examples == 0 ? test.size() : std::min(test.size(), max_examples);
  result.ranks.reserve(n);
  WallTimer timer;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<float> scores = model->ScoreAll(test[i]);
    const int rank = RankOfTarget(scores, test[i].target);
    acc.Add(rank);
    result.ranks.push_back(rank);
  }
  const double seconds = timer.ElapsedSeconds();
  example_counter->Add(static_cast<int64_t>(n));
  if (seconds > 0.0) {
    throughput_gauge->Set(static_cast<double>(n) / seconds);
  }
  result.report = ReportAt(acc, ks);
  return result;
}

}  // namespace embsr
