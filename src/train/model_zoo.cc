#include "train/model_zoo.h"

#include "core/embsr_model.h"
#include "models/baselines_gnn.h"
#include "models/baselines_extra.h"
#include "models/baselines_nonneural.h"
#include "models/baselines_seq.h"

namespace embsr {

std::unique_ptr<Recommender> CreateModel(const std::string& name,
                                         int64_t num_items,
                                         int64_t num_operations,
                                         const TrainConfig& config) {
  if (name == "S-POP") return std::make_unique<SPop>(num_items);
  if (name == "SKNN") return std::make_unique<Sknn>(num_items);
  if (name == "NARM") {
    return std::make_unique<Narm>(num_items, num_operations, config);
  }
  if (name == "STAMP") {
    return std::make_unique<Stamp>(num_items, num_operations, config);
  }
  if (name == "SR-GNN") {
    return std::make_unique<SrGnn>(num_items, num_operations, config);
  }
  if (name == "GC-SAN") {
    return std::make_unique<GcSan>(num_items, num_operations, config);
  }
  if (name == "BERT4Rec") {
    return std::make_unique<Bert4Rec>(num_items, num_operations, config);
  }
  if (name == "SGNN-HN") {
    return std::make_unique<SgnnHn>(num_items, num_operations, config);
  }
  if (name == "RIB") {
    return std::make_unique<Rib>(num_items, num_operations, config);
  }
  if (name == "HUP") {
    return std::make_unique<Hup>(num_items, num_operations, config);
  }
  if (name == "MKM-SR") {
    return std::make_unique<MkmSr>(num_items, num_operations, config);
  }
  if (name == "GRU4Rec") {
    return std::make_unique<Gru4Rec>(num_items, num_operations, config);
  }
  if (name == "FPMC") {
    return std::make_unique<Fpmc>(num_items, num_operations, config);
  }
  if (name == "STAN") return std::make_unique<Stan>(num_items);
  auto make_variant = [&](const EmbsrConfig& vc) {
    return std::make_unique<EmbsrModel>(name, num_items, num_operations,
                                        config, vc);
  };
  if (name == "EMBSR") return make_variant(EmbsrVariants::Full());
  if (name == "EMBSR-NS") return make_variant(EmbsrVariants::NoSelfAttention());
  if (name == "EMBSR-NG") return make_variant(EmbsrVariants::NoGnn());
  if (name == "EMBSR-NF") return make_variant(EmbsrVariants::NoFusionGate());
  if (name == "SGNN-Self") return make_variant(EmbsrVariants::SgnnSelf());
  if (name == "SGNN-Seq-Self") {
    return make_variant(EmbsrVariants::SgnnSeqSelf());
  }
  if (name == "RNN-Self") return make_variant(EmbsrVariants::RnnSelf());
  if (name == "SGNN-Abs-Self") {
    return make_variant(EmbsrVariants::SgnnAbsSelf());
  }
  if (name == "SGNN-Dyadic") return make_variant(EmbsrVariants::SgnnDyadic());
  if (name == "EMBSR-W") return make_variant(EmbsrVariants::WeightedOps());
  return nullptr;
}

std::vector<std::string> Table3ModelNames() {
  return {"S-POP", "SKNN",     "NARM", "STAMP", "SR-GNN", "GC-SAN",
          "BERT4Rec", "SGNN-HN", "RIB",  "HUP",   "MKM-SR", "EMBSR"};
}

std::vector<std::string> MacroModelNames() {
  return {"S-POP", "SKNN",     "NARM",   "STAMP",
          "SR-GNN", "GC-SAN", "BERT4Rec", "SGNN-HN"};
}

}  // namespace embsr
