#ifndef EMBSR_TRAIN_EVALUATOR_H_
#define EMBSR_TRAIN_EVALUATOR_H_

#include <vector>

#include "metrics/metrics.h"
#include "models/recommender.h"

namespace embsr {

/// Outcome of evaluating one model on one test split.
struct EvalResult {
  MetricReport report;
  /// Per-example 1-based rank of the ground truth (for significance tests).
  std::vector<int> ranks;

  /// Per-example reciprocal ranks capped at k (the quantity the paper's
  /// Wilcoxon signed-rank test compares between systems).
  std::vector<double> ReciprocalRanksAt(int k) const;
};

/// Scores every test example with the model and accumulates H@K / M@K.
/// `max_examples` of 0 means the whole split.
EvalResult Evaluate(Recommender* model, const std::vector<Example>& test,
                    const std::vector<int>& ks, size_t max_examples = 0);

}  // namespace embsr

#endif  // EMBSR_TRAIN_EVALUATOR_H_
