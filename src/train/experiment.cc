#include "train/experiment.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "robust/failpoint.h"
#include "train/model_zoo.h"
#include "util/check.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace embsr {

namespace {

/// Stamps `result` as failed and records the degradation in metrics so a
/// sweep's failure count is visible in telemetry.
ExperimentResult FailCell(ExperimentResult result, const std::string& why) {
  result.ok = false;
  result.error = why;
  result.eval = EvalResult{};
  obs::Registry::Global().GetCounter("robust/failed_cells")->Increment();
  EMBSR_LOG(Warning) << result.dataset << " / " << result.model
                     << ": cell failed, continuing sweep: " << why;
  return result;
}

}  // namespace

ExperimentResult RunExperiment(const std::string& model_name,
                               const ProcessedDataset& data,
                               const TrainConfig& config,
                               const std::vector<int>& ks,
                               size_t max_test) {
  ExperimentResult result;
  result.model = model_name;
  result.dataset = data.name;

  if (robust::Failpoints::Global().ShouldFail("experiment.cell")) {
    return FailCell(std::move(result),
                    robust::InjectedFailure("experiment.cell", "cell aborted")
                        .message());
  }

  std::unique_ptr<Recommender> model =
      CreateModel(model_name, data.num_items, data.num_operations, config);
  if (model == nullptr) {
    return FailCell(std::move(result), "unknown model '" + model_name + "'");
  }

  {
    EMBSR_TRACE_SPAN("experiment/fit");
    WallTimer fit_timer;
    const Status status = model->Fit(data);
    result.fit_seconds = fit_timer.ElapsedSeconds();
    if (!status.ok()) {
      return FailCell(std::move(result), "fit failed: " + status.message());
    }
  }

  {
    EMBSR_TRACE_SPAN("experiment/eval");
    WallTimer eval_timer;
    result.eval = Evaluate(model.get(), data.test, ks, max_test);
    result.eval_seconds = eval_timer.ElapsedSeconds();
  }

  EMBSR_LOG(Info) << data.name << " / " << model_name
                  << ": fit=" << result.fit_seconds
                  << "s eval=" << result.eval_seconds << "s H@20="
                  << (result.eval.report.hit.contains(20)
                          ? result.eval.report.hit.at(20)
                          : 0.0);
  return result;
}

std::vector<ExperimentResult> RunExperimentCells(
    const std::vector<std::string>& model_names, const ProcessedDataset& data,
    const TrainConfig& config, const std::vector<int>& ks, size_t max_test) {
  EMBSR_TRACE_SPAN("experiment/cells");
  std::vector<ExperimentResult> results(model_names.size());
  // Grain 1: one cell per chunk. Each loop index writes only its own slot,
  // so the sweep result is in model_names order no matter which thread ran
  // which cell; the pool's no-nesting rule makes the inside of every cell
  // serial, which is what keeps per-cell numbers independent of the sweep.
  par::For(0, static_cast<int64_t>(model_names.size()), 1,
           [&](int64_t lo, int64_t hi) {
             for (int64_t i = lo; i < hi; ++i) {
               const auto idx = static_cast<size_t>(i);
               results[idx] = RunExperiment(model_names[idx], data, config,
                                            ks, max_test);
             }
           });
  return results;
}

TrainConfig BenchTrainConfig() {
  TrainConfig cfg;
  const double scale = BenchScale();
  cfg.epochs = std::max(3, static_cast<int>(9 * scale));
  cfg.batch_size = 64;
  cfg.lr = 0.005f;
  cfg.lr_decay_step = 5;
  cfg.lr_decay_gamma = 0.5f;
  cfg.embedding_dim = 64;
  cfg.dropout = 0.2f;
  cfg.max_train_examples = std::max(300, static_cast<int>(2200 * scale));
  cfg.validate_every = 2;
  return cfg;
}

std::string FormatMetricTable(const std::string& dataset,
                              const std::vector<ExperimentResult>& results,
                              const std::vector<int>& ks) {
  std::vector<std::string> header{"Metric"};
  for (const auto& r : results) header.push_back(r.model);
  std::vector<std::vector<std::string>> rows;
  for (int k : ks) {
    std::vector<std::string> hit_row{"H@" + std::to_string(k)};
    std::vector<std::string> mrr_row{"M@" + std::to_string(k)};
    for (const auto& r : results) {
      if (!r.ok || !r.eval.report.hit.contains(k)) {
        hit_row.push_back("failed");
        mrr_row.push_back("failed");
        continue;
      }
      hit_row.push_back(FormatDouble(r.eval.report.hit.at(k)));
      mrr_row.push_back(FormatDouble(r.eval.report.mrr.at(k)));
    }
    rows.push_back(std::move(hit_row));
    rows.push_back(std::move(mrr_row));
  }
  return "Dataset: " + dataset + "\n" + RenderTable(header, rows);
}

}  // namespace embsr
