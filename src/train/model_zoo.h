#ifndef EMBSR_TRAIN_MODEL_ZOO_H_
#define EMBSR_TRAIN_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "models/recommender.h"

namespace embsr {

/// Builds any model in the paper's comparison by name. Recognized names:
/// "S-POP", "SKNN", "NARM", "STAMP", "SR-GNN", "GC-SAN", "BERT4Rec",
/// "SGNN-HN", "RIB", "HUP", "MKM-SR", "EMBSR", and the EMBSR variants
/// "EMBSR-NS", "EMBSR-NG", "EMBSR-NF", "SGNN-Self", "SGNN-Seq-Self",
/// "RNN-Self", "SGNN-Abs-Self", "SGNN-Dyadic". Returns null for unknown
/// names.
std::unique_ptr<Recommender> CreateModel(const std::string& name,
                                         int64_t num_items,
                                         int64_t num_operations,
                                         const TrainConfig& config);

/// The twelve systems of the paper's Table III, in column order.
std::vector<std::string> Table3ModelNames();

/// The macro-behavior subset of the baselines (no operation inputs).
std::vector<std::string> MacroModelNames();

}  // namespace embsr

#endif  // EMBSR_TRAIN_MODEL_ZOO_H_
