#include "graph/session_graph.h"

#include <unordered_map>

#include "util/check.h"

namespace embsr {

SessionMultigraph SessionMultigraph::Build(
    const std::vector<int64_t>& macro_items) {
  EMBSR_CHECK(!macro_items.empty());
  SessionMultigraph g;
  std::unordered_map<int64_t, int> index;
  g.alias_.reserve(macro_items.size());
  for (int64_t item : macro_items) {
    auto [it, inserted] = index.try_emplace(
        item, static_cast<int>(g.nodes_.size()));
    if (inserted) g.nodes_.push_back(item);
    g.alias_.push_back(it->second);
  }
  // lint: allow(raw-resize): adjacency lists sized after node dedup
  g.in_edges_.resize(g.nodes_.size());
  // lint: allow(raw-resize): adjacency lists sized after node dedup
  g.out_edges_.resize(g.nodes_.size());
  for (size_t i = 0; i + 1 < macro_items.size(); ++i) {
    Edge e;
    e.src = g.alias_[i];
    e.dst = g.alias_[i + 1];
    e.order = static_cast<int>(i);
    const int edge_id = static_cast<int>(g.edges_.size());
    g.edges_.push_back(e);
    g.out_edges_[e.src].push_back(edge_id);
    g.in_edges_[e.dst].push_back(edge_id);
  }
  return g;
}

const std::vector<int>& SessionMultigraph::in_edges(int node) const {
  EMBSR_CHECK_GE(node, 0);
  EMBSR_CHECK_LT(node, num_nodes());
  return in_edges_[node];
}

const std::vector<int>& SessionMultigraph::out_edges(int node) const {
  EMBSR_CHECK_GE(node, 0);
  EMBSR_CHECK_LT(node, num_nodes());
  return out_edges_[node];
}

SrgnnAdjacency BuildSrgnnAdjacency(const std::vector<int64_t>& macro_items) {
  EMBSR_CHECK(!macro_items.empty());
  SrgnnAdjacency adj;
  std::unordered_map<int64_t, int> index;
  adj.alias.reserve(macro_items.size());
  for (int64_t item : macro_items) {
    auto [it, inserted] =
        index.try_emplace(item, static_cast<int>(adj.nodes.size()));
    if (inserted) adj.nodes.push_back(item);
    adj.alias.push_back(it->second);
  }
  const int64_t n = static_cast<int64_t>(adj.nodes.size());
  Tensor counts_out({n, n});
  for (size_t i = 0; i + 1 < macro_items.size(); ++i) {
    const int u = adj.alias[i];
    const int v = adj.alias[i + 1];
    counts_out.at2(u, v) += 1.0f;
  }
  // Row-normalize outgoing counts; incoming matrix is the transpose of the
  // counts, row-normalized over *incoming* degree (as in SR-GNN).
  adj.a_out = Tensor({n, n});
  adj.a_in = Tensor({n, n});
  Tensor counts_in = counts_out.Transposed();
  for (int64_t i = 0; i < n; ++i) {
    float out_deg = 0.0f, in_deg = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      out_deg += counts_out.at2(i, j);
      in_deg += counts_in.at2(i, j);
    }
    for (int64_t j = 0; j < n; ++j) {
      if (out_deg > 0.0f) {
        adj.a_out.at2(i, j) = counts_out.at2(i, j) / out_deg;
      }
      if (in_deg > 0.0f) {
        adj.a_in.at2(i, j) = counts_in.at2(i, j) / in_deg;
      }
    }
  }
  return adj;
}

}  // namespace embsr
