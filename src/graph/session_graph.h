#ifndef EMBSR_GRAPH_SESSION_GRAPH_H_
#define EMBSR_GRAPH_SESSION_GRAPH_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace embsr {

/// The directed multigraph a session is converted into (paper Sec. IV-B-1,
/// Fig. 3, "the second way").
///
/// Nodes are the *distinct* items of the macro sequence, in order of first
/// appearance. Every transition v^i -> v^{i+1} becomes its own edge carrying
/// the position `order = i` so that the message passed along it can use the
/// micro-operation sequence the source item had *at that position* — this is
/// exactly what a collapsed weighted graph (Fig. 3's first way) loses.
/// The star node of SGNN-HN is implicit: it is handled by the model, not
/// stored here, because it connects to every satellite bidirectionally.
class SessionMultigraph {
 public:
  struct Edge {
    int src = 0;    ///< node index of v^i
    int dst = 0;    ///< node index of v^{i+1}
    int order = 0;  ///< position i in the macro sequence (0-based)
  };

  /// Builds the multigraph of a macro-item sequence.
  static SessionMultigraph Build(const std::vector<int64_t>& macro_items);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Distinct items, indexable by node id.
  const std::vector<int64_t>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edge indices entering / leaving each node.
  const std::vector<int>& in_edges(int node) const;
  const std::vector<int>& out_edges(int node) const;

  /// Maps each macro-sequence position to its node index (the "alias").
  const std::vector<int>& alias() const { return alias_; }

 private:
  std::vector<int64_t> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> in_edges_;
  std::vector<std::vector<int>> out_edges_;
  std::vector<int> alias_;
};

/// The collapsed weighted session graph of SR-GNN (Fig. 3's first way):
/// row-normalized in/out adjacency over distinct items. Returned matrices
/// are [n, n] with n = number of distinct items; `alias` maps sequence
/// positions to rows.
struct SrgnnAdjacency {
  std::vector<int64_t> nodes;
  std::vector<int> alias;
  Tensor a_in;
  Tensor a_out;
};

SrgnnAdjacency BuildSrgnnAdjacency(const std::vector<int64_t>& macro_items);

}  // namespace embsr

#endif  // EMBSR_GRAPH_SESSION_GRAPH_H_
