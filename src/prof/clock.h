#ifndef EMBSR_PROF_CLOCK_H_
#define EMBSR_PROF_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace embsr {
namespace prof {

/// Monotonic nanosecond clock for all profiler timestamps. The prof layer
/// (with obs and util) is one of the three places allowed to read
/// std::chrono directly — everything else must measure through the
/// instrumented paths (lint rule `raw-chrono`), so profiles stay complete.
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace prof
}  // namespace embsr

#endif  // EMBSR_PROF_CLOCK_H_
