#include "prof/pool_stats.h"

namespace embsr {
namespace prof {

namespace {

constexpr int kMaxLanes = 257;  // submitter + up to 256 workers

struct LaneSlot {
  std::atomic<int64_t> busy_ns{0};
  std::atomic<int64_t> chunks{0};
};

LaneSlot g_lanes[kMaxLanes];
std::atomic<int> g_max_lane_seen{-1};

}  // namespace

namespace internal {

std::atomic<bool> g_pool_enabled{false};

void ResetLaneStats() {
  for (auto& slot : g_lanes) {
    slot.busy_ns.store(0, std::memory_order_relaxed);
    slot.chunks.store(0, std::memory_order_relaxed);
  }
  g_max_lane_seen.store(-1, std::memory_order_relaxed);
}

}  // namespace internal

void AddLaneBusy(int lane, int64_t busy_ns, int64_t chunks) {
  if (lane < 0) return;
  if (lane >= kMaxLanes) lane = kMaxLanes - 1;
  g_lanes[lane].busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
  g_lanes[lane].chunks.fetch_add(chunks, std::memory_order_relaxed);
  int seen = g_max_lane_seen.load(std::memory_order_relaxed);
  while (lane > seen && !g_max_lane_seen.compare_exchange_weak(
                            seen, lane, std::memory_order_relaxed)) {
  }
}

std::vector<LaneStats> LaneSnapshot() {
  int hi = g_max_lane_seen.load(std::memory_order_relaxed);
  std::vector<LaneStats> out;
  out.reserve(hi + 1);
  for (int i = 0; i <= hi; ++i) {
    LaneStats s;
    s.busy_ns = g_lanes[i].busy_ns.load(std::memory_order_relaxed);
    s.chunks = g_lanes[i].chunks.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

}  // namespace prof
}  // namespace embsr
