#ifndef EMBSR_PROF_POOL_STATS_H_
#define EMBSR_PROF_POOL_STATS_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace embsr {
namespace prof {

namespace internal {
// Mirrors the profiler enable flag; par reads this (one relaxed load per
// chunk batch) instead of reaching up into the profiler object.
extern std::atomic<bool> g_pool_enabled;
}  // namespace internal

inline bool PoolProfilingEnabled() {
  return internal::g_pool_enabled.load(std::memory_order_relaxed);
}

/// Cumulative per-lane accounting since prof::Start(). Lane 0 is the
/// submitting thread (the pool's fork-join design has the submitter work
/// too); lanes 1..N are pool workers.
struct LaneStats {
  int64_t busy_ns = 0;
  int64_t chunks = 0;
};

/// Accumulates busy time + chunk count for a lane. Lanes beyond the fixed
/// slot budget (256 workers) are folded into the last slot.
void AddLaneBusy(int lane, int64_t busy_ns, int64_t chunks);

/// Snapshot trimmed to the highest lane that recorded anything.
std::vector<LaneStats> LaneSnapshot();

namespace internal {
void ResetLaneStats();
}  // namespace internal

}  // namespace prof
}  // namespace embsr

#endif  // EMBSR_PROF_POOL_STATS_H_
