#include "prof/op_profiler.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "obs/metrics.h"
#include "util/env.h"

namespace embsr {
namespace prof {

namespace {

struct OpStats {
  int64_t calls = 0;
  int64_t backward_calls = 0;
  int64_t forward_ns = 0;
  int64_t backward_ns = 0;
  double flops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  int64_t alloc_bytes = 0;
};

// Per-thread shard. The owning thread takes the (uncontended) mutex per
// record; Snapshot() takes it briefly per shard. Shards are leaked so a
// snapshot after a recording thread exits still sees its data.
struct Shard {
  std::mutex mu;
  std::map<std::string, OpStats> ops;
  std::map<std::string, OpStats> components;
  int64_t last_mark_ns = 0;  // 0 = no origin; first record charges 0 gap
};

std::mutex g_shards_mu;
std::vector<Shard*>& Shards() {
  static std::vector<Shard*>* v =
      new std::vector<Shard*>();  // lint: allow(raw-new): leaked singleton
  return *v;
}

Shard& LocalShard() {
  thread_local Shard* shard = [] {
    // Leaked so snapshots taken after a recording thread exits stay valid
    // (same lifetime policy as obs trace buffers).
    Shard* s = new Shard();  // lint: allow(raw-new): leaked per-thread shard
    std::lock_guard<std::mutex> lock(g_shards_mu);
    Shards().push_back(s);
    return s;
  }();
  return *shard;
}

Collector* Singleton() {
  static Collector* c = new Collector();  // lint: allow(raw-new): leaked singleton
  return c;
}

const char* ComponentKey(const char* component) {
  return component == nullptr ? "(none)" : component;
}

std::atomic<int64_t> g_steps{0};
std::atomic<int64_t> g_step_ns{0};
std::atomic<int64_t> g_start_ns{0};
std::atomic<int64_t> g_stop_ns{0};

thread_local const char* t_component = nullptr;

obs::Counter* UncoveredOpCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("prof/uncovered_cost_ops");
  return c;
}

}  // namespace

std::atomic<Collector*> Collector::g_active{nullptr};

void Collector::RecordForward(const char* op, const char* component,
                              const OpCost& cost) {
  const int64_t now = NowNs();
  const int64_t pending = internal::TakePendingAllocBytes();
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  const int64_t gap =
      shard.last_mark_ns == 0 ? 0 : now - shard.last_mark_ns;
  shard.last_mark_ns = now;
  OpStats& s = shard.ops[op];
  s.calls += 1;
  s.forward_ns += gap;
  s.flops += cost.flops;
  s.bytes_read += cost.bytes_read;
  s.bytes_written += cost.bytes_written;
  s.alloc_bytes += pending;
  OpStats& c = shard.components[ComponentKey(component)];
  c.calls += 1;
  c.forward_ns += gap;
  c.flops += cost.flops;
  c.bytes_read += cost.bytes_read;
  c.bytes_written += cost.bytes_written;
  c.alloc_bytes += pending;
}

void Collector::RecordBackward(const char* op, const char* component,
                               int64_t ns) {
  const int64_t pending = internal::TakePendingAllocBytes();
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  OpStats& s = shard.ops[op];
  s.backward_calls += 1;
  s.backward_ns += ns;
  s.alloc_bytes += pending;
  OpStats& c = shard.components[ComponentKey(component)];
  c.backward_calls += 1;
  c.backward_ns += ns;
  c.alloc_bytes += pending;
}

void Collector::MarkThisThread() {
  if (ActiveOrNull() == nullptr) return;
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.last_mark_ns = NowNs();
}

void Collector::AddStep(int64_t ns) {
  g_steps.fetch_add(1, std::memory_order_relaxed);
  g_step_ns.fetch_add(ns, std::memory_order_relaxed);
}

void Start() {
  {
    std::lock_guard<std::mutex> lock(g_shards_mu);
    for (Shard* s : Shards()) {
      std::lock_guard<std::mutex> sl(s->mu);
      s->ops.clear();
      s->components.clear();
      s->last_mark_ns = 0;
    }
  }
  internal::ResetMemStats();
  internal::ResetLaneStats();
  g_steps.store(0, std::memory_order_relaxed);
  g_step_ns.store(0, std::memory_order_relaxed);
  g_start_ns.store(NowNs(), std::memory_order_relaxed);
  g_stop_ns.store(0, std::memory_order_relaxed);
  internal::g_mem_enabled.store(true, std::memory_order_relaxed);
  internal::g_pool_enabled.store(true, std::memory_order_relaxed);
  // Release so a thread that observes the collector also observes the
  // cleared shard/memory state.
  Collector::g_active.store(Singleton(), std::memory_order_release);
}

void Stop() {
  Collector::g_active.store(nullptr, std::memory_order_release);
  internal::g_mem_enabled.store(false, std::memory_order_relaxed);
  internal::g_pool_enabled.store(false, std::memory_order_relaxed);
  if (g_start_ns.load(std::memory_order_relaxed) != 0) {
    g_stop_ns.store(NowNs(), std::memory_order_relaxed);
  }
}

void MaybeInitFromEnv() {
  static const bool started = [] {
    if (GetEnvInt("EMBSR_PROF", 0) != 1) return false;
    if (GetEnvInt("EMBSR_PROF_TIMELINE", 0) == 1) {
      SetTimelineCapture(true,
                         GetEnvInt("EMBSR_PROF_TIMELINE_CAP", 65536));
    }
    Start();
    return true;
  }();
  (void)started;
}

double ProfiledSeconds() {
  const int64_t start = g_start_ns.load(std::memory_order_relaxed);
  if (start == 0) return 0.0;
  int64_t stop = g_stop_ns.load(std::memory_order_relaxed);
  if (Enabled() || stop == 0) stop = NowNs();
  return static_cast<double>(stop - start) * 1e-9;
}

const char* CurrentComponent() { return t_component; }

StepScope::StepScope() : collector_(Collector::ActiveOrNull()) {
  if (collector_ == nullptr) return;
  Collector::MarkThisThread();
  t0_ = NowNs();
}

StepScope::~StepScope() {
  if (collector_ == nullptr) return;
  collector_->AddStep(NowNs() - t0_);
}

ComponentScope::ComponentScope(const char* name) : prev_(t_component) {
  t_component = name;
}

ComponentScope::~ComponentScope() { t_component = prev_; }

ProfileSnapshot Snapshot() {
  ProfileSnapshot snap;
  snap.enabled = Enabled();
  snap.profiled_seconds = ProfiledSeconds();
  snap.steps = g_steps.load(std::memory_order_relaxed);
  snap.step_ns = g_step_ns.load(std::memory_order_relaxed);

  std::map<std::string, OpStats> ops;
  std::map<std::string, OpStats> components;
  {
    std::lock_guard<std::mutex> lock(g_shards_mu);
    for (Shard* shard : Shards()) {
      std::lock_guard<std::mutex> sl(shard->mu);
      for (const auto& kv : shard->ops) {
        OpStats& dst = ops[kv.first];
        const OpStats& src = kv.second;
        dst.calls += src.calls;
        dst.backward_calls += src.backward_calls;
        dst.forward_ns += src.forward_ns;
        dst.backward_ns += src.backward_ns;
        dst.flops += src.flops;
        dst.bytes_read += src.bytes_read;
        dst.bytes_written += src.bytes_written;
        dst.alloc_bytes += src.alloc_bytes;
      }
      for (const auto& kv : shard->components) {
        OpStats& dst = components[kv.first];
        const OpStats& src = kv.second;
        dst.calls += src.calls;
        dst.backward_calls += src.backward_calls;
        dst.forward_ns += src.forward_ns;
        dst.backward_ns += src.backward_ns;
        dst.flops += src.flops;
        dst.bytes_read += src.bytes_read;
        dst.bytes_written += src.bytes_written;
        dst.alloc_bytes += src.alloc_bytes;
      }
    }
  }
  auto to_aggs = [](const std::map<std::string, OpStats>& m) {
    std::vector<OpAgg> aggs;
    aggs.reserve(m.size());
    for (const auto& kv : m) {
      OpAgg a;
      a.name = kv.first;
      a.calls = kv.second.calls;
      a.backward_calls = kv.second.backward_calls;
      a.forward_ns = kv.second.forward_ns;
      a.backward_ns = kv.second.backward_ns;
      a.flops = kv.second.flops;
      a.bytes_read = kv.second.bytes_read;
      a.bytes_written = kv.second.bytes_written;
      a.alloc_bytes = kv.second.alloc_bytes;
      aggs.push_back(std::move(a));
    }
    std::stable_sort(aggs.begin(), aggs.end(),
                     [](const OpAgg& x, const OpAgg& y) {
                       return x.forward_ns + x.backward_ns >
                              y.forward_ns + y.backward_ns;
                     });
    return aggs;
  };
  snap.ops = to_aggs(ops);
  snap.components = to_aggs(components);
  snap.mem = MemSnapshot();
  snap.timeline_events = static_cast<int64_t>(TimelineSnapshot().size());
  snap.timeline_dropped = TimelineDropped();
  snap.lanes = LaneSnapshot();
  return snap;
}

void CountUncoveredOp() { UncoveredOpCounter()->Increment(); }

}  // namespace prof
}  // namespace embsr
