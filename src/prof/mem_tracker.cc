#include "prof/mem_tracker.h"

#include <mutex>

#include "prof/clock.h"

namespace embsr {
namespace prof {

namespace {

std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};
std::atomic<int64_t> g_alloc_count{0};
std::atomic<int64_t> g_free_count{0};
std::atomic<int64_t> g_alloc_bytes_total{0};

thread_local int64_t t_pending_alloc_bytes = 0;

std::mutex g_timeline_mu;
bool g_timeline_on = false;
int64_t g_timeline_cap = 65536;
std::vector<MemEvent>* g_timeline = nullptr;  // leaked, exit-safe
std::atomic<int64_t> g_timeline_dropped{0};

void RecordEvent(int64_t delta, int64_t live) {
  std::lock_guard<std::mutex> lock(g_timeline_mu);
  if (!g_timeline_on) return;
  if (g_timeline == nullptr) {
    g_timeline =
        new std::vector<MemEvent>();  // lint: allow(raw-new): leaked, exit-safe
  }
  if (static_cast<int64_t>(g_timeline->size()) >= g_timeline_cap) {
    g_timeline_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  g_timeline->push_back(MemEvent{NowNs(), delta, live});
}

}  // namespace

namespace internal {

std::atomic<bool> g_mem_enabled{false};

void OnAllocSlow(int64_t bytes) {
  int64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // CAS-max: racing allocators may each think they set the peak, but the
  // final value is the true maximum of all observed watermarks.
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes_total.fetch_add(bytes, std::memory_order_relaxed);
  t_pending_alloc_bytes += bytes;
  RecordEvent(bytes, live);
}

void OnFreeSlow(int64_t bytes) {
  int64_t live =
      g_live_bytes.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  g_free_count.fetch_add(1, std::memory_order_relaxed);
  RecordEvent(-bytes, live);
}

int64_t TakePendingAllocBytes() {
  int64_t v = t_pending_alloc_bytes;
  t_pending_alloc_bytes = 0;
  return v;
}

void ResetMemStats() {
  // live bytes carry across sessions (tensors outlive Start); the peak
  // collapses to the current watermark so each session reports its own max.
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_free_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes_total.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_timeline_mu);
  if (g_timeline != nullptr) g_timeline->clear();
  g_timeline_dropped.store(0, std::memory_order_relaxed);
}

}  // namespace internal

MemStats MemSnapshot() {
  MemStats s;
  s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  s.peak_bytes = g_peak_bytes.load(std::memory_order_relaxed);
  s.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
  s.free_count = g_free_count.load(std::memory_order_relaxed);
  s.alloc_bytes_total = g_alloc_bytes_total.load(std::memory_order_relaxed);
  return s;
}

void SetTimelineCapture(bool enabled, int64_t cap) {
  std::lock_guard<std::mutex> lock(g_timeline_mu);
  g_timeline_on = enabled;
  if (cap > 0) g_timeline_cap = cap;
}

std::vector<MemEvent> TimelineSnapshot() {
  std::lock_guard<std::mutex> lock(g_timeline_mu);
  return g_timeline == nullptr ? std::vector<MemEvent>() : *g_timeline;
}

int64_t TimelineDropped() {
  return g_timeline_dropped.load(std::memory_order_relaxed);
}

}  // namespace prof
}  // namespace embsr
