#ifndef EMBSR_PROF_MEM_TRACKER_H_
#define EMBSR_PROF_MEM_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace embsr {
namespace prof {

namespace internal {

// Flipped by prof::Start()/Stop(). A relaxed load of this flag is the ONLY
// cost a Tensor alloc/free pays when profiling is off (the
// zero-overhead-when-off guarantee, pinned by perf_regression_test).
extern std::atomic<bool> g_mem_enabled;

void OnAllocSlow(int64_t bytes);
void OnFreeSlow(int64_t bytes);

// Tensor bytes allocated on this thread since the last call; the op
// profiler drains this at each record point to attribute footprints to ops.
int64_t TakePendingAllocBytes();

}  // namespace internal

/// Called from Tensor construction/destruction (inline, header-only hooks so
/// tensor — which sits *above* prof — pays one branch when profiling is
/// off). `elems` is the float element count of the owned buffer.
///
/// Returns whether the allocation was counted; the tensor carries that flag
/// and hands it back to OnTensorFree so only counted buffers are subtracted.
/// This keeps live_bytes exact (and non-negative): a tensor allocated
/// before prof::Start() and freed during the session is simply invisible,
/// instead of driving the watermark negative.
inline bool OnTensorAlloc(int64_t elems) {
  if (elems != 0 &&
      internal::g_mem_enabled.load(std::memory_order_relaxed)) {
    internal::OnAllocSlow(elems * static_cast<int64_t>(sizeof(float)));
    return true;
  }
  return false;
}

/// `counted` must be the value OnTensorAlloc returned for this buffer. A
/// counted buffer is subtracted even after Stop() so live_bytes stays exact
/// across sessions; an uncounted one costs a single predictable branch.
inline void OnTensorFree(int64_t elems, bool counted) {
  if (counted && elems != 0) {
    internal::OnFreeSlow(elems * static_cast<int64_t>(sizeof(float)));
  }
}

struct MemStats {
  int64_t live_bytes = 0;
  int64_t peak_bytes = 0;
  int64_t alloc_count = 0;
  int64_t free_count = 0;
  int64_t alloc_bytes_total = 0;
};

MemStats MemSnapshot();

/// One allocation/free event; `delta_bytes` is signed (negative = free),
/// `live_bytes` is the post-event global watermark. This is the size +
/// lifetime stream the ROADMAP-item-3 arena planner consumes.
struct MemEvent {
  int64_t ts_ns = 0;  // NowNs() at event time
  int64_t delta_bytes = 0;
  int64_t live_bytes = 0;
};

/// Timeline capture is off by default (EMBSR_PROF_TIMELINE=1 enables it,
/// EMBSR_PROF_TIMELINE_CAP bounds it, default 65536 events); events past
/// the cap are counted in TimelineDropped() instead of recorded.
void SetTimelineCapture(bool enabled, int64_t cap);
std::vector<MemEvent> TimelineSnapshot();
int64_t TimelineDropped();

namespace internal {
// Reset counters at prof::Start(): peak collapses to the current live
// watermark (live bytes carry across sessions — tensors outlive Start).
void ResetMemStats();
}  // namespace internal

}  // namespace prof
}  // namespace embsr

#endif  // EMBSR_PROF_MEM_TRACKER_H_
