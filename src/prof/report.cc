#include <algorithm>
#include <cstdint>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "prof/op_profiler.h"

namespace embsr {
namespace prof {

namespace {

constexpr double kNsToMs = 1e-6;

void WriteAgg(obs::JsonWriter& w, const char* name_key, const OpAgg& a) {
  w.BeginObject();
  w.Key(name_key).String(a.name);
  w.Key("calls").Int(a.calls);
  w.Key("forward_ms").Number(static_cast<double>(a.forward_ns) * kNsToMs);
  w.Key("backward_calls").Int(a.backward_calls);
  w.Key("backward_ms").Number(static_cast<double>(a.backward_ns) * kNsToMs);
  w.Key("flops").Number(a.flops);
  w.Key("bytes_read").Number(a.bytes_read);
  w.Key("bytes_written").Number(a.bytes_written);
  w.Key("alloc_bytes").Int(a.alloc_bytes);
  w.EndObject();
}

}  // namespace

std::string ProfileJson(int top_n) {
  const ProfileSnapshot snap = Snapshot();

  int64_t attributed_fwd_ns = 0;
  int64_t attributed_bwd_ns = 0;
  double flops_total = 0.0;
  double bytes_total = 0.0;
  for (const OpAgg& a : snap.ops) {
    attributed_fwd_ns += a.forward_ns;
    attributed_bwd_ns += a.backward_ns;
    flops_total += a.flops;
    bytes_total += a.bytes_read + a.bytes_written;
  }
  const double attributed_s =
      static_cast<double>(attributed_fwd_ns + attributed_bwd_ns) * 1e-9;

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("enabled").Bool(snap.enabled || snap.steps > 0 ||
                        !snap.ops.empty());
  w.Key("profiled_seconds").Number(snap.profiled_seconds);
  w.Key("steps").Int(snap.steps);
  w.Key("step_ms").Number(static_cast<double>(snap.step_ns) * kNsToMs);
  w.Key("attributed_forward_ms")
      .Number(static_cast<double>(attributed_fwd_ns) * kNsToMs);
  w.Key("attributed_backward_ms")
      .Number(static_cast<double>(attributed_bwd_ns) * kNsToMs);

  w.Key("top_ops").BeginArray();
  const size_t n_ops =
      std::min(snap.ops.size(), static_cast<size_t>(std::max(top_n, 0)));
  for (size_t i = 0; i < n_ops; ++i) WriteAgg(w, "op", snap.ops[i]);
  w.EndArray();

  w.Key("components").BeginArray();
  for (const OpAgg& a : snap.components) WriteAgg(w, "component", a);
  w.EndArray();

  w.Key("memory").BeginObject();
  w.Key("live_bytes").Int(snap.mem.live_bytes);
  w.Key("peak_bytes").Int(snap.mem.peak_bytes);
  w.Key("alloc_count").Int(snap.mem.alloc_count);
  w.Key("free_count").Int(snap.mem.free_count);
  w.Key("alloc_bytes_total").Int(snap.mem.alloc_bytes_total);
  w.Key("timeline_events").Int(snap.timeline_events);
  w.Key("timeline_dropped").Int(snap.timeline_dropped);
  w.EndObject();

  // Lane utilization: busy vs the profiled wall span. On a single-core
  // host only lane 0 (the submitter) appears.
  const double span_ms = snap.profiled_seconds * 1e3;
  w.Key("lanes").BeginArray();
  for (size_t i = 0; i < snap.lanes.size(); ++i) {
    const double busy_ms =
        static_cast<double>(snap.lanes[i].busy_ns) * kNsToMs;
    w.BeginObject();
    w.Key("lane").Int(static_cast<int64_t>(i));
    w.Key("busy_ms").Number(busy_ms);
    w.Key("idle_ms").Number(std::max(0.0, span_ms - busy_ms));
    w.Key("chunks").Int(snap.lanes[i].chunks);
    w.EndObject();
  }
  w.EndArray();

  // Chunk latency / imbalance percentiles from the obs histograms the pool
  // feeds while profiling (zeros when the pool never ran).
  obs::Registry& reg = obs::Registry::Global();
  obs::Histogram* chunk_ms =
      reg.GetHistogram("par/chunk_ms", obs::DefaultLatencyBucketsMs());
  obs::Histogram* imbalance = reg.GetHistogram(
      "par/chunk_imbalance_pct",
      {100.0, 110.0, 125.0, 150.0, 200.0, 300.0, 500.0, 1000.0});
  w.Key("pool").BeginObject();
  w.Key("chunk_ms_p50").Number(chunk_ms->Percentile(50.0));
  w.Key("chunk_ms_p99").Number(chunk_ms->Percentile(99.0));
  w.Key("chunk_imbalance_pct_p50").Number(imbalance->Percentile(50.0));
  w.Key("chunk_imbalance_pct_p99").Number(imbalance->Percentile(99.0));
  w.EndObject();

  // Naive roofline inputs: totals from the analytic cost models over the
  // *attributed* time. A traffic lower bound, not a cache simulation.
  w.Key("roofline").BeginObject();
  w.Key("flops_total").Number(flops_total);
  w.Key("bytes_total").Number(bytes_total);
  w.Key("intensity_flops_per_byte")
      .Number(bytes_total > 0.0 ? flops_total / bytes_total : 0.0);
  w.Key("achieved_gflops")
      .Number(attributed_s > 0.0 ? flops_total / attributed_s * 1e-9 : 0.0);
  w.Key("achieved_gbytes_per_sec")
      .Number(attributed_s > 0.0 ? bytes_total / attributed_s * 1e-9 : 0.0);
  w.EndObject();

  w.EndObject();
  return w.str();
}

}  // namespace prof
}  // namespace embsr
