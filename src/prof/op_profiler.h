#ifndef EMBSR_PROF_OP_PROFILER_H_
#define EMBSR_PROF_OP_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "prof/clock.h"
#include "prof/cost_model.h"
#include "prof/mem_tracker.h"
#include "prof/pool_stats.h"

namespace embsr {
namespace prof {

/// Aggregated statistics for one op name (or one model component).
struct OpAgg {
  std::string name;
  int64_t calls = 0;
  int64_t backward_calls = 0;
  int64_t forward_ns = 0;
  int64_t backward_ns = 0;
  double flops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  int64_t alloc_bytes = 0;
};

/// Per-op attribution collector. Forward time is *gap-based*: each recorded
/// node is charged the wall time since the previous record point (or mark)
/// on its thread, so within a StepScope the per-op forward times sum to the
/// step span minus the explicitly-timed backward pass — that is what makes
/// the "attributed time sums to the step span" acceptance test possible.
/// Backward time is measured directly around each node's backward_fn.
///
/// All state is sharded per thread; shards are leaked (like obs trace
/// buffers) so snapshots after thread exit stay valid.
class Collector {
 public:
  /// One acquire load; nullptr whenever profiling is off. This is the
  /// single branch the EMBSR_PROF-off fast path pays per recorded op.
  static Collector* ActiveOrNull() {
    return g_active.load(std::memory_order_acquire);
  }

  /// Charges the gap since the last record point / mark on this thread to
  /// `op`, adds the modeled cost, and drains pending tensor-alloc bytes.
  /// `component` may be null ("(none)" in the rollup).
  void RecordForward(const char* op, const char* component,
                     const OpCost& cost);

  /// Adds a directly-measured backward duration for `op`.
  void RecordBackward(const char* op, const char* component, int64_t ns);

  /// Resets this thread's forward-gap origin to now. Call at the start of
  /// any timed region (StepScope does this) and after a backward pass, so
  /// unrelated time is never charged to the next recorded op.
  static void MarkThisThread();

  void AddStep(int64_t ns);

 private:
  friend void Start();
  friend void Stop();
  friend class ProfileAccess;

  static std::atomic<Collector*> g_active;
};

/// True while a profiling session is active.
inline bool Enabled() { return Collector::ActiveOrNull() != nullptr; }

/// Starts a profiling session: clears all per-op/memory/lane state and
/// enables the tensor + pool hooks. Stop() freezes the data for snapshots.
void Start();
void Stop();

/// Starts a session once per process if EMBSR_PROF=1 (reads the timeline
/// knobs too). Called from bench_common, NeuralSessionModel::Fit and the
/// evaluator so `EMBSR_PROF=1 ./bench_x` needs no code changes.
void MaybeInitFromEnv();

/// Wall seconds from Start() to Stop() (or to now while active).
double ProfiledSeconds();

/// Innermost active component label on this thread, or nullptr.
const char* CurrentComponent();

/// RAII: brackets one optimization step (one example's forward+backward in
/// the current trainer). Accumulates the step span and re-marks the thread
/// so gap attribution starts fresh.
class StepScope {
 public:
  StepScope();
  ~StepScope();

  StepScope(const StepScope&) = delete;
  StepScope& operator=(const StepScope&) = delete;

 private:
  Collector* collector_;
  int64_t t0_ = 0;
};

/// RAII: labels ops recorded on this thread with a model-component name
/// (e.g. "gru", "attention"). Labels must be string literals (stored by
/// pointer). Nesting keeps the innermost label.
class ComponentScope {
 public:
  explicit ComponentScope(const char* name);
  ~ComponentScope();

  ComponentScope(const ComponentScope&) = delete;
  ComponentScope& operator=(const ComponentScope&) = delete;

 private:
  const char* prev_;
};

/// Point-in-time merge of every shard plus memory/lane/step state.
struct ProfileSnapshot {
  bool enabled = false;
  double profiled_seconds = 0.0;
  int64_t steps = 0;
  int64_t step_ns = 0;
  std::vector<OpAgg> ops;         // sorted by forward+backward ns, desc
  std::vector<OpAgg> components;  // same order
  MemStats mem;
  int64_t timeline_events = 0;
  int64_t timeline_dropped = 0;
  std::vector<LaneStats> lanes;
};

ProfileSnapshot Snapshot();

/// Bumps `prof/uncovered_cost_ops` — recorded when an op reaches the
/// profiler without a registered cost model. The source scan should make
/// this impossible; the counter is a runtime tripwire for it.
void CountUncoveredOp();

/// The BENCH_*.json schema-v3 `profile` block (one JSON object; see
/// DESIGN.md §13 and scripts/check_bench_json.py). Valid — with
/// `"enabled": false` — even when no session ever ran.
std::string ProfileJson(int top_n = 20);

}  // namespace prof
}  // namespace embsr

#endif  // EMBSR_PROF_OP_PROFILER_H_
