#ifndef EMBSR_PROF_COST_MODEL_H_
#define EMBSR_PROF_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace embsr {
namespace prof {

/// Analytic cost of one forward evaluation of an autograd op. The contract
/// (DESIGN.md §13): flops counts arithmetic operations (a fused
/// multiply-add is 2), bytes assume every operand is streamed from / to
/// memory exactly once at 4 bytes per float — a *traffic lower bound*, not
/// a cache model. Transcendentals (exp, tanh, ...) are charged a flat
/// 4 flops per element.
struct OpCost {
  double flops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
};

/// Shapes visible at node-record time. prof sits *below* tensor in the
/// layer DAG, so cost functions receive plain dimension vectors, never
/// Tensor objects.
struct ShapeInfo {
  std::vector<std::vector<int64_t>> inputs;
  std::vector<int64_t> output;
};

/// Number of elements in a shape ([] is a scalar: 1 element).
int64_t NumElems(const std::vector<int64_t>& shape);

using CostFn = OpCost (*)(const ShapeInfo&);

/// Registers (or overwrites) the cost model for `op`. Op names are the
/// string literals passed to ag::MakeOp. Thread-safe.
void RegisterOpCost(const std::string& op, CostFn fn);

/// Returns the registered cost model, or nullptr. Thread-safe.
CostFn FindOpCost(const char* op);

/// Sorted names of every registered cost model (coverage scans compare
/// this against the ops.h declaration list).
std::vector<std::string> RegisteredOpCostNames();

}  // namespace prof
}  // namespace embsr

#endif  // EMBSR_PROF_COST_MODEL_H_
