#include "prof/cost_model.h"

#include <algorithm>
#include <map>
#include <mutex>

namespace embsr {
namespace prof {

namespace {

// Lookups happen only while profiling is enabled, so a plain mutex-guarded
// map is fine; the EMBSR_PROF-off fast path never reaches here.
std::mutex g_mu;
std::map<std::string, CostFn>& Registry() {
  static std::map<std::string, CostFn>* m =
      new std::map<std::string, CostFn>();  // lint: allow(raw-new): leaked singleton
  return *m;
}

}  // namespace

int64_t NumElems(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

void RegisterOpCost(const std::string& op, CostFn fn) {
  std::lock_guard<std::mutex> lock(g_mu);
  Registry()[op] = fn;
}

CostFn FindOpCost(const char* op) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto& reg = Registry();
  auto it = reg.find(op);
  return it == reg.end() ? nullptr : it->second;
}

std::vector<std::string> RegisteredOpCostNames() {
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& kv : Registry()) names.push_back(kv.first);
  return names;  // std::map iterates sorted
}

}  // namespace prof
}  // namespace embsr
