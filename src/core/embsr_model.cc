#include "core/embsr_model.h"

#include <algorithm>
#include <cmath>

#include "graph/session_graph.h"
#include "obs/trace.h"
#include "util/check.h"

namespace embsr {

using ag::Variable;

namespace {

template <typename T>
std::vector<T> Tail(const std::vector<T>& v, size_t max_len) {
  if (v.size() <= max_len) return v;
  return std::vector<T>(v.end() - max_len, v.end());
}

/// 0/1 scatter matrix S [num_nodes, num_edges] with S[node_of(e), e] = 1;
/// multiplying S by per-edge messages sums them per node.
Tensor ScatterMatrix(int64_t num_nodes, const std::vector<int>& edge_nodes) {
  Tensor s({num_nodes, static_cast<int64_t>(edge_nodes.size())});
  for (size_t e = 0; e < edge_nodes.size(); ++e) {
    s.at2(edge_nodes[e], static_cast<int64_t>(e)) = 1.0f;
  }
  return s;
}

}  // namespace

EmbsrModel::EmbsrModel(std::string name, int64_t num_items,
                       int64_t num_operations, const TrainConfig& train_cfg,
                       const EmbsrConfig& cfg)
    : NeuralSessionModel(std::move(name), num_items, num_operations,
                         train_cfg),
      cfg_(cfg),
      virtual_op_(num_operations),
      items_(num_items, train_cfg.embedding_dim, rng()),
      ops_(num_operations + 1, train_cfg.embedding_dim, rng()),
      relations_((num_operations + 1) * (num_operations + 1),
                 train_cfg.embedding_dim, rng()),
      positions_(train_cfg.max_positions + 1, train_cfg.embedding_dim,
                 rng()),
      micro_gru_(train_cfg.embedding_dim, train_cfg.embedding_dim, rng()),
      msg_in_(2 * train_cfg.embedding_dim, train_cfg.embedding_dim, rng()),
      msg_out_(2 * train_cfg.embedding_dim, train_cfg.embedding_dim, rng()),
      highway_(2 * train_cfg.embedding_dim, train_cfg.embedding_dim, rng(),
               /*bias=*/false),
      ffn_(train_cfg.embedding_dim, train_cfg.embedding_dim, rng()),
      ln1_(train_cfg.embedding_dim),
      ln2_(train_cfg.embedding_dim),
      fusion_(2 * train_cfg.embedding_dim, train_cfg.embedding_dim, rng()),
      rnn_backbone_gru_(train_cfg.embedding_dim, train_cfg.embedding_dim,
                        rng()),
      rnn_fuse_(2 * train_cfg.embedding_dim, train_cfg.embedding_dim,
                rng()) {
  RegisterModule("items", &items_);
  RegisterModule("ops", &ops_);
  RegisterModule("relations", &relations_);
  RegisterModule("positions", &positions_);
  RegisterModule("micro_gru", &micro_gru_);
  RegisterModule("msg_in", &msg_in_);
  RegisterModule("msg_out", &msg_out_);
  RegisterModule("highway", &highway_);
  RegisterModule("ffn", &ffn_);
  RegisterModule("ln1", &ln1_);
  RegisterModule("ln2", &ln2_);
  RegisterModule("fusion", &fusion_);
  RegisterModule("rnn_backbone_gru", &rnn_backbone_gru_);
  RegisterModule("rnn_fuse", &rnn_fuse_);

  const int64_t d = train_cfg.embedding_dim;
  const float b = nn::InitBound(d);
  auto mk = [&](const char* pname, int64_t r, int64_t c) {
    return RegisterParameter(pname,
                             Tensor::RandUniform({r, c}, -b, b, rng()));
  };
  w_z_ = mk("w_z", 2 * d, d);
  u_z_ = mk("u_z", d, d);
  w_r_ = mk("w_r", 2 * d, d);
  u_r_ = mk("u_r", d, d);
  w_u_ = mk("w_u", 2 * d, d);
  u_u_ = mk("u_u", d, d);
  op_importance_ = RegisterParameter(
      "op_importance", Tensor::Zeros({num_operations + 1, 1}));
  wq1_ = mk("wq1", d, d);
  wk1_ = mk("wk1", d, d);
  wq2_ = mk("wq2", d, d);
  wk2_ = mk("wk2", d, d);
  w_q_attn_ = mk("w_q_attn", d, d);
}

ag::Variable EmbsrModel::OpEmbedding(
    const std::vector<int64_t>& ops) const {
  Variable e = ops_.Forward(ops);
  if (!cfg_.weight_operations) return e;
  // sigmoid(0) = 0.5 at init: all operations start equally half-weighted,
  // and training moves informative ones up and noise ones down.
  Variable gate = ag::Sigmoid(ag::GatherRows(op_importance_, ops));
  return ag::MulColBroadcast(e, gate);
}

int64_t EmbsrModel::RelationId(int64_t op_a, int64_t op_b) const {
  const int64_t base = num_operations() + 1;
  EMBSR_CHECK_GE(op_a, 0);
  EMBSR_CHECK_LT(op_a, base);
  EMBSR_CHECK_GE(op_b, 0);
  EMBSR_CHECK_LT(op_b, base);
  return op_a * base + op_b;
}

Variable EmbsrModel::EncodeOpSequences(
    const std::vector<std::vector<int64_t>>& macro_ops) {
  EMBSR_TRACE_SPAN("embsr/micro_gru");
  std::vector<Variable> encodings;
  encodings.reserve(macro_ops.size());
  for (const auto& ops : macro_ops) {
    EMBSR_CHECK(!ops.empty());
    encodings.push_back(micro_gru_.ForwardLast(OpEmbedding(ops)));
  }
  return ag::StackRows(encodings);
}

void EmbsrModel::RunGnn(const Example& ex,
                        const std::vector<int64_t>& macro_items,
                        const std::vector<std::vector<int64_t>>& macro_ops,
                        Variable* satellites, Variable* star) {
  EMBSR_TRACE_SPAN("embsr/gnn");
  using namespace ag;  // NOLINT
  (void)ex;
  const int64_t d = config().embedding_dim;
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  const SessionMultigraph graph = SessionMultigraph::Build(macro_items);
  const int64_t c = graph.num_nodes();
  const int64_t n = static_cast<int64_t>(macro_items.size());

  Variable h0 = items_.Forward(graph.nodes());
  h0 = Dropout(h0, config().dropout, training(), rng());
  Variable star_v = MeanRowsTo1xD(h0);

  if (!cfg_.use_gnn) {
    *satellites = h0;
    *star = star_v;
    return;
  }

  // Sequential encodings h~^i of each macro position's operation run.
  // Only edges consume them (Eq. 5–6), so a single-item session — whose
  // multigraph has no edges — skips the micro GRU entirely instead of
  // growing an orphaned subgraph (no RNG is drawn on this path, so the
  // skip is bitwise-neutral for every session that does have edges).
  const bool has_edges = !graph.edges().empty();
  Variable h_seq = cfg_.use_op_gru_edges && has_edges
                       ? EncodeOpSequences(macro_ops)
                       : Constant(Tensor::Zeros({n, d}));

  // Edge index lists. Edge e goes from position `order` to `order + 1`;
  // per Eq. 5 the message along an edge carries the *other* endpoint's
  // embedding and that endpoint's operation encoding at the transition.
  std::vector<int64_t> in_src, in_ord, out_dst, out_ord;
  std::vector<int> in_dst_nodes, out_src_nodes;
  for (const auto& e : graph.edges()) {
    in_src.push_back(e.src);
    in_ord.push_back(e.order);
    in_dst_nodes.push_back(e.dst);
    out_dst.push_back(e.dst);
    out_ord.push_back(e.order + 1);
    out_src_nodes.push_back(e.src);
  }
  Tensor s_in = has_edges ? ScatterMatrix(c, in_dst_nodes) : Tensor();
  Tensor s_out = has_edges ? ScatterMatrix(c, out_src_nodes) : Tensor();

  Variable h = h0;
  for (int layer = 0; layer < cfg_.gnn_layers; ++layer) {
    Variable a_in, a_out;
    if (has_edges) {
      Variable msg_in = msg_in_.Forward(
          ConcatCols(GatherRows(h, in_src), GatherRows(h_seq, in_ord)));
      a_in = MatMul(Constant(s_in), msg_in);
      Variable msg_out = msg_out_.Forward(
          ConcatCols(GatherRows(h, out_dst), GatherRows(h_seq, out_ord)));
      a_out = MatMul(Constant(s_out), msg_out);
    } else {
      a_in = Constant(Tensor::Zeros({c, d}));
      a_out = Constant(Tensor::Zeros({c, d}));
    }
    Variable a = ConcatCols(a_in, a_out);  // Eq. 7

    // Gated update (Eq. 8).
    Variable z = Sigmoid(Add(MatMul(a, w_z_), MatMul(h, u_z_)));
    Variable r = Sigmoid(Add(MatMul(a, w_r_), MatMul(h, u_r_)));
    Variable cand = Tanh(Add(MatMul(a, w_u_), MatMul(Mul(r, h), u_u_)));
    Variable one_minus_z = AddScalar(Neg(z), 1.0f);
    Variable h_hat = Add(Mul(one_minus_z, h), Mul(z, cand));

    // Satellite <- star gate (Eq. 9; sigmoid added for stability).
    Variable alpha = Sigmoid(Scale(
        MatMul(MatMul(h_hat, wq1_), Transpose(MatMul(star_v, wk1_))),
        inv_sqrt_d));  // [c, 1]
    Variable one_minus_a = AddScalar(Neg(alpha), 1.0f);
    h = Add(MulColBroadcast(h_hat, one_minus_a),
            MulColBroadcast(RepeatRow(star_v, c), alpha));

    // Star update by attention over satellites (Eq. 10).
    Variable beta = RowSoftmaxMasked(
        Scale(Transpose(MatMul(MatMul(h, wk2_),
                               Transpose(MatMul(star_v, wq2_)))),
              inv_sqrt_d),
        Tensor::Ones({1, c}));
    star_v = MatMul(beta, h);
  }

  // Highway network (Eq. 11).
  Variable g = Sigmoid(highway_.Forward(ConcatCols(h0, h)));
  Variable one_minus_g = AddScalar(Neg(g), 1.0f);
  *satellites = Add(Mul(g, h0), Mul(one_minus_g, h));
  *star = star_v;
}

Variable EmbsrModel::SessionRepr(const Example& ex) {
  EMBSR_TIMED_SPAN("embsr/logits", "model/forward_ms");
  using namespace ag;  // NOLINT
  const int64_t d = config().embedding_dim;
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  // Keep one position free for the star/target slot.
  const size_t max_flat = static_cast<size_t>(config().max_positions) - 1;

  Variable x;    // [t, d] attention inputs for the micro-behaviors
  Variable x_s;  // [1, d] star/target slot input
  std::vector<int64_t> flat_ops;

  if (cfg_.rnn_backbone) {
    // RNN-Self: GRU over [item ; operation] embeddings of the flat stream.
    const auto flat_items = Tail(ex.flat_items, max_flat);
    flat_ops = Tail(ex.flat_ops, max_flat);
    Variable in = rnn_fuse_.Forward(
        ConcatCols(items_.Forward(flat_items), OpEmbedding(flat_ops)));
    in = Dropout(in, config().dropout, training(), rng());
    x = rnn_backbone_gru_.Forward(in);
    x_s = MeanRowsTo1xD(x);
  } else {
    // Macro sequence bounded to keep the flat stream within positions.
    std::vector<int64_t> macro_items = ex.macro_items;
    std::vector<std::vector<int64_t>> macro_ops = ex.macro_ops;
    std::vector<int64_t> flat_items = ex.flat_items;
    flat_ops = ex.flat_ops;
    while (flat_items.size() > max_flat && macro_items.size() > 1) {
      const size_t drop = macro_ops.front().size();
      macro_items.erase(macro_items.begin());
      macro_ops.erase(macro_ops.begin());
      flat_items.erase(flat_items.begin(), flat_items.begin() + drop);
      flat_ops.erase(flat_ops.begin(), flat_ops.begin() + drop);
    }

    Variable satellites, star;
    RunGnn(ex, macro_items, macro_ops, &satellites, &star);

    const SessionMultigraph graph = SessionMultigraph::Build(macro_items);
    // Variants without any operation information in the attention stage
    // (SGNN-Self, SGNN-Seq-Self) attend over *macro items*, as in the
    // paper's description ("can only learn the representation of the
    // session by macro-items"); otherwise a micro-behavior sequence would
    // still leak operation counts through its length.
    const bool attend_micro = cfg_.use_op_in_attention || cfg_.use_dyadic;
    if (attend_micro) {
      // Map each flat micro-behavior to its item's satellite row.
      std::vector<int64_t> node_of_flat;
      node_of_flat.reserve(flat_items.size());
      size_t macro_pos = 0, left = macro_ops[0].size();
      for (size_t i = 0; i < flat_items.size(); ++i) {
        if (left == 0) {
          ++macro_pos;
          EMBSR_CHECK_LT(macro_pos, macro_ops.size());
          left = macro_ops[macro_pos].size();
        }
        node_of_flat.push_back(graph.alias()[macro_pos]);
        --left;
      }
      Variable item_part = GatherRows(satellites, node_of_flat);
      if (cfg_.use_op_in_attention) {
        x = Add(item_part, OpEmbedding(flat_ops));  // Eq. 12
      } else {
        x = item_part;
      }
    } else {
      std::vector<int64_t> node_of_macro(graph.alias().begin(),
                                         graph.alias().end());
      x = GatherRows(satellites, node_of_macro);
      flat_ops.clear();  // no operation inputs downstream
    }
    // Eq. 13 with a learned virtual operation in place of o_{t+1}.
    if (cfg_.use_op_in_attention) {
      x_s = Add(star, OpEmbedding({virtual_op_}));
    } else {
      x_s = star;
    }
  }

  const int64_t t = x.value().dim(0);
  Variable z_s;
  if (!cfg_.use_self_attention) {
    z_s = x_s;  // EMBSR-NS
  } else {
    EMBSR_TRACE_SPAN("embsr/attention");
    // Operation-aware self-attention, computed for the star query only
    // (the downstream fusion uses z_s alone).
    Variable kv_base = ConcatRows(x, x_s);  // [t+1, d]
    std::vector<int64_t> pos_ids(t + 1);
    for (int64_t j = 0; j <= t; ++j) {
      pos_ids[j] = ClampPosition(j, config().max_positions + 1);
    }
    Variable kv = Add(kv_base, positions_.Forward(pos_ids));
    if (cfg_.use_dyadic) {
      std::vector<int64_t> rel_ids(t + 1);
      for (int64_t j = 0; j < t; ++j) {
        rel_ids[j] = RelationId(virtual_op_, flat_ops[j]);
      }
      rel_ids[t] = RelationId(virtual_op_, virtual_op_);
      kv = Add(kv, relations_.Forward(rel_ids));  // Eq. 14/16
    }
    Variable q = MatMul(x_s, w_q_attn_);
    Variable scores = Scale(MatMul(q, Transpose(kv)), inv_sqrt_d);  // Eq. 16
    Variable alpha = RowSoftmaxMasked(scores, Tensor::Ones({1, t + 1}));
    Variable attn = MatMul(alpha, kv);  // Eq. 14
    attn = Dropout(attn, config().dropout, training(), rng());
    Variable a = ln1_.Forward(Add(x_s, attn));
    Variable f = Dropout(ffn_.Forward(a), config().dropout, training(),
                         rng());
    z_s = ln2_.Forward(Add(a, f));  // Eq. 17 + residual/LN
  }

  Variable x_t = Row(x, t - 1);  // recent interest
  Variable m;
  if (cfg_.fixed_beta >= 0.0f) {
    m = Add(Scale(z_s, cfg_.fixed_beta), Scale(x_t, 1.0f - cfg_.fixed_beta));
  } else if (cfg_.use_fusion_gate) {
    Variable beta = Sigmoid(fusion_.Forward(ConcatCols(z_s, x_t)));  // Eq. 18
    Variable one_minus_b = AddScalar(Neg(beta), 1.0f);
    m = Add(Mul(beta, z_s), Mul(one_minus_b, x_t));
  } else {
    m = fusion_.Forward(ConcatCols(z_s, x_t));  // EMBSR-NF MLP
  }
  return m;
}

Variable EmbsrModel::DecodeRepr(const Variable& m) {
  using namespace ag;  // NOLINT
  // Normalized scoring (Eq. 19).
  Variable m_hat = Scale(L2NormalizeRowsOp(m), cfg_.wk);
  Variable items_norm = L2NormalizeRowsOp(items_.table());
  return MatMul(m_hat, Transpose(items_norm));
}

Variable EmbsrModel::Logits(const Example& ex) {
  return DecodeRepr(SessionRepr(ex));
}

Variable EmbsrModel::BatchedLogits(const SessionBatch& batch) {
  using namespace ag;  // NOLINT
  std::vector<Variable> reprs;
  reprs.reserve(batch.examples.size());
  for (const Example* ex : batch.examples) reprs.push_back(SessionRepr(*ex));
  return DecodeRepr(reprs.size() == 1 ? reprs[0] : StackRows(reprs));
}

EmbsrConfig EmbsrVariants::Full() { return {}; }

EmbsrConfig EmbsrVariants::NoSelfAttention() {
  EmbsrConfig c;
  c.use_self_attention = false;
  return c;
}

EmbsrConfig EmbsrVariants::NoGnn() {
  EmbsrConfig c;
  c.use_gnn = false;
  c.use_op_gru_edges = false;
  return c;
}

EmbsrConfig EmbsrVariants::NoFusionGate() {
  EmbsrConfig c;
  c.use_fusion_gate = false;
  return c;
}

EmbsrConfig EmbsrVariants::SgnnSelf() {
  EmbsrConfig c;
  c.use_op_gru_edges = false;
  c.use_op_in_attention = false;
  c.use_dyadic = false;
  return c;
}

EmbsrConfig EmbsrVariants::SgnnSeqSelf() {
  EmbsrConfig c;
  c.use_op_in_attention = false;
  c.use_dyadic = false;
  return c;
}

EmbsrConfig EmbsrVariants::RnnSelf() {
  EmbsrConfig c;
  c.rnn_backbone = true;
  c.use_gnn = false;
  c.use_op_gru_edges = false;
  c.use_op_in_attention = false;
  c.use_dyadic = false;
  return c;
}

EmbsrConfig EmbsrVariants::SgnnAbsSelf() {
  EmbsrConfig c;
  c.use_op_gru_edges = false;
  c.use_op_in_attention = true;
  c.use_dyadic = false;
  return c;
}

EmbsrConfig EmbsrVariants::SgnnDyadic() {
  EmbsrConfig c;
  c.use_op_gru_edges = false;
  c.use_op_in_attention = true;
  c.use_dyadic = true;
  return c;
}

EmbsrConfig EmbsrVariants::FixedBeta(float beta) {
  EmbsrConfig c;
  c.fixed_beta = beta;
  return c;
}

EmbsrConfig EmbsrVariants::WeightedOps() {
  EmbsrConfig c;
  c.weight_operations = true;
  return c;
}

}  // namespace embsr
