#ifndef EMBSR_CORE_EMBSR_MODEL_H_
#define EMBSR_CORE_EMBSR_MODEL_H_

#include <string>

#include "models/components.h"
#include "models/neural_model.h"

namespace embsr {

/// Architectural switches of EMBSR. The full model enables everything;
/// the paper's ablations and variants flip individual flags (see the
/// factory functions below, which match the names used in Tables IV,
/// Figs. 4–6 and the supplement).
struct EmbsrConfig {
  /// Encode sequential patterns with the star multigraph GNN (Sec. IV-B).
  /// When false (EMBSR-NG) items are plain embeddings and the "star" is the
  /// mean item embedding.
  bool use_gnn = true;
  /// Feed the per-item micro-operation GRU encodings into the GNN messages
  /// (Eq. 5–6). When false the message functions see zeros in place of the
  /// operation encoding (the SGNN-* variants of Fig. 4/5).
  bool use_op_gru_edges = true;
  /// Apply the operation-aware self-attention (Sec. IV-C). When false
  /// (EMBSR-NS) the global preference is the star-node input x_s directly.
  bool use_self_attention = true;
  /// Add absolute operation embeddings into the attention inputs x_i
  /// (Eq. 12). Off for SGNN-Self / SGNN-Seq-Self.
  bool use_op_in_attention = true;
  /// Add dyadic relation embeddings e_r_ij into attention keys/values
  /// (Eq. 14/16). Off for SGNN-Abs-Self (absolute encoding only).
  bool use_dyadic = true;
  /// Fuse global preference and recent interest with the learned gate
  /// (Eq. 18). When false (EMBSR-NF) an MLP on the concatenation is used.
  bool use_fusion_gate = true;
  /// RNN-Self: replace the whole GNN stage by a GRU over item+operation
  /// embeddings of the flat micro-behavior sequence (Fig. 4's variant).
  bool rnn_backbone = false;
  /// If in [0, 1], bypass the fusion gate with this constant beta (Fig. 6).
  float fixed_beta = -1.0f;
  /// Number of stacked GNN layers.
  int gnn_layers = 1;
  /// Normalized-scoring scale w_k (Eq. 19); the paper uses 12.
  float wk = 12.0f;
  /// Future-work extension from the paper's conclusion: learn a scalar
  /// importance gate per operation and scale every operation embedding by
  /// sigmoid(importance[op]) before it enters the micro-op GRU and the
  /// attention inputs. Lets the model down-weight noise operations (hover,
  /// filter browsing) without discarding them.
  bool weight_operations = false;
};

/// EMBSR: Encoding Micro-Behaviors in Session-based Recommendation.
///
/// Pipeline (paper Fig. 2): the macro-item sequence becomes a directed
/// multigraph with ordered edges plus a star node; a GRU encodes each item's
/// micro-operation run and its encoding rides on the graph edges; gated
/// message passing + star gating + a highway network produce item states;
/// an operation-aware self-attention with dyadic operation-pair embeddings
/// produces the global preference; a fusion gate mixes it with the recent
/// interest; scoring is L2-normalized dot product scaled by w_k.
class EmbsrModel : public NeuralSessionModel {
 public:
  EmbsrModel(std::string name, int64_t num_items, int64_t num_operations,
             const TrainConfig& train_cfg, const EmbsrConfig& cfg = {});

  const EmbsrConfig& embsr_config() const { return cfg_; }

 protected:
  ag::Variable Logits(const Example& ex) override;

  /// Batched decode: the per-session pipeline up to the fused session
  /// representation stays serial (each session owns its own multigraph),
  /// but the normalized-scoring stage — the L2 normalizations, the w_k
  /// scale and the [B, d] x [d, V] decode GEMM that dominates the forward —
  /// runs once over the stacked representations. Bit-identical to Logits
  /// row-wise because every decode op is row-independent.
  ag::Variable BatchedLogits(const SessionBatch& batch) override;

 private:
  /// The fused session representation m ([1, d], Eq. 18) — Logits minus
  /// the normalized-scoring stage.
  ag::Variable SessionRepr(const Example& ex);

  /// Normalized scoring (Eq. 19) over [n, d] session representations.
  ag::Variable DecodeRepr(const ag::Variable& m);
  /// Runs the star-multigraph GNN; returns final satellite states h^f
  /// ([c, d], rows indexed like graph nodes) and the final star node
  /// ([1, d]) through the output parameters.
  void RunGnn(const Example& ex, const std::vector<int64_t>& macro_items,
              const std::vector<std::vector<int64_t>>& macro_ops,
              ag::Variable* satellites, ag::Variable* star);

  /// Encodes each macro item's operation run with the micro GRU (Eq. 3–4).
  ag::Variable EncodeOpSequences(
      const std::vector<std::vector<int64_t>>& macro_ops);

  /// Dyadic relation id of the ordered operation pair (a, b).
  int64_t RelationId(int64_t op_a, int64_t op_b) const;

  /// Operation embeddings, optionally scaled by the learned importance gate
  /// (the weight_operations extension).
  ag::Variable OpEmbedding(const std::vector<int64_t>& ops) const;

  EmbsrConfig cfg_;
  /// The id of the virtual operation assigned to the star/target position.
  /// The paper assumes the target's operation is known (Eq. 13); we use a
  /// learned placeholder instead so train and test see the same input —
  /// documented as a substitution in DESIGN.md.
  int64_t virtual_op_;

  nn::Embedding items_;      // M^V
  nn::Embedding ops_;        // M^O (num_operations + 1: virtual op)
  nn::Embedding relations_;  // M^R ((|O|+1)^2 dyadic pairs)
  nn::Embedding positions_;  // M^P

  nn::GRU micro_gru_;      // sequential pattern of micro-operations
  nn::Linear msg_in_;      // f_m^+ : [e_u ; h~] -> d
  nn::Linear msg_out_;     // f_m^- : [e_u ; h~] -> d
  ag::Variable w_z_, u_z_, w_r_, u_r_, w_u_, u_u_;  // Eq. 8 gates
  ag::Variable wq1_, wk1_, wq2_, wk2_;              // Eq. 9–10
  nn::Linear highway_;                              // Eq. 11
  ag::Variable w_q_attn_;                           // W^Q of Eq. 16
  nn::FeedForward ffn_;                             // Eq. 17
  nn::LayerNorm ln1_;
  nn::LayerNorm ln2_;
  nn::Linear fusion_;      // Eq. 18 gate (or the NF MLP)
  nn::GRU rnn_backbone_gru_;  // only used when cfg.rnn_backbone
  nn::Linear rnn_fuse_;       // item||op -> d for the RNN backbone
  ag::Variable op_importance_;  // [|O|+1, 1], weight_operations extension
};

/// Factory helpers matching the paper's variant names.
struct EmbsrVariants {
  static EmbsrConfig Full();
  static EmbsrConfig NoSelfAttention();   // EMBSR-NS (Table IV)
  static EmbsrConfig NoGnn();             // EMBSR-NG (Table IV)
  static EmbsrConfig NoFusionGate();      // EMBSR-NF (Table IV)
  static EmbsrConfig SgnnSelf();          // Fig. 4/5
  static EmbsrConfig SgnnSeqSelf();       // Fig. 4
  static EmbsrConfig RnnSelf();           // Fig. 4/5
  static EmbsrConfig SgnnAbsSelf();       // Fig. 5
  static EmbsrConfig SgnnDyadic();        // Fig. 5 / supplement Table II
  static EmbsrConfig FixedBeta(float beta);  // Fig. 6
  static EmbsrConfig WeightedOps();          // future-work extension (EMBSR-W)
};

}  // namespace embsr

#endif  // EMBSR_CORE_EMBSR_MODEL_H_
