#include "verify/model_check.h"

#include <memory>

#include "models/neural_model.h"
#include "train/model_zoo.h"

namespace embsr {
namespace verify {

int64_t TinyVocabItems() { return 12; }
int64_t TinyVocabOperations() { return 4; }

Example TinyExample() {
  Example ex;
  ex.macro_items = {3, 7, 5};
  ex.macro_ops = {{1}, {0, 2}, {1, 3}};
  // Flat micro-behavior view of the same session: each macro item repeated
  // once per operation, operations parallel.
  ex.flat_items = {3, 7, 7, 5, 5};
  ex.flat_ops = {1, 0, 2, 1, 3};
  ex.target = 9;
  return ex;
}

ModelGradCheckOutcome CheckModelGradients(const std::string& name,
                                          const GradCheckConfig& config) {
  ModelGradCheckOutcome outcome;

  TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_positions = 16;
  cfg.seed = 17;

  std::unique_ptr<Recommender> model =
      CreateModel(name, TinyVocabItems(), TinyVocabOperations(), cfg);
  if (model == nullptr) return outcome;
  outcome.known = true;

  auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
  if (neural == nullptr) return outcome;  // memory-based: nothing to check
  outcome.neural = true;

  // Eval mode turns dropout off, making LossOn a pure deterministic
  // function of the parameters — the precondition for central differences.
  neural->SetTraining(false);

  const Example ex = TinyExample();
  outcome.result = CheckModuleGradients(
      *neural, [neural, &ex] { return neural->LossOn(ex); }, config);
  return outcome;
}

}  // namespace verify
}  // namespace embsr
