#ifndef EMBSR_VERIFY_SOURCE_SCAN_H_
#define EMBSR_VERIFY_SOURCE_SCAN_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace embsr {
namespace verify {

/// Lightweight static scans of the repo's own sources. These are the
/// enumeration half of the gradcheck coverage contract: the registry test
/// scans the *declarations* (ops header, layers header, model factory) and
/// fails when a declared name has no registered gradient check — so a new
/// op, layer or model cannot land unchecked.
///
/// The scanners are deliberately line-regex simple: they parse this repo's
/// house style, not arbitrary C++.

/// Names of differentiable ops declared in autograd/ops.h, i.e. every
/// function of the form `Variable Name(...)` at line start. Sorted, unique.
std::vector<std::string> DeclaredOpNames(const std::string& ops_header);

/// Names of layer classes declared in nn/layers.h, i.e. every
/// `class Name : public Module`. Sorted, unique.
std::vector<std::string> DeclaredLayerNames(const std::string& layers_header);

/// Model names recognized by CreateModel in train/model_zoo.cc, i.e. every
/// string literal compared against `name ==`. Sorted, unique.
std::vector<std::string> DeclaredModelNames(const std::string& model_zoo_cc);

/// Names of tensor kernels declared as free functions in tensor/tensor.h,
/// i.e. every `Tensor Name(...)`, `void Name(...)` or `float Name(...)` at
/// line start. Sorted, unique.
std::vector<std::string> DeclaredTensorKernelNames(
    const std::string& tensor_header);

/// Kernel names covered by tests/kernel_equiv_test.cc, i.e. every
/// `EMBSR_KERNEL_EQUIV(Name)` coverage marker. Sorted, unique.
std::vector<std::string> CoveredKernelEquivNames(
    const std::string& kernel_equiv_test_cc);

/// Model names carrying a registered tape audit in
/// src/analyze/model_audits.cc, i.e. every `EMBSR_MODEL_AUDIT("Name")`
/// coverage marker. Sorted, unique.
std::vector<std::string> CoveredModelAuditNames(
    const std::string& model_audits_cc);

/// Op names carrying a registered prof cost model in
/// src/autograd/op_costs.cc, i.e. every `EMBSR_OP_COST("Name")` coverage
/// marker. Sorted, unique.
std::vector<std::string> CoveredOpCostNames(const std::string& op_costs_cc);

/// Op names carrying a registered static shape rule in
/// src/analyze/shape_rules.cc, i.e. every `EMBSR_SHAPE_RULE("Name")`
/// coverage marker. Sorted, unique.
std::vector<std::string> CoveredShapeRuleNames(
    const std::string& shape_rules_cc);

/// Convenience: reads and scans the named files under `repo_root`
/// (src/autograd/ops.h, src/nn/layers.h, src/train/model_zoo.cc,
/// src/tensor/tensor.h, tests/kernel_equiv_test.cc,
/// src/analyze/model_audits.cc).
Result<std::vector<std::string>> ScanOpNames(const std::string& repo_root);
Result<std::vector<std::string>> ScanLayerNames(const std::string& repo_root);
Result<std::vector<std::string>> ScanModelNames(const std::string& repo_root);
Result<std::vector<std::string>> ScanTensorKernelNames(
    const std::string& repo_root);
Result<std::vector<std::string>> ScanKernelEquivCoverage(
    const std::string& repo_root);
Result<std::vector<std::string>> ScanModelAuditCoverage(
    const std::string& repo_root);
Result<std::vector<std::string>> ScanOpCostCoverage(
    const std::string& repo_root);
Result<std::vector<std::string>> ScanShapeRuleCoverage(
    const std::string& repo_root);

}  // namespace verify
}  // namespace embsr

#endif  // EMBSR_VERIFY_SOURCE_SCAN_H_
