#include "verify/registry.h"

#include <algorithm>

#include "util/check.h"

namespace embsr {
namespace verify {

GradCheckRegistry& GradCheckRegistry::Global() {
  static GradCheckRegistry* instance =
      new GradCheckRegistry();  // lint: allow(raw-new): leaked singleton, never destroyed
  return *instance;
}

void GradCheckRegistry::Register(std::string kind, std::string name,
                                 std::function<GradCheckResult()> run) {
  EMBSR_CHECK(!kind.empty());
  EMBSR_CHECK(!name.empty());
  EMBSR_CHECK(run != nullptr);
  if (Find(kind, name) != nullptr) return;  // idempotent re-registration
  cases_.push_back(GradCheckCase{std::move(kind), std::move(name),
                                 std::move(run)});
}

std::vector<std::string> GradCheckRegistry::Names(
    const std::string& kind) const {
  std::vector<std::string> names;
  for (const auto& c : cases_) {
    if (c.kind == kind) names.push_back(c.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

const GradCheckCase* GradCheckRegistry::Find(const std::string& kind,
                                             const std::string& name) const {
  for (const auto& c : cases_) {
    if (c.kind == kind && c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace verify
}  // namespace embsr
