#include "verify/gradcheck.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"

namespace embsr {
namespace verify {

namespace {

constexpr size_t kMaxReportedFailures = 8;

/// The element indices of one leaf to compare. Small leaves are checked
/// exhaustively; large ones get a deterministic without-replacement sample
/// so model-scale tables stay affordable.
std::vector<int64_t> ElementsToCheck(int64_t size, int max_per_leaf,
                                     Rng* rng) {
  if (max_per_leaf <= 0 || size <= max_per_leaf) {
    std::vector<int64_t> all(static_cast<size_t>(size));
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  std::vector<int64_t> all(static_cast<size_t>(size));
  std::iota(all.begin(), all.end(), 0);
  rng->Shuffle(&all);
  // lint: allow(raw-resize): post-shuffle subsample truncation
  all.resize(static_cast<size_t>(max_per_leaf));
  std::sort(all.begin(), all.end());
  return all;
}

float ScalarLoss(const ag::Variable& loss) {
  EMBSR_CHECK_EQ(loss.value().size(), 1);
  return loss.value().at(0);
}

}  // namespace

std::string GradCheckResult::ToString() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAILED") << ": checked " << checked_elements
     << " element(s), max relative error " << max_rel_error;
  for (const std::string& f : failures) os << "\n  " << f;
  return os.str();
}

GradCheckResult CheckGradients(const LossFn& make_loss,
                               std::vector<ag::Variable> leaves,
                               const GradCheckConfig& config) {
  GradCheckResult result;

  // The loss must be a pure function of the leaf values; a non-deterministic
  // loss (unseeded dropout, data-dependent randomness) makes the central
  // difference meaningless, so detect it up front.
  const float probe0 = ScalarLoss(make_loss(leaves));
  const float probe1 = ScalarLoss(make_loss(leaves));
  if (probe0 != probe1) {
    result.ok = false;
    result.failures.push_back(
        "loss is not deterministic across invocations (" +
        std::to_string(probe0) + " vs " + std::to_string(probe1) +
        "); fix the seed of any internal randomness");
    return result;
  }

  // Analytic gradients from one backward pass.
  for (auto& leaf : leaves) leaf.ZeroGrad();
  ag::Variable loss = make_loss(leaves);
  EMBSR_CHECK_EQ(loss.value().size(), 1);
  loss.Backward();

  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (const auto& leaf : leaves) analytic.push_back(leaf.GradOrZeros());

  Rng sample_rng(config.seed);
  for (size_t li = 0; li < leaves.size(); ++li) {
    ag::Variable& leaf = leaves[li];
    if (!leaf.requires_grad()) continue;
    const std::vector<int64_t> elems = ElementsToCheck(
        leaf.value().size(), config.max_elements_per_leaf, &sample_rng);
    for (const int64_t i : elems) {
      const float orig = leaf.value().at(i);
      const auto central_diff = [&](float eps) {
        leaf.mutable_value().at(i) = orig + eps;
        const float up = ScalarLoss(make_loss(leaves));
        leaf.mutable_value().at(i) = orig - eps;
        const float down = ScalarLoss(make_loss(leaves));
        leaf.mutable_value().at(i) = orig;
        return (up - down) / (2.0f * eps);
      };
      const auto rel_error = [&](float numeric) {
        const float a = analytic[li].at(i);
        const float denom = std::max(
            {std::fabs(a), std::fabs(numeric), config.denom_floor});
        return std::fabs(a - numeric) / denom;
      };

      float numeric = central_diff(config.eps);
      float rel_err = rel_error(numeric);
      if (rel_err > config.rel_tol && config.retry_eps_factor > 0.0f) {
        // Two-step-size agreement (see GradCheckConfig::retry_eps_factor):
        // keep whichever step size agrees better with the analytic value.
        const float retry = central_diff(config.eps * config.retry_eps_factor);
        const float retry_err = rel_error(retry);
        if (retry_err < rel_err) {
          numeric = retry;
          rel_err = retry_err;
        }
      }
      const float a = analytic[li].at(i);

      ++result.checked_elements;
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (rel_err > config.rel_tol) {
        result.ok = false;
        if (result.failures.size() < kMaxReportedFailures) {
          std::ostringstream os;
          os << "leaf " << li << " elem " << i << ": analytic " << a
             << " numeric " << numeric << " rel_err " << rel_err;
          result.failures.push_back(os.str());
        }
      }
    }
  }
  return result;
}

GradCheckResult CheckModuleGradients(
    const nn::Module& module,
    const std::function<ag::Variable()>& make_loss,
    const GradCheckConfig& config) {
  // Parameter handles alias the module's nodes, so perturbing the leaf
  // values perturbs what the module's forward pass reads.
  return CheckGradients(
      [&make_loss](const std::vector<ag::Variable>&) { return make_loss(); },
      module.Parameters(), config);
}

}  // namespace verify
}  // namespace embsr
