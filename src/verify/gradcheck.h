#ifndef EMBSR_VERIFY_GRADCHECK_H_
#define EMBSR_VERIFY_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "nn/module.h"

namespace embsr {
namespace verify {

/// Finite-difference gradient verification for the hand-written autodiff
/// engine. Central differences: d f / d x_i ~ (f(x + eps e_i) - f(x - eps
/// e_i)) / (2 eps), compared element-wise against the analytic gradient from
/// Variable::Backward().
///
/// Everything here is float32 (the only dtype the engine has), so tolerances
/// are necessarily loose: the numeric estimate carries truncation error
/// O(eps^2) plus roundoff O(ulp(f)/eps). eps = 1e-2 balances the two for
/// values and losses of order 1; see EXPERIMENTS.md ("Gradient-check
/// tolerances") for the derivation.
struct GradCheckConfig {
  /// Central-difference step.
  float eps = 1e-2f;
  /// Maximum allowed relative error per element.
  float rel_tol = 1e-2f;
  /// Denominator floor of the relative error: errors are measured as
  /// |a - n| / max(|a|, |n|, denom_floor), so gradients much smaller than
  /// the floor are compared absolutely (float32 noise would otherwise make
  /// the ratio meaningless for near-zero gradients).
  float denom_floor = 0.05f;
  /// If > 0, check at most this many elements per leaf (deterministic
  /// sample driven by `seed`); 0 checks every element.
  int max_elements_per_leaf = 0;
  /// Seed for the element-sampling stream.
  uint64_t seed = 0x9d5eedULL;
  /// Two-step-size agreement: an element failing at `eps` is re-estimated
  /// at `eps * retry_eps_factor` and passes if the smaller step agrees.
  /// In float32 the primary step trips over activation kinks (a Relu unit
  /// flipping inside [x-eps, x+eps]) while a 4x smaller step trips over
  /// roundoff on small gradients — a genuine backward bug disagrees at
  /// both. 0 disables the retry.
  float retry_eps_factor = 0.25f;
};

struct GradCheckResult {
  bool ok = true;
  /// Largest relative error seen over all checked elements.
  float max_rel_error = 0.0f;
  /// Elements actually compared (after sampling).
  int64_t checked_elements = 0;
  /// One line per failing element (capped), e.g.
  /// "leaf 0 elem 3: analytic 1.25 numeric 0.5 rel_err 0.6".
  std::vector<std::string> failures;

  std::string ToString() const;
};

/// Builds a scalar loss from the given leaves; re-invoked once per
/// perturbation, so it must be a pure function of the leaf *values* (any
/// internal randomness must be re-seeded identically on every call).
using LossFn =
    std::function<ag::Variable(const std::vector<ag::Variable>&)>;

/// Checks d(make_loss)/d(leaf) for every leaf with requires_grad set.
GradCheckResult CheckGradients(const LossFn& make_loss,
                               std::vector<ag::Variable> leaves,
                               const GradCheckConfig& config = {});

/// Checks d(make_loss)/d(parameter) for every trainable parameter of
/// `module`. `make_loss` reads the module directly; perturbations are
/// applied through the module's parameter handles.
GradCheckResult CheckModuleGradients(
    const nn::Module& module, const std::function<ag::Variable()>& make_loss,
    const GradCheckConfig& config = {});

}  // namespace verify
}  // namespace embsr

#endif  // EMBSR_VERIFY_GRADCHECK_H_
