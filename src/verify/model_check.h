#ifndef EMBSR_VERIFY_MODEL_CHECK_H_
#define EMBSR_VERIFY_MODEL_CHECK_H_

#include <string>

#include "data/session.h"
#include "verify/gradcheck.h"

namespace embsr {
namespace verify {

/// End-to-end gradient check of a model from the zoo: builds the model by
/// name on a tiny vocabulary, evaluates LossOn a fixed synthetic example in
/// eval mode (dropout off, so the loss is a pure function of the
/// parameters), and compares backward against central differences over a
/// sampled subset of every parameter tensor.
struct ModelGradCheckOutcome {
  /// False if CreateModel did not recognize the name.
  bool known = false;
  /// False for memory-based models (S-POP, SKNN, STAN, ...) that have no
  /// gradients to check; `result` is left trivially ok for those.
  bool neural = false;
  GradCheckResult result;
};

/// The fixed synthetic session every model is checked on: 3 macro items
/// with 1-2 micro-operations each, vocabulary of `TinyVocabItems()` items
/// and `TinyVocabOperations()` operation types.
Example TinyExample();
int64_t TinyVocabItems();
int64_t TinyVocabOperations();

/// Gradient-checks the named zoo model end to end (parameters -> LossOn).
/// `config.max_elements_per_leaf` should be small (e.g. 8): exhaustive
/// central differences over every parameter of every model would cost two
/// forward passes per scalar weight.
ModelGradCheckOutcome CheckModelGradients(const std::string& name,
                                          const GradCheckConfig& config = {});

}  // namespace verify
}  // namespace embsr

#endif  // EMBSR_VERIFY_MODEL_CHECK_H_
