#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "nn/layers.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "verify/registry.h"

namespace embsr {
namespace verify {

namespace {

// Fixed seeds keep every case a pure function: the same values, masks and
// weights on every run, so a tolerance that passes once passes forever.
constexpr uint64_t kCaseSeed = 0xC0FFEEULL;

Tensor Rand(std::vector<int64_t> shape, Rng* rng, float lo = -1.0f,
            float hi = 1.0f) {
  return Tensor::RandUniform(std::move(shape), lo, hi, rng);
}

/// Random values bounded away from zero (for kinked ops like Relu: the
/// central-difference step must not cross the kink).
Tensor RandAwayFromZero(std::vector<int64_t> shape, Rng* rng,
                        float min_mag = 0.2f, float max_mag = 1.0f) {
  Tensor t = Rand(std::move(shape), rng, min_mag, max_mag);
  for (int64_t i = 0; i < t.size(); ++i) {
    if (rng->Bernoulli(0.5)) t.data()[i] = -t.data()[i];
  }
  return t;
}

/// Weighted sum with fixed random weights: reduces any tensor to a scalar
/// while giving every output element a distinct outgoing gradient, so a
/// backward bug in one element cannot cancel against another.
ag::Variable WeightedSum(const ag::Variable& v, const Tensor& weights) {
  return ag::SumAll(ag::Mul(v, ag::Constant(weights)));
}

ag::Variable Leaf(const Tensor& t) { return ag::Variable(t, true); }

using CaseFn = GradCheckResult (*)();

void Register(const char* kind, const char* name, CaseFn fn) {
  GradCheckRegistry::Global().Register(kind, name, fn);
}

// ---- Op cases ---------------------------------------------------------------
//
// One case per function in autograd/ops.h, named identically. Each builds a
// small graph `loss = WeightedSum(Op(leaves...))` and compares backward
// against central differences over every leaf element.

GradCheckResult CheckBinaryElementwise(
    ag::Variable (*op)(const ag::Variable&, const ag::Variable&)) {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng)),
                                      Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [op, w](const std::vector<ag::Variable>& l) {
        return WeightedSum(op(l[0], l[1]), w);
      },
      leaves);
}

GradCheckResult CaseAdd() { return CheckBinaryElementwise(&ag::Add); }
GradCheckResult CaseSub() { return CheckBinaryElementwise(&ag::Sub); }
GradCheckResult CaseMul() { return CheckBinaryElementwise(&ag::Mul); }

GradCheckResult CaseAddRowBroadcast() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng)),
                                      Leaf(Rand({1, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::AddRowBroadcast(l[0], l[1]), w);
      },
      leaves);
}

GradCheckResult CaseMulRowBroadcast() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng)),
                                      Leaf(Rand({1, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::MulRowBroadcast(l[0], l[1]), w);
      },
      leaves);
}

GradCheckResult CaseMulColBroadcast() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng)),
                                      Leaf(Rand({3, 1}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::MulColBroadcast(l[0], l[1]), w);
      },
      leaves);
}

GradCheckResult CaseScale() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::Scale(l[0], -1.7f), w);
      },
      leaves);
}

GradCheckResult CaseAddScalar() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::AddScalar(l[0], 0.37f), w);
      },
      leaves);
}

GradCheckResult CaseNeg() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::Neg(l[0]), w);
      },
      leaves);
}

GradCheckResult CaseMatMul() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng)),
                                      Leaf(Rand({4, 2}, &rng))};
  const Tensor w = Rand({3, 2}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::MatMul(l[0], l[1]), w);
      },
      leaves);
}

GradCheckResult CaseTranspose() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({4, 3}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::Transpose(l[0]), w);
      },
      leaves);
}

GradCheckResult CheckUnaryElementwise(ag::Variable (*op)(const ag::Variable&),
                                      float lo, float hi) {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng, lo, hi))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [op, w](const std::vector<ag::Variable>& l) {
        return WeightedSum(op(l[0]), w);
      },
      leaves);
}

GradCheckResult CaseSigmoid() {
  return CheckUnaryElementwise(&ag::Sigmoid, -2.0f, 2.0f);
}
GradCheckResult CaseTanh() {
  return CheckUnaryElementwise(&ag::Tanh, -2.0f, 2.0f);
}
GradCheckResult CaseExp() {
  return CheckUnaryElementwise(&ag::Exp, -1.0f, 1.0f);
}
GradCheckResult CaseLog() {
  return CheckUnaryElementwise(&ag::Log, 0.5f, 2.0f);
}

GradCheckResult CaseRelu() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {
      Leaf(RandAwayFromZero({3, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::Relu(l[0]), w);
      },
      leaves);
}

GradCheckResult CaseConcatCols() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 2}, &rng)),
                                      Leaf(Rand({3, 3}, &rng))};
  const Tensor w = Rand({3, 5}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::ConcatCols(l[0], l[1]), w);
      },
      leaves);
}

GradCheckResult CaseConcatRows() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({2, 4}, &rng)),
                                      Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({5, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::ConcatRows(l[0], l[1]), w);
      },
      leaves);
}

GradCheckResult CaseStackRows() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({1, 4}, &rng)),
                                      Leaf(Rand({1, 4}, &rng)),
                                      Leaf(Rand({1, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::StackRows(l), w);
      },
      leaves);
}

GradCheckResult CaseSliceRows() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({5, 3}, &rng))};
  const Tensor w = Rand({3, 3}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::SliceRows(l[0], 1, 4), w);
      },
      leaves);
}

GradCheckResult CaseRow() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({4, 3}, &rng))};
  const Tensor w = Rand({1, 3}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::Row(l[0], 2), w);
      },
      leaves);
}

GradCheckResult CaseGatherRows() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({6, 3}, &rng))};
  const Tensor w = Rand({4, 3}, &rng);
  // Repeated index 2 exercises the scatter-add accumulation in backward.
  const std::vector<int64_t> indices = {0, 2, 2, 5};
  return CheckGradients(
      [w, indices](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::GatherRows(l[0], indices), w);
      },
      leaves);
}

GradCheckResult CaseSelectRowsByMask() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({5, 3}, &rng)),
                                      Leaf(Rand({5, 3}, &rng))};
  const Tensor w = Rand({5, 3}, &rng);
  // Mixed mask: rows 0/2/4 select from a, rows 1/3 from b — each leaf must
  // see gradient only on its selected rows and exact zero elsewhere.
  const Tensor mask({5, 1}, {1, 0, 1, 0, 1});
  return CheckGradients(
      [w, mask](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::SelectRowsByMask(l[0], l[1], mask), w);
      },
      leaves);
}

GradCheckResult CaseSegmentSumRows() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({6, 3}, &rng))};
  const Tensor w = Rand({4, 3}, &rng);
  // Ragged contiguous segments with segment 3 empty: its output row (and
  // the gathered backward) must be exactly zero.
  const std::vector<int64_t> segments = {0, 0, 1, 2, 2, 2};
  return CheckGradients(
      [w, segments](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::SegmentSumRows(l[0], segments, 4), w);
      },
      leaves);
}

GradCheckResult CaseRowSoftmaxMasked() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  // Row 0 partially masked, row 1 fully visible, row 2 fully masked (its
  // output and gradient must both be exactly zero).
  const Tensor mask({3, 4}, {1, 0, 1, 0,  //
                             1, 1, 1, 1,  //
                             0, 0, 0, 0});
  return CheckGradients(
      [w, mask](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::RowSoftmaxMasked(l[0], mask), w);
      },
      leaves);
}

GradCheckResult CaseRowSoftmax() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::RowSoftmax(l[0]), w);
      },
      leaves);
}

GradCheckResult CaseSumAll() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        // SumAll is the reduction under test *and* the final scalarizer.
        return ag::SumAll(ag::Mul(l[0], ag::Constant(w)));
      },
      leaves);
}

GradCheckResult CaseSumRowsTo1xD() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({1, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::SumRowsTo1xD(l[0]), w);
      },
      leaves);
}

GradCheckResult CaseSumColsToNx1() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({3, 1}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::SumColsToNx1(l[0]), w);
      },
      leaves);
}

GradCheckResult CaseMeanRowsTo1xD() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({1, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::MeanRowsTo1xD(l[0]), w);
      },
      leaves);
}

GradCheckResult CaseRepeatRow() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({1, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::RepeatRow(l[0], 3), w);
      },
      leaves);
}

GradCheckResult CaseL2NormalizeRowsOp() {
  Rng rng(kCaseSeed);
  // Rows bounded away from zero norm: the op leaves zero rows zero, a
  // non-differentiable special case the checker must not straddle.
  std::vector<ag::Variable> leaves = {
      Leaf(RandAwayFromZero({3, 4}, &rng, 0.4f, 1.2f))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::L2NormalizeRowsOp(l[0]), w);
      },
      leaves);
}

GradCheckResult CaseLayerNormRows() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 6}, &rng))};
  const Tensor w = Rand({3, 6}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        return WeightedSum(ag::LayerNormRows(l[0]), w);
      },
      leaves);
}

GradCheckResult CaseDropout() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 4}, &rng))};
  const Tensor w = Rand({3, 4}, &rng);
  return CheckGradients(
      [w](const std::vector<ag::Variable>& l) {
        // Fresh identically-seeded Rng per invocation: the mask is part of
        // the function, so the loss stays a pure function of the leaves.
        Rng mask_rng(kCaseSeed + 1);
        return WeightedSum(ag::Dropout(l[0], 0.3f, /*training=*/true,
                                       &mask_rng),
                           w);
      },
      leaves);
}

GradCheckResult CaseSoftmaxCrossEntropy() {
  Rng rng(kCaseSeed);
  std::vector<ag::Variable> leaves = {Leaf(Rand({3, 5}, &rng))};
  const std::vector<int64_t> targets = {1, 4, 2};
  return CheckGradients(
      [targets](const std::vector<ag::Variable>& l) {
        return ag::SoftmaxCrossEntropy(l[0], targets);
      },
      leaves);
}

// ---- Layer cases ------------------------------------------------------------
//
// One case per class in nn/layers.h, named identically. Parameters come from
// the module itself (CheckModuleGradients); inputs are fixed constants. A
// tanh (or the layer's own nonlinearity) sits between layer output and the
// weighted sum so parameter gradients pass through curvature, not just a
// linear readout.

GradCheckResult CaseLinear() {
  Rng rng(kCaseSeed);
  nn::Linear layer(4, 3, &rng);
  const ag::Variable x = ag::Constant(Rand({2, 4}, &rng));
  const Tensor w = Rand({2, 3}, &rng);
  return CheckModuleGradients(layer, [&layer, &x, &w] {
    return WeightedSum(ag::Tanh(layer.Forward(x)), w);
  });
}

GradCheckResult CaseEmbedding() {
  Rng rng(kCaseSeed);
  nn::Embedding layer(7, 4, &rng);
  const std::vector<int64_t> indices = {1, 3, 3, 6};
  const Tensor w = Rand({4, 4}, &rng);
  return CheckModuleGradients(layer, [&layer, indices, &w] {
    return WeightedSum(ag::Tanh(layer.Forward(indices)), w);
  });
}

GradCheckResult CaseGRUCell() {
  Rng rng(kCaseSeed);
  nn::GRUCell cell(3, 5, &rng);
  const ag::Variable x = ag::Constant(Rand({2, 3}, &rng));
  const ag::Variable h = ag::Constant(Rand({2, 5}, &rng));
  const Tensor w = Rand({2, 5}, &rng);
  return CheckModuleGradients(cell, [&cell, &x, &h, &w] {
    return WeightedSum(cell.Forward(x, h), w);
  });
}

GradCheckResult CaseGRU() {
  Rng rng(kCaseSeed);
  nn::GRU gru(3, 4, &rng);
  const ag::Variable xs = ag::Constant(Rand({4, 3}, &rng));
  const Tensor w = Rand({4, 4}, &rng);
  return CheckModuleGradients(gru, [&gru, &xs, &w] {
    return WeightedSum(gru.Forward(xs), w);
  });
}

GradCheckResult CaseLayerNorm() {
  Rng rng(kCaseSeed);
  nn::LayerNorm layer(6);
  const ag::Variable x = ag::Constant(Rand({3, 6}, &rng));
  const Tensor w = Rand({3, 6}, &rng);
  return CheckModuleGradients(layer, [&layer, &x, &w] {
    return WeightedSum(layer.Forward(x), w);
  });
}

GradCheckResult CaseFeedForward() {
  Rng rng(kCaseSeed);
  nn::FeedForward layer(4, 5, &rng);
  const ag::Variable x = ag::Constant(Rand({2, 4}, &rng));
  const Tensor w = Rand({2, 4}, &rng);
  return CheckModuleGradients(layer, [&layer, &x, &w] {
    return WeightedSum(layer.Forward(x), w);
  });
}

}  // namespace

void RegisterBuiltinGradCheckCases() {
  Register("op", "Add", &CaseAdd);
  Register("op", "Sub", &CaseSub);
  Register("op", "Mul", &CaseMul);
  Register("op", "AddRowBroadcast", &CaseAddRowBroadcast);
  Register("op", "MulRowBroadcast", &CaseMulRowBroadcast);
  Register("op", "MulColBroadcast", &CaseMulColBroadcast);
  Register("op", "Scale", &CaseScale);
  Register("op", "AddScalar", &CaseAddScalar);
  Register("op", "Neg", &CaseNeg);
  Register("op", "MatMul", &CaseMatMul);
  Register("op", "Transpose", &CaseTranspose);
  Register("op", "Sigmoid", &CaseSigmoid);
  Register("op", "Tanh", &CaseTanh);
  Register("op", "Relu", &CaseRelu);
  Register("op", "Exp", &CaseExp);
  Register("op", "Log", &CaseLog);
  Register("op", "ConcatCols", &CaseConcatCols);
  Register("op", "ConcatRows", &CaseConcatRows);
  Register("op", "StackRows", &CaseStackRows);
  Register("op", "SliceRows", &CaseSliceRows);
  Register("op", "Row", &CaseRow);
  Register("op", "GatherRows", &CaseGatherRows);
  Register("op", "SelectRowsByMask", &CaseSelectRowsByMask);
  Register("op", "SegmentSumRows", &CaseSegmentSumRows);
  Register("op", "RowSoftmaxMasked", &CaseRowSoftmaxMasked);
  Register("op", "RowSoftmax", &CaseRowSoftmax);
  Register("op", "SumAll", &CaseSumAll);
  Register("op", "SumRowsTo1xD", &CaseSumRowsTo1xD);
  Register("op", "SumColsToNx1", &CaseSumColsToNx1);
  Register("op", "MeanRowsTo1xD", &CaseMeanRowsTo1xD);
  Register("op", "RepeatRow", &CaseRepeatRow);
  Register("op", "L2NormalizeRowsOp", &CaseL2NormalizeRowsOp);
  Register("op", "LayerNormRows", &CaseLayerNormRows);
  Register("op", "Dropout", &CaseDropout);
  Register("op", "SoftmaxCrossEntropy", &CaseSoftmaxCrossEntropy);

  Register("layer", "Linear", &CaseLinear);
  Register("layer", "Embedding", &CaseEmbedding);
  Register("layer", "GRUCell", &CaseGRUCell);
  Register("layer", "GRU", &CaseGRU);
  Register("layer", "LayerNorm", &CaseLayerNorm);
  Register("layer", "FeedForward", &CaseFeedForward);
}

}  // namespace verify
}  // namespace embsr
