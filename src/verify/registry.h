#ifndef EMBSR_VERIFY_REGISTRY_H_
#define EMBSR_VERIFY_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "verify/gradcheck.h"

namespace embsr {
namespace verify {

/// One registered gradient-check case. `name` must match the declared name
/// in the source file the coverage test scans (the op function in
/// autograd/ops.h, or the layer class in nn/layers.h) — that is the link
/// that makes the coverage enforcement automatic.
struct GradCheckCase {
  std::string kind;  // "op" or "layer"
  std::string name;
  std::function<GradCheckResult()> run;
};

/// Registry of gradient-check cases, compared by the coverage test against
/// the op/layer/model names statically scanned out of the source tree
/// (verify/source_scan.h). Adding an op to autograd/ops.h or a layer to
/// nn/layers.h without registering a case here fails gradcheck_test.
class GradCheckRegistry {
 public:
  static GradCheckRegistry& Global();

  void Register(std::string kind, std::string name,
                std::function<GradCheckResult()> run);

  const std::vector<GradCheckCase>& cases() const { return cases_; }

  /// Sorted names of all cases of one kind.
  std::vector<std::string> Names(const std::string& kind) const;

  /// Null if no case of that kind/name exists.
  const GradCheckCase* Find(const std::string& kind,
                            const std::string& name) const;

 private:
  GradCheckRegistry() = default;

  std::vector<GradCheckCase> cases_;
};

/// Registers the built-in cases covering every op in autograd/ops.h and
/// every layer in nn/layers.h. Idempotent; call before consulting the
/// registry (a plain function instead of static initializers so a static
/// library link can never silently drop the cases).
void RegisterBuiltinGradCheckCases();

}  // namespace verify
}  // namespace embsr

#endif  // EMBSR_VERIFY_REGISTRY_H_
