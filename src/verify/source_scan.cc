#include "verify/source_scan.h"

#include <algorithm>
#include <regex>

#include "util/fs_util.h"

namespace embsr {
namespace verify {

namespace {

std::vector<std::string> MatchAll(const std::string& text,
                                  const std::regex& re) {
  std::vector<std::string> names;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
       it != std::sregex_iterator(); ++it) {
    names.push_back((*it)[1].str());
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

Result<std::vector<std::string>> ScanFile(
    const std::string& path,
    std::vector<std::string> (*scan)(const std::string&)) {
  Result<std::string> source = ReadFileToString(path);
  if (!source.ok()) return source.status();
  return scan(source.value());
}

}  // namespace

std::vector<std::string> DeclaredOpNames(const std::string& ops_header) {
  // House style: each op is declared `Variable Name(` at the start of a
  // line (multi-line parameter lists still put the name on the first line).
  static const std::regex kOpDecl(R"(^Variable (\w+)\()",
                                  std::regex::multiline);
  return MatchAll(ops_header, kOpDecl);
}

std::vector<std::string> DeclaredLayerNames(const std::string& layers_header) {
  static const std::regex kLayerDecl(R"(^class (\w+) : public Module)",
                                     std::regex::multiline);
  return MatchAll(layers_header, kLayerDecl);
}

std::vector<std::string> DeclaredModelNames(const std::string& model_zoo_cc) {
  static const std::regex kModelName(R"rx(name == "([^"]+)")rx");
  return MatchAll(model_zoo_cc, kModelName);
}

std::vector<std::string> DeclaredTensorKernelNames(
    const std::string& tensor_header) {
  // House style: free kernels are declared at line start returning Tensor,
  // void (in-place scatter) or float (scalar reductions). Member functions
  // are indented, so the line anchor skips the Tensor class body.
  static const std::regex kKernelDecl(R"(^(?:Tensor|void|float) (\w+)\()",
                                      std::regex::multiline);
  return MatchAll(tensor_header, kKernelDecl);
}

std::vector<std::string> CoveredKernelEquivNames(
    const std::string& kernel_equiv_test_cc) {
  // The trailing semicolon distinguishes marker *uses* from the macro's own
  // #define line and from prose mentions in comments.
  static const std::regex kCoverMarker(R"(EMBSR_KERNEL_EQUIV\((\w+)\);)");
  return MatchAll(kernel_equiv_test_cc, kCoverMarker);
}

std::vector<std::string> CoveredModelAuditNames(
    const std::string& model_audits_cc) {
  // The quoted-string argument distinguishes marker uses from the macro's
  // own #define line (whose argument is the bare token `name`).
  static const std::regex kAuditMarker(R"rx(EMBSR_MODEL_AUDIT\("([^"]+)"\))rx");
  return MatchAll(model_audits_cc, kAuditMarker);
}

std::vector<std::string> CoveredOpCostNames(const std::string& op_costs_cc) {
  // The quoted-string argument distinguishes marker uses from the macro's
  // own #define line (whose argument is the bare token `name`).
  static const std::regex kCostMarker(R"rx(EMBSR_OP_COST\("([^"]+)"\))rx");
  return MatchAll(op_costs_cc, kCostMarker);
}

std::vector<std::string> CoveredShapeRuleNames(
    const std::string& shape_rules_cc) {
  // The quoted-string argument distinguishes marker uses from the macro's
  // own #define line (whose argument is the bare token `name`).
  static const std::regex kShapeMarker(R"rx(EMBSR_SHAPE_RULE\("([^"]+)"\))rx");
  return MatchAll(shape_rules_cc, kShapeMarker);
}

Result<std::vector<std::string>> ScanOpNames(const std::string& repo_root) {
  return ScanFile(repo_root + "/src/autograd/ops.h", &DeclaredOpNames);
}

Result<std::vector<std::string>> ScanLayerNames(const std::string& repo_root) {
  return ScanFile(repo_root + "/src/nn/layers.h", &DeclaredLayerNames);
}

Result<std::vector<std::string>> ScanModelNames(const std::string& repo_root) {
  return ScanFile(repo_root + "/src/train/model_zoo.cc", &DeclaredModelNames);
}

Result<std::vector<std::string>> ScanTensorKernelNames(
    const std::string& repo_root) {
  return ScanFile(repo_root + "/src/tensor/tensor.h",
                  &DeclaredTensorKernelNames);
}

Result<std::vector<std::string>> ScanKernelEquivCoverage(
    const std::string& repo_root) {
  return ScanFile(repo_root + "/tests/kernel_equiv_test.cc",
                  &CoveredKernelEquivNames);
}

Result<std::vector<std::string>> ScanModelAuditCoverage(
    const std::string& repo_root) {
  return ScanFile(repo_root + "/src/analyze/model_audits.cc",
                  &CoveredModelAuditNames);
}

Result<std::vector<std::string>> ScanOpCostCoverage(
    const std::string& repo_root) {
  return ScanFile(repo_root + "/src/autograd/op_costs.cc",
                  &CoveredOpCostNames);
}

Result<std::vector<std::string>> ScanShapeRuleCoverage(
    const std::string& repo_root) {
  return ScanFile(repo_root + "/src/analyze/shape_rules.cc",
                  &CoveredShapeRuleNames);
}

}  // namespace verify
}  // namespace embsr
