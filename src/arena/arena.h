#ifndef EMBSR_ARENA_ARENA_H_
#define EMBSR_ARENA_ARENA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analyze/graph_signature.h"
#include "autograd/exec_observer.h"
#include "autograd/variable.h"
#include "tensor/arena_view.h"

namespace embsr {
namespace arena {

/// Plan-executing arena allocator (DESIGN.md §17).
///
/// A training or scoring step wrapped in a StepScope runs in one of three
/// regimes, chosen per *step key* (a caller-supplied string naming the model
/// and the input's structural skeleton):
///
///   occurrence 1   plain heap execution (nothing to compare against)
///   occurrence 2   heap execution, recorded through an ag::ExecObserver;
///                  at scope close the graph is signed
///                  (analyze::ComputeGraphSignature), planned
///                  (analyze::BuildGraphPlan in executor mode), verified
///                  (analyze::VerifyGraphPlan) and cached
///   occurrence 3+  *placed* execution: each recorded node is conformance-
///                  checked against the cached plan (op, element count,
///                  attribute hash, requires_grad, parent structure) and its
///                  transient buffers are seated at the plan's offsets
///                  inside one pre-sized arena block instead of their own
///                  heap vectors
///
/// The executor NEVER fails a step. Any conformance mismatch — a model with
/// data-dependent topology, a stale plan, an extent overflow — spills every
/// live placed buffer back to the heap mid-step (deep copies through the
/// sentinel gate), strikes the key, and after repeated strikes blacklists it
/// to permanent heap execution. The only FATALs are the lifetime sentinel's
/// (see ArenaViewData) and the [stale-plan]/[extent-overflow] alarms armed
/// explicitly by tests via ForceStrict(1).
///
/// Lifetime-conformance sentinel. In strict mode (EMBSR_CHECK_CONTRACTS
/// builds, or ForceStrict(1)) every touch of a placed buffer is checked
/// against its planned [first_def, last_use] interval by the single gate in
/// tensor/arena_view.h, and buffers are *poisoned* at their planned death:
/// ASan manual poisoning when the build has AddressSanitizer, a 0xEB byte
/// scribble otherwise. A read resurrecting a dead buffer therefore dies
/// loudly in every configuration that can see it.

/// One planned buffer of a cached plan, in element (float) units.
struct BufferSpec {
  int64_t offset = -1;  // float offset into the arena; -1 = not placed
  int64_t elems = 0;
  int64_t def_step = 0;
  int64_t last_use_step = 0;
  int64_t buffer_id = -1;  // analyze::PlanBuffer::id, for diagnostics
};

/// Expected identity + placement of one recorded node. The conformance check
/// in placed mode compares the replayed node against this, field by field.
struct NodeSpec {
  std::string op;
  int64_t elems = 0;
  uint64_t attr_hash = 0;
  bool requires_grad = false;
  /// Parent references: tape index >= 0, or -(k+1) for the k-th distinct
  /// persistent (pre-step) node in first-encounter order — the same encoding
  /// analyze::ComputeGraphSignature hashes.
  std::vector<int64_t> parents;
  int64_t exec_step = -1;  // backward execution step; -1 = never runs
  BufferSpec value;
  BufferSpec grad;
};

/// A planned buffer's scheduled death, for the executor's sweep cursor.
struct DeathEvent {
  int64_t last_use_step = 0;
  int32_t node = 0;
  bool is_grad = false;
};

struct CachedPlan {
  analyze::GraphSignature signature;
  bool forward_only = false;
  int64_t root_index = -1;  // tape index of the step root
  int64_t forward_steps = 0;
  int64_t end_step = 0;
  int64_t extent_elems = 0;  // arena block size, floats
  int64_t planned_peak_bytes = 0;
  int64_t planned_extent_bytes = 0;
  std::vector<NodeSpec> nodes;  // one per forward step, tape order
  std::vector<DeathEvent> death_order;  // sorted by last_use_step
};

/// Rebuilds `death_order` from the placed buffers in `nodes` (sorted by
/// last_use_step). The cache calls this after construction and after every
/// MutateCachedPlan, so a mutated plan keeps a consistent sweep schedule.
void RebuildDeathOrder(CachedPlan* plan);

/// Outcome of the last closed StepScope on this thread.
struct StepStats {
  bool active = false;    // the scope engaged (EMBSR_ARENA=1, not nested)
  bool placed = false;    // ran against a cached plan
  bool recorded = false;  // recorded and cached a plan this step
  bool fell_back = false; // mid-step spill back to the heap
  int64_t placed_buffers = 0;
  int64_t placed_bytes = 0;
  int64_t live_peak_bytes = 0;     // peak of placed live bytes
  int64_t planned_peak_bytes = 0;  // from the plan (0 when not placed)
  int64_t arena_extent_bytes = 0;
  uint64_t signature = 0;
};

/// True when EMBSR_ARENA=1 (read live, so tests can toggle with setenv).
bool Enabled();

const StepStats& LastStepStats();

/// Brackets one model step. Declare it BEFORE any graph Variable of the
/// step, so the graph (and every tensor viewing the arena) dies first.
/// Inert — plain heap execution, no observer — when the executor is
/// disabled, when another observer or scope is active on the thread, or
/// when an analyze Tape is open (audit tooling must never observe
/// reseated storage).
class StepScope : public ag::ExecObserver {
 public:
  /// `key` names the (model, input-structure) equivalence class; plans are
  /// cached and replayed per key. `forward_only` steps (scoring) must call
  /// SetRoot before the scope closes and never run Backward().
  explicit StepScope(std::string key, bool forward_only = false);
  ~StepScope() override;

  StepScope(const StepScope&) = delete;
  StepScope& operator=(const StepScope&) = delete;

  /// Forward-only steps: names the output the caller reads (the logits).
  void SetRoot(const ag::Variable& root);

  // ag::ExecObserver --------------------------------------------------------
  void OnNodeRecorded(const std::shared_ptr<ag::Node>& node) override;
  void OnBackwardSeed(ag::Node* root) override;
  void OnBackwardOp(ag::Node* node) override;
  void OnGradSeated(ag::Node* node) override;

 private:
  enum class Mode { kInert, kHeap, kRecord, kPlaced };

  void AdvanceClock(int64_t step);
  void PlaceValue(ag::Node* node, int64_t index);
  void PlaceGrad(ag::Node* node, int64_t index);
  ArenaView* Seat(ag::Node* node, int64_t index, const BufferSpec& spec,
                  bool is_grad);
  /// Cached plan disagrees with live execution: FATAL [stale-plan] when a
  /// test pinned strict mode, else spill + strike (fail open).
  void PlanMismatch(int64_t index, const char* what);
  void Fallback(const char* reason);
  void CloseRecord();
  void ClosePlaced();

  std::string key_;
  bool forward_only_ = false;
  Mode mode_ = Mode::kInert;
  bool installed_ = false;
  bool strict_ = false;
  bool fell_back_ = false;
  bool backward_seen_ = false;

  // Record mode.
  std::vector<std::shared_ptr<ag::Node>> recorded_;
  ag::Node* root_ = nullptr;

  // Placed mode.
  std::shared_ptr<const CachedPlan> plan_;
  std::shared_ptr<CachedPlan> mutable_plan_;  // keeps the cache entry alive
  int64_t next_index_ = 0;
  size_t death_cursor_ = 0;
  /// Replay identity: recorded node -> tape index; persistent parent ->
  /// negative first-encounter ordinal (the NodeSpec::parents encoding).
  std::unordered_map<const ag::Node*, int64_t> ident_;
  int64_t persistent_seen_ = 0;
  std::vector<ArenaView*> value_views_;
  std::vector<ArenaView*> grad_views_;
  struct Placement {
    ag::Node* owner = nullptr;
    ArenaView* view = nullptr;
    bool is_grad = false;
  };
  std::vector<Placement> placements_;
  int64_t live_bytes_ = 0;

  StepStats stats_;
};

// -- Testing hooks --------------------------------------------------------

/// Clears the plan cache and per-key state (strikes, blacklists).
void ResetForTesting();

/// -1 (default): strict mode follows the EMBSR_CHECK_CONTRACTS build flag.
/// 0/1: override. ForceStrict(1) additionally *pins* strictness: plan
/// mismatches FATAL with [stale-plan] instead of spilling, which is how the
/// mutant tests prove the alarm rings.
void ForceStrict(int mode);

/// Applies `fn` to the cached plan for `key` (if any), then rebuilds the
/// death order. Returns false when the key has no cached plan. Used by the
/// conformance tests to seed corrupted plans.
bool MutateCachedPlan(const std::string& key,
                      const std::function<void(CachedPlan*)>& fn);

/// The cached plan for `key`, or null. Tests inspect planned sizes with it.
std::shared_ptr<const CachedPlan> FindCachedPlan(const std::string& key);

}  // namespace arena
}  // namespace embsr

#endif  // EMBSR_ARENA_ARENA_H_
