#include "arena/arena.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <utility>

#include "analyze/graph_plan.h"
#include "autograd/tape.h"
#include "obs/metrics.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"
#include "util/check.h"
#include "util/env.h"

#if defined(__SANITIZE_ADDRESS__)
#define EMBSR_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EMBSR_ARENA_ASAN 1
#endif
#endif
#ifdef EMBSR_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace embsr {
namespace arena {

namespace {

constexpr int64_t kBytesPerElem = static_cast<int64_t>(sizeof(float));
constexpr int kStrikesToBlacklist = 3;

/// The conformance clock every view on this thread points at. Thread-local
/// and process-lived, so a view escaping its StepScope still dereferences
/// valid memory (and then dies on the generation check, not on a wild read).
thread_local int64_t t_clock = 0;
thread_local StepStats t_last_stats;

/// The arena block. Grow-only and thread-local: plans for different keys
/// share it, each using its own prefix.
std::vector<float>& ArenaStorage() {
  thread_local std::vector<float> storage;
  return storage;
}

/// View slots are pool-recycled and never freed, so a stale ArenaView* in an
/// escaped Tensor points at live metadata; the generation stamp (bumped on
/// every reuse) turns the escape into a FATAL.
thread_local std::vector<std::unique_ptr<ArenaView>> t_slots;
thread_local std::vector<ArenaView*> t_free_slots;

ArenaView* AcquireSlot() {
  if (t_free_slots.empty()) {
    t_slots.push_back(std::make_unique<ArenaView>());
    t_slots.back()->generation = 1;
    return t_slots.back().get();
  }
  ArenaView* v = t_free_slots.back();
  t_free_slots.pop_back();
  ++v->generation;
  return v;
}

std::atomic<int> g_force_strict{-1};

bool ResolveStrict() {
  const int f = g_force_strict.load(std::memory_order_relaxed);
  if (f >= 0) return f != 0;
  return EMBSR_CONTRACTS_ENABLED != 0;
}

bool StrictPinned() {
  return g_force_strict.load(std::memory_order_relaxed) == 1;
}

void PoisonDead(ArenaView* v) {
#ifdef EMBSR_ARENA_ASAN
  __asan_poison_memory_region(v->base, v->elems * kBytesPerElem);
#else
  std::memset(v->base, 0xEB, v->elems * kBytesPerElem);
#endif
}

void UnpoisonRegion(float* base, int64_t elems) {
#ifdef EMBSR_ARENA_ASAN
  __asan_unpoison_memory_region(base, elems * kBytesPerElem);
#else
  (void)base;
  (void)elems;
#endif
}

obs::Counter* HitsCounter() {
  static obs::Counter* c = obs::Registry::Global().GetCounter("arena/plan_hits");
  return c;
}
obs::Counter* MissesCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("arena/plan_misses");
  return c;
}
obs::Counter* EvictionsCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("arena/plan_evictions");
  return c;
}
obs::Counter* FallbacksCounter() {
  static obs::Counter* c = obs::Registry::Global().GetCounter("arena/fallbacks");
  return c;
}
obs::Counter* RejectsCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("arena/plan_rejects");
  return c;
}

/// Global keyed plan cache. Admission, strikes and LRU eviction all live
/// behind one mutex; the hot path takes it twice per step (admit + none, or
/// admit + store), never inside a node callback.
class PlanCache {
 public:
  struct Admission {
    int64_t seen = 0;
    bool blacklisted = false;
    std::shared_ptr<CachedPlan> plan;
  };

  static PlanCache& Global() {
    static PlanCache* cache = new PlanCache();  // lint: allow(raw-new): leaked singleton — outlives all worker threads
    return *cache;
  }

  Admission Admit(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    KeyState& ks = keys_[key];
    ++ks.seen;
    ks.lru_tick = ++tick_;
    return Admission{ks.seen, ks.blacklisted, ks.plan};
  }

  void Store(const std::string& key, std::shared_ptr<CachedPlan> plan) {
    const int64_t cap =
        std::max(1, GetEnvInt("EMBSR_ARENA_CACHE_CAP", 64));
    std::lock_guard<std::mutex> lock(mu_);
    KeyState& ks = keys_[key];
    if (ks.blacklisted) return;
    ks.plan = std::move(plan);
    ks.lru_tick = ++tick_;
    // Evict least-recently-admitted plans over the cap. The whole entry
    // goes, so a re-encountered key restarts its warm-up discipline.
    while (true) {
      int64_t with_plan = 0;
      auto victim = keys_.end();
      for (auto it = keys_.begin(); it != keys_.end(); ++it) {
        if (!it->second.plan) continue;
        ++with_plan;
        if (it->first == key) continue;
        if (victim == keys_.end() ||
            it->second.lru_tick < victim->second.lru_tick) {
          victim = it;
        }
      }
      if (with_plan <= cap || victim == keys_.end()) break;
      keys_.erase(victim);
      EvictionsCounter()->Increment();
    }
  }

  void Strike(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    KeyState& ks = keys_[key];
    if (++ks.strikes >= kStrikesToBlacklist) {
      ks.blacklisted = true;
      ks.plan.reset();
    } else {
      // Re-record on the next occurrence instead of replaying a plan that
      // just mismatched.
      ks.plan.reset();
    }
  }

  std::shared_ptr<CachedPlan> Find(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = keys_.find(key);
    return it == keys_.end() ? nullptr : it->second.plan;
  }

  bool Mutate(const std::string& key,
              const std::function<void(CachedPlan*)>& fn) {
    std::shared_ptr<CachedPlan> plan;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = keys_.find(key);
      if (it == keys_.end() || !it->second.plan) return false;
      plan = it->second.plan;
    }
    fn(plan.get());
    RebuildDeathOrder(plan.get());
    return true;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    keys_.clear();
    tick_ = 0;
  }

 private:
  struct KeyState {
    int64_t seen = 0;
    int strikes = 0;
    bool blacklisted = false;
    std::shared_ptr<CachedPlan> plan;
    uint64_t lru_tick = 0;
  };

  std::mutex mu_;
  std::unordered_map<std::string, KeyState> keys_;
  uint64_t tick_ = 0;
};

}  // namespace

bool Enabled() { return GetEnvInt("EMBSR_ARENA", 0) == 1; }

const StepStats& LastStepStats() { return t_last_stats; }

void RebuildDeathOrder(CachedPlan* plan) {
  plan->death_order.clear();
  for (size_t i = 0; i < plan->nodes.size(); ++i) {
    const NodeSpec& s = plan->nodes[i];
    if (s.value.offset >= 0) {
      plan->death_order.push_back(
          DeathEvent{s.value.last_use_step, static_cast<int32_t>(i), false});
    }
    if (s.grad.offset >= 0) {
      plan->death_order.push_back(
          DeathEvent{s.grad.last_use_step, static_cast<int32_t>(i), true});
    }
  }
  std::stable_sort(plan->death_order.begin(), plan->death_order.end(),
                   [](const DeathEvent& a, const DeathEvent& b) {
                     return a.last_use_step < b.last_use_step;
                   });
}

StepScope::StepScope(std::string key, bool forward_only)
    : key_(std::move(key)), forward_only_(forward_only) {
  if (!Enabled()) return;
  // Stay out of nested steps and audit tapes: the analyze tooling must
  // never observe reseated storage, and one conformance clock per thread.
  if (ag::ExecObserver::Active() != nullptr || ag::Tape::Active() != nullptr) {
    return;
  }
  tensor_pool::Enable();
  stats_.active = true;

  PlanCache::Admission a = PlanCache::Global().Admit(key_);
  if (a.blacklisted) {
    mode_ = Mode::kHeap;
    MissesCounter()->Increment();
    return;
  }
  if (a.plan && a.plan->forward_only == forward_only_) {
    mode_ = Mode::kPlaced;
    mutable_plan_ = std::move(a.plan);
    plan_ = mutable_plan_;
    strict_ = ResolveStrict();
    stats_.placed = true;
    stats_.signature = plan_->signature.hash;
    stats_.planned_peak_bytes = plan_->planned_peak_bytes;
    stats_.arena_extent_bytes = plan_->planned_extent_bytes;
    std::vector<float>& storage = ArenaStorage();
    if (static_cast<int64_t>(storage.size()) < plan_->extent_elems) {
      // The arena block itself: sized once per plan high-water mark,
      // then reused across steps.
      storage.resize(static_cast<size_t>(plan_->extent_elems));  // lint: allow(raw-resize): container sizing, not a tensor reshape
    }
    value_views_.assign(static_cast<size_t>(plan_->forward_steps), nullptr);
    grad_views_.assign(static_cast<size_t>(plan_->forward_steps), nullptr);
    // Pre-size the replay bookkeeping: a stacked scoring graph records
    // tens of thousands of nodes, and incremental rehashing would dominate
    // the per-node conformance cost.
    ident_.reserve(static_cast<size_t>(plan_->forward_steps) * 2);
    placements_.reserve(plan_->death_order.size());
    t_clock = -1;
    HitsCounter()->Increment();
  } else if (a.seen >= 2) {
    mode_ = Mode::kRecord;
    MissesCounter()->Increment();
  } else {
    mode_ = Mode::kHeap;
    MissesCounter()->Increment();
    return;
  }
  ag::ExecObserver::Install(this);
  installed_ = true;
}

StepScope::~StepScope() {
  if (installed_) {
    if (mode_ == Mode::kRecord) {
      CloseRecord();
    } else if (mode_ == Mode::kPlaced) {
      ClosePlaced();
    }
    ag::ExecObserver::Uninstall(this);
  }
  if (stats_.active) t_last_stats = stats_;
}

void StepScope::SetRoot(const ag::Variable& root) {
  if (mode_ == Mode::kInert || mode_ == Mode::kHeap) return;
  if (root.defined()) root_ = root.node().get();
}

void StepScope::OnNodeRecorded(const std::shared_ptr<ag::Node>& node) {
  if (mode_ == Mode::kRecord) {
    recorded_.push_back(node);
    return;
  }
  if (mode_ != Mode::kPlaced || fell_back_) return;
  ag::Node* n = node.get();
  const int64_t idx = next_index_++;
  if (idx >= plan_->forward_steps) {
    PlanMismatch(idx, "more nodes recorded than the plan schedules");
    return;
  }
  AdvanceClock(idx);
  ident_.emplace(n, idx);
  const NodeSpec& s = plan_->nodes[static_cast<size_t>(idx)];
  bool ok = s.op == n->op && s.elems == n->value.size() &&
            s.attr_hash == n->attr_hash &&
            s.requires_grad == n->requires_grad &&
            s.parents.size() == n->parents.size();
  if (ok) {
    for (size_t k = 0; k < n->parents.size(); ++k) {
      const ag::Node* p = n->parents[k].get();
      auto it = ident_.find(p);
      if (it == ident_.end()) {
        it = ident_.emplace(p, -(++persistent_seen_)).first;
      }
      if (it->second != s.parents[k]) {
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    PlanMismatch(idx, "recorded node does not match its plan spec");
    return;
  }
  if (s.value.offset >= 0) PlaceValue(n, idx);
}

void StepScope::OnBackwardSeed(ag::Node* root) {
  if (mode_ == Mode::kRecord) {
    root_ = root;
    return;
  }
  if (mode_ != Mode::kPlaced || fell_back_) return;
  backward_seen_ = true;
  if (plan_->forward_only) {
    PlanMismatch(next_index_, "Backward() under a forward-only plan");
    return;
  }
  if (next_index_ != plan_->forward_steps) {
    PlanMismatch(next_index_, "fewer nodes recorded than the plan schedules");
    return;
  }
  auto it = ident_.find(root);
  if (it == ident_.end() || it->second != plan_->root_index) {
    PlanMismatch(it == ident_.end() ? -1 : it->second,
                 "backward root differs from the planned root");
    return;
  }
  AdvanceClock(plan_->forward_steps);
}

void StepScope::OnBackwardOp(ag::Node* node) {
  if (mode_ != Mode::kPlaced || fell_back_) return;
  auto it = ident_.find(node);
  if (it == ident_.end() || it->second < 0) {
    PlanMismatch(-1, "backward op on a node outside the planned graph");
    return;
  }
  const NodeSpec& s = plan_->nodes[static_cast<size_t>(it->second)];
  if (s.exec_step < 0 || s.exec_step <= t_clock) {
    PlanMismatch(it->second, "backward schedule diverged from the plan");
    return;
  }
  AdvanceClock(s.exec_step);
}

void StepScope::OnGradSeated(ag::Node* node) {
  if (mode_ != Mode::kPlaced || fell_back_) return;
  auto it = ident_.find(node);
  // Persistent (parameter) gradients accumulate across the mini-batch and
  // are read by the optimizer after the step: never placed.
  if (it == ident_.end() || it->second < 0) return;
  const int64_t idx = it->second;
  const NodeSpec& s = plan_->nodes[static_cast<size_t>(idx)];
  if (s.grad.offset < 0) return;
  if (grad_views_[static_cast<size_t>(idx)] != nullptr) return;
  if (node->grad.size() != s.grad.elems || t_clock != s.grad.def_step) {
    PlanMismatch(idx, "gradient seated off its planned schedule");
    return;
  }
  PlaceGrad(node, idx);
}

void StepScope::AdvanceClock(int64_t step) {
  t_clock = step;
  const std::vector<DeathEvent>& deaths = plan_->death_order;
  while (death_cursor_ < deaths.size() &&
         deaths[death_cursor_].last_use_step < step) {
    const DeathEvent& d = deaths[death_cursor_++];
    ArenaView* v = d.is_grad ? grad_views_[static_cast<size_t>(d.node)]
                             : value_views_[static_cast<size_t>(d.node)];
    if (v == nullptr || v->expired) continue;
    if (strict_) PoisonDead(v);
    v->expired = true;
    live_bytes_ -= v->elems * kBytesPerElem;
  }
}

ArenaView* StepScope::Seat(ag::Node* node, int64_t index,
                           const BufferSpec& spec, bool is_grad) {
  std::vector<float>& storage = ArenaStorage();
  if (spec.offset < 0 ||
      spec.offset + spec.elems > static_cast<int64_t>(storage.size())) {
    EMBSR_CHECK_MSG(
        !strict_,
        "[extent-overflow] arena %s buffer #%lld (node %lld, '%s') spans "
        "floats [%lld, %lld) but the planned extent is %lld",
        is_grad ? "grad" : "value", static_cast<long long>(spec.buffer_id),
        static_cast<long long>(index),
        plan_->nodes[static_cast<size_t>(index)].op.c_str(),
        static_cast<long long>(spec.offset),
        static_cast<long long>(spec.offset + spec.elems),
        static_cast<long long>(storage.size()));
    Fallback("planned offset beyond the arena extent");
    return nullptr;
  }
  ArenaView* v = AcquireSlot();
  v->base = storage.data() + spec.offset;  // lint: allow(data-arith): seats the view at the planner's offset
  v->elems = spec.elems;
  v->def_step = spec.def_step;
  v->last_use_step = spec.last_use_step;
  v->clock = &t_clock;
  v->label = plan_->nodes[static_cast<size_t>(index)].op.c_str();
  v->buffer_id = spec.buffer_id;
  v->is_grad = is_grad;
  v->strict = strict_;
  v->expired = false;
  UnpoisonRegion(v->base, v->elems);
  std::memcpy(v->base, is_grad ? node->grad.data() : node->value.data(),
              static_cast<size_t>(spec.elems) * sizeof(float));
  placements_.push_back(Placement{node, v, is_grad});
  live_bytes_ += spec.elems * kBytesPerElem;
  stats_.live_peak_bytes = std::max(stats_.live_peak_bytes, live_bytes_);
  ++stats_.placed_buffers;
  stats_.placed_bytes += spec.elems * kBytesPerElem;
  return v;
}

void StepScope::PlaceValue(ag::Node* node, int64_t index) {
  const NodeSpec& s = plan_->nodes[static_cast<size_t>(index)];
  ArenaView* v = Seat(node, index, s.value, /*is_grad=*/false);
  if (v == nullptr) return;
  node->value = Tensor::FromArenaView(v, node->value.shape());
  value_views_[static_cast<size_t>(index)] = v;
}

void StepScope::PlaceGrad(ag::Node* node, int64_t index) {
  const NodeSpec& s = plan_->nodes[static_cast<size_t>(index)];
  ArenaView* v = Seat(node, index, s.grad, /*is_grad=*/true);
  if (v == nullptr) return;
  node->grad = Tensor::FromArenaView(v, node->grad.shape());
  grad_views_[static_cast<size_t>(index)] = v;
}

void StepScope::PlanMismatch(int64_t index, const char* what) {
  EMBSR_CHECK_MSG(!StrictPinned(),
                  "[stale-plan] cached arena plan for key '%s' no longer "
                  "matches execution at node %lld: %s",
                  key_.c_str(), static_cast<long long>(index), what);
  Fallback(what);
}

void StepScope::Fallback(const char* reason) {
  (void)reason;
  fell_back_ = true;
  stats_.fell_back = true;
  FallbacksCounter()->Increment();
  PlanCache::Global().Strike(key_);
  // Spill: every live placed buffer rematerializes on the heap via a deep
  // copy through the sentinel gate, then its arena view is retired. After
  // this loop the step continues exactly as a heap execution.
  for (const Placement& p : placements_) {
    if (p.view->expired) continue;
    if (p.is_grad) {
      Tensor heap_copy(p.owner->grad);  // lint: allow(arena-bypass): fail-open spill rematerializes on the heap
      p.owner->grad = std::move(heap_copy);
    } else {
      Tensor heap_copy(p.owner->value);  // lint: allow(arena-bypass): fail-open spill rematerializes on the heap
      p.owner->value = std::move(heap_copy);
    }
    p.view->expired = true;
  }
  live_bytes_ = 0;
  UnpoisonRegion(ArenaStorage().data(), plan_->extent_elems);
}

void StepScope::CloseRecord() {
  if (recorded_.empty() || root_ == nullptr) return;
  int64_t root_idx = -1;
  for (size_t i = 0; i < recorded_.size(); ++i) {
    if (recorded_[i].get() == root_) {
      root_idx = static_cast<int64_t>(i);
      break;
    }
  }
  if (root_idx < 0) return;  // root predates the step: nothing cacheable

  const analyze::GraphSignature sig =
      analyze::ComputeGraphSignature(recorded_, root_, forward_only_);
  analyze::PlanOptions opt;
  opt.forward_only = forward_only_;
  opt.executor_mode = true;
  const analyze::GraphPlan gp = analyze::BuildGraphPlan(
      ag::Variable::FromNode(recorded_[static_cast<size_t>(root_idx)]), {},
      recorded_, opt);
  const analyze::PlanVerifyReport report = analyze::VerifyGraphPlan(gp, opt);
  if (!report.ok()) {
    // Exact-heap fallback on verification failure: strike the key so it
    // re-records (and eventually blacklists) instead of replaying a plan
    // the verifier rejected.
    RejectsCounter()->Increment();
    PlanCache::Global().Strike(key_);
    return;
  }

  const int64_t n = static_cast<int64_t>(recorded_.size());
  auto plan = std::make_shared<CachedPlan>();
  plan->signature = sig;
  plan->forward_only = forward_only_;
  plan->root_index = root_idx;
  plan->forward_steps = n;
  plan->end_step = gp.end_step;
  plan->extent_elems = (gp.arena_extent_bytes + kBytesPerElem - 1) / kBytesPerElem;
  plan->planned_peak_bytes = gp.planned_peak_bytes;
  plan->planned_extent_bytes = gp.arena_extent_bytes;

  std::unordered_map<int64_t, const analyze::PlanBuffer*> grad_of;
  for (const analyze::PlanBuffer& b : gp.buffers) {
    if (b.is_grad && b.node_id >= 0) grad_of[b.node_id] = &b;
  }
  std::unordered_map<const ag::Node*, int64_t> ident;
  int64_t persistent_seen = 0;
  plan->nodes.resize(static_cast<size_t>(n));  // lint: allow(raw-resize): container sizing, not a tensor reshape
  for (int64_t i = 0; i < n; ++i) {
    ag::Node* node = recorded_[static_cast<size_t>(i)].get();
    ident.emplace(node, i);
    NodeSpec& s = plan->nodes[static_cast<size_t>(i)];
    s.op = node->op;
    s.elems = node->value.size();
    s.attr_hash = node->attr_hash;
    s.requires_grad = node->requires_grad;
    for (const std::shared_ptr<ag::Node>& p : node->parents) {
      auto it = ident.find(p.get());
      if (it == ident.end()) {
        it = ident.emplace(p.get(), -(++persistent_seen)).first;
      }
      s.parents.push_back(it->second);
    }
    const analyze::PlanBuffer& vb = gp.buffers[static_cast<size_t>(i)];
    if (vb.node_id != i || vb.is_grad) return;  // layout drifted: bail
    s.exec_step = vb.exec_step;
    s.value.elems = s.elems;
    s.value.def_step = vb.def_step;
    s.value.last_use_step = vb.last_use_step;
    s.value.buffer_id = vb.id;
    // Placement policy: transient, non-root, actually-read value buffers.
    // The root (loss / logits) is what the caller holds across the scope
    // boundary; unread buffers never amortize their placement copy.
    const bool place_value = !vb.persistent && !vb.is_root && vb.offset >= 0 &&
                             vb.reads > 0 && vb.size_bytes > 0;
    s.value.offset = place_value ? vb.offset / kBytesPerElem : -1;
    auto git = grad_of.find(i);
    if (git != grad_of.end() && i != root_idx) {
      const analyze::PlanBuffer& gb = *git->second;
      s.grad.elems = gb.size_bytes / kBytesPerElem;
      s.grad.def_step = gb.def_step;
      s.grad.last_use_step = gb.last_use_step;
      s.grad.buffer_id = gb.id;
      s.grad.offset =
          gb.offset >= 0 && gb.size_bytes > 0 ? gb.offset / kBytesPerElem : -1;
    }
  }
  RebuildDeathOrder(plan.get());
  stats_.recorded = true;
  stats_.signature = sig.hash;
  PlanCache::Global().Store(key_, std::move(plan));
}

void StepScope::ClosePlaced() {
  if (!fell_back_) {
    bool complete;
    if (plan_->forward_only) {
      auto it = root_ != nullptr ? ident_.find(root_) : ident_.end();
      complete = next_index_ == plan_->forward_steps &&
                 it != ident_.end() && it->second == plan_->root_index;
    } else {
      complete = backward_seen_;
    }
    if (!complete) {
      // The graph may already be destroyed at scope close, so this strike
      // must not touch owner nodes: retire the views without spilling (the
      // step already ran to completion on whatever storage it had).
      EMBSR_CHECK_MSG(!StrictPinned(),
                      "[stale-plan] cached arena plan for key '%s' was not "
                      "driven to completion (recorded %lld of %lld nodes)",
                      key_.c_str(), static_cast<long long>(next_index_),
                      static_cast<long long>(plan_->forward_steps));
      fell_back_ = true;
      stats_.fell_back = true;
      FallbacksCounter()->Increment();
      PlanCache::Global().Strike(key_);
    } else {
      AdvanceClock(plan_->end_step);
    }
  }
  for (const Placement& p : placements_) {
    p.view->expired = true;
    t_free_slots.push_back(p.view);
  }
  UnpoisonRegion(ArenaStorage().data(), plan_->extent_elems);
  static obs::Gauge* live_gauge =
      obs::Registry::Global().GetGauge("arena/live_peak_bytes");
  static obs::Gauge* extent_gauge =
      obs::Registry::Global().GetGauge("arena/extent_bytes");
  live_gauge->Set(static_cast<double>(stats_.live_peak_bytes));
  extent_gauge->Set(static_cast<double>(stats_.arena_extent_bytes));
}

void ResetForTesting() {
  PlanCache::Global().Reset();
  t_last_stats = StepStats{};
}

void ForceStrict(int mode) {
  g_force_strict.store(mode, std::memory_order_relaxed);
}

bool MutateCachedPlan(const std::string& key,
                      const std::function<void(CachedPlan*)>& fn) {
  return PlanCache::Global().Mutate(key, fn);
}

std::shared_ptr<const CachedPlan> FindCachedPlan(const std::string& key) {
  return PlanCache::Global().Find(key);
}

}  // namespace arena
}  // namespace embsr
