#ifndef EMBSR_ROBUST_HEALTH_H_
#define EMBSR_ROBUST_HEALTH_H_

namespace embsr {
namespace robust {

/// Numerical-health policy for the training loop, read from the
/// environment:
///
///   EMBSR_HEALTH_MAX_STRIKES  consecutive bad batches before rollback (3)
///   EMBSR_HEALTH_GRAD_LIMIT   grad-norm explosion threshold, 0 = off (1e4)
///   EMBSR_HEALTH_LR_BACKOFF   lr multiplier applied per bad batch (0.5)
struct HealthConfig {
  int max_strikes = 3;
  double grad_limit = 1e4;
  double lr_backoff = 0.5;
  /// Floor for the cumulative backoff so lr never underflows to zero.
  double min_lr_scale = 1.0 / 1024.0;

  static HealthConfig FromEnv();
};

/// What the training loop should do with the batch it just computed.
enum class BatchVerdict {
  kOk,        // step normally
  kSkip,      // discard gradients, do not step, retry with backed-off lr
  kRollback,  // too many consecutive strikes: restore last good state
};

/// Watches per-batch loss and gradient norm for NaN/Inf and explosions.
///
/// A bad batch earns a *strike*: the caller should drop the gradients and
/// skip the optimizer step, and `lr_scale()` decays so the next steps tread
/// more carefully. A good batch clears the strike count and lets lr_scale
/// recover one backoff step at a time. After `max_strikes` consecutive bad
/// batches the verdict escalates to kRollback — skipping cannot help once
/// the *parameters* (not the batch) are poisoned — and the caller should
/// restore the last known-good checkpoint and call NotifyRollback().
///
/// Everything is counted in the obs metrics registry so training-side
/// degradation is visible in run logs, not just the text log:
/// `robust/unhealthy_batches` and `robust/rollbacks` counters plus the
/// `robust/health_lr_scale`, `robust/health_strikes` and
/// `robust/health_backoff_level` gauges (the last is the integer number of
/// backoff steps lr_scale sits below 1.0).
class HealthGuard {
 public:
  HealthGuard();
  explicit HealthGuard(const HealthConfig& config);

  /// Judges one batch. `loss` is the batch-mean loss, `grad_norm` the
  /// global (pre-clip) gradient norm.
  BatchVerdict CheckBatch(double loss, double grad_norm);

  /// The caller restored the last good state; clears the strike count
  /// (the backed-off lr_scale is kept so the retrained steps stay small).
  void NotifyRollback();

  /// Multiplier the training loop applies to the scheduled lr.
  double lr_scale() const { return lr_scale_; }
  int strikes() const { return strikes_; }
  const HealthConfig& config() const { return config_; }

  /// True when (loss, grad_norm) would earn a strike under `config`.
  static bool IsUnhealthy(const HealthConfig& config, double loss,
                          double grad_norm);

 private:
  /// Mirrors strikes / lr_scale / backoff level into the obs gauges.
  void ExportMetrics() const;

  HealthConfig config_;
  int strikes_ = 0;
  double lr_scale_ = 1.0;
};

}  // namespace robust
}  // namespace embsr

#endif  // EMBSR_ROBUST_HEALTH_H_
