#ifndef EMBSR_ROBUST_FAILPOINT_H_
#define EMBSR_ROBUST_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/rng.h"
#include "util/status.h"

namespace embsr {
namespace robust {

/// Fault injection for tests and chaos runs.
///
/// A *failpoint* is a named site in the code (e.g. "ckpt.write") that asks
/// the registry whether it should fail this time. Sites are armed either
/// programmatically (Set) or from the environment:
///
///   EMBSR_FAILPOINTS="ckpt.write=0.5,io.read=1,train.nan_grad=1x2@3"
///
/// Per-site spec grammar: `prob[xLIMIT][@SKIP|@DELAYms]` —
///   prob     trigger probability in [0, 1] (1 = always)
///   xLIMIT   trigger at most LIMIT times, then the site goes quiet
///   @SKIP    ignore the first SKIP evaluations of the site before arming
///            (lets a test say "fail the *third* checkpoint write")
///   @DELAYms arm the site in *latency-injection* mode: instead of a hard
///            failure, each trigger asks the caller to stall DELAY
///            milliseconds (e.g. "serve.score=0.3@20ms" makes 30% of
///            scoring calls 20 ms slower). Slow dependencies — not just
///            dead ones — are a first-class injectable fault. A site is in
///            exactly one mode: ShouldFail() ignores latency sites and
///            ShouldDelayMs() ignores error sites.
///
/// Draws come from a dedicated seeded RNG (EMBSR_FAILPOINT_SEED), so
/// injected chaos is reproducible like everything else in this repo.
/// Trigger counts are kept per site and mirrored into the obs metrics
/// registry (`robust/failpoint_triggers` plus `robust/failpoint/<site>`).

/// One armed site.
struct FailpointSpec {
  double probability = 0.0;
  /// Remaining allowed triggers; negative = unlimited.
  int64_t remaining = -1;
  /// Evaluations of the site still to be ignored before it can trigger.
  int64_t skip = 0;
  /// > 0 puts the site in latency-injection mode: triggers request a stall
  /// of this many milliseconds instead of a hard failure.
  int64_t delay_ms = 0;
};

class Failpoints {
 public:
  /// The process-wide registry. EMBSR_FAILPOINTS is parsed on first use
  /// (a malformed spec is logged and ignored so a typo cannot take down a
  /// production run).
  static Failpoints& Global();

  /// Parses a spec string (see grammar above) and arms every site in it,
  /// replacing existing entries for the same sites.
  Status Configure(const std::string& spec);

  /// Arms one site programmatically (error mode).
  void Set(const std::string& site, double probability, int64_t limit = -1,
           int64_t skip = 0);

  /// Arms one site programmatically in latency-injection mode.
  void SetDelay(const std::string& site, double probability, int64_t delay_ms,
                int64_t limit = -1);

  void Clear(const std::string& site);
  void ClearAll();

  /// True when `site` should fail now. Decrements limits, honors skips,
  /// bumps trigger counters. Thread-safe; unarmed sites cost one map
  /// lookup under a mutex (failpoints sit on cold paths: file writes,
  /// epoch boundaries — never inner loops). Latency-mode sites never
  /// hard-fail; they return false here.
  bool ShouldFail(const std::string& site);

  /// Milliseconds the caller should stall right now, or 0. Only sites armed
  /// in latency mode (`@DELAYms`) ever return non-zero; the draw obeys the
  /// same probability/limit/counter machinery as ShouldFail. The caller
  /// applies the stall through its own clock (a serving frontend sleeps,
  /// a test advances its manual clock), so injected latency composes with
  /// deadline accounting instead of bypassing it.
  int64_t ShouldDelayMs(const std::string& site);

  /// How many times `site` has triggered since the last ClearAll/Clear.
  int64_t TriggerCount(const std::string& site) const;

  /// Drops all sites and re-reads EMBSR_FAILPOINTS. Tests only.
  void ReinitFromEnv();

 private:
  Failpoints();

  void ConfigureFromEnvLocked();

  /// Shared trigger machinery: honors skip, limit and the probability draw,
  /// and bumps the per-site counters on a trigger. Caller holds mu_.
  bool EvaluateLocked(const std::string& site, FailpointSpec* spec);

  mutable std::mutex mu_;
  std::map<std::string, FailpointSpec> sites_;
  std::map<std::string, int64_t> counts_;
  Rng rng_;
};

/// Builds the Status an injected failure should surface as; `what` names
/// the operation from the caller's point of view.
Status InjectedFailure(const std::string& site, const std::string& what);

}  // namespace robust
}  // namespace embsr

#endif  // EMBSR_ROBUST_FAILPOINT_H_
