#ifndef EMBSR_ROBUST_CKPT_MANAGER_H_
#define EMBSR_ROBUST_CKPT_MANAGER_H_

#include <string>
#include <vector>

#include "nn/checkpoint.h"
#include "util/status.h"

namespace embsr {
namespace robust {

/// Where and how often training checkpoints land, read from:
///
///   EMBSR_CKPT_DIR    directory for checkpoints; empty = disabled
///   EMBSR_CKPT_KEEP   keep the newest N checkpoints per run (3)
///   EMBSR_CKPT_EVERY  save every N completed epochs (1)
struct CheckpointManagerConfig {
  std::string dir;
  int keep_last = 3;
  int every_epochs = 1;

  static CheckpointManagerConfig FromEnv();
};

/// Crash-safe epoch checkpointing for one training run.
///
/// Each (model, dataset) run gets its own file family
/// `<run_id>.epoch<NNNNNN>.ckpt` inside the configured directory. Save()
/// writes atomically (see SaveCheckpoint) and prunes everything older than
/// the newest `keep_last` files. LoadLatest() walks the family newest-first
/// and *skips* checkpoints that fail to load (truncated, CRC mismatch) —
/// a torn file from a crashed run degrades to resuming one epoch earlier
/// instead of failing the run. Skipped corrupt files are counted in
/// `robust/ckpt_corrupt_skipped`.
class CheckpointManager {
 public:
  CheckpointManager(CheckpointManagerConfig config, const std::string& run_id);

  /// False when no checkpoint directory is configured; all other calls are
  /// then no-ops returning FailedPrecondition.
  bool enabled() const { return !config_.dir.empty(); }

  /// Whether the loop should checkpoint after `completed_epochs`.
  bool ShouldSaveAfterEpoch(int completed_epochs, int total_epochs) const;

  /// Saves module weights + training state for `state.epoch` completed
  /// epochs and applies retention.
  [[nodiscard]] Status Save(const nn::Module& module,
                            const nn::TrainState& state);

  /// Restores the newest loadable checkpoint of this run into
  /// (module, state). NotFound when none exists (a fresh run); when
  /// checkpoints existed but every one was corrupt, the NotFound message
  /// lists the skipped paths so the operator sees *what* was lost, not just
  /// that resume fell through. `skipped_corrupt`, when non-null, receives
  /// the paths of corrupt checkpoints that were skipped on the way to a
  /// successful (or failed) load, newest first; each skip also bumps the
  /// `robust/ckpt_corrupt_skipped` counter.
  [[nodiscard]] Status LoadLatest(
      nn::Module* module, nn::TrainState* state,
      std::vector<std::string>* skipped_corrupt = nullptr) const;

  /// This run's checkpoint paths, oldest first.
  std::vector<std::string> ListCheckpoints() const;

  const CheckpointManagerConfig& config() const { return config_; }
  const std::string& run_id() const { return run_id_; }

  /// Turns an arbitrary model/dataset label into a filesystem-safe run id.
  static std::string SanitizeRunId(const std::string& raw);

 private:
  std::string PathForEpoch(int epoch) const;

  CheckpointManagerConfig config_;
  std::string run_id_;
};

}  // namespace robust
}  // namespace embsr

#endif  // EMBSR_ROBUST_CKPT_MANAGER_H_
