#include "robust/health.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/env.h"

namespace embsr {
namespace robust {

HealthConfig HealthConfig::FromEnv() {
  HealthConfig cfg;
  cfg.max_strikes = std::max(1, GetEnvInt("EMBSR_HEALTH_MAX_STRIKES", 3));
  cfg.grad_limit = GetEnvDouble("EMBSR_HEALTH_GRAD_LIMIT", 1e4);
  cfg.lr_backoff = GetEnvDouble("EMBSR_HEALTH_LR_BACKOFF", 0.5);
  if (cfg.lr_backoff <= 0.0 || cfg.lr_backoff >= 1.0) cfg.lr_backoff = 0.5;
  return cfg;
}

HealthGuard::HealthGuard() : HealthGuard(HealthConfig::FromEnv()) {}

HealthGuard::HealthGuard(const HealthConfig& config) : config_(config) {
  // Publish the healthy baseline so the gauges describe *this* guard from
  // its first batch, not whatever the previous run left behind.
  ExportMetrics();
}

bool HealthGuard::IsUnhealthy(const HealthConfig& config, double loss,
                              double grad_norm) {
  if (!std::isfinite(loss) || !std::isfinite(grad_norm)) return true;
  return config.grad_limit > 0.0 && grad_norm > config.grad_limit;
}

// Number of backoff steps the current lr_scale is away from 1.0 — the
// integer "how degraded is training right now" signal mirrored into the
// run-log metrics (0 = full lr, K = lr multiplied by backoff^K).
static int BackoffLevel(double lr_scale, double backoff) {
  int level = 0;
  for (double s = 1.0; s > lr_scale * (1.0 + 1e-9) && level < 64;
       s *= backoff) {
    ++level;
  }
  return level;
}

void HealthGuard::ExportMetrics() const {
  static obs::Gauge* scale_gauge =
      obs::Registry::Global().GetGauge("robust/health_lr_scale");
  static obs::Gauge* strikes_gauge =
      obs::Registry::Global().GetGauge("robust/health_strikes");
  static obs::Gauge* level_gauge =
      obs::Registry::Global().GetGauge("robust/health_backoff_level");
  scale_gauge->Set(lr_scale_);
  strikes_gauge->Set(strikes_);
  level_gauge->Set(BackoffLevel(lr_scale_, config_.lr_backoff));
}

BatchVerdict HealthGuard::CheckBatch(double loss, double grad_norm) {
  static obs::Counter* unhealthy =
      obs::Registry::Global().GetCounter("robust/unhealthy_batches");

  if (!IsUnhealthy(config_, loss, grad_norm)) {
    strikes_ = 0;
    lr_scale_ = std::min(1.0, lr_scale_ / config_.lr_backoff);
    ExportMetrics();
    return BatchVerdict::kOk;
  }
  unhealthy->Increment();
  ++strikes_;
  lr_scale_ = std::max(config_.min_lr_scale, lr_scale_ * config_.lr_backoff);
  ExportMetrics();
  return strikes_ >= config_.max_strikes ? BatchVerdict::kRollback
                                         : BatchVerdict::kSkip;
}

void HealthGuard::NotifyRollback() {
  static obs::Counter* rollbacks =
      obs::Registry::Global().GetCounter("robust/rollbacks");
  rollbacks->Increment();
  strikes_ = 0;
  ExportMetrics();
}

}  // namespace robust
}  // namespace embsr
