#include "robust/ckpt_manager.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace embsr {
namespace robust {

namespace fs = std::filesystem;

CheckpointManagerConfig CheckpointManagerConfig::FromEnv() {
  CheckpointManagerConfig cfg;
  cfg.dir = GetEnvString("EMBSR_CKPT_DIR", "");
  cfg.keep_last = std::max(1, GetEnvInt("EMBSR_CKPT_KEEP", 3));
  cfg.every_epochs = std::max(1, GetEnvInt("EMBSR_CKPT_EVERY", 1));
  return cfg;
}

CheckpointManager::CheckpointManager(CheckpointManagerConfig config,
                                     const std::string& run_id)
    : config_(std::move(config)), run_id_(SanitizeRunId(run_id)) {}

std::string CheckpointManager::SanitizeRunId(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out.empty() ? std::string("run") : out;
}

bool CheckpointManager::ShouldSaveAfterEpoch(int completed_epochs,
                                             int total_epochs) const {
  if (!enabled() || completed_epochs <= 0) return false;
  return completed_epochs % config_.every_epochs == 0 ||
         completed_epochs == total_epochs;
}

std::string CheckpointManager::PathForEpoch(int epoch) const {
  char name[64];
  std::snprintf(name, sizeof(name), ".epoch%06d.ckpt", epoch);
  return config_.dir + "/" + run_id_ + name;
}

std::vector<std::string> CheckpointManager::ListCheckpoints() const {
  std::vector<std::string> paths;
  if (!enabled()) return paths;
  std::error_code ec;
  const std::string prefix = run_id_ + ".epoch";
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > prefix.size() + 5 && name.rfind(prefix, 0) == 0 &&
        name.substr(name.size() - 5) == ".ckpt") {
      paths.push_back(entry.path().string());
    }
  }
  // Epoch numbers are zero-padded, so lexicographic order == epoch order.
  std::sort(paths.begin(), paths.end());
  return paths;
}

Status CheckpointManager::Save(const nn::Module& module,
                               const nn::TrainState& state) {
  static obs::Counter* saves =
      obs::Registry::Global().GetCounter("robust/ckpt_saves");
  static obs::Counter* failures =
      obs::Registry::Global().GetCounter("robust/ckpt_save_failures");
  if (!enabled()) {
    return Status::FailedPrecondition("no checkpoint directory configured");
  }
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  const std::string path = PathForEpoch(state.epoch);
  const Status s = nn::SaveCheckpoint(module, state, path);
  if (!s.ok()) {
    failures->Increment();
    return s;
  }
  saves->Increment();

  // Retention: drop everything older than the newest keep_last files.
  std::vector<std::string> all = ListCheckpoints();
  if (static_cast<int>(all.size()) > config_.keep_last) {
    const size_t drop = all.size() - static_cast<size_t>(config_.keep_last);
    for (size_t i = 0; i < drop; ++i) {
      fs::remove(all[i], ec);
      if (ec) {
        EMBSR_LOG(Warning) << "checkpoint retention: cannot remove '"
                           << all[i] << "': " << ec.message();
      }
    }
  }
  return Status::OK();
}

Status CheckpointManager::LoadLatest(
    nn::Module* module, nn::TrainState* state,
    std::vector<std::string>* skipped_corrupt) const {
  static obs::Counter* corrupt =
      obs::Registry::Global().GetCounter("robust/ckpt_corrupt_skipped");
  if (!enabled()) {
    return Status::FailedPrecondition("no checkpoint directory configured");
  }
  // A failed load can leave the module partially overwritten (params are
  // restored in file order); snapshot the weights so that "every candidate
  // was corrupt" hands back an unmodified module, not a half-loaded one.
  auto params = module->NamedParameters();
  std::vector<Tensor> before;
  before.reserve(params.size());
  for (const auto& np : params) before.push_back(np.variable.value());

  std::vector<std::string> skipped;
  std::vector<std::string> all = ListCheckpoints();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    const Status s = nn::LoadCheckpoint(*it, module, state);
    if (s.ok()) {
      if (skipped_corrupt != nullptr) *skipped_corrupt = std::move(skipped);
      return Status::OK();
    }
    corrupt->Increment();
    skipped.push_back(*it);
    EMBSR_LOG(Warning) << "skipping unloadable checkpoint '" << *it
                       << "': " << s.ToString();
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].variable.mutable_value() = before[i];
  }
  std::string msg = "no loadable checkpoint for run '" + run_id_ + "' in '" +
                    config_.dir + "'";
  if (!skipped.empty()) {
    msg += "; skipped " + std::to_string(skipped.size()) +
           " corrupt checkpoint(s): " + Join(skipped, ", ");
  }
  if (skipped_corrupt != nullptr) *skipped_corrupt = std::move(skipped);
  return Status::NotFound(msg);
}

}  // namespace robust
}  // namespace embsr
