#include "robust/failpoint.h"

#include <cstdlib>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace embsr {
namespace robust {

namespace {

constexpr uint64_t kDefaultSeed = 0xFA11FA11FA11FA11ULL;

/// Parses one `site=prob[xLIMIT][@SKIP]` clause into (site, spec).
Status ParseClause(const std::string& clause, std::string* site,
                   FailpointSpec* spec) {
  const size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint clause '" + clause +
                                   "' is not site=spec");
  }
  *site = clause.substr(0, eq);
  std::string rest = clause.substr(eq + 1);

  spec->remaining = -1;
  spec->skip = 0;
  const size_t at = rest.find('@');
  if (at != std::string::npos) {
    char* end = nullptr;
    spec->skip = std::strtoll(rest.c_str() + at + 1, &end, 10);
    if (end == rest.c_str() + at + 1 || *end != '\0' || spec->skip < 0) {
      return Status::InvalidArgument("failpoint '" + *site +
                                     "': bad @skip in '" + rest + "'");
    }
    rest = rest.substr(0, at);
  }
  const size_t x = rest.find('x');
  if (x != std::string::npos) {
    char* end = nullptr;
    spec->remaining = std::strtoll(rest.c_str() + x + 1, &end, 10);
    if (end == rest.c_str() + x + 1 || *end != '\0' || spec->remaining < 0) {
      return Status::InvalidArgument("failpoint '" + *site +
                                     "': bad xlimit in '" + rest + "'");
    }
    rest = rest.substr(0, x);
  }
  char* end = nullptr;
  spec->probability = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str() || *end != '\0' || spec->probability < 0.0 ||
      spec->probability > 1.0) {
    return Status::InvalidArgument("failpoint '" + *site +
                                   "': probability '" + rest +
                                   "' not in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Failpoints::Failpoints()
    : rng_(static_cast<uint64_t>(GetEnvDouble(
          "EMBSR_FAILPOINT_SEED", static_cast<double>(kDefaultSeed)))) {}

Failpoints& Failpoints::Global() {
  static Failpoints* instance = [] {
    auto* fp = new Failpoints();  // lint: allow(raw-new): leaked singleton, never destroyed
    std::lock_guard<std::mutex> lock(fp->mu_);
    fp->ConfigureFromEnvLocked();
    return fp;
  }();
  return *instance;
}

void Failpoints::ConfigureFromEnvLocked() {
  const std::string spec = GetEnvString("EMBSR_FAILPOINTS", "");
  if (spec.empty()) return;
  for (const std::string& clause : Split(spec, ',')) {
    if (clause.empty()) continue;
    std::string site;
    FailpointSpec parsed;
    const Status s = ParseClause(clause, &site, &parsed);
    if (!s.ok()) {
      EMBSR_LOG(Warning) << "ignoring EMBSR_FAILPOINTS clause: "
                         << s.ToString();
      continue;
    }
    sites_[site] = parsed;
    EMBSR_LOG(Info) << "failpoint armed: " << site << " p="
                    << parsed.probability << " limit=" << parsed.remaining
                    << " skip=" << parsed.skip;
  }
}

Status Failpoints::Configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& clause : Split(spec, ',')) {
    if (clause.empty()) continue;
    std::string site;
    FailpointSpec parsed;
    const Status s = ParseClause(clause, &site, &parsed);
    if (!s.ok()) return s;
    sites_[site] = parsed;
  }
  return Status::OK();
}

void Failpoints::Set(const std::string& site, double probability,
                     int64_t limit, int64_t skip) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[site] = FailpointSpec{probability, limit, skip};
}

void Failpoints::Clear(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
  counts_.erase(site);
}

void Failpoints::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  counts_.clear();
}

bool Failpoints::ShouldFail(const std::string& site) {
  static obs::Counter* triggers =
      obs::Registry::Global().GetCounter("robust/failpoint_triggers");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  FailpointSpec& spec = it->second;
  if (spec.skip > 0) {
    --spec.skip;
    return false;
  }
  if (spec.remaining == 0) return false;
  const bool fire =
      spec.probability >= 1.0 || rng_.Bernoulli(spec.probability);
  if (!fire) return false;
  if (spec.remaining > 0) --spec.remaining;
  ++counts_[site];
  triggers->Increment();
  obs::Registry::Global().GetCounter("robust/failpoint/" + site)->Increment();
  return true;
}

int64_t Failpoints::TriggerCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

void Failpoints::ReinitFromEnv() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  counts_.clear();
  ConfigureFromEnvLocked();
}

Status InjectedFailure(const std::string& site, const std::string& what) {
  return Status::Internal("failpoint '" + site + "' injected failure: " +
                          what);
}

}  // namespace robust
}  // namespace embsr
