#include "robust/failpoint.h"

#include <cstdlib>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace embsr {
namespace robust {

namespace {

constexpr uint64_t kDefaultSeed = 0xFA11FA11FA11FA11ULL;

/// Parses one `site=prob[xLIMIT][@SKIP|@DELAYms]` clause into (site, spec).
Status ParseClause(const std::string& clause, std::string* site,
                   FailpointSpec* spec) {
  const size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint clause '" + clause +
                                   "' is not site=spec");
  }
  *site = clause.substr(0, eq);
  std::string rest = clause.substr(eq + 1);

  spec->remaining = -1;
  spec->skip = 0;
  spec->delay_ms = 0;
  const size_t at = rest.find('@');
  if (at != std::string::npos) {
    std::string suffix = rest.substr(at + 1);
    // A trailing "ms" selects latency-injection mode; a bare integer is the
    // classic skip count. "@ms", "@-3ms" and "@2.5ms" are all malformed.
    const bool is_delay =
        suffix.size() > 2 && suffix.substr(suffix.size() - 2) == "ms";
    if (is_delay) suffix = suffix.substr(0, suffix.size() - 2);
    char* end = nullptr;
    const int64_t value = std::strtoll(suffix.c_str(), &end, 10);
    if (suffix.empty() || end != suffix.c_str() + suffix.size() ||
        value < 0 || (is_delay && value == 0)) {
      return Status::InvalidArgument("failpoint '" + *site + "': bad @" +
                                     (is_delay ? "delay" : "skip") +
                                     " in '" + rest + "'");
    }
    if (is_delay) {
      spec->delay_ms = value;
    } else {
      spec->skip = value;
    }
    rest = rest.substr(0, at);
  }
  const size_t x = rest.find('x');
  if (x != std::string::npos) {
    char* end = nullptr;
    spec->remaining = std::strtoll(rest.c_str() + x + 1, &end, 10);
    if (end == rest.c_str() + x + 1 || *end != '\0' || spec->remaining < 0) {
      return Status::InvalidArgument("failpoint '" + *site +
                                     "': bad xlimit in '" + rest + "'");
    }
    rest = rest.substr(0, x);
  }
  char* end = nullptr;
  spec->probability = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str() || *end != '\0' || spec->probability < 0.0 ||
      spec->probability > 1.0) {
    return Status::InvalidArgument("failpoint '" + *site +
                                   "': probability '" + rest +
                                   "' not in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Failpoints::Failpoints()
    : rng_(static_cast<uint64_t>(GetEnvDouble(
          "EMBSR_FAILPOINT_SEED", static_cast<double>(kDefaultSeed)))) {}

Failpoints& Failpoints::Global() {
  static Failpoints* instance = [] {
    auto* fp = new Failpoints();  // lint: allow(raw-new): leaked singleton, never destroyed
    std::lock_guard<std::mutex> lock(fp->mu_);
    fp->ConfigureFromEnvLocked();
    return fp;
  }();
  return *instance;
}

void Failpoints::ConfigureFromEnvLocked() {
  const std::string spec = GetEnvString("EMBSR_FAILPOINTS", "");
  if (spec.empty()) return;
  for (const std::string& clause : Split(spec, ',')) {
    if (clause.empty()) continue;
    std::string site;
    FailpointSpec parsed;
    const Status s = ParseClause(clause, &site, &parsed);
    if (!s.ok()) {
      EMBSR_LOG(Warning) << "ignoring EMBSR_FAILPOINTS clause: "
                         << s.ToString();
      continue;
    }
    sites_[site] = parsed;
    EMBSR_LOG(Info) << "failpoint armed: " << site << " p="
                    << parsed.probability << " limit=" << parsed.remaining
                    << " skip=" << parsed.skip
                    << " delay_ms=" << parsed.delay_ms;
  }
}

Status Failpoints::Configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& clause : Split(spec, ',')) {
    if (clause.empty()) continue;
    std::string site;
    FailpointSpec parsed;
    const Status s = ParseClause(clause, &site, &parsed);
    if (!s.ok()) return s;
    sites_[site] = parsed;
  }
  return Status::OK();
}

void Failpoints::Set(const std::string& site, double probability,
                     int64_t limit, int64_t skip) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[site] = FailpointSpec{probability, limit, skip, /*delay_ms=*/0};
}

void Failpoints::SetDelay(const std::string& site, double probability,
                          int64_t delay_ms, int64_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[site] = FailpointSpec{probability, limit, /*skip=*/0, delay_ms};
}

void Failpoints::Clear(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
  counts_.erase(site);
}

void Failpoints::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  counts_.clear();
}

bool Failpoints::EvaluateLocked(const std::string& site,
                                FailpointSpec* spec) {
  static obs::Counter* triggers =
      obs::Registry::Global().GetCounter("robust/failpoint_triggers");
  if (spec->skip > 0) {
    --spec->skip;
    return false;
  }
  if (spec->remaining == 0) return false;
  const bool fire =
      spec->probability >= 1.0 || rng_.Bernoulli(spec->probability);
  if (!fire) return false;
  if (spec->remaining > 0) --spec->remaining;
  ++counts_[site];
  triggers->Increment();
  obs::Registry::Global().GetCounter("robust/failpoint/" + site)->Increment();
  return true;
}

bool Failpoints::ShouldFail(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || it->second.delay_ms > 0) return false;
  return EvaluateLocked(site, &it->second);
}

int64_t Failpoints::ShouldDelayMs(const std::string& site) {
  static obs::Counter* delay_total =
      obs::Registry::Global().GetCounter("robust/failpoint_delay_ms_total");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || it->second.delay_ms <= 0) return 0;
  if (!EvaluateLocked(site, &it->second)) return 0;
  delay_total->Add(it->second.delay_ms);
  return it->second.delay_ms;
}

int64_t Failpoints::TriggerCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

void Failpoints::ReinitFromEnv() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  counts_.clear();
  ConfigureFromEnvLocked();
}

Status InjectedFailure(const std::string& site, const std::string& what) {
  return Status::Internal("failpoint '" + site + "' injected failure: " +
                          what);
}

}  // namespace robust
}  // namespace embsr
